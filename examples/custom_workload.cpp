// Bring-your-own-workload example: a small multi-tenant SaaS schema that is
// NOT one of the built-in benchmarks. Shows the intended integration path:
// describe the schema, point JECB at your stored-procedure SQL, feed it a
// trace collected from production, and compare the join-extension solution
// against naive per-table hash partitioning.
//
//   ./custom_workload
#include <cstdio>

#include "common/rng.h"
#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "sql/parser.h"

using namespace jecb;

int main() {
  // A SaaS project tracker: tenants own projects, projects own tickets,
  // tickets own comments. Only COMMENT and TICKET carry no tenant column —
  // exactly where join extension earns its keep.
  Schema schema;
  auto add = [&](const char* name, std::initializer_list<const char*> cols,
                 std::vector<std::string> pk) {
    TableId t = schema.AddTable(name).value();
    for (const char* c : cols) {
      CheckOk(schema.AddColumn(t, c, ValueType::kInt64), "schema");
    }
    CheckOk(schema.SetPrimaryKey(t, pk), "schema");
  };
  add("TENANT", {"TE_ID", "TE_PLAN"}, {"TE_ID"});
  add("PROJECT", {"PR_ID", "PR_TE_ID", "PR_STATUS"}, {"PR_ID"});
  add("TICKET", {"TK_ID", "TK_PR_ID", "TK_SEVERITY"}, {"TK_ID"});
  add("COMMENT", {"CM_ID", "CM_TK_ID", "CM_LEN"}, {"CM_ID"});
  CheckOk(schema.AddForeignKey("PROJECT", {"PR_TE_ID"}, "TENANT", {"TE_ID"}), "fk");
  CheckOk(schema.AddForeignKey("TICKET", {"TK_PR_ID"}, "PROJECT", {"PR_ID"}), "fk");
  CheckOk(schema.AddForeignKey("COMMENT", {"CM_TK_ID"}, "TICKET", {"TK_ID"}), "fk");

  Database db(std::move(schema));
  Rng rng(2026);
  const int kTenants = 150;
  struct Tenant {
    TupleId row;
    std::vector<TupleId> projects;
    std::vector<std::vector<TupleId>> tickets;   // per project
    std::vector<std::vector<TupleId>> comments;  // per project (flattened)
  };
  std::vector<Tenant> tenants(kTenants);
  int64_t next_pr = 0;
  int64_t next_tk = 0;
  int64_t next_cm = 0;
  for (int64_t te = 0; te < kTenants; ++te) {
    Tenant& t = tenants[te];
    t.row = db.MustInsert("TENANT", {te, rng.Uniform(0, 2)});
    int projects = static_cast<int>(rng.Uniform(1, 3));
    for (int p = 0; p < projects; ++p) {
      int64_t pr = next_pr++;
      t.projects.push_back(db.MustInsert("PROJECT", {pr, te, int64_t(0)}));
      t.tickets.emplace_back();
      t.comments.emplace_back();
      for (int k = 0; k < 4; ++k) {
        int64_t tk = next_tk++;
        t.tickets.back().push_back(db.MustInsert("TICKET", {tk, pr, rng.Uniform(1, 5)}));
        for (int c = 0; c < 2; ++c) {
          t.comments.back().push_back(
              db.MustInsert("COMMENT", {next_cm++, tk, rng.Uniform(5, 500)}));
        }
      }
    }
  }

  // The application's two stored procedures.
  auto procedures = sql::ParseProcedures(R"SQL(
PROCEDURE TenantDashboard(@te_id) {
  SELECT TE_PLAN FROM TENANT WHERE TE_ID = @te_id;
  SELECT PR_ID, PR_STATUS FROM PROJECT WHERE PR_TE_ID = @te_id;
  SELECT TK_ID, TK_SEVERITY FROM TICKET JOIN PROJECT ON TK_PR_ID = PR_ID
    WHERE PR_TE_ID = @te_id;
}
PROCEDURE AddComment(@cm_id, @tk_id, @len) {
  SELECT @pr_id = TK_PR_ID FROM TICKET WHERE TK_ID = @tk_id;
  UPDATE TICKET SET TK_SEVERITY = TK_SEVERITY WHERE TK_ID = @tk_id;
  SELECT PR_STATUS FROM PROJECT WHERE PR_ID = @pr_id;
  INSERT INTO COMMENT (CM_ID, CM_TK_ID, CM_LEN) VALUES (@cm_id, @tk_id, @len);
}
)SQL");
  CheckOk(procedures.status(), "parse");

  // A "production" trace: dashboards read one tenant's tree; comments write
  // one ticket and its ancestors.
  Trace trace;
  uint32_t dash = trace.InternClass("TenantDashboard");
  uint32_t comment = trace.InternClass("AddComment");
  for (int n = 0; n < 8000; ++n) {
    int64_t te = rng.Uniform(0, kTenants - 1);
    Tenant& t = tenants[te];
    Transaction txn;
    if (rng.Chance(0.6)) {
      txn.class_id = dash;
      txn.Read(t.row);
      for (size_t p = 0; p < t.projects.size(); ++p) {
        txn.Read(t.projects[p]);
        for (TupleId tk : t.tickets[p]) txn.Read(tk);
      }
    } else {
      txn.class_id = comment;
      size_t p = rng.Uniform(0, static_cast<int64_t>(t.projects.size()) - 1);
      size_t which = rng.Uniform(0, static_cast<int64_t>(t.tickets[p].size()) - 1);
      txn.Write(t.tickets[p][which]);
      txn.Read(t.projects[p]);
      int64_t tk_id = db.GetValue(t.tickets[p][which], 0).AsInt();
      TupleId cm = db.MustInsert("COMMENT", {next_cm++, tk_id, rng.Uniform(5, 500)});
      t.comments[p].push_back(cm);
      txn.Write(cm);
    }
    trace.Add(std::move(txn));
  }
  auto [train, test] = trace.SplitTrainTest(0.3);

  JecbOptions opt;
  opt.num_partitions = 6;
  auto result = Jecb(opt).Partition(&db, procedures.value(), train);
  CheckOk(result.status(), "jecb");
  std::printf("JECB solution:\n%s\n",
              FormatTableSolutions(db.schema(), result.value().solution).c_str());
  EvalResult jecb_ev = Evaluate(db, result.value().solution, test);

  // Naive comparison: hash-partition every table by its primary key.
  DatabaseSolution naive(6, db.schema().num_tables());
  auto hash = std::make_shared<HashMapping>(6);
  for (size_t t = 0; t < db.schema().num_tables(); ++t) {
    JoinPath p;
    p.source_table = static_cast<TableId>(t);
    p.dest = ColumnRef{static_cast<TableId>(t), db.schema().table(t).primary_key[0]};
    naive.Set(static_cast<TableId>(t), std::make_shared<JoinPathPartitioner>(p, hash));
  }
  EvalResult naive_ev = Evaluate(db, naive, test);

  std::printf("distributed transactions: JECB %.1f%% vs naive pk-hash %.1f%%\n",
              100.0 * jecb_ev.cost(), 100.0 * naive_ev.cost());
  return jecb_ev.cost() <= naive_ev.cost() ? 0 : 1;
}
