// Command-line driver: run any built-in benchmark workload through any of
// the three partitioners and print the paper-style reports.
//
//   ./jecb_cli <workload> [--approach jecb|schism|horticulture|all]
//              [--partitions K] [--txns N] [--seed S] [--scale X]
//              [--threads T]   (0 = all hardware threads; any T yields the
//                               same solution as --threads 1)
//              [--trace_out trace.json]   Chrome trace of the whole run —
//                               load in https://ui.perfetto.dev
//              [--metrics_out metrics.prom]   Prometheus text dump
//
//   workloads: tpcc tatp seats auctionmark tpce synthetic
//
// Examples:
//   ./jecb_cli tpce --partitions 8
//   ./jecb_cli tpcc --approach all --partitions 32 --txns 20000
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "horticulture/horticulture.h"
#include "jecb/jecb.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "partition/evaluator.h"
#include "schism/schism.h"
#include "workloads/registry.h"

using namespace jecb;

namespace {

void Report(const char* label, const Database& db, const DatabaseSolution& solution,
            const Trace& test) {
  EvalResult ev = Evaluate(db, solution, test);
  std::printf("%-14s %5.1f%% distributed  (load skew %.3f)\n", label,
              100.0 * ev.cost(), ev.LoadSkew());
  for (uint32_t c = 0; c < test.num_classes(); ++c) {
    std::printf("    %-24s %5.1f%%\n", test.class_name(c).c_str(),
                100.0 * ev.class_cost(c));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <tpcc|tatp|seats|auctionmark|tpce|synthetic>\n"
                 "          [--approach jecb|schism|horticulture|all]\n"
                 "          [--partitions K] [--txns N] [--seed S] [--scale X]\n"
                 "          [--threads T]\n",
                 argv[0]);
    return 2;
  }
  std::string workload_name = argv[1];
  std::string approach = "jecb";
  int32_t k = 8;
  size_t txns = 12000;
  uint64_t seed = 1;
  double scale = 1.0;
  int32_t threads = 0;
  std::string trace_out;
  std::string metrics_out;
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    if (flag == "--approach") {
      approach = argv[i + 1];
    } else if (flag == "--partitions") {
      k = std::atoi(argv[i + 1]);
    } else if (flag == "--txns") {
      txns = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (flag == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(argv[i + 1]));
    } else if (flag == "--scale") {
      scale = std::atof(argv[i + 1]);
    } else if (flag == "--threads") {
      threads = std::atoi(argv[i + 1]);
    } else if (flag == "--trace_out") {
      trace_out = argv[i + 1];
    } else if (flag == "--metrics_out") {
      metrics_out = argv[i + 1];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (!trace_out.empty()) TraceRecorder::Default().Enable();

  std::unique_ptr<Workload> workload = MakeWorkloadByName(workload_name, scale);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload %s\n", workload_name.c_str());
    return 2;
  }
  std::printf("generating %s: %zu transactions (seed %llu)...\n",
              workload->name().c_str(), txns,
              static_cast<unsigned long long>(seed));
  WorkloadBundle bundle = workload->Make(txns, seed);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);
  std::printf("database: %zu tuples, %zu tables; training %zu txns, testing %zu\n\n",
              bundle.db->TotalRows(), bundle.db->schema().num_tables(), train.size(),
              test.size());

  if (approach == "jecb" || approach == "all") {
    JecbOptions opt;
    opt.num_partitions = k;
    opt.num_threads = threads;
    auto res = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
    CheckOk(res.status(), "jecb");
    std::printf("%s\n", FormatClassSolutions(bundle.db->schema(),
                                             res.value().classes)
                            .c_str());
    std::printf("%s\n",
                FormatTableSolutions(bundle.db->schema(), res.value().solution)
                    .c_str());
    std::printf("chosen attribute: %s  (%.1f s, %llu combinations)\n",
                res.value().combiner_report.chosen_attr.c_str(),
                res.value().elapsed_seconds,
                static_cast<unsigned long long>(
                    res.value().combiner_report.evaluated_combinations));
    Report("JECB:", *bundle.db, res.value().solution, test);
  }
  if (approach == "schism" || approach == "all") {
    SchismOptions opt;
    opt.num_partitions = k;
    auto res = Schism(opt).Partition(bundle.db.get(), train);
    CheckOk(res.status(), "schism");
    std::printf("\nschism graph: %zu nodes, %zu edges, cut %llu, "
                "explanation accuracy %.3f\n",
                res.value().graph_nodes, res.value().graph_edges,
                static_cast<unsigned long long>(res.value().edge_cut),
                res.value().explanation_accuracy);
    Report("Schism:", *bundle.db, res.value().solution, test);
  }
  if (approach == "horticulture" || approach == "all") {
    HorticultureOptions opt;
    opt.num_partitions = k;
    opt.num_threads = threads;
    auto res = Horticulture(opt).Partition(bundle.db.get(), train);
    CheckOk(res.status(), "horticulture");
    std::printf("\nhorticulture: %d cost evaluations\n", res.value().evaluations);
    Report("Horticulture:", *bundle.db, res.value().solution, test);
  }
  if (!trace_out.empty()) {
    if (TraceRecorder::Default().WriteChromeTrace(trace_out)) {
      std::printf("\nwrote %s — open it at https://ui.perfetto.dev\n",
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    if (MetricsRegistry::Default().WritePrometheus(metrics_out)) {
      std::printf("wrote %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n", metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}
