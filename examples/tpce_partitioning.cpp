// Domain example: partition the TPC-E brokerage workload and compare all
// three approaches side by side — the paper's headline scenario.
//
//   ./tpce_partitioning [num_partitions] [customers]
#include <cstdio>
#include <cstdlib>

#include "horticulture/horticulture.h"
#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "schism/schism.h"
#include "workloads/tpce.h"

using namespace jecb;

int main(int argc, char** argv) {
  int32_t k = argc > 1 ? std::atoi(argv[1]) : 8;
  TpceConfig cfg;
  cfg.customers = argc > 2 ? std::atoi(argv[2]) : 400;

  std::printf("Generating TPC-E (%d customers), 12000 transactions...\n",
              cfg.customers);
  WorkloadBundle bundle = TpceWorkload(cfg).Make(12000, 99);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);
  std::printf("database: %zu tuples across %zu tables\n\n", bundle.db->TotalRows(),
              bundle.db->schema().num_tables());

  // ---- JECB -----------------------------------------------------------------
  JecbOptions opt;
  opt.num_partitions = k;
  auto jecb = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
  CheckOk(jecb.status(), "jecb");
  std::printf("JECB found its solution in %.1f s; per-class view:\n%s\n",
              jecb.value().elapsed_seconds,
              FormatClassSolutions(bundle.db->schema(), jecb.value().classes).c_str());

  EvalResult jecb_ev = Evaluate(*bundle.db, jecb.value().solution, test);

  // ---- Baselines --------------------------------------------------------------
  SchismOptions schism_opt;
  schism_opt.num_partitions = k;
  auto schism = Schism(schism_opt).Partition(bundle.db.get(), train);
  CheckOk(schism.status(), "schism");
  EvalResult schism_ev = Evaluate(*bundle.db, schism.value().solution, test);

  HorticultureOptions hc_opt;
  hc_opt.num_partitions = k;
  auto hc = Horticulture(hc_opt).Partition(bundle.db.get(), train);
  CheckOk(hc.status(), "horticulture");
  EvalResult hc_ev = Evaluate(*bundle.db, hc.value().solution, test);

  DatabaseSolution hc_paper = HorticulturePaperTpceSolution(*bundle.db, k);
  EvalResult hc_paper_ev = Evaluate(*bundle.db, hc_paper, test);

  std::printf("distributed transactions at k = %d:\n", k);
  std::printf("  JECB                  %5.1f%%   (%s)\n", 100.0 * jecb_ev.cost(),
              jecb.value().combiner_report.chosen_attr.c_str());
  std::printf("  Schism                %5.1f%%   (%zu-node tuple graph)\n",
              100.0 * schism_ev.cost(), schism.value().graph_nodes);
  std::printf("  Horticulture (search) %5.1f%%   (%d cost evaluations)\n",
              100.0 * hc_ev.cost(), hc.value().evaluations);
  std::printf("  Horticulture (paper)  %5.1f%%\n", 100.0 * hc_paper_ev.cost());

  std::printf("\nJECB per-class costs (Figure 8):\n");
  for (uint32_t c = 0; c < test.num_classes(); ++c) {
    std::printf("  %-20s %5.1f%%\n", test.class_name(c).c_str(),
                100.0 * jecb_ev.class_cost(c));
  }
  return 0;
}
