// Minimal tour of the execution runtime: partition a small TPC-C database
// with JECB, replay the workload through the multi-threaded shard executor,
// and print the measured report (the JSON line is what the bench harness
// aggregates into throughput_tpcc.json).
#include <cstdio>

#include "jecb/jecb.h"
#include "runtime/replay.h"
#include "workloads/tpcc.h"

using namespace jecb;

int main() {
  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 25;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(3000, 42);

  JecbOptions jopt;
  jopt.num_partitions = 4;
  auto result = Jecb(jopt).Partition(bundle.db.get(), bundle.procedures, bundle.trace);
  if (!result.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  RuntimeOptions ropt;
  ropt.num_clients = 4;
  ropt.local_work_us = 2;
  ropt.round_trip_us = 100;
  ReplayReport report =
      Replay(*bundle.db, result.value().solution, bundle.trace, ropt, "jecb-tpcc-k4");

  std::printf("replayed %llu txns on %d shards: %.0f txn/s, %.2f%% distributed\n",
              static_cast<unsigned long long>(report.committed),
              report.num_partitions, report.throughput_tps,
              report.distributed_fraction() * 100.0);
  std::printf("local  p50/p95/p99: %.0f/%.0f/%.0f us\n", report.local.p50_us,
              report.local.p95_us, report.local.p99_us);
  std::printf("dist   p50/p95/p99: %.0f/%.0f/%.0f us\n", report.distributed.p50_us,
              report.distributed.p95_us, report.distributed.p99_us);
  std::printf("%s\n", report.ToJson().c_str());
  return 0;
}
