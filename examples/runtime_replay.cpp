// Minimal tour of the execution runtime: partition a small TPC-C database
// with JECB, replay the workload through the multi-threaded shard executor
// (first fault-free, then under a deterministic fault plan with 2PC
// prepare rejections, shard stalls, and transient shard-down windows), and
// print the measured reports (the JSON line is what the bench harness
// writes to BENCH_throughput_tpcc.json).
// Pass --trace_out trace.json to capture the per-txn replay timelines
// (queue wait, execution, 2PC prepare/commit rounds, retries, fault
// instants) as a Chrome trace, and --metrics_out metrics.prom for a
// Prometheus dump of both replays' counters and latency histograms.
// Pass --transport unix (or tcp) to run the same replay through the real
// multi-process backend: Replay() forks one shard-server process per
// partition, drives 2PC over length-prefixed socket frames, and reaps the
// children on drain — the reported outcome is bit-identical to the default
// in-process backend for the same seed.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "jecb/jecb.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "dist/replay.h"
#include "workloads/tpcc.h"

using namespace jecb;

int main(int argc, char** argv) {
  std::string trace_out;
  std::string metrics_out;
  double target_tps = 0.0;
  bool pin_threads = false;
  TransportKind transport = TransportKind::kInProcess;
  for (int i = 1; i < argc; i += 2) {
    // --pin_threads takes no value; everything else is --flag value.
    if (std::strcmp(argv[i], "--pin_threads") == 0) {
      pin_threads = true;
      i -= 1;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return 2;
    }
    if (std::strcmp(argv[i], "--trace_out") == 0) {
      trace_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--metrics_out") == 0) {
      metrics_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--target_tps") == 0) {
      target_tps = std::strtod(argv[i + 1], nullptr);
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      if (std::strcmp(argv[i + 1], "inproc") == 0) {
        transport = TransportKind::kInProcess;
      } else if (std::strcmp(argv[i + 1], "unix") == 0) {
        transport = TransportKind::kUnixSocket;
      } else if (std::strcmp(argv[i + 1], "tcp") == 0) {
        transport = TransportKind::kTcpSocket;
      } else {
        std::fprintf(stderr, "unknown --transport %s (inproc|unix|tcp)\n",
                     argv[i + 1]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--transport inproc|unix|tcp] "
                   "[--target_tps N] [--pin_threads] "
                   "[--trace_out trace.json] [--metrics_out metrics.prom]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!trace_out.empty()) TraceRecorder::Default().Enable();
  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 25;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(3000, 42);

  JecbOptions jopt;
  jopt.num_partitions = 4;
  auto result = Jecb(jopt).Partition(bundle.db.get(), bundle.procedures, bundle.trace);
  if (!result.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  RuntimeOptions ropt;
  ropt.transport = transport;
  ropt.num_clients = 4;
  ropt.local_work_us = 2;
  ropt.round_trip_us = 100;
  // --target_tps switches the replay from closed-loop clients to the
  // open-loop arrival schedule (see runtime/load_gen.h); --pin_threads pins
  // shard workers (and forked shard servers) to distinct physical cores.
  ropt.target_tps = target_tps;
  ropt.pin_threads = pin_threads;
  ReplayReport report =
      Replay(*bundle.db, result.value().solution, bundle.trace, ropt, "jecb-tpcc-k4");

  std::printf(
      "replayed %llu txns on %d shards (%s transport): %.0f txn/s, "
      "%.2f%% distributed\n",
      static_cast<unsigned long long>(report.committed), report.num_partitions,
      std::string(TransportKindName(report.transport)).c_str(),
      report.throughput_tps,
      report.distributed_fraction() * 100.0);
  if (report.transport != TransportKind::kInProcess) {
    std::printf("wire: %llu msgs / %llu bytes sent, rtt p50/p99 %.0f/%.0f us\n",
                static_cast<unsigned long long>(
                    report.transport_counters.messages_sent),
                static_cast<unsigned long long>(
                    report.transport_counters.bytes_sent),
                report.transport_rtt.p50_us, report.transport_rtt.p99_us);
  }
  if (report.exchange_txns > 0) {
    std::printf(
        "exchange: %llu read sets assembled, %llu tuples / %llu bytes shipped "
        "(%llu remote) in %llu batches, digest %016llx\n",
        static_cast<unsigned long long>(report.exchange_txns),
        static_cast<unsigned long long>(report.exchange_tuples),
        static_cast<unsigned long long>(report.exchange_bytes),
        static_cast<unsigned long long>(report.exchange_remote_tuples),
        static_cast<unsigned long long>(report.exchange_batches),
        static_cast<unsigned long long>(report.exchange_digest));
  }
  std::printf("local  p50/p95/p99: %.0f/%.0f/%.0f us\n", report.local.p50_us,
              report.local.p95_us, report.local.p99_us);
  std::printf("dist   p50/p95/p99: %.0f/%.0f/%.0f us\n", report.distributed.p50_us,
              report.distributed.p95_us, report.distributed.p99_us);
  if (report.open_loop()) {
    std::printf(
        "open loop: offered %.0f/%.0f tps, shed %llu, "
        "sojourn p50/p99 %.0f/%.0f us (queue_wait p99 %.0f us)\n",
        report.offered_tps, report.target_tps,
        static_cast<unsigned long long>(report.shed), report.sojourn.p50_us,
        report.sojourn.p99_us, report.queue_wait.p99_us);
  }
  std::printf("%s\n", report.ToJson().c_str());

  // Same replay under injected coordination faults: every fault decision is
  // a pure function of (seed, txn id, attempt), so this report — commits,
  // failures, aborts, per-shard availability — is bit-identical at any
  // num_clients. Distributed transactions that hit a fault abort, back off,
  // and retry up to FaultPlan::max_attempts before being recorded as failed.
  ropt.faults.seed = 0x5ECB;
  ropt.faults.prepare_reject_rate = 0.05;
  ropt.faults.stall_rate = 0.05;
  ropt.faults.stall_us = 100;
  ropt.faults.shard_down_rate = 0.05;
  ReplayReport faulted =
      Replay(*bundle.db, result.value().solution, bundle.trace, ropt,
             "jecb-tpcc-k4-faults");
  double min_avail = 1.0;
  for (const ShardReport& s : faulted.shards)
    min_avail = std::min(min_avail, s.availability());
  std::printf(
      "\nwith 5%% injected 2PC faults: goodput %.0f txn/s, %llu committed, "
      "%llu failed, %llu aborts (%llu retried), min shard availability %.1f%%\n",
      faulted.goodput_tps, static_cast<unsigned long long>(faulted.committed),
      static_cast<unsigned long long>(faulted.failed),
      static_cast<unsigned long long>(faulted.aborts),
      static_cast<unsigned long long>(faulted.retries), min_avail * 100.0);
  std::printf("retry p50/p95/p99: %.0f/%.0f/%.0f us\n", faulted.retry.p50_us,
              faulted.retry.p95_us, faulted.retry.p99_us);

  if (!trace_out.empty()) {
    if (!TraceRecorder::Default().WriteChromeTrace(trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("\nwrote %s — open it at https://ui.perfetto.dev\n",
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    MetricsRegistry& registry = MetricsRegistry::Default();
    report.PublishTo(registry);
    faulted.PublishTo(registry);
    if (!registry.WritePrometheus(metrics_out)) {
      std::fprintf(stderr, "failed to write metrics to %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}
