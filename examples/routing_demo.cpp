// Runtime routing example (paper Sec. 3): after partitioning SEATS with
// JECB, route incoming requests to partitions with lookup tables — including
// the mismatch case where the routing attribute differs from the
// partitioning attribute and a join-path-derived lookup table saves the day.
//
//   ./routing_demo
#include <cstdio>

#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "partition/router.h"
#include "workloads/seats.h"

using namespace jecb;

static void Show(const Schema& s, Router* router, const char* attr, const Value& v) {
  ColumnRef ref = s.ResolveQualified(attr).value();
  auto parts = router->RouteValue(ref, v);
  std::printf("  route %-28s = %-6s ->", attr, v.ToString().c_str());
  for (int32_t p : parts) {
    if (p == kReplicated) {
      std::printf(" any");
    } else {
      std::printf(" p%d", p);
    }
  }
  std::printf("   (lookup table: %zu entries)\n", router->LookupTableSize(ref));
}

int main() {
  SeatsConfig cfg;
  cfg.customers = 300;
  WorkloadBundle bundle = SeatsWorkload(cfg).Make(6000, 11);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);

  JecbOptions opt;
  opt.num_partitions = 4;
  auto result = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
  CheckOk(result.status(), "jecb");
  const Schema& s = bundle.db->schema();
  std::printf("SEATS partitioned on %s into 4 partitions:\n%s\n",
              result.value().combiner_report.chosen_attr.c_str(),
              FormatTableSolutions(s, result.value().solution).c_str());

  Router router(bundle.db.get(), &result.value().solution);

  std::printf("routing by the partitioning attribute itself:\n");
  Show(s, &router, "CUSTOMER.C_ID", Value(0));
  Show(s, &router, "CUSTOMER.C_ID", Value(42));

  std::printf("\nrouting by finer attributes via lookup tables (Sec. 3):\n");
  // A reservation id arrives with an UpdateReservation call; the lookup
  // table built over RESERVATION.R_ID maps it to the one partition holding
  // the reservation (placed by the customer of its frequent-flyer account).
  Show(s, &router, "RESERVATION.R_ID", Value(0));
  Show(s, &router, "RESERVATION.R_ID", Value(17));
  Show(s, &router, "FREQUENT_FLYER.FF_ID", Value(5));

  std::printf("\nrouting by an incompatible attribute broadcasts:\n");
  // Flight ids do not determine customers: most flights have reservations
  // in many partitions.
  Show(s, &router, "RESERVATION.R_F_ID", Value(3));

  std::printf("\nreplicated reference data is available anywhere:\n");
  Show(s, &router, "AIRPORT.AP_ID", Value(1));

  // Verify the router agrees with the evaluator: a routed single-partition
  // value means all matching tuples are co-located.
  ColumnRef r_id = s.ResolveQualified("RESERVATION.R_ID").value();
  size_t single = 0;
  size_t total = 0;
  const TableData& reservations =
      bundle.db->table_data(s.FindTable("RESERVATION").value());
  for (RowId row = 0; row < reservations.num_rows() && total < 500; ++row, ++total) {
    if (router.RouteValue(r_id, reservations.At(row, 0)).size() == 1) ++single;
  }
  std::printf("\n%zu / %zu sampled reservations route to exactly one partition\n",
              single, total);
  return single == total ? 0 : 1;
}
