// Quickstart: partition a small custom OLTP database with JECB.
//
// This walks the full public API surface end to end on the paper's own
// running example (Figure 1 / Example 1): define a schema with key-foreign
// key constraints, load data, describe the workload's stored procedures,
// record a trace, run JECB, and inspect and evaluate the solution.
//
//   ./quickstart
#include <cstdio>
#include <memory>

#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "sql/parser.h"

using namespace jecb;

int main() {
  // ---- 1. Schema: the paper's Figure 1 subset of TPC-E -------------------
  Schema schema;
  {
    TableId customer = schema.AddTable("CUSTOMER").value();
    CheckOk(schema.AddColumn(customer, "C_ID", ValueType::kInt64), "schema");
    CheckOk(schema.AddColumn(customer, "C_NAME", ValueType::kString), "schema");
    CheckOk(schema.SetPrimaryKey(customer, {"C_ID"}), "schema");

    TableId account = schema.AddTable("CUSTOMER_ACCOUNT").value();
    CheckOk(schema.AddColumn(account, "CA_ID", ValueType::kInt64), "schema");
    CheckOk(schema.AddColumn(account, "CA_C_ID", ValueType::kInt64), "schema");
    CheckOk(schema.SetPrimaryKey(account, {"CA_ID"}), "schema");
    CheckOk(schema.AddForeignKey("CUSTOMER_ACCOUNT", {"CA_C_ID"}, "CUSTOMER", {"C_ID"}),
            "schema");

    TableId trade = schema.AddTable("TRADE").value();
    CheckOk(schema.AddColumn(trade, "T_ID", ValueType::kInt64), "schema");
    CheckOk(schema.AddColumn(trade, "T_CA_ID", ValueType::kInt64), "schema");
    CheckOk(schema.AddColumn(trade, "T_QTY", ValueType::kInt64), "schema");
    CheckOk(schema.SetPrimaryKey(trade, {"T_ID"}), "schema");
    CheckOk(schema.AddForeignKey("TRADE", {"T_CA_ID"}, "CUSTOMER_ACCOUNT", {"CA_ID"}),
            "schema");
  }

  // ---- 2. Data -------------------------------------------------------------
  Database db(std::move(schema));
  const int kCustomers = 100;
  std::vector<TupleId> customers;
  std::vector<std::vector<TupleId>> accounts(kCustomers);   // two per customer
  std::vector<std::vector<TupleId>> trades(kCustomers);
  int64_t next_account = 0;
  int64_t next_trade = 0;
  for (int64_t c = 0; c < kCustomers; ++c) {
    customers.push_back(db.MustInsert("CUSTOMER", {c, std::string("cust")}));
    for (int a = 0; a < 2; ++a) {
      int64_t ca = next_account++;
      accounts[c].push_back(db.MustInsert("CUSTOMER_ACCOUNT", {ca, c}));
      for (int t = 0; t < 3; ++t) {
        trades[c].push_back(db.MustInsert("TRADE", {next_trade++, ca, int64_t(t + 1)}));
      }
    }
  }

  // ---- 3. Workload: stored-procedure code + a trace ------------------------
  // The CustInfo transaction of Example 1: everything one customer owns.
  auto procedures = sql::ParseProcedures(R"SQL(
PROCEDURE CustInfo(@cust_id) {
  SELECT @ca_id = CA_ID FROM CUSTOMER_ACCOUNT WHERE CA_C_ID = @cust_id;
  SELECT AVERAGE(T_QTY) FROM TRADE JOIN CUSTOMER_ACCOUNT ON T_CA_ID = CA_ID
    WHERE CA_C_ID = @cust_id;
  UPDATE TRADE SET T_QTY = 0 WHERE T_CA_ID = @ca_id;
}
)SQL");
  CheckOk(procedures.status(), "parse");

  Trace trace;
  uint32_t cls = trace.InternClass("CustInfo");
  for (int rep = 0; rep < 20; ++rep) {
    for (int64_t c = 0; c < kCustomers; ++c) {
      Transaction txn;
      txn.class_id = cls;
      for (TupleId a : accounts[c]) txn.Read(a);
      for (TupleId t : trades[c]) txn.Write(t);
      trace.Add(std::move(txn));
    }
  }
  auto [train, test] = trace.SplitTrainTest(0.3);

  // ---- 4. Run JECB -----------------------------------------------------------
  JecbOptions options;
  options.num_partitions = 4;
  auto result = Jecb(options).Partition(&db, procedures.value(), train);
  CheckOk(result.status(), "jecb");
  const JecbResult& r = result.value();

  std::printf("Per-class solutions (paper Table 3 format):\n%s\n",
              FormatClassSolutions(db.schema(), r.classes).c_str());
  std::printf("Final per-table solutions:\n%s\n",
              FormatTableSolutions(db.schema(), r.solution).c_str());
  std::printf("chosen attribute: %s\n", r.combiner_report.chosen_attr.c_str());

  // ---- 5. Evaluate on held-out transactions ---------------------------------
  EvalResult ev = Evaluate(db, r.solution, test);
  std::printf("distributed transactions on the test trace: %llu / %llu (%.1f%%)\n",
              static_cast<unsigned long long>(ev.distributed_txns),
              static_cast<unsigned long long>(ev.total_txns), 100.0 * ev.cost());
  return ev.distributed_txns == 0 ? 0 : 1;
}
