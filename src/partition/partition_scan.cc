#include "partition/partition_scan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <vector>

#include "obs/metrics_registry.h"
#include "partition/evaluator.h"
#include "partition/mapping.h"

// The vector kernels are x86-64 only (SSE2 is baseline there; AVX2 is
// selected by CPUID at runtime and compiled via the target attribute, so no
// global -mavx2 flag is needed). JECB_SIMD=OFF removes them entirely and
// every request resolves to the scalar oracle.
#if !defined(JECB_SIMD_DISABLED) && (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define JECB_SCAN_X86 1
#include <immintrin.h>
#else
#define JECB_SCAN_X86 0
#endif

namespace jecb {

namespace {

/// Per-range scan statistics, flushed to the metrics registry once per
/// range (never per transaction — the hot loop stays counter-free).
struct ScanStats {
  uint64_t fast = 0;      // transactions fully classified by the SIMD pass
  uint64_t fallback = 0;  // transactions re-run through the scalar oracle
};

/// Distinct-partition classification of one transaction. Distinct
/// non-replicated partitions land in `parts` (first 8) and `spill` (the
/// rare >8 tail) — the same inline-buffer-plus-heap-spill structure as
/// IsDistributed, so heavy broadcast transactions stay exact.
struct TxnClass {
  size_t nparts = 0;  // filled entries of parts[8]
  bool writes_replicated = false;
};

/// The reference classifier and bit-identity oracle: every vector kernel
/// must reproduce these outputs exactly (the accounting below only consumes
/// the distinct *set*, so the vector kernels are free to find it any way
/// they like — but counts, spill contents, and flags must match).
inline TxnClass ClassifyScalar(std::span<const PackedAccess> accesses,
                               const int32_t* part, int32_t parts[8],
                               std::vector<int32_t>& spill) {
  TxnClass out;
  spill.clear();
  for (const PackedAccess a : accesses) {
    const int32_t p = part[a.tuple_index()];
    if (p == kReplicated) {
      if (a.write()) out.writes_replicated = true;
      continue;  // replicated reads are local everywhere
    }
    bool seen = false;
    for (size_t j = 0; j < out.nparts; ++j) {
      if (parts[j] == p) {
        seen = true;
        break;
      }
    }
    if (seen || std::find(spill.begin(), spill.end(), p) != spill.end()) {
      continue;
    }
    if (out.nparts < 8) {
      parts[out.nparts++] = p;
    } else {
      spill.push_back(p);
    }
  }
  return out;
}

#if JECB_SCAN_X86

// SSE2 helpers: epi32 min/max/blend predate SSE4.1, so build them from
// compares. Blend32(a, b, mask) = mask ? b : a, lane-wise.
inline __m128i Blend32(__m128i a, __m128i b, __m128i mask) {
  return _mm_or_si128(_mm_and_si128(mask, b), _mm_andnot_si128(mask, a));
}
inline __m128i Min32(__m128i a, __m128i b) {
  return Blend32(a, b, _mm_cmpgt_epi32(a, b));
}
inline __m128i Max32(__m128i a, __m128i b) {
  return Blend32(a, b, _mm_cmpgt_epi32(b, a));
}

/// Shared epilogue of both vector kernels: a reduced (min, max) over the
/// non-replicated partitions plus the replicated-write flag classify the
/// transaction completely unless it straddles partitions (min != max), in
/// which case the scalar oracle recovers the exact distinct set.
inline TxnClass FinishMinMax(std::span<const PackedAccess> accesses,
                             const int32_t* part, int32_t parts[8],
                             std::vector<int32_t>& spill, int32_t mn, int32_t mx,
                             bool writes_replicated, ScanStats& stats) {
  if (mn > mx) {  // every access was replicated
    ++stats.fast;
    spill.clear();
    return TxnClass{0, writes_replicated};
  }
  if (mn == mx) {  // single-home transaction: the overwhelmingly common case
    ++stats.fast;
    spill.clear();
    parts[0] = mn;
    return TxnClass{1, writes_replicated};
  }
  ++stats.fallback;
  return ClassifyScalar(accesses, part, parts, spill);
}

/// SSE2 baseline kernel: 4 lanes, scalar gathers (SSE2 has no hardware
/// gather), vector min/max/replicated-write accumulation.
TxnClass ClassifySse2(std::span<const PackedAccess> accesses, const int32_t* part,
                      int32_t parts[8], std::vector<int32_t>& spill,
                      ScanStats& stats) {
  const size_t n = accesses.size();
  if (n < 4) {
    ++stats.fallback;
    return ClassifyScalar(accesses, part, parts, spill);
  }
  const PackedAccess* acc = accesses.data();
  const __m128i repl_v = _mm_set1_epi32(kReplicated);
  const __m128i int_max = _mm_set1_epi32(INT32_MAX);
  const __m128i int_min = _mm_set1_epi32(INT32_MIN);
  __m128i vmin = int_max;
  __m128i vmax = int_min;
  __m128i vreplw = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i bits = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i p = _mm_set_epi32(part[acc[i + 3].tuple_index()],
                                    part[acc[i + 2].tuple_index()],
                                    part[acc[i + 1].tuple_index()],
                                    part[acc[i].tuple_index()]);
    const __m128i wr = _mm_srai_epi32(bits, 31);  // write bit -> lane mask
    const __m128i repl = _mm_cmpeq_epi32(p, repl_v);
    vreplw = _mm_or_si128(vreplw, _mm_and_si128(wr, repl));
    vmin = Min32(vmin, Blend32(p, int_max, repl));
    vmax = Max32(vmax, Blend32(p, int_min, repl));
  }
  vmin = Min32(vmin, _mm_shuffle_epi32(vmin, _MM_SHUFFLE(1, 0, 3, 2)));
  vmin = Min32(vmin, _mm_shuffle_epi32(vmin, _MM_SHUFFLE(2, 3, 0, 1)));
  vmax = Max32(vmax, _mm_shuffle_epi32(vmax, _MM_SHUFFLE(1, 0, 3, 2)));
  vmax = Max32(vmax, _mm_shuffle_epi32(vmax, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t mn = _mm_cvtsi128_si32(vmin);
  int32_t mx = _mm_cvtsi128_si32(vmax);
  bool writes_replicated = _mm_movemask_epi8(vreplw) != 0;
  for (; i < n; ++i) {  // scalar tail
    const int32_t p = part[acc[i].tuple_index()];
    if (p == kReplicated) {
      if (acc[i].write()) writes_replicated = true;
      continue;
    }
    mn = std::min(mn, p);
    mx = std::max(mx, p);
  }
  return FinishMinMax(accesses, part, parts, spill, mn, mx, writes_replicated,
                      stats);
}

/// AVX2 kernel: 8 lanes with hardware gathers. Compiled with the target
/// attribute so the translation unit itself needs no -mavx2; only reachable
/// after a CPUID check.
__attribute__((target("avx2"))) TxnClass ClassifyAvx2(
    std::span<const PackedAccess> accesses, const int32_t* part, int32_t parts[8],
    std::vector<int32_t>& spill, ScanStats& stats) {
  const size_t n = accesses.size();
  if (n < 8) {
    return ClassifySse2(accesses, part, parts, spill, stats);
  }
  const PackedAccess* acc = accesses.data();
  const __m256i repl_v = _mm256_set1_epi32(kReplicated);
  const __m256i idx_mask = _mm256_set1_epi32(0x7fffffff);
  const __m256i int_max = _mm256_set1_epi32(INT32_MAX);
  const __m256i int_min = _mm256_set1_epi32(INT32_MIN);
  __m256i vmin = int_max;
  __m256i vmax = int_min;
  __m256i vreplw = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i idx = _mm256_and_si256(bits, idx_mask);
    const __m256i wr = _mm256_srai_epi32(bits, 31);  // write bit -> lane mask
    const __m256i p = _mm256_i32gather_epi32(part, idx, 4);
    const __m256i repl = _mm256_cmpeq_epi32(p, repl_v);
    vreplw = _mm256_or_si256(vreplw, _mm256_and_si256(wr, repl));
    vmin = _mm256_min_epi32(vmin, _mm256_blendv_epi8(p, int_max, repl));
    vmax = _mm256_max_epi32(vmax, _mm256_blendv_epi8(p, int_min, repl));
  }
  __m128i m = _mm_min_epi32(_mm256_castsi256_si128(vmin),
                            _mm256_extracti128_si256(vmin, 1));
  m = _mm_min_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_min_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t mn = _mm_cvtsi128_si32(m);
  __m128i x = _mm_max_epi32(_mm256_castsi256_si128(vmax),
                            _mm256_extracti128_si256(vmax, 1));
  x = _mm_max_epi32(x, _mm_shuffle_epi32(x, _MM_SHUFFLE(1, 0, 3, 2)));
  x = _mm_max_epi32(x, _mm_shuffle_epi32(x, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t mx = _mm_cvtsi128_si32(x);
  bool writes_replicated = _mm256_movemask_epi8(vreplw) != 0;
  for (; i < n; ++i) {  // scalar tail
    const int32_t p = part[acc[i].tuple_index()];
    if (p == kReplicated) {
      if (acc[i].write()) writes_replicated = true;
      continue;
    }
    mn = std::min(mn, p);
    mx = std::max(mx, p);
  }
  return FinishMinMax(accesses, part, parts, spill, mn, mx, writes_replicated,
                      stats);
}

#endif  // JECB_SCAN_X86

ScanKernel DetectBestKernel() {
#if JECB_SCAN_X86
  if (__builtin_cpu_supports("avx2")) return ScanKernel::kAvx2;
  return ScanKernel::kSse2;  // baseline on every x86-64
#else
  return ScanKernel::kScalar;
#endif
}

/// JECB_SIMD environment override, parsed once: "scalar"/"off"/"0" force the
/// oracle, "sse2"/"avx2" request a specific kernel (clamped to what the CPU
/// supports), anything else keeps CPUID selection.
ScanKernel EnvKernel() {
  const char* env = std::getenv("JECB_SIMD");
  if (env == nullptr) return ScanKernel::kAuto;
  const std::string_view v(env);
  if (v == "scalar" || v == "off" || v == "0") return ScanKernel::kScalar;
  if (v == "sse2") return ScanKernel::kSse2;
  if (v == "avx2") return ScanKernel::kAvx2;
  return ScanKernel::kAuto;
}

std::atomic<ScanKernel> g_kernel_override{ScanKernel::kAuto};

ScanKernel Clamp(ScanKernel k) {
  return static_cast<int32_t>(k) > static_cast<int32_t>(BestScanKernel())
             ? BestScanKernel()
             : k;
}

/// The per-transaction accounting shared by every kernel (and byte-for-byte
/// the accounting the row-oriented evaluator performs): Definition 5/6
/// classification plus per-class and per-partition counters.
template <typename Classify>
EvalResult ScanRangeImpl(const TraceView& view, size_t num_classes,
                         int32_t num_partitions, size_t begin, size_t end,
                         Classify&& classify) {
  EvalResult out;
  out.class_total.assign(num_classes, 0);
  out.class_distributed.assign(num_classes, 0);
  out.partition_load.assign(std::max(num_partitions, 1), 0);

  const FlatTrace& trace = view.trace();
  int32_t parts[8];
  std::vector<int32_t> spill;  // rare >8-distinct-partition tail
  for (size_t i = begin; i < end; ++i) {
    const uint32_t txn = view.txn(i);
    const TxnClass tc = classify(trace.accesses(txn), parts, spill);
    const size_t distinct = tc.nparts + spill.size();
    const bool dist = tc.writes_replicated || distinct > 1;
    const uint32_t cls = trace.class_of(txn);
    ++out.total_txns;
    ++out.class_total[cls];
    if (dist) {
      ++out.distributed_txns;
      ++out.class_distributed[cls];
      out.partitions_touched += distinct;
    }
    auto count_load = [&](int32_t p) {
      if (p >= 0 && p < static_cast<int32_t>(out.partition_load.size())) {
        ++out.partition_load[p];
      }
    };
    for (size_t j = 0; j < tc.nparts; ++j) count_load(parts[j]);
    for (int32_t p : spill) count_load(p);
  }
  return out;
}

}  // namespace

std::string_view ScanKernelName(ScanKernel kernel) {
  switch (kernel) {
    case ScanKernel::kAuto:
      return "auto";
    case ScanKernel::kScalar:
      return "scalar";
    case ScanKernel::kSse2:
      return "sse2";
    case ScanKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

ScanKernel BestScanKernel() {
  static const ScanKernel best = DetectBestKernel();
  return best;
}

ScanKernel ActiveScanKernel() {
  const ScanKernel override_k = g_kernel_override.load(std::memory_order_relaxed);
  if (override_k != ScanKernel::kAuto) return Clamp(override_k);
  static const ScanKernel env = EnvKernel();
  if (env != ScanKernel::kAuto) return Clamp(env);
  return BestScanKernel();
}

void SetScanKernel(ScanKernel kernel) {
  g_kernel_override.store(kernel, std::memory_order_relaxed);
}

ScanKernel ResolveScanKernel(ScanKernel kernel) {
  if (kernel == ScanKernel::kAuto) return ActiveScanKernel();
  return Clamp(kernel);
}

EvalResult ScanPartitionRange(const TraceView& view, std::span<const int32_t> part,
                              size_t num_classes, int32_t num_partitions,
                              size_t begin, size_t end, ScanKernel kernel) {
  const int32_t* p = part.data();
  ScanStats stats;
  EvalResult out;
  const ScanKernel resolved = ResolveScanKernel(kernel);
  // One labeled tick per dispatched range: makes the kernel the search
  // actually ran (auto-detection, env override, clamping) visible in
  // /metrics without guessing from build flags.
  std::string dispatch_series = "jecb_scan_dispatch_total{kernel=\"";
  dispatch_series += ScanKernelName(resolved);
  dispatch_series += "\"}";
  MetricsRegistry::Default().AddCounter(dispatch_series, 1);
  switch (resolved) {
#if JECB_SCAN_X86
    case ScanKernel::kAvx2:
      out = ScanRangeImpl(
          view, num_classes, num_partitions, begin, end,
          [&](std::span<const PackedAccess> a, int32_t parts[8],
              std::vector<int32_t>& spill) {
            return ClassifyAvx2(a, p, parts, spill, stats);
          });
      break;
    case ScanKernel::kSse2:
      out = ScanRangeImpl(
          view, num_classes, num_partitions, begin, end,
          [&](std::span<const PackedAccess> a, int32_t parts[8],
              std::vector<int32_t>& spill) {
            return ClassifySse2(a, p, parts, spill, stats);
          });
      break;
#endif
    default:
      out = ScanRangeImpl(view, num_classes, num_partitions, begin, end,
                          [&](std::span<const PackedAccess> a, int32_t parts[8],
                              std::vector<int32_t>& spill) {
                            return ClassifyScalar(a, p, parts, spill);
                          });
      stats.fallback = 0;
      stats.fast = 0;
      MetricsRegistry::Default().AddCounter("jecb_scan_scalar_txns_total",
                                            end - begin);
      return out;
  }
  if (stats.fast != 0) {
    MetricsRegistry::Default().AddCounter("jecb_scan_simd_fast_txns_total",
                                          stats.fast);
  }
  if (stats.fallback != 0) {
    MetricsRegistry::Default().AddCounter("jecb_scan_simd_fallback_txns_total",
                                          stats.fallback);
  }
  return out;
}

}  // namespace jecb
