#include "partition/mapping.h"

#include <algorithm>

namespace jecb {

int32_t RangeMapping::Map(const Value& value) const {
  if (!value.is_int()) {
    return static_cast<int32_t>(value.Hash() % static_cast<uint64_t>(k_));
  }
  int64_t v = std::clamp(value.AsInt(), lo_, hi_);
  // Equi-width buckets over [lo, hi]; width computed in doubles to avoid
  // overflow on wide domains.
  double span = static_cast<double>(hi_ - lo_) + 1.0;
  auto p = static_cast<int32_t>(static_cast<double>(v - lo_) / span *
                                static_cast<double>(k_));
  return std::clamp(p, 0, k_ - 1);
}

}  // namespace jecb
