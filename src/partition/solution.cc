#include "partition/solution.h"

namespace jecb {

int32_t JoinPathPartitioner::PartitionOf(const Database& db, TupleId tuple) const {
  auto it = cache_.find(tuple);
  if (it != cache_.end()) return it->second;
  Result<Value> v = path_.Evaluate(db, tuple);
  int32_t p = v.ok() ? mapping_->Map(v.value()) : kUnknownPartition;
  cache_.emplace(tuple, p);
  return p;
}

std::string JoinPathPartitioner::Describe(const Schema& schema) const {
  return path_.ToString(schema) + " via " + mapping_->name();
}

std::string DatabaseSolution::Describe(const Schema& schema) const {
  std::string out;
  for (size_t t = 0; t < per_table_.size(); ++t) {
    out += "  " + schema.table(static_cast<TableId>(t)).name + ": ";
    out += per_table_[t] ? per_table_[t]->Describe(schema) : "replicated (default)";
    out += "\n";
  }
  return out;
}

}  // namespace jecb
