#include "partition/solution.h"

namespace jecb {

int32_t JoinPathPartitioner::PartitionOf(const Database& db, TupleId tuple) const {
  return cache_.GetOrCompute(tuple, [&](TupleId t) {
    Result<Value> v = path_.Evaluate(db, t);
    return v.ok() ? mapping_->Map(v.value()) : kUnknownPartition;
  });
}

std::string JoinPathPartitioner::Describe(const Schema& schema) const {
  return path_.ToString(schema) + " via " + mapping_->name();
}

DatabaseSolution MakeNaiveHashSolution(const Database& db, int32_t num_partitions) {
  const Schema& schema = db.schema();
  DatabaseSolution solution(num_partitions, schema.num_tables());
  for (TableId t = 0; t < schema.num_tables(); ++t) {
    const std::vector<ColumnIdx> pk = schema.table(t).primary_key;
    auto fn = [pk, num_partitions](const Database& d, TupleId tuple) -> int32_t {
      uint64_t h;
      if (pk.empty()) {
        h = HashInt64(tuple.row);
      } else {
        Row key;
        key.reserve(pk.size());
        for (ColumnIdx c : pk) key.push_back(d.GetValue(tuple, c));
        h = RowHash{}(key);
      }
      return static_cast<int32_t>(h % static_cast<uint64_t>(num_partitions));
    };
    solution.Set(t, std::make_shared<CallbackPartitioner>(
                        std::move(fn), "hash(pk) mod " + std::to_string(num_partitions)));
  }
  return solution;
}

std::string DatabaseSolution::Describe(const Schema& schema) const {
  std::string out;
  for (size_t t = 0; t < per_table_.size(); ++t) {
    out += "  " + schema.table(static_cast<TableId>(t)).name + ": ";
    out += per_table_[t] ? per_table_[t]->Describe(schema) : "replicated (default)";
    out += "\n";
  }
  return out;
}

}  // namespace jecb
