// Incremental (delta) candidate scoring for the search hot loop.
//
// Phase-3 combination scoring and the Horticulture LNS evaluate thousands
// of candidate solutions per search, and a candidate almost always differs
// from the incumbent in the partitioner of one or two tables. Re-running
// Evaluate() per candidate re-resolves the whole tuple dictionary and
// re-scans every transaction; the delta evaluator instead keeps the
// incumbent ("base") fully evaluated — its resolved per-dictionary
// partition array plus its EvalResult — and scores a candidate by
//
//   1. re-resolving only the tuples of the changed tables,
//   2. re-scanning only the transactions that touch a changed table
//      (precomputed per-table affected-transaction lists), and
//   3. result = base − base_contribution(affected) + cand_contribution(affected).
//
// Every EvalResult field is an integer count, so the subtract/merge in step
// 3 is exact and reversible (EvalResult::Subtract is the inverse of Merge):
// the returned EvalResult is bit-identical to a full Evaluate() of the
// candidate, at any thread count and with any scan kernel. That identity is
// the whole contract — callers (the combiner's strict-improvement
// reduction, the LNS accept rule) never see a different number than the
// full rescan would produce, so search trajectories cannot drift.
// set_self_check(true) re-proves it on every candidate against the full
// evaluator (tests and parity benches run with it on).
//
// Thread-safety: Rebase() must be called with no concurrent
// EvaluateCandidate(); after it returns, EvaluateCandidate is safe from any
// number of threads (immutable base state + a pooled per-call scratch
// mirror of the partition array that is patched before and restored after
// each scan, so the O(dictionary) copy happens once per worker, not once
// per candidate).
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "partition/evaluator.h"
#include "partition/solution.h"
#include "trace/flat_trace.h"

namespace jecb {

class DeltaEvaluator {
 public:
  /// Precomputes the trace-side indexes (per-table tuple lists and
  /// affected-transaction lists) — independent of any solution, built once
  /// per FlatTrace. `pool` parallelizes Rebase; `kernel` picks the
  /// partition-scan kernel for every scan this evaluator performs.
  DeltaEvaluator(const Database* db, const FlatTrace* trace,
                 ThreadPool* pool = nullptr,
                 ScanKernel kernel = ScanKernel::kAuto);

  /// Fully evaluates `base` (resolve + scan, parallelized over `pool`) and
  /// makes it the incumbent deltas are taken against. Per-table base
  /// contributions are computed lazily on first use. Not thread-safe
  /// against concurrent EvaluateCandidate calls.
  const EvalResult& Rebase(const DatabaseSolution& base);

  bool has_base() const { return base_.has_value(); }
  const EvalResult& base_result() const { return base_result_; }

  /// Exact EvalResult of `candidate`, which must differ from the base only
  /// in the partitioners of `changed_tables` (listing extra tables is
  /// allowed and merely scans more; listing every table degenerates to a
  /// full rescan; omitting a genuinely changed table breaks the contract).
  /// `candidate` must share the base's partition count. Thread-safe after
  /// Rebase.
  EvalResult EvaluateCandidate(const DatabaseSolution& candidate,
                               std::span<const TableId> changed_tables) const;

  /// Number of trace transactions touching at least one tuple of `table` —
  /// the scan cost of a candidate changing only that table.
  size_t AffectedTxns(TableId table) const;

  /// When on, every EvaluateCandidate re-runs the full evaluator and aborts
  /// the process on any divergence — the delta contract, asserted
  /// continuously. Meant for tests and parity benches (it defeats the
  /// speedup, not the correctness).
  void set_self_check(bool on) { self_check_ = on; }

  /// Tables whose partitioners structurally differ between two solutions
  /// (null and ReplicatedTable compare equal; JoinPathPartitioners compare
  /// by path and mapping identity; any other pair of distinct objects is
  /// conservatively "changed"). Both solutions must cover the same tables.
  static std::vector<TableId> DiffTables(const DatabaseSolution& a,
                                         const DatabaseSolution& b);

 private:
  struct Scratch {
    std::vector<int32_t> part;  // mirror of base_part_, patched per candidate
    uint64_t epoch = 0;         // which Rebase the mirror reflects
  };
  class ScratchLease;

  /// Lazily computed base contribution of one table's affected transactions.
  struct TableBase {
    std::mutex mu;
    bool ready = false;
    EvalResult result;
  };

  const EvalResult& TableBaseResult(size_t table) const;

  const Database* db_;
  const FlatTrace* trace_;
  ThreadPool* pool_;
  ScanKernel kernel_;
  bool self_check_ = false;
  size_t num_tables_ = 0;

  // Trace-derived indexes, immutable after construction.
  std::vector<std::vector<uint32_t>> table_tuples_;  // dictionary indices
  std::vector<std::shared_ptr<const std::vector<uint32_t>>> table_txns_;

  // Incumbent state, rebuilt by Rebase.
  std::optional<DatabaseSolution> base_;
  std::vector<int32_t> base_part_;
  EvalResult base_result_;
  mutable std::vector<std::unique_ptr<TableBase>> base_table_;
  uint64_t epoch_ = 0;

  mutable std::mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<Scratch>> scratch_pool_;
};

}  // namespace jecb
