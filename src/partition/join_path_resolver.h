// Shared join-path resolution cache for the Phase-2 search.
//
// Every enumerated tree of a class re-resolves the same (table, row) pairs
// through JoinPath::Evaluate — and did so behind a freshly built
// unordered_map<TableId, unordered_map<RowId, optional<Value>>> per
// MeasureTreeFit / TreeCost / StatsFallback call, so one hot tuple was
// join-extended once per tree per metric. Join paths are functional
// dependencies, so a resolution is a pure property of (path, row): this
// resolver memoizes it once per distinct path signature for the lifetime of
// the resolver (one class partitioning), across every tree and metric.
//
// The per-path store is a flat open-addressing table keyed by RowId — one
// cache line per probe, no per-node allocation, no nested-map double hash.
// Resolved Values live in a deque so the `const Value*` handles stay stable
// while the table grows. A remembered failure (dangling FK) is a null value
// with the key present, so failing rows are also resolved only once.
//
// Not thread-safe: the pipeline gives each class (one Phase-2 task) its own
// resolver, which also keeps hot caches NUMA/core-local under ParallelFor.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "obs/metrics_registry.h"
#include "partition/join_path.h"
#include "storage/database.h"

namespace jecb {

/// Flat open-addressing map RowId -> resolved root value. Power-of-two
/// capacity, linear probing, keys stored as row + 1 so 0 means empty.
class RowValueCache {
 public:
  /// True when `row` has been resolved before; `*value` is then the cached
  /// root value, or nullptr for a remembered failure.
  bool Find(RowId row, const Value** value) const {
    if (slots_.empty()) return false;
    const uint32_t key = row + 1;
    for (size_t i = HashInt64(row) & mask_;; i = (i + 1) & mask_) {
      const Slot& s = slots_[i];
      if (s.key == 0) return false;
      if (s.key == key) {
        *value = s.value;
        return true;
      }
    }
  }

  /// Records the resolution of `row` (pass nullopt-like nullptr via
  /// `failed`); returns the stable cached pointer (null for a failure).
  /// `row` must not already be present.
  const Value* Insert(RowId row, Value value) {
    const Value* stable = &values_.emplace_back(std::move(value));
    InsertSlot(row, stable);
    return stable;
  }
  void InsertFailure(RowId row) { InsertSlot(row, nullptr); }

  size_t size() const { return size_; }

 private:
  struct Slot {
    uint32_t key = 0;  // row + 1; 0 = empty
    const Value* value = nullptr;
  };

  void InsertSlot(RowId row, const Value* value) {
    if (size_ + 1 > (slots_.size() * 7) / 10) Grow();
    const uint32_t key = row + 1;
    for (size_t i = HashInt64(row) & mask_;; i = (i + 1) & mask_) {
      if (slots_[i].key == 0) {
        slots_[i] = {key, value};
        ++size_;
        return;
      }
    }
  }

  void Grow() {
    size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      for (size_t i = HashInt64(s.key - 1) & mask_;; i = (i + 1) & mask_) {
        if (slots_[i].key == 0) {
          slots_[i] = s;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::deque<Value> values_;  // deque: stable addresses across growth
  size_t size_ = 0;
  size_t mask_ = 0;
};

/// Flat open-addressing memo of FollowForeignKey for one foreign key:
/// RowId -> parent RowId, kDangling for a remembered dangling key. A hop is
/// a pure function of (fk, child row), so every path that walks the same
/// foreign key shares the resolved edge — after the first path warms an
/// edge, later paths cross it with one integer probe instead of a Row
/// allocation + value-hash index lookup.
class FkRowCache {
 public:
  static constexpr RowId kDangling = UINT32_MAX;

  bool Find(RowId row, RowId* out) const {
    if (slots_.empty()) return false;
    const uint32_t key = row + 1;
    for (size_t i = HashInt64(row) & mask_;; i = (i + 1) & mask_) {
      const Slot& s = slots_[i];
      if (s.key == 0) return false;
      if (s.key == key) {
        *out = s.parent;
        return true;
      }
    }
  }

  /// `row` must not already be present; `parent` may be kDangling.
  void Insert(RowId row, RowId parent) {
    if (size_ + 1 > (slots_.size() * 7) / 10) Grow();
    const uint32_t key = row + 1;
    for (size_t i = HashInt64(row) & mask_;; i = (i + 1) & mask_) {
      if (slots_[i].key == 0) {
        slots_[i] = {key, parent};
        ++size_;
        return;
      }
    }
  }

 private:
  struct Slot {
    uint32_t key = 0;  // row + 1; 0 = empty
    RowId parent = kDangling;
  };

  void Grow() {
    size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      for (size_t i = HashInt64(s.key - 1) & mask_;; i = (i + 1) & mask_) {
        if (slots_[i].key == 0) {
          slots_[i] = s;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t mask_ = 0;
};

/// Memoizes JoinPath::Evaluate per (path signature, row), shared across
/// every tree/metric that asks for the same path.
class JoinPathResolver {
 public:
  /// `hop_cache` additionally memoizes each foreign-key edge once per
  /// resolver (exact: hops are pure), so paths sharing hops share the row
  /// walk. Off reproduces the per-path JoinPath::Evaluate resolution of the
  /// pre-incremental pipeline.
  explicit JoinPathResolver(const Database* db, bool hop_cache = true)
      : db_(db), hop_cache_(hop_cache) {}

  /// Flushes the FK-hop memo tallies once per resolver lifetime (one class
  /// partitioning), so the hot loop pays two local increments, never a
  /// registry lookup.
  ~JoinPathResolver() {
    if (fk_hop_hits_ != 0 || fk_hop_misses_ != 0) {
      MetricsRegistry& m = MetricsRegistry::Default();
      m.AddCounter("jecb_fk_hop_memo_hits_total", fk_hop_hits_);
      m.AddCounter("jecb_fk_hop_memo_misses_total", fk_hop_misses_);
    }
  }

  JoinPathResolver(const JoinPathResolver&) = delete;
  JoinPathResolver& operator=(const JoinPathResolver&) = delete;

  /// The resolution cache of one join path. Handles stay valid for the
  /// resolver's lifetime, so a tree evaluator looks its paths up once and
  /// then resolves rows with no per-access path matching.
  class PathCache {
   public:
    /// Root value of `row` of the path's source table, or nullptr when the
    /// path dangles there. Each distinct row is evaluated at most once.
    const Value* Resolve(RowId row) {
      const Value* v = nullptr;
      if (cache_.Find(row, &v)) return v;
      if (resolver_->hop_cache_) {
        // Same walk as JoinPath::Evaluate, but each hop goes through the
        // resolver's per-FK edge memo. A path fails exactly when a hop
        // dangles, so the memoized walk fails on exactly the same rows.
        RowId cur = row;
        for (FkIdx idx : path_.hops) {
          cur = resolver_->FollowCached(idx, cur);
          if (cur == FkRowCache::kDangling) {
            cache_.InsertFailure(row);
            return nullptr;
          }
        }
        return cache_.Insert(
            row, db_->GetValue({path_.dest.table, cur}, path_.dest.column));
      }
      Result<Value> r = path_.Evaluate(*db_, {path_.source_table, row});
      if (!r.ok()) {
        cache_.InsertFailure(row);
        return nullptr;
      }
      return cache_.Insert(row, std::move(r).value());
    }

    const JoinPath& path() const { return path_; }
    size_t resolved() const { return cache_.size(); }

   private:
    friend class JoinPathResolver;
    PathCache(const Database* db, JoinPathResolver* resolver, JoinPath path)
        : db_(db), resolver_(resolver), path_(std::move(path)) {}

    const Database* db_;
    JoinPathResolver* resolver_;
    JoinPath path_;
    RowValueCache cache_;
  };

  /// The parent row `row` reaches across foreign key `idx`, memoized per
  /// resolver; kDangling when the key dangles.
  RowId FollowCached(FkIdx idx, RowId row) {
    if (fk_caches_.size() <= idx) {
      fk_caches_.resize(db_->schema().foreign_keys().size());
    }
    FkRowCache& cache = fk_caches_[idx];
    RowId out = FkRowCache::kDangling;
    if (cache.Find(row, &out)) {
      ++fk_hop_hits_;
      return out;
    }
    ++fk_hop_misses_;
    const ForeignKey& fk = db_->schema().foreign_keys()[idx];
    Result<TupleId> r = db_->FollowForeignKey(fk, TupleId{fk.table, row});
    out = r.ok() ? r.value().row : FkRowCache::kDangling;
    cache.Insert(row, out);
    return out;
  }

  /// The shared cache for `path`; two equal paths get the same cache.
  PathCache* Cache(const JoinPath& path) {
    const uint64_t sig = Signature(path);
    for (size_t i = 0; i < caches_.size(); ++i) {
      if (sigs_[i] == sig && caches_[i]->path_ == path) return caches_[i].get();
    }
    sigs_.push_back(sig);
    caches_.push_back(std::unique_ptr<PathCache>(new PathCache(db_, this, path)));
    return caches_.back().get();
  }

  size_t num_paths() const { return caches_.size(); }

 private:
  static uint64_t Signature(const JoinPath& path) {
    uint64_t h = HashInt64(path.source_table);
    for (FkIdx hop : path.hops) h = HashCombine(h, HashInt64(hop));
    h = HashCombine(h, HashInt64(path.dest.table));
    return HashCombine(h, HashInt64(path.dest.column));
  }

  const Database* db_;
  const bool hop_cache_;
  std::vector<uint64_t> sigs_;
  std::vector<std::unique_ptr<PathCache>> caches_;
  std::vector<FkRowCache> fk_caches_;  // indexed by FkIdx, built on demand
  uint64_t fk_hop_hits_ = 0;    // flushed to the registry by the destructor
  uint64_t fk_hop_misses_ = 0;
};

}  // namespace jecb
