#include "partition/join_path.h"

namespace jecb {

bool JoinPath::HopsArePrefixOf(const JoinPath& other) const {
  if (source_table != other.source_table) return false;
  if (hops.size() > other.hops.size()) return false;
  for (size_t i = 0; i < hops.size(); ++i) {
    if (hops[i] != other.hops[i]) return false;
  }
  return true;
}

Status JoinPath::Validate(const Schema& schema) const {
  TableId cur = source_table;
  for (FkIdx idx : hops) {
    if (idx >= schema.foreign_keys().size()) {
      return Status::OutOfRange("bad foreign key index");
    }
    const ForeignKey& fk = schema.foreign_keys()[idx];
    if (fk.table != cur) {
      return Status::InvalidArgument("hop does not start at current table");
    }
    cur = fk.ref_table;
  }
  if (dest.table != cur) {
    return Status::InvalidArgument("destination not in final table");
  }
  if (dest.column >= schema.table(cur).columns.size()) {
    return Status::OutOfRange("bad destination column");
  }
  return Status::OK();
}

std::string JoinPath::ToString(const Schema& schema) const {
  std::string out = schema.table(source_table).name;
  for (FkIdx idx : hops) {
    const ForeignKey& fk = schema.foreign_keys()[idx];
    out += " -> " + schema.table(fk.ref_table).name;
  }
  out += "." + schema.table(dest.table).columns[dest.column].name;
  return out;
}

Result<Value> JoinPath::Evaluate(const Database& db, TupleId tuple) const {
  if (tuple.table != source_table) {
    return Status::InvalidArgument("tuple is not from the path's source table");
  }
  TupleId cur = tuple;
  for (FkIdx idx : hops) {
    const ForeignKey& fk = db.schema().foreign_keys()[idx];
    JECB_ASSIGN_OR_RETURN(cur, db.FollowForeignKey(fk, cur));
  }
  return db.GetValue(cur, dest.column);
}

Result<JoinPath> ConcatPaths(const Schema& schema, const JoinPath& base,
                             const JoinPath& extension) {
  if (extension.source_table != base.dest_table()) {
    return Status::InvalidArgument("extension does not start at base destination");
  }
  JoinPath out = base;
  for (FkIdx idx : extension.hops) out.hops.push_back(idx);
  out.dest = extension.dest;
  JECB_RETURN_NOT_OK(out.Validate(schema));
  return out;
}

}  // namespace jecb
