// Runtime transaction routing (paper Sec. 3): map a routing attribute value
// to the partitions that store matching tuples, via lookup tables. When no
// routing attribute matches the partitioning, the request is broadcast.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "partition/solution.h"
#include "storage/database.h"

namespace jecb {

/// Routes requests to partitions using per-attribute lookup tables built by
/// scanning the partitioned database once per attribute (lazily).
///
/// The lookup table for attribute A of table T maps each value of A to the
/// set of partitions holding a T-tuple with that value — exactly the paper's
/// "lookup table" mapping; coarser attributes yield smaller tables.
class Router {
 public:
  Router(const Database* db, const DatabaseSolution* solution)
      : db_(db), solution_(solution) {}

  /// Partitions that hold tuples of `attr`'s table whose `attr` column equals
  /// `value`. Unknown values (not in the data) return the broadcast set.
  /// A result containing kReplicated means "any partition".
  std::vector<int32_t> RouteValue(const ColumnRef& attr, const Value& value);

  /// All partitions.
  std::vector<int32_t> Broadcast() const;

  /// Number of distinct values in the lookup table built for `attr`
  /// (builds it if needed); the paper's lookup-table space metric.
  size_t LookupTableSize(const ColumnRef& attr);

 private:
  using LookupTable = std::unordered_map<Value, std::set<int32_t>, ValueHashFunctor>;

  const LookupTable& TableFor(const ColumnRef& attr);

  const Database* db_;
  const DatabaseSolution* solution_;
  std::map<ColumnRef, LookupTable> tables_;
};

}  // namespace jecb
