// Runtime transaction routing (paper Sec. 3): map a routing attribute value
// to the partitions that store matching tuples, via lookup tables. When no
// routing attribute matches the partitioning, the request is broadcast.
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "partition/solution.h"
#include "storage/database.h"

namespace jecb {

/// Routes requests to partitions using per-attribute lookup tables built by
/// scanning the partitioned database once per attribute (lazily).
///
/// The lookup table for attribute A of table T maps each value of A to the
/// set of partitions holding a T-tuple with that value — exactly the paper's
/// "lookup table" mapping; coarser attributes yield smaller tables.
///
/// Thread-safe: lazy table construction is serialized behind a mutex and a
/// built table is immutable, so concurrent RouteValue calls are fine. Call
/// Warm() with the attributes a workload routes on before spawning worker
/// threads to keep the full-table scan (which faults in the solution's
/// per-tuple memo caches) out of the parallel phase.
class Router {
 public:
  Router(const Database* db, const DatabaseSolution* solution)
      : db_(db), solution_(solution) {}

  /// Partitions that hold tuples of `attr`'s table whose `attr` column equals
  /// `value`, sorted ascending. Unknown values (not in the data) return the
  /// broadcast set. A result containing kReplicated means "any partition".
  std::vector<int32_t> RouteValue(const ColumnRef& attr, const Value& value);

  /// All partitions.
  std::vector<int32_t> Broadcast() const;

  /// Eagerly builds the lookup tables for `attrs` on the calling thread.
  void Warm(const std::vector<ColumnRef>& attrs);

  /// Number of distinct values in the lookup table built for `attr`
  /// (builds it if needed); the paper's lookup-table space metric.
  size_t LookupTableSize(const ColumnRef& attr);

 private:
  /// Values map to the sorted distinct partitions holding a matching tuple;
  /// tiny and read-only after build, so a sorted vector beats std::set.
  using PartitionSet = std::vector<int32_t>;
  using LookupTable = std::unordered_map<Value, PartitionSet, ValueHashFunctor>;

  const LookupTable& TableFor(const ColumnRef& attr);

  const Database* db_;
  const DatabaseSolution* solution_;
  std::mutex mu_;  ///< guards tables_; node-based map keeps references stable
  std::map<ColumnRef, LookupTable> tables_;
};

}  // namespace jecb
