#include "partition/evaluator.h"

#include <algorithm>
#include <cmath>

namespace jecb {

double EvalResult::LoadSkew() const {
  if (partition_load.empty()) return 0.0;
  double mean = 0.0;
  for (uint64_t v : partition_load) mean += static_cast<double>(v);
  mean /= static_cast<double>(partition_load.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (uint64_t v : partition_load) {
    double d = static_cast<double>(v) - mean;
    var += d * d;
  }
  var /= static_cast<double>(partition_load.size());
  return std::sqrt(var) / mean;
}

bool IsDistributed(const Database& db, const DatabaseSolution& solution,
                   const Transaction& txn, std::vector<int32_t>* touched) {
  // Small vector of distinct partitions; transactions touch few partitions.
  int32_t parts[8];
  size_t nparts = 0;
  bool writes_replicated = false;
  bool overflow_distributed = false;
  for (const Access& a : txn.accesses) {
    int32_t p = solution.PartitionOf(db, a.tuple);
    if (p == kReplicated) {
      if (a.write) writes_replicated = true;
      continue;  // replicated reads are local everywhere
    }
    bool seen = false;
    for (size_t i = 0; i < nparts; ++i) {
      if (parts[i] == p) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      if (nparts < std::size(parts)) {
        parts[nparts++] = p;
      } else {
        overflow_distributed = true;  // > 8 distinct partitions: distributed
      }
    }
  }
  if (touched != nullptr) {
    touched->assign(parts, parts + nparts);
  }
  return writes_replicated || overflow_distributed || nparts > 1;
}

EvalResult Evaluate(const Database& db, const DatabaseSolution& solution,
                    const Trace& trace) {
  EvalResult out;
  out.class_total.assign(trace.num_classes(), 0);
  out.class_distributed.assign(trace.num_classes(), 0);
  out.partition_load.assign(std::max(solution.num_partitions(), 1), 0);

  std::vector<int32_t> touched;
  for (const Transaction& txn : trace.transactions()) {
    bool dist = IsDistributed(db, solution, txn, &touched);
    ++out.total_txns;
    ++out.class_total[txn.class_id];
    if (dist) {
      ++out.distributed_txns;
      ++out.class_distributed[txn.class_id];
      out.partitions_touched += touched.size();
    }
    for (int32_t p : touched) {
      if (p >= 0 && p < static_cast<int32_t>(out.partition_load.size())) {
        ++out.partition_load[p];
      }
    }
  }
  return out;
}

}  // namespace jecb
