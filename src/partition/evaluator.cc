#include "partition/evaluator.h"

#include <algorithm>
#include <cmath>

#include "obs/trace_recorder.h"

namespace jecb {

double EvalResult::LoadSkew() const {
  if (partition_load.empty()) return 0.0;
  double mean = 0.0;
  for (uint64_t v : partition_load) mean += static_cast<double>(v);
  mean /= static_cast<double>(partition_load.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (uint64_t v : partition_load) {
    double d = static_cast<double>(v) - mean;
    var += d * d;
  }
  var /= static_cast<double>(partition_load.size());
  return std::sqrt(var) / mean;
}

void EvalResult::Merge(const EvalResult& other) {
  total_txns += other.total_txns;
  distributed_txns += other.distributed_txns;
  partitions_touched += other.partitions_touched;
  auto merge_vec = [](std::vector<uint64_t>* into, const std::vector<uint64_t>& from) {
    if (into->size() < from.size()) into->resize(from.size(), 0);
    for (size_t i = 0; i < from.size(); ++i) (*into)[i] += from[i];
  };
  merge_vec(&class_total, other.class_total);
  merge_vec(&class_distributed, other.class_distributed);
  merge_vec(&partition_load, other.partition_load);
}

void EvalResult::Subtract(const EvalResult& other) {
  total_txns -= other.total_txns;
  distributed_txns -= other.distributed_txns;
  partitions_touched -= other.partitions_touched;
  auto sub_vec = [](std::vector<uint64_t>* from, const std::vector<uint64_t>& what) {
    for (size_t i = 0; i < what.size() && i < from->size(); ++i) {
      (*from)[i] -= what[i];
    }
  };
  sub_vec(&class_total, other.class_total);
  sub_vec(&class_distributed, other.class_distributed);
  sub_vec(&partition_load, other.partition_load);
}

namespace {

/// Spill-aware IsDistributed core. `spill` is caller-provided scratch for
/// the rare >8-distinct-partition tail (naive-hash solutions at high k) so
/// the per-transaction hot path never constructs a heap vector: the
/// evaluator loops thread one buffer through every call of a range.
bool IsDistributedImpl(const Database& db, const DatabaseSolution& solution,
                       const Transaction& txn, std::vector<int32_t>* touched,
                       std::vector<int32_t>& spill) {
  // Small inline buffer of distinct partitions; nearly every transaction
  // touches few partitions. Beyond 8 distinct partitions the tail spills to
  // `spill` so `touched` stays complete and load counts stay exact.
  int32_t parts[8];
  size_t nparts = 0;
  spill.clear();
  bool writes_replicated = false;
  auto seen = [&](int32_t p) {
    for (size_t i = 0; i < nparts; ++i) {
      if (parts[i] == p) return true;
    }
    return std::find(spill.begin(), spill.end(), p) != spill.end();
  };
  for (const Access& a : txn.accesses) {
    int32_t p = solution.PartitionOf(db, a.tuple);
    if (p == kReplicated) {
      if (a.write) writes_replicated = true;
      continue;  // replicated reads are local everywhere
    }
    if (seen(p)) continue;
    if (nparts < std::size(parts)) {
      parts[nparts++] = p;
    } else {
      spill.push_back(p);
    }
  }
  if (touched != nullptr) {
    touched->assign(parts, parts + nparts);
    touched->insert(touched->end(), spill.begin(), spill.end());
  }
  return writes_replicated || nparts + spill.size() > 1;
}

}  // namespace

bool IsDistributed(const Database& db, const DatabaseSolution& solution,
                   const Transaction& txn, std::vector<int32_t>* touched) {
  std::vector<int32_t> spill;
  return IsDistributedImpl(db, solution, txn, touched, spill);
}

namespace {

/// Serial evaluation of the half-open transaction range [begin, end).
EvalResult EvaluateRange(const Database& db, const DatabaseSolution& solution,
                         const Trace& trace, size_t begin, size_t end) {
  EvalResult out;
  out.class_total.assign(trace.num_classes(), 0);
  out.class_distributed.assign(trace.num_classes(), 0);
  out.partition_load.assign(std::max(solution.num_partitions(), 1), 0);

  const std::vector<Transaction>& txns = trace.transactions();
  std::vector<int32_t> touched;
  std::vector<int32_t> spill;  // shared scratch for the rare >8-partition tail
  for (size_t i = begin; i < end; ++i) {
    const Transaction& txn = txns[i];
    bool dist = IsDistributedImpl(db, solution, txn, &touched, spill);
    ++out.total_txns;
    ++out.class_total[txn.class_id];
    if (dist) {
      ++out.distributed_txns;
      ++out.class_distributed[txn.class_id];
      out.partitions_touched += touched.size();
    }
    for (int32_t p : touched) {
      if (p >= 0 && p < static_cast<int32_t>(out.partition_load.size())) {
        ++out.partition_load[p];
      }
    }
  }
  return out;
}

}  // namespace

double CoordinationExposure(const EvalResult& result,
                            double per_participant_rate) {
  if (result.total_txns == 0 || result.distributed_txns == 0 ||
      per_participant_rate <= 0.0) {
    return 0.0;
  }
  const double rate = std::min(per_participant_rate, 1.0);
  const double avg_participants =
      static_cast<double>(result.partitions_touched) /
      static_cast<double>(result.distributed_txns);
  // P(at least one participant faults) for the average distributed txn.
  const double per_txn = 1.0 - std::pow(1.0 - rate, avg_participants);
  return result.cost() * per_txn;
}

/// Resolve-once pass: PartitionOf for every tuple of the dictionary, into a
/// flat array indexed by PackedAccess::tuple_index(). Each slot is written
/// by exactly one chunk and the value is a pure function of the tuple, so
/// the array's contents never depend on thread count.
std::vector<int32_t> ResolvePartitions(const Database& db,
                                       const DatabaseSolution& solution,
                                       const FlatTrace& trace, ThreadPool* pool) {
  const size_t n = trace.num_tuples();
  std::vector<int32_t> part(n);
  auto resolve_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      part[i] = solution.PartitionOf(db, trace.tuple(static_cast<uint32_t>(i)));
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2) {
    resolve_range(0, n);
    return part;
  }
  const size_t num_chunks =
      std::min(n, static_cast<size_t>(pool->num_threads()) * 4);
  const size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  ParallelFor(
      pool, num_chunks,
      [&](size_t c) {
        size_t begin = c * chunk_size;
        resolve_range(begin, std::min(n, begin + chunk_size));
      },
      "eval.resolve");
  return part;
}

EvalResult EvaluateWithPartitions(const TraceView& view,
                                  std::span<const int32_t> part,
                                  int32_t num_partitions, ThreadPool* pool,
                                  ScanKernel kernel) {
  const size_t n = view.size();
  const size_t num_classes = view.trace().num_classes();
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2) {
    return ScanPartitionRange(view, part, num_classes, num_partitions, 0, n,
                              kernel);
  }

  // Chunked exactly like the Trace overload: same chunk count, same
  // contiguous ranges, merged in chunk-index order.
  const size_t num_chunks =
      std::min(n, static_cast<size_t>(pool->num_threads()) * 4);
  const size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  std::vector<EvalResult> partial(num_chunks);
  ParallelFor(
      pool, num_chunks,
      [&](size_t c) {
        size_t begin = c * chunk_size;
        size_t end = std::min(n, begin + chunk_size);
        partial[c] = ScanPartitionRange(view, part, num_classes, num_partitions,
                                        begin, end, kernel);
      },
      "eval.chunks");

  EvalResult out;
  out.class_total.assign(num_classes, 0);
  out.class_distributed.assign(num_classes, 0);
  out.partition_load.assign(std::max(num_partitions, 1), 0);
  for (const EvalResult& p : partial) out.Merge(p);
  return out;
}

EvalResult Evaluate(const Database& db, const DatabaseSolution& solution,
                    const TraceView& view, ThreadPool* pool, ScanKernel kernel) {
  const size_t n = view.size();
  JECB_SPAN1("eval", "evaluate.flat", "txns", static_cast<int64_t>(n));
  const std::vector<int32_t> part =
      ResolvePartitions(db, solution, view.trace(), pool);
  return EvaluateWithPartitions(view, part, solution.num_partitions(), pool,
                                kernel);
}

EvalResult Evaluate(const Database& db, const DatabaseSolution& solution,
                    const FlatTrace& trace, ThreadPool* pool, ScanKernel kernel) {
  return Evaluate(db, solution, TraceView(&trace), pool, kernel);
}

EvalResult Evaluate(const Database& db, const DatabaseSolution& solution,
                    const Trace& trace, ThreadPool* pool) {
  const size_t n = trace.size();
  JECB_SPAN1("eval", "evaluate", "txns", static_cast<int64_t>(n));
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2) {
    return EvaluateRange(db, solution, trace, 0, n);
  }

  // Oversplit relative to the worker count so a straggler chunk (hot memo
  // misses) cannot serialize the pass; merge order is by chunk index.
  const size_t num_chunks =
      std::min(n, static_cast<size_t>(pool->num_threads()) * 4);
  const size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  std::vector<EvalResult> partial(num_chunks);
  ParallelFor(
      pool, num_chunks,
      [&](size_t c) {
        size_t begin = c * chunk_size;
        size_t end = std::min(n, begin + chunk_size);
        partial[c] = EvaluateRange(db, solution, trace, begin, end);
      },
      "eval.chunks");

  EvalResult out;
  out.class_total.assign(trace.num_classes(), 0);
  out.class_distributed.assign(trace.num_classes(), 0);
  out.partition_load.assign(std::max(solution.num_partitions(), 1), 0);
  for (const EvalResult& p : partial) out.Merge(p);
  return out;
}

}  // namespace jecb
