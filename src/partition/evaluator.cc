#include "partition/evaluator.h"

#include <algorithm>
#include <cmath>

#include "obs/trace_recorder.h"

namespace jecb {

double EvalResult::LoadSkew() const {
  if (partition_load.empty()) return 0.0;
  double mean = 0.0;
  for (uint64_t v : partition_load) mean += static_cast<double>(v);
  mean /= static_cast<double>(partition_load.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (uint64_t v : partition_load) {
    double d = static_cast<double>(v) - mean;
    var += d * d;
  }
  var /= static_cast<double>(partition_load.size());
  return std::sqrt(var) / mean;
}

void EvalResult::Merge(const EvalResult& other) {
  total_txns += other.total_txns;
  distributed_txns += other.distributed_txns;
  partitions_touched += other.partitions_touched;
  auto merge_vec = [](std::vector<uint64_t>* into, const std::vector<uint64_t>& from) {
    if (into->size() < from.size()) into->resize(from.size(), 0);
    for (size_t i = 0; i < from.size(); ++i) (*into)[i] += from[i];
  };
  merge_vec(&class_total, other.class_total);
  merge_vec(&class_distributed, other.class_distributed);
  merge_vec(&partition_load, other.partition_load);
}

bool IsDistributed(const Database& db, const DatabaseSolution& solution,
                   const Transaction& txn, std::vector<int32_t>* touched) {
  // Small inline buffer of distinct partitions; nearly every transaction
  // touches few partitions. Beyond 8 distinct partitions (naive-hash
  // solutions at high k) the tail spills to a heap vector so `touched`
  // stays complete and load/participation counts stay exact.
  int32_t parts[8];
  size_t nparts = 0;
  std::vector<int32_t> spill;
  bool writes_replicated = false;
  auto seen = [&](int32_t p) {
    for (size_t i = 0; i < nparts; ++i) {
      if (parts[i] == p) return true;
    }
    return std::find(spill.begin(), spill.end(), p) != spill.end();
  };
  for (const Access& a : txn.accesses) {
    int32_t p = solution.PartitionOf(db, a.tuple);
    if (p == kReplicated) {
      if (a.write) writes_replicated = true;
      continue;  // replicated reads are local everywhere
    }
    if (seen(p)) continue;
    if (nparts < std::size(parts)) {
      parts[nparts++] = p;
    } else {
      spill.push_back(p);
    }
  }
  if (touched != nullptr) {
    touched->assign(parts, parts + nparts);
    touched->insert(touched->end(), spill.begin(), spill.end());
  }
  return writes_replicated || nparts + spill.size() > 1;
}

namespace {

/// Serial evaluation of the half-open transaction range [begin, end).
EvalResult EvaluateRange(const Database& db, const DatabaseSolution& solution,
                         const Trace& trace, size_t begin, size_t end) {
  EvalResult out;
  out.class_total.assign(trace.num_classes(), 0);
  out.class_distributed.assign(trace.num_classes(), 0);
  out.partition_load.assign(std::max(solution.num_partitions(), 1), 0);

  const std::vector<Transaction>& txns = trace.transactions();
  std::vector<int32_t> touched;
  for (size_t i = begin; i < end; ++i) {
    const Transaction& txn = txns[i];
    bool dist = IsDistributed(db, solution, txn, &touched);
    ++out.total_txns;
    ++out.class_total[txn.class_id];
    if (dist) {
      ++out.distributed_txns;
      ++out.class_distributed[txn.class_id];
      out.partitions_touched += touched.size();
    }
    for (int32_t p : touched) {
      if (p >= 0 && p < static_cast<int32_t>(out.partition_load.size())) {
        ++out.partition_load[p];
      }
    }
  }
  return out;
}

}  // namespace

double CoordinationExposure(const EvalResult& result,
                            double per_participant_rate) {
  if (result.total_txns == 0 || result.distributed_txns == 0 ||
      per_participant_rate <= 0.0) {
    return 0.0;
  }
  const double rate = std::min(per_participant_rate, 1.0);
  const double avg_participants =
      static_cast<double>(result.partitions_touched) /
      static_cast<double>(result.distributed_txns);
  // P(at least one participant faults) for the average distributed txn.
  const double per_txn = 1.0 - std::pow(1.0 - rate, avg_participants);
  return result.cost() * per_txn;
}

EvalResult Evaluate(const Database& db, const DatabaseSolution& solution,
                    const Trace& trace, ThreadPool* pool) {
  const size_t n = trace.size();
  JECB_SPAN1("eval", "evaluate", "txns", static_cast<int64_t>(n));
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2) {
    return EvaluateRange(db, solution, trace, 0, n);
  }

  // Oversplit relative to the worker count so a straggler chunk (hot memo
  // misses) cannot serialize the pass; merge order is by chunk index.
  const size_t num_chunks =
      std::min(n, static_cast<size_t>(pool->num_threads()) * 4);
  const size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  std::vector<EvalResult> partial(num_chunks);
  ParallelFor(
      pool, num_chunks,
      [&](size_t c) {
        size_t begin = c * chunk_size;
        size_t end = std::min(n, begin + chunk_size);
        partial[c] = EvaluateRange(db, solution, trace, begin, end);
      },
      "eval.chunks");

  EvalResult out;
  out.class_total.assign(trace.num_classes(), 0);
  out.class_distributed.assign(trace.num_classes(), 0);
  out.partition_load.assign(std::max(solution.num_partitions(), 1), 0);
  for (const EvalResult& p : partial) out.Merge(p);
  return out;
}

}  // namespace jecb
