// Cost evaluation (paper Definitions 5 and 6): a transaction is distributed
// when it writes a replicated tuple or touches tuples in more than one
// partition; the cost of a solution on a workload is the fraction of
// distributed transactions. The evaluator also reports per-class costs
// (Figs. 8/9) and partitions-touched / skew statistics (Horticulture's cost
// model inputs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "partition/partition_scan.h"
#include "partition/solution.h"
#include "trace/flat_trace.h"
#include "trace/trace.h"

namespace jecb {

/// Result of evaluating one solution against one trace.
struct EvalResult {
  uint64_t total_txns = 0;
  uint64_t distributed_txns = 0;

  /// Indexed by class id of the evaluated trace.
  std::vector<uint64_t> class_total;
  std::vector<uint64_t> class_distributed;

  /// Sum over distributed transactions of the number of partitions touched.
  uint64_t partitions_touched = 0;
  /// Per-partition transaction participation counts (skew input).
  std::vector<uint64_t> partition_load;

  double cost() const {
    return total_txns == 0 ? 0.0
                           : static_cast<double>(distributed_txns) /
                                 static_cast<double>(total_txns);
  }
  /// Cost of one class; ids beyond the evaluated trace's class count (e.g.
  /// a class that never occurred) are 0, not UB.
  double class_cost(uint32_t cls) const {
    if (cls >= class_total.size() || class_total[cls] == 0) return 0.0;
    return static_cast<double>(class_distributed[cls]) /
           static_cast<double>(class_total[cls]);
  }
  uint64_t class_total_of(uint32_t cls) const {
    return cls < class_total.size() ? class_total[cls] : 0;
  }
  uint64_t class_distributed_of(uint32_t cls) const {
    return cls < class_distributed.size() ? class_distributed[cls] : 0;
  }

  /// Coefficient of variation of partition_load; 0 = perfectly balanced.
  double LoadSkew() const;

  /// Accumulates `other` into this result (element-wise sums; vectors grow
  /// to the longer length). Every field is an integer count, so merging is
  /// exact and order-independent — the parallel evaluator still merges in
  /// chunk-index order to keep the contract auditable.
  void Merge(const EvalResult& other);

  /// Removes `other`'s contribution: the exact inverse of Merge (integer
  /// counters subtract without rounding, so Merge(x) followed by Subtract(x)
  /// restores this result bit for bit). `other` must be a sub-workload of
  /// this result — its counters element-wise <= ours and its vectors no
  /// longer; vector sizes here are unchanged. This is what makes delta
  /// evaluation reversible: base - base_contribution + new_contribution.
  void Subtract(const EvalResult& other);

  /// Bit-exact comparison — every field is an integer, so "equal" is
  /// well-defined and is the identity the delta/SIMD paths are held to.
  bool operator==(const EvalResult&) const = default;
};

/// Classifies a single transaction under `solution`; returns true when
/// distributed. `touched` (optional) receives the distinct partitions.
bool IsDistributed(const Database& db, const DatabaseSolution& solution,
                   const Transaction& txn, std::vector<int32_t>* touched = nullptr);

/// First-order analytic exposure of a workload to per-participant
/// coordination faults: the expected fraction of transactions that are
/// distributed AND draw at least one fault during prepare, when each
/// participant independently faults with probability `per_participant_rate`
/// (the FaultPlan convention — see runtime/fault_injector.h). Uses the
/// average participant count `partitions_touched / distributed_txns`, so it
/// shares the same Definition 5/6 classification the runtime's fault
/// injector targets. This is the quantity bench/fault_tolerance checks the
/// measured abort exposure against: fewer distributed transactions means
/// strictly less exposure at any fault rate.
double CoordinationExposure(const EvalResult& result,
                            double per_participant_rate);

/// Evaluates `solution` over every transaction of `trace`.
///
/// With a pool of more than one worker the trace is split into fixed
/// contiguous chunks, each chunk accumulates into its own EvalResult, and
/// the per-chunk results are merged in chunk-index order — bit-identical to
/// the serial pass at any thread count (all counters are integers). A null
/// pool or single-worker pool runs the exact serial path.
EvalResult Evaluate(const Database& db, const DatabaseSolution& solution,
                    const Trace& trace, ThreadPool* pool = nullptr);

/// Columnar resolve-once evaluation. `PartitionOf` is materialized exactly
/// once per distinct tuple of the trace's dictionary (a flat int32 array,
/// resolved in parallel chunks), then the per-transaction accounting runs
/// as a branch-light scan over the SoA access arrays — chunked and merged
/// exactly like the Trace overload. Because PartitionOf is a pure function
/// of the tuple, every EvalResult field is bit-identical to the row-oriented
/// path at any thread count. `kernel` picks the partition-scan kernel
/// (partition_scan.h); every kernel is bit-identical to kScalar.
EvalResult Evaluate(const Database& db, const DatabaseSolution& solution,
                    const FlatTrace& trace, ThreadPool* pool = nullptr,
                    ScanKernel kernel = ScanKernel::kAuto);

/// Same, over a zero-copy view. The resolve pass covers the underlying
/// trace's whole dictionary (results only depend on the tuples the view
/// touches, so this is exact; it only does extra resolution work when the
/// view is much smaller than its trace).
EvalResult Evaluate(const Database& db, const DatabaseSolution& solution,
                    const TraceView& view, ThreadPool* pool = nullptr,
                    ScanKernel kernel = ScanKernel::kAuto);

/// The resolve pass of the columnar evaluator, exposed for callers that
/// reuse the array across many scans (the delta evaluator): PartitionOf of
/// every tuple of the trace's dictionary, indexed by
/// PackedAccess::tuple_index(). Each slot is a pure function of its tuple,
/// so the contents never depend on thread count.
std::vector<int32_t> ResolvePartitions(const Database& db,
                                       const DatabaseSolution& solution,
                                       const FlatTrace& trace,
                                       ThreadPool* pool = nullptr);

/// The scan half of the columnar evaluator against an externally resolved
/// partition array (`part` must cover the view's whole dictionary):
/// chunked into the same contiguous ranges and merged in the same chunk
/// order as Evaluate, so Evaluate(view) == EvaluateWithPartitions(view,
/// ResolvePartitions(...)) bit for bit at any thread count and kernel.
EvalResult EvaluateWithPartitions(const TraceView& view,
                                  std::span<const int32_t> part,
                                  int32_t num_partitions,
                                  ThreadPool* pool = nullptr,
                                  ScanKernel kernel = ScanKernel::kAuto);

}  // namespace jecb
