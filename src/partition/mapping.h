// Mapping functions f_{k,X}: root-attribute value -> partition (paper
// Definition 4/10). Partitions are 0..k-1; kReplicated marks tuples that are
// copied to every partition.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "storage/value.h"

namespace jecb {

/// Partition id of a replicated tuple (the paper's "i = 0").
inline constexpr int32_t kReplicated = -1;
/// Partition id when a tuple's placement cannot be resolved (dangling FK).
inline constexpr int32_t kUnknownPartition = -2;

/// Maps values of a partitioning attribute to partitions.
class MappingFunction {
 public:
  virtual ~MappingFunction() = default;

  /// Partition of `value` in [0, k), or kReplicated.
  virtual int32_t Map(const Value& value) const = 0;

  virtual int32_t num_partitions() const = 0;
  virtual std::string name() const = 0;
};

/// Deterministic hash partitioning.
class HashMapping : public MappingFunction {
 public:
  explicit HashMapping(int32_t k) : k_(k) {}
  int32_t Map(const Value& value) const override {
    return static_cast<int32_t>(value.Hash() % static_cast<uint64_t>(k_));
  }
  int32_t num_partitions() const override { return k_; }
  std::string name() const override { return "hash"; }

 private:
  int32_t k_;
};

/// Equi-width range partitioning over integer values [lo, hi]; values
/// outside the range clamp to the edge partitions, non-integers hash.
class RangeMapping : public MappingFunction {
 public:
  RangeMapping(int32_t k, int64_t lo, int64_t hi) : k_(k), lo_(lo), hi_(hi) {}
  int32_t Map(const Value& value) const override;
  int32_t num_partitions() const override { return k_; }
  std::string name() const override { return "range"; }
  int64_t lo() const { return lo_; }
  int64_t hi() const { return hi_; }

 private:
  int32_t k_;
  int64_t lo_;
  int64_t hi_;
};

struct ValueHashFunctor {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Explicit value -> partition lookup (the paper's lookup tables); values
/// not in the table fall back to hash.
class LookupMapping : public MappingFunction {
 public:
  LookupMapping(int32_t k, std::unordered_map<Value, int32_t, ValueHashFunctor> table)
      : k_(k), table_(std::move(table)) {}
  int32_t Map(const Value& value) const override {
    auto it = table_.find(value);
    if (it != table_.end()) return it->second;
    return static_cast<int32_t>(value.Hash() % static_cast<uint64_t>(k_));
  }
  int32_t num_partitions() const override { return k_; }
  std::string name() const override { return "lookup"; }
  size_t table_size() const { return table_.size(); }
  const std::unordered_map<Value, int32_t, ValueHashFunctor>& entries() const {
    return table_;
  }

 private:
  int32_t k_;
  std::unordered_map<Value, int32_t, ValueHashFunctor> table_;
};

}  // namespace jecb
