// Cost models for ranking partitioning solutions. The paper's evaluation
// uses the simplest one — the fraction of distributed transactions
// (Definition 6) — and its conclusion calls for "a spectrum of increasingly
// complex cost functions": models that also count the number of sites a
// transaction spans, and models that weight distributed work by its relative
// runtime. All three live here and plug into the Phase-3 combiner.
#pragma once

#include <memory>
#include <string>

#include "partition/evaluator.h"

namespace jecb {

/// Ranks solutions given the evaluator's statistics. Lower is better.
class CostModel {
 public:
  virtual ~CostModel() = default;
  virtual double Cost(const EvalResult& result) const = 0;
  virtual std::string name() const = 0;
};

/// Definition 6: the fraction of distributed transactions (paper default).
class DistributedFractionCost : public CostModel {
 public:
  double Cost(const EvalResult& r) const override { return r.cost(); }
  std::string name() const override { return "distributed-fraction"; }
};

/// Counts how many partitions distributed transactions touch: a transaction
/// spanning 5 sites costs more than one spanning 2 (two-phase commit fan-out).
/// Cost = (sum over txns of max(sites - 1, 0)) / total transactions.
class SitesTouchedCost : public CostModel {
 public:
  double Cost(const EvalResult& r) const override {
    if (r.total_txns == 0) return 0.0;
    // partitions_touched sums sites over distributed txns only.
    double extra = static_cast<double>(r.partitions_touched) -
                   static_cast<double>(r.distributed_txns);
    return extra / static_cast<double>(r.total_txns);
  }
  std::string name() const override { return "sites-touched"; }
};

/// Models relative running time: a local transaction costs 1, a distributed
/// one costs `distributed_penalty` plus `per_site_penalty` per extra site,
/// with a load-skew multiplier (hot partitions bound throughput). Reported
/// as average cost per transaction, normalized so all-local = 1.
class WeightedRuntimeCost : public CostModel {
 public:
  explicit WeightedRuntimeCost(double distributed_penalty = 5.0,
                               double per_site_penalty = 1.0,
                               double skew_weight = 0.5)
      : distributed_penalty_(distributed_penalty),
        per_site_penalty_(per_site_penalty),
        skew_weight_(skew_weight) {}

  double Cost(const EvalResult& r) const override {
    if (r.total_txns == 0) return 0.0;
    double local = static_cast<double>(r.total_txns - r.distributed_txns);
    double extra_sites = static_cast<double>(r.partitions_touched) -
                         static_cast<double>(r.distributed_txns);
    double work = local +
                  static_cast<double>(r.distributed_txns) * distributed_penalty_ +
                  extra_sites * per_site_penalty_;
    double avg = work / static_cast<double>(r.total_txns);
    return avg * (1.0 + skew_weight_ * r.LoadSkew());
  }
  std::string name() const override { return "weighted-runtime"; }

 private:
  double distributed_penalty_;
  double per_site_penalty_;
  double skew_weight_;
};

}  // namespace jecb
