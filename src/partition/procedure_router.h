// Procedure-level routing (paper Sec. 3): given a stored-procedure
// invocation — class name plus parameter values — decide which partitions
// must participate, using the code analysis to map parameters to routing
// attributes and per-attribute lookup tables to map values to partitions.
//
// "To route a query or stored procedure, we find a relevant attribute that
//  is compatible and finer than the partitioning attribute and build a
//  lookup table on it via a join path. If no such attribute exists ... we
//  are forced to broadcast."
#pragma once

#include <map>
#include <string>
#include <vector>

#include "partition/router.h"
#include "sql/analyzer.h"

namespace jecb {

/// Routes whole procedure invocations. Built once per (solution, workload):
/// analyzes each procedure to learn which attributes its parameters bind.
class ProcedureRouter {
 public:
  /// Analyzes `procedures` against the database's schema. Procedures that
  /// fail analysis are skipped (they will broadcast).
  ProcedureRouter(const Database* db, const DatabaseSolution* solution,
                  const std::vector<sql::Procedure>& procedures);

  /// The routing decision for one invocation.
  struct Decision {
    std::vector<int32_t> partitions;  ///< target partitions (kReplicated = any)
    bool broadcast = false;           ///< no usable routing attribute
    std::string routed_by;            ///< qualified attribute used, if any
  };

  /// Routes an invocation. `params` maps parameter name (without '@') to its
  /// value; parameters bound to no single-valued attribute are ignored.
  /// Unknown procedures broadcast.
  Decision Route(const std::string& procedure, const std::map<std::string, Value>& params);

  /// Fraction of single-partition decisions over a sequence of calls
  /// (diagnostics for tests/examples).
  size_t lookup_tables_built() { return tables_built_; }

 private:
  struct ParamBinding {
    std::string param;
    ColumnRef attr;
  };

  const Database* db_;
  const DatabaseSolution* solution_;
  Router router_;
  // Per procedure (lower-cased name): parameter -> bound attributes, in
  // preference order (fewest partitions first is discovered lazily).
  std::map<std::string, std::vector<ParamBinding>> bindings_;
  size_t tables_built_ = 0;
};

}  // namespace jecb
