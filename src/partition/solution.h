// Partitioning solutions (paper Definitions 10 and 11): for each table,
// something that assigns every stored tuple to a partition or to
// replication. JECB solutions pair a join path with a mapping function;
// Schism solutions wrap a learned classifier; replication is a solution too.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "partition/join_path.h"
#include "partition/mapping.h"
#include "partition/tuple_cache.h"
#include "storage/database.h"

namespace jecb {

/// Assigns stored tuples of one table to partitions.
class TablePartitioner {
 public:
  virtual ~TablePartitioner() = default;

  /// Partition of the tuple in [0,k), kReplicated, or kUnknownPartition.
  virtual int32_t PartitionOf(const Database& db, TupleId tuple) const = 0;

  /// Human-readable description ("replicated", "T_ID -> ... via hash", ...).
  virtual std::string Describe(const Schema& schema) const = 0;
};

/// Full replication of a table (the paper's i = 0 case).
class ReplicatedTable : public TablePartitioner {
 public:
  int32_t PartitionOf(const Database&, TupleId) const override { return kReplicated; }
  std::string Describe(const Schema&) const override { return "replicated"; }
};

/// Definition 10: a join path from the table to a partitioning attribute
/// plus a mapping function over that attribute. Evaluation results are
/// memoized per tuple: join paths are functional, so the cache is sound.
/// The memo is thread-safe (striped locks) so one solution can be shared by
/// the parallel evaluator's worker threads.
class JoinPathPartitioner : public TablePartitioner {
 public:
  JoinPathPartitioner(JoinPath path, std::shared_ptr<const MappingFunction> mapping)
      : path_(std::move(path)), mapping_(std::move(mapping)) {}

  int32_t PartitionOf(const Database& db, TupleId tuple) const override;
  std::string Describe(const Schema& schema) const override;

  const JoinPath& path() const { return path_; }
  const MappingFunction& mapping() const { return *mapping_; }

 private:
  JoinPath path_;
  std::shared_ptr<const MappingFunction> mapping_;
  ConcurrentTupleCache cache_;
};

/// Wraps an arbitrary tuple -> partition function (used by the Schism
/// baseline's per-table classifiers). Results are memoized per tuple, which
/// is sound because placement functions are deterministic over stored rows.
/// Thread-safe like JoinPathPartitioner; `fn` itself must be safe to call
/// concurrently (the stock classifiers only read the database).
class CallbackPartitioner : public TablePartitioner {
 public:
  using Fn = std::function<int32_t(const Database&, TupleId)>;
  CallbackPartitioner(Fn fn, std::string description)
      : fn_(std::move(fn)), description_(std::move(description)) {}

  int32_t PartitionOf(const Database& db, TupleId tuple) const override {
    return cache_.GetOrCompute(tuple, [&](TupleId t) { return fn_(db, t); });
  }
  std::string Describe(const Schema&) const override { return description_; }

 private:
  Fn fn_;
  std::string description_;
  ConcurrentTupleCache cache_;
};

/// Definition 11: a solution for the whole database — one TablePartitioner
/// per table (replicated tables use ReplicatedTable).
class DatabaseSolution {
 public:
  DatabaseSolution(int32_t num_partitions, size_t num_tables)
      : k_(num_partitions), per_table_(num_tables) {}

  void Set(TableId table, std::shared_ptr<const TablePartitioner> p) {
    per_table_[table] = std::move(p);
  }
  const TablePartitioner* Get(TableId table) const { return per_table_[table].get(); }
  std::shared_ptr<const TablePartitioner> GetShared(TableId table) const {
    return per_table_[table];
  }

  /// Partition of a stored tuple; tables with no partitioner assigned are
  /// treated as replicated.
  int32_t PartitionOf(const Database& db, TupleId tuple) const {
    const TablePartitioner* p = per_table_[tuple.table].get();
    return p == nullptr ? kReplicated : p->PartitionOf(db, tuple);
  }

  int32_t num_partitions() const { return k_; }
  size_t num_tables() const { return per_table_.size(); }

  /// One line per table, for reports and EXPERIMENTS.md.
  std::string Describe(const Schema& schema) const;

 private:
  int32_t k_;
  std::vector<std::shared_ptr<const TablePartitioner>> per_table_;
};

/// Naive baseline solution: every table hash-partitioned independently by
/// its primary key (by row id when a table has no PK). Nothing co-locates
/// across tables, so almost every multi-table transaction is distributed —
/// the worst case the paper's Fig. 1 throughput cliff is measured against.
DatabaseSolution MakeNaiveHashSolution(const Database& db, int32_t num_partitions);

}  // namespace jecb
