// Striped concurrent memo cache for per-tuple partition assignments.
//
// JoinPathPartitioner and CallbackPartitioner memoize tuple -> partition
// because traces revisit the same hot tuples constantly. The parallel
// evaluator shares one solution across worker threads, so the memo must be
// thread-safe; striping the map over independently locked shards keeps
// contention negligible (evaluation is dominated by join-path walks, not by
// cache lookups). Values are pure functions of the tuple, so a racing
// compute just inserts the same value twice — results never depend on
// interleaving.
#pragma once

#include <array>
#include <mutex>
#include <unordered_map>

#include "storage/database.h"

namespace jecb {

class ConcurrentTupleCache {
 public:
  /// Returns the cached partition for `tuple`, computing it with `compute`
  /// (a TupleId -> int32_t callable) on a miss. Safe from any thread.
  template <typename Fn>
  int32_t GetOrCompute(TupleId tuple, Fn&& compute) const {
    Shard& shard = shards_[ShardOf(tuple)];
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      auto it = shard.map.find(tuple);
      if (it != shard.map.end()) return it->second;
    }
    // Compute outside the lock: join-path evaluation may be expensive and
    // is deterministic, so duplicated work under contention is harmless.
    int32_t p = compute(tuple);
    std::lock_guard<std::mutex> guard(shard.mu);
    shard.map.emplace(tuple, p);
    return p;
  }

 private:
  static constexpr size_t kShards = 16;

  struct Shard {
    std::mutex mu;
    std::unordered_map<TupleId, int32_t, TupleIdHash> map;
  };

  static size_t ShardOf(TupleId tuple) { return TupleIdHash{}(tuple) % kShards; }

  mutable std::array<Shard, kShards> shards_;
};

}  // namespace jecb
