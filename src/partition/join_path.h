// JoinPath (paper Definition 2): a sequence of key-foreign key hops from a
// table's primary key to a destination attribute, possibly in another table.
// A join path is a functional dependency key(T) -> X and therefore maps each
// stored tuple of T to one value of X.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "storage/database.h"

namespace jecb {

/// Index of a ForeignKey within Schema::foreign_keys(); stable across schema
/// copies, unlike pointers.
using FkIdx = uint32_t;

/// A join path p(key(T), X): start at `source_table`, follow `hops` (each a
/// child->parent foreign key), and read column `dest` of the final table.
/// An empty hop list means X is a column of T itself.
struct JoinPath {
  TableId source_table = 0;
  std::vector<FkIdx> hops;
  ColumnRef dest;

  bool operator==(const JoinPath&) const = default;

  size_t length() const { return hops.size(); }

  /// True when this path's hop list is a (proper or equal) prefix of `other`'s
  /// and both start at the same table.
  bool HopsArePrefixOf(const JoinPath& other) const;

  /// Validates hop chaining and destination against `schema`.
  Status Validate(const Schema& schema) const;

  /// "TRADE.T_ID -> T_CA_ID=CA_ID -> CUSTOMER_ACCOUNT.CA_C_ID" style string.
  std::string ToString(const Schema& schema) const;

  /// Evaluates the functional dependency for a stored tuple of the source
  /// table; NotFound when a foreign key dangles.
  Result<Value> Evaluate(const Database& db, TupleId tuple) const;

  /// The table that `dest` belongs to.
  TableId dest_table() const { return dest.table; }
};

/// Appends `extension` (a path from the dest table of `base` onward) to
/// `base`. The extension's source must be the base's destination table.
Result<JoinPath> ConcatPaths(const Schema& schema, const JoinPath& base,
                             const JoinPath& extension);

}  // namespace jecb
