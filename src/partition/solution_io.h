// DatabaseSolution (de)serialization: the deployable artifact of a
// partitioning run. A solution file records, per table, either replication
// or a join path (as table/column names, robust to schema reordering) plus
// its mapping function — including learned lookup tables.
//
// Format (line oriented, '#' comments):
//   # jecb-solution v1
//   K <num-partitions>
//   REPLICATE <table>
//   PATH <table> <hops> <child-table> <child-col>[,<child-col>...] ... <dest-table>.<dest-col> <mapping>
//   where <mapping> is one of:
//     hash
//     range <lo> <hi>
//     lookup <n> (<value> <partition>)...   -- values encoded as in trace_io
//
// Classifier-based solutions (Schism's decision trees) are not serializable
// and are rejected with kUnsupported.
#pragma once

#include <string>

#include "common/result.h"
#include "partition/solution.h"
#include "storage/database.h"

namespace jecb {

/// Serializes `solution`; fails with kUnsupported for callback partitioners.
Result<std::string> SolutionToString(const Schema& schema,
                                     const DatabaseSolution& solution);

Status SaveSolution(const std::string& path, const Schema& schema,
                    const DatabaseSolution& solution);

/// Parses a solution against `schema`; join-path hops are re-resolved by
/// child table + child columns.
Result<DatabaseSolution> SolutionFromString(const std::string& text,
                                            const Schema& schema);

Result<DatabaseSolution> LoadSolution(const std::string& path, const Schema& schema);

}  // namespace jecb
