// Partition-scan kernels for the evaluation hot loop.
//
// The inner loop of Evaluate() classifies one transaction at a time: gather
// the partition of every accessed tuple out of the resolved per-dictionary
// array, dedupe the non-replicated partitions, and flag replicated writes
// (paper Definitions 5/6). That scan runs once per candidate solution, so
// Phase-3 combination scoring and the Horticulture LNS execute it millions
// of times per search.
//
// This header owns the scan in three interchangeable kernels over the same
// 4-byte PackedAccess SoA rows:
//   kScalar — the reference implementation, kept verbatim as the
//             bit-identity oracle every other kernel is asserted against;
//   kSse2   — 4-lane min/max classification (baseline on every x86-64);
//   kAvx2   — 8-lane with hardware gathers, selected by runtime CPUID.
// The vector kernels exploit that almost every transaction is single-home:
// one pass computes min/max over the non-replicated partitions and the
// replicated-write flag; when min == max the transaction is fully
// classified without any dedupe. Transactions that straddle partitions
// (min != max) fall back to the scalar dedupe for the exact distinct set,
// so every kernel produces byte-identical EvalResults — the SIMD path is an
// optimization of the common case, never an approximation.
//
// Kernels are compiled behind the JECB_SIMD CMake option (scalar is always
// built); selection is runtime CPUID with a process-wide override
// (SetScanKernel / the JECB_SIMD environment variable) and a per-call
// ScanKernel argument threaded down from JecbOptions::simd.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "trace/flat_trace.h"

namespace jecb {

struct EvalResult;

enum class ScanKernel : int32_t {
  /// Resolve to ActiveScanKernel() at the call site.
  kAuto = 0,
  kScalar = 1,
  kSse2 = 2,
  kAvx2 = 3,
};

std::string_view ScanKernelName(ScanKernel kernel);

/// Widest kernel both compiled in (JECB_SIMD) and supported by this CPU
/// (CPUID, checked once). kScalar when JECB_SIMD=OFF or off x86-64.
ScanKernel BestScanKernel();

/// The kernel kAuto resolves to: BestScanKernel() unless overridden by
/// SetScanKernel or the JECB_SIMD environment variable (read once; values
/// "scalar"/"off"/"0", "sse2", "avx2", "auto"/"on"). Requests wider than
/// BestScanKernel() clamp down, so callers can always ask for kAvx2.
ScanKernel ActiveScanKernel();

/// Process-wide override for kAuto (kAuto itself restores env/CPUID
/// selection). Thread-safe; takes effect on the next scan.
void SetScanKernel(ScanKernel kernel);

/// Resolves kAuto and clamps unsupported requests down to BestScanKernel().
ScanKernel ResolveScanKernel(ScanKernel kernel);

/// Scans the view's half-open position range [begin, end) against an
/// externally resolved partition array (`part`, indexed by
/// PackedAccess::tuple_index(), covering the view's whole dictionary) and
/// returns the Definition 5/6 accounting of exactly those transactions.
/// The EvalResult is byte-identical for every kernel; divergence is a bug,
/// not a tolerance. Thread-safe (read-only inputs, per-call scratch).
EvalResult ScanPartitionRange(const TraceView& view, std::span<const int32_t> part,
                              size_t num_classes, int32_t num_partitions,
                              size_t begin, size_t end,
                              ScanKernel kernel = ScanKernel::kAuto);

}  // namespace jecb
