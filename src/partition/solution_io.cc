#include "partition/solution_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace jecb {

namespace {

std::string EncodeValue(const Value& v) {
  if (v.is_int()) return "i:" + std::to_string(v.AsInt());
  if (v.is_double()) return "d:" + FormatDouble(v.AsDouble(), 9);
  std::string out = "s:";
  for (char c : v.AsString()) {
    if (c == ' ') {
      out += "\\40";
    } else {
      out += c;
    }
  }
  return out;
}

Result<Value> DecodeValue(const std::string& token) {
  if (token.size() < 2 || token[1] != ':') {
    return Status::ParseError("bad value token '" + token + "'");
  }
  std::string payload = token.substr(2);
  switch (token[0]) {
    case 'i':
      return Value(static_cast<int64_t>(std::strtoll(payload.c_str(), nullptr, 10)));
    case 'd':
      return Value(std::strtod(payload.c_str(), nullptr));
    case 's': {
      std::string out;
      for (size_t i = 0; i < payload.size(); ++i) {
        if (payload[i] == '\\' && i + 2 < payload.size() && payload[i + 1] == '4' &&
            payload[i + 2] == '0') {
          out += ' ';
          i += 2;
        } else {
          out += payload[i];
        }
      }
      return Value(std::move(out));
    }
    default:
      return Status::ParseError("unknown value type '" + token + "'");
  }
}

}  // namespace

Result<std::string> SolutionToString(const Schema& schema,
                                     const DatabaseSolution& solution) {
  std::string out = "# jecb-solution v1\n";
  out += "K " + std::to_string(solution.num_partitions()) + "\n";
  for (size_t t = 0; t < solution.num_tables(); ++t) {
    auto tid = static_cast<TableId>(t);
    const TablePartitioner* p = solution.Get(tid);
    const std::string& table_name = schema.table(tid).name;
    if (p == nullptr || dynamic_cast<const ReplicatedTable*>(p) != nullptr) {
      out += "REPLICATE " + table_name + "\n";
      continue;
    }
    const auto* jp = dynamic_cast<const JoinPathPartitioner*>(p);
    if (jp == nullptr) {
      return Status::Unsupported("table " + table_name +
                                 " uses a non-serializable partitioner");
    }
    const JoinPath& path = jp->path();
    out += "PATH " + table_name + " " + std::to_string(path.hops.size());
    for (FkIdx f : path.hops) {
      const ForeignKey& fk = schema.foreign_keys()[f];
      std::vector<std::string> cols;
      for (ColumnIdx c : fk.columns) cols.push_back(schema.table(fk.table).column_name(c));
      out += " " + schema.table(fk.table).name + " " + Join(cols, ",");
    }
    out += " " + schema.QualifiedName(path.dest);

    const MappingFunction& mapping = jp->mapping();
    if (mapping.name() == "hash") {
      out += " hash\n";
    } else if (const auto* range = dynamic_cast<const RangeMapping*>(&mapping)) {
      out += " range " + std::to_string(range->lo()) + " " +
             std::to_string(range->hi()) + "\n";
    } else if (const auto* lookup = dynamic_cast<const LookupMapping*>(&mapping)) {
      out += " lookup " + std::to_string(lookup->table_size());
      for (const auto& [value, part] : lookup->entries()) {
        out += " " + EncodeValue(value) + " " + std::to_string(part);
      }
      out += "\n";
    } else {
      return Status::Unsupported("mapping '" + mapping.name() + "' not serializable");
    }
  }
  return out;
}

Status SaveSolution(const std::string& path, const Schema& schema,
                    const DatabaseSolution& solution) {
  JECB_ASSIGN_OR_RETURN(std::string text, SolutionToString(schema, solution));
  std::ofstream out(path);
  if (!out.is_open()) return Status::InvalidArgument("cannot open " + path);
  out << text;
  out.close();
  if (!out.good()) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Result<DatabaseSolution> SolutionFromString(const std::string& text,
                                            const Schema& schema) {
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  int32_t k = -1;
  std::unique_ptr<DatabaseSolution> solution;

  auto parse_error = [&](const std::string& why) {
    return Status::ParseError(why + " at line " + std::to_string(line_no));
  };

  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> tokens;
    for (const std::string& tok : Split(std::string(trimmed), ' ')) {
      if (!tok.empty()) tokens.push_back(tok);
    }
    if (tokens[0] == "K") {
      if (tokens.size() != 2) return parse_error("K needs a partition count");
      k = std::atoi(tokens[1].c_str());
      if (k <= 0) return parse_error("bad partition count");
      solution = std::make_unique<DatabaseSolution>(k, schema.num_tables());
      auto replicated = std::make_shared<ReplicatedTable>();
      for (size_t t = 0; t < schema.num_tables(); ++t) {
        solution->Set(static_cast<TableId>(t), replicated);
      }
      continue;
    }
    if (solution == nullptr) return parse_error("K line must come first");
    if (tokens[0] == "REPLICATE") {
      if (tokens.size() != 2) return parse_error("REPLICATE needs a table");
      JECB_ASSIGN_OR_RETURN(TableId tid, schema.FindTable(tokens[1]));
      solution->Set(tid, std::make_shared<ReplicatedTable>());
      continue;
    }
    if (tokens[0] != "PATH") return parse_error("unknown record '" + tokens[0] + "'");
    if (tokens.size() < 4) return parse_error("truncated PATH record");

    JECB_ASSIGN_OR_RETURN(TableId source, schema.FindTable(tokens[1]));
    int hops = std::atoi(tokens[2].c_str());
    if (hops < 0 || tokens.size() < 4 + 2 * static_cast<size_t>(hops)) {
      return parse_error("truncated hop list");
    }
    JoinPath path;
    path.source_table = source;
    size_t pos = 3;
    for (int h = 0; h < hops; ++h) {
      JECB_ASSIGN_OR_RETURN(TableId child, schema.FindTable(tokens[pos]));
      std::vector<ColumnIdx> cols;
      for (const std::string& col : Split(tokens[pos + 1], ',')) {
        JECB_ASSIGN_OR_RETURN(ColumnIdx c, schema.table(child).FindColumn(col));
        cols.push_back(c);
      }
      // Resolve the foreign key by child table + child columns.
      bool found = false;
      for (FkIdx f = 0; f < schema.foreign_keys().size(); ++f) {
        const ForeignKey& fk = schema.foreign_keys()[f];
        if (fk.table == child && fk.columns == cols) {
          path.hops.push_back(f);
          found = true;
          break;
        }
      }
      if (!found) return parse_error("no foreign key matches hop " + tokens[pos]);
      pos += 2;
    }
    JECB_ASSIGN_OR_RETURN(path.dest, schema.ResolveQualified(tokens[pos]));
    ++pos;
    JECB_RETURN_NOT_OK(path.Validate(schema));

    if (pos >= tokens.size()) return parse_error("missing mapping");
    std::shared_ptr<const MappingFunction> mapping;
    if (tokens[pos] == "hash") {
      mapping = std::make_shared<HashMapping>(k);
    } else if (tokens[pos] == "range") {
      if (pos + 2 >= tokens.size()) return parse_error("range needs lo and hi");
      int64_t lo = std::strtoll(tokens[pos + 1].c_str(), nullptr, 10);
      int64_t hi = std::strtoll(tokens[pos + 2].c_str(), nullptr, 10);
      if (hi < lo) return parse_error("range hi < lo");
      mapping = std::make_shared<RangeMapping>(k, lo, hi);
    } else if (tokens[pos] == "lookup") {
      if (pos + 1 >= tokens.size()) return parse_error("lookup needs a size");
      int n = std::atoi(tokens[pos + 1].c_str());
      if (n < 0 || tokens.size() < pos + 2 + 2 * static_cast<size_t>(n)) {
        return parse_error("truncated lookup table");
      }
      std::unordered_map<Value, int32_t, ValueHashFunctor> table;
      size_t vpos = pos + 2;
      for (int i = 0; i < n; ++i) {
        JECB_ASSIGN_OR_RETURN(Value v, DecodeValue(tokens[vpos]));
        int32_t part = std::atoi(tokens[vpos + 1].c_str());
        if (part < 0 || part >= k) return parse_error("lookup partition out of range");
        table.emplace(std::move(v), part);
        vpos += 2;
      }
      mapping = std::make_shared<LookupMapping>(k, std::move(table));
    } else {
      return parse_error("unknown mapping '" + tokens[pos] + "'");
    }
    solution->Set(source, std::make_shared<JoinPathPartitioner>(path, mapping));
  }
  if (solution == nullptr) return Status::ParseError("empty solution file");
  return std::move(*solution);
}

Result<DatabaseSolution> LoadSolution(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return SolutionFromString(buffer.str(), schema);
}

}  // namespace jecb
