// Skew-aware partition-to-node packing — the mitigation the paper's
// conclusion sketches: "partition the database into many more partitions
// than processing elements; a heuristic bin packing that considers the heat
// of partitions might alleviate the impact of skew".
//
// Usage: produce a solution with k micro-partitions (k >> nodes), measure
// per-partition heat on a trace, pack micro-partitions onto nodes with
// longest-processing-time-first, and wrap the solution so tuples map
// directly to nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/evaluator.h"
#include "partition/solution.h"

namespace jecb {

/// Greedy LPT bin packing: assigns each of `heats.size()` micro-partitions
/// to one of `num_nodes` nodes, heaviest first onto the least-loaded node.
/// Returns the micro-partition -> node map.
std::vector<int32_t> PackPartitionsByHeat(const std::vector<uint64_t>& heats,
                                          int32_t num_nodes);

/// Per-node total heat under a packing (for reporting and tests).
std::vector<uint64_t> NodeLoads(const std::vector<uint64_t>& heats,
                                const std::vector<int32_t>& packing,
                                int32_t num_nodes);

/// Wraps `micro` (a k-micro-partition solution) into a node-level solution:
/// each tuple's micro-partition is remapped through `packing`. Replicated
/// tuples stay replicated.
DatabaseSolution MapPartitionsToNodes(const DatabaseSolution& micro,
                                      const std::vector<int32_t>& packing,
                                      int32_t num_nodes);

/// Convenience: measures heat of `micro` on `trace` (per-partition
/// transaction participation), packs onto `num_nodes`, and returns the
/// node-level solution.
DatabaseSolution PackSolution(const Database& db, const DatabaseSolution& micro,
                              const Trace& trace, int32_t num_nodes,
                              std::vector<int32_t>* packing_out = nullptr);

}  // namespace jecb
