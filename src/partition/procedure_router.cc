#include "partition/procedure_router.h"

#include "common/string_util.h"

namespace jecb {

ProcedureRouter::ProcedureRouter(const Database* db, const DatabaseSolution* solution,
                                 const std::vector<sql::Procedure>& procedures)
    : db_(db), solution_(solution), router_(db, solution) {
  for (const sql::Procedure& proc : procedures) {
    auto info = sql::AnalyzeProcedure(db_->schema(), proc);
    if (!info.ok()) continue;  // unanalyzable procedures broadcast at runtime
    std::vector<ParamBinding> bindings;
    for (const auto& [param, attrs] : info.value().param_bindings) {
      for (ColumnRef attr : attrs) {
        bindings.push_back({param, attr});
      }
    }
    bindings_[ToLower(proc.name)] = std::move(bindings);
  }
}

ProcedureRouter::Decision ProcedureRouter::Route(
    const std::string& procedure, const std::map<std::string, Value>& params) {
  Decision decision;
  auto it = bindings_.find(ToLower(procedure));
  if (it == bindings_.end()) {
    decision.broadcast = true;
    decision.partitions = router_.Broadcast();
    return decision;
  }
  // Try each (param, attribute) binding the caller supplied a value for;
  // keep the narrowest answer. A decision is only non-broadcast if some
  // lookup table actually restricted the partition set.
  const size_t all = static_cast<size_t>(solution_->num_partitions());
  size_t best_size = all + 1;
  for (const ParamBinding& binding : it->second) {
    auto value = params.find(binding.param);
    if (value == params.end()) continue;
    ++tables_built_;
    std::vector<int32_t> parts = router_.RouteValue(binding.attr, value->second);
    // "any partition" answers (replicated data only) count as size 1.
    size_t size = parts.size();
    if (size < best_size) {
      best_size = size;
      decision.partitions = std::move(parts);
      decision.routed_by = db_->schema().QualifiedName(binding.attr);
      if (best_size <= 1) break;
    }
  }
  if (best_size > all || decision.partitions.size() >= all) {
    decision.broadcast = true;
    decision.partitions = router_.Broadcast();
    decision.routed_by.clear();
  }
  return decision;
}

}  // namespace jecb
