#include "partition/bin_packing.h"

#include <algorithm>
#include <numeric>

namespace jecb {

std::vector<int32_t> PackPartitionsByHeat(const std::vector<uint64_t>& heats,
                                          int32_t num_nodes) {
  std::vector<size_t> order(heats.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return heats[a] > heats[b]; });
  std::vector<int32_t> packing(heats.size(), 0);
  std::vector<uint64_t> load(std::max(num_nodes, 1), 0);
  for (size_t p : order) {
    auto node = static_cast<int32_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    packing[p] = node;
    load[node] += heats[p];
  }
  return packing;
}

std::vector<uint64_t> NodeLoads(const std::vector<uint64_t>& heats,
                                const std::vector<int32_t>& packing,
                                int32_t num_nodes) {
  std::vector<uint64_t> load(std::max(num_nodes, 1), 0);
  for (size_t p = 0; p < heats.size(); ++p) load[packing[p]] += heats[p];
  return load;
}

namespace {

/// Table partitioner adapter: inner micro-partition remapped to a node.
class RemappedPartitioner : public TablePartitioner {
 public:
  RemappedPartitioner(std::shared_ptr<const TablePartitioner> inner,
                      std::shared_ptr<const std::vector<int32_t>> packing)
      : inner_(std::move(inner)), packing_(std::move(packing)) {}

  int32_t PartitionOf(const Database& db, TupleId tuple) const override {
    int32_t p = inner_->PartitionOf(db, tuple);
    if (p < 0) return p;  // replicated / unknown pass through
    if (static_cast<size_t>(p) >= packing_->size()) return kUnknownPartition;
    return (*packing_)[p];
  }

  std::string Describe(const Schema& schema) const override {
    return inner_->Describe(schema) + " packed onto nodes";
  }

 private:
  std::shared_ptr<const TablePartitioner> inner_;
  std::shared_ptr<const std::vector<int32_t>> packing_;
};

}  // namespace

DatabaseSolution MapPartitionsToNodes(const DatabaseSolution& micro,
                                      const std::vector<int32_t>& packing,
                                      int32_t num_nodes) {
  DatabaseSolution out(num_nodes, micro.num_tables());
  auto shared_packing = std::make_shared<const std::vector<int32_t>>(packing);
  for (size_t t = 0; t < micro.num_tables(); ++t) {
    auto inner = micro.GetShared(static_cast<TableId>(t));
    if (inner == nullptr) continue;
    out.Set(static_cast<TableId>(t),
            std::make_shared<RemappedPartitioner>(std::move(inner), shared_packing));
  }
  return out;
}

DatabaseSolution PackSolution(const Database& db, const DatabaseSolution& micro,
                              const Trace& trace, int32_t num_nodes,
                              std::vector<int32_t>* packing_out) {
  EvalResult heat = Evaluate(db, micro, trace);
  std::vector<int32_t> packing = PackPartitionsByHeat(heat.partition_load, num_nodes);
  if (packing_out != nullptr) *packing_out = packing;
  return MapPartitionsToNodes(micro, packing, num_nodes);
}

}  // namespace jecb
