#include "partition/delta_evaluator.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"

namespace jecb {

namespace {

constexpr const char* kCandidatesTotal = "jecb_delta_candidates_total";
constexpr const char* kAffectedTotal = "jecb_delta_affected_txns_total";
constexpr const char* kNoopTotal = "jecb_delta_noop_candidates_total";
constexpr const char* kFullRescanTotal = "jecb_delta_full_rescans_total";
constexpr const char* kRebasesTotal = "jecb_delta_rebases_total";

}  // namespace

/// RAII lease on one scratch partition mirror from the shared pool. The pool
/// caps live mirrors at the number of concurrent EvaluateCandidate calls, so
/// the O(dictionary) copy amortizes to once per worker per rebase epoch.
class DeltaEvaluator::ScratchLease {
 public:
  explicit ScratchLease(const DeltaEvaluator* ev) : ev_(ev) {
    std::lock_guard<std::mutex> g(ev_->scratch_mu_);
    if (!ev_->scratch_pool_.empty()) {
      scratch_ = std::move(ev_->scratch_pool_.back());
      ev_->scratch_pool_.pop_back();
    }
    if (scratch_ == nullptr) scratch_ = std::make_unique<Scratch>();
  }
  ~ScratchLease() {
    std::lock_guard<std::mutex> g(ev_->scratch_mu_);
    ev_->scratch_pool_.push_back(std::move(scratch_));
  }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  Scratch& operator*() const { return *scratch_; }

 private:
  const DeltaEvaluator* ev_;
  std::unique_ptr<Scratch> scratch_ = nullptr;
};

DeltaEvaluator::DeltaEvaluator(const Database* db, const FlatTrace* trace,
                               ThreadPool* pool, ScanKernel kernel)
    : db_(db), trace_(trace), pool_(pool), kernel_(kernel) {
  const size_t nt = trace_->num_tuples();
  num_tables_ = db_->schema().tables().size();
  for (uint32_t i = 0; i < nt; ++i) {
    num_tables_ = std::max(num_tables_,
                           static_cast<size_t>(trace_->tuple(i).table) + 1);
  }

  table_tuples_.resize(num_tables_);
  for (uint32_t i = 0; i < nt; ++i) {
    table_tuples_[trace_->tuple(i).table].push_back(i);
  }

  // Affected-transaction lists: for each table, the ascending global indices
  // of every transaction touching at least one of its tuples. `last` dedupes
  // within a transaction without a per-txn set.
  std::vector<std::vector<uint32_t>> txns(num_tables_);
  std::vector<uint32_t> last(num_tables_, UINT32_MAX);
  const size_t n = trace_->size();
  for (uint32_t t = 0; t < n; ++t) {
    for (PackedAccess a : trace_->accesses(t)) {
      const TableId tab = trace_->tuple(a.tuple_index()).table;
      if (last[tab] != t) {
        last[tab] = t;
        txns[tab].push_back(t);
      }
    }
  }
  table_txns_.reserve(num_tables_);
  for (size_t tab = 0; tab < num_tables_; ++tab) {
    table_txns_.push_back(
        std::make_shared<const std::vector<uint32_t>>(std::move(txns[tab])));
  }
}

const EvalResult& DeltaEvaluator::Rebase(const DatabaseSolution& base) {
  JECB_SPAN1("eval", "delta.rebase", "txns",
             static_cast<int64_t>(trace_->size()));
  base_.emplace(base);
  base_part_ = ResolvePartitions(*db_, base, *trace_, pool_);
  base_result_ = EvaluateWithPartitions(TraceView(trace_), base_part_,
                                        base.num_partitions(), pool_, kernel_);
  base_table_.clear();
  base_table_.reserve(num_tables_);
  for (size_t t = 0; t < num_tables_; ++t) {
    base_table_.push_back(std::make_unique<TableBase>());
  }
  ++epoch_;
  MetricsRegistry::Default().AddCounter(kRebasesTotal, 1);
  return base_result_;
}

size_t DeltaEvaluator::AffectedTxns(TableId table) const {
  return table < table_txns_.size() ? table_txns_[table]->size() : 0;
}

const EvalResult& DeltaEvaluator::TableBaseResult(size_t table) const {
  TableBase& entry = *base_table_[table];
  std::lock_guard<std::mutex> g(entry.mu);
  if (!entry.ready) {
    const auto& txns = table_txns_[table];
    entry.result = ScanPartitionRange(
        TraceView::FromSelection(trace_, txns), base_part_,
        trace_->num_classes(), base_->num_partitions(), 0, txns->size(),
        kernel_);
    entry.ready = true;
  }
  return entry.result;
}

EvalResult DeltaEvaluator::EvaluateCandidate(
    const DatabaseSolution& candidate,
    std::span<const TableId> changed_tables) const {
  if (!base_.has_value() ||
      candidate.num_partitions() != base_->num_partitions()) {
    // No base (or an incomparable one): fall back to the full evaluator.
    return Evaluate(*db_, candidate, *trace_, pool_, kernel_);
  }

  // Normalize: sorted, deduplicated, and restricted to tables the trace
  // actually touches — a changed table with no accessed tuples cannot move
  // any counter.
  std::vector<TableId> changed(changed_tables.begin(), changed_tables.end());
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  std::erase_if(changed, [&](TableId t) {
    return t >= num_tables_ || table_tuples_[t].empty();
  });

  MetricsRegistry& metrics = MetricsRegistry::Default();
  metrics.AddCounter(kCandidatesTotal, 1);

  EvalResult out;
  if (changed.empty()) {
    metrics.AddCounter(kNoopTotal, 1);
    out = base_result_;
  } else {
    // Affected-transaction selection and its base-side contribution. The
    // single-table case (the overwhelmingly common one) reuses the
    // precomputed list and the lazily cached base contribution.
    std::shared_ptr<const std::vector<uint32_t>> sel;
    EvalResult base_sub;
    if (changed.size() == 1) {
      sel = table_txns_[changed[0]];
      base_sub = TableBaseResult(changed[0]);
    } else {
      // Merge the ascending per-table lists into one deduplicated union.
      std::vector<uint32_t> merged;
      for (TableId t : changed) {
        const std::vector<uint32_t>& add = *table_txns_[t];
        if (add.empty()) continue;
        if (merged.empty()) {
          merged = add;
          continue;
        }
        std::vector<uint32_t> next;
        next.reserve(merged.size() + add.size());
        std::set_union(merged.begin(), merged.end(), add.begin(), add.end(),
                       std::back_inserter(next));
        merged = std::move(next);
      }
      sel = std::make_shared<const std::vector<uint32_t>>(std::move(merged));
      base_sub = ScanPartitionRange(TraceView::FromSelection(trace_, sel),
                                    base_part_, trace_->num_classes(),
                                    base_->num_partitions(), 0, sel->size(),
                                    kernel_);
    }

    JECB_SPAN2("eval", "delta.candidate", "affected",
               static_cast<int64_t>(sel->size()), "tables",
               static_cast<int64_t>(changed.size()));
    metrics.AddCounter(kAffectedTotal, sel->size());
    if (sel->size() == trace_->size()) {
      metrics.AddCounter(kFullRescanTotal, 1);
    }

    if (sel->empty()) {
      out = base_result_;
    } else {
      // Patch the scratch mirror with the candidate's placements for the
      // changed tables' tuples, scan the affected selection, restore.
      ScratchLease lease(this);
      Scratch& scratch = *lease;
      if (scratch.epoch != epoch_ || scratch.part.size() != base_part_.size()) {
        scratch.part = base_part_;
        scratch.epoch = epoch_;
      }
      for (TableId t : changed) {
        for (uint32_t idx : table_tuples_[t]) {
          scratch.part[idx] = candidate.PartitionOf(*db_, trace_->tuple(idx));
        }
      }
      EvalResult cand_sub = ScanPartitionRange(
          TraceView::FromSelection(trace_, sel), scratch.part,
          trace_->num_classes(), base_->num_partitions(), 0, sel->size(),
          kernel_);
      for (TableId t : changed) {
        for (uint32_t idx : table_tuples_[t]) {
          scratch.part[idx] = base_part_[idx];
        }
      }

      out = base_result_;
      out.Subtract(base_sub);
      out.Merge(cand_sub);
    }
  }

  if (self_check_) {
    // The contract, asserted: the delta result must be bit-identical to a
    // full serial re-evaluation of the candidate.
    EvalResult full = Evaluate(*db_, candidate, *trace_, nullptr, kernel_);
    if (!(full == out)) {
      std::fprintf(stderr,
                   "FATAL: delta evaluation diverged from full Evaluate "
                   "(delta cost=%f dist=%llu, full cost=%f dist=%llu, "
                   "changed_tables=%zu)\n",
                   out.cost(), static_cast<unsigned long long>(out.distributed_txns),
                   full.cost(), static_cast<unsigned long long>(full.distributed_txns),
                   changed.size());
      std::abort();
    }
  }
  return out;
}

std::vector<TableId> DeltaEvaluator::DiffTables(const DatabaseSolution& a,
                                                const DatabaseSolution& b) {
  std::vector<TableId> changed;
  const size_t n = std::max(a.num_tables(), b.num_tables());
  for (size_t t = 0; t < n; ++t) {
    const TablePartitioner* pa = t < a.num_tables() ? a.Get(static_cast<TableId>(t)) : nullptr;
    const TablePartitioner* pb = t < b.num_tables() ? b.Get(static_cast<TableId>(t)) : nullptr;
    if (pa == pb) continue;  // same object, or both unset
    // Null means replicated (DatabaseSolution::PartitionOf), so null and
    // ReplicatedTable are interchangeable.
    const bool ra = pa == nullptr || dynamic_cast<const ReplicatedTable*>(pa) != nullptr;
    const bool rb = pb == nullptr || dynamic_cast<const ReplicatedTable*>(pb) != nullptr;
    if (ra && rb) continue;
    if (!ra && !rb) {
      const auto* ja = dynamic_cast<const JoinPathPartitioner*>(pa);
      const auto* jb = dynamic_cast<const JoinPathPartitioner*>(pb);
      if (ja != nullptr && jb != nullptr && ja->path() == jb->path() &&
          &ja->mapping() == &jb->mapping()) {
        continue;  // same path and the same mapping object: identical placement
      }
    }
    changed.push_back(static_cast<TableId>(t));
  }
  return changed;
}

}  // namespace jecb
