#include "partition/router.h"

namespace jecb {

const Router::LookupTable& Router::TableFor(const ColumnRef& attr) {
  auto it = tables_.find(attr);
  if (it != tables_.end()) return it->second;
  LookupTable table;
  const TableData& data = db_->table_data(attr.table);
  for (RowId r = 0; r < data.num_rows(); ++r) {
    TupleId t{attr.table, r};
    int32_t p = solution_->PartitionOf(*db_, t);
    table[data.At(r, attr.column)].insert(p);
  }
  return tables_.emplace(attr, std::move(table)).first->second;
}

std::vector<int32_t> Router::RouteValue(const ColumnRef& attr, const Value& value) {
  const LookupTable& table = TableFor(attr);
  auto it = table.find(value);
  if (it == table.end()) return Broadcast();
  return std::vector<int32_t>(it->second.begin(), it->second.end());
}

std::vector<int32_t> Router::Broadcast() const {
  std::vector<int32_t> all;
  all.reserve(solution_->num_partitions());
  for (int32_t p = 0; p < solution_->num_partitions(); ++p) all.push_back(p);
  return all;
}

size_t Router::LookupTableSize(const ColumnRef& attr) {
  return TableFor(attr).size();
}

}  // namespace jecb
