#include "partition/router.h"

#include <algorithm>

namespace jecb {

const Router::LookupTable& Router::TableFor(const ColumnRef& attr) {
  // Serialize build-on-first-use: a table inserted into the node-based map
  // never moves, and is never mutated again, so returning a reference out of
  // the lock is safe for concurrent readers.
  std::lock_guard<std::mutex> guard(mu_);
  auto it = tables_.find(attr);
  if (it != tables_.end()) return it->second;
  LookupTable table;
  const TableData& data = db_->table_data(attr.table);
  for (RowId r = 0; r < data.num_rows(); ++r) {
    TupleId t{attr.table, r};
    int32_t p = solution_->PartitionOf(*db_, t);
    PartitionSet& parts = table[data.At(r, attr.column)];
    auto pos = std::lower_bound(parts.begin(), parts.end(), p);
    if (pos == parts.end() || *pos != p) parts.insert(pos, p);
  }
  return tables_.emplace(attr, std::move(table)).first->second;
}

std::vector<int32_t> Router::RouteValue(const ColumnRef& attr, const Value& value) {
  const LookupTable& table = TableFor(attr);
  auto it = table.find(value);
  if (it == table.end()) return Broadcast();
  return it->second;
}

std::vector<int32_t> Router::Broadcast() const {
  std::vector<int32_t> all;
  all.reserve(solution_->num_partitions());
  for (int32_t p = 0; p < solution_->num_partitions(); ++p) all.push_back(p);
  return all;
}

void Router::Warm(const std::vector<ColumnRef>& attrs) {
  for (const ColumnRef& attr : attrs) TableFor(attr);
}

size_t Router::LookupTableSize(const ColumnRef& attr) {
  return TableFor(attr).size();
}

}  // namespace jecb
