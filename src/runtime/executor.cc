#include "runtime/executor.h"

#include <algorithm>

#include "common/topology.h"

namespace jecb {

std::string_view TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess: return "inproc";
    case TransportKind::kUnixSocket: return "unix";
    case TransportKind::kTcpSocket: return "tcp";
  }
  return "unknown";
}

uint64_t CountResidencyFaults(const ShardedDatabase& sharded,
                              const ClassifiedTxn& txn) {
  uint64_t faults = 0;
  for (const Access& a : txn.txn->accesses) {
    int32_t p = sharded.PrimaryShardOf(a.tuple);
    if (p == kReplicated) continue;  // present on every shard
    if (!std::binary_search(txn.participants.begin(), txn.participants.end(), p)) {
      ++faults;
    }
  }
  return faults;
}

ShardExecutor::ShardExecutor(const ShardedDatabase& sharded_db,
                             const RuntimeOptions& options, RuntimeMetrics* metrics)
    : sharded_db_(sharded_db), options_(options), metrics_(metrics) {
  shards_.reserve(sharded_db_.num_shards());
  for (int32_t i = 0; i < sharded_db_.num_shards(); ++i) {
    shards_.push_back(std::make_unique<ShardState>());
    shards_.back()->queue.SetCapacity(options_.max_queue_depth);
  }
}

ShardExecutor::~ShardExecutor() { Shutdown(); }

void ShardExecutor::Start() {
  if (started_) return;
  started_ = true;
  if (options_.pin_threads) {
    pin_plan_ = BuildPinPlan(DetectCpuTopology(), num_shards());
  }
  for (int32_t i = 0; i < num_shards(); ++i) {
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
}

void ShardExecutor::ExecuteLocal(const ClassifiedTxn& txn) {
  Job job;
  job.txn = &txn;
  // Decide sampling on the client thread so the worker never re-hashes; the
  // decision is observational only and never alters execution.
  job.traced = TraceRecorder::Default().enabled() &&
               TxnTraceSampled(options_.faults.seed, txn.txn_id,
                               options_.trace_sample_rate);
  job.enqueued = std::chrono::steady_clock::now();
  shards_[txn.home]->queue.Push(&job);
  job.done.acquire();
}

void ShardExecutor::Shutdown() {
  if (!started_) return;
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  started_ = false;
}

void ShardExecutor::VerifyResidency(const ClassifiedTxn& txn) {
  uint64_t faults = CountResidencyFaults(sharded_db_, txn);
  if (faults > 0) {
    metrics_->residency_faults.fetch_add(faults, std::memory_order_relaxed);
  }
}

void ShardExecutor::WorkerLoop(int32_t shard_id) {
  ShardState& shard = *shards_[shard_id];
  ShardMetrics& sm = metrics_->shard(shard_id);
  TraceRecorder& rec = TraceRecorder::Default();
  // Pinning is best-effort and performance-only: a refused affinity call
  // (restricted cpuset) just leaves the worker floating and pinned_cpu at
  // -1. Context switches are measured as the worker-lifetime delta so
  // thread-startup noise stays out of the report.
  if (static_cast<size_t>(shard_id) < pin_plan_.size() &&
      PinCurrentThreadToCpu(pin_plan_[shard_id])) {
    sm.pinned_cpu.store(pin_plan_[shard_id], std::memory_order_relaxed);
  }
  const ContextSwitchCounts csw_start = ThreadContextSwitches();
  while (auto job_opt = shard.queue.Pop()) {
    Job* job = *job_opt;
    const ClassifiedTxn& txn = *job->txn;
    const bool traced = job->traced;
    // Timeline anchors for sampled txns: enqueue time (came from the client
    // thread) and dequeue time, both on the recorder's clock.
    const uint64_t enq_ts = traced ? rec.ToTraceUs(job->enqueued) : 0;
    const uint64_t exec_ts = traced ? rec.NowUs() : 0;
    if (options_.verify_residency) VerifyResidency(txn);
    {
      std::lock_guard<std::mutex> guard(shard.lock);
      SimulateCpuWork(options_.local_work_us);
    }
    sm.busy_us.fetch_add(options_.local_work_us, std::memory_order_relaxed);
    uint64_t latency_us = ElapsedUs(job->enqueued);
    sm.local_txns.fetch_add(1, std::memory_order_relaxed);
    sm.local_latency.Record(latency_us);
    metrics_->committed.fetch_add(1, std::memory_order_relaxed);
    if (traced) {
      const int64_t tid = static_cast<int64_t>(txn.txn_id);
      rec.Span("runtime", "queue_wait", enq_ts,
               exec_ts > enq_ts ? exec_ts - enq_ts : 0, "txn", tid, "shard",
               shard_id);
      rec.Span("runtime", "exec", exec_ts, rec.NowUs() - exec_ts, "txn", tid,
               "shard", shard_id);
      // The full client-observed latency: dur equals the value recorded in
      // local_latency exactly, so trace rollups reconcile with the report's
      // histograms by construction.
      rec.Span("runtime", "txn.local", enq_ts, latency_us, "txn", tid, "shard",
               shard_id);
    }
    job->done.release();
  }
  const ContextSwitchCounts csw_end = ThreadContextSwitches();
  sm.ctx_voluntary.fetch_add(csw_end.voluntary - csw_start.voluntary,
                             std::memory_order_relaxed);
  sm.ctx_involuntary.fetch_add(csw_end.involuntary - csw_start.involuntary,
                               std::memory_order_relaxed);
}

}  // namespace jecb
