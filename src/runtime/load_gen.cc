#include "runtime/load_gen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "obs/trace_recorder.h"
#include "runtime/work_queue.h"

namespace jecb {

std::string_view ArrivalProcessName(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kFixedRate: return "fixed";
    case ArrivalProcess::kPoisson: return "poisson";
  }
  return "unknown";
}

double ArrivalUniform(uint64_t seed, uint64_t txn_id) {
  // Distinct domain tag so arrival draws never correlate with the fault
  // injector's or the trace sampler's decisions for the same txn.
  uint64_t h = HashCombine(HashCombine(seed, 0xA441Fu), txn_id);
  return static_cast<double>(HashInt64(h) >> 11) * 0x1.0p-53;
}

std::vector<uint64_t> ComputeArrivalScheduleUs(const RuntimeOptions& options,
                                               size_t count) {
  std::vector<uint64_t> schedule;
  if (options.target_tps <= 0.0 || count == 0) return schedule;
  schedule.reserve(count);
  const double us_per_txn = 1e6 / options.target_tps;
  if (options.arrival == ArrivalProcess::kFixedRate) {
    for (size_t i = 0; i < count; ++i) {
      schedule.push_back(
          static_cast<uint64_t>(std::llround(static_cast<double>(i) * us_per_txn)));
    }
    return schedule;
  }
  // Poisson: exponential inter-arrival gaps. The prefix sum runs in double
  // (exact enough: 2^53 us is ~285 years of trace) and each draw depends
  // only on (seed, i), so the schedule is reproducible regardless of who
  // computes it.
  double now_us = 0.0;
  for (size_t i = 0; i < count; ++i) {
    double u = ArrivalUniform(options.faults.seed, i);
    // u is in [0, 1); guard the log's singularity at exactly 0.
    double gap = -std::log(1.0 - std::min(u, 0x1.fffffffffffffp-1)) * us_per_txn;
    now_us += gap;
    schedule.push_back(static_cast<uint64_t>(std::llround(now_us)));
  }
  return schedule;
}

namespace {

/// What the arrival thread hands an executor: which txn, and when the
/// schedule said it arrived (the sojourn clock's zero).
struct Admitted {
  size_t index = 0;
  uint64_t scheduled_us = 0;
};

}  // namespace

OpenLoopResult RunOpenLoop(
    const RuntimeOptions& options, size_t total_txns,
    std::chrono::steady_clock::time_point epoch,
    const std::function<void(int executor_id, size_t txn_index)>& execute,
    RuntimeMetrics* metrics) {
  OpenLoopResult result;
  result.submitted = total_txns;
  const std::vector<uint64_t> schedule = ComputeArrivalScheduleUs(options, total_txns);

  WorkQueue<Admitted> admission;
  admission.SetCapacity(options.admission_queue_depth);

  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> last_done_us{0};
  TraceRecorder& rec = TraceRecorder::Default();

  auto run_executor = [&](int executor_id) {
    while (auto item = admission.Pop()) {
      const uint64_t dequeue_us = ElapsedUs(epoch);
      execute(executor_id, item->index);
      const uint64_t done_us = ElapsedUs(epoch);

      // Charge admission backlog to the system: the split is anchored at
      // the *scheduled* arrival, so a txn that sat in the admission queue
      // shows up as queue_wait even though no shard ever saw it.
      const uint64_t queue_wait =
          dequeue_us > item->scheduled_us ? dequeue_us - item->scheduled_us : 0;
      const uint64_t service = done_us - dequeue_us;
      metrics->queue_wait_latency.Record(queue_wait);
      metrics->service_latency.Record(service);
      metrics->sojourn_latency.Record(queue_wait + service);

      // Publish the completion clock: wall time stops at the last commit,
      // not at executor join (mirrors the closed-loop fix in replay.cc).
      uint64_t prev = last_done_us.load(std::memory_order_relaxed);
      while (prev < done_us &&
             !last_done_us.compare_exchange_weak(prev, done_us,
                                                 std::memory_order_relaxed)) {
      }

      if (rec.enabled() && TxnTraceSampled(options.faults.seed, item->index,
                                           options.trace_sample_rate)) {
        const int64_t tid = static_cast<int64_t>(item->index);
        rec.Span("openloop", "queue_wait", item->scheduled_us, queue_wait,
                 "txn", tid);
        rec.Span("openloop", "service", dequeue_us, service, "txn", tid);
      }
    }
  };

  const int num_executors = std::max(options.num_clients, 1);
  std::vector<std::thread> executors;
  executors.reserve(static_cast<size_t>(num_executors));
  for (int i = 0; i < num_executors; ++i) {
    executors.emplace_back(run_executor, i);
  }

  // The calling thread is the arrival thread. Deadline-accurate by
  // construction: it only ever sleeps until the next scheduled arrival and
  // uses TryPush, so a saturated admission queue sheds instantly instead of
  // stalling the schedule (which would silently convert open loop back into
  // closed loop).
  for (size_t i = 0; i < total_txns; ++i) {
    const uint64_t due_us = schedule[i];
    std::this_thread::sleep_until(epoch + std::chrono::microseconds(due_us));
    if (admission.TryPush(Admitted{i, due_us})) {
      ++result.admitted;
    } else {
      shed.fetch_add(1, std::memory_order_relaxed);
      if (rec.enabled() && TxnTraceSampled(options.faults.seed, i,
                                           options.trace_sample_rate)) {
        rec.Instant("openloop", "shed", "txn", static_cast<int64_t>(i));
      }
    }
  }
  admission.Close();
  for (std::thread& t : executors) t.join();

  result.shed = shed.load(std::memory_order_relaxed);
  result.last_completion_us = last_done_us.load(std::memory_order_relaxed);
  metrics->shed.fetch_add(result.shed, std::memory_order_relaxed);
  return result;
}

}  // namespace jecb
