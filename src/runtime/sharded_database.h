// Materialized physical layout of a partitioning solution: which tuples live
// on which shard. Partitioned tuples are placed on exactly one shard;
// replicated tuples (kReplicated) are copied to every shard, which is what
// makes their reads local and their writes distributed. Immutable after
// construction, so lookups are safe from any thread without locking.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "partition/solution.h"
#include "storage/database.h"

namespace jecb {

class ShardedDatabase {
 public:
  /// Scans every stored tuple once and assigns it via `solution`. Tuples
  /// whose placement cannot be resolved (kUnknownPartition, e.g. dangling
  /// FKs) are pinned to a deterministic fallback shard and counted.
  ShardedDatabase(const Database& db, const DatabaseSolution& solution);

  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }

  /// kReplicated for replicated tuples, otherwise the owning shard in
  /// [0, num_shards). Unknown placements report their fallback shard.
  int32_t PrimaryShardOf(TupleId t) const {
    return assignment_[t.table][t.row];
  }

  /// True when a copy of `t` is stored on `shard`.
  bool Contains(int32_t shard, TupleId t) const {
    int32_t p = assignment_[t.table][t.row];
    return p == kReplicated || p == shard;
  }

  /// Tuples stored on `shard`, replicated copies included.
  uint64_t shard_tuples(int32_t shard) const { return shards_[shard].tuple_count; }

  /// Tuples of `table` stored on `shard` (replicated tables count fully).
  uint64_t shard_table_tuples(int32_t shard, TableId table) const {
    return shards_[shard].per_table_count[table];
  }

  uint64_t base_tuples() const { return base_tuples_; }
  uint64_t replicated_tuples() const { return replicated_tuples_; }
  uint64_t unknown_placements() const { return unknown_placements_; }

  /// Total stored tuples across shards / base tuples; 1.0 = no replication.
  double ReplicationFactor() const;

  /// Coefficient of variation of per-shard tuple counts (storage skew).
  double StorageSkew() const;

  /// The backing storage this layout was materialized from. Shard-server
  /// children reach rows through this after fork (copy-on-write snapshot);
  /// the exchange path materializes tuple bytes from it. Never null; the
  /// caller of the constructor owns the Database and must outlive this.
  const Database& db() const { return *db_; }

  /// Builds the per-shard encoded-row store (RuntimeOptions::arena_tuples):
  /// every stored tuple's EncodeRowBytes form, written once into one
  /// bump-pointer arena per shard (replicated tuples into a shared extra
  /// arena). Idempotent; NOT thread-safe — call before workers start or
  /// before forking shard servers, after which the arenas are immutable and
  /// children inherit them copy-on-write. Exchange assembly then serves
  /// views into the arenas instead of heap-allocating a string per row.
  void BuildEncodedRows();
  bool has_encoded_rows() const { return !encoded_rows_.empty(); }

  /// Pre-encoded bytes of `t`; empty view when the store was not built.
  /// Views stay valid for the ShardedDatabase's lifetime (arenas are never
  /// Reset once published).
  std::string_view EncodedRow(TupleId t) const {
    if (encoded_rows_.empty()) return {};
    return encoded_rows_[t.table][t.row];
  }

  /// Bytes held by shard `s`'s encoded-row arena (index num_shards() = the
  /// replicated-tuple arena); 0 before BuildEncodedRows.
  uint64_t encoded_arena_bytes(int32_t s) const {
    return encoded_arenas_.empty()
               ? 0
               : encoded_arenas_[static_cast<size_t>(s)].bytes_allocated();
  }

  std::string Describe() const;

 private:
  struct Shard {
    uint64_t tuple_count = 0;
    std::vector<uint64_t> per_table_count;
  };

  const Database* db_ = nullptr;
  std::vector<Shard> shards_;
  /// assignment_[table][row]: owning shard, or kReplicated.
  std::vector<std::vector<int32_t>> assignment_;
  /// Encoded-row store: one arena per shard + one for replicated tuples;
  /// encoded_rows_[table][row] views into them. Empty until BuildEncodedRows.
  std::vector<Arena> encoded_arenas_;
  std::vector<std::vector<std::string_view>> encoded_rows_;
  uint64_t base_tuples_ = 0;
  uint64_t replicated_tuples_ = 0;
  uint64_t unknown_placements_ = 0;
};

}  // namespace jecb
