// Two-phase commit simulation for multi-partition transactions (the cost
// the paper's partitioning minimizes). The coordinator runs on the
// submitting client thread: it locks every participant shard in ascending
// id order (deadlock-free total order), does the shard-side prepare work
// under those locks, holds them across the prepare/vote network round trip,
// applies the commit, releases, and waits out the commit/ack round trip.
//
// While a distributed transaction holds a shard's lock, that shard's worker
// cannot execute local transactions — the mechanism behind the Fig. 1
// throughput collapse as the distributed fraction grows.
//
// With a FaultInjector attached, each attempt can abort (prepare rejected,
// participant down, coordinator timeout) and the coordinator retries under
// capped exponential backoff with deterministic jitter, up to the plan's
// attempt budget. Budget exhaustion records the transaction as failed in
// RuntimeMetrics — never a silent drop — so goodput (committed / wall) and
// fault exposure are both measurable.
#pragma once

#include "runtime/executor.h"
#include "runtime/fault_injector.h"

namespace jecb {

class TxnCoordinator {
 public:
  /// `injector` may be null (or disabled) for the fault-free fast path; it
  /// is borrowed, not owned, and must outlive the coordinator.
  explicit TxnCoordinator(ShardExecutor* executor,
                          const FaultInjector* injector = nullptr)
      : executor_(executor),
        injector_(injector != nullptr && injector->enabled() ? injector
                                                             : nullptr) {}

  /// Runs one multi-partition transaction to commit or recorded failure.
  /// Blocks the calling thread for the full simulated 2PC latency including
  /// any retries and backoff waits.
  void ExecuteDistributed(const ClassifiedTxn& txn);

 private:
  /// One 2PC attempt; true on commit, false on abort (all locks released).
  /// `traced` gates span/fault-instant emission for this txn's timeline.
  bool AttemptOnce(const ClassifiedTxn& txn, uint32_t attempt, bool traced);

  ShardExecutor* executor_;
  const FaultInjector* injector_;
};

}  // namespace jecb
