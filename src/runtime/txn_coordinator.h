// Two-phase commit simulation for multi-partition transactions (the cost
// the paper's partitioning minimizes). The coordinator runs on the
// submitting client thread: it locks every participant shard in ascending
// id order (deadlock-free total order), does the shard-side prepare work
// under those locks, holds them across the prepare/vote network round trip,
// applies the commit, releases, and waits out the commit/ack round trip.
//
// While a distributed transaction holds a shard's lock, that shard's worker
// cannot execute local transactions — the mechanism behind the Fig. 1
// throughput collapse as the distributed fraction grows.
#pragma once

#include "runtime/executor.h"

namespace jecb {

class TxnCoordinator {
 public:
  explicit TxnCoordinator(ShardExecutor* executor) : executor_(executor) {}

  /// Runs one multi-partition transaction to commit. Blocks the calling
  /// thread for the full simulated 2PC latency.
  void ExecuteDistributed(const ClassifiedTxn& txn);

 private:
  ShardExecutor* executor_;
};

}  // namespace jecb
