#include "runtime/exchange.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "obs/trace_recorder.h"

namespace jecb {

namespace {

void AppendLE(std::string& out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint64_t EntryWireBytes(const ExchangeEntry& e) {
  return kExchangeEntryOverheadBytes + e.bytes.size();
}

}  // namespace

uint32_t ClampExchangeBatchBytes(uint32_t requested) {
  return std::clamp<uint32_t>(requested, 64, 256 * 1024);
}

std::string EncodeRowBytes(const Row& row) {
  std::string out;
  for (const Value& v : row) {
    if (v.is_int()) {
      out.push_back(0);
      AppendLE(out, static_cast<uint64_t>(v.AsInt()), 8);
    } else if (v.is_double()) {
      out.push_back(1);
      uint64_t bits;
      double d = v.AsDouble();
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      AppendLE(out, bits, 8);
    } else {
      const std::string& s = v.AsString();
      out.push_back(2);
      AppendLE(out, s.size(), 4);
      out.append(s);
    }
  }
  return out;
}

std::vector<TupleId> ExchangeReadSet(const Transaction& txn) {
  std::vector<TupleId> reads;
  for (const Access& a : txn.accesses) {
    if (!a.write) reads.push_back(a.tuple);
  }
  return reads;
}

std::vector<ExchangeEntry> MaterializeReads(const Database& db,
                                            const std::vector<TupleId>& reads) {
  std::vector<ExchangeEntry> entries;
  entries.reserve(reads.size());
  for (TupleId t : reads) {
    entries.push_back({t, EncodeRowBytes(db.table_data(t.table).row(t.row))});
  }
  return entries;
}

std::vector<std::pair<size_t, size_t>> ExchangeBatchSpans(
    const std::vector<ExchangeEntry>& entries, size_t begin, size_t end,
    uint32_t batch_bytes) {
  std::vector<std::pair<size_t, size_t>> spans;
  size_t i = begin;
  while (i < end) {
    size_t j = i;
    uint64_t used = 0;
    while (j < end) {
      uint64_t cost = EntryWireBytes(entries[j]);
      if (j > i && used + cost > batch_bytes) break;
      used += cost;
      ++j;
    }
    spans.emplace_back(i, j);
    i = j;
  }
  return spans;
}

uint64_t ExchangePayloadDigest(uint64_t txn_id,
                               const std::vector<ExchangeEntry>& entries) {
  uint64_t h = HashInt64(txn_id);
  for (const ExchangeEntry& e : entries) {
    uint64_t eh = HashCombine(HashInt64(e.tuple.table), HashInt64(e.tuple.row));
    h = HashCombine(h, HashCombine(eh, HashString(e.bytes)));
  }
  return h;
}

uint64_t BuildExchangeOutcome(const ShardedDatabase& sharded,
                              const ClassifiedTxn& txn,
                              const std::vector<ExchangeEntry>& entries,
                              uint32_t batch_bytes, RuntimeMetrics* metrics) {
  JECB_SPAN("exchange", "exchange.assemble");
  const uint32_t clamped = ClampExchangeBatchBytes(batch_bytes);
  uint64_t tuples = 0, bytes = 0, remote_tuples = 0, remote_bytes = 0;
  uint64_t batches = 0;
  // Remote sources are few (<= num_shards); a flat vector beats a set.
  std::vector<int32_t> sources;
  for (const ExchangeEntry& e : entries) {
    ++tuples;
    bytes += e.bytes.size();
    int32_t owner = sharded.PrimaryShardOf(e.tuple);
    if (owner == kReplicated || owner == txn.home) continue;
    ++remote_tuples;
    remote_bytes += e.bytes.size();
    metrics->shard(owner).exchange_tuples_out.fetch_add(
        1, std::memory_order_relaxed);
    metrics->shard(owner).exchange_bytes_out.fetch_add(
        e.bytes.size(), std::memory_order_relaxed);
    if (std::find(sources.begin(), sources.end(), owner) == sources.end()) {
      sources.push_back(owner);
    }
  }
  // Batch count: what each remote source would ship, packed greedily over
  // that source's entries in access order. Computed from the same rule the
  // wire encoder uses, so the socket backends produce exactly these frames.
  for (int32_t src : sources) {
    std::vector<ExchangeEntry> from_src;
    for (const ExchangeEntry& e : entries) {
      if (sharded.PrimaryShardOf(e.tuple) == src) from_src.push_back(e);
    }
    batches += ExchangeBatchSpans(from_src, 0, from_src.size(), clamped).size();
  }
  const uint64_t digest = ExchangePayloadDigest(txn.txn_id, entries);
  metrics->exchange_txns.fetch_add(1, std::memory_order_relaxed);
  metrics->exchange_tuples.fetch_add(tuples, std::memory_order_relaxed);
  metrics->exchange_bytes.fetch_add(bytes, std::memory_order_relaxed);
  metrics->exchange_remote_tuples.fetch_add(remote_tuples,
                                            std::memory_order_relaxed);
  metrics->exchange_remote_bytes.fetch_add(remote_bytes,
                                           std::memory_order_relaxed);
  metrics->exchange_batches.fetch_add(batches, std::memory_order_relaxed);
  metrics->exchange_digest.fetch_add(digest, std::memory_order_relaxed);
  metrics->exchange_fanout.Record(static_cast<uint64_t>(sources.size()));
  return digest;
}

uint64_t AssembleLocalExchange(const ShardedDatabase& sharded,
                               const ClassifiedTxn& txn, uint32_t batch_bytes,
                               RuntimeMetrics* metrics) {
  std::vector<ExchangeEntry> entries =
      MaterializeReads(sharded.db(), ExchangeReadSet(*txn.txn));
  return BuildExchangeOutcome(sharded, txn, entries, batch_bytes, metrics);
}

}  // namespace jecb
