#include "runtime/exchange.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "obs/trace_recorder.h"

namespace jecb {

namespace {

void AppendLE(std::string& out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

// The accounting functions are templated over the entry type (owned
// ExchangeEntry from the wire path, ExchangeEntryView from the arena path)
// so both compile from the SAME logic — the view path cannot drift into a
// different digest or batch rule.

template <typename Entry>
uint64_t EntryWireBytes(const Entry& e) {
  return kExchangeEntryOverheadBytes + e.bytes.size();
}

template <typename Entry>
std::vector<std::pair<size_t, size_t>> BatchSpansImpl(
    const std::vector<Entry>& entries, size_t begin, size_t end,
    uint32_t batch_bytes) {
  std::vector<std::pair<size_t, size_t>> spans;
  size_t i = begin;
  while (i < end) {
    size_t j = i;
    uint64_t used = 0;
    while (j < end) {
      uint64_t cost = EntryWireBytes(entries[j]);
      if (j > i && used + cost > batch_bytes) break;
      used += cost;
      ++j;
    }
    spans.emplace_back(i, j);
    i = j;
  }
  return spans;
}

template <typename Entry>
uint64_t PayloadDigestImpl(uint64_t txn_id, const std::vector<Entry>& entries) {
  uint64_t h = HashInt64(txn_id);
  for (const Entry& e : entries) {
    uint64_t eh = HashCombine(HashInt64(e.tuple.table), HashInt64(e.tuple.row));
    h = HashCombine(h, HashCombine(eh, HashString(e.bytes)));
  }
  return h;
}

template <typename Entry>
uint64_t BuildExchangeOutcomeImpl(const ShardedDatabase& sharded,
                                  const ClassifiedTxn& txn,
                                  const std::vector<Entry>& entries,
                                  uint32_t batch_bytes, RuntimeMetrics* metrics) {
  JECB_SPAN("exchange", "exchange.assemble");
  const uint32_t clamped = ClampExchangeBatchBytes(batch_bytes);
  uint64_t tuples = 0, bytes = 0, remote_tuples = 0, remote_bytes = 0;
  uint64_t batches = 0;
  // Remote sources are few (<= num_shards); flat vectors beat sets. Owners
  // are resolved once so the batch pass below never re-hits the layout.
  std::vector<int32_t> sources;
  std::vector<int32_t> owners;
  owners.reserve(entries.size());
  for (const Entry& e : entries) {
    ++tuples;
    bytes += e.bytes.size();
    int32_t owner = sharded.PrimaryShardOf(e.tuple);
    owners.push_back(owner);
    if (owner == kReplicated || owner == txn.home) continue;
    ++remote_tuples;
    remote_bytes += e.bytes.size();
    metrics->shard(owner).exchange_tuples_out.fetch_add(
        1, std::memory_order_relaxed);
    metrics->shard(owner).exchange_bytes_out.fetch_add(
        e.bytes.size(), std::memory_order_relaxed);
    if (std::find(sources.begin(), sources.end(), owner) == sources.end()) {
      sources.push_back(owner);
    }
  }
  // Batch count: what each remote source would ship, packed greedily over
  // that source's entries in access order — the same rule BatchSpansImpl /
  // the wire encoder apply, run over costs so no entries are copied.
  for (int32_t src : sources) {
    uint64_t used = 0;
    size_t in_batch = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (owners[i] != src) continue;
      uint64_t cost = EntryWireBytes(entries[i]);
      if (in_batch > 0 && used + cost > clamped) {
        used = 0;
        in_batch = 0;
      }
      if (in_batch == 0) ++batches;
      used += cost;
      ++in_batch;
    }
  }
  const uint64_t digest = PayloadDigestImpl(txn.txn_id, entries);
  metrics->exchange_txns.fetch_add(1, std::memory_order_relaxed);
  metrics->exchange_tuples.fetch_add(tuples, std::memory_order_relaxed);
  metrics->exchange_bytes.fetch_add(bytes, std::memory_order_relaxed);
  metrics->exchange_remote_tuples.fetch_add(remote_tuples,
                                            std::memory_order_relaxed);
  metrics->exchange_remote_bytes.fetch_add(remote_bytes,
                                           std::memory_order_relaxed);
  metrics->exchange_batches.fetch_add(batches, std::memory_order_relaxed);
  metrics->exchange_digest.fetch_add(digest, std::memory_order_relaxed);
  metrics->exchange_fanout.Record(static_cast<uint64_t>(sources.size()));
  return digest;
}

}  // namespace

uint32_t ClampExchangeBatchBytes(uint32_t requested) {
  return std::clamp<uint32_t>(requested, 64, 256 * 1024);
}

std::string EncodeRowBytes(const Row& row) {
  std::string out;
  for (const Value& v : row) {
    if (v.is_int()) {
      out.push_back(0);
      AppendLE(out, static_cast<uint64_t>(v.AsInt()), 8);
    } else if (v.is_double()) {
      out.push_back(1);
      uint64_t bits;
      double d = v.AsDouble();
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      AppendLE(out, bits, 8);
    } else {
      const std::string& s = v.AsString();
      out.push_back(2);
      AppendLE(out, s.size(), 4);
      out.append(s);
    }
  }
  return out;
}

std::vector<TupleId> ExchangeReadSet(const Transaction& txn) {
  std::vector<TupleId> reads;
  for (const Access& a : txn.accesses) {
    if (!a.write) reads.push_back(a.tuple);
  }
  return reads;
}

std::vector<ExchangeEntry> MaterializeReads(const Database& db,
                                            const std::vector<TupleId>& reads) {
  std::vector<ExchangeEntry> entries;
  entries.reserve(reads.size());
  for (TupleId t : reads) {
    entries.push_back({t, EncodeRowBytes(db.table_data(t.table).row(t.row))});
  }
  return entries;
}

std::vector<ExchangeEntry> MaterializeReads(const ShardedDatabase& sharded,
                                            const std::vector<TupleId>& reads) {
  if (!sharded.has_encoded_rows()) return MaterializeReads(sharded.db(), reads);
  std::vector<ExchangeEntry> entries;
  entries.reserve(reads.size());
  for (TupleId t : reads) {
    entries.push_back({t, std::string(sharded.EncodedRow(t))});
  }
  return entries;
}

void MaterializeReadViews(const ShardedDatabase& sharded,
                          const std::vector<TupleId>& reads,
                          std::vector<ExchangeEntryView>* out, Arena* scratch) {
  out->clear();
  out->reserve(reads.size());
  if (sharded.has_encoded_rows()) {
    for (TupleId t : reads) out->push_back({t, sharded.EncodedRow(t)});
    return;
  }
  const Database& db = sharded.db();
  for (TupleId t : reads) {
    out->push_back(
        {t, scratch->CopyString(EncodeRowBytes(db.table_data(t.table).row(t.row)))});
  }
}

std::vector<std::pair<size_t, size_t>> ExchangeBatchSpans(
    const std::vector<ExchangeEntry>& entries, size_t begin, size_t end,
    uint32_t batch_bytes) {
  return BatchSpansImpl(entries, begin, end, batch_bytes);
}

std::vector<std::pair<size_t, size_t>> ExchangeBatchSpans(
    const std::vector<ExchangeEntryView>& entries, size_t begin, size_t end,
    uint32_t batch_bytes) {
  return BatchSpansImpl(entries, begin, end, batch_bytes);
}

uint64_t ExchangePayloadDigest(uint64_t txn_id,
                               const std::vector<ExchangeEntry>& entries) {
  return PayloadDigestImpl(txn_id, entries);
}

uint64_t ExchangePayloadDigest(uint64_t txn_id,
                               const std::vector<ExchangeEntryView>& entries) {
  return PayloadDigestImpl(txn_id, entries);
}

uint64_t BuildExchangeOutcome(const ShardedDatabase& sharded,
                              const ClassifiedTxn& txn,
                              const std::vector<ExchangeEntry>& entries,
                              uint32_t batch_bytes, RuntimeMetrics* metrics) {
  return BuildExchangeOutcomeImpl(sharded, txn, entries, batch_bytes, metrics);
}

uint64_t BuildExchangeOutcome(const ShardedDatabase& sharded,
                              const ClassifiedTxn& txn,
                              const std::vector<ExchangeEntryView>& entries,
                              uint32_t batch_bytes, RuntimeMetrics* metrics) {
  return BuildExchangeOutcomeImpl(sharded, txn, entries, batch_bytes, metrics);
}

uint64_t AssembleLocalExchange(const ShardedDatabase& sharded,
                               const ClassifiedTxn& txn, uint32_t batch_bytes,
                               RuntimeMetrics* metrics) {
  // Per-thread scratch: with the encoded-row store built the views alias
  // the store and the arena never grows; without it the arena holds this
  // call's encodings and is rewound on the next call. Either way the steady
  // state allocates nothing per row.
  thread_local std::vector<TupleId> reads;
  thread_local std::vector<ExchangeEntryView> views;
  thread_local Arena scratch(16 * 1024);
  reads.clear();
  scratch.Reset();
  for (const Access& a : txn.txn->accesses) {
    if (!a.write) reads.push_back(a.tuple);
  }
  MaterializeReadViews(sharded, reads, &views, &scratch);
  return BuildExchangeOutcome(sharded, txn, views, batch_bytes, metrics);
}

}  // namespace jecb
