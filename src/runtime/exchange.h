// Exchange core: materializing a committed transaction's read set as actual
// tuple bytes, and accounting for what that movement costs. This is the
// backend-independent half of exchange-style tuple routing — it knows rows,
// shard ownership, batching arithmetic, and the payload digest, but nothing
// about sockets. The wire half (dist/exchange.h) ships the same entries over
// shard-to-shard data channels; the in-process backend materializes them
// directly from storage. Both funnel through BuildExchangeOutcome, the ONE
// place exchange metrics are computed, which is what makes every
// jecb_exchange_* counter and the digest bit-identical across backends.
//
// Timing: exchange happens on the COMMITTING attempt only. Aborted or
// timed-out attempts ship nothing, so rows move exactly once per committed
// transaction — the property that keeps the counters independent of fault
// wiring, client count, and transport.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "runtime/sharded_database.h"
#include "storage/database.h"

namespace jecb {

/// Wire-accounting overhead per batch entry: table (u32) + row (u64) +
/// length prefix (u32). Kept in lockstep with net::TupleBatchMsg's encoding
/// so batch math agrees with what actually crosses the wire.
inline constexpr uint64_t kExchangeEntryOverheadBytes = 16;

/// Valid range for RuntimeOptions::exchange_batch_bytes.
uint32_t ClampExchangeBatchBytes(uint32_t requested);

/// One materialized row of a read set: where it lives and its encoded bytes.
struct ExchangeEntry {
  TupleId tuple;
  std::string bytes;
};

/// Non-owning variant for the hot assembly path: when the ShardedDatabase
/// has its encoded-row store built (RuntimeOptions::arena_tuples), views
/// point straight into the per-shard arenas and assembling a read set
/// allocates nothing per row. All accounting functions below accept either
/// entry type and produce bit-identical digests/batch counts — the view
/// path is an allocation optimization, never a semantic fork.
struct ExchangeEntryView {
  TupleId tuple;
  std::string_view bytes;
};

/// Deterministic, platform-independent encoding of one row: per value a tag
/// byte (0 int, 1 double, 2 string) followed by the LE u64 / double bits /
/// u32 length + bytes. This IS the payload the socket backends ship, so the
/// digest below covers real wire bytes, not an abstraction of them.
std::string EncodeRowBytes(const Row& row);

/// The read set of `txn` in access order (duplicates preserved — a row read
/// twice ships twice, on every backend identically).
std::vector<TupleId> ExchangeReadSet(const Transaction& txn);

/// Materializes `reads` from storage in order. Shared by the in-process
/// backend (assembling directly) and the shard-side ExchangeNode (serving a
/// peer's pull), so byte content cannot diverge between them.
std::vector<ExchangeEntry> MaterializeReads(const Database& db,
                                            const std::vector<TupleId>& reads);

/// Store-aware owned materialization: copies pre-encoded bytes out of the
/// arena store when built (skipping the per-value encode), else encodes
/// from storage. Identical bytes either way.
std::vector<ExchangeEntry> MaterializeReads(const ShardedDatabase& sharded,
                                            const std::vector<TupleId>& reads);

/// Zero-copy materialization into `out`. With the encoded-row store built,
/// views alias the store's arenas and `scratch` is untouched; without it,
/// rows are encoded once into `scratch` (which must stay alive, unreset,
/// while the views are in use). `out` is cleared first.
void MaterializeReadViews(const ShardedDatabase& sharded,
                          const std::vector<TupleId>& reads,
                          std::vector<ExchangeEntryView>* out, Arena* scratch);

/// Greedy batch split: entries are packed in order until adding the next one
/// would push the batch past `batch_bytes` (a batch always takes at least
/// one entry, so an oversized row still ships). Returns [begin, end) index
/// spans. Both the wire encoder and the in-process accounting use this one
/// rule, which is why jecb_exchange_batches is backend-invariant.
std::vector<std::pair<size_t, size_t>> ExchangeBatchSpans(
    const std::vector<ExchangeEntry>& entries, size_t begin, size_t end,
    uint32_t batch_bytes);
std::vector<std::pair<size_t, size_t>> ExchangeBatchSpans(
    const std::vector<ExchangeEntryView>& entries, size_t begin, size_t end,
    uint32_t batch_bytes);

/// Per-transaction digest over the assembled read set: HashInt64(txn_id)
/// folded with every entry's (table, row, bytes). Commutatively accumulated
/// across transactions (fetch_add), so the replay-level digest is identical
/// at any client count and commit interleaving.
uint64_t ExchangePayloadDigest(uint64_t txn_id,
                               const std::vector<ExchangeEntry>& entries);
uint64_t ExchangePayloadDigest(uint64_t txn_id,
                               const std::vector<ExchangeEntryView>& entries);

/// The ONE accounting path for a committed transaction's assembled read set.
/// Counts totals, remote (owner != home, non-replicated) tuples/bytes,
/// batches per remote source shard (greedy rule above), the fan-out
/// histogram sample, the digest, and the per-owning-shard out counters.
/// `entries` must be in access order. Returns the per-txn digest.
uint64_t BuildExchangeOutcome(const ShardedDatabase& sharded,
                              const ClassifiedTxn& txn,
                              const std::vector<ExchangeEntry>& entries,
                              uint32_t batch_bytes, RuntimeMetrics* metrics);
uint64_t BuildExchangeOutcome(const ShardedDatabase& sharded,
                              const ClassifiedTxn& txn,
                              const std::vector<ExchangeEntryView>& entries,
                              uint32_t batch_bytes, RuntimeMetrics* metrics);

/// In-process assembly: materialize + account in one step. The socket
/// coordinator instead feeds BuildExchangeOutcome the entries it received
/// over the wire; the parity tests assert the two agree byte-for-byte.
uint64_t AssembleLocalExchange(const ShardedDatabase& sharded,
                               const ClassifiedTxn& txn, uint32_t batch_bytes,
                               RuntimeMetrics* metrics);

}  // namespace jecb
