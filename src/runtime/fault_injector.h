// Deterministic, seed-driven fault injection for the 2PC coordination path.
//
// The paper's argument is that distributed transactions are expensive because
// coordinated multi-shard commits are fragile: prepares get rejected, shards
// stall or go down, coordinators time out. The injector makes the runtime
// exercise those failure modes so that a solution with fewer distributed
// transactions measurably degrades less under faults (bench/fault_tolerance).
//
// Determinism contract: every decision is a pure function of
// (plan.seed, fault stream, txn id, attempt, shard) hashed through the
// stable integer hashes in common/hash.h — no wall clock, no global RNG, no
// per-thread state. Two replays of the same classified trace with the same
// plan therefore inject the *same* faults into the *same* transactions at
// any client/thread count, which is what makes fault replays bit-comparable
// (ReplayReport::OutcomeSignature) and TSan runs reproducible. Fault
// targeting reuses the shared Definition 5/6 classification: the injector is
// only consulted on the TxnCoordinator path, i.e. for transactions
// ClassifyTrace/IsDistributed (partition/evaluator.h) marked as requiring
// coordination — purely local transactions are never faulted.
#pragma once

#include <cstdint>

namespace jecb {

/// Knobs of the injected coordination faults. All rates are probabilities in
/// [0, 1] evaluated *per prepare attempt* (not per transaction), so a
/// transaction with more participants has proportionally more exposure.
struct FaultPlan {
  /// Root of every per-decision hash; same seed => same injected faults.
  uint64_t seed = 0x5ECB;

  /// (a) Shard stalls: a participant holds its lock for `stall_us` of extra
  /// simulated (non-CPU) time during prepare. Stalls slow the transaction
  /// and backpressure the shard's worker; they never abort by themselves.
  double stall_rate = 0.0;
  uint32_t stall_us = 200;

  /// (b) 2PC prepare rejections: a participant votes "no"; the coordinator
  /// aborts the attempt immediately.
  double prepare_reject_rate = 0.0;

  /// (c) Coordinator timeouts: the coordinator gives up waiting for votes
  /// after `timeout_us` (locks stay held while it waits — the expensive
  /// abort) and aborts the attempt.
  double coordinator_timeout_rate = 0.0;
  uint32_t timeout_us = 500;

  /// (d) Transient shard-down windows: a shard refuses participation for
  /// whole windows of `down_window_txns` consecutive txn ids (one coin flip
  /// per (shard, window)). A retry re-evaluates the window shifted by
  /// `down_recovery_stride` txn ids, modeling the backoff wait giving the
  /// shard time to come back.
  double shard_down_rate = 0.0;
  uint64_t down_window_txns = 64;
  uint64_t down_recovery_stride = 37;

  /// Retry policy: total attempts per transaction (first try included;
  /// clamped to >= 1). After the budget is exhausted the transaction is
  /// recorded as failed — never silently dropped.
  uint32_t max_attempts = 4;
  /// Capped exponential backoff between attempts: attempt a waits
  /// min(backoff_cap_us, backoff_base_us << a) scaled by a deterministic
  /// jitter factor in [0.5, 1.0).
  uint32_t backoff_base_us = 50;
  uint32_t backoff_cap_us = 2000;

  /// (e) Transport-layer faults, consulted per *message send* by the socket
  /// backend only (the in-process backend has no wire). These are masked by
  /// the transport's reliability machinery — an injected drop is immediately
  /// retransmitted, duplicates are suppressed by per-connection sequence
  /// numbers, a disconnect reconnects before the message goes out — so they
  /// perturb timing and the transport counters but never the 2PC outcome:
  /// ReplayReport::OutcomeSignature stays identical with wire faults on or
  /// off, and identical to the in-process backend's. That separation is what
  /// keeps the cross-backend signature oracle meaningful.
  double wire_drop_rate = 0.0;
  uint32_t wire_retransmit_us = 30;  ///< pause modeling the retransmit timer
  double wire_delay_rate = 0.0;
  uint32_t wire_delay_us = 100;
  double wire_duplicate_rate = 0.0;
  /// Evaluated once per transaction per channel, before its first message:
  /// the connection is torn down and re-established (a reconnect), never cut
  /// mid-2PC where it would change the outcome.
  double wire_disconnect_rate = 0.0;

  bool enabled() const {
    return stall_rate > 0.0 || prepare_reject_rate > 0.0 ||
           coordinator_timeout_rate > 0.0 || shard_down_rate > 0.0;
  }

  /// True when any transport-layer fault is active (socket backend only).
  bool wire_enabled() const {
    return wire_drop_rate > 0.0 || wire_delay_rate > 0.0 ||
           wire_duplicate_rate > 0.0 || wire_disconnect_rate > 0.0;
  }
};

/// Stateless decision oracle over a FaultPlan. Safe to share across threads:
/// all methods are const and touch only immutable plan fields.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  /// True when `shard` is inside a down window for this (txn, attempt).
  bool ShardDown(uint64_t txn_id, uint32_t attempt, int32_t shard) const;

  /// True when `shard` stalls during this prepare attempt.
  bool ShardStalls(uint64_t txn_id, uint32_t attempt, int32_t shard) const;

  /// True when `shard` votes "no" on this prepare attempt.
  bool PrepareRejected(uint64_t txn_id, uint32_t attempt, int32_t shard) const;

  /// True when the coordinator times out waiting for this attempt's votes.
  bool CoordinatorTimesOut(uint64_t txn_id, uint32_t attempt) const;

  /// Backoff before attempt `attempt + 1`: capped exponential with
  /// deterministic jitter (see FaultPlan::backoff_base_us).
  uint32_t BackoffUs(uint64_t txn_id, uint32_t attempt) const;

  // Transport-layer decisions (socket backend). `kind` is the wire message
  // type, so drops/delays/dupes of prepares, commits and executes are
  // independent coin flips. Same purity contract as the 2PC decisions.
  bool WireDrops(uint64_t txn_id, uint32_t attempt, int32_t shard,
                 uint8_t kind) const;
  bool WireDelays(uint64_t txn_id, uint32_t attempt, int32_t shard,
                  uint8_t kind) const;
  bool WireDuplicates(uint64_t txn_id, uint32_t attempt, int32_t shard,
                      uint8_t kind) const;
  /// Per (txn, shard), attempt-independent: at most one reconnect per
  /// transaction per channel.
  bool WireDisconnects(uint64_t txn_id, int32_t shard) const;

 private:
  /// Uniform double in [0, 1) from the decision coordinates; `stream`
  /// separates the four fault kinds so their decisions are independent.
  double UnitUniform(uint64_t stream, uint64_t txn_id, uint32_t attempt,
                     uint64_t extra) const;

  FaultPlan plan_;
};

}  // namespace jecb
