// Runtime metrics: lock-free counters and fixed-bucket latency histograms
// (obs/histogram.h) updated by worker/coordinator threads while the replay
// runs, snapshotted afterwards for reports and JSON export. All mutators are
// atomic with relaxed ordering — metrics never synchronize the execution
// itself. Reporting goes through Snapshot(): one quiesced copy of every
// counter that all renderers (JSON, Prometheus, ASCII) consume, so no two
// renderings of the same run can disagree.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/histogram.h"

namespace jecb {

/// Per-shard counters plus the latency distributions of transactions homed
/// at this shard (single-partition txns in `local_latency`; distributed
/// txns whose lowest participant id is this shard in `dist_latency`).
struct ShardMetrics {
  std::atomic<uint64_t> local_txns{0};
  std::atomic<uint64_t> dist_participations{0};
  std::atomic<uint64_t> busy_us{0};  ///< simulated work done under this shard's lock
  /// Times a coordinator tried to involve this shard in a prepare, whether
  /// or not the shard was reachable. Availability is derived as
  /// 1 - down_events / participation_attempts.
  std::atomic<uint64_t> participation_attempts{0};
  std::atomic<uint64_t> stalls{0};            ///< injected stalls served
  std::atomic<uint64_t> prepare_rejects{0};   ///< injected "no" votes
  std::atomic<uint64_t> down_events{0};       ///< prepares refused while down
  /// Exchange data plane, attributed to the shard that OWNS the tuples (the
  /// shard the bytes were pulled from), not the home that assembled them.
  std::atomic<uint64_t> exchange_tuples_out{0};
  std::atomic<uint64_t> exchange_bytes_out{0};
  /// Topology block (pin_threads): the logical cpu the shard's worker (or
  /// forked server process) was pinned to (-1 = unpinned), and the worker's
  /// getrusage context-switch counts, recorded at worker exit / harvested
  /// from the child. Never part of OutcomeSignature — they are timing facts.
  std::atomic<int32_t> pinned_cpu{-1};
  std::atomic<uint64_t> ctx_voluntary{0};
  std::atomic<uint64_t> ctx_involuntary{0};
  LatencyHistogram local_latency;
  LatencyHistogram dist_latency;
};

/// Plain copy of one shard's counters at snapshot time.
struct ShardMetricsSnapshot {
  uint64_t local_txns = 0;
  uint64_t dist_participations = 0;
  uint64_t busy_us = 0;
  uint64_t participation_attempts = 0;
  uint64_t stalls = 0;
  uint64_t prepare_rejects = 0;
  uint64_t down_events = 0;
  uint64_t exchange_tuples_out = 0;
  uint64_t exchange_bytes_out = 0;
  int32_t pinned_cpu = -1;
  uint64_t ctx_voluntary = 0;
  uint64_t ctx_involuntary = 0;
  HistogramData local_latency;
  HistogramData dist_latency;
  /// local_latency and dist_latency merged: everything homed at this shard.
  HistogramData latency;
};

/// One quiesced copy of every replay counter. The process-wide local and
/// distributed distributions are aggregated from the per-shard histograms
/// with LatencyHistogram::Merge — the hot path records each latency exactly
/// once (into its shard), never twice.
struct MetricsSnapshot {
  uint64_t committed = 0;
  uint64_t distributed_committed = 0;
  uint64_t residency_faults = 0;
  uint64_t aborts = 0;
  uint64_t retries = 0;
  uint64_t failed = 0;
  uint64_t prepare_rejects = 0;
  uint64_t coordinator_timeouts = 0;
  uint64_t shard_down_aborts = 0;
  uint64_t stalls_injected = 0;
  // Exchange (tuple routing) accounting — backend-invariant: rows ship
  // exactly once per committed transaction, on every backend, so these
  // match bit-for-bit across inproc/unix/tcp for a fixed seed.
  uint64_t exchange_txns = 0;          ///< committed txns that assembled reads
  uint64_t exchange_tuples = 0;        ///< rows in assembled read sets
  uint64_t exchange_bytes = 0;         ///< encoded bytes of assembled rows
  uint64_t exchange_remote_tuples = 0; ///< rows pulled from a non-home shard
  uint64_t exchange_remote_bytes = 0;  ///< encoded bytes shipped shard-to-shard
  uint64_t exchange_batches = 0;       ///< bounded batches (greedy span rule)
  uint64_t exchange_digest = 0;        ///< order-independent payload digest
  // Open-loop driver accounting (all zero in closed-loop mode). The shed
  // conservation invariant is submitted = committed + failed + shed.
  uint64_t shed = 0;                 ///< arrivals dropped at admission
  HistogramData sojourn_latency;     ///< completion - scheduled arrival
  HistogramData queue_wait_latency;  ///< admission dequeue - scheduled arrival
  HistogramData service_latency;     ///< completion - admission dequeue
  HistogramData exchange_fanout;       ///< distinct remote source shards/txn
  HistogramData local_latency;        ///< merged over shards
  HistogramData distributed_latency;  ///< merged over shards
  HistogramData retry_latency;
  std::vector<ShardMetricsSnapshot> shards;
};

/// All counters for one replay run. Shards are heap-allocated once up front;
/// the vector is never resized while workers run.
class RuntimeMetrics {
 public:
  explicit RuntimeMetrics(int32_t num_shards);

  ShardMetrics& shard(int32_t i) { return *shards_[i]; }
  const ShardMetrics& shard(int32_t i) const { return *shards_[i]; }
  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> distributed_committed{0};
  std::atomic<uint64_t> residency_faults{0};

  // Fault/recovery accounting (all zero when no FaultPlan is active).
  // Invariants the fault tests assert: committed + failed == submitted, and
  // aborts == retries + failed (every aborted attempt either retried or
  // exhausted the budget and became a recorded failure).
  std::atomic<uint64_t> aborts{0};    ///< 2PC attempts that aborted
  std::atomic<uint64_t> retries{0};   ///< aborted attempts that were retried
  std::atomic<uint64_t> failed{0};    ///< txns that exhausted the retry budget
  std::atomic<uint64_t> prepare_rejects{0};
  std::atomic<uint64_t> coordinator_timeouts{0};
  std::atomic<uint64_t> shard_down_aborts{0};
  std::atomic<uint64_t> stalls_injected{0};

  // Exchange accounting (see MetricsSnapshot for semantics). The digest is
  // accumulated commutatively (fetch_add of per-txn hashes) so it is
  // independent of commit order and therefore of client count.
  std::atomic<uint64_t> exchange_txns{0};
  std::atomic<uint64_t> exchange_tuples{0};
  std::atomic<uint64_t> exchange_bytes{0};
  std::atomic<uint64_t> exchange_remote_tuples{0};
  std::atomic<uint64_t> exchange_remote_bytes{0};
  std::atomic<uint64_t> exchange_batches{0};
  std::atomic<uint64_t> exchange_digest{0};

  /// Open-loop accounting: transactions dropped at the admission queue
  /// (never executed), plus the sojourn split. The arrival thread sheds
  /// deterministically only in the sense of the conservation invariant —
  /// whether a given txn sheds depends on queue occupancy, i.e. on timing —
  /// so saturated open-loop runs are load-dependent by design, and the
  /// cross-backend OutcomeSignature contract applies to sub-saturation runs
  /// where shed == 0.
  std::atomic<uint64_t> shed{0};
  LatencyHistogram sojourn_latency;
  LatencyHistogram queue_wait_latency;
  LatencyHistogram service_latency;

  /// Distinct remote source shards per assembled read set (the exchange
  /// fan-out of one committed transaction).
  LatencyHistogram exchange_fanout;

  /// Commit latency of distributed txns that needed at least one retry —
  /// the tail the retry/backoff machinery adds on top of the distributed
  /// distribution.
  LatencyHistogram retry_latency;

  /// Copies every counter once. Call after workers have joined (quiesced)
  /// for exact accounting; renderers must consume the snapshot, never the
  /// live atomics, so one report cannot mix values from different moments.
  MetricsSnapshot Snapshot() const;

 private:
  std::vector<std::unique_ptr<ShardMetrics>> shards_;
};

}  // namespace jecb
