// Runtime metrics: lock-free counters and fixed-bucket latency histograms
// updated by worker/coordinator threads while the replay runs, snapshotted
// afterwards for reports and JSON export. All mutators are atomic with
// relaxed ordering — metrics never synchronize the execution itself.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace jecb {

/// Fixed power-of-two-bucket histogram of microsecond latencies.
///
/// Bucket i holds values in [2^(i-1), 2^i) µs (bucket 0 holds 0–1 µs), so
/// quantiles are exact to within one octave and refined by linear
/// interpolation inside the bucket. 48 buckets cover > 8 years.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 48;

  void Record(uint64_t us) {
    buckets_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    uint64_t prev = max_us_.load(std::memory_order_relaxed);
    while (us > prev &&
           !max_us_.compare_exchange_weak(prev, us, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }
  double mean_us() const {
    uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Approximate quantile in µs; q in [0, 1]. 0 when empty.
  double Quantile(double q) const;

  static size_t BucketOf(uint64_t us) {
    if (us == 0) return 0;
    size_t b = static_cast<size_t>(64 - __builtin_clzll(us));
    return b >= kNumBuckets ? kNumBuckets - 1 : b;
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// Per-shard counters plus the latency distribution of transactions homed
/// at this shard (single-partition txns, and distributed txns whose lowest
/// participant id is this shard).
struct ShardMetrics {
  std::atomic<uint64_t> local_txns{0};
  std::atomic<uint64_t> dist_participations{0};
  std::atomic<uint64_t> busy_us{0};  ///< simulated work done under this shard's lock
  /// Times a coordinator tried to involve this shard in a prepare, whether
  /// or not the shard was reachable. Availability is derived as
  /// 1 - down_events / participation_attempts.
  std::atomic<uint64_t> participation_attempts{0};
  std::atomic<uint64_t> stalls{0};            ///< injected stalls served
  std::atomic<uint64_t> prepare_rejects{0};   ///< injected "no" votes
  std::atomic<uint64_t> down_events{0};       ///< prepares refused while down
  LatencyHistogram latency;
};

/// All counters for one replay run. Shards are heap-allocated once up front;
/// the vector is never resized while workers run.
class RuntimeMetrics {
 public:
  explicit RuntimeMetrics(int32_t num_shards);

  ShardMetrics& shard(int32_t i) { return *shards_[i]; }
  const ShardMetrics& shard(int32_t i) const { return *shards_[i]; }
  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> distributed_committed{0};
  std::atomic<uint64_t> residency_faults{0};

  // Fault/recovery accounting (all zero when no FaultPlan is active).
  // Invariants the fault tests assert: committed + failed == submitted, and
  // aborts == retries + failed (every aborted attempt either retried or
  // exhausted the budget and became a recorded failure).
  std::atomic<uint64_t> aborts{0};    ///< 2PC attempts that aborted
  std::atomic<uint64_t> retries{0};   ///< aborted attempts that were retried
  std::atomic<uint64_t> failed{0};    ///< txns that exhausted the retry budget
  std::atomic<uint64_t> prepare_rejects{0};
  std::atomic<uint64_t> coordinator_timeouts{0};
  std::atomic<uint64_t> shard_down_aborts{0};
  std::atomic<uint64_t> stalls_injected{0};

  LatencyHistogram local_latency;
  LatencyHistogram distributed_latency;
  /// Commit latency of distributed txns that needed at least one retry —
  /// the tail the retry/backoff machinery adds on top of distributed_latency.
  LatencyHistogram retry_latency;

 private:
  std::vector<std::unique_ptr<ShardMetrics>> shards_;
};

}  // namespace jecb
