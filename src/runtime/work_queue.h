// Multi-producer blocking work queue: the mailbox between transaction
// submitters (clients, the 2PC coordinator) and a shard's worker thread.
// Usually drained by a single consumer, but Pop is mutex-serialized so the
// open-loop admission queue can fan out to many executor threads. Unbounded
// by default (the closed-loop replay driver never exceeds the client
// count); an optional capacity turns Push into a blocking call, which is
// how a stalled shard backpressures its submitters instead of accumulating
// unbounded work — and instead of deadlocking: Close() releases blocked
// pushers as well as the consumer. TryPush is the non-blocking variant the
// open-loop arrival thread uses to shed instead of stall.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace jecb {

template <typename T>
class WorkQueue {
 public:
  /// Caps the queue depth; 0 (default) means unbounded. Not thread-safe:
  /// call before any producer or the consumer runs.
  void SetCapacity(size_t capacity) { capacity_ = capacity; }

  /// Enqueues one item; wakes the consumer. Safe from any thread. Blocks
  /// while the queue is at capacity until the consumer drains it (or the
  /// queue closes, so shutdown never strands a blocked producer).
  void Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] {
        return capacity_ == 0 || items_.size() < capacity_ || closed_;
      });
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Non-blocking enqueue for deadline-sensitive producers (the open-loop
  /// admission path): returns false — without ever waiting — when the queue
  /// is at capacity or closed, which is the arrival thread's signal to shed
  /// the transaction instead of stalling the arrival schedule.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed. Returns
  /// nullopt only when closed AND drained, so no pushed item is ever lost.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// After Close(), Pop() drains remaining items then returns nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> guard(mu_);
      closed_ = true;
    }
    cv_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> guard(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_ = 0;
  bool closed_ = false;
};

}  // namespace jecb
