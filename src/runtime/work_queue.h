// Multi-producer single-consumer blocking work queue: the mailbox between
// transaction submitters (clients, the 2PC coordinator) and a shard's worker
// thread. Unbounded; the replay driver runs closed-loop so the queue depth
// never exceeds the number of client threads.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace jecb {

template <typename T>
class WorkQueue {
 public:
  /// Enqueues one item; wakes the consumer. Safe from any thread.
  void Push(T item) {
    {
      std::lock_guard<std::mutex> guard(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks until an item is available or the queue is closed. Returns
  /// nullopt only when closed AND drained, so no pushed item is ever lost.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// After Close(), Pop() drains remaining items then returns nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> guard(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> guard(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace jecb
