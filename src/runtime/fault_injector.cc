#include "runtime/fault_injector.h"

#include "common/hash.h"

namespace jecb {

namespace {

// Stream tags keep the four fault kinds statistically independent even when
// they share (txn, attempt, shard) coordinates.
constexpr uint64_t kStreamStall = 0xA11CE;
constexpr uint64_t kStreamReject = 0xBEEF;
constexpr uint64_t kStreamTimeout = 0xC0FFEE;
constexpr uint64_t kStreamDown = 0xD04;
constexpr uint64_t kStreamBackoff = 0xB0FF;
constexpr uint64_t kStreamWireDrop = 0xDE1E7E;
constexpr uint64_t kStreamWireDelay = 0x510;
constexpr uint64_t kStreamWireDup = 0xD0B1E;
constexpr uint64_t kStreamWireDisc = 0xD15C;

}  // namespace

double FaultInjector::UnitUniform(uint64_t stream, uint64_t txn_id,
                                  uint32_t attempt, uint64_t extra) const {
  uint64_t h = HashCombine(plan_.seed, stream);
  h = HashCombine(h, txn_id);
  h = HashCombine(h, (static_cast<uint64_t>(attempt) << 32) ^ extra);
  // Top 53 bits of the finalized hash -> exact double in [0, 1).
  return static_cast<double>(HashInt64(h) >> 11) * 0x1.0p-53;
}

bool FaultInjector::ShardDown(uint64_t txn_id, uint32_t attempt,
                              int32_t shard) const {
  if (plan_.shard_down_rate <= 0.0) return false;
  const uint64_t window = plan_.down_window_txns == 0 ? 1 : plan_.down_window_txns;
  // Retries re-roll a *shifted* window, not a fresh coin on the same window:
  // the backoff wait is modeled as the txn arriving `down_recovery_stride`
  // ids later, when the shard may have recovered.
  const uint64_t window_index =
      (txn_id + static_cast<uint64_t>(attempt) * plan_.down_recovery_stride) /
      window;
  return UnitUniform(kStreamDown, window_index, 0,
                     static_cast<uint64_t>(shard)) < plan_.shard_down_rate;
}

bool FaultInjector::ShardStalls(uint64_t txn_id, uint32_t attempt,
                                int32_t shard) const {
  return plan_.stall_rate > 0.0 &&
         UnitUniform(kStreamStall, txn_id, attempt,
                     static_cast<uint64_t>(shard)) < plan_.stall_rate;
}

bool FaultInjector::PrepareRejected(uint64_t txn_id, uint32_t attempt,
                                    int32_t shard) const {
  return plan_.prepare_reject_rate > 0.0 &&
         UnitUniform(kStreamReject, txn_id, attempt,
                     static_cast<uint64_t>(shard)) < plan_.prepare_reject_rate;
}

bool FaultInjector::CoordinatorTimesOut(uint64_t txn_id,
                                        uint32_t attempt) const {
  return plan_.coordinator_timeout_rate > 0.0 &&
         UnitUniform(kStreamTimeout, txn_id, attempt, 0) <
             plan_.coordinator_timeout_rate;
}

bool FaultInjector::WireDrops(uint64_t txn_id, uint32_t attempt, int32_t shard,
                              uint8_t kind) const {
  return plan_.wire_drop_rate > 0.0 &&
         UnitUniform(kStreamWireDrop, txn_id, attempt,
                     (static_cast<uint64_t>(kind) << 32) ^
                         static_cast<uint64_t>(shard)) < plan_.wire_drop_rate;
}

bool FaultInjector::WireDelays(uint64_t txn_id, uint32_t attempt, int32_t shard,
                               uint8_t kind) const {
  return plan_.wire_delay_rate > 0.0 &&
         UnitUniform(kStreamWireDelay, txn_id, attempt,
                     (static_cast<uint64_t>(kind) << 32) ^
                         static_cast<uint64_t>(shard)) < plan_.wire_delay_rate;
}

bool FaultInjector::WireDuplicates(uint64_t txn_id, uint32_t attempt,
                                   int32_t shard, uint8_t kind) const {
  return plan_.wire_duplicate_rate > 0.0 &&
         UnitUniform(kStreamWireDup, txn_id, attempt,
                     (static_cast<uint64_t>(kind) << 32) ^
                         static_cast<uint64_t>(shard)) <
             plan_.wire_duplicate_rate;
}

bool FaultInjector::WireDisconnects(uint64_t txn_id, int32_t shard) const {
  return plan_.wire_disconnect_rate > 0.0 &&
         UnitUniform(kStreamWireDisc, txn_id, 0, static_cast<uint64_t>(shard)) <
             plan_.wire_disconnect_rate;
}

uint32_t FaultInjector::BackoffUs(uint64_t txn_id, uint32_t attempt) const {
  uint64_t base = plan_.backoff_base_us;
  if (base == 0) return 0;
  // Saturating shift, then cap.
  uint64_t wait = attempt >= 32 ? plan_.backoff_cap_us : base << attempt;
  if (wait > plan_.backoff_cap_us) wait = plan_.backoff_cap_us;
  // Jitter in [0.5, 1.0): decorrelates retry storms without ever collapsing
  // the wait to zero.
  double jitter = 0.5 + 0.5 * UnitUniform(kStreamBackoff, txn_id, attempt, 0);
  return static_cast<uint32_t>(static_cast<double>(wait) * jitter);
}

}  // namespace jecb
