// Open-loop load generation: a deterministic arrival process decoupled from
// completions, the measurement shape closed-loop clients structurally cannot
// produce (a closed-loop client waits for its previous txn, so offered load
// self-throttles to capacity and the latency cliff near saturation never
// appears).
//
// Determinism contract: the arrival schedule is a pure function of
// (RuntimeOptions::faults.seed, txn id) — the same idiom as TxnTraceSampled
// and the fault injector — so the set of transactions offered, and at
// sub-saturation loads the set executed, is identical at any executor-thread
// count and on any transport backend. What is timing-dependent by design is
// *shedding*: an arrival that finds the bounded admission queue full is
// dropped (counted in RuntimeMetrics::shed, never executed). The invariant
// that always holds is
//
//   submitted == committed + failed + shed
//
// and whenever shed == 0 (target below capacity, or an unbounded admission
// queue) the committed set — and thus ReplayReport::OutcomeSignature() — is
// bit-identical to the closed-loop replay of the same trace.
//
// Sojourn accounting: every executed txn's latency is split at the admission
// dequeue point into queue_wait (scheduled arrival -> dequeue) and service
// (dequeue -> completion); sojourn is their sum, measured from the
// *scheduled* arrival so admission backlog is charged to the system, not
// hidden. Sampled txns additionally emit "openloop/queue_wait" and
// "openloop/service" spans for tools/trace_stats.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/executor.h"
#include "runtime/metrics.h"

namespace jecb {

/// Uniform (0,1) draw for arrival i: pure hash of (seed, txn id), same
/// construction as TxnTraceSampled with a distinct domain tag. Exposed for
/// the schedule-determinism tests.
double ArrivalUniform(uint64_t seed, uint64_t txn_id);

/// Arrival offsets in microseconds from the replay epoch for `count` txns
/// at options.target_tps. Fixed-rate: arrival i at exactly i/target_tps.
/// Poisson: exponential inter-arrivals from ArrivalUniform, prefix-summed
/// in submission order. Empty when target_tps <= 0 (closed loop).
std::vector<uint64_t> ComputeArrivalScheduleUs(const RuntimeOptions& options,
                                               size_t count);

struct OpenLoopResult {
  uint64_t submitted = 0;  ///< arrivals offered (== trace size)
  uint64_t admitted = 0;   ///< arrivals that entered the admission queue
  uint64_t shed = 0;       ///< arrivals dropped at a full admission queue
  /// Completion time of the last executed txn, microseconds after `epoch`
  /// (0 when nothing executed): the open-loop wall clock, teardown excluded.
  uint64_t last_completion_us = 0;
};

/// Runs the trace of `total_txns` transactions through the open-loop driver:
/// the calling thread becomes the arrival thread (walking the schedule by
/// wall clock against `epoch`, shedding — never blocking — on a full
/// admission queue), while options.num_clients executor threads drain the
/// queue and call `execute(executor_id, txn_index)` for each admitted txn.
/// `execute` must be thread-safe across executor ids; per-executor state
/// (e.g. a TransportSession) should be created on first use keyed by
/// executor_id, which is stable per thread. Updates metrics->shed and the
/// sojourn/queue_wait/service histograms; outcome counters are whatever
/// `execute` records.
OpenLoopResult RunOpenLoop(
    const RuntimeOptions& options, size_t total_txns,
    std::chrono::steady_clock::time_point epoch,
    const std::function<void(int executor_id, size_t txn_index)>& execute,
    RuntimeMetrics* metrics);

}  // namespace jecb
