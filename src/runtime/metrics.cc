#include "runtime/metrics.h"

namespace jecb {

RuntimeMetrics::RuntimeMetrics(int32_t num_shards) {
  shards_.reserve(num_shards);
  for (int32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ShardMetrics>());
  }
}

MetricsSnapshot RuntimeMetrics::Snapshot() const {
  MetricsSnapshot snap;
  snap.committed = committed.load(std::memory_order_relaxed);
  snap.distributed_committed = distributed_committed.load(std::memory_order_relaxed);
  snap.residency_faults = residency_faults.load(std::memory_order_relaxed);
  snap.aborts = aborts.load(std::memory_order_relaxed);
  snap.retries = retries.load(std::memory_order_relaxed);
  snap.failed = failed.load(std::memory_order_relaxed);
  snap.prepare_rejects = prepare_rejects.load(std::memory_order_relaxed);
  snap.coordinator_timeouts = coordinator_timeouts.load(std::memory_order_relaxed);
  snap.shard_down_aborts = shard_down_aborts.load(std::memory_order_relaxed);
  snap.stalls_injected = stalls_injected.load(std::memory_order_relaxed);
  snap.exchange_txns = exchange_txns.load(std::memory_order_relaxed);
  snap.exchange_tuples = exchange_tuples.load(std::memory_order_relaxed);
  snap.exchange_bytes = exchange_bytes.load(std::memory_order_relaxed);
  snap.exchange_remote_tuples =
      exchange_remote_tuples.load(std::memory_order_relaxed);
  snap.exchange_remote_bytes =
      exchange_remote_bytes.load(std::memory_order_relaxed);
  snap.exchange_batches = exchange_batches.load(std::memory_order_relaxed);
  snap.exchange_digest = exchange_digest.load(std::memory_order_relaxed);
  snap.shed = shed.load(std::memory_order_relaxed);
  snap.sojourn_latency = sojourn_latency.Snapshot();
  snap.queue_wait_latency = queue_wait_latency.Snapshot();
  snap.service_latency = service_latency.Snapshot();
  snap.exchange_fanout = exchange_fanout.Snapshot();
  snap.retry_latency = retry_latency.Snapshot();

  // Aggregate the per-shard distributions instead of keeping (and paying
  // for) duplicate process-wide histograms on the hot path.
  LatencyHistogram all_local;
  LatencyHistogram all_dist;
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardMetricsSnapshot s;
    s.local_txns = shard->local_txns.load(std::memory_order_relaxed);
    s.dist_participations = shard->dist_participations.load(std::memory_order_relaxed);
    s.busy_us = shard->busy_us.load(std::memory_order_relaxed);
    s.participation_attempts =
        shard->participation_attempts.load(std::memory_order_relaxed);
    s.stalls = shard->stalls.load(std::memory_order_relaxed);
    s.prepare_rejects = shard->prepare_rejects.load(std::memory_order_relaxed);
    s.down_events = shard->down_events.load(std::memory_order_relaxed);
    s.exchange_tuples_out =
        shard->exchange_tuples_out.load(std::memory_order_relaxed);
    s.exchange_bytes_out =
        shard->exchange_bytes_out.load(std::memory_order_relaxed);
    s.pinned_cpu = shard->pinned_cpu.load(std::memory_order_relaxed);
    s.ctx_voluntary = shard->ctx_voluntary.load(std::memory_order_relaxed);
    s.ctx_involuntary = shard->ctx_involuntary.load(std::memory_order_relaxed);
    s.local_latency = shard->local_latency.Snapshot();
    s.dist_latency = shard->dist_latency.Snapshot();
    s.latency = s.local_latency;
    s.latency.Merge(s.dist_latency);
    all_local.Merge(s.local_latency);
    all_dist.Merge(s.dist_latency);
    snap.shards.push_back(std::move(s));
  }
  snap.local_latency = all_local.Snapshot();
  snap.distributed_latency = all_dist.Snapshot();
  return snap;
}

}  // namespace jecb
