#include "runtime/metrics.h"

#include <cmath>

namespace jecb {

double LatencyHistogram::Quantile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil): the q-quantile of n
  // observations is the smallest value with at least ceil(q*n) observations
  // at or below it. Truncating instead of ceiling picked one observation
  // too low whenever q*n was fractional (q=0.95, n=10 -> rank 9, not 10).
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Linear interpolation inside [lo, hi): bucket 0 is [0, 1).
      double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << (i - 1));
      double hi = static_cast<double>(1ULL << i);
      double frac = static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_us());
}

RuntimeMetrics::RuntimeMetrics(int32_t num_shards) {
  shards_.reserve(num_shards);
  for (int32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ShardMetrics>());
  }
}

}  // namespace jecb
