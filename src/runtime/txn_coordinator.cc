#include "runtime/txn_coordinator.h"

#include <algorithm>

#include "runtime/exchange.h"

namespace jecb {

bool TxnCoordinator::AttemptOnce(const ClassifiedTxn& txn, uint32_t attempt,
                                 bool traced) {
  const RuntimeOptions& opt = executor_->options();
  RuntimeMetrics* metrics = executor_->metrics();
  TraceRecorder& rec = TraceRecorder::Default();
  const int64_t tid = static_cast<int64_t>(txn.txn_id);
  const uint64_t prepare_ts = traced ? rec.NowUs() : 0;

  // Prepare phase: lock participants in ascending id order and execute the
  // shard-local work (reads/writes + prepare validation) under each lock.
  const uint32_t prepare_us = opt.local_work_us + opt.lock_hold_us;
  std::vector<std::unique_lock<std::mutex>> held;
  held.reserve(txn.participants.size());
  for (int32_t p : txn.participants) {
    ShardMetrics& sm = metrics->shard(p);
    sm.participation_attempts.fetch_add(1, std::memory_order_relaxed);
    if (injector_ && injector_->ShardDown(txn.txn_id, attempt, p)) {
      // The shard refuses the connection before any lock is taken; locks
      // already held release when `held` unwinds. Cheapest abort.
      sm.down_events.fetch_add(1, std::memory_order_relaxed);
      metrics->shard_down_aborts.fetch_add(1, std::memory_order_relaxed);
      if (traced) rec.Instant("fault", "fault.shard_down", "txn", tid, "shard", p);
      return false;
    }
    held.emplace_back(executor_->shard_lock(p));
    SimulateCpuWork(prepare_us);
    sm.busy_us.fetch_add(prepare_us, std::memory_order_relaxed);
    if (injector_ && injector_->ShardStalls(txn.txn_id, attempt, p)) {
      // A stall occupies the shard (lock held, worker blocked) without
      // burning CPU — the backpressure case, not an abort.
      sm.stalls.fetch_add(1, std::memory_order_relaxed);
      metrics->stalls_injected.fetch_add(1, std::memory_order_relaxed);
      if (traced) rec.Instant("fault", "fault.stall", "txn", tid, "shard", p);
      SimulateNetworkDelay(injector_->plan().stall_us);
    }
    if (injector_ && injector_->PrepareRejected(txn.txn_id, attempt, p)) {
      sm.prepare_rejects.fetch_add(1, std::memory_order_relaxed);
      metrics->prepare_rejects.fetch_add(1, std::memory_order_relaxed);
      if (traced) {
        rec.Instant("fault", "fault.prepare_reject", "txn", tid, "shard", p);
      }
      return false;
    }
    sm.dist_participations.fetch_add(1, std::memory_order_relaxed);
  }

  if (injector_ && injector_->CoordinatorTimesOut(txn.txn_id, attempt)) {
    // The expensive abort: every participant keeps its lock while the
    // coordinator waits out the vote timeout.
    metrics->coordinator_timeouts.fetch_add(1, std::memory_order_relaxed);
    if (traced) {
      rec.Instant("fault", "fault.timeout", "txn", tid, "attempt",
                  static_cast<int64_t>(attempt));
    }
    SimulateNetworkDelay(injector_->plan().timeout_us);
    return false;
  }

  // Prepare messages out, votes back: every participant keeps its lock (and
  // thus blocks its worker) for the full round trip.
  SimulateNetworkDelay(opt.round_trip_us);
  if (traced) {
    // Lock acquisition + shard-local prepare work + prepare/vote round trip:
    // the window in which this txn blocked its participants' workers.
    rec.Span("runtime", "2pc.prepare", prepare_ts, rec.NowUs() - prepare_ts,
             "txn", tid, "attempt", static_cast<int64_t>(attempt));
  }
  const uint64_t commit_ts = traced ? rec.NowUs() : 0;

  // All voted yes — commit applies at each participant, locks release.
  for (auto& lock : held) lock.unlock();

  // Exchange: the committing attempt (and only it) assembles the txn's full
  // read set as tuple bytes. The socket backends do this at the home shard
  // by pulling remote rows over data channels during the commit round; here
  // the rows come straight from storage. Same entries, same accounting path
  // (BuildExchangeOutcome), so the jecb_exchange_* counters and the payload
  // digest match the wire backends bit-for-bit.
  if (opt.exchange_enabled) {
    AssembleLocalExchange(executor_->sharded_db(), txn, opt.exchange_batch_bytes,
                          metrics);
  }

  // Commit messages out, acks back: latency the client still observes, but
  // the shards are already free.
  SimulateNetworkDelay(opt.round_trip_us);
  if (traced) {
    rec.Span("runtime", "2pc.commit", commit_ts, rec.NowUs() - commit_ts, "txn",
             tid, "attempt", static_cast<int64_t>(attempt));
  }
  return true;
}

void TxnCoordinator::ExecuteDistributed(const ClassifiedTxn& txn) {
  const RuntimeOptions& opt = executor_->options();
  RuntimeMetrics* metrics = executor_->metrics();
  TraceRecorder& rec = TraceRecorder::Default();
  const bool traced =
      rec.enabled() &&
      TxnTraceSampled(opt.faults.seed, txn.txn_id, opt.trace_sample_rate);
  const int64_t tid = static_cast<int64_t>(txn.txn_id);
  auto start = std::chrono::steady_clock::now();
  const uint64_t start_ts = traced ? rec.ToTraceUs(start) : 0;

  if (opt.verify_residency) executor_->VerifyResidency(txn);

  const uint32_t budget =
      injector_ ? std::max(injector_->plan().max_attempts, 1u) : 1u;
  for (uint32_t attempt = 0; attempt < budget; ++attempt) {
    if (AttemptOnce(txn, attempt, traced)) {
      uint64_t latency_us = ElapsedUs(start);
      metrics->shard(txn.home).dist_latency.Record(latency_us);
      if (attempt > 0) metrics->retry_latency.Record(latency_us);
      // Count from the static classification so the measured distributed
      // fraction agrees with Evaluate() on the same (solution, trace) pair.
      if (txn.distributed) {
        metrics->distributed_committed.fetch_add(1, std::memory_order_relaxed);
      }
      metrics->committed.fetch_add(1, std::memory_order_relaxed);
      if (traced) {
        // Full client-observed latency; dur equals the value recorded in
        // dist_latency exactly, so trace rollups reconcile with the report.
        rec.Span("runtime", "txn.dist", start_ts, latency_us, "txn", tid,
                 "attempts", static_cast<int64_t>(attempt) + 1);
      }
      return;
    }
    metrics->aborts.fetch_add(1, std::memory_order_relaxed);
    if (attempt + 1 < budget) {
      metrics->retries.fetch_add(1, std::memory_order_relaxed);
      const uint64_t backoff_ts = traced ? rec.NowUs() : 0;
      SimulateNetworkDelay(injector_->BackoffUs(txn.txn_id, attempt));
      if (traced) {
        rec.Span("runtime", "backoff", backoff_ts, rec.NowUs() - backoff_ts,
                 "txn", tid, "attempt", static_cast<int64_t>(attempt));
      }
    }
  }

  // Retry budget exhausted: graceful degradation, not a silent drop — the
  // failure is recorded and conservation (committed + failed == submitted)
  // still holds.
  metrics->failed.fetch_add(1, std::memory_order_relaxed);
  if (traced) {
    rec.Span("runtime", "txn.failed", start_ts, ElapsedUs(start), "txn", tid,
             "attempts", static_cast<int64_t>(budget));
  }
}

}  // namespace jecb
