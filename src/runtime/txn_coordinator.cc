#include "runtime/txn_coordinator.h"

namespace jecb {

void TxnCoordinator::ExecuteDistributed(const ClassifiedTxn& txn) {
  const RuntimeOptions& opt = executor_->options();
  RuntimeMetrics* metrics = executor_->metrics();
  auto start = std::chrono::steady_clock::now();

  if (opt.verify_residency) executor_->VerifyResidency(txn);

  // Prepare phase: lock participants in ascending id order and execute the
  // shard-local work (reads/writes + prepare validation) under each lock.
  const uint32_t prepare_us = opt.local_work_us + opt.lock_hold_us;
  std::vector<std::unique_lock<std::mutex>> held;
  held.reserve(txn.participants.size());
  for (int32_t p : txn.participants) {
    held.emplace_back(executor_->shard_lock(p));
    SimulateCpuWork(prepare_us);
    ShardMetrics& sm = metrics->shard(p);
    sm.busy_us.fetch_add(prepare_us, std::memory_order_relaxed);
    sm.dist_participations.fetch_add(1, std::memory_order_relaxed);
  }

  // Prepare messages out, votes back: every participant keeps its lock (and
  // thus blocks its worker) for the full round trip.
  SimulateNetworkDelay(opt.round_trip_us);

  // All voted yes — commit applies at each participant, locks release.
  for (auto& lock : held) lock.unlock();

  // Commit messages out, acks back: latency the client still observes, but
  // the shards are already free.
  SimulateNetworkDelay(opt.round_trip_us);

  uint64_t latency_us = ElapsedUs(start);
  metrics->shard(txn.home).latency.Record(latency_us);
  metrics->distributed_latency.Record(latency_us);
  // Count from the static classification so the measured distributed
  // fraction agrees with Evaluate() on the same (solution, trace) pair.
  if (txn.distributed) {
    metrics->distributed_committed.fetch_add(1, std::memory_order_relaxed);
  }
  metrics->committed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace jecb
