#include "runtime/sharded_database.h"

#include <cmath>

#include "common/string_util.h"
#include "runtime/exchange.h"

namespace jecb {

ShardedDatabase::ShardedDatabase(const Database& db,
                                 const DatabaseSolution& solution)
    : db_(&db) {
  const size_t num_tables = db.schema().num_tables();
  const int32_t k = std::max(solution.num_partitions(), 1);
  shards_.resize(k);
  for (Shard& s : shards_) s.per_table_count.assign(num_tables, 0);
  assignment_.resize(num_tables);

  for (TableId t = 0; t < num_tables; ++t) {
    const TableData& data = db.table_data(t);
    assignment_[t].resize(data.num_rows());
    for (RowId r = 0; r < data.num_rows(); ++r) {
      ++base_tuples_;
      int32_t p = solution.PartitionOf(db, TupleId{t, r});
      if (p == kReplicated) {
        ++replicated_tuples_;
        for (Shard& s : shards_) {
          ++s.tuple_count;
          ++s.per_table_count[t];
        }
        assignment_[t][r] = kReplicated;
        continue;
      }
      if (p < 0 || p >= k) {
        // Unresolvable placement: pin deterministically so replay still has
        // a home for the tuple, but surface the count to callers.
        ++unknown_placements_;
        p = static_cast<int32_t>(TupleIdHash{}(TupleId{t, r}) %
                                 static_cast<size_t>(k));
      }
      ++shards_[p].tuple_count;
      ++shards_[p].per_table_count[t];
      assignment_[t][r] = p;
    }
  }
}

void ShardedDatabase::BuildEncodedRows() {
  if (!encoded_rows_.empty()) return;
  const size_t num_tables = db_->schema().num_tables();
  // One arena per shard + one for replicated tuples: a pinned worker (or a
  // forked shard server) touching only its own shard's rows stays within
  // one contiguous block chain.
  encoded_arenas_ = std::vector<Arena>(shards_.size() + 1);
  encoded_rows_.resize(num_tables);
  for (TableId t = 0; t < num_tables; ++t) {
    const TableData& data = db_->table_data(t);
    encoded_rows_[t].resize(data.num_rows());
    for (RowId r = 0; r < data.num_rows(); ++r) {
      int32_t p = assignment_[t][r];
      Arena& arena = encoded_arenas_[p == kReplicated
                                         ? shards_.size()
                                         : static_cast<size_t>(p)];
      encoded_rows_[t][r] = arena.CopyString(EncodeRowBytes(data.row(r)));
    }
  }
}

double ShardedDatabase::ReplicationFactor() const {
  if (base_tuples_ == 0) return 1.0;
  uint64_t stored = 0;
  for (const Shard& s : shards_) stored += s.tuple_count;
  return static_cast<double>(stored) / static_cast<double>(base_tuples_);
}

double ShardedDatabase::StorageSkew() const {
  if (shards_.empty()) return 0.0;
  double mean = 0.0;
  for (const Shard& s : shards_) mean += static_cast<double>(s.tuple_count);
  mean /= static_cast<double>(shards_.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (const Shard& s : shards_) {
    double d = static_cast<double>(s.tuple_count) - mean;
    var += d * d;
  }
  var /= static_cast<double>(shards_.size());
  return std::sqrt(var) / mean;
}

std::string ShardedDatabase::Describe() const {
  std::string out = "shards=" + std::to_string(shards_.size()) +
                    " base_tuples=" + std::to_string(base_tuples_) +
                    " replication_factor=" + FormatDouble(ReplicationFactor(), 2) +
                    " storage_skew=" + FormatDouble(StorageSkew(), 3);
  if (unknown_placements_ > 0) {
    out += " unknown_placements=" + std::to_string(unknown_placements_);
  }
  return out;
}

}  // namespace jecb
