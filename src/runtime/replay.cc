#include "runtime/replay.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/hash.h"
#include "common/string_util.h"
#include "partition/evaluator.h"
#include "runtime/txn_coordinator.h"

namespace jecb {

std::vector<ClassifiedTxn> ClassifyTrace(const Database& db,
                                         const DatabaseSolution& solution,
                                         const Trace& trace) {
  const int32_t k = std::max(solution.num_partitions(), 1);
  std::vector<ClassifiedTxn> out;
  out.reserve(trace.size());
  std::vector<int32_t> parts;
  size_t index = 0;
  for (const Transaction& txn : trace.transactions()) {
    ClassifiedTxn ct;
    ct.txn = &txn;
    ct.txn_id = index;  // stable fault-decision coordinate
    bool writes_replicated = false;
    parts.clear();
    for (const Access& a : txn.accesses) {
      int32_t p = solution.PartitionOf(db, a.tuple);
      if (p == kReplicated) {
        if (a.write) writes_replicated = true;
        continue;
      }
      if (p < 0 || p >= k) {
        // Same deterministic fallback ShardedDatabase uses for unresolvable
        // placements, so residency checks still line up.
        p = static_cast<int32_t>(TupleIdHash{}(a.tuple) % static_cast<size_t>(k));
      }
      parts.push_back(p);
    }
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    if (writes_replicated) {
      // A replicated write must apply on every shard.
      ct.participants.resize(k);
      for (int32_t p = 0; p < k; ++p) ct.participants[p] = p;
    } else if (parts.empty()) {
      // Replicated reads only: executable anywhere; spread round-robin.
      ct.participants = {static_cast<int32_t>(index % static_cast<size_t>(k))};
    } else {
      ct.participants = parts;
    }
    ct.home = ct.participants.front();
    ct.distributed = IsDistributed(db, solution, txn);
    out.push_back(std::move(ct));
    ++index;
  }
  return out;
}

namespace {

LatencyReport SnapshotLatency(const LatencyHistogram& h) {
  LatencyReport r;
  r.count = h.count();
  r.mean_us = h.mean_us();
  r.p50_us = h.Quantile(0.50);
  r.p95_us = h.Quantile(0.95);
  r.p99_us = h.Quantile(0.99);
  r.max_us = static_cast<double>(h.max_us());
  return r;
}

void AppendLatencyJson(std::string* out, const char* key, const LatencyReport& l) {
  *out += "\"";
  *out += key;
  *out += "\":{\"count\":" + std::to_string(l.count) +
          ",\"mean_us\":" + FormatDouble(l.mean_us, 1) +
          ",\"p50_us\":" + FormatDouble(l.p50_us, 1) +
          ",\"p95_us\":" + FormatDouble(l.p95_us, 1) +
          ",\"p99_us\":" + FormatDouble(l.p99_us, 1) +
          ",\"max_us\":" + FormatDouble(l.max_us, 1) + "}";
}

}  // namespace

uint64_t ReplayReport::OutcomeSignature() const {
  uint64_t h = HashInt64(total_txns);
  auto mix = [&h](uint64_t v) { h = HashCombine(h, HashInt64(v)); };
  mix(committed);
  mix(distributed_committed);
  mix(residency_faults);
  mix(failed);
  mix(aborts);
  mix(retries);
  mix(prepare_rejects);
  mix(coordinator_timeouts);
  mix(shard_down_aborts);
  mix(stalls_injected);
  for (const ShardReport& s : shards) {
    mix(s.local_txns);
    mix(s.dist_participations);
    mix(s.participation_attempts);
    mix(s.stalls);
    mix(s.prepare_rejects);
    mix(s.down_events);
  }
  return h;
}

std::string ReplayReport::ToJson() const {
  std::string out = "{";
  out += "\"label\":\"" + label + "\"";
  out += ",\"partitions\":" + std::to_string(num_partitions);
  out += ",\"total_txns\":" + std::to_string(total_txns);
  out += ",\"committed\":" + std::to_string(committed);
  out += ",\"distributed_txns\":" + std::to_string(distributed_committed);
  out += ",\"distributed_fraction\":" + FormatDouble(distributed_fraction(), 4);
  out += ",\"residency_faults\":" + std::to_string(residency_faults);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"aborts\":" + std::to_string(aborts);
  out += ",\"retries\":" + std::to_string(retries);
  out += ",\"prepare_rejects\":" + std::to_string(prepare_rejects);
  out += ",\"coordinator_timeouts\":" + std::to_string(coordinator_timeouts);
  out += ",\"shard_down_aborts\":" + std::to_string(shard_down_aborts);
  out += ",\"stalls_injected\":" + std::to_string(stalls_injected);
  out += ",\"wall_seconds\":" + FormatDouble(wall_seconds, 3);
  out += ",\"throughput_tps\":" + FormatDouble(throughput_tps, 0);
  out += ",\"goodput_tps\":" + FormatDouble(goodput_tps, 0);
  out += ",\"replication_factor\":" + FormatDouble(replication_factor, 2);
  out += ",\"storage_skew\":" + FormatDouble(storage_skew, 3);
  out += ",\"latency_us\":{";
  AppendLatencyJson(&out, "local", local);
  out += ",";
  AppendLatencyJson(&out, "distributed", distributed);
  out += ",";
  AppendLatencyJson(&out, "retry", retry);
  out += "},\"shards\":[";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardReport& s = shards[i];
    if (i > 0) out += ",";
    out += "{\"shard\":" + std::to_string(s.shard) +
           ",\"stored_tuples\":" + std::to_string(s.stored_tuples) +
           ",\"local_txns\":" + std::to_string(s.local_txns) +
           ",\"dist_participations\":" + std::to_string(s.dist_participations) +
           ",\"busy_us\":" + std::to_string(s.busy_us) +
           ",\"participation_attempts\":" + std::to_string(s.participation_attempts) +
           ",\"stalls\":" + std::to_string(s.stalls) +
           ",\"prepare_rejects\":" + std::to_string(s.prepare_rejects) +
           ",\"down_events\":" + std::to_string(s.down_events) +
           ",\"availability\":" + FormatDouble(s.availability(), 4) +
           ",\"p50_us\":" + FormatDouble(s.p50_us, 1) +
           ",\"p95_us\":" + FormatDouble(s.p95_us, 1) +
           ",\"p99_us\":" + FormatDouble(s.p99_us, 1) + "}";
  }
  out += "]}";
  return out;
}

ReplayReport Replay(const Database& db, const DatabaseSolution& solution,
                    const Trace& trace, const RuntimeOptions& options,
                    std::string label) {
  // Phase A (single-threaded): resolve placements — this also warms the
  // solution's per-tuple memo caches so the parallel replay phase is pure
  // cache hits — and materialize the shard layout.
  std::vector<ClassifiedTxn> classified = ClassifyTrace(db, solution, trace);
  ShardedDatabase sharded(db, solution);

  RuntimeMetrics metrics(sharded.num_shards());
  ShardExecutor executor(sharded, options, &metrics);
  FaultInjector injector(options.faults);
  TxnCoordinator coordinator(&executor, &injector);
  executor.Start();

  // Phase B: closed-loop clients race through the classified trace.
  std::atomic<size_t> next{0};
  auto run_client = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= classified.size()) break;
      const ClassifiedTxn& ct = classified[i];
      if (ct.RequiresTwoPhaseCommit()) {
        coordinator.ExecuteDistributed(ct);
      } else {
        executor.ExecuteLocal(ct);
      }
    }
  };
  const int num_clients = std::max(options.num_clients, 1);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) clients.emplace_back(run_client);
  for (std::thread& c : clients) c.join();
  executor.Shutdown();
  double wall = static_cast<double>(ElapsedUs(t0)) / 1e6;

  // Phase C: snapshot.
  ReplayReport report;
  report.label = std::move(label);
  report.num_partitions = sharded.num_shards();
  report.total_txns = trace.size();
  report.committed = metrics.committed.load();
  report.distributed_committed = metrics.distributed_committed.load();
  report.residency_faults = metrics.residency_faults.load();
  report.failed = metrics.failed.load();
  report.aborts = metrics.aborts.load();
  report.retries = metrics.retries.load();
  report.prepare_rejects = metrics.prepare_rejects.load();
  report.coordinator_timeouts = metrics.coordinator_timeouts.load();
  report.shard_down_aborts = metrics.shard_down_aborts.load();
  report.stalls_injected = metrics.stalls_injected.load();
  report.wall_seconds = wall;
  report.goodput_tps =
      wall > 0.0 ? static_cast<double>(report.committed) / wall : 0.0;
  report.throughput_tps =
      wall > 0.0
          ? static_cast<double>(report.committed + report.failed) / wall
          : 0.0;
  report.replication_factor = sharded.ReplicationFactor();
  report.storage_skew = sharded.StorageSkew();
  report.local = SnapshotLatency(metrics.local_latency);
  report.distributed = SnapshotLatency(metrics.distributed_latency);
  report.retry = SnapshotLatency(metrics.retry_latency);
  report.shards.reserve(sharded.num_shards());
  for (int32_t s = 0; s < sharded.num_shards(); ++s) {
    const ShardMetrics& sm = metrics.shard(s);
    ShardReport sr;
    sr.shard = s;
    sr.stored_tuples = sharded.shard_tuples(s);
    sr.local_txns = sm.local_txns.load();
    sr.dist_participations = sm.dist_participations.load();
    sr.busy_us = sm.busy_us.load();
    sr.participation_attempts = sm.participation_attempts.load();
    sr.stalls = sm.stalls.load();
    sr.prepare_rejects = sm.prepare_rejects.load();
    sr.down_events = sm.down_events.load();
    sr.p50_us = sm.latency.Quantile(0.50);
    sr.p95_us = sm.latency.Quantile(0.95);
    sr.p99_us = sm.latency.Quantile(0.99);
    report.shards.push_back(sr);
  }
  return report;
}

}  // namespace jecb
