// Partitioned execution engine: one worker thread per shard, fed through an
// MPSC work queue, executes single-partition transactions under the shard's
// lock. Multi-partition transactions bypass the queues and are driven by the
// TxnCoordinator (two-phase commit simulation) on the submitting thread,
// contending on the same per-shard locks — which is exactly how distributed
// transactions steal throughput from local ones (paper Fig. 1).
//
// Costs are simulated, not measured from real I/O: CPU work spins the clock
// (it occupies the shard), network round trips sleep (they occupy nothing
// but wall time, while any held locks keep blocking).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <semaphore>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "obs/trace_recorder.h"
#include "runtime/fault_injector.h"
#include "runtime/metrics.h"
#include "runtime/sharded_database.h"
#include "runtime/work_queue.h"
#include "trace/trace.h"

namespace jecb {

/// Which execution backend Replay() drives the classified trace through.
/// The in-process backend is the deterministic-test reference; the socket
/// backends fork one ShardServer process per shard and run real 2PC message
/// rounds over the wire (src/dist). All backends share the fault-decision
/// machinery, so ReplayReport::OutcomeSignature() is backend-invariant —
/// the cross-backend correctness oracle tests/dist_runtime_test.cc asserts.
enum class TransportKind : uint8_t {
  kInProcess = 0,   ///< per-shard worker threads + simulated latencies
  kUnixSocket = 1,  ///< shard-per-process over Unix-domain sockets
  kTcpSocket = 2,   ///< shard-per-process over TCP loopback
};

std::string_view TransportKindName(TransportKind kind);

/// Open-loop arrival process shape (see src/runtime/load_gen.h). Both are
/// pure functions of (faults.seed, txn id), so the schedule — and therefore
/// which txns exist to execute — is identical at any client count and on
/// any backend.
enum class ArrivalProcess : uint8_t {
  kFixedRate = 0,  ///< arrival i at exactly i / target_tps seconds
  kPoisson = 1,    ///< exponential inter-arrivals, seed-driven
};

std::string_view ArrivalProcessName(ArrivalProcess process);

/// Knobs of the simulated cluster.
struct RuntimeOptions {
  /// Execution backend (see TransportKind).
  TransportKind transport = TransportKind::kInProcess;
  /// Directory for Unix-domain socket files; empty picks a fresh private
  /// directory under $TMPDIR so concurrent replays never collide.
  std::string socket_dir;
  /// Closed-loop client threads submitting transactions.
  int num_clients = 4;
  /// Shard-side CPU cost of executing one transaction's local work.
  uint32_t local_work_us = 2;
  /// One 2PC message round trip (prepare+vote, commit+ack each cost one).
  uint32_t round_trip_us = 100;
  /// Extra shard-side lock hold during prepare (log flush, validation).
  uint32_t lock_hold_us = 0;
  /// Check every access against the materialized shard layout and count
  /// misplaced tuples in RuntimeMetrics::residency_faults.
  bool verify_residency = true;
  /// Per-shard work-queue depth cap; 0 = unbounded. With a cap, submitters
  /// to a stalled shard block (backpressure) instead of growing the queue.
  uint32_t max_queue_depth = 0;
  /// Coordination faults to inject on the 2PC path; disabled by default
  /// (all rates zero). See runtime/fault_injector.h for the determinism
  /// contract.
  FaultPlan faults;
  /// Exchange-style tuple routing: committed transactions assemble their
  /// full read set as actual tuple bytes (the socket backends pull remote
  /// rows shard-to-shard over dedicated data channels; the in-process
  /// backend materializes the same rows in memory). Outcome counters are
  /// unaffected — only the jecb_exchange_* metrics and the payload digest
  /// move — so OutcomeSignature() is identical with exchange on or off.
  bool exchange_enabled = true;
  /// Target encoded-row bytes per kTupleBatch frame; responses exceeding it
  /// are split into multiple batches. Clamped to [64 B, 256 KiB] (tiny
  /// values are how the tests force batches to straddle frame boundaries).
  uint32_t exchange_batch_bytes = 32 * 1024;
  /// Fraction of transactions that get a full per-txn span timeline
  /// (enqueue -> queue wait -> execute -> 2PC rounds -> retries) when the
  /// TraceRecorder is enabled. The decision is a pure hash of
  /// (faults.seed, txn id) — the same txn ids are sampled at any client
  /// count, and sampling never alters execution (OutcomeSignature is
  /// unchanged). 1.0 traces everything; 0.0 only the replay-level spans.
  double trace_sample_rate = 1.0;
  /// Socket backends: harvest each shard child's span ring + metrics
  /// snapshot over the wire (kTelemetryReq/kTelemetry) into the
  /// coordinator's ClusterTelemetry sink. The shutdown-time harvest always
  /// runs when this is on; a non-zero telemetry_period_ms additionally
  /// polls live during the replay. Telemetry rides out-of-band on its own
  /// control connections and never touches outcome counters, so
  /// OutcomeSignature() is identical with it on or off.
  bool telemetry_harvest = true;
  /// Live-harvest period in milliseconds; 0 = shutdown-only.
  uint32_t telemetry_period_ms = 0;
  /// Directory for per-shard postmortem flight-recorder dumps; empty picks
  /// a fresh private directory under $TMPDIR. Unlike socket_dir, the
  /// directory survives Drain() whenever a dump was written — the dump path
  /// is surfaced through ReplayReport::shard_exits.
  std::string postmortem_dir;
  /// Test knob: this shard ignores kShutdown, forcing the reap ladder to
  /// SIGTERM it — exercising the flight recorder's signal path. -1 = off.
  int32_t debug_wedge_shard = -1;
  /// Test knob: this shard dumps its flight recorder and _Exit(3)s on
  /// kShutdown — a reproducible abnormal exit. -1 = off.
  int32_t debug_crash_on_shutdown_shard = -1;

  // ---- Open-loop load generation (src/runtime/load_gen.h) ----

  /// Offered load in txn/sec. 0 (default) keeps the closed-loop clients:
  /// each of num_clients issues its next txn only after the previous one
  /// finishes. A positive value switches Replay() to the open-loop driver:
  /// arrivals follow the deterministic schedule regardless of completions,
  /// num_clients executor threads drain the admission queue, and arrivals
  /// that find it full are shed (counted, never executed).
  double target_tps = 0.0;
  /// Arrival schedule shape when target_tps > 0.
  ArrivalProcess arrival = ArrivalProcess::kFixedRate;
  /// Admission queue capacity for open-loop arrivals; 0 = unbounded (never
  /// sheds, arbitrary queueing delay — what you want when asserting
  /// cross-config OutcomeSignature identity under overload).
  uint32_t admission_queue_depth = 1024;

  // ---- CPU topology (src/common/topology.h) ----

  /// Pin shard workers (in-process backend) and forked shard-server
  /// children + their exchange threads (socket backends) to distinct
  /// logical cpus, physical cores first (BuildPinPlan). Best-effort and
  /// performance-only: outcomes are identical pinned or not.
  bool pin_threads = false;
  /// Back each shard's tuple bytes with a per-shard bump-pointer arena
  /// (ShardedDatabase::BuildEncodedRows): exchange read-set assembly serves
  /// pre-encoded rows from the arena instead of heap-allocating a fresh
  /// std::string per row. Performance-only; byte-identical payloads, so
  /// every digest and signature is unchanged on or off.
  bool arena_tuples = true;
};

/// Deterministic per-txn trace-sampling decision; thread-count independent
/// because it depends only on (seed, txn_id). Reuses the fault machinery's
/// seed so a traced faulted replay stays bit-identical to an untraced one.
inline bool TxnTraceSampled(uint64_t seed, uint64_t txn_id, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  uint64_t h = HashCombine(HashCombine(seed, 0x0B5E7u), txn_id);
  return static_cast<double>(HashInt64(h) >> 11) * 0x1.0p-53 < rate;
}

/// A trace transaction resolved against a solution: the physical shards it
/// must run on, and its static Definition 5/6 classification.
struct ClassifiedTxn {
  const Transaction* txn = nullptr;
  /// Stable id (the transaction's index in the classified trace): the
  /// coordinate every fault-injection decision and backoff jitter is keyed
  /// on, which is what makes fault replays thread-count-independent.
  uint64_t txn_id = 0;
  /// Sorted distinct shards holding the txn's non-replicated accesses;
  /// all shards for replicated writes; never empty (replicated-read-only
  /// txns are assigned one shard round-robin).
  std::vector<int32_t> participants;
  /// participants.front(): the shard whose metrics this txn is homed to.
  int32_t home = 0;
  /// Static classification, identical to the evaluator's IsDistributed();
  /// the runtime counts distributed commits from this flag so the measured
  /// fraction agrees with Evaluate() exactly.
  bool distributed = false;

  bool RequiresTwoPhaseCommit() const {
    return distributed || participants.size() > 1;
  }
};

/// Accesses of `txn` whose owning shard is not among `txn.participants`
/// (replicated tuples are resident everywhere and never count). Shared by
/// every backend so residency accounting is identical in-process and over
/// sockets. Lock-free: the shard layout is immutable.
uint64_t CountResidencyFaults(const ShardedDatabase& sharded,
                              const ClassifiedTxn& txn);

/// Burns CPU for `us` microseconds: simulated transaction execution work.
inline void SimulateCpuWork(uint32_t us) {
  if (us == 0) return;
  auto end = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < end) {
  }
}

/// Waits out `us` microseconds without occupying a core: simulated network
/// latency. Held locks keep blocking while the sleeper waits.
inline void SimulateNetworkDelay(uint32_t us) {
  if (us == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

inline uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - since)
                                   .count());
}

/// The shard worker pool. Thread-safe once Start() has returned.
class ShardExecutor {
 public:
  ShardExecutor(const ShardedDatabase& sharded_db, const RuntimeOptions& options,
                RuntimeMetrics* metrics);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Spawns one worker thread per shard.
  void Start();

  /// Runs a single-partition transaction on its home shard's worker and
  /// blocks until it commits (closed-loop client).
  void ExecuteLocal(const ClassifiedTxn& txn);

  /// Closes all queues and joins the workers. Idempotent; called by the
  /// destructor if needed. Every queued transaction still executes.
  void Shutdown();

  /// Per-shard lock; the coordinator acquires these in ascending shard-id
  /// order, which makes the 2PC simulation deadlock-free.
  std::mutex& shard_lock(int32_t shard) { return shards_[shard]->lock; }

  /// Counts accesses whose owning shard is not among `txn.participants`
  /// into residency_faults. Lock-free: the shard layout is immutable.
  void VerifyResidency(const ClassifiedTxn& txn);

  const ShardedDatabase& sharded_db() const { return sharded_db_; }
  const RuntimeOptions& options() const { return options_; }
  RuntimeMetrics* metrics() { return metrics_; }
  int32_t num_shards() const { return sharded_db_.num_shards(); }

 private:
  struct Job {
    const ClassifiedTxn* txn = nullptr;
    std::chrono::steady_clock::time_point enqueued;
    /// Sampled-in for span emission (decided on the client thread so the
    /// worker does not re-hash).
    bool traced = false;
    std::binary_semaphore done{0};
  };

  struct ShardState {
    std::mutex lock;
    WorkQueue<Job*> queue;
    std::thread worker;
  };

  void WorkerLoop(int32_t shard_id);

  const ShardedDatabase& sharded_db_;
  RuntimeOptions options_;
  RuntimeMetrics* metrics_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Shard -> logical cpu when options_.pin_threads; empty otherwise.
  std::vector<int32_t> pin_plan_;
  bool started_ = false;
};

}  // namespace jecb
