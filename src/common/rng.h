// Deterministic pseudo-random generation for workload synthesis.
//
// All workload generators draw from Rng so that traces are reproducible from
// a seed. Includes the TPC-C NURand non-uniform distribution and a Zipf
// sampler used for skewed access patterns.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace jecb {

/// Seeded pseudo-random source with the distributions workload generators
/// need. Not thread-safe; use one instance per generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// TPC-C NURand(A, x, y): non-uniform random in [x, y].
  int64_t NuRand(int64_t a, int64_t x, int64_t y) {
    const int64_t c = 7;  // fixed run constant; any value in [0, a] is valid
    return (((Uniform(0, a) | Uniform(x, y)) + c) % (y - x + 1)) + x;
  }

  /// Zipf-distributed integer in [0, n), exponent theta (0 = uniform).
  /// O(log n) per draw after O(n) setup amortized via a cached CDF.
  int64_t Zipf(int64_t n, double theta) {
    assert(n > 0);
    if (theta <= 0.0) return Uniform(0, n - 1);
    RebuildZipfCdf(n, theta);
    double u = NextDouble();
    auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    if (it == zipf_cdf_.end()) return n - 1;
    return it - zipf_cdf_.begin();
  }

  /// Samples k distinct integers from [lo, hi]; k must not exceed the range.
  std::vector<int64_t> SampleDistinct(int64_t lo, int64_t hi, int64_t k) {
    assert(k <= hi - lo + 1);
    std::vector<int64_t> out;
    out.reserve(k);
    // Floyd's algorithm keeps the draw O(k) even for huge ranges.
    std::vector<int64_t> seen;
    for (int64_t j = hi - k + 1; j <= hi; ++j) {
      int64_t t = Uniform(lo, j);
      bool dup = false;
      for (int64_t s : seen) {
        if (s == t) {
          dup = true;
          break;
        }
      }
      seen.push_back(dup ? j : t);
      out.push_back(seen.back());
    }
    return out;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  void RebuildZipfCdf(int64_t n, double theta) {
    if (zipf_n_ == n && zipf_theta_ == theta) return;
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      zipf_cdf_[i] = sum;
    }
    for (int64_t i = 0; i < n; ++i) zipf_cdf_[i] /= sum;
  }

  std::mt19937_64 engine_;
  int64_t zipf_n_ = -1;
  double zipf_theta_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace jecb
