// AsciiTable: fixed-width text tables for experiment reports, so bench
// binaries can print rows in the same layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace jecb {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends one row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with column separators and a header rule.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace jecb
