// Bump-pointer arena: block-chained, alignment-aware, no per-allocation
// bookkeeping. The runtime keeps one arena per shard to back the encoded
// tuple store and exchange batch assembly, replacing the per-row
// heap-allocated std::strings on the execution hot path.
//
// Ownership/reset rules (see DESIGN "Open-loop load & CPU topology"):
//   - An arena is single-writer. Per-shard arenas are filled once, before
//     workers (or forked shard servers) start, then read concurrently —
//     reads of arena-backed bytes need no lock because the memory is
//     immutable from that point on.
//   - Reset() rewinds every block to empty but keeps the capacity, so a
//     reusing writer (scratch assembly) pays no allocator traffic in steady
//     state. Reset invalidates every pointer previously handed out; callers
//     that publish views into an arena must never Reset it while readers
//     exist.
//   - Allocations larger than the block size get a dedicated block; they do
//     not split across blocks (returned memory is always contiguous).
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace jecb {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `bytes` bytes aligned to `align` (a power of two). Zero-byte
  /// requests return a valid unique-enough pointer. Never fails short of
  /// operator new throwing.
  char* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Copies `s` into the arena and returns a view of the stable copy.
  std::string_view CopyString(std::string_view s);

  /// Rewinds every block to empty, keeping the reserved capacity.
  /// Invalidates all previously returned pointers/views.
  void Reset();

  /// Bytes handed out since construction/Reset (excludes alignment waste).
  size_t bytes_allocated() const { return allocated_; }
  /// Total capacity currently held across blocks.
  size_t bytes_reserved() const { return reserved_; }
  size_t blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  Block& GrowFor(size_t bytes);

  std::vector<Block> blocks_;
  size_t block_bytes_;
  size_t allocated_ = 0;
  size_t reserved_ = 0;
  /// Index of the block currently being filled (Reset reuses from 0).
  size_t active_ = 0;
};

}  // namespace jecb
