#include "common/thread_pool.h"

#include <algorithm>

#include "obs/trace_recorder.h"

namespace jecb {

int32_t ThreadPool::ResolveThreads(int32_t requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int32_t>(hw);
}

ThreadPool::ThreadPool(int32_t num_threads) {
  int32_t n = ResolveThreads(num_threads);
  workers_.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> guard(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      // Drain remaining tasks even when stopping so pending futures resolve.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn,
                 const char* label) {
  TraceRecorder& rec = TraceRecorder::Default();
  const bool traced = label != nullptr && rec.enabled();
  const uint64_t start_ts = traced ? rec.NowUs() : 0;
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      futures.push_back(pool->Submit([&fn, &rec, i, label, traced] {
        if (traced) {
          ScopedSpan task("pool.task", label, "index", static_cast<int64_t>(i),
                          rec);
          fn(i);
        } else {
          fn(i);
        }
      }));
    }
    for (std::future<void>& f : futures) f.get();
  }
  if (traced) {
    // Fan-out + all tasks + join, as observed by the submitting thread.
    rec.Span("pool", label, start_ts, rec.NowUs() - start_ts, "n",
             static_cast<int64_t>(n));
  }
}

}  // namespace jecb
