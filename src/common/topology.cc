#include "common/topology.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sched.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace jecb {

namespace {

namespace fs = std::filesystem;

/// Reads a small sysfs file; empty string on any error (missing file,
/// permission) so callers can treat "unreadable" and "absent" the same way.
std::string ReadSmallFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool ParseInt(std::string_view text, int32_t* out) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  if (text.empty()) return false;
  int32_t value = 0;
  bool any = false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    value = value * 10 + (c - '0');
    any = true;
  }
  *out = value;
  return any;
}

/// Every logical cpu is its own core on node 0 — what we report when sysfs
/// is hidden (containers, non-Linux). hardware_concurrency() can itself
/// return 0 on exotic platforms; one cpu is the conservative floor.
CpuTopology FallbackTopology() {
  CpuTopology topo;
  unsigned n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  for (unsigned i = 0; i < n; ++i) {
    CpuInfo info;
    info.cpu = static_cast<int32_t>(i);
    info.core = static_cast<int32_t>(i);
    topo.cpus.push_back(info);
  }
  topo.physical_cores = static_cast<int32_t>(n);
  topo.packages = 1;
  topo.numa_nodes = 1;
  topo.smt = false;
  topo.from_sysfs = false;
  return topo;
}

}  // namespace

std::vector<int32_t> ParseCpuList(std::string_view text) {
  std::vector<int32_t> cpus;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    std::string_view tok = text.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    pos = comma == std::string_view::npos ? text.size() : comma + 1;
    size_t dash = tok.find('-');
    int32_t lo = 0;
    int32_t hi = 0;
    if (dash == std::string_view::npos) {
      if (!ParseInt(tok, &lo)) return {};
      hi = lo;
    } else {
      if (!ParseInt(tok.substr(0, dash), &lo) ||
          !ParseInt(tok.substr(dash + 1), &hi) || hi < lo) {
        return {};
      }
    }
    // A hostile/corrupt range must not OOM the parser.
    if (hi - lo > 4096) return {};
    for (int32_t c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology DetectCpuTopologyFrom(const std::string& cpu_root,
                                  const std::string& node_root) {
  std::error_code ec;
  if (!fs::is_directory(cpu_root, ec)) return FallbackTopology();

  // Which logical cpus exist: prefer the `present` cpulist, fall back to
  // scanning cpuN directories (fake test trees may provide either).
  std::vector<int32_t> ids = ParseCpuList(ReadSmallFile(fs::path(cpu_root) / "present"));
  if (ids.empty()) {
    for (const auto& entry : fs::directory_iterator(cpu_root, ec)) {
      const std::string name = entry.path().filename().string();
      int32_t id = 0;
      if (name.rfind("cpu", 0) == 0 && ParseInt(name.substr(3), &id)) {
        ids.push_back(id);
      }
    }
    std::sort(ids.begin(), ids.end());
  }
  if (ids.empty()) return FallbackTopology();

  CpuTopology topo;
  for (int32_t id : ids) {
    fs::path dir = fs::path(cpu_root) / ("cpu" + std::to_string(id)) / "topology";
    CpuInfo info;
    info.cpu = id;
    if (!ParseInt(ReadSmallFile(dir / "core_id"), &info.core) ||
        !ParseInt(ReadSmallFile(dir / "physical_package_id"), &info.package)) {
      // A tree without per-cpu topology (some containers expose the cpu
      // dirs but hide topology/) is as good as no tree at all.
      return FallbackTopology();
    }
    topo.cpus.push_back(info);
  }

  // SMT siblings: the first logical cpu (lowest id) of each (package, core)
  // pair is the core's primary thread; the rest are siblings.
  std::map<std::pair<int32_t, int32_t>, int32_t> first_of_core;
  for (CpuInfo& info : topo.cpus) {
    auto [it, inserted] =
        first_of_core.emplace(std::make_pair(info.package, info.core), info.cpu);
    info.smt_sibling = !inserted;
    if (!inserted) topo.smt = true;
    (void)it;
  }
  topo.physical_cores = static_cast<int32_t>(first_of_core.size());
  std::vector<int32_t> packages;
  for (const CpuInfo& info : topo.cpus) packages.push_back(info.package);
  std::sort(packages.begin(), packages.end());
  packages.erase(std::unique(packages.begin(), packages.end()), packages.end());
  topo.packages = std::max<int32_t>(1, static_cast<int32_t>(packages.size()));

  // NUMA: node dirs carry a cpulist each; cpus outside every list stay on
  // node 0 (matches the kernel's memoryless-node folding).
  int32_t nodes_seen = 0;
  if (fs::is_directory(node_root, ec)) {
    for (const auto& entry : fs::directory_iterator(node_root, ec)) {
      const std::string name = entry.path().filename().string();
      int32_t node_id = 0;
      if (name.rfind("node", 0) != 0 || !ParseInt(name.substr(4), &node_id)) {
        continue;
      }
      ++nodes_seen;
      for (int32_t cpu : ParseCpuList(ReadSmallFile(entry.path() / "cpulist"))) {
        for (CpuInfo& info : topo.cpus) {
          if (info.cpu == cpu) info.node = node_id;
        }
      }
    }
  }
  topo.numa_nodes = std::max(1, nodes_seen);
  topo.from_sysfs = true;
  return topo;
}

CpuTopology DetectCpuTopology() {
#if defined(__linux__)
  return DetectCpuTopologyFrom("/sys/devices/system/cpu",
                               "/sys/devices/system/node");
#else
  return FallbackTopology();
#endif
}

std::vector<int32_t> BuildPinPlan(const CpuTopology& topo, int32_t num_workers) {
  if (num_workers <= 0 || topo.cpus.empty()) return {};

  // Preference order: all physical-core primaries (interleaved across
  // packages so sockets fill evenly), then SMT siblings the same way.
  auto interleave = [&](bool siblings) {
    std::map<int32_t, std::vector<int32_t>> per_package;  // package -> cpus
    for (const CpuInfo& info : topo.cpus) {
      if (info.smt_sibling == siblings) per_package[info.package].push_back(info.cpu);
    }
    std::vector<int32_t> out;
    for (size_t round = 0;; ++round) {
      bool any = false;
      for (auto& [pkg, cpus] : per_package) {
        (void)pkg;
        if (round < cpus.size()) {
          out.push_back(cpus[round]);
          any = true;
        }
      }
      if (!any) break;
    }
    return out;
  };
  std::vector<int32_t> order = interleave(/*siblings=*/false);
  std::vector<int32_t> second = interleave(/*siblings=*/true);
  order.insert(order.end(), second.begin(), second.end());

  std::vector<int32_t> plan(static_cast<size_t>(num_workers));
  for (int32_t i = 0; i < num_workers; ++i) {
    plan[i] = order[static_cast<size_t>(i) % order.size()];
  }
  return plan;
}

bool PinCurrentThreadToCpu(int32_t cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // pid 0 = the calling thread on Linux.
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool PinCurrentProcessToCpu(int32_t cpu) {
  // sched_setaffinity is per-thread on Linux; calling it while the process
  // is still single-threaded (right after fork, before the shard server
  // spawns its exchange thread) makes every future thread inherit the mask,
  // which is how one call covers the whole child.
  return PinCurrentThreadToCpu(cpu);
}

ContextSwitchCounts ThreadContextSwitches() {
  ContextSwitchCounts out;
#if defined(__linux__) && defined(RUSAGE_THREAD)
  struct rusage usage;
  if (getrusage(RUSAGE_THREAD, &usage) == 0) {
    out.voluntary = static_cast<uint64_t>(usage.ru_nvcsw);
    out.involuntary = static_cast<uint64_t>(usage.ru_nivcsw);
  }
#endif
  return out;
}

ContextSwitchCounts ProcessContextSwitches() {
  ContextSwitchCounts out;
#if defined(__linux__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    out.voluntary = static_cast<uint64_t>(usage.ru_nvcsw);
    out.involuntary = static_cast<uint64_t>(usage.ru_nivcsw);
  }
#endif
  return out;
}

std::string TopologyFingerprintJson() {
  CpuTopology topo = DetectCpuTopology();
  std::ostringstream out;
  out << "{\"cpus\":" << topo.logical_cpus()
      << ",\"physical_cores\":" << topo.physical_cores
      << ",\"smt\":" << (topo.smt ? "true" : "false")
      << ",\"numa_nodes\":" << topo.numa_nodes << ",\"source\":\""
      << (topo.from_sysfs ? "sysfs" : "fallback") << "\"}";
  return out.str();
}

// ---- PerfCounters ----------------------------------------------------------

#if defined(__linux__)
namespace {
int OpenHardwareCounter(uint64_t config) {
  struct perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.inherit = 1;  // fold worker threads (joined before Stop) into the read
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
              /*group_fd=*/-1, /*flags=*/0));
}
}  // namespace

PerfCounters::PerfCounters() {
  cache_fd_ = OpenHardwareCounter(PERF_COUNT_HW_CACHE_MISSES);
  instr_fd_ = OpenHardwareCounter(PERF_COUNT_HW_INSTRUCTIONS);
  if (cache_fd_ < 0 || instr_fd_ < 0) {
    // All-or-nothing: a half-available pair would make the report's
    // miss-per-instruction ratio meaningless.
    if (cache_fd_ >= 0) close(cache_fd_);
    if (instr_fd_ >= 0) close(instr_fd_);
    cache_fd_ = instr_fd_ = -1;
  }
}

PerfCounters::~PerfCounters() {
  if (cache_fd_ >= 0) close(cache_fd_);
  if (instr_fd_ >= 0) close(instr_fd_);
}

void PerfCounters::Start() {
  if (!available()) return;
  ioctl(cache_fd_, PERF_EVENT_IOC_RESET, 0);
  ioctl(instr_fd_, PERF_EVENT_IOC_RESET, 0);
  ioctl(cache_fd_, PERF_EVENT_IOC_ENABLE, 0);
  ioctl(instr_fd_, PERF_EVENT_IOC_ENABLE, 0);
}

void PerfCounters::Stop() {
  if (!available()) return;
  ioctl(cache_fd_, PERF_EVENT_IOC_DISABLE, 0);
  ioctl(instr_fd_, PERF_EVENT_IOC_DISABLE, 0);
  uint64_t value = 0;
  if (read(cache_fd_, &value, sizeof(value)) == sizeof(value)) {
    cache_misses_ = value;
  }
  if (read(instr_fd_, &value, sizeof(value)) == sizeof(value)) {
    instructions_ = value;
  }
}
#else
PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::Start() {}
void PerfCounters::Stop() {}
#endif

}  // namespace jecb
