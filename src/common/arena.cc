#include "common/arena.h"

#include <algorithm>
#include <cstring>

namespace jecb {

Arena::Arena(size_t block_bytes)
    : block_bytes_(std::max<size_t>(block_bytes, 64)) {}

Arena::Block& Arena::GrowFor(size_t bytes) {
  // After Reset, already-reserved blocks are reused before growing. A block
  // that cannot fit the request (oversized allocation) is skipped, not
  // split: returned memory must be contiguous.
  while (active_ + 1 < blocks_.size()) {
    Block& next = blocks_[++active_];
    if (next.size - next.used >= bytes) return next;
  }
  Block block;
  block.size = std::max(block_bytes_, bytes);
  block.data = std::make_unique<char[]>(block.size);
  reserved_ += block.size;
  blocks_.push_back(std::move(block));
  active_ = blocks_.size() - 1;
  return blocks_.back();
}

char* Arena::Allocate(size_t bytes, size_t align) {
  if (align == 0) align = 1;
  if (blocks_.empty()) GrowFor(std::max(bytes, size_t{1}));
  Block* block = &blocks_[active_];
  size_t aligned = (block->used + align - 1) & ~(align - 1);
  if (aligned + bytes > block->size) {
    block = &GrowFor(bytes + align);
    aligned = (block->used + align - 1) & ~(align - 1);
  }
  char* out = block->data.get() + aligned;
  block->used = aligned + bytes;
  allocated_ += bytes;
  return out;
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) return std::string_view();
  char* dst = Allocate(s.size(), /*align=*/1);
  std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

void Arena::Reset() {
  for (Block& block : blocks_) block.used = 0;
  allocated_ = 0;
  active_ = 0;
}

}  // namespace jecb
