// Fixed-size thread pool for the partitioning pipeline's embarrassingly
// parallel loops (per-class Phase 2, chunked trace evaluation, candidate
// scoring). Deliberately work-stealing-free: a single mutex-protected FIFO
// keeps task startup order deterministic and the implementation small enough
// to audit under TSan. Determinism of *results* never depends on the pool —
// callers write into preallocated per-index slots and reduce in index order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace jecb {

class ThreadPool {
 public:
  /// `num_threads` <= 0 means std::thread::hardware_concurrency(). A pool of
  /// one worker still runs tasks on that worker; callers wanting the exact
  /// legacy single-threaded path should not construct a pool at all (see
  /// ParallelFor, which runs inline when handed a null pool).
  explicit ThreadPool(int32_t num_threads = 0);

  /// Drains nothing: joins after finishing every submitted task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int32_t num_threads() const { return static_cast<int32_t>(workers_.size()); }

  /// Enqueues one task; the future resolves when it finishes. Tasks must not
  /// throw (the pipeline reports errors through Result/Status values).
  std::future<void> Submit(std::function<void()> fn);

  /// Resolves a thread-count option: <= 0 becomes hardware_concurrency()
  /// (at least 1).
  static int32_t ResolveThreads(int32_t requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, n). With a null pool or a single worker the
/// loop runs inline on the calling thread — byte-for-byte the legacy serial
/// path, no synchronization. Otherwise indices are submitted to the pool and
/// the call blocks until all complete. `fn` must handle its own index slot;
/// the helper imposes no ordering between indices.
///
/// `label` (a string literal or interned name) turns on tracing for this
/// loop when the TraceRecorder is enabled: one ("pool", label) span covers
/// the whole fan-out/join, and each index gets a ("pool.task", label) span
/// on the worker that ran it. Null label = never traced.
void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn,
                 const char* label = nullptr);

}  // namespace jecb
