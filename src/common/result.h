// Result<T>: value-or-Status, the companion of Status for functions that
// produce a value on success.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace jecb {

/// Holds either a value of type T or a non-OK Status.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the held value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Unwraps a Result into `lhs`, propagating errors to the caller.
#define JECB_ASSIGN_OR_RETURN(lhs, expr)           \
  auto JECB_CONCAT_(_res_, __LINE__) = (expr);     \
  if (!JECB_CONCAT_(_res_, __LINE__).ok())         \
    return JECB_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(JECB_CONCAT_(_res_, __LINE__)).value()

#define JECB_CONCAT_IMPL_(a, b) a##b
#define JECB_CONCAT_(a, b) JECB_CONCAT_IMPL_(a, b)

}  // namespace jecb
