// Hashing utilities shared by indexes, mapping functions and graph code.
#pragma once

#include <cstdint>
#include <string_view>

namespace jecb {

/// 64-bit FNV-1a over raw bytes; stable across platforms and runs, which
/// matters because hash mapping functions must be deterministic for tests.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// Finalizer from MurmurHash3: spreads low-entropy integer keys.
inline uint64_t HashInt64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace jecb
