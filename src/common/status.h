// Status: lightweight error propagation without exceptions, in the style of
// Apache Arrow / RocksDB. Fallible public APIs return Status or Result<T>.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace jecb {

/// Coarse error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kOutOfRange,
  kUnsupported,
  kInternal,
};

/// Returns a short human-readable name for a StatusCode ("ParseError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus a context message.
///
/// The OK status carries no allocation; error statuses carry a message that
/// should describe the failure with enough context to act on it.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define JECB_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::jecb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace jecb
