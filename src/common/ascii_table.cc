#include "common/ascii_table.h"

#include <algorithm>

namespace jecb {

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      line += " " + cell + " |";
    }
    return line + "\n";
  };

  std::string rule = "+";
  for (size_t w : widths) rule += std::string(w + 2, '-') + "+";
  rule += "\n";

  std::string out = rule + render_row(header_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

}  // namespace jecb
