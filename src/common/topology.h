// CPU topology map + thread pinning + hardware counters: the substrate the
// topology-aware runtime (RuntimeOptions::pin_threads) stands on.
//
// Detection reads the Linux sysfs tree (/sys/devices/system/cpu,
// /sys/devices/system/node) into a logical-cpu -> {core, package, NUMA node,
// SMT sibling} map. Containers and CI runners frequently hide sysfs; every
// entry point degrades gracefully to a flat fallback topology derived from
// hardware_concurrency(), flagged via CpuTopology::from_sysfs so reports can
// say which one they measured on. Parsing is exposed with injectable roots
// so tests can golden-test against a fake sysfs tree without root.
//
// Pinning and counters are performance-only by contract: nothing here may
// influence transaction outcomes, so ReplayReport::OutcomeSignature() is
// identical with pinning on or off (tests/load_gen_test.cc asserts this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jecb {

/// One logical CPU and where it lives in the machine.
struct CpuInfo {
  int32_t cpu = -1;      ///< logical cpu index (the sched_setaffinity id)
  int32_t core = -1;     ///< physical core id within its package
  int32_t package = 0;   ///< socket id
  int32_t node = 0;      ///< NUMA node
  /// True when another logical cpu with a lower id shares this physical
  /// core — i.e. this is an SMT sibling, not the core's primary thread.
  bool smt_sibling = false;
};

/// The machine's core/SMT/NUMA map, or the flat fallback when sysfs is
/// unavailable (from_sysfs == false: every logical cpu is its own core on
/// node 0).
struct CpuTopology {
  std::vector<CpuInfo> cpus;  ///< sorted by logical cpu id
  int32_t physical_cores = 0;
  int32_t packages = 1;
  int32_t numa_nodes = 1;
  bool smt = false;        ///< any core exposes more than one logical cpu
  bool from_sysfs = false; ///< false = hardware_concurrency() fallback

  int32_t logical_cpus() const { return static_cast<int32_t>(cpus.size()); }
};

/// Reads the live machine topology (sysfs, with fallback). Cheap enough to
/// call per replay; does not cache.
CpuTopology DetectCpuTopology();

/// Detection with injectable sysfs roots (normally
/// "/sys/devices/system/cpu" and "/sys/devices/system/node") so tests can
/// point at a fabricated tree. Missing/garbled roots yield the fallback.
CpuTopology DetectCpuTopologyFrom(const std::string& cpu_root,
                                  const std::string& node_root);

/// Parses the kernel's cpulist format ("0-3,8,10-11") into a sorted list of
/// logical cpu ids. Malformed input yields an empty list.
std::vector<int32_t> ParseCpuList(std::string_view text);

/// Deterministic worker -> logical-cpu assignment: spread across distinct
/// physical cores first (alternating packages so sockets fill evenly), and
/// only start reusing SMT siblings once every physical core has one worker.
/// More workers than logical cpus wraps around. Never empty as long as
/// num_workers > 0 (the fallback topology still has >= 1 cpu).
std::vector<int32_t> BuildPinPlan(const CpuTopology& topo, int32_t num_workers);

/// Pins the calling thread / the whole calling process (all its threads,
/// present and future) to one logical cpu. Returns false when the platform
/// lacks sched_setaffinity or the kernel refuses (restricted cpuset) — the
/// caller keeps running unpinned; pinning is best-effort by design.
bool PinCurrentThreadToCpu(int32_t cpu);
bool PinCurrentProcessToCpu(int32_t cpu);

/// getrusage-based context-switch counts. Thread scope needs RUSAGE_THREAD
/// (Linux); elsewhere both return zeros.
struct ContextSwitchCounts {
  uint64_t voluntary = 0;
  uint64_t involuntary = 0;
};
ContextSwitchCounts ThreadContextSwitches();
ContextSwitchCounts ProcessContextSwitches();

/// One-line machine fingerprint for bench output, e.g.
/// {"cpus":8,"physical_cores":4,"smt":true,"numa_nodes":1,"source":"sysfs"}.
/// bench_util.h stamps this into every BENCH_*.json so cross-machine
/// baseline drift is explainable.
std::string TopologyFingerprintJson();

/// Whole-process cache-miss / instruction counters via perf_event_open.
/// Runtime-detected: unprivileged containers and non-Linux builds simply
/// report available() == false and zero readings, so CI output stays
/// deterministic regardless of perf permissions.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  bool available() const { return cache_fd_ >= 0 && instr_fd_ >= 0; }

  /// Resets and enables the counters (no-op when unavailable).
  void Start();
  /// Disables the counters and latches the readings (zeros when unavailable).
  void Stop();

  uint64_t cache_misses() const { return cache_misses_; }
  uint64_t instructions() const { return instructions_; }

 private:
  int cache_fd_ = -1;
  int instr_fd_ = -1;
  uint64_t cache_misses_ = 0;
  uint64_t instructions_ = 0;
};

}  // namespace jecb
