#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace jecb {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace jecb
