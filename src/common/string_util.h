// Small string helpers used by the SQL lexer and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace jecb {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// ASCII upper-case copy.
std::string ToUpper(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// Case-insensitive equality for SQL keywords and identifiers.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits = 2);

}  // namespace jecb
