// Horticulture baseline (Pavlo et al., SIGMOD 2012): schema-driven
// generate-and-test search. Each table's candidates are its own columns
// (hash partitioning) or replication; a large-neighborhood search relaxes a
// few tables at a time and re-optimizes them against a skew-aware cost
// model (distributed-transaction fraction, partitions touched, and load
// skew), evaluated on the training trace.
#pragma once

#include <cstdint>
#include <string>

#include "partition/evaluator.h"
#include "partition/solution.h"
#include "trace/trace.h"

namespace jecb {

struct HorticultureOptions {
  int32_t num_partitions = 8;
  /// Worker threads for scoring the LNS neighborhood (each relaxed table's
  /// per-column trials are independent given the current design). 0 =
  /// hardware_concurrency(); 1 = the exact legacy serial path. The search
  /// trajectory is bit-identical at every thread count.
  int32_t num_threads = 0;
  ClassifyOptions classify;
  /// LNS iterations (each relaxes `relax_tables` tables).
  int rounds = 40;
  int relax_tables = 2;
  /// Cost = dist_fraction * (1 + touch_weight * avg_extra_partitions)
  ///        * (1 + skew_weight * load_skew)   — the shape of Horticulture's
  /// cost model: distributed count, partitions touched, temporal skew.
  double touch_weight = 0.25;
  double skew_weight = 0.5;
  /// Evaluate candidates on at most this many training transactions.
  size_t sample_txns = 20000;
  uint64_t seed = 17;
  /// Score LNS trials incrementally (delta_evaluator.h): the incumbent
  /// design is kept fully evaluated and each trial — which differs in one
  /// table — rescans only that table's affected transactions. EvalResults
  /// are bit-identical to full evaluation, so the search trajectory (every
  /// accept/reject and the final design) never changes.
  bool delta = true;
  /// Partition-scan kernel for trial scoring (partition_scan.h; every
  /// kernel is bit-identical to kScalar).
  ScanKernel scan_kernel = ScanKernel::kAuto;
  /// Re-proves delta == full on every trial (aborts on divergence). For
  /// tests; defeats the speedup.
  bool delta_self_check = false;
};

struct HorticultureResult {
  DatabaseSolution solution;
  double train_cost = 0.0;      // plain distributed fraction on the sample
  double model_cost = 0.0;      // skew-aware cost the search optimized
  int evaluations = 0;
  double elapsed_seconds = 0.0;
};

class Horticulture {
 public:
  explicit Horticulture(HorticultureOptions options = {})
      : options_(std::move(options)) {}

  /// Partitions from schema + trace (no SQL). Mutates `db`'s schema with the
  /// replication classification.
  Result<HorticultureResult> Partition(Database* db, const Trace& training) const;

 private:
  HorticultureOptions options_;
};

}  // namespace jecb
