#include "horticulture/horticulture.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <random>

#include "common/thread_pool.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"

namespace jecb {

namespace {

/// A design point: per-table choice of partitioning column (or -1 for
/// replication).
using Design = std::vector<int32_t>;

}  // namespace

Result<HorticultureResult> Horticulture::Partition(Database* db,
                                                   const Trace& training) const {
  auto start = std::chrono::steady_clock::now();

  std::vector<AccessClass> classes =
      ClassifyTables(db->schema(), training, options_.classify);
  ApplyClassification(&db->mutable_schema(), classes);
  const Schema& schema = db->schema();

  Trace sample = training.Head(options_.sample_txns);

  std::vector<TableId> partitioned;
  for (const Table& t : schema.tables()) {
    if (t.access_class == AccessClass::kPartitioned) partitioned.push_back(t.id);
  }

  // Access frequency per column (from WHERE-less trace evidence we only have
  // tuple accesses, so the heuristic initial design partitions each table by
  // the first primary-key column — Horticulture's most common outcome).
  Design design(schema.num_tables(), -1);
  for (TableId t : partitioned) {
    const Table& meta = schema.table(t);
    design[t] = meta.primary_key.empty() ? 0 : meta.primary_key[0];
  }

  auto mapping = std::make_shared<HashMapping>(options_.num_partitions);
  auto replicated = std::make_shared<ReplicatedTable>();

  auto materialize = [&](const Design& d) {
    DatabaseSolution sol(options_.num_partitions, schema.num_tables());
    for (size_t t = 0; t < schema.num_tables(); ++t) {
      auto tid = static_cast<TableId>(t);
      if (schema.table(tid).access_class != AccessClass::kPartitioned || d[t] < 0) {
        sol.Set(tid, replicated);
        continue;
      }
      JoinPath path;
      path.source_table = tid;
      path.dest = ColumnRef{tid, static_cast<ColumnIdx>(d[t])};
      sol.Set(tid, std::make_shared<JoinPathPartitioner>(path, mapping));
    }
    return sol;
  };

  HorticultureResult result{DatabaseSolution(options_.num_partitions, 0), 0, 0, 0, 0};

  auto model_cost = [&](const EvalResult& ev) {
    double dist = ev.cost();
    double avg_extra =
        ev.distributed_txns == 0
            ? 0.0
            : static_cast<double>(ev.partitions_touched) /
                      static_cast<double>(ev.distributed_txns) -
                  1.0;
    return dist * (1.0 + options_.touch_weight * avg_extra) *
           (1.0 + options_.skew_weight * ev.LoadSkew());
  };

  auto evaluate = [&](const Design& d, double* plain) {
    DatabaseSolution sol = materialize(d);
    EvalResult ev = Evaluate(*db, sol, sample);
    ++result.evaluations;
    if (plain != nullptr) *plain = ev.cost();
    return model_cost(ev);
  };

  double best_plain = 0.0;
  double best_cost = evaluate(design, &best_plain);

  std::unique_ptr<ThreadPool> pool;
  if (ThreadPool::ResolveThreads(options_.num_threads) > 1) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }

  std::mt19937_64 rng(options_.seed);
  for (int round = 0; round < options_.rounds; ++round) {
    if (partitioned.empty()) break;
    // One large-neighborhood-search round: relax, re-optimize, maybe accept.
    JECB_SPAN2("horticulture", "lns.round", "round", round, "relaxed",
               options_.relax_tables);
    // Relax a few tables and exhaustively re-optimize them one at a time
    // (coordinate descent within the relaxed neighborhood).
    std::vector<TableId> relaxed;
    for (int i = 0; i < options_.relax_tables; ++i) {
      relaxed.push_back(partitioned[rng() % partitioned.size()]);
    }
    Design current = design;
    double current_cost = best_cost;
    double current_plain = best_plain;
    for (TableId t : relaxed) {
      const Table& meta = schema.table(t);
      // Score the whole neighborhood of table t concurrently: every trial
      // differs from `current` only at t, so the evaluations are
      // independent. The reduction walks trials in column order with the
      // serial loop's strict-improvement rule, so the chosen column (and
      // therefore the search trajectory) matches the serial path exactly.
      std::vector<int32_t> trial_cols;
      for (int32_t c = -1; c < static_cast<int32_t>(meta.columns.size()); ++c) {
        if (c != current[t]) trial_cols.push_back(c);
      }
      std::vector<double> trial_cost(trial_cols.size(), 0.0);
      std::vector<double> trial_plain(trial_cols.size(), 0.0);
      ParallelFor(
          pool.get(), trial_cols.size(),
          [&](size_t i) {
            Design trial = current;
            trial[t] = trial_cols[i];
            DatabaseSolution sol = materialize(trial);
            EvalResult ev = Evaluate(*db, sol, sample);
            trial_plain[i] = ev.cost();
            trial_cost[i] = model_cost(ev);
          },
          "horticulture.trials");
      result.evaluations += static_cast<int>(trial_cols.size());
      int32_t best_choice = current[t];
      for (size_t i = 0; i < trial_cols.size(); ++i) {
        if (trial_cost[i] < current_cost) {
          current_cost = trial_cost[i];
          current_plain = trial_plain[i];
          best_choice = trial_cols[i];
        }
      }
      current[t] = best_choice;
    }
    if (current_cost < best_cost) {
      best_cost = current_cost;
      best_plain = current_plain;
      design = current;
    }
  }

  result.solution = materialize(design);
  result.train_cost = best_plain;
  result.model_cost = best_cost;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  MetricsRegistry::Default().AddCounter("horticulture_evaluations_total",
                                        static_cast<uint64_t>(result.evaluations));
  MetricsRegistry::Default().SetGauge("horticulture_partition_seconds",
                                      result.elapsed_seconds);
  return result;
}

}  // namespace jecb
