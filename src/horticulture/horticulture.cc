#include "horticulture/horticulture.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <optional>
#include <random>

#include "common/thread_pool.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "partition/delta_evaluator.h"
#include "trace/flat_trace.h"

namespace jecb {

namespace {

/// A design point: per-table choice of partitioning column (or -1 for
/// replication).
using Design = std::vector<int32_t>;

}  // namespace

Result<HorticultureResult> Horticulture::Partition(Database* db,
                                                   const Trace& training) const {
  auto start = std::chrono::steady_clock::now();

  std::vector<AccessClass> classes =
      ClassifyTables(db->schema(), training, options_.classify);
  ApplyClassification(&db->mutable_schema(), classes);
  const Schema& schema = db->schema();

  Trace sample = training.Head(options_.sample_txns);

  std::vector<TableId> partitioned;
  for (const Table& t : schema.tables()) {
    if (t.access_class == AccessClass::kPartitioned) partitioned.push_back(t.id);
  }

  // Access frequency per column (from WHERE-less trace evidence we only have
  // tuple accesses, so the heuristic initial design partitions each table by
  // the first primary-key column — Horticulture's most common outcome).
  Design design(schema.num_tables(), -1);
  for (TableId t : partitioned) {
    const Table& meta = schema.table(t);
    design[t] = meta.primary_key.empty() ? 0 : meta.primary_key[0];
  }

  auto mapping = std::make_shared<HashMapping>(options_.num_partitions);
  auto replicated = std::make_shared<ReplicatedTable>();

  // One partitioner per (table, column), shared by every design that picks
  // it: the per-tuple memo inside JoinPathPartitioner warms across the whole
  // search instead of restarting cold on every trial, and identical designs
  // materialize to pointer-identical solutions (which is what lets the delta
  // evaluator's DiffTables see "unchanged" as a pointer comparison).
  // PartitionOf is a pure function of the tuple, so sharing cannot change
  // any EvalResult.
  std::vector<std::vector<std::shared_ptr<const TablePartitioner>>> col_parts(
      schema.num_tables());
  for (TableId t : partitioned) {
    const Table& meta = schema.table(t);
    col_parts[t].resize(meta.columns.size());
    for (size_t c = 0; c < meta.columns.size(); ++c) {
      JoinPath path;
      path.source_table = t;
      path.dest = ColumnRef{t, static_cast<ColumnIdx>(c)};
      col_parts[t][c] = std::make_shared<JoinPathPartitioner>(path, mapping);
    }
  }

  auto materialize = [&](const Design& d) {
    DatabaseSolution sol(options_.num_partitions, schema.num_tables());
    for (size_t t = 0; t < schema.num_tables(); ++t) {
      auto tid = static_cast<TableId>(t);
      if (schema.table(tid).access_class != AccessClass::kPartitioned || d[t] < 0) {
        sol.Set(tid, replicated);
        continue;
      }
      sol.Set(tid, col_parts[tid][d[t]]);
    }
    return sol;
  };

  HorticultureResult result{DatabaseSolution(options_.num_partitions, 0), 0, 0, 0, 0};

  auto model_cost = [&](const EvalResult& ev) {
    double dist = ev.cost();
    double avg_extra =
        ev.distributed_txns == 0
            ? 0.0
            : static_cast<double>(ev.partitions_touched) /
                      static_cast<double>(ev.distributed_txns) -
                  1.0;
    return dist * (1.0 + options_.touch_weight * avg_extra) *
           (1.0 + options_.skew_weight * ev.LoadSkew());
  };

  std::unique_ptr<ThreadPool> pool;
  if (ThreadPool::ResolveThreads(options_.num_threads) > 1) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }

  // Incremental scoring state: the incumbent design stays fully evaluated in
  // the delta evaluator; trials (one changed table) rescan only that table's
  // affected transactions. `base_design` tracks which design the evaluator
  // is rebased on so unchanged incumbents skip the re-evaluation entirely.
  std::optional<FlatTrace> flat;
  std::optional<DeltaEvaluator> delta_eval;
  Design base_design;
  if (options_.delta) {
    flat.emplace(FlatTrace::FromTrace(sample));
    delta_eval.emplace(db, &*flat, pool.get(), options_.scan_kernel);
    delta_eval->set_self_check(options_.delta_self_check);
  }

  double best_plain = 0.0;
  double best_cost = 0.0;
  {
    EvalResult ev;
    if (delta_eval.has_value()) {
      ev = delta_eval->Rebase(materialize(design));
      base_design = design;
    } else {
      ev = Evaluate(*db, materialize(design), sample);
    }
    ++result.evaluations;
    best_plain = ev.cost();
    best_cost = model_cost(ev);
  }

  std::mt19937_64 rng(options_.seed);
  for (int round = 0; round < options_.rounds; ++round) {
    if (partitioned.empty()) break;
    // One large-neighborhood-search round: relax, re-optimize, maybe accept.
    JECB_SPAN2("horticulture", "lns.round", "round", round, "relaxed",
               options_.relax_tables);
    // Relax a few tables and exhaustively re-optimize them one at a time
    // (coordinate descent within the relaxed neighborhood).
    std::vector<TableId> relaxed;
    for (int i = 0; i < options_.relax_tables; ++i) {
      relaxed.push_back(partitioned[rng() % partitioned.size()]);
    }
    Design current = design;
    double current_cost = best_cost;
    double current_plain = best_plain;
    for (TableId t : relaxed) {
      const Table& meta = schema.table(t);
      // Score the whole neighborhood of table t concurrently: every trial
      // differs from `current` only at t, so the evaluations are
      // independent. The reduction walks trials in column order with the
      // serial loop's strict-improvement rule, so the chosen column (and
      // therefore the search trajectory) matches the serial path exactly.
      std::vector<int32_t> trial_cols;
      for (int32_t c = -1; c < static_cast<int32_t>(meta.columns.size()); ++c) {
        if (c != current[t]) trial_cols.push_back(c);
      }
      std::vector<double> trial_cost(trial_cols.size(), 0.0);
      std::vector<double> trial_plain(trial_cols.size(), 0.0);
      if (delta_eval.has_value() && current != base_design) {
        delta_eval->Rebase(materialize(current));
        base_design = current;
      }
      ParallelFor(
          pool.get(), trial_cols.size(),
          [&](size_t i) {
            Design trial = current;
            trial[t] = trial_cols[i];
            DatabaseSolution sol = materialize(trial);
            EvalResult ev;
            if (delta_eval.has_value()) {
              const std::array<TableId, 1> changed = {t};
              ev = delta_eval->EvaluateCandidate(sol, changed);
            } else {
              ev = Evaluate(*db, sol, sample);
            }
            trial_plain[i] = ev.cost();
            trial_cost[i] = model_cost(ev);
          },
          "horticulture.trials");
      result.evaluations += static_cast<int>(trial_cols.size());
      int32_t best_choice = current[t];
      for (size_t i = 0; i < trial_cols.size(); ++i) {
        if (trial_cost[i] < current_cost) {
          current_cost = trial_cost[i];
          current_plain = trial_plain[i];
          best_choice = trial_cols[i];
        }
      }
      current[t] = best_choice;
    }
    if (current_cost < best_cost) {
      best_cost = current_cost;
      best_plain = current_plain;
      design = current;
    }
  }

  result.solution = materialize(design);
  result.train_cost = best_plain;
  result.model_cost = best_cost;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  MetricsRegistry::Default().AddCounter("horticulture_evaluations_total",
                                        static_cast<uint64_t>(result.evaluations));
  MetricsRegistry::Default().SetGauge("horticulture_partition_seconds",
                                      result.elapsed_seconds);
  return result;
}

}  // namespace jecb
