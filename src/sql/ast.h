// Abstract syntax for the stored-procedure dialect.
//
// The dialect covers what OLTP stored procedures need for code-based
// analysis: SELECT (with JOIN..ON, WHERE conjunctions, aggregates, and
// `@var = column` output assignments), INSERT VALUES, UPDATE .. SET .. WHERE,
// and DELETE .. WHERE. OR-disjunctions and subqueries are out of scope.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace jecb::sql {

/// A possibly table-qualified column mention, unresolved against a schema.
struct ColumnName {
  std::string table;  // empty when unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

enum class ExprKind {
  kColumn,     // T.A or A
  kParameter,  // @x (procedure parameter or local variable)
  kLiteral,    // 42, 'abc'
  kAggregate,  // SUM(A), COUNT(*), ...
};

/// A scalar expression (flat: no nesting beyond aggregate-of-column).
struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  ColumnName column;        // kColumn / kAggregate argument (may be empty for COUNT(*))
  std::string parameter;    // kParameter: name without '@'
  std::string literal;      // kLiteral: raw text
  std::string agg_func;     // kAggregate: SUM/AVG/COUNT/MIN/MAX

  static Expr MakeColumn(ColumnName c) {
    Expr e;
    e.kind = ExprKind::kColumn;
    e.column = std::move(c);
    return e;
  }
  static Expr MakeParameter(std::string p) {
    Expr e;
    e.kind = ExprKind::kParameter;
    e.parameter = std::move(p);
    return e;
  }
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kIn };

/// One conjunct of a WHERE / ON clause. For kIn, `rhs_list` holds the
/// alternatives; IN over a parameter list implies *no* single-value binding.
struct Predicate {
  Expr lhs;
  CompareOp op = CompareOp::kEq;
  Expr rhs;
  std::vector<Expr> rhs_list;  // kIn only
};

/// One item of a SELECT list: an output expression, optionally assigned to a
/// local variable (`@v = T.A`).
struct SelectItem {
  std::optional<std::string> assign_to;  // variable name without '@'
  Expr expr;
  bool star = false;  // SELECT *
};

enum class StatementKind { kSelect, kInsert, kUpdate, kDelete };

/// One table mention in FROM, with the ON conjuncts that attached it.
struct FromTable {
  std::string table;
  std::vector<Predicate> join_on;
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;

  // SELECT
  std::vector<SelectItem> select_items;
  std::vector<FromTable> from;         // also DELETE target / UPDATE target
  std::vector<Predicate> where;        // conjunction

  // INSERT
  std::string insert_table;
  std::vector<std::string> insert_columns;  // empty means "all, in order"
  std::vector<Expr> insert_values;

  // UPDATE
  std::string update_table;
  std::vector<std::pair<ColumnName, Expr>> set_items;
};

/// A parsed stored procedure: the transaction template of one class.
struct Procedure {
  std::string name;
  std::vector<std::string> parameters;  // names without '@'
  std::vector<Statement> statements;
  std::string source;  // original text, for diagnostics
};

}  // namespace jecb::sql
