#include <cctype>

#include "common/string_util.h"
#include "sql/token.h"

namespace jecb::sql {

bool Token::IsWord(std::string_view word) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, word);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < text.size() && IsIdentChar(text[j])) ++j;
      out.push_back({TokenType::kIdentifier, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (c == '@') {
      size_t j = i + 1;
      while (j < text.size() && IsIdentChar(text[j])) ++j;
      if (j == i + 1) {
        return Status::ParseError("lone '@' at line " + std::to_string(line));
      }
      out.push_back({TokenType::kParameter, std::string(text.substr(i + 1, j - i - 1)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[j])) || text[j] == '.')) {
        ++j;
      }
      out.push_back({TokenType::kNumber, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < text.size() && text[j] != '\'') ++j;
      if (j >= text.size()) {
        return Status::ParseError("unterminated string at line " + std::to_string(line));
      }
      out.push_back({TokenType::kString, std::string(text.substr(i + 1, j - i - 1)), line});
      i = j + 1;
      continue;
    }
    // Two-character operators first.
    if (i + 1 < text.size()) {
      std::string two(text.substr(i, 2));
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        out.push_back({TokenType::kSymbol, two, line});
        i += 2;
        continue;
      }
    }
    static constexpr std::string_view kSingles = "(),;=<>*{}.+";
    if (kSingles.find(c) != std::string_view::npos) {
      out.push_back({TokenType::kSymbol, std::string(1, c), line});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at line " + std::to_string(line));
  }
  out.push_back({TokenType::kEnd, "", line});
  return out;
}

}  // namespace jecb::sql
