// Recursive-descent parser for the stored-procedure dialect (see ast.h).
#pragma once

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace jecb::sql {

/// Parses one `PROCEDURE Name(@p, ...) { stmt; ... }` block.
Result<Procedure> ParseProcedure(std::string_view text);

/// Parses a sequence of procedure blocks (a workload's transaction code).
Result<std::vector<Procedure>> ParseProcedures(std::string_view text);

/// Parses a single standalone statement (no procedure wrapper); useful for
/// tests and ad-hoc analysis.
Result<Statement> ParseStatement(std::string_view text);

}  // namespace jecb::sql
