#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/token.h"

namespace jecb::sql {

namespace {

const char* const kAggregates[] = {"SUM", "AVG", "AVERAGE", "COUNT", "MIN", "MAX"};

bool IsAggregate(const Token& t) {
  for (const char* a : kAggregates) {
    if (t.IsWord(a)) return true;
  }
  return false;
}

/// Token cursor with convenience accessors; all Consume* methods report
/// parse errors with line numbers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().Is(TokenType::kEnd); }

  bool TryWord(std::string_view w) {
    if (Peek().IsWord(w)) {
      Next();
      return true;
    }
    return false;
  }
  bool TrySymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      Next();
      return true;
    }
    return false;
  }
  Status ExpectWord(std::string_view w) {
    if (TryWord(w)) return Status::OK();
    return Error("expected " + std::string(w));
  }
  Status ExpectSymbol(std::string_view s) {
    if (TrySymbol(s)) return Status::OK();
    return Error("expected '" + std::string(s) + "'");
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().Is(TokenType::kIdentifier)) return Next().text;
    return Error("expected identifier");
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(Peek().line) +
                              " (got '" + Peek().text + "')");
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(Cursor cur) : cur_(std::move(cur)) {}

  Result<Procedure> ParseProcedureBlock() {
    Procedure proc;
    JECB_RETURN_NOT_OK(cur_.ExpectWord("PROCEDURE"));
    JECB_ASSIGN_OR_RETURN(proc.name, cur_.ExpectIdentifier());
    JECB_RETURN_NOT_OK(cur_.ExpectSymbol("("));
    if (!cur_.Peek().IsSymbol(")")) {
      do {
        if (!cur_.Peek().Is(TokenType::kParameter)) {
          return cur_.Error("expected @parameter");
        }
        proc.parameters.push_back(cur_.Next().text);
        // Optional type annotation (e.g. "bigint") is skipped.
        if (cur_.Peek().Is(TokenType::kIdentifier)) cur_.Next();
      } while (cur_.TrySymbol(","));
    }
    JECB_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
    JECB_RETURN_NOT_OK(cur_.ExpectSymbol("{"));
    while (!cur_.Peek().IsSymbol("}")) {
      if (cur_.AtEnd()) return cur_.Error("unterminated procedure body");
      JECB_ASSIGN_OR_RETURN(Statement st, ParseOneStatement());
      proc.statements.push_back(std::move(st));
      while (cur_.TrySymbol(";")) {
      }
    }
    JECB_RETURN_NOT_OK(cur_.ExpectSymbol("}"));
    return proc;
  }

  Result<Statement> ParseOneStatement() {
    if (cur_.Peek().IsWord("SELECT")) return ParseSelect();
    if (cur_.Peek().IsWord("INSERT")) return ParseInsert();
    if (cur_.Peek().IsWord("UPDATE")) return ParseUpdate();
    if (cur_.Peek().IsWord("DELETE")) return ParseDelete();
    return cur_.Error("expected SELECT, INSERT, UPDATE or DELETE");
  }

  bool AtEnd() const { return cur_.AtEnd(); }
  bool AtProcedure() const { return cur_.Peek().IsWord("PROCEDURE"); }

 private:
  Result<ColumnName> ParseColumnName() {
    JECB_ASSIGN_OR_RETURN(std::string first, cur_.ExpectIdentifier());
    ColumnName cn;
    if (cur_.TrySymbol(".")) {
      cn.table = std::move(first);
      JECB_ASSIGN_OR_RETURN(cn.column, cur_.ExpectIdentifier());
    } else {
      cn.column = std::move(first);
    }
    return cn;
  }

  Result<Expr> ParseExpr() {
    const Token& t = cur_.Peek();
    if (t.Is(TokenType::kParameter)) {
      return Expr::MakeParameter(cur_.Next().text);
    }
    if (t.Is(TokenType::kNumber) || t.Is(TokenType::kString)) {
      Expr e;
      e.kind = ExprKind::kLiteral;
      e.literal = cur_.Next().text;
      return e;
    }
    if (t.Is(TokenType::kIdentifier)) {
      if (IsAggregate(t) && cur_.Peek(1).IsSymbol("(")) {
        Expr e;
        e.kind = ExprKind::kAggregate;
        e.agg_func = ToUpper(cur_.Next().text);
        JECB_RETURN_NOT_OK(cur_.ExpectSymbol("("));
        if (!cur_.TrySymbol("*")) {
          JECB_ASSIGN_OR_RETURN(e.column, ParseColumnName());
        }
        JECB_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
        return e;
      }
      JECB_ASSIGN_OR_RETURN(ColumnName cn, ParseColumnName());
      return Expr::MakeColumn(std::move(cn));
    }
    return cur_.Error("expected expression");
  }

  Result<CompareOp> ParseOp() {
    const Token& t = cur_.Peek();
    if (t.IsWord("IN")) {
      cur_.Next();
      return CompareOp::kIn;
    }
    if (!t.Is(TokenType::kSymbol)) return cur_.Error("expected comparison operator");
    CompareOp op;
    if (t.text == "=") {
      op = CompareOp::kEq;
    } else if (t.text == "!=" || t.text == "<>") {
      op = CompareOp::kNe;
    } else if (t.text == "<") {
      op = CompareOp::kLt;
    } else if (t.text == "<=") {
      op = CompareOp::kLe;
    } else if (t.text == ">") {
      op = CompareOp::kGt;
    } else if (t.text == ">=") {
      op = CompareOp::kGe;
    } else {
      return cur_.Error("expected comparison operator");
    }
    cur_.Next();
    return op;
  }

  Result<Predicate> ParsePredicate() {
    Predicate p;
    JECB_ASSIGN_OR_RETURN(p.lhs, ParseExpr());
    JECB_ASSIGN_OR_RETURN(p.op, ParseOp());
    if (p.op == CompareOp::kIn) {
      JECB_RETURN_NOT_OK(cur_.ExpectSymbol("("));
      do {
        JECB_ASSIGN_OR_RETURN(Expr e, ParseExpr());
        p.rhs_list.push_back(std::move(e));
      } while (cur_.TrySymbol(","));
      JECB_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
    } else {
      JECB_ASSIGN_OR_RETURN(p.rhs, ParseExpr());
    }
    return p;
  }

  Result<std::vector<Predicate>> ParsePredicateList() {
    std::vector<Predicate> preds;
    do {
      JECB_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
      preds.push_back(std::move(p));
    } while (cur_.TryWord("AND"));
    return preds;
  }

  Result<Statement> ParseSelect() {
    Statement st;
    st.kind = StatementKind::kSelect;
    JECB_RETURN_NOT_OK(cur_.ExpectWord("SELECT"));
    do {
      SelectItem item;
      if (cur_.TrySymbol("*")) {
        item.star = true;
      } else if (cur_.Peek().Is(TokenType::kParameter) && cur_.Peek(1).IsSymbol("=")) {
        item.assign_to = cur_.Next().text;
        cur_.Next();  // '='
        JECB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      } else {
        JECB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      st.select_items.push_back(std::move(item));
    } while (cur_.TrySymbol(","));

    JECB_RETURN_NOT_OK(cur_.ExpectWord("FROM"));
    JECB_ASSIGN_OR_RETURN(std::string table, cur_.ExpectIdentifier());
    st.from.push_back(FromTable{std::move(table), {}});
    while (cur_.TryWord("JOIN")) {
      FromTable ft;
      JECB_ASSIGN_OR_RETURN(ft.table, cur_.ExpectIdentifier());
      JECB_RETURN_NOT_OK(cur_.ExpectWord("ON"));
      JECB_ASSIGN_OR_RETURN(ft.join_on, ParsePredicateList());
      st.from.push_back(std::move(ft));
    }
    if (cur_.TryWord("WHERE")) {
      JECB_ASSIGN_OR_RETURN(st.where, ParsePredicateList());
    }
    // ORDER BY / GROUP BY clauses are accepted and ignored: they do not
    // affect which tuples are accessed.
    if (cur_.TryWord("ORDER") || cur_.TryWord("GROUP")) {
      JECB_RETURN_NOT_OK(cur_.ExpectWord("BY"));
      do {
        JECB_ASSIGN_OR_RETURN(ColumnName cn, ParseColumnName());
        (void)cn;
        if (cur_.TryWord("DESC") || cur_.TryWord("ASC")) {
        }
      } while (cur_.TrySymbol(","));
    }
    return st;
  }

  Result<Statement> ParseInsert() {
    Statement st;
    st.kind = StatementKind::kInsert;
    JECB_RETURN_NOT_OK(cur_.ExpectWord("INSERT"));
    JECB_RETURN_NOT_OK(cur_.ExpectWord("INTO"));
    JECB_ASSIGN_OR_RETURN(st.insert_table, cur_.ExpectIdentifier());
    if (cur_.TrySymbol("(")) {
      do {
        JECB_ASSIGN_OR_RETURN(std::string col, cur_.ExpectIdentifier());
        st.insert_columns.push_back(std::move(col));
      } while (cur_.TrySymbol(","));
      JECB_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
    }
    JECB_RETURN_NOT_OK(cur_.ExpectWord("VALUES"));
    JECB_RETURN_NOT_OK(cur_.ExpectSymbol("("));
    do {
      JECB_ASSIGN_OR_RETURN(Expr e, ParseExpr());
      st.insert_values.push_back(std::move(e));
    } while (cur_.TrySymbol(","));
    JECB_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
    return st;
  }

  Result<Statement> ParseUpdate() {
    Statement st;
    st.kind = StatementKind::kUpdate;
    JECB_RETURN_NOT_OK(cur_.ExpectWord("UPDATE"));
    JECB_ASSIGN_OR_RETURN(st.update_table, cur_.ExpectIdentifier());
    JECB_RETURN_NOT_OK(cur_.ExpectWord("SET"));
    do {
      JECB_ASSIGN_OR_RETURN(ColumnName cn, ParseColumnName());
      JECB_RETURN_NOT_OK(cur_.ExpectSymbol("="));
      JECB_ASSIGN_OR_RETURN(Expr e, ParseExpr());
      // "SET X = X + @delta" style arithmetic: swallow trailing +/- term.
      if (cur_.TrySymbol("+")) {
        JECB_ASSIGN_OR_RETURN(Expr rhs2, ParseExpr());
        (void)rhs2;
      }
      st.set_items.emplace_back(std::move(cn), std::move(e));
    } while (cur_.TrySymbol(","));
    if (cur_.TryWord("WHERE")) {
      JECB_ASSIGN_OR_RETURN(st.where, ParsePredicateList());
    }
    return st;
  }

  Result<Statement> ParseDelete() {
    Statement st;
    st.kind = StatementKind::kDelete;
    JECB_RETURN_NOT_OK(cur_.ExpectWord("DELETE"));
    JECB_RETURN_NOT_OK(cur_.ExpectWord("FROM"));
    JECB_ASSIGN_OR_RETURN(std::string table, cur_.ExpectIdentifier());
    st.from.push_back(FromTable{std::move(table), {}});
    if (cur_.TryWord("WHERE")) {
      JECB_ASSIGN_OR_RETURN(st.where, ParsePredicateList());
    }
    return st;
  }

  Cursor cur_;
};

}  // namespace

Result<Procedure> ParseProcedure(std::string_view text) {
  JECB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser{Cursor(std::move(tokens))};
  JECB_ASSIGN_OR_RETURN(Procedure proc, parser.ParseProcedureBlock());
  proc.source = std::string(text);
  return proc;
}

Result<std::vector<Procedure>> ParseProcedures(std::string_view text) {
  JECB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser{Cursor(std::move(tokens))};
  std::vector<Procedure> procs;
  while (!parser.AtEnd()) {
    JECB_ASSIGN_OR_RETURN(Procedure proc, parser.ParseProcedureBlock());
    procs.push_back(std::move(proc));
  }
  return procs;
}

Result<Statement> ParseStatement(std::string_view text) {
  JECB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser{Cursor(std::move(tokens))};
  return parser.ParseOneStatement();
}

}  // namespace jecb::sql
