// Code analysis of stored procedures (paper Sec. 5.1): which tables a
// transaction class touches, which attributes are candidates for
// partitioning, and which attribute pairs are joined — explicitly through
// ON/WHERE column=column conjuncts, or implicitly through the dataflow of
// procedure parameters and local variables across statements.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "sql/ast.h"

namespace jecb::sql {

/// Result of analyzing one procedure against a schema.
struct ProcedureInfo {
  std::string name;
  std::vector<std::string> parameters;

  std::set<TableId> tables_read;
  std::set<TableId> tables_written;

  /// Attributes in WHERE/ON clauses — the paper's candidate attributes.
  std::set<ColumnRef> where_attrs;
  /// Attributes in SELECT lists — used to discover implicit joins.
  std::set<ColumnRef> select_attrs;
  /// Attributes bound by INSERT value lists.
  std::set<ColumnRef> insert_attrs;

  /// Deduplicated attribute pairs known (or presumed, pending trace
  /// validation) to be equal within every transaction of the class.
  std::vector<std::pair<ColumnRef, ColumnRef>> equijoins;

  /// Parameters carrying a *set* of values (IN-lists): equality through them
  /// is not single-valued and must not produce equijoins.
  std::set<std::string> multi_valued_params;

  /// For each declared (single-valued) procedure parameter: the attributes
  /// it is bound to by equality. Used for runtime routing (paper Sec. 3).
  std::map<std::string, std::vector<ColumnRef>> param_bindings;

  std::set<TableId> AllTables() const {
    std::set<TableId> all = tables_read;
    all.insert(tables_written.begin(), tables_written.end());
    return all;
  }
};

/// Analysis knobs; `use_select_clause_attrs` corresponds to the paper's
/// implicit-join discovery and is exposed for the ablation bench.
struct AnalyzerOptions {
  bool use_select_clause_attrs = true;
};

/// Analyzes one parsed procedure against `schema`. Fails when a column
/// mention cannot be resolved or is ambiguous.
Result<ProcedureInfo> AnalyzeProcedure(const Schema& schema, const Procedure& proc,
                                       const AnalyzerOptions& options = {});

}  // namespace jecb::sql
