#include "sql/analyzer.h"

#include <algorithm>
#include <map>

namespace jecb::sql {

namespace {

/// Resolves a column mention: qualified names directly, unqualified names
/// first against the statement's scope tables, then the whole schema.
Result<ColumnRef> Resolve(const Schema& schema, const ColumnName& cn,
                          const std::vector<TableId>& scope) {
  if (!cn.table.empty()) {
    JECB_ASSIGN_OR_RETURN(TableId tid, schema.FindTable(cn.table));
    JECB_ASSIGN_OR_RETURN(ColumnIdx cid, schema.table(tid).FindColumn(cn.column));
    return ColumnRef{tid, cid};
  }
  auto search = [&](const auto& table_ids) -> Result<ColumnRef> {
    ColumnRef found{};
    int hits = 0;
    for (TableId tid : table_ids) {
      auto cid = schema.table(tid).FindColumn(cn.column);
      if (cid.ok()) {
        found = ColumnRef{tid, cid.value()};
        ++hits;
      }
    }
    if (hits == 1) return found;
    if (hits > 1) {
      return Status::InvalidArgument("ambiguous column " + cn.column);
    }
    return Status::NotFound("column " + cn.column);
  };
  auto in_scope = search(scope);
  if (in_scope.ok()) return in_scope;
  if (in_scope.status().code() == StatusCode::kInvalidArgument) return in_scope;
  std::vector<TableId> all;
  for (size_t i = 0; i < schema.num_tables(); ++i) all.push_back(static_cast<TableId>(i));
  return search(all);
}

class Analysis {
 public:
  Analysis(const Schema& schema, const Procedure& proc, const AnalyzerOptions& options)
      : schema_(schema), proc_(proc), options_(options) {}

  Result<ProcedureInfo> Run() {
    info_.name = proc_.name;
    info_.parameters = proc_.parameters;
    for (const Statement& st : proc_.statements) {
      JECB_RETURN_NOT_OK(AnalyzeStatement(st));
    }
    EmitBindingJoins();
    Dedup();
    return std::move(info_);
  }

 private:
  Status AnalyzeStatement(const Statement& st) {
    std::vector<TableId> scope;
    switch (st.kind) {
      case StatementKind::kSelect:
      case StatementKind::kDelete: {
        for (const FromTable& ft : st.from) {
          JECB_ASSIGN_OR_RETURN(TableId tid, schema_.FindTable(ft.table));
          scope.push_back(tid);
          if (st.kind == StatementKind::kSelect) {
            info_.tables_read.insert(tid);
          } else {
            info_.tables_written.insert(tid);
          }
        }
        for (const FromTable& ft : st.from) {
          for (const Predicate& p : ft.join_on) {
            JECB_RETURN_NOT_OK(AnalyzePredicate(p, scope));
          }
        }
        for (const Predicate& p : st.where) {
          JECB_RETURN_NOT_OK(AnalyzePredicate(p, scope));
        }
        for (const SelectItem& item : st.select_items) {
          JECB_RETURN_NOT_OK(AnalyzeSelectItem(item, scope));
        }
        return Status::OK();
      }
      case StatementKind::kInsert: {
        JECB_ASSIGN_OR_RETURN(TableId tid, schema_.FindTable(st.insert_table));
        scope.push_back(tid);
        info_.tables_written.insert(tid);
        const Table& t = schema_.table(tid);
        std::vector<ColumnIdx> cols;
        if (st.insert_columns.empty()) {
          if (st.insert_values.size() != t.columns.size()) {
            return Status::InvalidArgument("INSERT arity mismatch for " + t.name);
          }
          for (size_t i = 0; i < t.columns.size(); ++i) {
            cols.push_back(static_cast<ColumnIdx>(i));
          }
        } else {
          if (st.insert_values.size() != st.insert_columns.size()) {
            return Status::InvalidArgument("INSERT arity mismatch for " + t.name);
          }
          for (const std::string& c : st.insert_columns) {
            JECB_ASSIGN_OR_RETURN(ColumnIdx cid, t.FindColumn(c));
            cols.push_back(cid);
          }
        }
        for (size_t i = 0; i < cols.size(); ++i) {
          ColumnRef ref{tid, cols[i]};
          info_.insert_attrs.insert(ref);
          const Expr& e = st.insert_values[i];
          if (e.kind == ExprKind::kParameter) Bind(e.parameter, ref);
        }
        return Status::OK();
      }
      case StatementKind::kUpdate: {
        JECB_ASSIGN_OR_RETURN(TableId tid, schema_.FindTable(st.update_table));
        scope.push_back(tid);
        info_.tables_written.insert(tid);
        for (const Predicate& p : st.where) {
          JECB_RETURN_NOT_OK(AnalyzePredicate(p, scope));
        }
        // SET expressions intentionally do not feed the dataflow: a SET
        // changes the stored value, it does not witness equality.
        return Status::OK();
      }
    }
    return Status::Internal("unreachable statement kind");
  }

  Status AnalyzeSelectItem(const SelectItem& item, const std::vector<TableId>& scope) {
    if (item.star) return Status::OK();
    const Expr& e = item.expr;
    ColumnRef ref;
    bool has_column = false;
    if (e.kind == ExprKind::kColumn ||
        (e.kind == ExprKind::kAggregate && !e.column.column.empty())) {
      JECB_ASSIGN_OR_RETURN(ref, Resolve(schema_, e.column, scope));
      has_column = true;
      if (options_.use_select_clause_attrs) info_.select_attrs.insert(ref);
    }
    // `SELECT @v = col` binds the variable to the column: within one
    // execution @v carries that column's value, so later uses of @v witness
    // an implicit join (paper Example 3). Aggregated outputs do not bind —
    // SUM(T_QTY) is not a key value.
    if (item.assign_to && has_column && e.kind == ExprKind::kColumn) {
      Bind(*item.assign_to, ref);
    }
    return Status::OK();
  }

  Status AnalyzePredicate(const Predicate& p, const std::vector<TableId>& scope) {
    auto column_of = [&](const Expr& e) -> Result<ColumnRef> {
      return Resolve(schema_, e.column, scope);
    };
    const bool lhs_col = p.lhs.kind == ExprKind::kColumn;
    const bool rhs_col = p.rhs.kind == ExprKind::kColumn;

    if (lhs_col) {
      JECB_ASSIGN_OR_RETURN(ColumnRef l, column_of(p.lhs));
      info_.where_attrs.insert(l);
    }
    if (p.op != CompareOp::kIn && rhs_col) {
      JECB_ASSIGN_OR_RETURN(ColumnRef r, column_of(p.rhs));
      info_.where_attrs.insert(r);
    }

    if (p.op == CompareOp::kIn) {
      // IN-lists touch many values: record the attribute, mark parameters as
      // multi-valued, and bind nothing.
      for (const Expr& e : p.rhs_list) {
        if (e.kind == ExprKind::kParameter) {
          info_.multi_valued_params.insert(e.parameter);
          bindings_.erase(e.parameter);
        }
      }
      return Status::OK();
    }
    if (p.op != CompareOp::kEq) return Status::OK();

    if (lhs_col && rhs_col) {
      JECB_ASSIGN_OR_RETURN(ColumnRef l, column_of(p.lhs));
      JECB_ASSIGN_OR_RETURN(ColumnRef r, column_of(p.rhs));
      AddJoin(l, r);
      return Status::OK();
    }
    if (lhs_col && p.rhs.kind == ExprKind::kParameter) {
      JECB_ASSIGN_OR_RETURN(ColumnRef l, column_of(p.lhs));
      Bind(p.rhs.parameter, l);
    } else if (rhs_col && p.lhs.kind == ExprKind::kParameter) {
      JECB_ASSIGN_OR_RETURN(ColumnRef r, column_of(p.rhs));
      Bind(p.lhs.parameter, r);
    }
    return Status::OK();
  }

  void Bind(const std::string& var, ColumnRef ref) {
    if (info_.multi_valued_params.count(var) > 0) return;
    bindings_[var].push_back(ref);
  }

  void AddJoin(ColumnRef a, ColumnRef b) {
    if (a == b) return;
    if (b < a) std::swap(a, b);
    info_.equijoins.emplace_back(a, b);
  }

  /// Every pair of columns bound to the same single-valued variable is an
  /// (implicit) equijoin. Declared parameters additionally export their
  /// bindings for runtime routing.
  void EmitBindingJoins() {
    for (const auto& [var, refs] : bindings_) {
      if (info_.multi_valued_params.count(var) > 0) continue;
      for (size_t i = 0; i < refs.size(); ++i) {
        for (size_t j = i + 1; j < refs.size(); ++j) {
          AddJoin(refs[i], refs[j]);
        }
      }
      for (const std::string& param : proc_.parameters) {
        if (param == var) {
          auto& out = info_.param_bindings[var];
          for (ColumnRef r : refs) {
            if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
          }
        }
      }
    }
  }

  void Dedup() {
    std::sort(info_.equijoins.begin(), info_.equijoins.end());
    info_.equijoins.erase(std::unique(info_.equijoins.begin(), info_.equijoins.end()),
                          info_.equijoins.end());
  }

  const Schema& schema_;
  const Procedure& proc_;
  const AnalyzerOptions& options_;
  ProcedureInfo info_;
  std::map<std::string, std::vector<ColumnRef>> bindings_;
};

}  // namespace

Result<ProcedureInfo> AnalyzeProcedure(const Schema& schema, const Procedure& proc,
                                       const AnalyzerOptions& options) {
  Analysis analysis(schema, proc, options);
  return analysis.Run();
}

}  // namespace jecb::sql
