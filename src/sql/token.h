// Tokens of the stored-procedure SQL dialect.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace jecb::sql {

enum class TokenType {
  kIdentifier,   // SELECT, TRADE, T_ID, ... (keywords resolved by parser)
  kParameter,    // @cust_id
  kNumber,       // 42, 3.5
  kString,       // 'abc'
  kSymbol,       // ( ) , ; = < > <= >= != * { } .
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int line = 0;

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive keyword/identifier match.
  bool IsWord(std::string_view word) const;
  bool IsSymbol(std::string_view sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes `text`; fails on unterminated strings or stray characters.
Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace jecb::sql
