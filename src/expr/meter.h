// Resource metering for the Table 1/2 experiments: CPU seconds and peak RSS
// deltas around a partitioner run.
#pragma once

#include <cstdint>
#include <string>

namespace jecb {

/// Point-in-time resource snapshot of this process.
struct ResourceSnapshot {
  double cpu_seconds = 0.0;   // user + system
  uint64_t peak_rss_kb = 0;   // high-water mark (monotone)
  uint64_t current_rss_kb = 0;
};

ResourceSnapshot TakeResourceSnapshot();

/// Measures one phase: construct before, Stop() after.
class ResourceMeter {
 public:
  ResourceMeter() : start_(TakeResourceSnapshot()) {}

  struct Usage {
    double cpu_seconds = 0.0;
    /// Peak RSS over the process lifetime so far (the paper reports absolute
    /// footprints; the peak is dominated by the measured phase when the
    /// phase allocates the big structures).
    uint64_t peak_rss_mb = 0;
    uint64_t rss_delta_mb = 0;
  };

  Usage Stop() const;

 private:
  ResourceSnapshot start_;
};

}  // namespace jecb
