#include "expr/meter.h"

#include <sys/resource.h>

#include <cstdio>

namespace jecb {

namespace {

/// Current RSS from /proc/self/statm, in KiB; 0 when unavailable.
uint64_t CurrentRssKb() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0;
  long resident = 0;
  int got = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<uint64_t>(resident) * 4;  // pages are 4 KiB on Linux
}

}  // namespace

ResourceSnapshot TakeResourceSnapshot() {
  ResourceSnapshot snap;
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    snap.cpu_seconds = static_cast<double>(ru.ru_utime.tv_sec) +
                       static_cast<double>(ru.ru_utime.tv_usec) / 1e6 +
                       static_cast<double>(ru.ru_stime.tv_sec) +
                       static_cast<double>(ru.ru_stime.tv_usec) / 1e6;
    snap.peak_rss_kb = static_cast<uint64_t>(ru.ru_maxrss);
  }
  snap.current_rss_kb = CurrentRssKb();
  return snap;
}

ResourceMeter::Usage ResourceMeter::Stop() const {
  ResourceSnapshot end = TakeResourceSnapshot();
  Usage usage;
  usage.cpu_seconds = end.cpu_seconds - start_.cpu_seconds;
  usage.peak_rss_mb = end.peak_rss_kb / 1024;
  uint64_t delta =
      end.current_rss_kb > start_.current_rss_kb
          ? end.current_rss_kb - start_.current_rss_kb
          : 0;
  usage.rss_delta_mb = delta / 1024;
  return usage;
}

}  // namespace jecb
