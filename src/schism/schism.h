// Schism baseline (Curino et al., VLDB 2010), as reimplemented for the
// paper's comparison: model the training transactions as a tuple-level
// co-access graph, min-cut partition it, then train one decision-tree
// classifier per table (the "explanation phase") so arbitrary tuples — not
// just those in the trace — can be placed.
#pragma once

#include <cstdint>

#include "graph/partitioner.h"
#include "ml/decision_tree.h"
#include "partition/solution.h"
#include "trace/trace.h"

namespace jecb {

struct SchismOptions {
  int32_t num_partitions = 8;
  ClassifyOptions classify;
  /// Edge budget per transaction. Small transactions contribute full
  /// cliques (Schism's model); larger ones a ring plus random chords up to
  /// the budget, bounding graph size without collapsing cluster structure.
  size_t max_pairs_per_txn = 8192;
  /// Per-table cap on explanation-phase training samples.
  size_t max_samples_per_table = 200000;
  DecisionTreeOptions tree;
  uint64_t seed = 11;
  GraphPartitionOptions graph;  // num_parts/seed are overwritten
};

struct SchismResult {
  DatabaseSolution solution;
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  uint64_t edge_cut = 0;
  /// Fraction of training tuples the per-table classifiers reproduce.
  double explanation_accuracy = 0.0;
  double elapsed_seconds = 0.0;
};

class Schism {
 public:
  explicit Schism(SchismOptions options = {}) : options_(std::move(options)) {}

  /// Partitions the database from the training trace alone (plus the
  /// schema's column metadata for classifier features). Mutates `db`'s
  /// schema with the Phase-1-style replication classification, which is
  /// applied for fairness with JECB.
  Result<SchismResult> Partition(Database* db, const Trace& training) const;

 private:
  SchismOptions options_;
};

/// Feature vector of a stored tuple for the explanation-phase classifier:
/// ints as-is, doubles rounded, strings hashed.
std::vector<int64_t> TupleFeatures(const Database& db, TupleId tuple);

}  // namespace jecb
