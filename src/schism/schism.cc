#include "schism/schism.h"

#include <chrono>
#include <cmath>
#include <random>
#include <memory>
#include <unordered_map>

#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"

namespace jecb {

std::vector<int64_t> TupleFeatures(const Database& db, TupleId tuple) {
  const Row& row = db.table_data(tuple.table).row(tuple.row);
  std::vector<int64_t> out;
  out.reserve(row.size());
  for (const Value& v : row) {
    if (v.is_int()) {
      out.push_back(v.AsInt());
    } else if (v.is_double()) {
      out.push_back(static_cast<int64_t>(std::llround(v.AsDouble())));
    } else {
      out.push_back(static_cast<int64_t>(v.Hash()));
    }
  }
  return out;
}

Result<SchismResult> Schism::Partition(Database* db, const Trace& training) const {
  auto start = std::chrono::steady_clock::now();
  TraceRecorder& rec = TraceRecorder::Default();
  JECB_SPAN1("schism", "partition", "txns", static_cast<int64_t>(training.size()));

  std::vector<AccessClass> classes =
      ClassifyTables(db->schema(), training, options_.classify);
  ApplyClassification(&db->mutable_schema(), classes);

  // ---- Tuple graph ---------------------------------------------------------
  const uint64_t graph_ts = rec.enabled() ? rec.NowUs() : 0;
  std::unordered_map<TupleId, NodeId, TupleIdHash> node_of;
  std::vector<TupleId> tuples;
  auto intern = [&](TupleId t) {
    auto [it, inserted] = node_of.emplace(t, static_cast<NodeId>(tuples.size()));
    if (inserted) tuples.push_back(t);
    return it->second;
  };

  // First pass: intern nodes so the builder can size up front.
  std::vector<std::vector<NodeId>> txn_nodes;
  txn_nodes.reserve(training.size());
  for (const Transaction& txn : training.transactions()) {
    std::vector<NodeId> nodes;
    for (const Access& a : txn.accesses) {
      if (classes[a.tuple.table] != AccessClass::kPartitioned) continue;
      NodeId n = intern(a.tuple);
      bool dup = false;
      for (NodeId m : nodes) {
        if (m == n) {
          dup = true;
          break;
        }
      }
      if (!dup) nodes.push_back(n);
    }
    txn_nodes.push_back(std::move(nodes));
  }

  GraphBuilder builder(tuples.size(), 0);
  std::mt19937_64 chord_rng(options_.seed);
  for (const auto& nodes : txn_nodes) {
    for (NodeId n : nodes) builder.AddNodeWeight(n, 1);
    size_t pairs = nodes.size() * (nodes.size() - 1) / 2;
    if (pairs <= options_.max_pairs_per_txn) {
      for (size_t i = 0; i < nodes.size(); ++i) {
        for (size_t j = i + 1; j < nodes.size(); ++j) {
          builder.AddEdge(nodes[i], nodes[j], 1);
        }
      }
    } else {
      // Very large transaction: ring (connectivity) plus random chords up
      // to the budget (density), instead of the quadratic clique.
      for (size_t i = 0; i + 1 < nodes.size(); ++i) {
        builder.AddEdge(nodes[i], nodes[i + 1], 1);
      }
      builder.AddEdge(nodes.back(), nodes.front(), 1);
      for (size_t c = nodes.size(); c < options_.max_pairs_per_txn; ++c) {
        NodeId a = nodes[chord_rng() % nodes.size()];
        NodeId b = nodes[chord_rng() % nodes.size()];
        builder.AddEdge(a, b, 1);
      }
    }
  }
  txn_nodes.clear();
  txn_nodes.shrink_to_fit();

  Graph graph = builder.Build();
  if (rec.enabled()) {
    rec.Span("schism", "graph.build", graph_ts, rec.NowUs() - graph_ts, "nodes",
             static_cast<int64_t>(graph.num_nodes()), "edges",
             static_cast<int64_t>(graph.num_edges()));
  }

  SchismResult result{DatabaseSolution(options_.num_partitions, db->schema().num_tables()),
                      graph.num_nodes(), graph.num_edges(), 0, 0.0, 0.0};

  GraphPartitionOptions gopt = options_.graph;
  gopt.num_parts = options_.num_partitions;
  gopt.seed = options_.seed;
  const uint64_t cut_ts = rec.enabled() ? rec.NowUs() : 0;
  std::vector<int32_t> assignment = PartitionGraph(graph, gopt);
  result.edge_cut = CutWeight(graph, assignment);
  if (rec.enabled()) {
    rec.Span("schism", "min_cut", cut_ts, rec.NowUs() - cut_ts, "parts",
             gopt.num_parts, "edge_cut", static_cast<int64_t>(result.edge_cut));
  }

  // ---- Explanation phase ---------------------------------------------------
  const uint64_t explain_ts = rec.enabled() ? rec.NowUs() : 0;
  auto replicated = std::make_shared<ReplicatedTable>();
  for (size_t t = 0; t < db->schema().num_tables(); ++t) {
    if (classes[t] != AccessClass::kPartitioned) {
      result.solution.Set(static_cast<TableId>(t), replicated);
    }
  }

  // Group training tuples by table.
  std::unordered_map<TableId, std::vector<std::pair<TupleId, int32_t>>> by_table;
  for (size_t i = 0; i < tuples.size(); ++i) {
    by_table[tuples[i].table].emplace_back(tuples[i], assignment[i]);
  }

  uint64_t correct = 0;
  uint64_t total = 0;
  for (size_t t = 0; t < db->schema().num_tables(); ++t) {
    auto tid = static_cast<TableId>(t);
    if (classes[t] != AccessClass::kPartitioned) continue;
    auto it = by_table.find(tid);
    if (it == by_table.end() || it->second.empty()) {
      // Never seen in the trace: replicate (Schism has no evidence).
      result.solution.Set(tid, replicated);
      continue;
    }
    auto& samples = it->second;
    if (samples.size() > options_.max_samples_per_table) {
      samples.resize(options_.max_samples_per_table);
    }
    std::vector<std::vector<int64_t>> features;
    std::vector<int32_t> labels;
    features.reserve(samples.size());
    labels.reserve(samples.size());
    for (const auto& [tuple, label] : samples) {
      features.push_back(TupleFeatures(*db, tuple));
      labels.push_back(label);
    }
    DecisionTree tree =
        DecisionTree::Train(features, labels, options_.num_partitions, options_.tree);
    for (size_t i = 0; i < features.size(); ++i) {
      if (tree.Predict(features[i]) == labels[i]) ++correct;
      ++total;
    }
    auto shared_tree = std::make_shared<DecisionTree>(std::move(tree));
    const Database* db_ptr = db;
    result.solution.Set(
        tid, std::make_shared<CallbackPartitioner>(
                 [shared_tree, db_ptr](const Database& database, TupleId tuple) {
                   (void)db_ptr;
                   return shared_tree->Predict(TupleFeatures(database, tuple));
                 },
                 "decision-tree classifier"));
  }
  result.explanation_accuracy =
      total == 0 ? 1.0 : static_cast<double>(correct) / static_cast<double>(total);
  if (rec.enabled()) {
    rec.Span("schism", "decision_tree", explain_ts, rec.NowUs() - explain_ts,
             "samples", static_cast<int64_t>(total));
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.SetGauge("schism_graph_nodes", static_cast<double>(result.graph_nodes));
  registry.SetGauge("schism_graph_edges", static_cast<double>(result.graph_edges));
  registry.SetGauge("schism_edge_cut", static_cast<double>(result.edge_cut));
  registry.SetGauge("schism_explanation_accuracy", result.explanation_accuracy);
  registry.SetGauge("schism_partition_seconds", result.elapsed_seconds);
  return result;
}

}  // namespace jecb
