#include "dist/metrics_http.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <cstring>

#include "obs/cluster_telemetry.h"
#include "obs/metrics_registry.h"

namespace jecb::dist {

namespace {

constexpr size_t kMaxRequestBytes = 8 * 1024;

std::string DefaultMetricsBody() {
  return MetricsRegistry::Default().RenderPrometheus() +
         ClusterTelemetry::Default().RenderRemoteMetrics();
}

void SetRecvTimeout(const net::Socket& sock, int ms) {
  struct timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Reads until the header terminator, EOF, cap, or timeout; returns the
/// request line (up to the first CR/LF), empty on anything unusable.
std::string ReadRequestLine(const net::Socket& sock) {
  std::string buf;
  char chunk[1024];
  while (buf.size() < kMaxRequestBytes &&
         buf.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = recv(sock.fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<size_t>(n));
  }
  const size_t eol = buf.find_first_of("\r\n");
  return eol == std::string::npos ? buf : buf.substr(0, eol);
}

}  // namespace

Status MetricsHttpServer::Start(uint16_t port, Renderer renderer) {
  if (running()) return Status::AlreadyExists("metrics server already running");
  net::SocketAddr addr;
  addr.is_unix = false;
  addr.host = "127.0.0.1";
  addr.port = port;
  Result<net::Socket> listener = net::Listen(addr);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Result<uint16_t> bound = net::BoundTcpPort(listener_);
  if (!bound.ok()) return bound.status();
  port_ = bound.value();
  renderer_ = renderer ? std::move(renderer) : Renderer(DefaultMetricsBody);
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  listener_.Close();
  port_ = 0;
}

void MetricsHttpServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listener_.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, 100);
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    Result<net::Socket> conn = net::Accept(listener_);
    if (!conn.ok()) continue;
    net::Socket sock = std::move(conn).value();
    SetRecvTimeout(sock, 1000);
    const std::string request = ReadRequestLine(sock);
    std::string response;
    if (request.rfind("GET /metrics", 0) == 0 || request.rfind("GET / ", 0) == 0) {
      const std::string body = renderer_();
      response = "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; "
                 "charset=utf-8\r\nContent-Length: " +
                 std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
                 body;
    } else {
      response =
          "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: "
          "close\r\n\r\n";
    }
    (void)net::SendAll(sock, response.data(), response.size());
  }
}

Result<std::string> ScrapeMetricsOnce(uint16_t port, const std::string& host) {
  net::SocketAddr addr;
  addr.is_unix = false;
  addr.host = host;
  addr.port = port;
  Result<net::Socket> conn = net::Connect(addr);
  if (!conn.ok()) return conn.status();
  net::Socket sock = std::move(conn).value();
  SetRecvTimeout(sock, 5000);
  const std::string request =
      "GET /metrics HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  Status sent = net::SendAll(sock, request.data(), request.size());
  if (!sent.ok()) return sent;
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = recv(sock.fd(), chunk, sizeof(chunk), 0);
    if (n < 0) return Status::Internal("metrics scrape read failed");
    if (n == 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  if (response.rfind("HTTP/1.0 200", 0) != 0 &&
      response.rfind("HTTP/1.1 200", 0) != 0) {
    return Status::Internal("metrics scrape: non-200 response");
  }
  const size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return Status::ParseError("metrics scrape: malformed response");
  }
  return response.substr(body_at + 4);
}

}  // namespace jecb::dist
