// The real-wire backend: one forked ShardServer process per shard, one
// socket connection per (client session, shard), and a DistCoordinator on
// each client thread driving actual prepare/vote/commit/ack message rounds
// instead of the in-process backend's simulated sleeps.
//
// Process model: Start() binds every shard's listener — the control
// listener, plus a second DATA listener per shard when exchange is enabled —
// and THEN forks, while the parent is still single-threaded: the children
// inherit the immutable ShardedDatabase copy-on-write (no serialization)
// and a clean address space (fork before client threads is what keeps this
// sanitizer-safe). Each child keeps only its own listeners plus the full
// data-address table (so its ExchangeClient can reach every peer's data
// plane directly, bypassing the coordinator), installs the SIGTERM handler
// and serves until the Drain() control round sends it kShutdown; the parent
// reaps it with an escalating waitpid -> SIGTERM -> SIGKILL ladder so a
// wedged shard can never hang the replay, and records each child's exit
// status in TransportReport::shard_exits so abnormal deaths (a TransportPanic
// abort, an OOM kill) are never silently absorbed by the ladder.
//
// Accounting: the parent mirrors TxnCoordinator's metric updates step for
// step, keyed off the shard's VoteMsg (which carries the shard-side
// fault decisions), so RuntimeMetrics — and therefore
// ReplayReport::OutcomeSignature() — is bit-identical to the in-process
// backend for the same seed. Wire-level traffic lands in TransportCounters
// instead, which the signature deliberately excludes.
//
// Wire fault injection (FaultPlan::wire_*) is applied in the coordinator's
// send path: drops are retransmitted after a simulated timer, duplicates
// are re-sent with the same sequence number (the shard's event loop dedups
// them), delays sleep before the send, and disconnects tear the channel
// down between transactions only. All four perturb timing and transport
// counters, never outcomes — see FaultPlan for the masking contract.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/transport.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/histogram.h"
#include "runtime/executor.h"
#include "runtime/fault_injector.h"
#include "runtime/metrics.h"
#include "runtime/sharded_database.h"

namespace jecb {

class SocketTransport : public Transport {
 public:
  SocketTransport(const ShardedDatabase& sharded, const RuntimeOptions& options,
                  RuntimeMetrics* metrics);
  ~SocketTransport() override;

  /// Binds one listener per shard and forks the shard-server processes.
  /// Must run before any client thread exists (the children must never
  /// inherit a multi-threaded address space).
  Status Start() override;

  std::unique_ptr<TransportSession> NewSession(int client_id) override;

  /// Shuts the shards down over a control connection (kShutdown ->
  /// kShardStats harvests their counters), reaps every child process, and
  /// removes the socket files. Idempotent.
  void Drain() override;

  TransportReport Report() const override;
  TransportKind kind() const override { return options_.transport; }

  /// Address of shard `i`'s listener (valid after Start()).
  const net::SocketAddr& shard_addr(int32_t i) const { return addrs_[i]; }

 private:
  friend class DistCoordinatorSession;

  struct ShardProc {
    pid_t pid = -1;
  };

  /// Sessions fold their local wire counters in here when they die;
  /// Drain() adds the shard-reported stats.
  void MergeCounters(const TransportCounters& c);

  /// Runs the Hello handshake on `control` and refines shard `i`'s clock
  /// offset from the HelloAck's now_us tail (midpoint estimate, best RTT
  /// kept). `in` must be the connection's persistent frame buffer. Returns
  /// false if the handshake fails.
  bool HandshakeAndMeasureOffset(net::Socket& control, net::FrameBuffer& in,
                                 int32_t i, uint64_t* seq);
  /// Folds one Hello round-trip sample (t0 send, t1 ack receipt, shard
  /// recorder clock at ack) into the per-shard offset estimate.
  void RecordOffsetSample(int32_t shard, uint64_t t0, uint64_t t1,
                          uint64_t shard_now_us);
  int64_t ClockOffsetUs(int32_t shard) const;
  /// Background harvest thread: every telemetry_period_ms, connects to each
  /// live shard, sends kTelemetryReq and ingests the kTelemetry batches into
  /// the process-wide ClusterTelemetry sink. Runs on its own control
  /// connections — never touches session channels, so replay traffic (and
  /// therefore OutcomeSignature) is unaffected.
  void PollTelemetry();

  /// Sends kShutdown to shard `i` and folds its kShardStats reply (control
  /// loop + exchange tail) into the transport counters; kTelemetry frames
  /// arriving before the stats are ingested into ClusterTelemetry. Best
  /// effort: a dead shard is simply reaped.
  void ShutdownShard(int32_t i);
  /// Waits for child `i`, escalating WNOHANG -> SIGTERM -> SIGKILL, and
  /// records its exit status (code, signal, which rung forced it) in
  /// shard_exits_.
  void ReapShard(int32_t i);

  const ShardedDatabase& sharded_;
  const RuntimeOptions options_;
  RuntimeMetrics* metrics_;
  const FaultInjector injector_;

  std::vector<net::SocketAddr> addrs_;
  /// Exchange data-plane listener addresses (empty when exchange is off);
  /// every child gets the full table at fork time.
  std::vector<net::SocketAddr> data_addrs_;
  std::vector<ShardProc> procs_;
  std::vector<ShardExitStatus> shard_exits_;
  std::string owned_socket_dir_;  ///< mkdtemp'd; removed by Drain()
  /// Where each child's flight recorder dumps (options_.postmortem_dir, or a
  /// mkdtemp'd fallback removed by Drain() when it stayed empty).
  std::string postmortem_dir_;
  bool owned_postmortem_dir_ = false;
  bool started_ = false;
  bool drained_ = false;

  /// Best (lowest-RTT) shard-clock-minus-coordinator-clock estimate per
  /// shard, in microseconds, refreshed on every Hello round trip the
  /// telemetry paths run. Guarded by offsets_mu_ (poller vs Drain).
  mutable std::mutex offsets_mu_;
  std::vector<int64_t> clock_offsets_us_;
  std::vector<uint64_t> offset_rtts_us_;

  std::thread poller_;
  std::atomic<bool> poller_stop_{false};

  /// Request->response latency per shard, recorded by every session
  /// (LatencyHistogram is concurrent).
  std::vector<std::unique_ptr<LatencyHistogram>> shard_rtt_;

  mutable std::mutex counters_mu_;
  TransportCounters counters_;
};

}  // namespace jecb
