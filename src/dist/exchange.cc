#include "dist/exchange.h"

#include <string>
#include <utility>

#include "obs/trace_recorder.h"

namespace jecb {

using net::Frame;
using net::MsgType;

std::vector<net::TupleBatchMsg> BuildTupleBatches(
    uint64_t txn_id, uint32_t attempt, int32_t source_shard,
    const std::vector<ExchangeEntry>& entries, uint32_t batch_bytes) {
  const uint32_t clamped = ClampExchangeBatchBytes(batch_bytes);
  std::vector<std::pair<size_t, size_t>> spans =
      ExchangeBatchSpans(entries, 0, entries.size(), clamped);
  if (spans.empty()) spans.emplace_back(0, 0);  // empty stream: one terminator
  std::vector<net::TupleBatchMsg> batches;
  batches.reserve(spans.size());
  for (size_t s = 0; s < spans.size(); ++s) {
    net::TupleBatchMsg batch;
    batch.txn_id = txn_id;
    batch.attempt = attempt;
    batch.source_shard = source_shard;
    batch.batch_index = static_cast<uint32_t>(s);
    batch.last = s + 1 == spans.size() ? 1 : 0;
    batch.entries.reserve(spans[s].second - spans[s].first);
    for (size_t i = spans[s].first; i < spans[s].second; ++i) {
      batch.entries.push_back({static_cast<uint32_t>(entries[i].tuple.table),
                               static_cast<uint64_t>(entries[i].tuple.row),
                               entries[i].bytes});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

// ---------------------------------------------------------------------------
// ExchangeNode

ExchangeNode::ExchangeNode(int32_t shard_id, const ShardedDatabase& sharded,
                           uint32_t batch_bytes)
    : shard_id_(shard_id),
      sharded_(sharded),
      batch_bytes_(ClampExchangeBatchBytes(batch_bytes)) {}

ExchangeNode::~ExchangeNode() { Stop(); }

void ExchangeNode::Start(net::Socket listener) {
  loop_ = std::make_unique<net::EventLoop>(std::move(listener));
  running_ = true;
  thread_ = std::thread([this] { Run(); });
}

void ExchangeNode::Stop() {
  if (!running_) return;
  running_ = false;
  loop_->RequestStop();
  thread_.join();  // happens-before edge: stats_ written in Run() is visible
}

void ExchangeNode::Run() {
  TraceRecorder::Default().SetThreadName("shard-" + std::to_string(shard_id_) +
                                         "/exchange");
  int64_t peer = 0;
  Frame frame;
  while (loop_->Next(&peer, &frame)) {
    if (frame.type != MsgType::kExchangeReq) continue;  // stray: ignore
    net::ExchangeMsg req;
    if (!req.Decode(frame.payload)) {
      // Structurally invalid beyond what the CRC caught: the peer is
      // confused, not the wire. Drop it rather than guess at an answer.
      loop_->ClosePeer(peer);
      continue;
    }
    ++stats_.reqs_served;
    JECB_SPAN2("exchange", "exchange.serve", "txn",
               static_cast<int64_t>(req.txn_id), "shard",
               static_cast<int64_t>(shard_id_));
    std::vector<TupleId> reads;
    reads.reserve(req.reads.size());
    for (const net::WireAccess& a : req.reads) {
      reads.push_back(TupleId{static_cast<TableId>(a.table),
                              static_cast<RowId>(a.row)});
    }
    std::vector<ExchangeEntry> entries = MaterializeReads(sharded_, reads);
    for (const net::TupleBatchMsg& batch : BuildTupleBatches(
             req.txn_id, req.attempt, shard_id_, entries, batch_bytes_)) {
      ++stats_.batches_sent;
      stats_.tuples_sent += batch.entries.size();
      for (const net::TupleBatchEntry& e : batch.entries) {
        stats_.bytes_sent += e.bytes.size();
      }
      loop_->Send(peer, MsgType::kTupleBatch, ++reply_seq_, batch.Encode());
    }
  }
  stats_.loop = loop_->stats();
}

// ---------------------------------------------------------------------------
// ExchangeClient

void ExchangeClient::Configure(int32_t shard_id,
                               std::vector<net::SocketAddr> data_addrs,
                               const FaultInjector* injector,
                               bool wire_faults) {
  shard_id_ = shard_id;
  channels_ = std::vector<FaultyChannel>(data_addrs.size());
  for (size_t i = 0; i < data_addrs.size(); ++i) {
    channels_[i].Configure(std::move(data_addrs[i]), static_cast<int32_t>(i),
                           injector, wire_faults, &counters_, "exchange");
  }
}

void ExchangeClient::ConnectAll() {
  for (size_t i = 0; i < channels_.size(); ++i) {
    if (static_cast<int32_t>(i) == shard_id_) continue;
    channels_[i].EnsureConnected();
  }
}

std::vector<net::TupleBatchEntry> ExchangeClient::Pull(
    int32_t owner, uint64_t txn_id, uint32_t attempt,
    const std::vector<net::WireAccess>& reads) {
  FaultyChannel& ch = channels_[static_cast<size_t>(owner)];
  ch.TouchForTxn(txn_id);
  ch.EnsureConnected();

  net::ExchangeMsg req;
  req.txn_id = txn_id;
  req.attempt = attempt;
  req.from_shard = shard_id_;
  req.reads = reads;
  JECB_SPAN2("exchange", "exchange.pull", "txn", static_cast<int64_t>(txn_id),
             "owner", static_cast<int64_t>(owner));
  ch.SendWithFaults(MsgType::kExchangeReq, req.Encode(), txn_id, attempt);

  std::vector<net::TupleBatchEntry> entries;
  entries.reserve(reads.size());
  uint32_t expect_index = 0;
  for (;;) {
    Frame frame = ch.RecvType(MsgType::kTupleBatch);
    net::TupleBatchMsg batch;
    if (!batch.Decode(frame.payload)) {
      TransportPanic("exchange", owner, Status::Internal("bad TupleBatchMsg"));
    }
    if (batch.txn_id != txn_id || batch.batch_index != expect_index) {
      TransportPanic("exchange", owner,
                     Status::Internal("tuple batch stream out of order"));
    }
    ++expect_index;
    for (net::TupleBatchEntry& e : batch.entries) {
      entries.push_back(std::move(e));
    }
    if (batch.last != 0) break;
  }
  if (entries.size() != reads.size()) {
    TransportPanic("exchange", owner,
                   Status::Internal("tuple batch stream truncated"));
  }
  return entries;
}

}  // namespace jecb
