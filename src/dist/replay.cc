#include "dist/replay.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/ascii_table.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "common/topology.h"
#include "obs/metrics_registry.h"
#include "obs/trace_export.h"
#include "obs/trace_recorder.h"
#include "partition/evaluator.h"
#include "runtime/load_gen.h"
#include "runtime/txn_coordinator.h"

namespace jecb {

std::vector<ClassifiedTxn> ClassifyTrace(const Database& db,
                                         const DatabaseSolution& solution,
                                         const Trace& trace) {
  JECB_SPAN1("runtime", "replay.classify", "txns",
             static_cast<int64_t>(trace.size()));
  const int32_t k = std::max(solution.num_partitions(), 1);
  std::vector<ClassifiedTxn> out;
  out.reserve(trace.size());
  std::vector<int32_t> parts;
  size_t index = 0;
  for (const Transaction& txn : trace.transactions()) {
    ClassifiedTxn ct;
    ct.txn = &txn;
    ct.txn_id = index;  // stable fault-decision coordinate
    bool writes_replicated = false;
    parts.clear();
    for (const Access& a : txn.accesses) {
      int32_t p = solution.PartitionOf(db, a.tuple);
      if (p == kReplicated) {
        if (a.write) writes_replicated = true;
        continue;
      }
      if (p < 0 || p >= k) {
        // Same deterministic fallback ShardedDatabase uses for unresolvable
        // placements, so residency checks still line up.
        p = static_cast<int32_t>(TupleIdHash{}(a.tuple) % static_cast<size_t>(k));
      }
      parts.push_back(p);
    }
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    if (writes_replicated) {
      // A replicated write must apply on every shard.
      ct.participants.resize(k);
      for (int32_t p = 0; p < k; ++p) ct.participants[p] = p;
    } else if (parts.empty()) {
      // Replicated reads only: executable anywhere; spread round-robin.
      ct.participants = {static_cast<int32_t>(index % static_cast<size_t>(k))};
    } else {
      ct.participants = parts;
    }
    ct.home = ct.participants.front();
    ct.distributed = IsDistributed(db, solution, txn);
    out.push_back(std::move(ct));
    ++index;
  }
  return out;
}

namespace {

LatencyReport SnapshotLatency(const HistogramData& h) {
  LatencyReport r;
  r.count = h.count;
  r.mean_us = h.mean_us();
  r.p50_us = h.Quantile(0.50);
  r.p95_us = h.Quantile(0.95);
  r.p99_us = h.Quantile(0.99);
  r.max_us = static_cast<double>(h.max_us);
  return r;
}

void AppendLatencyJson(std::string* out, const char* key, const LatencyReport& l) {
  *out += "\"";
  *out += key;
  *out += "\":{\"count\":" + std::to_string(l.count) +
          ",\"mean_us\":" + FormatDouble(l.mean_us, 1) +
          ",\"p50_us\":" + FormatDouble(l.p50_us, 1) +
          ",\"p95_us\":" + FormatDouble(l.p95_us, 1) +
          ",\"p99_us\":" + FormatDouble(l.p99_us, 1) +
          ",\"max_us\":" + FormatDouble(l.max_us, 1) + "}";
}

}  // namespace

uint64_t ReplayReport::OutcomeSignature() const {
  uint64_t h = HashInt64(total_txns);
  auto mix = [&h](uint64_t v) { h = HashCombine(h, HashInt64(v)); };
  mix(committed);
  mix(distributed_committed);
  mix(residency_faults);
  mix(failed);
  mix(aborts);
  mix(retries);
  mix(prepare_rejects);
  mix(coordinator_timeouts);
  mix(shard_down_aborts);
  mix(stalls_injected);
  for (const ShardReport& s : shards) {
    mix(s.local_txns);
    mix(s.dist_participations);
    mix(s.participation_attempts);
    mix(s.stalls);
    mix(s.prepare_rejects);
    mix(s.down_events);
  }
  return h;
}

std::string ReplayReport::ToJson() const {
  std::string out = "{";
  out += "\"label\":\"" + JsonEscape(label) + "\"";
  out += ",\"partitions\":" + std::to_string(num_partitions);
  out += ",\"total_txns\":" + std::to_string(total_txns);
  out += ",\"committed\":" + std::to_string(committed);
  out += ",\"distributed_txns\":" + std::to_string(distributed_committed);
  out += ",\"distributed_fraction\":" + FormatDouble(distributed_fraction(), 4);
  out += ",\"residency_faults\":" + std::to_string(residency_faults);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"aborts\":" + std::to_string(aborts);
  out += ",\"retries\":" + std::to_string(retries);
  out += ",\"prepare_rejects\":" + std::to_string(prepare_rejects);
  out += ",\"coordinator_timeouts\":" + std::to_string(coordinator_timeouts);
  out += ",\"shard_down_aborts\":" + std::to_string(shard_down_aborts);
  out += ",\"stalls_injected\":" + std::to_string(stalls_injected);
  out += ",\"wall_seconds\":" + FormatDouble(wall_seconds, 3);
  out += ",\"throughput_tps\":" + FormatDouble(throughput_tps, 0);
  out += ",\"goodput_tps\":" + FormatDouble(goodput_tps, 0);
  out += ",\"target_tps\":" + FormatDouble(target_tps, 0);
  out += ",\"offered_tps\":" + FormatDouble(offered_tps, 0);
  out += ",\"shed\":" + std::to_string(shed);
  out += ",\"replication_factor\":" + FormatDouble(replication_factor, 2);
  out += ",\"storage_skew\":" + FormatDouble(storage_skew, 3);
  out += ",\"outcome_signature\":\"" + std::to_string(OutcomeSignature()) + "\"";
  out += ",\"topology\":{";
  out += "\"cpus\":" + std::to_string(topology.cpus);
  out += ",\"physical_cores\":" + std::to_string(topology.physical_cores);
  out += ",\"numa_nodes\":" + std::to_string(topology.numa_nodes);
  out += ",\"smt\":" + std::string(topology.smt ? "true" : "false");
  out += ",\"source\":\"" +
         std::string(topology.from_sysfs ? "sysfs" : "fallback") + "\"";
  out += ",\"pinned\":" + std::string(topology.pinned ? "true" : "false");
  out += ",\"perf_available\":" +
         std::string(topology.perf_available ? "true" : "false");
  out += ",\"cache_misses\":" + std::to_string(topology.cache_misses);
  out += ",\"instructions\":" + std::to_string(topology.instructions);
  out += "},\"transport\":{";
  out += "\"kind\":\"" + std::string(TransportKindName(transport)) + "\"";
  out += ",\"messages_sent\":" + std::to_string(transport_counters.messages_sent);
  out +=
      ",\"messages_received\":" + std::to_string(transport_counters.messages_received);
  out += ",\"bytes_sent\":" + std::to_string(transport_counters.bytes_sent);
  out += ",\"bytes_received\":" + std::to_string(transport_counters.bytes_received);
  out += ",\"reconnects\":" + std::to_string(transport_counters.reconnects);
  out += ",\"wire_drops\":" + std::to_string(transport_counters.wire_drops);
  out += ",\"wire_delays\":" + std::to_string(transport_counters.wire_delays);
  out += ",\"wire_duplicates\":" + std::to_string(transport_counters.wire_duplicates);
  out += ",\"dedup_drops\":" + std::to_string(transport_counters.dedup_drops);
  out += ",\"shard_frames\":" + std::to_string(transport_counters.shard_frames);
  out += ",\"shard_bytes\":" + std::to_string(transport_counters.shard_bytes);
  out += ",\"exchange_requests\":" +
         std::to_string(transport_counters.exchange_requests);
  out += ",\"exchange_batches\":" +
         std::to_string(transport_counters.exchange_batches);
  out += ",\"exchange_tuples\":" +
         std::to_string(transport_counters.exchange_tuples);
  out += ",\"exchange_bytes\":" +
         std::to_string(transport_counters.exchange_bytes);
  out += ",";
  AppendLatencyJson(&out, "rtt_us", transport_rtt);
  out += "},\"exchange\":{";
  out += "\"txns\":" + std::to_string(exchange_txns);
  out += ",\"tuples\":" + std::to_string(exchange_tuples);
  out += ",\"bytes\":" + std::to_string(exchange_bytes);
  out += ",\"remote_tuples\":" + std::to_string(exchange_remote_tuples);
  out += ",\"remote_bytes\":" + std::to_string(exchange_remote_bytes);
  out += ",\"batches\":" + std::to_string(exchange_batches);
  out += ",\"digest\":\"" + std::to_string(exchange_digest) + "\"";
  out += ",\"fanout_p50\":" + FormatDouble(exchange_fanout_hist.Quantile(0.50), 1);
  out += ",\"fanout_p99\":" + FormatDouble(exchange_fanout_hist.Quantile(0.99), 1);
  out += ",\"fanout_max\":" + std::to_string(exchange_fanout_hist.max_us);
  out += "},\"shard_exits\":[";
  for (size_t i = 0; i < shard_exits.size(); ++i) {
    const ShardExitStatus& e = shard_exits[i];
    if (i > 0) out += ",";
    out += "{\"shard\":" + std::to_string(e.shard) +
           ",\"exited\":" + (e.exited ? "true" : "false") +
           ",\"exit_code\":" + std::to_string(e.exit_code) +
           ",\"term_signal\":" + std::to_string(e.term_signal) +
           ",\"forced_term\":" + (e.forced_term ? "true" : "false") +
           ",\"forced_kill\":" + (e.forced_kill ? "true" : "false") +
           ",\"postmortem\":\"" + JsonEscape(e.postmortem_path) + "\"" +
           ",\"clean\":" + (e.clean() ? "true" : "false") + "}";
  }
  out += "],\"abnormal_shard_exits\":" + std::to_string(abnormal_shard_exits());
  out += ",\"latency_us\":{";
  AppendLatencyJson(&out, "local", local);
  out += ",";
  AppendLatencyJson(&out, "distributed", distributed);
  out += ",";
  AppendLatencyJson(&out, "retry", retry);
  out += ",";
  AppendLatencyJson(&out, "sojourn", sojourn);
  out += ",";
  AppendLatencyJson(&out, "queue_wait", queue_wait);
  out += ",";
  AppendLatencyJson(&out, "service", service);
  out += "},\"shards\":[";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardReport& s = shards[i];
    if (i > 0) out += ",";
    out += "{\"shard\":" + std::to_string(s.shard) +
           ",\"stored_tuples\":" + std::to_string(s.stored_tuples) +
           ",\"local_txns\":" + std::to_string(s.local_txns) +
           ",\"dist_participations\":" + std::to_string(s.dist_participations) +
           ",\"busy_us\":" + std::to_string(s.busy_us) +
           ",\"participation_attempts\":" + std::to_string(s.participation_attempts) +
           ",\"stalls\":" + std::to_string(s.stalls) +
           ",\"prepare_rejects\":" + std::to_string(s.prepare_rejects) +
           ",\"down_events\":" + std::to_string(s.down_events) +
           ",\"availability\":" + FormatDouble(s.availability(), 4) +
           ",\"p50_us\":" + FormatDouble(s.p50_us, 1) +
           ",\"p95_us\":" + FormatDouble(s.p95_us, 1) +
           ",\"p99_us\":" + FormatDouble(s.p99_us, 1) +
           ",\"rtt_count\":" + std::to_string(s.rtt_count) +
           ",\"rtt_p50_us\":" + FormatDouble(s.rtt_p50_us, 1) +
           ",\"rtt_p99_us\":" + FormatDouble(s.rtt_p99_us, 1) +
           ",\"exchange_tuples_out\":" + std::to_string(s.exchange_tuples_out) +
           ",\"exchange_bytes_out\":" + std::to_string(s.exchange_bytes_out) +
           ",\"pinned_cpu\":" + std::to_string(s.pinned_cpu) +
           ",\"ctx_voluntary\":" + std::to_string(s.ctx_voluntary) +
           ",\"ctx_involuntary\":" + std::to_string(s.ctx_involuntary) +
           "}";
  }
  out += "]}";
  return out;
}

void ReplayReport::PublishTo(MetricsRegistry& registry) const {
  // Prometheus label values share JSON's escaping rules for '\', '"' and
  // '\n', so reuse the JSON escaper for arbitrary labels.
  const std::string lb = "{label=\"" + JsonEscape(label) + "\"}";
  auto counter = [&](std::string_view name, uint64_t value,
                     std::string_view help) {
    registry.Counter(std::string(name) + lb, help)
        .store(value, std::memory_order_relaxed);
  };
  auto gauge = [&](std::string_view name, double value, std::string_view help) {
    registry.Gauge(std::string(name) + lb, help)
        .store(value, std::memory_order_relaxed);
  };
  counter("jecb_replay_txns_total", total_txns, "Transactions submitted");
  counter("jecb_replay_committed_total", committed, "Transactions committed");
  counter("jecb_replay_distributed_committed_total", distributed_committed,
          "Committed txns classified distributed (Definition 5/6)");
  counter("jecb_replay_failed_total", failed,
          "Transactions that exhausted the retry budget");
  counter("jecb_replay_aborts_total", aborts, "2PC attempts that aborted");
  counter("jecb_replay_retries_total", retries, "Aborted attempts retried");
  counter("jecb_replay_residency_faults_total", residency_faults,
          "Accesses served by a shard not holding the tuple");
  counter("jecb_replay_prepare_rejects_total", prepare_rejects,
          "Injected prepare 'no' votes");
  counter("jecb_replay_coordinator_timeouts_total", coordinator_timeouts,
          "Injected coordinator vote timeouts");
  counter("jecb_replay_shard_down_aborts_total", shard_down_aborts,
          "Aborts from unreachable participants");
  counter("jecb_replay_stalls_injected_total", stalls_injected,
          "Injected participant stalls");
  counter("jecb_transport_messages_sent_total", transport_counters.messages_sent,
          "Wire messages sent by coordinators");
  counter("jecb_transport_messages_received_total",
          transport_counters.messages_received,
          "Wire messages received by coordinators");
  counter("jecb_transport_bytes_sent_total", transport_counters.bytes_sent,
          "Wire bytes sent by coordinators");
  counter("jecb_transport_bytes_received_total", transport_counters.bytes_received,
          "Wire bytes received by coordinators");
  counter("jecb_transport_reconnects_total", transport_counters.reconnects,
          "Channel reconnects (injected peer disconnects)");
  counter("jecb_transport_wire_drops_total", transport_counters.wire_drops,
          "Injected dropped messages (all retransmitted)");
  counter("jecb_transport_wire_delays_total", transport_counters.wire_delays,
          "Injected message send delays");
  counter("jecb_transport_wire_duplicates_total",
          transport_counters.wire_duplicates,
          "Injected duplicate sends (suppressed by receivers)");
  counter("jecb_transport_dedup_drops_total", transport_counters.dedup_drops,
          "Duplicate frames the shard servers suppressed");
  counter("jecb_transport_shard_frames_total", transport_counters.shard_frames,
          "Frames the shard server processes received");
  counter("jecb_transport_exchange_requests_total",
          transport_counters.exchange_requests,
          "Data-plane pull requests served by shard exchange nodes");
  counter("jecb_transport_exchange_batches_total",
          transport_counters.exchange_batches,
          "Tuple batches shipped over shard data planes and commit streams");
  counter("jecb_transport_exchange_tuples_total",
          transport_counters.exchange_tuples,
          "Tuples shipped over shard data planes and commit streams");
  counter("jecb_transport_exchange_bytes_total",
          transport_counters.exchange_bytes,
          "Encoded row bytes shipped over shard data planes and commit streams");
  counter("jecb_exchange_txns_total", exchange_txns,
          "Committed txns whose read set was assembled via exchange");
  counter("jecb_exchange_tuples_total", exchange_tuples,
          "Rows in assembled read sets");
  counter("jecb_exchange_bytes_total", exchange_bytes,
          "Encoded bytes of assembled read sets");
  counter("jecb_exchange_remote_tuples_total", exchange_remote_tuples,
          "Assembled rows owned by a non-home shard");
  counter("jecb_exchange_remote_bytes_total", exchange_remote_bytes,
          "Encoded bytes shipped shard-to-shard");
  counter("jecb_exchange_batches_total", exchange_batches,
          "Bounded tuple batches (greedy span rule)");
  counter("jecb_replay_abnormal_shard_exits_total", abnormal_shard_exits(),
          "Shard child processes that did not exit cleanly");
  counter("jecb_replay_shed_total", shed,
          "Open-loop arrivals dropped at a full admission queue");
  gauge("jecb_replay_wall_seconds", wall_seconds, "Replay wall-clock time");
  if (open_loop()) {
    gauge("jecb_replay_target_tps", target_tps,
          "Requested open-loop offered load");
    gauge("jecb_replay_offered_tps", offered_tps,
          "Measured open-loop arrival rate");
  }
  gauge("jecb_topology_cpus", topology.cpus, "Logical cpus on this machine");
  gauge("jecb_topology_physical_cores", topology.physical_cores,
        "Physical cores on this machine");
  gauge("jecb_topology_numa_nodes", topology.numa_nodes,
        "NUMA nodes on this machine");
  if (topology.perf_available) {
    counter("jecb_perf_cache_misses_total", topology.cache_misses,
            "Hardware cache misses over the execution window");
    counter("jecb_perf_instructions_total", topology.instructions,
            "Instructions retired over the execution window");
  }
  gauge("jecb_replay_throughput_tps", throughput_tps,
        "Processed rate: (committed + failed) / wall");
  gauge("jecb_replay_goodput_tps", goodput_tps, "Useful-work rate: committed / wall");
  gauge("jecb_replay_distributed_fraction", distributed_fraction(),
        "Committed distributed fraction (equals the static evaluator's)");
  gauge("jecb_replay_replication_factor", replication_factor,
        "Stored tuples / distinct tuples");
  gauge("jecb_replay_storage_skew", storage_skew,
        "Max shard tuples / mean shard tuples");
  registry
      .Histogram("jecb_replay_local_latency_us" + lb,
                 "Client-observed latency of single-partition txns")
      .Merge(local_hist);
  registry
      .Histogram("jecb_replay_distributed_latency_us" + lb,
                 "Client-observed latency of 2PC txns")
      .Merge(distributed_hist);
  registry
      .Histogram("jecb_replay_retry_latency_us" + lb,
                 "Latency of committed txns that needed >= 1 retry")
      .Merge(retry_hist);
  if (sojourn_hist.count > 0) {
    registry
        .Histogram("jecb_replay_sojourn_latency_us" + lb,
                   "Open-loop sojourn: completion - scheduled arrival")
        .Merge(sojourn_hist);
    registry
        .Histogram("jecb_replay_queue_wait_latency_us" + lb,
                   "Open-loop admission wait: dequeue - scheduled arrival")
        .Merge(queue_wait_hist);
    registry
        .Histogram("jecb_replay_service_latency_us" + lb,
                   "Open-loop service: completion - admission dequeue")
        .Merge(service_hist);
  }
  if (transport_rtt_hist.count > 0) {
    registry
        .Histogram("jecb_transport_rtt_us" + lb,
                   "Wire request->response latency, all shards merged")
        .Merge(transport_rtt_hist);
  }
  if (exchange_fanout_hist.count > 0) {
    registry
        .Histogram("jecb_exchange_fanout" + lb,
                   "Distinct remote source shards per assembled read set")
        .Merge(exchange_fanout_hist);
  }
  for (const ShardReport& s : shards) {
    const std::string slb = "{label=\"" + JsonEscape(label) + "\",shard=\"" +
                            std::to_string(s.shard) + "\"}";
    registry.Counter("jecb_shard_local_txns_total" + slb, "Local txns per shard")
        .store(s.local_txns, std::memory_order_relaxed);
    registry
        .Counter("jecb_shard_dist_participations_total" + slb,
                 "2PC participations per shard")
        .store(s.dist_participations, std::memory_order_relaxed);
    registry.Counter("jecb_shard_busy_us_total" + slb, "Simulated busy time")
        .store(s.busy_us, std::memory_order_relaxed);
    registry.Gauge("jecb_shard_availability" + slb, "1 - down / attempts")
        .store(s.availability(), std::memory_order_relaxed);
    if (s.rtt_count > 0) {
      registry
          .Counter("jecb_shard_transport_rtt_count" + slb,
                   "Wire round trips against this shard")
          .store(s.rtt_count, std::memory_order_relaxed);
      registry
          .Gauge("jecb_shard_transport_rtt_p99_us" + slb,
                 "p99 wire request->response latency")
          .store(s.rtt_p99_us, std::memory_order_relaxed);
    }
    if (s.exchange_tuples_out > 0) {
      registry
          .Counter("jecb_shard_exchange_tuples_out_total" + slb,
                   "Exchange rows this shard owned and shipped")
          .store(s.exchange_tuples_out, std::memory_order_relaxed);
      registry
          .Counter("jecb_shard_exchange_bytes_out_total" + slb,
                   "Encoded bytes of exchange rows this shard shipped")
          .store(s.exchange_bytes_out, std::memory_order_relaxed);
    }
    if (s.pinned_cpu >= 0) {
      registry
          .Gauge("jecb_shard_pinned_cpu" + slb,
                 "Logical cpu the shard worker/server was pinned to")
          .store(static_cast<double>(s.pinned_cpu),
                 std::memory_order_relaxed);
    }
    if (s.ctx_voluntary + s.ctx_involuntary > 0) {
      registry
          .Counter("jecb_shard_ctx_voluntary_total" + slb,
                   "Voluntary context switches of the shard worker/server")
          .store(s.ctx_voluntary, std::memory_order_relaxed);
      registry
          .Counter("jecb_shard_ctx_involuntary_total" + slb,
                   "Involuntary context switches of the shard worker/server")
          .store(s.ctx_involuntary, std::memory_order_relaxed);
    }
  }
}

std::string ReplayReport::ToPrometheus() const {
  MetricsRegistry registry;
  PublishTo(registry);
  return registry.RenderPrometheus();
}

std::string ReplayReport::ToAscii() const {
  AsciiTable summary({"metric", "value"});
  summary.AddRow({"label", label});
  summary.AddRow({"transport", std::string(TransportKindName(transport))});
  summary.AddRow({"partitions", std::to_string(num_partitions)});
  summary.AddRow({"total_txns", std::to_string(total_txns)});
  summary.AddRow({"committed", std::to_string(committed)});
  summary.AddRow({"failed", std::to_string(failed)});
  summary.AddRow({"distributed_fraction", FormatDouble(distributed_fraction(), 4)});
  summary.AddRow({"throughput_tps", FormatDouble(throughput_tps, 0)});
  summary.AddRow({"goodput_tps", FormatDouble(goodput_tps, 0)});
  summary.AddRow({"wall_seconds", FormatDouble(wall_seconds, 3)});
  summary.AddRow({"local_p50/p95/p99_us",
                  FormatDouble(local.p50_us, 1) + " / " +
                      FormatDouble(local.p95_us, 1) + " / " +
                      FormatDouble(local.p99_us, 1)});
  summary.AddRow({"dist_p50/p95/p99_us",
                  FormatDouble(distributed.p50_us, 1) + " / " +
                      FormatDouble(distributed.p95_us, 1) + " / " +
                      FormatDouble(distributed.p99_us, 1)});
  if (open_loop()) {
    summary.AddRow({"target/offered_tps", FormatDouble(target_tps, 0) + " / " +
                                              FormatDouble(offered_tps, 0)});
    summary.AddRow({"shed", std::to_string(shed)});
    summary.AddRow({"sojourn_p50/p95/p99_us",
                    FormatDouble(sojourn.p50_us, 1) + " / " +
                        FormatDouble(sojourn.p95_us, 1) + " / " +
                        FormatDouble(sojourn.p99_us, 1)});
    summary.AddRow({"queue_wait/service_p99_us",
                    FormatDouble(queue_wait.p99_us, 1) + " / " +
                        FormatDouble(service.p99_us, 1)});
  }
  {
    std::string topo = std::to_string(topology.cpus) + " cpus / " +
                       std::to_string(topology.physical_cores) + " cores / " +
                       std::to_string(topology.numa_nodes) + " numa (" +
                       (topology.from_sysfs ? "sysfs" : "fallback") +
                       (topology.pinned ? ", pinned" : "") + ")";
    summary.AddRow({"topology", topo});
    if (topology.perf_available) {
      summary.AddRow({"cache_misses/instructions",
                      std::to_string(topology.cache_misses) + " / " +
                          std::to_string(topology.instructions)});
    }
  }
  if (exchange_txns > 0) {
    summary.AddRow({"exchange_tuples",
                    std::to_string(exchange_tuples) + " (" +
                        std::to_string(exchange_remote_tuples) + " remote)"});
    summary.AddRow({"exchange_bytes",
                    std::to_string(exchange_bytes) + " (" +
                        std::to_string(exchange_remote_bytes) + " remote)"});
    summary.AddRow({"exchange_batches", std::to_string(exchange_batches)});
    summary.AddRow({"exchange_digest", std::to_string(exchange_digest)});
  }
  if (!shard_exits.empty()) {
    summary.AddRow({"abnormal_shard_exits",
                    std::to_string(abnormal_shard_exits())});
  }
  if (transport != TransportKind::kInProcess) {
    summary.AddRow({"wire_messages",
                    std::to_string(transport_counters.messages_sent) + " out / " +
                        std::to_string(transport_counters.messages_received) +
                        " in"});
    summary.AddRow({"wire_bytes",
                    std::to_string(transport_counters.bytes_sent) + " out / " +
                        std::to_string(transport_counters.bytes_received) + " in"});
    summary.AddRow(
        {"wire_faults", std::to_string(transport_counters.wire_drops) +
                            " drop / " +
                            std::to_string(transport_counters.wire_delays) +
                            " delay / " +
                            std::to_string(transport_counters.wire_duplicates) +
                            " dup / " +
                            std::to_string(transport_counters.reconnects) +
                            " reconnect"});
    summary.AddRow({"rtt_p50/p95/p99_us",
                    FormatDouble(transport_rtt.p50_us, 1) + " / " +
                        FormatDouble(transport_rtt.p95_us, 1) + " / " +
                        FormatDouble(transport_rtt.p99_us, 1)});
  }
  AsciiTable per_shard({"shard", "tuples", "local", "dist", "busy_us", "avail",
                        "p50_us", "p95_us", "p99_us", "rtt_p99_us", "exch_out",
                        "cpu", "ctxsw"});
  for (const ShardReport& s : shards) {
    per_shard.AddRow({std::to_string(s.shard), std::to_string(s.stored_tuples),
                      std::to_string(s.local_txns),
                      std::to_string(s.dist_participations),
                      std::to_string(s.busy_us), FormatDouble(s.availability(), 3),
                      FormatDouble(s.p50_us, 1), FormatDouble(s.p95_us, 1),
                      FormatDouble(s.p99_us, 1), FormatDouble(s.rtt_p99_us, 1),
                      std::to_string(s.exchange_tuples_out),
                      s.pinned_cpu >= 0 ? std::to_string(s.pinned_cpu) : "-",
                      std::to_string(s.ctx_voluntary + s.ctx_involuntary)});
  }
  return summary.ToString() + "\n" + per_shard.ToString();
}

ReplayReport Replay(const Database& db, const DatabaseSolution& solution,
                    const Trace& trace, const RuntimeOptions& options,
                    std::string label) {
  TraceRecorder& rec = TraceRecorder::Default();
  // Phase A (single-threaded): resolve placements — this also warms the
  // solution's per-tuple memo caches so the parallel replay phase is pure
  // cache hits — and materialize the shard layout.
  std::vector<ClassifiedTxn> classified = ClassifyTrace(db, solution, trace);
  const uint64_t layout_ts = rec.enabled() ? rec.NowUs() : 0;
  ShardedDatabase sharded(db, solution);
  if (rec.enabled()) {
    rec.Span("runtime", "replay.shard_layout", layout_ts,
             rec.NowUs() - layout_ts, "shards",
             static_cast<int64_t>(sharded.num_shards()));
  }

  // Arena-backed encoded-row store: built single-threaded, BEFORE the
  // transport forks, so shard-server children inherit it copy-on-write and
  // every backend serves exchange reads from the same arena pages instead
  // of re-encoding rows per access.
  if (options.arena_tuples) sharded.BuildEncodedRows();

  RuntimeMetrics metrics(sharded.num_shards());
  std::unique_ptr<Transport> transport = MakeTransport(sharded, options, &metrics);
  // Start() must precede client threads: the socket backends fork their
  // shard-server processes here, and the children must never inherit a
  // multi-threaded address space.
  Status started = transport->Start();
  if (!started.ok()) {
    // A degraded replay would silently report wrong numbers; die loudly.
    std::fprintf(stderr, "jecb: replay backend failed to start (%s): %s\n",
                 std::string(TransportKindName(options.transport)).c_str(),
                 started.ToString().c_str());
    std::abort();
  }

  // Hardware counters bracket the execution window only. Started after the
  // fork (shard children are excluded; inherit covers the client threads
  // spawned below) and stopped before Drain(). Zero readings when the
  // kernel refuses perf_event_open.
  PerfCounters perf;

  // Phase B: run the classified trace. Closed loop (the default): clients
  // race through the trace, each blocking on its own completions. Open loop
  // (target_tps > 0): a deterministic arrival schedule offers load
  // independent of completions, shedding at a full admission queue — see
  // runtime/load_gen.h.
  //
  // Both shapes stop the wall clock at the LAST TRANSACTION COMPLETION, not
  // at thread join: client join and backend teardown cost must never
  // deflate throughput.
  const int num_clients = std::max(options.num_clients, 1);
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t wall_us = 0;
  if (options.target_tps > 0.0) {
    // One session per executor thread, created up front (sessions are not
    // thread-safe; executor ids are stable per thread), destroyed before
    // Drain() so their wire counters fold into the transport first.
    std::vector<std::unique_ptr<TransportSession>> sessions;
    sessions.reserve(static_cast<size_t>(num_clients));
    for (int c = 0; c < num_clients; ++c) {
      sessions.push_back(transport->NewSession(c));
    }
    JECB_SPAN2("runtime", "replay.open_loop", "clients", num_clients, "txns",
               static_cast<int64_t>(classified.size()));
    perf.Start();
    OpenLoopResult ol = RunOpenLoop(
        options, classified.size(), t0,
        [&](int executor_id, size_t i) {
          const ClassifiedTxn& ct = classified[i];
          if (ct.RequiresTwoPhaseCommit()) {
            sessions[static_cast<size_t>(executor_id)]->ExecuteDistributed(ct);
          } else {
            sessions[static_cast<size_t>(executor_id)]->ExecuteLocal(ct);
          }
        },
        &metrics);
    perf.Stop();
    sessions.clear();
    wall_us = ol.last_completion_us;
  } else {
    std::atomic<size_t> next{0};
    std::atomic<uint64_t> last_done_us{0};
    auto run_client = [&](int client_id) {
      std::unique_ptr<TransportSession> session =
          transport->NewSession(client_id);
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= classified.size()) break;
        const ClassifiedTxn& ct = classified[i];
        if (ct.RequiresTwoPhaseCommit()) {
          session->ExecuteDistributed(ct);
        } else {
          session->ExecuteLocal(ct);
        }
      }
      // This client's last completion is now; publish it so the wall clock
      // can stop at the run-wide last commit instead of at join.
      uint64_t done = ElapsedUs(t0);
      uint64_t prev = last_done_us.load(std::memory_order_relaxed);
      while (prev < done && !last_done_us.compare_exchange_weak(
                                prev, done, std::memory_order_relaxed)) {
      }
      // The session dies with this scope, folding its wire counters into the
      // transport before Drain() snapshots them.
    };
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(num_clients));
    {
      JECB_SPAN2("runtime", "replay.run", "clients", num_clients, "txns",
                 static_cast<int64_t>(classified.size()));
      perf.Start();
      for (int c = 0; c < num_clients; ++c) clients.emplace_back(run_client, c);
      for (std::thread& c : clients) c.join();
      perf.Stop();
    }
    wall_us = last_done_us.load(std::memory_order_relaxed);
  }
  double wall = static_cast<double>(wall_us) / 1e6;

  // Graceful shutdown, strictly ordered: clients joined above -> Drain()
  // quiesces the backend (queues drain and workers join in-process; shard
  // processes serve their final frames, ship their stats and get reaped
  // over sockets) -> only THEN the metrics snapshot. A snapshot taken any
  // earlier could miss completions still in flight inside the backend.
  {
    JECB_SPAN("runtime", "replay.drain");
    transport->Drain();
  }

  // Phase C: one quiesced snapshot feeds every field of the report, so no
  // renderer can observe a counter from a different moment.
  JECB_SPAN("runtime", "replay.snapshot");
  MetricsSnapshot snap = metrics.Snapshot();
  TransportReport treport = transport->Report();
  ReplayReport report;
  report.label = std::move(label);
  report.num_partitions = sharded.num_shards();
  report.total_txns = trace.size();
  report.committed = snap.committed;
  report.distributed_committed = snap.distributed_committed;
  report.residency_faults = snap.residency_faults;
  report.failed = snap.failed;
  report.aborts = snap.aborts;
  report.retries = snap.retries;
  report.prepare_rejects = snap.prepare_rejects;
  report.coordinator_timeouts = snap.coordinator_timeouts;
  report.shard_down_aborts = snap.shard_down_aborts;
  report.stalls_injected = snap.stalls_injected;
  report.wall_seconds = wall;
  report.goodput_tps =
      wall > 0.0 ? static_cast<double>(report.committed) / wall : 0.0;
  report.throughput_tps =
      wall > 0.0
          ? static_cast<double>(report.committed + report.failed) / wall
          : 0.0;
  report.replication_factor = sharded.ReplicationFactor();
  report.storage_skew = sharded.StorageSkew();
  report.local_hist = snap.local_latency;
  report.distributed_hist = snap.distributed_latency;
  report.retry_hist = snap.retry_latency;
  report.local = SnapshotLatency(report.local_hist);
  report.distributed = SnapshotLatency(report.distributed_hist);
  report.retry = SnapshotLatency(report.retry_hist);
  report.target_tps = options.target_tps;
  report.shed = snap.shed;
  if (report.open_loop() && wall > 0.0) {
    report.offered_tps = static_cast<double>(report.total_txns) / wall;
  }
  report.sojourn_hist = snap.sojourn_latency;
  report.queue_wait_hist = snap.queue_wait_latency;
  report.service_hist = snap.service_latency;
  report.sojourn = SnapshotLatency(report.sojourn_hist);
  report.queue_wait = SnapshotLatency(report.queue_wait_hist);
  report.service = SnapshotLatency(report.service_hist);
  {
    const CpuTopology topo = DetectCpuTopology();
    report.topology.cpus = topo.logical_cpus();
    report.topology.physical_cores = topo.physical_cores;
    report.topology.numa_nodes = topo.numa_nodes;
    report.topology.smt = topo.smt;
    report.topology.from_sysfs = topo.from_sysfs;
    report.topology.pinned = options.pin_threads;
    report.topology.perf_available = perf.available();
    report.topology.cache_misses = perf.cache_misses();
    report.topology.instructions = perf.instructions();
  }
  report.transport = treport.kind;
  report.transport_counters = treport.counters;
  report.transport_rtt_hist = treport.rtt;
  report.transport_rtt = SnapshotLatency(report.transport_rtt_hist);
  report.exchange_txns = snap.exchange_txns;
  report.exchange_tuples = snap.exchange_tuples;
  report.exchange_bytes = snap.exchange_bytes;
  report.exchange_remote_tuples = snap.exchange_remote_tuples;
  report.exchange_remote_bytes = snap.exchange_remote_bytes;
  report.exchange_batches = snap.exchange_batches;
  report.exchange_digest = snap.exchange_digest;
  report.exchange_fanout_hist = snap.exchange_fanout;
  report.shard_exits = treport.shard_exits;
  report.shards.reserve(sharded.num_shards());
  for (int32_t s = 0; s < sharded.num_shards(); ++s) {
    const ShardMetricsSnapshot& sm = snap.shards[s];
    ShardReport sr;
    sr.shard = s;
    sr.stored_tuples = sharded.shard_tuples(s);
    sr.local_txns = sm.local_txns;
    sr.dist_participations = sm.dist_participations;
    sr.busy_us = sm.busy_us;
    sr.participation_attempts = sm.participation_attempts;
    sr.stalls = sm.stalls;
    sr.prepare_rejects = sm.prepare_rejects;
    sr.down_events = sm.down_events;
    sr.p50_us = sm.latency.Quantile(0.50);
    sr.p95_us = sm.latency.Quantile(0.95);
    sr.p99_us = sm.latency.Quantile(0.99);
    sr.exchange_tuples_out = sm.exchange_tuples_out;
    sr.exchange_bytes_out = sm.exchange_bytes_out;
    sr.pinned_cpu = sm.pinned_cpu;
    sr.ctx_voluntary = sm.ctx_voluntary;
    sr.ctx_involuntary = sm.ctx_involuntary;
    if (static_cast<size_t>(s) < treport.shard_rtt.size()) {
      const HistogramData& rtt = treport.shard_rtt[static_cast<size_t>(s)];
      sr.rtt_count = rtt.count;
      sr.rtt_p50_us = rtt.Quantile(0.50);
      sr.rtt_p99_us = rtt.Quantile(0.99);
    }
    report.shards.push_back(sr);
  }
  return report;
}

}  // namespace jecb
