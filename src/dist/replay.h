// Trace replay driver: classifies every trace transaction against a
// solution, materializes the shard layout, and replays the workload through
// an execution backend (in-process worker pool, or forked shard-server
// processes over real sockets — see dist/transport.h) with closed-loop
// client threads. The report carries throughput, the measured distributed
// fraction (definitionally equal to the static evaluator's), per-shard load
// and latency quantiles, wire-level transport accounting, and JSON /
// Prometheus / ASCII exports for downstream plotting.
//
// Shutdown ordering (the contract every backend honors): client threads
// join first, then Transport::Drain() quiesces the backend — in-process
// queues drain and workers join; shard processes serve their last frames,
// report their counters and exit — and only then is the metrics snapshot
// taken. No late completion can ever be missing from the report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/transport.h"
#include "obs/histogram.h"
#include "partition/solution.h"
#include "runtime/executor.h"
#include "storage/database.h"
#include "trace/trace.h"

namespace jecb {

class MetricsRegistry;

/// Resolves each transaction's participant shards and static classification.
/// Single-threaded by design: it warms the solution's per-tuple memo caches
/// before any worker thread runs, so the replay phase is pure cache hits.
std::vector<ClassifiedTxn> ClassifyTrace(const Database& db,
                                         const DatabaseSolution& solution,
                                         const Trace& trace);

/// Snapshot of one shard after a replay.
struct ShardReport {
  int32_t shard = 0;
  uint64_t stored_tuples = 0;
  uint64_t local_txns = 0;
  uint64_t dist_participations = 0;
  uint64_t busy_us = 0;
  uint64_t participation_attempts = 0;
  uint64_t stalls = 0;
  uint64_t prepare_rejects = 0;
  uint64_t down_events = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  /// Wire request->response latency against this shard's server (socket
  /// backends only; zero in-process).
  uint64_t rtt_count = 0;
  double rtt_p50_us = 0.0;
  double rtt_p99_us = 0.0;
  /// Exchange rows this shard OWNED and shipped to other shards' read-set
  /// assemblies (backend-invariant: the in-process backend accounts the
  /// same rows it would have shipped).
  uint64_t exchange_tuples_out = 0;
  uint64_t exchange_bytes_out = 0;
  /// Topology block (pin_threads): logical cpu the shard's worker thread or
  /// forked server process ran pinned to (-1 = unpinned), plus its getrusage
  /// context-switch counts. Timing facts — never in OutcomeSignature().
  int32_t pinned_cpu = -1;
  uint64_t ctx_voluntary = 0;
  uint64_t ctx_involuntary = 0;

  /// Fraction of prepare attempts that found the shard reachable; 1.0 when
  /// the shard was never asked to participate (vacuously available).
  double availability() const {
    return participation_attempts == 0
               ? 1.0
               : 1.0 - static_cast<double>(down_events) /
                           static_cast<double>(participation_attempts);
  }
};

/// Snapshot of one latency distribution after a replay.
struct LatencyReport {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// CPU-topology and hardware-counter facts about the machine the replay ran
/// on (common/topology.h). Purely descriptive: nothing here may influence
/// outcomes, so none of it enters OutcomeSignature(). The perf fields are
/// zero whenever the kernel refuses perf_event_open (unprivileged
/// containers, CI), keeping deterministic-output tests stable.
struct TopologyReport {
  int32_t cpus = 0;
  int32_t physical_cores = 0;
  int32_t numa_nodes = 0;
  bool smt = false;
  bool from_sysfs = false;  ///< false = hardware_concurrency() fallback
  bool pinned = false;      ///< RuntimeOptions::pin_threads was requested
  bool perf_available = false;
  uint64_t cache_misses = 0;
  uint64_t instructions = 0;
};

/// Outcome of one replay run.
struct ReplayReport {
  std::string label;
  int32_t num_partitions = 0;
  uint64_t total_txns = 0;
  uint64_t committed = 0;
  uint64_t distributed_committed = 0;
  uint64_t residency_faults = 0;
  // Fault/recovery outcomes; all zero without an active FaultPlan.
  // Invariants: committed + failed == total_txns, aborts == retries + failed.
  uint64_t failed = 0;
  uint64_t aborts = 0;
  uint64_t retries = 0;
  uint64_t prepare_rejects = 0;
  uint64_t coordinator_timeouts = 0;
  uint64_t shard_down_aborts = 0;
  uint64_t stalls_injected = 0;
  /// Wall clock of the execution window: epoch -> last transaction
  /// completion, on both loop shapes. Backend teardown (queue drain, thread
  /// join, shard-process reaping) is deliberately excluded so throughput
  /// never depends on shutdown cost.
  double wall_seconds = 0.0;
  /// Processed rate: (committed + failed) / wall.
  double throughput_tps = 0.0;
  /// Useful-work rate: committed / wall. Equals throughput_tps when no
  /// faults are injected; the fault-tolerance bench compares this.
  double goodput_tps = 0.0;
  double replication_factor = 1.0;
  double storage_skew = 0.0;
  LatencyReport local;
  LatencyReport distributed;
  LatencyReport retry;  ///< committed txns that needed >= 1 retry

  /// Open-loop driver block (runtime/load_gen.h); all zero in closed-loop
  /// mode. Conservation invariant: total_txns == committed + failed + shed.
  /// Sojourn is measured from the *scheduled* arrival, so admission backlog
  /// shows up as queue_wait instead of vanishing.
  double target_tps = 0.0;   ///< requested offered load (0 = closed loop)
  double offered_tps = 0.0;  ///< measured: total_txns / wall
  uint64_t shed = 0;         ///< arrivals dropped at a full admission queue
  LatencyReport sojourn;     ///< completion - scheduled arrival
  LatencyReport queue_wait;  ///< admission dequeue - scheduled arrival
  LatencyReport service;     ///< completion - admission dequeue
  HistogramData sojourn_hist;
  HistogramData queue_wait_hist;
  HistogramData service_hist;

  /// Machine/topology facts (pin_threads, perf counters); see TopologyReport.
  TopologyReport topology;

  bool open_loop() const { return target_tps > 0.0; }
  /// Full bucket data behind the summaries above, kept so renderers
  /// (Prometheus histograms) and aggregation across runs never have to
  /// recompute from live atomics. Everything in this report comes from one
  /// RuntimeMetrics::Snapshot() taken after workers joined, so ToJson(),
  /// ToPrometheus(), and ToAscii() always agree with each other.
  HistogramData local_hist;
  HistogramData distributed_hist;
  HistogramData retry_hist;
  std::vector<ShardReport> shards;

  /// Exchange-style tuple routing totals (runtime/exchange.h). All
  /// backend-invariant: every counter and the digest are computed by
  /// BuildExchangeOutcome from the committed read sets alone, so they match
  /// bit-for-bit across inproc/unix/tcp at any client count. Deliberately
  /// NOT folded into OutcomeSignature() — the parity tests compare
  /// exchange_digest separately so a payload bug is distinguishable from an
  /// outcome bug.
  uint64_t exchange_txns = 0;
  uint64_t exchange_tuples = 0;
  uint64_t exchange_bytes = 0;
  uint64_t exchange_remote_tuples = 0;
  uint64_t exchange_remote_bytes = 0;
  uint64_t exchange_batches = 0;
  uint64_t exchange_digest = 0;
  /// Distinct remote source shards per assembled read set.
  HistogramData exchange_fanout_hist;

  /// Per-shard child process exit statuses (socket backends only, recorded
  /// by the reap ladder; empty in-process).
  std::vector<ShardExitStatus> shard_exits;

  /// Shards whose child process did not exit cleanly (nonzero code, killed
  /// by a signal, or needed SIGKILL). Benches fail the run on this being
  /// nonzero: a shard that died in a TransportPanic abort must never look
  /// like a healthy replay.
  uint64_t abnormal_shard_exits() const {
    uint64_t n = 0;
    for (const ShardExitStatus& e : shard_exits) {
      if (e.shard >= 0 && !e.clean()) ++n;
    }
    return n;
  }

  /// Which backend executed the replay, its wire-level accounting, and the
  /// merged request->response latency distribution. All zero for the
  /// in-process backend; excluded from OutcomeSignature() by design (wire
  /// traffic differs between backends even when outcomes are identical).
  TransportKind transport = TransportKind::kInProcess;
  TransportCounters transport_counters;
  HistogramData transport_rtt_hist;
  LatencyReport transport_rtt;

  double distributed_fraction() const {
    return committed == 0 ? 0.0
                          : static_cast<double>(distributed_committed) /
                                static_cast<double>(committed);
  }

  /// Stable hash of every timing-independent outcome counter (commits,
  /// failures, aborts, retries, per-shard participation/fault counts —
  /// never latencies, wall time, or transport traffic). Because fault
  /// decisions are pure functions of (seed, txn id, attempt, shard), two
  /// replays of the same classified trace under the same FaultPlan produce
  /// the same signature at ANY client/thread count AND through ANY backend
  /// (in-process or socket, wire faults on or off) — the
  /// bit-reproducibility contract fault_injection_test, dist_runtime_test
  /// and bench/fault_tolerance assert.
  uint64_t OutcomeSignature() const;

  /// One self-contained JSON object (no trailing newline). The label is
  /// JSON-escaped, so arbitrary bench names cannot corrupt the document.
  std::string ToJson() const;

  /// Prometheus text exposition of this report: counters, gauges, and
  /// cumulative latency histograms, every series labeled {label="..."}.
  std::string ToPrometheus() const;

  /// Human-readable summary + per-shard AsciiTable.
  std::string ToAscii() const;

  /// Registers this report's series (counters, gauges, latency histograms,
  /// per-shard series with a shard label) in `registry` — used both by
  /// ToPrometheus() and to fold replay results into the process-wide
  /// MetricsRegistry::Default() for --metrics_out dumps.
  void PublishTo(MetricsRegistry& registry) const;
};

/// Replays `trace` against `solution` and returns the measured report.
/// `options.transport` selects the backend; the socket backends fork one
/// shard-server process per shard before any client thread starts and reap
/// them before returning. A backend that fails to start aborts loudly — a
/// silently degraded replay would report wrong numbers.
ReplayReport Replay(const Database& db, const DatabaseSolution& solution,
                    const Trace& trace, const RuntimeOptions& options,
                    std::string label = "replay");

}  // namespace jecb
