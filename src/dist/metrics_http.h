// Minimal live Prometheus scrape endpoint for the coordinator: a single
// background thread serving "GET /metrics" over TCP loopback while a replay
// runs. The default renderer concatenates the coordinator's own registry
// with the latest shard snapshots harvested into ClusterTelemetry, so one
// scrape sees the whole cluster (`jecb_*` series, shard-labeled by their
// senders). Anything that is not a well-formed GET of /metrics gets a 404;
// requests are handled one at a time (a scrape every few seconds, not a web
// server). Entirely out-of-band: serving scrapes never touches replay
// control flow.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "net/socket.h"

namespace jecb::dist {

class MetricsHttpServer {
 public:
  using Renderer = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer() { Stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, read back via port())
  /// and starts the serving thread. `renderer` produces the /metrics body;
  /// the default renders local registry + remote shard series.
  Status Start(uint16_t port, Renderer renderer = {});
  /// The bound port, valid after a successful Start().
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// Stops and joins the serving thread. Idempotent.
  void Stop();

 private:
  void Serve();

  net::Socket listener_;
  uint16_t port_ = 0;
  Renderer renderer_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

/// One-shot scrape client (tests, CI artifact capture): GETs
/// http://`host`:`port`/metrics and returns the response body on a 200.
Result<std::string> ScrapeMetricsOnce(uint16_t port,
                                      const std::string& host = "127.0.0.1");

}  // namespace jecb::dist
