#include "dist/wire_channel.h"

#include <cstdio>
#include <cstdlib>

#include "runtime/executor.h"

namespace jecb {

using net::Frame;
using net::MsgType;

void TransportPanic(const char* what, int32_t shard, const Status& status) {
  std::fprintf(stderr, "jecb: fatal transport error (%s, shard %d): %s\n",
               what, shard, status.ToString().c_str());
  std::abort();
}

void FaultyChannel::Configure(net::SocketAddr addr, int32_t peer_shard,
                              const FaultInjector* injector, bool wire_faults,
                              TransportCounters* counters, const char* what) {
  addr_ = std::move(addr);
  peer_ = peer_shard;
  injector_ = injector;
  wire_faults_ = wire_faults && injector != nullptr;
  counters_ = counters;
  what_ = what;
}

void FaultyChannel::Reset() {
  sock_.Close();
  in_ = net::FrameBuffer();
  send_seq_ = 0;
  connected_ = false;
}

bool FaultyChannel::EnsureConnected() {
  if (connected_) return false;
  Result<net::Socket> conn = Connect(addr_);
  if (!conn.ok()) TransportPanic(what_, peer_, conn.status());
  sock_ = std::move(conn).value();
  connected_ = true;
  return true;
}

void FaultyChannel::TouchForTxn(uint64_t txn_id) {
  const bool first_msg_of_txn = !has_txn_ || last_txn_id_ != txn_id;
  has_txn_ = true;
  last_txn_id_ = txn_id;
  if (!first_msg_of_txn || !wire_faults_ || !connected_) return;
  if (!injector_->WireDisconnects(txn_id, peer_)) return;
  // Tear the connection down between transactions only: the reconnect is
  // pure wire churn, invisible to 2PC outcomes by construction.
  Reset();
  counters_->reconnects += 1;
}

void FaultyChannel::RawSend(const std::string& bytes) {
  Status s = net::SendAll(sock_, bytes.data(), bytes.size());
  if (!s.ok()) TransportPanic(what_, peer_, s);
  counters_->messages_sent += 1;
  counters_->bytes_sent += bytes.size();
}

void FaultyChannel::SendWithFaults(MsgType type, const std::string& payload,
                                   uint64_t txn_id, uint32_t attempt) {
  const uint8_t kind = static_cast<uint8_t>(type);
  if (wire_faults_ && injector_->WireDelays(txn_id, attempt, peer_, kind)) {
    counters_->wire_delays += 1;
    SimulateNetworkDelay(injector_->plan().wire_delay_us);
  }
  const std::string bytes = net::EncodeFrame(type, ++send_seq_, payload);
  if (wire_faults_ && injector_->WireDrops(txn_id, attempt, peer_, kind)) {
    // The first copy is "lost on the wire": account it as sent, never write
    // it, wait out the retransmit timer, then send for real.
    counters_->wire_drops += 1;
    counters_->messages_sent += 1;
    counters_->bytes_sent += bytes.size();
    SimulateNetworkDelay(injector_->plan().wire_retransmit_us);
  }
  RawSend(bytes);
  if (wire_faults_ && injector_->WireDuplicates(txn_id, attempt, peer_, kind)) {
    // Same sequence number on purpose: the peer's dedup watermark drops it.
    counters_->wire_duplicates += 1;
    RawSend(bytes);
  }
}

Frame FaultyChannel::RecvAny() {
  char chunk[64 * 1024];
  Frame frame;
  for (;;) {
    net::FrameBuffer::NextResult res = in_.Next(&frame);
    if (res == net::FrameBuffer::NextResult::kFrame) {
      counters_->messages_received += 1;
      return frame;
    }
    if (res == net::FrameBuffer::NextResult::kCorrupt) {
      TransportPanic(what_, peer_, in_.error());
    }
    net::RecvSomeResult r = net::RecvSome(sock_, chunk, sizeof(chunk));
    if (r.n == 0) TransportPanic(what_, peer_, Status::Internal("peer closed"));
    if (r.n < 0 && !r.status.ok()) TransportPanic(what_, peer_, r.status);
    if (r.n > 0) {
      in_.Feed(chunk, static_cast<size_t>(r.n));
      counters_->bytes_received += static_cast<uint64_t>(r.n);
    }
  }
}

Frame FaultyChannel::RecvType(MsgType want) {
  for (;;) {
    Frame frame = RecvAny();
    if (frame.type == want) return frame;
    // Stray (late ack of an aborted attempt): skip.
  }
}

}  // namespace jecb
