#include "dist/transport.h"

#include "dist/socket_transport.h"

namespace jecb {

void TransportCounters::Merge(const TransportCounters& o) {
  messages_sent += o.messages_sent;
  messages_received += o.messages_received;
  bytes_sent += o.bytes_sent;
  bytes_received += o.bytes_received;
  reconnects += o.reconnects;
  wire_drops += o.wire_drops;
  wire_delays += o.wire_delays;
  wire_duplicates += o.wire_duplicates;
  dedup_drops += o.dedup_drops;
  shard_frames += o.shard_frames;
  shard_bytes += o.shard_bytes;
  exchange_requests += o.exchange_requests;
  exchange_batches += o.exchange_batches;
  exchange_tuples += o.exchange_tuples;
  exchange_bytes += o.exchange_bytes;
}

namespace {

/// Forwards to the shared executor/coordinator pair — the in-process
/// backend was already thread-safe, so every session is a thin view.
class InProcessSession : public TransportSession {
 public:
  InProcessSession(ShardExecutor* executor, TxnCoordinator* coordinator)
      : executor_(executor), coordinator_(coordinator) {}

  void ExecuteLocal(const ClassifiedTxn& txn) override {
    executor_->ExecuteLocal(txn);
  }
  void ExecuteDistributed(const ClassifiedTxn& txn) override {
    coordinator_->ExecuteDistributed(txn);
  }

 private:
  ShardExecutor* executor_;
  TxnCoordinator* coordinator_;
};

}  // namespace

std::unique_ptr<TransportSession> InProcessTransport::NewSession(int /*client_id*/) {
  return std::make_unique<InProcessSession>(&executor_, &coordinator_);
}

std::unique_ptr<Transport> MakeTransport(const ShardedDatabase& sharded,
                                         const RuntimeOptions& options,
                                         RuntimeMetrics* metrics) {
  if (options.transport == TransportKind::kInProcess) {
    return std::make_unique<InProcessTransport>(sharded, options, metrics);
  }
  return std::make_unique<SocketTransport>(sharded, options, metrics);
}

}  // namespace jecb
