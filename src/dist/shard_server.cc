#include "dist/shard_server.h"

#include <string>
#include <utility>

namespace jecb {

using net::EventLoop;
using net::Frame;
using net::MsgType;

ShardServer::ShardServer(int32_t shard_id, const ShardedDatabase& sharded,
                         const RuntimeOptions& options)
    : shard_id_(shard_id),
      sharded_(sharded),
      options_(options),
      injector_(options.faults),
      prepare_us_(options.local_work_us + options.lock_hold_us) {
  (void)sharded_;
}

void ShardServer::Reply(EventLoop& loop, int64_t peer, MsgType type,
                        const std::string& payload) {
  loop.Send(peer, type, ++reply_seq_, payload);
}

net::ShardStatsMsg ShardServer::FinalStats(const EventLoop& loop) const {
  net::ShardStatsMsg out = stats_;
  const net::EventLoopStats& ls = loop.stats();
  out.frames_received = ls.frames_received;
  out.frames_sent = ls.frames_sent;
  out.bytes_received = ls.bytes_received;
  out.bytes_sent = ls.bytes_sent;
  out.dedup_dropped = ls.dedup_dropped;
  out.peer_disconnects = ls.peer_disconnects;
  return out;
}

void ShardServer::HandleExecute(EventLoop& loop, int64_t peer,
                                const Frame& frame) {
  net::FragmentMsg frag;
  if (!frag.Decode(frame.payload)) {
    // Structurally invalid beyond what the CRC caught: the peer is confused,
    // not the wire. Drop it rather than guess at an answer.
    loop.ClosePeer(peer);
    return;
  }
  ++stats_.executed_local;
  SimulateCpuWork(options_.local_work_us);
  net::TxnRefMsg ack;
  ack.txn_id = frag.txn_id;
  ack.attempt = frag.attempt;
  Reply(loop, peer, MsgType::kExecuteAck, ack.Encode());
}

void ShardServer::HandlePrepare(EventLoop& loop, int64_t peer,
                                const Frame& frame) {
  net::FragmentMsg frag;
  if (!frag.Decode(frame.payload)) {
    loop.ClosePeer(peer);
    return;
  }
  ++stats_.prepares_served;

  net::VoteMsg vote;
  vote.txn_id = frag.txn_id;
  vote.attempt = frag.attempt;

  // Same decision coordinates, same injector, same plan as the coordinator's
  // in-process path — so this shard votes down/reject on exactly the
  // (txn, attempt) pairs TxnCoordinator::AttemptOnce would have.
  if (injector_.ShardDown(frag.txn_id, frag.attempt, shard_id_)) {
    // Down shards refuse before doing any work (no CPU burned, no hold) —
    // mirrors the in-process path checking ShardDown before taking the lock.
    vote.decision = net::VoteDecision::kDown;
    Reply(loop, peer, MsgType::kVote, vote.Encode());
    return;
  }

  SimulateCpuWork(prepare_us_);
  if (injector_.ShardStalls(frag.txn_id, frag.attempt, shard_id_)) {
    // The stall occupies the shard without burning CPU: this loop is the
    // shard's only worker, so sleeping here backpressures every other client
    // the same way the in-process stall sleeps under the shard lock.
    vote.stalled = 1;
    ++stats_.stalls_served;
    SimulateNetworkDelay(injector_.plan().stall_us);
  }
  if (injector_.PrepareRejected(frag.txn_id, frag.attempt, shard_id_)) {
    vote.decision = net::VoteDecision::kReject;
    Reply(loop, peer, MsgType::kVote, vote.Encode());
    return;
  }

  // Vote yes, then HOLD: block on this one peer until its coordinator
  // resolves the transaction. Every other connection queues in the kernel —
  // the real-wire equivalent of keeping the shard mutex across the vote
  // round trip.
  vote.decision = net::VoteDecision::kYes;
  Reply(loop, peer, MsgType::kVote, vote.Encode());

  Frame resolution;
  while (loop.NextFrom(peer, &resolution)) {
    if (resolution.type == MsgType::kCommit) {
      ++stats_.commits_applied;
      net::TxnRefMsg ack;
      ack.txn_id = frag.txn_id;
      ack.attempt = frag.attempt;
      Reply(loop, peer, MsgType::kCommitAck, ack.Encode());
      return;
    }
    if (resolution.type == MsgType::kAbort) {
      // Fire-and-forget from the coordinator (aborts release locks without a
      // round trip in the in-process backend too).
      ++stats_.aborts_observed;
      return;
    }
    // Anything else mid-hold is a stray; keep waiting for the resolution.
  }
  // Peer vanished (or we were stopped) while holding: presume abort, release.
  ++stats_.aborts_observed;
}

net::ShardStatsMsg ShardServer::Serve(net::Socket listener) {
  EventLoop loop(std::move(listener));
  int64_t peer = 0;
  Frame frame;
  while (loop.Next(&peer, &frame)) {
    switch (frame.type) {
      case MsgType::kHello: {
        net::HelloMsg hello;
        if (!hello.Decode(frame.payload) || hello.shard_id != shard_id_) {
          loop.ClosePeer(peer);
          break;
        }
        net::HelloAckMsg ack;
        ack.shard_id = shard_id_;
        ack.num_shards = sharded_.num_shards();
        Reply(loop, peer, MsgType::kHelloAck, ack.Encode());
        break;
      }
      case MsgType::kExecute:
        HandleExecute(loop, peer, frame);
        break;
      case MsgType::kPrepare:
        HandlePrepare(loop, peer, frame);
        break;
      case MsgType::kShutdown: {
        // Harvest counters BEFORE the stats reply so the reply reflects
        // everything up to and including the shutdown request itself.
        net::ShardStatsMsg final_stats = FinalStats(loop);
        Reply(loop, peer, MsgType::kShardStats, final_stats.Encode());
        loop.RequestStop();
        break;
      }
      default:
        // kCommit/kAbort outside a hold: a resolution for a transaction we
        // already released (e.g. after a coordinator-side timeout abort).
        // Nothing to do — the release already happened.
        break;
    }
  }
  return FinalStats(loop);
}

}  // namespace jecb
