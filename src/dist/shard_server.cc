#include "dist/shard_server.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "common/topology.h"
#include "dist/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"

namespace jecb {

using net::EventLoop;
using net::Frame;
using net::MsgType;

ShardServer::ShardServer(int32_t shard_id, const ShardedDatabase& sharded,
                         const RuntimeOptions& options,
                         std::vector<net::SocketAddr> data_addrs)
    : shard_id_(shard_id),
      sharded_(sharded),
      options_(options),
      injector_(options.faults),
      prepare_us_(options.local_work_us + options.lock_hold_us),
      exchange_on_(options.exchange_enabled && !data_addrs.empty()),
      node_(shard_id, sharded, options.exchange_batch_bytes) {
  if (exchange_on_) {
    client_.Configure(shard_id, std::move(data_addrs), &injector_,
                      options_.faults.wire_enabled());
  }
}

void ShardServer::Reply(EventLoop& loop, int64_t peer, MsgType type,
                        const std::string& payload) {
  loop.Send(peer, type, ++reply_seq_, payload);
}

void ShardServer::MergeExchangeStats(net::ShardStatsMsg& out) const {
  // Only valid after node_.Stop() (the join makes the node's counters
  // visible); the client is control-thread-local so its counters are ours.
  const ExchangeNode::Stats& ns = node_.stats();
  out.exchange_reqs_served = ns.reqs_served;
  out.exchange_batches_sent = ns.batches_sent + stream_batches_;
  out.exchange_tuples_sent = ns.tuples_sent + stream_tuples_;
  out.exchange_bytes_sent = ns.bytes_sent + stream_bytes_;
  out.frames_received += ns.loop.frames_received;
  out.frames_sent += ns.loop.frames_sent;
  out.bytes_received += ns.loop.bytes_received;
  out.bytes_sent += ns.loop.bytes_sent;
  out.dedup_dropped += ns.loop.dedup_dropped;
  out.peer_disconnects += ns.loop.peer_disconnects;

  const TransportCounters& cc = client_.counters();
  out.exchange_reqs_sent = cc.messages_sent;
  out.exchange_wire_drops = cc.wire_drops;
  out.exchange_wire_delays = cc.wire_delays;
  out.exchange_wire_duplicates = cc.wire_duplicates;
  out.exchange_reconnects = cc.reconnects;
}

net::ShardStatsMsg ShardServer::ControlStats(const EventLoop& loop) const {
  net::ShardStatsMsg out = stats_;
  const net::EventLoopStats& ls = loop.stats();
  out.frames_received = ls.frames_received;
  out.frames_sent = ls.frames_sent;
  out.bytes_received = ls.bytes_received;
  out.bytes_sent = ls.bytes_sent;
  out.dedup_dropped = ls.dedup_dropped;
  out.peer_disconnects = ls.peer_disconnects;
  return out;
}

net::ShardStatsMsg ShardServer::FinalStats(const EventLoop& loop) const {
  net::ShardStatsMsg out = ControlStats(loop);
  if (exchange_on_) MergeExchangeStats(out);
  // Topology tail: whole-process context switches (control + exchange
  // threads) and where — if anywhere — this child was pinned.
  const ContextSwitchCounts csw = ProcessContextSwitches();
  out.pinned_cpu = pinned_cpu_;
  out.ctx_voluntary = csw.voluntary;
  out.ctx_involuntary = csw.involuntary;
  return out;
}

void ShardServer::SendTelemetry(EventLoop& loop, int64_t peer,
                                const net::ShardStatsMsg& snapshot) {
  // Publish the protocol counters into the child's registry so the metrics
  // snapshot ships them. Snapshot-stores (not adds) keep periodic harvests
  // idempotent; the shard label makes every series cluster-unique when the
  // coordinator re-renders them.
  MetricsRegistry& m = MetricsRegistry::Default();
  const std::string label = "{shard=\"" + std::to_string(shard_id_) + "\"}";
  auto put = [&](const char* family, uint64_t v) {
    m.Counter(std::string(family) + label).store(v, std::memory_order_relaxed);
  };
  put("jecb_shard_executed_local_total", snapshot.executed_local);
  put("jecb_shard_prepares_served_total", snapshot.prepares_served);
  put("jecb_shard_commits_applied_total", snapshot.commits_applied);
  put("jecb_shard_aborts_observed_total", snapshot.aborts_observed);
  put("jecb_shard_stalls_served_total", snapshot.stalls_served);
  put("jecb_shard_frames_received_total", snapshot.frames_received);
  put("jecb_shard_frames_sent_total", snapshot.frames_sent);
  put("jecb_shard_bytes_received_total", snapshot.bytes_received);
  put("jecb_shard_bytes_sent_total", snapshot.bytes_sent);

  for (const net::TelemetryMsg& batch : dist::BuildTelemetryBatches(shard_id_)) {
    Reply(loop, peer, MsgType::kTelemetry, batch.Encode());
  }
}

void ShardServer::HandleExecute(EventLoop& loop, int64_t peer,
                                const Frame& frame) {
  net::FragmentMsg frag;
  if (!frag.Decode(frame.payload)) {
    // Structurally invalid beyond what the CRC caught: the peer is confused,
    // not the wire. Drop it rather than guess at an answer.
    loop.ClosePeer(peer);
    return;
  }
  ++stats_.executed_local;
  TraceRecorder& rec = TraceRecorder::Default();
  const bool traced =
      rec.enabled() && TxnTraceSampled(options_.faults.seed, frag.txn_id,
                                       options_.trace_sample_rate);
  const uint64_t t0 = traced ? rec.NowUs() : 0;
  SimulateCpuWork(options_.local_work_us);
  net::TxnRefMsg ack;
  ack.txn_id = frag.txn_id;
  ack.attempt = frag.attempt;
  Reply(loop, peer, MsgType::kExecuteAck, ack.Encode());
  if (traced) {
    rec.Span("shard", "shard.execute", t0, rec.NowUs() - t0, "txn",
             static_cast<int64_t>(frag.txn_id), "shard", shard_id_);
  }
}

void ShardServer::HandlePrepare(EventLoop& loop, int64_t peer,
                                const Frame& frame) {
  net::FragmentMsg frag;
  if (!frag.Decode(frame.payload)) {
    loop.ClosePeer(peer);
    return;
  }
  ++stats_.prepares_served;
  TraceRecorder& rec = TraceRecorder::Default();
  const bool traced =
      rec.enabled() && TxnTraceSampled(options_.faults.seed, frag.txn_id,
                                       options_.trace_sample_rate);
  const uint64_t prepare_t0 = traced ? rec.NowUs() : 0;

  net::VoteMsg vote;
  vote.txn_id = frag.txn_id;
  vote.attempt = frag.attempt;

  // Same decision coordinates, same injector, same plan as the coordinator's
  // in-process path — so this shard votes down/reject on exactly the
  // (txn, attempt) pairs TxnCoordinator::AttemptOnce would have.
  if (injector_.ShardDown(frag.txn_id, frag.attempt, shard_id_)) {
    // Down shards refuse before doing any work (no CPU burned, no hold) —
    // mirrors the in-process path checking ShardDown before taking the lock.
    vote.decision = net::VoteDecision::kDown;
    Reply(loop, peer, MsgType::kVote, vote.Encode());
    return;
  }

  SimulateCpuWork(prepare_us_);
  if (injector_.ShardStalls(frag.txn_id, frag.attempt, shard_id_)) {
    // The stall occupies the shard without burning CPU: this loop is the
    // shard's only worker, so sleeping here backpressures every other client
    // the same way the in-process stall sleeps under the shard lock.
    vote.stalled = 1;
    ++stats_.stalls_served;
    SimulateNetworkDelay(injector_.plan().stall_us);
  }
  if (injector_.PrepareRejected(frag.txn_id, frag.attempt, shard_id_)) {
    vote.decision = net::VoteDecision::kReject;
    Reply(loop, peer, MsgType::kVote, vote.Encode());
    return;
  }

  // Vote yes, then HOLD: block on this one peer until its coordinator
  // resolves the transaction. Every other connection queues in the kernel —
  // the real-wire equivalent of keeping the shard mutex across the vote
  // round trip.
  vote.decision = net::VoteDecision::kYes;
  Reply(loop, peer, MsgType::kVote, vote.Encode());
  if (traced) {
    rec.Span("shard", "shard.prepare", prepare_t0, rec.NowUs() - prepare_t0,
             "txn", static_cast<int64_t>(frag.txn_id), "shard", shard_id_);
  }
  const uint64_t hold_t0 = traced ? rec.NowUs() : 0;

  Frame resolution;
  while (loop.NextFrom(peer, &resolution)) {
    if (resolution.type == MsgType::kCommit) {
      ++stats_.commits_applied;
      if (traced) {
        rec.Span("shard", "shard.hold", hold_t0, rec.NowUs() - hold_t0, "txn",
                 static_cast<int64_t>(frag.txn_id), "shard", shard_id_);
      }
      // Exchange fires on the committing attempt only: the home shard's
      // prepare carried the full read set, so pull the remote rows now and
      // stream the assembly before the ack. Non-home participants (empty
      // exchange_reads... unless the txn reads nothing, in which case the
      // stream is just absent and the coordinator collects zero batches)
      // ack immediately.
      if (exchange_on_ && !frag.exchange_reads.empty()) {
        StreamAssembledReads(loop, peer, frag);
      }
      net::TxnRefMsg ack;
      ack.txn_id = frag.txn_id;
      ack.attempt = frag.attempt;
      Reply(loop, peer, MsgType::kCommitAck, ack.Encode());
      return;
    }
    if (resolution.type == MsgType::kAbort) {
      // Fire-and-forget from the coordinator (aborts release locks without a
      // round trip in the in-process backend too).
      ++stats_.aborts_observed;
      if (traced) {
        rec.Span("shard", "shard.hold", hold_t0, rec.NowUs() - hold_t0, "txn",
                 static_cast<int64_t>(frag.txn_id), "shard", shard_id_);
      }
      return;
    }
    // Anything else mid-hold is a stray; keep waiting for the resolution.
  }
  // Peer vanished (or we were stopped) while holding: presume abort, release.
  ++stats_.aborts_observed;
}

void ShardServer::StreamAssembledReads(EventLoop& loop, int64_t peer,
                                       const net::FragmentMsg& frag) {
  const std::vector<net::WireAccess>& reads = frag.exchange_reads;
  std::vector<ExchangeEntry> entries(reads.size());

  // Partition the read set by owner, preserving access order within each
  // owner. Rows this shard stores (own or replicated copies) materialize
  // locally; the rest are pulled from their owners' data planes in
  // ascending shard order.
  std::vector<std::vector<size_t>> remote_pos(
      static_cast<size_t>(sharded_.num_shards()));
  for (size_t i = 0; i < reads.size(); ++i) {
    TupleId t{static_cast<TableId>(reads[i].table),
              static_cast<RowId>(reads[i].row)};
    int32_t owner = sharded_.PrimaryShardOf(t);
    if (owner == kReplicated || owner == shard_id_) {
      // Locally stored rows: serve from the arena-backed encoded store when
      // it was built pre-fork (one copy, no per-value encode), else encode
      // from the copy-on-write snapshot. Same bytes either way.
      entries[i] = {t, sharded_.has_encoded_rows()
                           ? std::string(sharded_.EncodedRow(t))
                           : EncodeRowBytes(
                                 sharded_.db().table_data(t.table).row(t.row))};
    } else {
      remote_pos[static_cast<size_t>(owner)].push_back(i);
    }
  }
  for (int32_t owner = 0; owner < sharded_.num_shards(); ++owner) {
    const std::vector<size_t>& pos = remote_pos[static_cast<size_t>(owner)];
    if (pos.empty()) continue;
    std::vector<net::WireAccess> want;
    want.reserve(pos.size());
    for (size_t i : pos) want.push_back(reads[i]);
    std::vector<net::TupleBatchEntry> pulled =
        client_.Pull(owner, frag.txn_id, frag.attempt, want);
    for (size_t j = 0; j < pos.size(); ++j) {
      entries[pos[j]] = {TupleId{static_cast<TableId>(pulled[j].table),
                                 static_cast<RowId>(pulled[j].row)},
                         std::move(pulled[j].bytes)};
    }
  }

  // Stream the assembled read set (access order) to the coordinator. The
  // CommitAck the caller sends right after is the stream terminator, so an
  // empty-span stream needs no special casing coordinator-side.
  for (const net::TupleBatchMsg& batch :
       BuildTupleBatches(frag.txn_id, frag.attempt, shard_id_, entries,
                         options_.exchange_batch_bytes)) {
    ++stream_batches_;
    stream_tuples_ += batch.entries.size();
    for (const net::TupleBatchEntry& e : batch.entries) {
      stream_bytes_ += e.bytes.size();
    }
    Reply(loop, peer, MsgType::kTupleBatch, batch.Encode());
  }
}

net::ShardStatsMsg ShardServer::Serve(net::Socket listener,
                                      net::Socket data_listener) {
  if (options_.pin_threads) {
    // Pin the whole child to its shard's planned cpu NOW, while still
    // single-threaded: the exchange node thread spawned below inherits the
    // affinity mask. Every child computes the same deterministic plan from
    // the same topology, so shard i lands on plan[i] cluster-wide.
    std::vector<int32_t> plan =
        BuildPinPlan(DetectCpuTopology(), sharded_.num_shards());
    if (static_cast<size_t>(shard_id_) < plan.size() &&
        PinCurrentProcessToCpu(plan[shard_id_])) {
      pinned_cpu_ = plan[shard_id_];
    }
  }
  if (exchange_on_ && data_listener.valid()) {
    // The node thread is spawned here, AFTER fork (the child was
    // single-threaded at fork, which keeps sanitizers happy), and serves
    // the data plane for the whole control-loop lifetime.
    node_.Start(std::move(data_listener));
    // Peers' data listeners were all bound before fork, so these connects
    // cannot flake; established now, the steady-state pull path never pays
    // connection setup.
    client_.ConnectAll();
  }
  TraceRecorder::Default().SetThreadName("shard-" + std::to_string(shard_id_) +
                                         "/control");
  EventLoop loop(std::move(listener));
  int64_t peer = 0;
  Frame frame;
  while (loop.Next(&peer, &frame)) {
    switch (frame.type) {
      case MsgType::kHello: {
        net::HelloMsg hello;
        if (!hello.Decode(frame.payload) || hello.shard_id != shard_id_) {
          loop.ClosePeer(peer);
          break;
        }
        net::HelloAckMsg ack;
        ack.shard_id = shard_id_;
        ack.num_shards = sharded_.num_shards();
        // Clock sample for the peer's offset estimate (it timestamps the
        // Hello round trip on its own recorder clock).
        ack.now_us = TraceRecorder::Default().NowUs();
        Reply(loop, peer, MsgType::kHelloAck, ack.Encode());
        break;
      }
      case MsgType::kExecute:
        HandleExecute(loop, peer, frame);
        break;
      case MsgType::kPrepare:
        HandlePrepare(loop, peer, frame);
        break;
      case MsgType::kTelemetryReq:
        // Live harvest: drain the span ring + metrics snapshot to this
        // peer. Purely observational — no outcome counter moves.
        SendTelemetry(loop, peer, ControlStats(loop));
        break;
      case MsgType::kShutdown: {
        if (options_.debug_crash_on_shutdown_shard == shard_id_) {
          // Injected abnormal exit (tests): leave a postmortem dump and die
          // without the stats reply, exactly like a real crash after all
          // transactions completed.
          node_.Stop();
          DumpFlightRecorder("injected-crash");
          std::_Exit(3);
        }
        if (options_.debug_wedge_shard == shard_id_) {
          // Injected wedge (tests): ignore the shutdown request so the
          // parent's reap ladder escalates to SIGTERM, exercising the
          // flight recorder's signal path below.
          break;
        }
        // Stop the exchange node FIRST: Drain() only shuts shards down
        // after every client session is gone, so no exchange traffic can be
        // in flight — and the join makes the node's counters safe to fold
        // into the stats reply below.
        node_.Stop();
        // Harvest counters BEFORE the stats reply so the reply reflects
        // everything up to and including the shutdown request itself.
        net::ShardStatsMsg final_stats = FinalStats(loop);
        // Final telemetry flush rides in front of the stats reply: the
        // coordinator ingests kTelemetry frames until kShardStats arrives.
        if (options_.telemetry_harvest) {
          SendTelemetry(loop, peer, final_stats);
        }
        Reply(loop, peer, MsgType::kShardStats, final_stats.Encode());
        loop.RequestStop();
        break;
      }
      default:
        // kCommit/kAbort outside a hold: a resolution for a transaction we
        // already released (e.g. after a coordinator-side timeout abort).
        // Nothing to do — the release already happened.
        break;
    }
  }
  // SIGTERM path (no kShutdown frame): the node's loop saw the same
  // process-wide stop flag; join it before touching its counters.
  node_.Stop();
  if (net::StopFlagRaised()) {
    // Killed (reap-ladder SIGTERM, orphaned child): preserve the evidence.
    DumpFlightRecorder("sigterm");
  }
  return FinalStats(loop);
}

}  // namespace jecb
