#include "dist/telemetry.h"

#include <unistd.h>

#include <cstring>

namespace jecb::dist {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

size_t EventWireBytes(const net::TelemetryEvent& e) {
  return 45 + e.name.size() + e.cat.size() + e.arg1_name.size() +
         e.arg2_name.size();
}

net::TelemetryEvent ToWire(const CollectedEvent& ce) {
  const TraceEvent& e = ce.event;
  net::TelemetryEvent out;
  out.kind = static_cast<uint8_t>(e.kind);
  out.tid = ce.tid;
  out.ts_us = e.ts_us;
  out.dur_us = e.dur_us;
  if (e.name != nullptr) out.name = e.name;
  if (e.cat != nullptr) out.cat = e.cat;
  if (e.arg1_name != nullptr) {
    out.arg1_name = e.arg1_name;
    out.arg1 = e.arg1;
  }
  if (e.arg2_name != nullptr) {
    out.arg2_name = e.arg2_name;
    out.arg2 = e.arg2;
  }
  return out;
}

}  // namespace

std::vector<net::TelemetryMsg> BuildTelemetryBatches(int32_t shard,
                                                     TraceRecorder& recorder,
                                                     MetricsRegistry& metrics) {
  const std::vector<CollectedEvent> events = recorder.Drain();
  const uint32_t pid = static_cast<uint32_t>(getpid());

  std::vector<net::TelemetryMsg> out;
  net::TelemetryMsg cur;
  size_t cur_bytes = 0;
  auto flush = [&] {
    cur.pid = pid;
    cur.shard = shard;
    cur.batch_index = static_cast<uint32_t>(out.size());
    cur.last = 0;
    cur.now_us = recorder.NowUs();
    cur.dropped = recorder.dropped();
    out.push_back(std::move(cur));
    cur = net::TelemetryMsg();
    cur_bytes = 0;
  };
  for (const CollectedEvent& ce : events) {
    net::TelemetryEvent e = ToWire(ce);
    cur_bytes += EventWireBytes(e);
    cur.events.push_back(std::move(e));
    if (cur_bytes >= kTelemetryBatchBytes ||
        cur.events.size() >= kTelemetryBatchEvents) {
      flush();
    }
  }
  // The final batch (possibly empty of events) carries the metrics snapshot
  // and thread names.
  for (const MetricsRegistry::ScalarSample& s : metrics.SnapshotScalars()) {
    net::TelemetryMetric m;
    m.name = s.name;
    m.kind = s.is_gauge ? 1 : 0;
    m.value_bits = s.is_gauge ? DoubleBits(s.value) : s.count;
    cur.metrics.push_back(std::move(m));
  }
  cur.thread_names = recorder.ThreadNames();
  flush();
  out.back().last = 1;
  return out;
}

void IngestTelemetry(const net::TelemetryMsg& msg, int64_t clock_offset_us,
                     ClusterTelemetry& sink, TraceRecorder& interner) {
  RemoteProcessTelemetry batch;
  batch.pid = static_cast<int64_t>(msg.pid);
  batch.shard = msg.shard;
  if (msg.shard >= 0) batch.name = "shard-" + std::to_string(msg.shard);
  batch.clock_offset_us = clock_offset_us;
  batch.dropped = msg.dropped;
  batch.last_now_us = msg.now_us;
  batch.thread_names = msg.thread_names;
  batch.metrics.reserve(msg.metrics.size());
  for (const net::TelemetryMetric& m : msg.metrics) {
    MetricsRegistry::ScalarSample s;
    s.name = m.name;
    if (m.kind == 1) {
      s.is_gauge = true;
      s.value = BitsToDouble(m.value_bits);
    } else {
      s.count = m.value_bits;
    }
    batch.metrics.push_back(std::move(s));
  }
  batch.events.reserve(msg.events.size());
  for (const net::TelemetryEvent& e : msg.events) {
    CollectedEvent ce;
    ce.tid = e.tid;
    ce.event.kind = e.kind <= 2 ? static_cast<TraceEventKind>(e.kind)
                                : TraceEventKind::kInstant;
    ce.event.ts_us = e.ts_us;
    ce.event.dur_us = e.dur_us;
    ce.event.name = interner.Intern(e.name);
    ce.event.cat = interner.Intern(e.cat);
    if (!e.arg1_name.empty()) {
      ce.event.arg1_name = interner.Intern(e.arg1_name);
      ce.event.arg1 = e.arg1;
    }
    if (!e.arg2_name.empty()) {
      ce.event.arg2_name = interner.Intern(e.arg2_name);
      ce.event.arg2 = e.arg2;
    }
    batch.events.push_back(ce);
  }
  sink.Ingest(std::move(batch));
}

}  // namespace jecb::dist
