// Bridges the wire-level TelemetryMsg (src/net) and the in-process obs
// layer (src/obs), which are deliberately unaware of each other: the shard
// child drains its recorder + metrics registry into bounded TelemetryMsg
// batches here, and the coordinator converts decoded batches back into the
// ClusterTelemetry sink (re-interning event names, whose wire strings die
// with the payload).
#pragma once

#include <cstdint>
#include <vector>

#include "net/wire.h"
#include "obs/cluster_telemetry.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"

namespace jecb::dist {

/// Soft per-batch payload budget. Worst-case telemetry names are capped at
/// kMaxTelemetryStrBytes, but real span names are tens of bytes; flushing a
/// batch once its estimated encoding passes this keeps every frame far
/// below net::kMaxPayloadBytes.
inline constexpr size_t kTelemetryBatchBytes = 200 * 1024;
/// Hard per-batch event cap (stays well under net::kMaxTelemetryEntries).
inline constexpr size_t kTelemetryBatchEvents = 4096;

/// Shard-side harvest: drains every event the recorder has not shipped yet
/// (TraceRecorder::Drain watermark — periodic harvests never resend spans)
/// plus a scalar metrics snapshot, chunked into batches with increasing
/// batch_index; `last` is set on the final batch, which also carries the
/// metrics and thread-name table. Always returns at least one batch.
std::vector<net::TelemetryMsg> BuildTelemetryBatches(
    int32_t shard, TraceRecorder& recorder = TraceRecorder::Default(),
    MetricsRegistry& metrics = MetricsRegistry::Default());

/// Coordinator-side: converts one decoded batch and merges it into `sink`.
/// `clock_offset_us` is the sender's recorder clock minus the local one
/// (Hello handshake estimate). Event names are interned into `interner`.
void IngestTelemetry(const net::TelemetryMsg& msg, int64_t clock_offset_us,
                     ClusterTelemetry& sink = ClusterTelemetry::Default(),
                     TraceRecorder& interner = TraceRecorder::Default());

}  // namespace jecb::dist
