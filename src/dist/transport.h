// Transport: the seam between the replay driver and an execution backend.
// Replay() classifies the trace and spins up closed-loop clients; every
// transaction then goes through a TransportSession, which either forwards to
// the in-process executor/coordinator (the deterministic-test backend) or
// drives real 2PC message rounds to forked shard-server processes over
// sockets (dist/socket_transport.h). Both backends update the SAME
// RuntimeMetrics with the SAME accounting rules, which is what makes
// ReplayReport::OutcomeSignature() backend-invariant.
//
// Lifecycle contract (Replay() enforces the order):
//   Start() -> NewSession() per client thread -> sessions destroyed ->
//   Drain() -> metrics snapshot.
// Drain() must not return until every submitted transaction's counters are
// final and all backend resources (worker threads, shard processes, socket
// files) are released — the graceful-shutdown ordering that guarantees late
// completions are never dropped from the report.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/histogram.h"
#include "runtime/executor.h"
#include "runtime/fault_injector.h"
#include "runtime/metrics.h"
#include "runtime/sharded_database.h"
#include "runtime/txn_coordinator.h"

namespace jecb {

/// Wire-level accounting, all measured at the coordinator side of each
/// connection (plus shard-reported dedup/disconnect counts harvested at
/// shutdown). All zero for the in-process backend. Deliberately NOT part of
/// OutcomeSignature(): the signature is the cross-backend outcome oracle,
/// and transport traffic differs between backends by construction.
struct TransportCounters {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t reconnects = 0;
  uint64_t wire_drops = 0;       ///< injected drops (retransmitted)
  uint64_t wire_delays = 0;      ///< injected send delays
  uint64_t wire_duplicates = 0;  ///< injected duplicate sends
  uint64_t dedup_drops = 0;      ///< duplicates the receivers suppressed
  uint64_t shard_frames = 0;     ///< frames the shard servers processed
  uint64_t shard_bytes = 0;      ///< bytes the shard servers received
  // Exchange data plane (shard-to-shard pulls + home->coordinator batch
  // streams), harvested from the shards' ShardStatsMsg tails at shutdown.
  // Wire-level like everything else here: the backend-invariant exchange
  // accounting lives in RuntimeMetrics (jecb_exchange_*), not in these.
  uint64_t exchange_requests = 0;  ///< unique kExchangeReq served
  uint64_t exchange_batches = 0;   ///< kTupleBatch frames shards emitted
  uint64_t exchange_tuples = 0;    ///< rows shards materialized for peers
  uint64_t exchange_bytes = 0;     ///< encoded row bytes shards shipped

  void Merge(const TransportCounters& o);
};

/// What actually happened to one forked shard-server process at reap time.
/// `clean()` is the contract a healthy drain must meet: the child exited by
/// itself (before SIGKILL) with status 0. A SIGTERM that the child turned
/// into a clean exit still reports forced_term for visibility but stays
/// clean-able only via exit_code 0 — see ReapShard.
struct ShardExitStatus {
  int32_t shard = -1;
  bool exited = false;      ///< waitpid observed the child end
  int exit_code = -1;       ///< WEXITSTATUS when exited normally
  int term_signal = 0;      ///< WTERMSIG when signal-killed (0 otherwise)
  bool forced_term = false; ///< parent had to escalate to SIGTERM
  bool forced_kill = false; ///< parent had to escalate to SIGKILL
  /// Path of the flight-recorder dump the child wrote (empty when none).
  /// Written on SIGTERM-driven exits and injected crashes; deliberately not
  /// part of clean() — a postmortem is evidence, not a verdict.
  std::string postmortem_path;

  bool clean() const {
    return exited && exit_code == 0 && term_signal == 0 && !forced_kill;
  }
};

/// Snapshot of a transport after Drain(): identity, counters, and the
/// per-shard request->response latency distributions (merged into one
/// overall histogram via LatencyHistogram::Merge for the report summary).
struct TransportReport {
  TransportKind kind = TransportKind::kInProcess;
  TransportCounters counters;
  std::vector<HistogramData> shard_rtt;  ///< indexed by shard id
  HistogramData rtt;                     ///< all shards merged
  /// Per-shard process exit records (socket backends only; empty in-process).
  /// A non-clean() entry means a shard server crashed or had to be killed —
  /// bench/distributed_replay fails the run on it.
  std::vector<ShardExitStatus> shard_exits;

  bool real_wire() const { return kind != TransportKind::kInProcess; }
};

/// One client thread's handle onto the backend. Sessions are not
/// thread-safe; each closed-loop client owns exactly one.
class TransportSession {
 public:
  virtual ~TransportSession() = default;

  /// Runs a single-partition transaction to commit; blocks (closed loop).
  virtual void ExecuteLocal(const ClassifiedTxn& txn) = 0;

  /// Runs a multi-partition transaction through 2PC to commit or recorded
  /// failure, including retries and backoff.
  virtual void ExecuteDistributed(const ClassifiedTxn& txn) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Brings the backend up (spawns worker threads / shard processes).
  virtual Status Start() = 0;

  /// A session for one client thread. `client_id` identifies the client in
  /// handshakes and diagnostics. Only valid between Start() and Drain().
  virtual std::unique_ptr<TransportSession> NewSession(int client_id) = 0;

  /// Quiesces and tears down the backend: drains queues, joins workers,
  /// shuts down and reaps shard processes. Idempotent. Every counter is
  /// final once this returns — call it BEFORE RuntimeMetrics::Snapshot().
  virtual void Drain() = 0;

  /// Final transport accounting; meaningful after Drain().
  virtual TransportReport Report() const = 0;

  virtual TransportKind kind() const = 0;
};

/// Builds the backend selected by `options.transport`. The returned
/// transport borrows `sharded`, `options` and `metrics`, which must outlive
/// it. Socket backends fork their shard processes inside Start() — call it
/// before spawning any client thread so the children never inherit a
/// multi-threaded address space.
std::unique_ptr<Transport> MakeTransport(const ShardedDatabase& sharded,
                                         const RuntimeOptions& options,
                                         RuntimeMetrics* metrics);

/// The deterministic-test backend: wraps the per-shard worker pool and the
/// in-process 2PC coordinator, exactly the pre-distributed code path.
class InProcessTransport : public Transport {
 public:
  InProcessTransport(const ShardedDatabase& sharded,
                     const RuntimeOptions& options, RuntimeMetrics* metrics)
      : executor_(sharded, options, metrics),
        injector_(options.faults),
        coordinator_(&executor_, &injector_) {}

  Status Start() override {
    executor_.Start();
    return Status::OK();
  }

  std::unique_ptr<TransportSession> NewSession(int client_id) override;

  /// Closes the shard queues and joins every worker; queued transactions
  /// all execute before this returns (WorkQueue drains on Close).
  void Drain() override { executor_.Shutdown(); }

  TransportReport Report() const override {
    TransportReport r;
    r.kind = TransportKind::kInProcess;
    r.shard_rtt.resize(static_cast<size_t>(executor_.num_shards()));
    return r;
  }

  TransportKind kind() const override { return TransportKind::kInProcess; }

 private:
  ShardExecutor executor_;
  FaultInjector injector_;
  TxnCoordinator coordinator_;
};

}  // namespace jecb
