// ShardServer: the process that owns one shard of a ShardedDatabase and
// executes transaction fragments it receives over the wire. Replay()'s
// socket backend forks one of these per shard (the child inherits the
// immutable shard layout copy-on-write, so no database serialization is
// needed); the coordinator side talks to it through net/wire.h frames.
//
// Protocol state machine (per connection; see DESIGN.md "Distributed
// runtime" for the message flow diagrams):
//
//   Hello            -> HelloAck       identity + wire-version handshake
//   Execute(frag)    -> ExecuteAck     run a single-partition txn fragment
//   Prepare(frag)    -> Vote(yes)      run the shard-local prepare work,
//                       ... HOLD ...   then block this shard on that one
//   Commit           -> [TupleBatch*]  connection until the coordinator's
//                       CommitAck      commit/abort releases it; if this
//                       (or Abort)     shard is the txn's home and exchange
//                                      is on, the commit first pulls remote
//                                      read rows over the data plane and
//                                      streams the assembled read set back
//   Prepare(frag)    -> Vote(reject|down)   injected 2PC faults: no hold
//   Shutdown         -> ShardStats     reply final counters, stop serving
//
// Exchange data plane: each child also serves a second listener from a
// dedicated ExchangeNode thread (dist/exchange.h) and owns an ExchangeClient
// with channels to every peer's data listener, established at fork time.
// The control thread is the only user of the client; the node thread only
// reads immutable storage — the two never share mutable state, so the child
// stays data-race-free with exactly one deliberate synchronization point:
// Stop()'s join at shutdown.
//
// The hold is the distributed equivalent of the in-process backend holding a
// shard's mutex across the prepare/vote round trip: the server is a
// single-threaded event loop, so while it waits for one coordinator's
// commit, every other client of this shard queues — exactly how distributed
// transactions steal throughput from local ones (paper Fig. 1), now paid in
// real socket latency instead of a sleep constant.
//
// Deadlock freedom: coordinators prepare participants in ascending shard-id
// order. A holding shard waits only for its holder's commit/abort; that
// holder can only be waiting on votes from HIGHER-numbered shards, so the
// wait-for graph follows a strict total order and has no cycles — the same
// argument that makes the in-process lock order deadlock-free.
//
// Fault injection: the server rebuilds the deterministic FaultInjector from
// the same FaultPlan the coordinator holds, so its down/stall/reject
// decisions for (txn, attempt, shard) are bit-identical to the ones the
// in-process backend would have made — the foundation of the cross-backend
// OutcomeSignature oracle. SIGTERM/SIGINT set the event loop's stop flag,
// so an orphaned or force-killed server drains and exits cleanly.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/exchange.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/executor.h"
#include "runtime/fault_injector.h"
#include "runtime/sharded_database.h"

namespace jecb {

class ShardServer {
 public:
  /// `data_addrs[i]` is shard i's data-plane listener address; empty
  /// disables exchange (the control protocol then behaves exactly as PR 6).
  ShardServer(int32_t shard_id, const ShardedDatabase& sharded,
              const RuntimeOptions& options,
              std::vector<net::SocketAddr> data_addrs = {});

  /// Serves `listener` until a Shutdown frame or SIGTERM/SIGINT; when
  /// `data_listener` is valid it is served by the ExchangeNode thread for
  /// the same lifetime. Returns the final shard-side counters (also sent to
  /// the Shutdown peer).
  net::ShardStatsMsg Serve(net::Socket listener,
                           net::Socket data_listener = net::Socket());

 private:
  void HandleExecute(net::EventLoop& loop, int64_t peer, const net::Frame& frame);
  void HandlePrepare(net::EventLoop& loop, int64_t peer, const net::Frame& frame);
  /// Home-shard commit work: pull remote read rows over the data plane,
  /// stream the assembled read set (access order) to `peer` as kTupleBatch
  /// frames. The CommitAck the caller sends afterwards terminates the
  /// stream on the coordinator side.
  void StreamAssembledReads(net::EventLoop& loop, int64_t peer,
                            const net::FragmentMsg& frag);
  /// Folds exchange node/client accounting into `out`'s exchange tail.
  void MergeExchangeStats(net::ShardStatsMsg& out) const;
  /// Control-plane counters only — safe while the exchange node is live.
  net::ShardStatsMsg ControlStats(const net::EventLoop& loop) const;
  net::ShardStatsMsg FinalStats(const net::EventLoop& loop) const;
  /// Publishes `snapshot` into the child's metrics registry (shard-labeled)
  /// and streams the recorder drain + metrics snapshot to `peer` as
  /// kTelemetry batches. Used for both periodic harvests (kTelemetryReq)
  /// and the final pre-ShardStats flush at shutdown.
  void SendTelemetry(net::EventLoop& loop, int64_t peer,
                     const net::ShardStatsMsg& snapshot);

  /// Replies on `peer`, assigning the next server-side sequence number.
  void Reply(net::EventLoop& loop, int64_t peer, net::MsgType type,
             const std::string& payload);

  const int32_t shard_id_;
  const ShardedDatabase& sharded_;
  const RuntimeOptions options_;
  const FaultInjector injector_;
  const uint32_t prepare_us_;
  const bool exchange_on_;

  ExchangeNode node_;
  ExchangeClient client_;
  /// kTupleBatch frames streamed to coordinators over the control plane
  /// (the node counts its own data-plane batches separately).
  uint64_t stream_batches_ = 0;
  uint64_t stream_tuples_ = 0;
  uint64_t stream_bytes_ = 0;

  uint64_t reply_seq_ = 0;
  net::ShardStatsMsg stats_;
  /// Logical cpu this child pinned itself (and its exchange thread) to at
  /// Serve() entry; -1 when pinning is off or the kernel refused.
  int32_t pinned_cpu_ = -1;
};

}  // namespace jecb
