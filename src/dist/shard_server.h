// ShardServer: the process that owns one shard of a ShardedDatabase and
// executes transaction fragments it receives over the wire. Replay()'s
// socket backend forks one of these per shard (the child inherits the
// immutable shard layout copy-on-write, so no database serialization is
// needed); the coordinator side talks to it through net/wire.h frames.
//
// Protocol state machine (per connection; see DESIGN.md "Distributed
// runtime" for the message flow diagrams):
//
//   Hello            -> HelloAck       identity + wire-version handshake
//   Execute(frag)    -> ExecuteAck     run a single-partition txn fragment
//   Prepare(frag)    -> Vote(yes)      run the shard-local prepare work,
//                       ... HOLD ...   then block this shard on that one
//   Commit           -> CommitAck      connection until the coordinator's
//                       (or Abort)     commit/abort releases it
//   Prepare(frag)    -> Vote(reject|down)   injected 2PC faults: no hold
//   Shutdown         -> ShardStats     reply final counters, stop serving
//
// The hold is the distributed equivalent of the in-process backend holding a
// shard's mutex across the prepare/vote round trip: the server is a
// single-threaded event loop, so while it waits for one coordinator's
// commit, every other client of this shard queues — exactly how distributed
// transactions steal throughput from local ones (paper Fig. 1), now paid in
// real socket latency instead of a sleep constant.
//
// Deadlock freedom: coordinators prepare participants in ascending shard-id
// order. A holding shard waits only for its holder's commit/abort; that
// holder can only be waiting on votes from HIGHER-numbered shards, so the
// wait-for graph follows a strict total order and has no cycles — the same
// argument that makes the in-process lock order deadlock-free.
//
// Fault injection: the server rebuilds the deterministic FaultInjector from
// the same FaultPlan the coordinator holds, so its down/stall/reject
// decisions for (txn, attempt, shard) are bit-identical to the ones the
// in-process backend would have made — the foundation of the cross-backend
// OutcomeSignature oracle. SIGTERM/SIGINT set the event loop's stop flag,
// so an orphaned or force-killed server drains and exits cleanly.
#pragma once

#include <cstdint>

#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/executor.h"
#include "runtime/fault_injector.h"
#include "runtime/sharded_database.h"

namespace jecb {

class ShardServer {
 public:
  ShardServer(int32_t shard_id, const ShardedDatabase& sharded,
              const RuntimeOptions& options);

  /// Serves `listener` until a Shutdown frame or SIGTERM/SIGINT. Returns
  /// the final shard-side counters (also sent to the Shutdown peer).
  net::ShardStatsMsg Serve(net::Socket listener);

 private:
  void HandleExecute(net::EventLoop& loop, int64_t peer, const net::Frame& frame);
  void HandlePrepare(net::EventLoop& loop, int64_t peer, const net::Frame& frame);
  net::ShardStatsMsg FinalStats(const net::EventLoop& loop) const;

  /// Replies on `peer`, assigning the next server-side sequence number.
  void Reply(net::EventLoop& loop, int64_t peer, net::MsgType type,
             const std::string& payload);

  const int32_t shard_id_;
  const ShardedDatabase& sharded_;
  const RuntimeOptions options_;
  const FaultInjector injector_;
  const uint32_t prepare_us_;

  uint64_t reply_seq_ = 0;
  net::ShardStatsMsg stats_;
};

}  // namespace jecb
