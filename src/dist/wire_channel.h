// FaultyChannel: one coordinator->shard or shard->shard connection with the
// wire-fault discipline applied on the send side. Shared by the
// coordinator's control channels (dist/socket_transport.cc) and the home
// shard's exchange data channels (dist/exchange.h), so both planes mask
// drops/duplicates/delays/disconnects IDENTICALLY — the data plane cannot
// drift from the control plane's fault contract because they run the same
// code.
//
// Reconnect discipline (the EventLoop watermark contract — see
// net/event_loop.h): Reset() is the ONE teardown point, and it clears the
// socket, the decode buffer, and the send sequence together. The server
// gives every accepted connection a fresh dedup watermark (last_seq = 0), so
// a sender that reconnects MUST restart its sequence at 1: frames after a
// reconnect are then never mistaken for duplicates, and an injected
// duplicate (same seq, same connection) is always suppressed.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "dist/transport.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/fault_injector.h"

namespace jecb {

/// A transport failure the protocol cannot mask (peer process died
/// unexpectedly, stream went corrupt). Any silent recovery would skew the
/// outcome counters away from the in-process backend, so fail loudly —
/// determinism bugs must never look like flaky throughput. In a shard-server
/// child the abort surfaces as an abnormal exit in ReplayReport.
[[noreturn]] void TransportPanic(const char* what, int32_t shard,
                                 const Status& status);

class FaultyChannel {
 public:
  FaultyChannel() = default;

  /// Wires the channel up; no connection is made yet. `counters` receives
  /// the send/receive/fault accounting and must outlive the channel;
  /// `injector` may be null when `wire_faults` is false.
  void Configure(net::SocketAddr addr, int32_t peer_shard,
                 const FaultInjector* injector, bool wire_faults,
                 TransportCounters* counters, const char* what);

  bool connected() const { return connected_; }
  int32_t peer_shard() const { return peer_; }

  /// The single teardown point: socket, decode buffer, and send_seq drop
  /// together so the next connection starts at seq 1 against the server's
  /// fresh per-connection watermark. Does NOT count a reconnect — callers
  /// distinguish fault-injected teardowns from final closes.
  void Reset();

  /// Connects if needed (panics if the peer is unreachable). Returns true
  /// when a fresh connection was just established, so protocols with a
  /// handshake (the control plane's Hello) know to run it.
  bool EnsureConnected();

  /// Applies the per-txn disconnect fault: the channel may be torn down (to
  /// be re-established by the next EnsureConnected), but only before the
  /// txn's first message on it — mid-txn the wire is reliable by contract.
  void TouchForTxn(uint64_t txn_id);

  /// Sends pre-encoded bytes, counting one message. Panics on a dead peer.
  void RawSend(const std::string& bytes);

  /// Claims the next send sequence number (for callers that frame manually,
  /// e.g. the Hello handshake).
  uint64_t NextSeq() { return ++send_seq_; }

  /// Frames and sends with the full fault discipline: delay sleeps first, a
  /// drop accounts the first copy as sent without writing it (then waits out
  /// the retransmit timer), a duplicate re-sends with the SAME seq so the
  /// receiver's watermark suppresses it. Requires connected().
  void SendWithFaults(net::MsgType type, const std::string& payload,
                      uint64_t txn_id, uint32_t attempt);

  /// Blocks until the next frame of type `want` arrives, skipping strays.
  /// Panics on EOF or a corrupt stream.
  net::Frame RecvType(net::MsgType want);

  /// Blocks until the next frame of ANY type arrives (the coordinator's
  /// commit-collect loop, which interleaves kTupleBatch and kCommitAck).
  net::Frame RecvAny();

 private:
  net::SocketAddr addr_;
  int32_t peer_ = -1;
  const FaultInjector* injector_ = nullptr;
  bool wire_faults_ = false;
  TransportCounters* counters_ = nullptr;
  const char* what_ = "channel";

  net::Socket sock_;
  net::FrameBuffer in_;
  uint64_t send_seq_ = 0;
  uint64_t last_txn_id_ = 0;
  bool has_txn_ = false;
  bool connected_ = false;
};

}  // namespace jecb
