// Wire half of exchange-style tuple routing (the storage/accounting half is
// runtime/exchange.h).
//
// Channel topology: every shard-server child binds a SECOND listener — the
// data plane — before fork, and serves it from a dedicated ExchangeNode
// thread. When a committing distributed transaction needs rows owned by a
// peer shard, the HOME shard (blocked in its control-plane hold) pulls them
// with kExchangeReq over a shard-to-shard FaultyChannel to the peer's data
// listener, bypassing the coordinator entirely; the peer's node answers with
// bounded kTupleBatch frames. The node thread only reads the immutable
// copy-on-write Database snapshot and never blocks on the control plane, so
// data-plane waits can never join the 2PC wait-for graph — exchange adds no
// deadlock edges to the ascending-shard-id argument.
//
// Fault masking: the pulling side applies the SAME injector discipline as
// coordinator control channels (FaultyChannel), keyed on (txn, attempt,
// owner shard, kExchangeReq) — drops retransmit, duplicates are suppressed
// by the node's per-connection dedup watermark, disconnects only strike
// between transactions. Batches therefore arrive exactly once, in order,
// regardless of injected wire faults.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "dist/wire_channel.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/exchange.h"
#include "storage/database.h"

namespace jecb {

/// Splits `entries` into TupleBatchMsg frames via the shared greedy span
/// rule (runtime/exchange.h), so wire frame counts equal the batch counts
/// the in-process accounting predicts. Always returns at least one batch
/// (an empty read set still yields one empty, `last`-flagged batch — the
/// receiver needs a terminator).
std::vector<net::TupleBatchMsg> BuildTupleBatches(
    uint64_t txn_id, uint32_t attempt, int32_t source_shard,
    const std::vector<ExchangeEntry>& entries, uint32_t batch_bytes);

/// The data-plane server of one shard: a poll loop on the shard's data
/// listener, run on its own thread, answering kExchangeReq with kTupleBatch
/// streams materialized from storage. Started after fork (the child is
/// single-threaded at fork; the thread is spawned afterwards, which keeps
/// the fork sanitizer-clean).
class ExchangeNode {
 public:
  /// Post-Stop() accounting, merged into the shard's ShardStatsMsg.
  struct Stats {
    uint64_t reqs_served = 0;   ///< unique requests (duplicates deduped)
    uint64_t batches_sent = 0;
    uint64_t tuples_sent = 0;
    uint64_t bytes_sent = 0;    ///< encoded row bytes (not frame bytes)
    net::EventLoopStats loop;
  };

  /// Serves rows from `sharded` — through its arena-backed encoded-row
  /// store when built (skipping the per-row encode on every pull), else by
  /// encoding from the copy-on-write Database snapshot. Byte content is
  /// identical either way.
  ExchangeNode(int32_t shard_id, const ShardedDatabase& sharded,
               uint32_t batch_bytes);
  ~ExchangeNode();

  ExchangeNode(const ExchangeNode&) = delete;
  ExchangeNode& operator=(const ExchangeNode&) = delete;

  /// Takes ownership of the data listener and spawns the serve thread.
  void Start(net::Socket listener);

  /// Requests the loop to stop (atomic, cross-thread) and joins the thread.
  /// Idempotent. stats() is valid — and safe to read — only after this
  /// returns (the join is the happens-before edge).
  void Stop();

  const Stats& stats() const { return stats_; }

 private:
  void Run();

  const int32_t shard_id_;
  const ShardedDatabase& sharded_;
  const uint32_t batch_bytes_;

  std::unique_ptr<net::EventLoop> loop_;
  std::thread thread_;
  uint64_t reply_seq_ = 0;
  Stats stats_;
  bool running_ = false;
};

/// The pulling side, owned by each shard server's control thread: one lazily
/// (re)connected FaultyChannel per peer data listener. Channels are
/// established eagerly at fork time (ConnectAll) so steady-state pulls pay
/// no connection setup; injected disconnect faults tear individual channels
/// down between transactions and the next pull transparently reconnects.
class ExchangeClient {
 public:
  /// `data_addrs[i]` is shard i's data listener. `injector` may be null when
  /// `wire_faults` is false; both must outlive the client.
  void Configure(int32_t shard_id, std::vector<net::SocketAddr> data_addrs,
                 const FaultInjector* injector, bool wire_faults);

  /// Eagerly connects to every peer (skipping self). Call once, right after
  /// fork, while every data listener is guaranteed bound.
  void ConnectAll();

  /// Pulls `reads` (all owned by `owner`) for (txn_id, attempt). Blocks
  /// until the full batch stream arrives; panics (killing the shard child,
  /// which surfaces as an abnormal exit) on truncation or txn mismatch.
  /// Returns entries in request order.
  std::vector<net::TupleBatchEntry> Pull(
      int32_t owner, uint64_t txn_id, uint32_t attempt,
      const std::vector<net::WireAccess>& reads);

  /// Requests sent, fault events, bytes — folded into ShardStatsMsg's
  /// exchange tail by the owning ShardServer.
  const TransportCounters& counters() const { return counters_; }

 private:
  int32_t shard_id_ = -1;
  std::vector<FaultyChannel> channels_;
  TransportCounters counters_;
};

}  // namespace jecb
