#include "dist/socket_transport.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "dist/shard_server.h"
#include "obs/trace_recorder.h"

namespace jecb {

namespace {

using net::Frame;
using net::MsgType;

/// A transport failure the protocol cannot mask (shard process died
/// unexpectedly, stream went corrupt). Any silent recovery here would skew
/// the outcome counters away from the in-process backend, so fail loudly
/// instead — determinism bugs must never look like flaky throughput.
[[noreturn]] void TransportPanic(const char* what, int32_t shard,
                                 const Status& status) {
  std::fprintf(stderr, "jecb: fatal transport error (%s, shard %d): %s\n",
               what, shard, status.ToString().c_str());
  std::abort();
}

std::string DefaultSocketDir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string tmpl = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  tmpl += "/jecb-dist-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) return {};
  return std::string(buf.data());
}

}  // namespace

SocketTransport::SocketTransport(const ShardedDatabase& sharded,
                                 const RuntimeOptions& options,
                                 RuntimeMetrics* metrics)
    : sharded_(sharded),
      options_(options),
      metrics_(metrics),
      injector_(options.faults) {}

SocketTransport::~SocketTransport() { Drain(); }

Status SocketTransport::Start() {
  if (started_) return Status::OK();
  const int32_t n = sharded_.num_shards();
  addrs_.resize(static_cast<size_t>(n));
  procs_.resize(static_cast<size_t>(n));
  shard_rtt_.clear();
  for (int32_t i = 0; i < n; ++i) {
    shard_rtt_.push_back(std::make_unique<LatencyHistogram>());
  }

  std::string dir;
  if (options_.transport == TransportKind::kUnixSocket) {
    dir = options_.socket_dir;
    if (dir.empty()) {
      owned_socket_dir_ = DefaultSocketDir();
      if (owned_socket_dir_.empty()) {
        return Status::Internal("mkdtemp failed for socket dir");
      }
      dir = owned_socket_dir_;
    }
  }

  // Bind every listener first: by the time any child serves, every address
  // exists, so cross-shard connection order can never flake.
  std::vector<net::Socket> listeners;
  listeners.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    net::SocketAddr& addr = addrs_[static_cast<size_t>(i)];
    if (options_.transport == TransportKind::kUnixSocket) {
      addr.is_unix = true;
      addr.path = dir + "/shard-" + std::to_string(i) + ".sock";
    } else {
      addr.is_unix = false;
      addr.port = 0;  // kernel-assigned
    }
    Result<net::Socket> listener = Listen(addr);
    if (!listener.ok()) return listener.status();
    if (!addr.is_unix) {
      Result<uint16_t> port = BoundTcpPort(listener.value());
      if (!port.ok()) return port.status();
      addr.port = port.value();
    }
    listeners.push_back(std::move(listener).value());
  }

  // Fork the shard servers while this process is still single-threaded:
  // Replay() only spawns client threads after Start() returns, so the
  // children never inherit a multi-threaded address space (which keeps the
  // fork sanitizer-clean) and see the ShardedDatabase copy-on-write.
  for (int32_t i = 0; i < n; ++i) {
    pid_t pid = fork();
    if (pid < 0) {
      return Status::Internal("fork failed for shard " + std::to_string(i));
    }
    if (pid == 0) {
      // Child: keep only this shard's listener; serve until kShutdown or
      // SIGTERM; _Exit so no parent-owned state (atexit hooks, buffers,
      // sanitizer end-of-process checks) runs twice.
      net::Socket own = std::move(listeners[static_cast<size_t>(i)]);
      listeners.clear();
      net::InstallStopSignalHandler();
      ShardServer server(i, sharded_, options_);
      server.Serve(std::move(own));
      std::_Exit(0);
    }
    procs_[static_cast<size_t>(i)].pid = pid;
  }
  listeners.clear();  // parent: children own the listening fds now
  started_ = true;
  return Status::OK();
}

void SocketTransport::MergeCounters(const TransportCounters& c) {
  std::lock_guard<std::mutex> guard(counters_mu_);
  counters_.Merge(c);
}

void SocketTransport::ShutdownShard(int32_t i) {
  Result<net::Socket> conn = Connect(addrs_[static_cast<size_t>(i)], 10);
  if (!conn.ok()) return;  // already dead; ReapShard collects the corpse
  net::Socket control = std::move(conn).value();

  // A wedged shard must not hang Drain(): bound the stats wait, then let the
  // reap ladder escalate to SIGTERM/SIGKILL.
  struct timeval tv{};
  tv.tv_sec = 5;
  setsockopt(control.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  TransportCounters local;
  std::string req = net::EncodeFrame(MsgType::kShutdown, 1, {});
  if (!net::SendAll(control, req.data(), req.size()).ok()) return;
  local.messages_sent += 1;
  local.bytes_sent += req.size();

  net::FrameBuffer in;
  Frame frame;
  char chunk[4096];
  for (;;) {
    net::FrameBuffer::NextResult res = in.Next(&frame);
    if (res == net::FrameBuffer::NextResult::kFrame) break;
    if (res == net::FrameBuffer::NextResult::kCorrupt) return;
    net::RecvSomeResult r = net::RecvSome(control, chunk, sizeof(chunk));
    if (r.n <= 0) return;  // timeout, EOF or error: give up on the stats
    in.Feed(chunk, static_cast<size_t>(r.n));
    local.bytes_received += static_cast<uint64_t>(r.n);
  }
  local.messages_received += 1;

  net::ShardStatsMsg stats;
  if (frame.type == MsgType::kShardStats && stats.Decode(frame.payload)) {
    local.shard_frames += stats.frames_received;
    local.shard_bytes += stats.bytes_received;
    local.dedup_drops += stats.dedup_dropped;
  }
  MergeCounters(local);
}

void SocketTransport::ReapShard(int32_t i) {
  pid_t pid = procs_[static_cast<size_t>(i)].pid;
  if (pid <= 0) return;
  procs_[static_cast<size_t>(i)].pid = -1;

  // Escalation ladder: grace period for the kShutdown drain, then SIGTERM
  // (the server's signal handler turns it into a clean stop), then SIGKILL.
  auto wait_for = [pid](int millis) {
    for (int waited = 0; waited < millis; waited += 10) {
      int status = 0;
      pid_t r = waitpid(pid, &status, WNOHANG);
      if (r == pid || (r < 0 && errno == ECHILD)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  };
  if (wait_for(2000)) return;
  kill(pid, SIGTERM);
  if (wait_for(1000)) return;
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);
}

void SocketTransport::Drain() {
  if (!started_ || drained_) return;
  drained_ = true;
  for (int32_t i = 0; i < sharded_.num_shards(); ++i) {
    ShutdownShard(i);
    ReapShard(i);
  }
  if (options_.transport == TransportKind::kUnixSocket) {
    for (const net::SocketAddr& addr : addrs_) unlink(addr.path.c_str());
    if (!owned_socket_dir_.empty()) rmdir(owned_socket_dir_.c_str());
  }
}

TransportReport SocketTransport::Report() const {
  TransportReport report;
  report.kind = options_.transport;
  {
    std::lock_guard<std::mutex> guard(counters_mu_);
    report.counters = counters_;
  }
  report.shard_rtt.reserve(shard_rtt_.size());
  for (const auto& hist : shard_rtt_) {
    report.shard_rtt.push_back(hist->Snapshot());
    report.rtt.Merge(report.shard_rtt.back());
  }
  return report;
}

// ---------------------------------------------------------------------------
// DistCoordinatorSession: one client thread's coordinator. Owns one lazily
// connected channel per shard and mirrors TxnCoordinator's accounting with
// the simulated message sleeps replaced by real wire round trips.

class DistCoordinatorSession : public TransportSession {
 public:
  DistCoordinatorSession(SocketTransport* transport, int client_id)
      : transport_(transport),
        client_id_(static_cast<uint32_t>(client_id)),
        options_(transport->options_),
        injector_(transport->injector_),
        metrics_(transport->metrics_),
        prepare_us_(options_.local_work_us + options_.lock_hold_us),
        wire_faults_(options_.faults.wire_enabled()),
        channels_(static_cast<size_t>(transport->sharded_.num_shards())) {}

  ~DistCoordinatorSession() override { transport_->MergeCounters(counters_); }

  void ExecuteLocal(const ClassifiedTxn& txn) override;
  void ExecuteDistributed(const ClassifiedTxn& txn) override;

 private:
  struct Channel {
    net::Socket sock;
    net::FrameBuffer in;
    uint64_t send_seq = 0;
    uint64_t last_txn_id = 0;
    bool has_txn = false;
    bool connected = false;
  };

  bool AttemptOnce(const ClassifiedTxn& txn, uint32_t attempt, bool traced);
  void AbortPrepared(const std::vector<int32_t>& prepared,
                     const ClassifiedTxn& txn, uint32_t attempt);

  void EnsureConnected(int32_t shard);
  /// Applies the per-txn disconnect fault: the channel may be torn down and
  /// re-established, but only before the txn's first message on it.
  void TouchChannelForTxn(int32_t shard, uint64_t txn_id);
  void RawSend(int32_t shard, const std::string& bytes);
  void SendWithFaults(int32_t shard, MsgType type, const std::string& payload,
                      uint64_t txn_id, uint32_t attempt);
  /// Blocks until the next non-stray frame of `want` arrives from `shard`.
  Frame RecvType(int32_t shard, MsgType want);
  /// One request/response round trip, RTT recorded against `shard`.
  Frame Call(int32_t shard, MsgType type, const std::string& payload,
             uint64_t txn_id, uint32_t attempt, MsgType want);

  net::FragmentMsg WholeFragment(const ClassifiedTxn& txn, uint32_t attempt) const;
  /// Only the accesses shard `p` stores (replicated writes included): the
  /// slice of the transaction that shard actually prepares.
  net::FragmentMsg SliceFragment(const ClassifiedTxn& txn, uint32_t attempt,
                                 int32_t p) const;

  SocketTransport* transport_;
  const uint32_t client_id_;
  const RuntimeOptions& options_;
  const FaultInjector& injector_;
  RuntimeMetrics* metrics_;
  const uint32_t prepare_us_;
  const bool wire_faults_;

  std::vector<Channel> channels_;
  TransportCounters counters_;
};

void DistCoordinatorSession::EnsureConnected(int32_t shard) {
  Channel& ch = channels_[static_cast<size_t>(shard)];
  if (ch.connected) return;
  Result<net::Socket> conn = Connect(transport_->addrs_[static_cast<size_t>(shard)]);
  if (!conn.ok()) TransportPanic("connect", shard, conn.status());
  ch.sock = std::move(conn).value();
  ch.in = net::FrameBuffer();
  ch.send_seq = 0;
  ch.connected = true;

  net::HelloMsg hello;
  hello.client_id = client_id_;
  hello.shard_id = shard;
  std::string frame =
      net::EncodeFrame(MsgType::kHello, ++ch.send_seq, hello.Encode());
  RawSend(shard, frame);
  Frame ack = RecvType(shard, MsgType::kHelloAck);
  net::HelloAckMsg am;
  if (!am.Decode(ack.payload) || am.shard_id != shard) {
    TransportPanic("hello", shard, Status::Internal("bad HelloAck"));
  }
}

void DistCoordinatorSession::TouchChannelForTxn(int32_t shard, uint64_t txn_id) {
  Channel& ch = channels_[static_cast<size_t>(shard)];
  const bool first_msg_of_txn = !ch.has_txn || ch.last_txn_id != txn_id;
  ch.has_txn = true;
  ch.last_txn_id = txn_id;
  if (!first_msg_of_txn || !wire_faults_ || !ch.connected) return;
  if (!injector_.WireDisconnects(txn_id, shard)) return;
  // Tear the connection down between transactions only: the reconnect is
  // pure wire churn, invisible to 2PC outcomes by construction.
  ch.sock.Close();
  ch.connected = false;
  counters_.reconnects += 1;
}

void DistCoordinatorSession::RawSend(int32_t shard, const std::string& bytes) {
  Channel& ch = channels_[static_cast<size_t>(shard)];
  Status s = net::SendAll(ch.sock, bytes.data(), bytes.size());
  if (!s.ok()) TransportPanic("send", shard, s);
  counters_.messages_sent += 1;
  counters_.bytes_sent += bytes.size();
}

void DistCoordinatorSession::SendWithFaults(int32_t shard, MsgType type,
                                            const std::string& payload,
                                            uint64_t txn_id, uint32_t attempt) {
  TouchChannelForTxn(shard, txn_id);
  EnsureConnected(shard);
  Channel& ch = channels_[static_cast<size_t>(shard)];
  const uint8_t kind = static_cast<uint8_t>(type);
  if (wire_faults_ && injector_.WireDelays(txn_id, attempt, shard, kind)) {
    counters_.wire_delays += 1;
    SimulateNetworkDelay(injector_.plan().wire_delay_us);
  }
  const std::string bytes = net::EncodeFrame(type, ++ch.send_seq, payload);
  if (wire_faults_ && injector_.WireDrops(txn_id, attempt, shard, kind)) {
    // The first copy is "lost on the wire": account it as sent, never write
    // it, wait out the retransmit timer, then send for real.
    counters_.wire_drops += 1;
    counters_.messages_sent += 1;
    counters_.bytes_sent += bytes.size();
    SimulateNetworkDelay(injector_.plan().wire_retransmit_us);
  }
  RawSend(shard, bytes);
  if (wire_faults_ && injector_.WireDuplicates(txn_id, attempt, shard, kind)) {
    // Same sequence number on purpose: the shard's dedup watermark drops it.
    counters_.wire_duplicates += 1;
    RawSend(shard, bytes);
  }
}

Frame DistCoordinatorSession::RecvType(int32_t shard, MsgType want) {
  Channel& ch = channels_[static_cast<size_t>(shard)];
  char chunk[64 * 1024];
  Frame frame;
  for (;;) {
    net::FrameBuffer::NextResult res = ch.in.Next(&frame);
    if (res == net::FrameBuffer::NextResult::kFrame) {
      counters_.messages_received += 1;
      if (frame.type == want) return frame;
      continue;  // stray (late ack of an aborted attempt): skip
    }
    if (res == net::FrameBuffer::NextResult::kCorrupt) {
      TransportPanic("recv", shard, ch.in.error());
    }
    net::RecvSomeResult r = net::RecvSome(ch.sock, chunk, sizeof(chunk));
    if (r.n == 0) TransportPanic("recv", shard, Status::Internal("peer closed"));
    if (r.n < 0 && !r.status.ok()) TransportPanic("recv", shard, r.status);
    if (r.n > 0) {
      ch.in.Feed(chunk, static_cast<size_t>(r.n));
      counters_.bytes_received += static_cast<uint64_t>(r.n);
    }
  }
}

Frame DistCoordinatorSession::Call(int32_t shard, MsgType type,
                                   const std::string& payload, uint64_t txn_id,
                                   uint32_t attempt, MsgType want) {
  auto start = std::chrono::steady_clock::now();
  SendWithFaults(shard, type, payload, txn_id, attempt);
  Frame reply = RecvType(shard, want);
  transport_->shard_rtt_[static_cast<size_t>(shard)]->Record(ElapsedUs(start));
  return reply;
}

net::FragmentMsg DistCoordinatorSession::WholeFragment(const ClassifiedTxn& txn,
                                                       uint32_t attempt) const {
  net::FragmentMsg frag;
  frag.txn_id = txn.txn_id;
  frag.attempt = attempt;
  frag.class_id = txn.txn->class_id;
  frag.accesses.reserve(txn.txn->accesses.size());
  for (const Access& a : txn.txn->accesses) {
    frag.accesses.push_back({static_cast<uint32_t>(a.tuple.table),
                             static_cast<uint64_t>(a.tuple.row),
                             static_cast<uint8_t>(a.write ? 1 : 0)});
  }
  return frag;
}

net::FragmentMsg DistCoordinatorSession::SliceFragment(const ClassifiedTxn& txn,
                                                       uint32_t attempt,
                                                       int32_t p) const {
  net::FragmentMsg frag;
  frag.txn_id = txn.txn_id;
  frag.attempt = attempt;
  frag.class_id = txn.txn->class_id;
  for (const Access& a : txn.txn->accesses) {
    int32_t owner = transport_->sharded_.PrimaryShardOf(a.tuple);
    // Replicated reads are satisfied by any copy; replicated writes must be
    // applied on every participant, so every slice carries them.
    if (owner != p && !(owner == kReplicated && a.write)) continue;
    frag.accesses.push_back({static_cast<uint32_t>(a.tuple.table),
                             static_cast<uint64_t>(a.tuple.row),
                             static_cast<uint8_t>(a.write ? 1 : 0)});
  }
  return frag;
}

void DistCoordinatorSession::ExecuteLocal(const ClassifiedTxn& txn) {
  TraceRecorder& rec = TraceRecorder::Default();
  const bool traced =
      rec.enabled() &&
      TxnTraceSampled(options_.faults.seed, txn.txn_id, options_.trace_sample_rate);
  auto start = std::chrono::steady_clock::now();
  const uint64_t start_ts = traced ? rec.ToTraceUs(start) : 0;

  if (options_.verify_residency) {
    uint64_t faults = CountResidencyFaults(transport_->sharded_, txn);
    if (faults > 0) {
      metrics_->residency_faults.fetch_add(faults, std::memory_order_relaxed);
    }
  }

  Call(txn.home, MsgType::kExecute, WholeFragment(txn, 0).Encode(), txn.txn_id,
       0, MsgType::kExecuteAck);

  // The shard burned local_work_us executing the fragment; account it to the
  // shard exactly as the in-process worker does for itself.
  ShardMetrics& sm = metrics_->shard(txn.home);
  sm.busy_us.fetch_add(options_.local_work_us, std::memory_order_relaxed);
  uint64_t latency_us = ElapsedUs(start);
  sm.local_txns.fetch_add(1, std::memory_order_relaxed);
  sm.local_latency.Record(latency_us);
  metrics_->committed.fetch_add(1, std::memory_order_relaxed);
  if (traced) {
    rec.Span("runtime", "txn.local", start_ts, latency_us, "txn",
             static_cast<int64_t>(txn.txn_id), "shard", txn.home);
  }
}

void DistCoordinatorSession::AbortPrepared(const std::vector<int32_t>& prepared,
                                           const ClassifiedTxn& txn,
                                           uint32_t attempt) {
  // Fire-and-forget, like the in-process backend releasing locks without a
  // round trip. Delivery is still guaranteed: the drop fault retransmits.
  net::TxnRefMsg ref;
  ref.txn_id = txn.txn_id;
  ref.attempt = attempt;
  const std::string payload = ref.Encode();
  for (int32_t p : prepared) {
    SendWithFaults(p, MsgType::kAbort, payload, txn.txn_id, attempt);
  }
}

bool DistCoordinatorSession::AttemptOnce(const ClassifiedTxn& txn,
                                         uint32_t attempt, bool traced) {
  TraceRecorder& rec = TraceRecorder::Default();
  const int64_t tid = static_cast<int64_t>(txn.txn_id);
  const uint64_t prepare_ts = traced ? rec.NowUs() : 0;

  // Prepare phase: participants in ascending id order (deadlock freedom —
  // see dist/shard_server.h). Each Call's vote round trip replaces one
  // in-process SimulateNetworkDelay with real wire latency; the metric
  // updates below mirror TxnCoordinator::AttemptOnce line for line, driven
  // by the shard's reported decisions instead of local injector calls (the
  // two agree bit-for-bit: same plan, same pure decision function).
  std::vector<int32_t> prepared;
  prepared.reserve(txn.participants.size());
  for (int32_t p : txn.participants) {
    ShardMetrics& sm = metrics_->shard(p);
    sm.participation_attempts.fetch_add(1, std::memory_order_relaxed);
    Frame vote_frame = Call(p, MsgType::kPrepare,
                            SliceFragment(txn, attempt, p).Encode(), txn.txn_id,
                            attempt, MsgType::kVote);
    net::VoteMsg vote;
    if (!vote.Decode(vote_frame.payload)) {
      TransportPanic("vote", p, Status::Internal("undecodable VoteMsg"));
    }
    if (vote.decision == net::VoteDecision::kDown) {
      sm.down_events.fetch_add(1, std::memory_order_relaxed);
      metrics_->shard_down_aborts.fetch_add(1, std::memory_order_relaxed);
      if (traced) rec.Instant("fault", "fault.shard_down", "txn", tid, "shard", p);
      AbortPrepared(prepared, txn, attempt);
      return false;
    }
    sm.busy_us.fetch_add(prepare_us_, std::memory_order_relaxed);
    if (vote.stalled != 0) {
      sm.stalls.fetch_add(1, std::memory_order_relaxed);
      metrics_->stalls_injected.fetch_add(1, std::memory_order_relaxed);
      if (traced) rec.Instant("fault", "fault.stall", "txn", tid, "shard", p);
    }
    if (vote.decision == net::VoteDecision::kReject) {
      sm.prepare_rejects.fetch_add(1, std::memory_order_relaxed);
      metrics_->prepare_rejects.fetch_add(1, std::memory_order_relaxed);
      if (traced) {
        rec.Instant("fault", "fault.prepare_reject", "txn", tid, "shard", p);
      }
      AbortPrepared(prepared, txn, attempt);
      return false;
    }
    sm.dist_participations.fetch_add(1, std::memory_order_relaxed);
    prepared.push_back(p);
  }

  if (injector_.enabled() && injector_.CoordinatorTimesOut(txn.txn_id, attempt)) {
    // Every prepared shard keeps holding (blocked in its NextFrom) while the
    // coordinator waits out the vote timeout — the expensive abort, with the
    // hold now enforced by real blocked event loops instead of mutexes.
    metrics_->coordinator_timeouts.fetch_add(1, std::memory_order_relaxed);
    if (traced) {
      rec.Instant("fault", "fault.timeout", "txn", tid, "attempt",
                  static_cast<int64_t>(attempt));
    }
    SimulateNetworkDelay(injector_.plan().timeout_us);
    AbortPrepared(prepared, txn, attempt);
    return false;
  }
  if (traced) {
    rec.Span("runtime", "2pc.prepare", prepare_ts, rec.NowUs() - prepare_ts,
             "txn", tid, "attempt", static_cast<int64_t>(attempt));
  }
  const uint64_t commit_ts = traced ? rec.NowUs() : 0;

  // Commit round: each ack releases that shard's hold. Latency the client
  // observes; the shards free up one by one as the acks come back.
  net::TxnRefMsg ref;
  ref.txn_id = txn.txn_id;
  ref.attempt = attempt;
  const std::string payload = ref.Encode();
  for (int32_t p : prepared) {
    Call(p, MsgType::kCommit, payload, txn.txn_id, attempt, MsgType::kCommitAck);
  }
  if (traced) {
    rec.Span("runtime", "2pc.commit", commit_ts, rec.NowUs() - commit_ts, "txn",
             tid, "attempt", static_cast<int64_t>(attempt));
  }
  return true;
}

void DistCoordinatorSession::ExecuteDistributed(const ClassifiedTxn& txn) {
  TraceRecorder& rec = TraceRecorder::Default();
  const bool traced =
      rec.enabled() &&
      TxnTraceSampled(options_.faults.seed, txn.txn_id, options_.trace_sample_rate);
  const int64_t tid = static_cast<int64_t>(txn.txn_id);
  auto start = std::chrono::steady_clock::now();
  const uint64_t start_ts = traced ? rec.ToTraceUs(start) : 0;

  if (options_.verify_residency) {
    uint64_t faults = CountResidencyFaults(transport_->sharded_, txn);
    if (faults > 0) {
      metrics_->residency_faults.fetch_add(faults, std::memory_order_relaxed);
    }
  }

  const uint32_t budget = std::max(injector_.plan().max_attempts, 1u);
  for (uint32_t attempt = 0; attempt < budget; ++attempt) {
    if (AttemptOnce(txn, attempt, traced)) {
      uint64_t latency_us = ElapsedUs(start);
      metrics_->shard(txn.home).dist_latency.Record(latency_us);
      if (attempt > 0) metrics_->retry_latency.Record(latency_us);
      if (txn.distributed) {
        metrics_->distributed_committed.fetch_add(1, std::memory_order_relaxed);
      }
      metrics_->committed.fetch_add(1, std::memory_order_relaxed);
      if (traced) {
        rec.Span("runtime", "txn.dist", start_ts, latency_us, "txn", tid,
                 "attempts", static_cast<int64_t>(attempt) + 1);
      }
      return;
    }
    metrics_->aborts.fetch_add(1, std::memory_order_relaxed);
    if (attempt + 1 < budget) {
      metrics_->retries.fetch_add(1, std::memory_order_relaxed);
      const uint64_t backoff_ts = traced ? rec.NowUs() : 0;
      SimulateNetworkDelay(injector_.BackoffUs(txn.txn_id, attempt));
      if (traced) {
        rec.Span("runtime", "backoff", backoff_ts, rec.NowUs() - backoff_ts,
                 "txn", tid, "attempt", static_cast<int64_t>(attempt));
      }
    }
  }

  metrics_->failed.fetch_add(1, std::memory_order_relaxed);
  if (traced) {
    rec.Span("runtime", "txn.failed", start_ts, ElapsedUs(start), "txn", tid,
             "attempts", static_cast<int64_t>(budget));
  }
}

std::unique_ptr<TransportSession> SocketTransport::NewSession(int client_id) {
  return std::make_unique<DistCoordinatorSession>(this, client_id);
}

}  // namespace jecb
