#include "dist/socket_transport.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "dist/shard_server.h"
#include "dist/telemetry.h"
#include "dist/wire_channel.h"
#include "obs/flight_recorder.h"
#include "obs/trace_recorder.h"
#include "runtime/exchange.h"

namespace jecb {

namespace {

using net::Frame;
using net::MsgType;

std::string MakeTempDir(const char* leaf_template) {
  const char* tmp = std::getenv("TMPDIR");
  std::string tmpl = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  tmpl += "/";
  tmpl += leaf_template;
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) return {};
  return std::string(buf.data());
}

std::string DefaultSocketDir() { return MakeTempDir("jecb-dist-XXXXXX"); }

std::string PostmortemPath(const std::string& dir, int32_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".postmortem.json";
}

/// Receives one complete frame from a blocking socket, feeding leftover
/// bytes through `in` (which must persist across calls on the same
/// connection). Counts raw received bytes into *bytes when non-null.
/// Returns false on timeout, EOF, or a corrupt stream.
bool RecvFrameBlocking(net::Socket& sock, net::FrameBuffer& in, Frame* frame,
                       uint64_t* bytes) {
  char chunk[4096];
  for (;;) {
    net::FrameBuffer::NextResult res = in.Next(frame);
    if (res == net::FrameBuffer::NextResult::kFrame) return true;
    if (res == net::FrameBuffer::NextResult::kCorrupt) return false;
    net::RecvSomeResult r = net::RecvSome(sock, chunk, sizeof(chunk));
    if (r.n <= 0) return false;
    in.Feed(chunk, static_cast<size_t>(r.n));
    if (bytes != nullptr) *bytes += static_cast<uint64_t>(r.n);
  }
}

void SetRecvTimeout(net::Socket& sock, int seconds) {
  struct timeval tv{};
  tv.tv_sec = seconds;
  setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

SocketTransport::SocketTransport(const ShardedDatabase& sharded,
                                 const RuntimeOptions& options,
                                 RuntimeMetrics* metrics)
    : sharded_(sharded),
      options_(options),
      metrics_(metrics),
      injector_(options.faults) {}

SocketTransport::~SocketTransport() { Drain(); }

Status SocketTransport::Start() {
  if (started_) return Status::OK();
  const int32_t n = sharded_.num_shards();
  const bool exchange = options_.exchange_enabled;
  addrs_.resize(static_cast<size_t>(n));
  data_addrs_.resize(exchange ? static_cast<size_t>(n) : 0);
  procs_.resize(static_cast<size_t>(n));
  shard_exits_.assign(static_cast<size_t>(n), ShardExitStatus{});
  shard_rtt_.clear();
  for (int32_t i = 0; i < n; ++i) {
    shard_rtt_.push_back(std::make_unique<LatencyHistogram>());
  }
  clock_offsets_us_.assign(static_cast<size_t>(n), 0);
  offset_rtts_us_.assign(static_cast<size_t>(n), UINT64_MAX);

  // Where the children's flight recorders dump on abnormal exit. A private
  // temp dir when the caller did not pick one; Drain() removes it only if it
  // stayed empty, so postmortems survive the run for the report to point at.
  postmortem_dir_ = options_.postmortem_dir;
  if (postmortem_dir_.empty()) {
    postmortem_dir_ = MakeTempDir("jecb-post-XXXXXX");
    owned_postmortem_dir_ = !postmortem_dir_.empty();
  } else {
    mkdir(postmortem_dir_.c_str(), 0755);  // best effort; EEXIST is fine
  }

  // Construct the recorder singleton (fixing its trace-time epoch) before
  // forking, so parent and children share one origin and the Hello clock
  // offset estimate only has residual drift to correct.
  (void)TraceRecorder::Default().NowUs();

  std::string dir;
  if (options_.transport == TransportKind::kUnixSocket) {
    dir = options_.socket_dir;
    if (dir.empty()) {
      owned_socket_dir_ = DefaultSocketDir();
      if (owned_socket_dir_.empty()) {
        return Status::Internal("mkdtemp failed for socket dir");
      }
      dir = owned_socket_dir_;
    }
  }

  // Bind every listener first: by the time any child serves, every address
  // exists, so cross-shard connection order can never flake. Crucially this
  // covers the exchange DATA listeners too — a child's ExchangeClient
  // connects to its peers right after fork, and pre-fork binding is what
  // guarantees those connects can never race a peer that hasn't bound yet.
  auto bind_one = [&](int32_t i, const char* suffix, net::SocketAddr& addr,
                      std::vector<net::Socket>& out) -> Status {
    if (options_.transport == TransportKind::kUnixSocket) {
      addr.is_unix = true;
      addr.path = dir + "/shard-" + std::to_string(i) + suffix;
    } else {
      addr.is_unix = false;
      addr.port = 0;  // kernel-assigned
    }
    Result<net::Socket> listener = Listen(addr);
    if (!listener.ok()) return listener.status();
    if (!addr.is_unix) {
      Result<uint16_t> port = BoundTcpPort(listener.value());
      if (!port.ok()) return port.status();
      addr.port = port.value();
    }
    out.push_back(std::move(listener).value());
    return Status::OK();
  };
  std::vector<net::Socket> listeners;
  std::vector<net::Socket> data_listeners;
  listeners.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    Status s = bind_one(i, ".sock", addrs_[static_cast<size_t>(i)], listeners);
    if (!s.ok()) return s;
    if (exchange) {
      s = bind_one(i, ".data.sock", data_addrs_[static_cast<size_t>(i)],
                   data_listeners);
      if (!s.ok()) return s;
    }
  }

  // Fork the shard servers while this process is still single-threaded:
  // Replay() only spawns client threads after Start() returns, so the
  // children never inherit a multi-threaded address space (which keeps the
  // fork sanitizer-clean) and see the ShardedDatabase copy-on-write.
  for (int32_t i = 0; i < n; ++i) {
    pid_t pid = fork();
    if (pid < 0) {
      return Status::Internal("fork failed for shard " + std::to_string(i));
    }
    if (pid == 0) {
      // Child: keep only this shard's listeners (control + data); serve
      // until kShutdown or SIGTERM; _Exit so no parent-owned state (atexit
      // hooks, buffers, sanitizer end-of-process checks) runs twice.
      net::Socket own = std::move(listeners[static_cast<size_t>(i)]);
      net::Socket own_data;
      if (exchange) {
        own_data = std::move(data_listeners[static_cast<size_t>(i)]);
      }
      listeners.clear();
      data_listeners.clear();
      net::InstallStopSignalHandler();
      if (!postmortem_dir_.empty()) {
        ConfigureFlightRecorder(PostmortemPath(postmortem_dir_, i), i);
      }
      ShardServer server(i, sharded_, options_, data_addrs_);
      server.Serve(std::move(own), std::move(own_data));
      std::_Exit(0);
    }
    procs_[static_cast<size_t>(i)].pid = pid;
  }
  listeners.clear();  // parent: children own the listening fds now
  data_listeners.clear();
  started_ = true;

  // The live-telemetry poller starts AFTER every fork: the children must
  // never inherit a second thread. It uses its own control connections, so
  // replay traffic — and OutcomeSignature — never sees it.
  if (options_.telemetry_harvest && options_.telemetry_period_ms > 0) {
    poller_stop_.store(false, std::memory_order_relaxed);
    poller_ = std::thread([this] { PollTelemetry(); });
  }
  return Status::OK();
}

void SocketTransport::RecordOffsetSample(int32_t shard, uint64_t t0,
                                         uint64_t t1, uint64_t shard_now_us) {
  if (shard_now_us == 0) return;  // pre-telemetry server: no estimate
  const uint64_t rtt = t1 >= t0 ? t1 - t0 : 0;
  const int64_t offset = static_cast<int64_t>(shard_now_us) -
                         static_cast<int64_t>(t0 + rtt / 2);
  std::lock_guard<std::mutex> guard(offsets_mu_);
  // Best (lowest-RTT) sample wins: the midpoint error is bounded by rtt/2.
  if (rtt <= offset_rtts_us_[static_cast<size_t>(shard)]) {
    offset_rtts_us_[static_cast<size_t>(shard)] = rtt;
    clock_offsets_us_[static_cast<size_t>(shard)] = offset;
  }
}

int64_t SocketTransport::ClockOffsetUs(int32_t shard) const {
  std::lock_guard<std::mutex> guard(offsets_mu_);
  return clock_offsets_us_[static_cast<size_t>(shard)];
}

bool SocketTransport::HandshakeAndMeasureOffset(net::Socket& control,
                                                net::FrameBuffer& in,
                                                int32_t i, uint64_t* seq) {
  TraceRecorder& rec = TraceRecorder::Default();
  net::HelloMsg hello;
  hello.client_id = 0xFFFFFFFFu;  // harvest connection, not a client session
  hello.shard_id = i;
  std::string req = net::EncodeFrame(MsgType::kHello, ++*seq, hello.Encode());
  const uint64_t t0 = rec.NowUs();
  if (!net::SendAll(control, req.data(), req.size()).ok()) return false;
  Frame frame;
  if (!RecvFrameBlocking(control, in, &frame, nullptr)) return false;
  const uint64_t t1 = rec.NowUs();
  net::HelloAckMsg ack;
  if (frame.type != MsgType::kHelloAck || !ack.Decode(frame.payload) ||
      ack.shard_id != i) {
    return false;
  }
  RecordOffsetSample(i, t0, t1, ack.now_us);
  return true;
}

void SocketTransport::PollTelemetry() {
  const auto period = std::chrono::milliseconds(
      options_.telemetry_period_ms > 0 ? options_.telemetry_period_ms : 1000);
  for (;;) {
    // Sleep in small slices so Drain()'s stop request lands fast.
    auto deadline = std::chrono::steady_clock::now() + period;
    while (std::chrono::steady_clock::now() < deadline) {
      if (poller_stop_.load(std::memory_order_relaxed)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (int32_t i = 0; i < sharded_.num_shards(); ++i) {
      if (poller_stop_.load(std::memory_order_relaxed)) return;
      // Best effort throughout: a dead, wedged, or mid-hold shard just means
      // this round's harvest is skipped; the shutdown flush catches up.
      Result<net::Socket> conn = Connect(addrs_[static_cast<size_t>(i)], 1);
      if (!conn.ok()) continue;
      net::Socket control = std::move(conn).value();
      SetRecvTimeout(control, 2);
      net::FrameBuffer in;
      uint64_t seq = 0;
      if (!HandshakeAndMeasureOffset(control, in, i, &seq)) continue;
      std::string req = net::EncodeFrame(MsgType::kTelemetryReq, ++seq, {});
      if (!net::SendAll(control, req.data(), req.size()).ok()) continue;
      const int64_t offset = ClockOffsetUs(i);
      for (;;) {
        Frame frame;
        if (!RecvFrameBlocking(control, in, &frame, nullptr)) break;
        if (frame.type != MsgType::kTelemetry) break;
        net::TelemetryMsg msg;
        if (!msg.Decode(frame.payload)) break;
        dist::IngestTelemetry(msg, offset);
        if (msg.last != 0) break;
      }
    }
  }
}

void SocketTransport::MergeCounters(const TransportCounters& c) {
  std::lock_guard<std::mutex> guard(counters_mu_);
  counters_.Merge(c);
}

void SocketTransport::ShutdownShard(int32_t i) {
  Result<net::Socket> conn = Connect(addrs_[static_cast<size_t>(i)], 10);
  if (!conn.ok()) return;  // already dead; ReapShard collects the corpse
  net::Socket control = std::move(conn).value();

  // A wedged shard must not hang Drain(): bound the stats wait, then let the
  // reap ladder escalate to SIGTERM/SIGKILL.
  SetRecvTimeout(control, 5);

  TransportCounters local;
  net::FrameBuffer in;
  uint64_t seq = 0;
  // Hello first: one last (quiet-wire, so usually best-RTT) clock offset
  // sample before the final telemetry flush that needs it. Best effort — a
  // pre-telemetry server still answers, just without the now_us tail.
  HandshakeAndMeasureOffset(control, in, i, &seq);
  const int64_t offset = ClockOffsetUs(i);

  std::string req = net::EncodeFrame(MsgType::kShutdown, ++seq, {});
  if (!net::SendAll(control, req.data(), req.size()).ok()) return;
  local.messages_sent += 1;
  local.bytes_sent += req.size();

  // The shard streams zero or more kTelemetry batches (its final recorder
  // drain + metrics snapshot), terminated by the kShardStats reply.
  net::ShardStatsMsg stats;
  bool have_stats = false;
  for (;;) {
    Frame frame;
    if (!RecvFrameBlocking(control, in, &frame, &local.bytes_received)) break;
    if (frame.type == MsgType::kTelemetry) {
      net::TelemetryMsg msg;
      if (msg.Decode(frame.payload)) dist::IngestTelemetry(msg, offset);
      continue;
    }
    if (frame.type == MsgType::kShardStats && stats.Decode(frame.payload)) {
      local.messages_received += 1;
      have_stats = true;
    }
    break;  // stats, or something unexpected: either way the stream is over
  }
  if (have_stats) {
    local.shard_frames += stats.frames_received;
    local.shard_bytes += stats.bytes_received;
    local.dedup_drops += stats.dedup_dropped;
    // Exchange tail: data-plane serving totals, plus the shard-to-shard
    // wire-fault events the shard's ExchangeClient absorbed. The latter fold
    // into the same wire_* counters as coordinator-channel faults — one
    // fault discipline, one ledger (exchange_reqs_sent stays out of
    // messages_sent: that counter is coordinator-originated traffic only).
    local.exchange_requests += stats.exchange_reqs_served;
    local.exchange_batches += stats.exchange_batches_sent;
    local.exchange_tuples += stats.exchange_tuples_sent;
    local.exchange_bytes += stats.exchange_bytes_sent;
    local.wire_drops += stats.exchange_wire_drops;
    local.wire_delays += stats.exchange_wire_delays;
    local.wire_duplicates += stats.exchange_wire_duplicates;
    local.reconnects += stats.exchange_reconnects;
    // Topology tail: per-shard facts, so they land in the shard's
    // RuntimeMetrics slot (mirroring where the in-process worker writes
    // them), not in the aggregate transport counters.
    ShardMetrics& sm = metrics_->shard(i);
    sm.pinned_cpu.store(stats.pinned_cpu, std::memory_order_relaxed);
    sm.ctx_voluntary.fetch_add(stats.ctx_voluntary, std::memory_order_relaxed);
    sm.ctx_involuntary.fetch_add(stats.ctx_involuntary,
                                 std::memory_order_relaxed);
  }
  MergeCounters(local);
}

void SocketTransport::ReapShard(int32_t i) {
  pid_t pid = procs_[static_cast<size_t>(i)].pid;
  if (pid <= 0) return;
  procs_[static_cast<size_t>(i)].pid = -1;
  ShardExitStatus& ex = shard_exits_[static_cast<size_t>(i)];
  ex.shard = i;

  // Escalation ladder: grace period for the kShutdown drain, then SIGTERM
  // (the server's signal handler turns it into a clean stop), then SIGKILL.
  // Every rung records the child's wait status: a shard that died in a
  // TransportPanic abort exits here as a SIGABRT corpse, and discarding that
  // would let a determinism bug masquerade as a clean run.
  auto record = [&ex](int status) {
    if (WIFEXITED(status)) {
      ex.exited = true;
      ex.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      ex.term_signal = WTERMSIG(status);
    }
  };
  auto wait_for = [pid, &ex, &record](int millis) {
    for (int waited = 0; waited < millis; waited += 10) {
      int status = 0;
      pid_t r = waitpid(pid, &status, WNOHANG);
      if (r == pid) {
        record(status);
        return true;
      }
      if (r < 0 && errno == ECHILD) {
        // Already reaped — nothing else waits on our children, so this
        // should not happen; with no status available, record a clean exit
        // rather than invent a failure.
        ex.exited = true;
        ex.exit_code = 0;
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  };
  if (wait_for(2000)) return;
  ex.forced_term = true;
  kill(pid, SIGTERM);
  if (wait_for(1000)) return;
  ex.forced_kill = true;
  kill(pid, SIGKILL);
  int status = 0;
  if (waitpid(pid, &status, 0) == pid) record(status);
}

void SocketTransport::Drain() {
  if (!started_ || drained_) return;
  drained_ = true;
  // Stop the live-telemetry poller before the shutdown rounds so it can
  // never race a shard's final drain on a second connection.
  poller_stop_.store(true, std::memory_order_relaxed);
  if (poller_.joinable()) poller_.join();
  for (int32_t i = 0; i < sharded_.num_shards(); ++i) {
    ShutdownShard(i);
    ReapShard(i);
    if (!postmortem_dir_.empty()) {
      std::string path = PostmortemPath(postmortem_dir_, i);
      struct stat st{};
      if (stat(path.c_str(), &st) == 0 && st.st_size > 0) {
        shard_exits_[static_cast<size_t>(i)].postmortem_path = path;
      }
    }
  }
  if (options_.transport == TransportKind::kUnixSocket) {
    for (const net::SocketAddr& addr : addrs_) unlink(addr.path.c_str());
    for (const net::SocketAddr& addr : data_addrs_) unlink(addr.path.c_str());
    if (!owned_socket_dir_.empty()) rmdir(owned_socket_dir_.c_str());
  }
  // Succeeds only when no child dumped: postmortems outlive the transport.
  if (owned_postmortem_dir_) rmdir(postmortem_dir_.c_str());
}

TransportReport SocketTransport::Report() const {
  TransportReport report;
  report.kind = options_.transport;
  {
    std::lock_guard<std::mutex> guard(counters_mu_);
    report.counters = counters_;
  }
  report.shard_rtt.reserve(shard_rtt_.size());
  for (const auto& hist : shard_rtt_) {
    report.shard_rtt.push_back(hist->Snapshot());
    report.rtt.Merge(report.shard_rtt.back());
  }
  // Exit statuses are recorded by Drain()'s reap pass; before that the
  // entries are default (shard = -1) and callers should not judge them.
  report.shard_exits = shard_exits_;
  return report;
}

// ---------------------------------------------------------------------------
// DistCoordinatorSession: one client thread's coordinator. Owns one lazily
// connected FaultyChannel per shard (dist/wire_channel.h carries the shared
// connect/fault/framing discipline) and mirrors TxnCoordinator's accounting
// with the simulated message sleeps replaced by real wire round trips.

class DistCoordinatorSession : public TransportSession {
 public:
  DistCoordinatorSession(SocketTransport* transport, int client_id)
      : transport_(transport),
        client_id_(static_cast<uint32_t>(client_id)),
        options_(transport->options_),
        injector_(transport->injector_),
        metrics_(transport->metrics_),
        prepare_us_(options_.local_work_us + options_.lock_hold_us),
        wire_faults_(options_.faults.wire_enabled()),
        exchange_on_(options_.exchange_enabled),
        channels_(static_cast<size_t>(transport->sharded_.num_shards())) {
    for (size_t i = 0; i < channels_.size(); ++i) {
      channels_[i].Configure(transport->addrs_[i], static_cast<int32_t>(i),
                             &injector_, wire_faults_, &counters_, "coord");
    }
  }

  ~DistCoordinatorSession() override { transport_->MergeCounters(counters_); }

  void ExecuteLocal(const ClassifiedTxn& txn) override;
  void ExecuteDistributed(const ClassifiedTxn& txn) override;

 private:
  bool AttemptOnce(const ClassifiedTxn& txn, uint32_t attempt, bool traced);
  void AbortPrepared(const std::vector<int32_t>& prepared,
                     const ClassifiedTxn& txn, uint32_t attempt);
  /// Commits the home shard and collects the kTupleBatch stream it assembles
  /// (terminated by the CommitAck), then feeds the entries through the same
  /// BuildExchangeOutcome accounting the in-process backend uses.
  void CommitHomeAndCollect(const ClassifiedTxn& txn, uint32_t attempt,
                            const std::string& payload);

  /// Readies `shard`'s channel for a message of `txn_id`: disconnect fault,
  /// (re)connect, Hello handshake on a fresh connection.
  FaultyChannel& Ready(int32_t shard, uint64_t txn_id) {
    FaultyChannel& ch = channels_[static_cast<size_t>(shard)];
    ch.TouchForTxn(txn_id);
    if (ch.EnsureConnected()) {
      // Fresh connection (first use, or after a disconnect fault): the
      // server side starts a new dedup watermark, our side restarted at
      // seq 1 — run the identity handshake before any protocol traffic.
      net::HelloMsg hello;
      hello.client_id = client_id_;
      hello.shard_id = shard;
      const uint64_t t0 = TraceRecorder::Default().NowUs();
      ch.RawSend(net::EncodeFrame(MsgType::kHello, ch.NextSeq(), hello.Encode()));
      Frame ack = ch.RecvType(MsgType::kHelloAck);
      const uint64_t t1 = TraceRecorder::Default().NowUs();
      net::HelloAckMsg am;
      if (!am.Decode(ack.payload) || am.shard_id != shard) {
        TransportPanic("hello", shard, Status::Internal("bad HelloAck"));
      }
      // Every session handshake doubles as a clock-offset sample for the
      // merged trace (best RTT wins, so early quiet-wire Hellos dominate).
      transport_->RecordOffsetSample(shard, t0, t1, am.now_us);
    }
    return ch;
  }

  /// Fire-and-forget send with the full fault discipline.
  void Send(int32_t shard, MsgType type, const std::string& payload,
            uint64_t txn_id, uint32_t attempt) {
    Ready(shard, txn_id).SendWithFaults(type, payload, txn_id, attempt);
  }

  /// One request/response round trip, RTT recorded against `shard`.
  Frame Call(int32_t shard, MsgType type, const std::string& payload,
             uint64_t txn_id, uint32_t attempt, MsgType want) {
    auto start = std::chrono::steady_clock::now();
    FaultyChannel& ch = Ready(shard, txn_id);
    ch.SendWithFaults(type, payload, txn_id, attempt);
    Frame reply = ch.RecvType(want);
    transport_->shard_rtt_[static_cast<size_t>(shard)]->Record(ElapsedUs(start));
    return reply;
  }

  net::FragmentMsg WholeFragment(const ClassifiedTxn& txn, uint32_t attempt) const;
  /// Only the accesses shard `p` stores (replicated writes included): the
  /// slice of the transaction that shard actually prepares. When exchange is
  /// on, the HOME shard's slice additionally carries the txn's full read set
  /// so a commit can assemble it without a second coordinator round trip.
  net::FragmentMsg SliceFragment(const ClassifiedTxn& txn, uint32_t attempt,
                                 int32_t p) const;

  SocketTransport* transport_;
  const uint32_t client_id_;
  const RuntimeOptions& options_;
  const FaultInjector& injector_;
  RuntimeMetrics* metrics_;
  const uint32_t prepare_us_;
  const bool wire_faults_;
  const bool exchange_on_;

  std::vector<FaultyChannel> channels_;
  TransportCounters counters_;
};

void DistCoordinatorSession::CommitHomeAndCollect(const ClassifiedTxn& txn,
                                                  uint32_t attempt,
                                                  const std::string& payload) {
  auto start = std::chrono::steady_clock::now();
  FaultyChannel& ch = Ready(txn.home, txn.txn_id);
  ch.SendWithFaults(MsgType::kCommit, payload, txn.txn_id, attempt);

  // Collect the assembled read set: zero or more in-order kTupleBatch
  // frames, terminated by the CommitAck (a read-free txn streams nothing, so
  // the terminator doubles as the empty-stream case).
  std::vector<ExchangeEntry> entries;
  uint32_t expect_index = 0;
  for (;;) {
    Frame frame = ch.RecvAny();
    if (frame.type == MsgType::kCommitAck) break;
    if (frame.type != MsgType::kTupleBatch) continue;  // stray: skip
    net::TupleBatchMsg batch;
    if (!batch.Decode(frame.payload)) {
      TransportPanic("exchange", txn.home,
                     Status::Internal("bad TupleBatchMsg"));
    }
    if (batch.txn_id != txn.txn_id || batch.batch_index != expect_index) {
      TransportPanic("exchange", txn.home,
                     Status::Internal("tuple batch stream out of order"));
    }
    ++expect_index;
    entries.reserve(entries.size() + batch.entries.size());
    for (net::TupleBatchEntry& e : batch.entries) {
      entries.push_back({TupleId{static_cast<TableId>(e.table),
                                 static_cast<RowId>(e.row)},
                         std::move(e.bytes)});
    }
  }
  transport_->shard_rtt_[static_cast<size_t>(txn.home)]->Record(ElapsedUs(start));

  size_t want = 0;
  for (const Access& a : txn.txn->accesses) {
    if (!a.write) ++want;
  }
  if (entries.size() != want) {
    TransportPanic("exchange", txn.home,
                   Status::Internal("assembled read set truncated"));
  }
  // Same accounting path as the in-process backend, fed with the bytes that
  // actually crossed the wire — the parity tests compare digests to prove
  // the two are identical.
  BuildExchangeOutcome(transport_->sharded_, txn, entries,
                       options_.exchange_batch_bytes, metrics_);
}

net::FragmentMsg DistCoordinatorSession::WholeFragment(const ClassifiedTxn& txn,
                                                       uint32_t attempt) const {
  net::FragmentMsg frag;
  frag.txn_id = txn.txn_id;
  frag.attempt = attempt;
  frag.class_id = txn.txn->class_id;
  frag.accesses.reserve(txn.txn->accesses.size());
  for (const Access& a : txn.txn->accesses) {
    frag.accesses.push_back({static_cast<uint32_t>(a.tuple.table),
                             static_cast<uint64_t>(a.tuple.row),
                             static_cast<uint8_t>(a.write ? 1 : 0)});
  }
  return frag;
}

net::FragmentMsg DistCoordinatorSession::SliceFragment(const ClassifiedTxn& txn,
                                                       uint32_t attempt,
                                                       int32_t p) const {
  net::FragmentMsg frag;
  frag.txn_id = txn.txn_id;
  frag.attempt = attempt;
  frag.class_id = txn.txn->class_id;
  for (const Access& a : txn.txn->accesses) {
    int32_t owner = transport_->sharded_.PrimaryShardOf(a.tuple);
    // Replicated reads are satisfied by any copy; replicated writes must be
    // applied on every participant, so every slice carries them.
    if (owner != p && !(owner == kReplicated && a.write)) continue;
    frag.accesses.push_back({static_cast<uint32_t>(a.tuple.table),
                             static_cast<uint64_t>(a.tuple.row),
                             static_cast<uint8_t>(a.write ? 1 : 0)});
  }
  if (exchange_on_ && p == txn.home) {
    // The home shard assembles the read set at commit time; its prepare
    // carries the FULL read set (access order, duplicates preserved) so no
    // extra coordinator round is needed. Other slices leave the tail empty,
    // keeping their frames byte-identical to the exchange-off protocol.
    for (const Access& a : txn.txn->accesses) {
      if (a.write) continue;
      frag.exchange_reads.push_back({static_cast<uint32_t>(a.tuple.table),
                                     static_cast<uint64_t>(a.tuple.row), 0});
    }
  }
  return frag;
}

void DistCoordinatorSession::ExecuteLocal(const ClassifiedTxn& txn) {
  TraceRecorder& rec = TraceRecorder::Default();
  const bool traced =
      rec.enabled() &&
      TxnTraceSampled(options_.faults.seed, txn.txn_id, options_.trace_sample_rate);
  auto start = std::chrono::steady_clock::now();
  const uint64_t start_ts = traced ? rec.ToTraceUs(start) : 0;

  if (options_.verify_residency) {
    uint64_t faults = CountResidencyFaults(transport_->sharded_, txn);
    if (faults > 0) {
      metrics_->residency_faults.fetch_add(faults, std::memory_order_relaxed);
    }
  }

  Call(txn.home, MsgType::kExecute, WholeFragment(txn, 0).Encode(), txn.txn_id,
       0, MsgType::kExecuteAck);

  // The shard burned local_work_us executing the fragment; account it to the
  // shard exactly as the in-process worker does for itself.
  ShardMetrics& sm = metrics_->shard(txn.home);
  sm.busy_us.fetch_add(options_.local_work_us, std::memory_order_relaxed);
  uint64_t latency_us = ElapsedUs(start);
  sm.local_txns.fetch_add(1, std::memory_order_relaxed);
  sm.local_latency.Record(latency_us);
  metrics_->committed.fetch_add(1, std::memory_order_relaxed);
  if (traced) {
    rec.Span("runtime", "txn.local", start_ts, latency_us, "txn",
             static_cast<int64_t>(txn.txn_id), "shard", txn.home);
  }
}

void DistCoordinatorSession::AbortPrepared(const std::vector<int32_t>& prepared,
                                           const ClassifiedTxn& txn,
                                           uint32_t attempt) {
  // Fire-and-forget, like the in-process backend releasing locks without a
  // round trip. Delivery is still guaranteed: the drop fault retransmits.
  net::TxnRefMsg ref;
  ref.txn_id = txn.txn_id;
  ref.attempt = attempt;
  const std::string payload = ref.Encode();
  for (int32_t p : prepared) {
    Send(p, MsgType::kAbort, payload, txn.txn_id, attempt);
  }
}

bool DistCoordinatorSession::AttemptOnce(const ClassifiedTxn& txn,
                                         uint32_t attempt, bool traced) {
  TraceRecorder& rec = TraceRecorder::Default();
  const int64_t tid = static_cast<int64_t>(txn.txn_id);
  const uint64_t prepare_ts = traced ? rec.NowUs() : 0;

  // Prepare phase: participants in ascending id order (deadlock freedom —
  // see dist/shard_server.h). Each Call's vote round trip replaces one
  // in-process SimulateNetworkDelay with real wire latency; the metric
  // updates below mirror TxnCoordinator::AttemptOnce line for line, driven
  // by the shard's reported decisions instead of local injector calls (the
  // two agree bit-for-bit: same plan, same pure decision function).
  std::vector<int32_t> prepared;
  prepared.reserve(txn.participants.size());
  for (int32_t p : txn.participants) {
    ShardMetrics& sm = metrics_->shard(p);
    sm.participation_attempts.fetch_add(1, std::memory_order_relaxed);
    Frame vote_frame = Call(p, MsgType::kPrepare,
                            SliceFragment(txn, attempt, p).Encode(), txn.txn_id,
                            attempt, MsgType::kVote);
    net::VoteMsg vote;
    if (!vote.Decode(vote_frame.payload)) {
      TransportPanic("vote", p, Status::Internal("undecodable VoteMsg"));
    }
    if (vote.decision == net::VoteDecision::kDown) {
      sm.down_events.fetch_add(1, std::memory_order_relaxed);
      metrics_->shard_down_aborts.fetch_add(1, std::memory_order_relaxed);
      if (traced) rec.Instant("fault", "fault.shard_down", "txn", tid, "shard", p);
      AbortPrepared(prepared, txn, attempt);
      return false;
    }
    sm.busy_us.fetch_add(prepare_us_, std::memory_order_relaxed);
    if (vote.stalled != 0) {
      sm.stalls.fetch_add(1, std::memory_order_relaxed);
      metrics_->stalls_injected.fetch_add(1, std::memory_order_relaxed);
      if (traced) rec.Instant("fault", "fault.stall", "txn", tid, "shard", p);
    }
    if (vote.decision == net::VoteDecision::kReject) {
      sm.prepare_rejects.fetch_add(1, std::memory_order_relaxed);
      metrics_->prepare_rejects.fetch_add(1, std::memory_order_relaxed);
      if (traced) {
        rec.Instant("fault", "fault.prepare_reject", "txn", tid, "shard", p);
      }
      AbortPrepared(prepared, txn, attempt);
      return false;
    }
    sm.dist_participations.fetch_add(1, std::memory_order_relaxed);
    prepared.push_back(p);
  }

  if (injector_.enabled() && injector_.CoordinatorTimesOut(txn.txn_id, attempt)) {
    // Every prepared shard keeps holding (blocked in its NextFrom) while the
    // coordinator waits out the vote timeout — the expensive abort, with the
    // hold now enforced by real blocked event loops instead of mutexes.
    metrics_->coordinator_timeouts.fetch_add(1, std::memory_order_relaxed);
    if (traced) {
      rec.Instant("fault", "fault.timeout", "txn", tid, "attempt",
                  static_cast<int64_t>(attempt));
    }
    SimulateNetworkDelay(injector_.plan().timeout_us);
    AbortPrepared(prepared, txn, attempt);
    return false;
  }
  if (traced) {
    rec.Span("runtime", "2pc.prepare", prepare_ts, rec.NowUs() - prepare_ts,
             "txn", tid, "attempt", static_cast<int64_t>(attempt));
  }
  const uint64_t commit_ts = traced ? rec.NowUs() : 0;

  // Commit round: each ack releases that shard's hold. Latency the client
  // observes; the shards free up one by one as the acks come back. The home
  // shard's commit is the exchange trigger: it streams the assembled read
  // set (pulling remote rows over the data plane while still holding) before
  // its ack, and the coordinator accounts the collected entries through the
  // same BuildExchangeOutcome path the in-process backend uses.
  net::TxnRefMsg ref;
  ref.txn_id = txn.txn_id;
  ref.attempt = attempt;
  const std::string payload = ref.Encode();
  for (int32_t p : prepared) {
    if (exchange_on_ && p == txn.home) {
      CommitHomeAndCollect(txn, attempt, payload);
    } else {
      Call(p, MsgType::kCommit, payload, txn.txn_id, attempt,
           MsgType::kCommitAck);
    }
  }
  if (traced) {
    rec.Span("runtime", "2pc.commit", commit_ts, rec.NowUs() - commit_ts, "txn",
             tid, "attempt", static_cast<int64_t>(attempt));
  }
  return true;
}

void DistCoordinatorSession::ExecuteDistributed(const ClassifiedTxn& txn) {
  TraceRecorder& rec = TraceRecorder::Default();
  const bool traced =
      rec.enabled() &&
      TxnTraceSampled(options_.faults.seed, txn.txn_id, options_.trace_sample_rate);
  const int64_t tid = static_cast<int64_t>(txn.txn_id);
  auto start = std::chrono::steady_clock::now();
  const uint64_t start_ts = traced ? rec.ToTraceUs(start) : 0;

  if (options_.verify_residency) {
    uint64_t faults = CountResidencyFaults(transport_->sharded_, txn);
    if (faults > 0) {
      metrics_->residency_faults.fetch_add(faults, std::memory_order_relaxed);
    }
  }

  const uint32_t budget = std::max(injector_.plan().max_attempts, 1u);
  for (uint32_t attempt = 0; attempt < budget; ++attempt) {
    if (AttemptOnce(txn, attempt, traced)) {
      uint64_t latency_us = ElapsedUs(start);
      metrics_->shard(txn.home).dist_latency.Record(latency_us);
      if (attempt > 0) metrics_->retry_latency.Record(latency_us);
      if (txn.distributed) {
        metrics_->distributed_committed.fetch_add(1, std::memory_order_relaxed);
      }
      metrics_->committed.fetch_add(1, std::memory_order_relaxed);
      if (traced) {
        rec.Span("runtime", "txn.dist", start_ts, latency_us, "txn", tid,
                 "attempts", static_cast<int64_t>(attempt) + 1);
      }
      return;
    }
    metrics_->aborts.fetch_add(1, std::memory_order_relaxed);
    if (attempt + 1 < budget) {
      metrics_->retries.fetch_add(1, std::memory_order_relaxed);
      const uint64_t backoff_ts = traced ? rec.NowUs() : 0;
      SimulateNetworkDelay(injector_.BackoffUs(txn.txn_id, attempt));
      if (traced) {
        rec.Span("runtime", "backoff", backoff_ts, rec.NowUs() - backoff_ts,
                 "txn", tid, "attempt", static_cast<int64_t>(attempt));
      }
    }
  }

  metrics_->failed.fetch_add(1, std::memory_order_relaxed);
  if (traced) {
    rec.Span("runtime", "txn.failed", start_ts, ElapsedUs(start), "txn", tid,
             "attempts", static_cast<int64_t>(budget));
  }
}

std::unique_ptr<TransportSession> SocketTransport::NewSession(int client_id) {
  return std::make_unique<DistCoordinatorSession>(this, client_id);
}

}  // namespace jecb
