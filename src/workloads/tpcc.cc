#include "workloads/tpcc.h"

#include <deque>

#include "common/rng.h"

namespace jecb {

namespace {

const char* const kTpccProcedures = R"SQL(
PROCEDURE NewOrder(@w_id, @d_id, @c_id, @o_id, @ol_i_id, @ol_supply_w_id, @qty, @entry_d) {
  SELECT W_TAX FROM WAREHOUSE WHERE W_ID = @w_id;
  SELECT D_TAX, D_NEXT_O_ID FROM DISTRICT WHERE D_W_ID = @w_id AND D_ID = @d_id;
  UPDATE DISTRICT SET D_NEXT_O_ID = @o_id WHERE D_W_ID = @w_id AND D_ID = @d_id;
  SELECT C_DISCOUNT, C_LAST FROM CUSTOMER
    WHERE C_W_ID = @w_id AND C_D_ID = @d_id AND C_ID = @c_id;
  INSERT INTO ORDERS (O_W_ID, O_D_ID, O_ID, O_C_ID, O_ENTRY_D, O_CARRIER_ID)
    VALUES (@w_id, @d_id, @o_id, @c_id, @entry_d, 0);
  INSERT INTO NEW_ORDER (NO_W_ID, NO_D_ID, NO_O_ID) VALUES (@w_id, @d_id, @o_id);
  SELECT I_PRICE, I_NAME FROM ITEM WHERE I_ID = @ol_i_id;
  SELECT S_QUANTITY FROM STOCK WHERE S_W_ID = @ol_supply_w_id AND S_I_ID = @ol_i_id;
  UPDATE STOCK SET S_QUANTITY = @qty WHERE S_W_ID = @ol_supply_w_id AND S_I_ID = @ol_i_id;
  INSERT INTO ORDER_LINE (OL_W_ID, OL_D_ID, OL_O_ID, OL_NUMBER, OL_I_ID, OL_SUPPLY_W_ID, OL_QUANTITY)
    VALUES (@w_id, @d_id, @o_id, 1, @ol_i_id, @ol_supply_w_id, @qty);
}
PROCEDURE Payment(@w_id, @d_id, @c_w_id, @c_d_id, @c_id, @h_id, @amount, @h_date) {
  UPDATE WAREHOUSE SET W_YTD = @amount WHERE W_ID = @w_id;
  UPDATE DISTRICT SET D_YTD = @amount WHERE D_W_ID = @w_id AND D_ID = @d_id;
  UPDATE CUSTOMER SET C_BALANCE = @amount
    WHERE C_W_ID = @c_w_id AND C_D_ID = @c_d_id AND C_ID = @c_id;
  INSERT INTO HISTORY (H_ID, H_C_W_ID, H_C_D_ID, H_C_ID, H_W_ID, H_D_ID, H_AMOUNT, H_DATE)
    VALUES (@h_id, @c_w_id, @c_d_id, @c_id, @w_id, @d_id, @amount, @h_date);
}
PROCEDURE OrderStatus(@w_id, @d_id, @c_id) {
  SELECT C_BALANCE, C_LAST FROM CUSTOMER
    WHERE C_W_ID = @w_id AND C_D_ID = @d_id AND C_ID = @c_id;
  SELECT @o_id = O_ID FROM ORDERS
    WHERE O_W_ID = @w_id AND O_D_ID = @d_id AND O_C_ID = @c_id;
  SELECT OL_I_ID, OL_QUANTITY FROM ORDER_LINE
    WHERE OL_W_ID = @w_id AND OL_D_ID = @d_id AND OL_O_ID = @o_id;
}
PROCEDURE Delivery(@w_id, @d_id, @o_id, @carrier_id) {
  SELECT NO_O_ID FROM NEW_ORDER WHERE NO_W_ID = @w_id AND NO_D_ID = @d_id;
  DELETE FROM NEW_ORDER WHERE NO_W_ID = @w_id AND NO_D_ID = @d_id AND NO_O_ID = @o_id;
  SELECT @c_id = O_C_ID FROM ORDERS WHERE O_W_ID = @w_id AND O_D_ID = @d_id AND O_ID = @o_id;
  UPDATE ORDERS SET O_CARRIER_ID = @carrier_id
    WHERE O_W_ID = @w_id AND O_D_ID = @d_id AND O_ID = @o_id;
  UPDATE ORDER_LINE SET OL_QUANTITY = OL_QUANTITY
    WHERE OL_W_ID = @w_id AND OL_D_ID = @d_id AND OL_O_ID = @o_id;
  UPDATE CUSTOMER SET C_BALANCE = C_BALANCE
    WHERE C_W_ID = @w_id AND C_D_ID = @d_id AND C_ID = @c_id;
}
PROCEDURE StockLevel(@w_id, @d_id, @threshold) {
  SELECT D_NEXT_O_ID FROM DISTRICT WHERE D_W_ID = @w_id AND D_ID = @d_id;
  SELECT OL_I_ID FROM ORDER_LINE WHERE OL_W_ID = @w_id AND OL_D_ID = @d_id;
  SELECT S_QUANTITY FROM STOCK JOIN ORDER_LINE ON S_I_ID = OL_I_ID
    WHERE S_W_ID = @w_id AND S_QUANTITY < @threshold;
}
)SQL";

Schema MakeTpccSchema() {
  Schema s;
  auto table = [&](const char* name, std::initializer_list<const char*> int_cols,
                   std::initializer_list<const char*> num_cols = {}) {
    auto tid = s.AddTable(name);
    CheckOk(tid.status(), "tpcc schema");
    for (const char* c : int_cols) {
      CheckOk(s.AddColumn(tid.value(), c, ValueType::kInt64), "tpcc schema");
    }
    for (const char* c : num_cols) {
      CheckOk(s.AddColumn(tid.value(), c, ValueType::kDouble), "tpcc schema");
    }
    return tid.value();
  };
  auto pk = [&](TableId t, std::vector<std::string> cols) {
    CheckOk(s.SetPrimaryKey(t, cols), "tpcc pk");
  };
  auto fk = [&](const char* t, std::vector<std::string> cols, const char* rt,
                std::vector<std::string> rcols) {
    CheckOk(s.AddForeignKey(t, cols, rt, rcols), "tpcc fk");
  };

  TableId w = table("WAREHOUSE", {"W_ID"}, {"W_TAX", "W_YTD"});
  pk(w, {"W_ID"});
  TableId d = table("DISTRICT", {"D_W_ID", "D_ID", "D_NEXT_O_ID"}, {"D_TAX", "D_YTD"});
  pk(d, {"D_W_ID", "D_ID"});
  TableId c = table("CUSTOMER", {"C_W_ID", "C_D_ID", "C_ID", "C_LAST"},
                    {"C_DISCOUNT", "C_BALANCE"});
  pk(c, {"C_W_ID", "C_D_ID", "C_ID"});
  TableId h = table("HISTORY",
                    {"H_ID", "H_C_W_ID", "H_C_D_ID", "H_C_ID", "H_W_ID", "H_D_ID",
                     "H_DATE"},
                    {"H_AMOUNT"});
  pk(h, {"H_ID"});
  TableId o = table("ORDERS", {"O_W_ID", "O_D_ID", "O_ID", "O_C_ID", "O_ENTRY_D",
                               "O_CARRIER_ID"});
  pk(o, {"O_W_ID", "O_D_ID", "O_ID"});
  TableId no = table("NEW_ORDER", {"NO_W_ID", "NO_D_ID", "NO_O_ID"});
  pk(no, {"NO_W_ID", "NO_D_ID", "NO_O_ID"});
  TableId ol = table("ORDER_LINE", {"OL_W_ID", "OL_D_ID", "OL_O_ID", "OL_NUMBER",
                                    "OL_I_ID", "OL_SUPPLY_W_ID", "OL_QUANTITY"});
  pk(ol, {"OL_W_ID", "OL_D_ID", "OL_O_ID", "OL_NUMBER"});
  TableId item = table("ITEM", {"I_ID", "I_NAME"}, {"I_PRICE"});
  pk(item, {"I_ID"});
  TableId st = table("STOCK", {"S_W_ID", "S_I_ID", "S_QUANTITY"});
  pk(st, {"S_W_ID", "S_I_ID"});

  fk("DISTRICT", {"D_W_ID"}, "WAREHOUSE", {"W_ID"});
  fk("CUSTOMER", {"C_W_ID", "C_D_ID"}, "DISTRICT", {"D_W_ID", "D_ID"});
  fk("HISTORY", {"H_C_W_ID", "H_C_D_ID", "H_C_ID"}, "CUSTOMER",
     {"C_W_ID", "C_D_ID", "C_ID"});
  fk("ORDERS", {"O_W_ID", "O_D_ID", "O_C_ID"}, "CUSTOMER", {"C_W_ID", "C_D_ID", "C_ID"});
  fk("NEW_ORDER", {"NO_W_ID", "NO_D_ID", "NO_O_ID"}, "ORDERS",
     {"O_W_ID", "O_D_ID", "O_ID"});
  fk("ORDER_LINE", {"OL_W_ID", "OL_D_ID", "OL_O_ID"}, "ORDERS",
     {"O_W_ID", "O_D_ID", "O_ID"});
  fk("ORDER_LINE", {"OL_SUPPLY_W_ID", "OL_I_ID"}, "STOCK", {"S_W_ID", "S_I_ID"});
  fk("STOCK", {"S_W_ID"}, "WAREHOUSE", {"W_ID"});
  fk("STOCK", {"S_I_ID"}, "ITEM", {"I_ID"});
  return s;
}

/// Handles to populated tuples, plus the dynamic state trace generation
/// mutates (order counters, delivery queues).
struct TpccState {
  const TpccConfig* cfg;
  Database* db;
  Rng rng;

  std::vector<TupleId> warehouse;                   // [w]
  std::vector<std::vector<TupleId>> district;       // [w][d]
  std::vector<std::vector<std::vector<TupleId>>> customer;  // [w][d][c]
  std::vector<std::vector<TupleId>> stock;          // [w][i]
  std::vector<TupleId> item;                        // [i]

  struct OrderRef {
    TupleId order;
    std::vector<TupleId> lines;
    TupleId new_order;       // valid when pending
    bool pending = false;    // still in NEW_ORDER
    int customer = 0;
  };
  // Per (w, d): orders in insertion sequence; next order id; delivery cursor.
  std::vector<std::vector<std::deque<OrderRef>>> orders;  // [w][d]
  std::vector<std::vector<size_t>> delivery_cursor;       // [w][d]
  std::vector<std::vector<int64_t>> next_o_id;            // [w][d]
  std::vector<std::vector<std::vector<int64_t>>> last_order_of;  // [w][d][c]
  int64_t next_h_id = 1;

  TpccState(const TpccConfig* config, Database* database, uint64_t seed)
      : cfg(config), db(database), rng(seed) {}

  int RandomWarehouse() {
    if (cfg->warehouse_zipf_theta > 0.0) {
      return static_cast<int>(rng.Zipf(cfg->warehouses, cfg->warehouse_zipf_theta));
    }
    return static_cast<int>(rng.Uniform(0, cfg->warehouses - 1));
  }
  int OtherWarehouse(int w) {
    if (cfg->warehouses == 1) return w;
    int o = static_cast<int>(rng.Uniform(0, cfg->warehouses - 2));
    return o >= w ? o + 1 : o;
  }

  /// Inserts one order with lines; returns its reference.
  OrderRef InsertOrder(int w, int d, int c, Transaction* txn) {
    int64_t o_id = next_o_id[w][d]++;
    OrderRef ref;
    ref.customer = c;
    ref.order = db->MustInsert(
        "ORDERS", {int64_t(w), int64_t(d), o_id, int64_t(c), rng.Uniform(1, 1000000),
                   int64_t(0)});
    ref.new_order = db->MustInsert("NEW_ORDER", {int64_t(w), int64_t(d), o_id});
    ref.pending = true;
    int lines = static_cast<int>(
        rng.Uniform(cfg->min_order_lines, cfg->max_order_lines));
    for (int l = 0; l < lines; ++l) {
      int supply_w = rng.Chance(cfg->remote_order_line_prob) ? OtherWarehouse(w) : w;
      int i = static_cast<int>(rng.Uniform(0, cfg->items - 1));
      TupleId line = db->MustInsert(
          "ORDER_LINE", {int64_t(w), int64_t(d), o_id, int64_t(l), int64_t(i),
                         int64_t(supply_w), rng.Uniform(1, 10)});
      ref.lines.push_back(line);
      if (txn != nullptr) {
        txn->Read(item[i]);
        txn->Write(stock[supply_w][i]);
        txn->Write(line);
      }
    }
    last_order_of[w][d][c] = static_cast<int64_t>(orders[w][d].size());
    if (txn != nullptr) {
      txn->Write(ref.order);
      txn->Write(ref.new_order);
    }
    return ref;
  }
};

void Populate(TpccState* st) {
  const TpccConfig& cfg = *st->cfg;
  Database* db = st->db;
  for (int i = 0; i < cfg.items; ++i) {
    st->item.push_back(db->MustInsert("ITEM", {int64_t(i), int64_t(i), 9.99}));
  }
  st->warehouse.resize(cfg.warehouses);
  st->district.assign(cfg.warehouses, {});
  st->customer.assign(cfg.warehouses, {});
  st->stock.assign(cfg.warehouses, {});
  st->orders.assign(cfg.warehouses, {});
  st->delivery_cursor.assign(cfg.warehouses, {});
  st->next_o_id.assign(cfg.warehouses, {});
  st->last_order_of.assign(cfg.warehouses, {});
  for (int w = 0; w < cfg.warehouses; ++w) {
    st->warehouse[w] = db->MustInsert("WAREHOUSE", {int64_t(w), 0.05, 0.0});
    st->district[w].resize(cfg.districts_per_warehouse);
    st->customer[w].resize(cfg.districts_per_warehouse);
    st->orders[w].resize(cfg.districts_per_warehouse);
    st->delivery_cursor[w].assign(cfg.districts_per_warehouse, 0);
    st->next_o_id[w].assign(cfg.districts_per_warehouse, 1);
    st->last_order_of[w].assign(cfg.districts_per_warehouse, {});
    st->stock[w].resize(cfg.items);
    for (int i = 0; i < cfg.items; ++i) {
      st->stock[w][i] = db->MustInsert("STOCK", {int64_t(w), int64_t(i), int64_t(50)});
    }
    for (int d = 0; d < cfg.districts_per_warehouse; ++d) {
      st->district[w][d] =
          db->MustInsert("DISTRICT", {int64_t(w), int64_t(d), int64_t(1), 0.07, 0.0});
      st->customer[w][d].resize(cfg.customers_per_district);
      st->last_order_of[w][d].assign(cfg.customers_per_district, -1);
      for (int c = 0; c < cfg.customers_per_district; ++c) {
        st->customer[w][d][c] = db->MustInsert(
            "CUSTOMER", {int64_t(w), int64_t(d), int64_t(c), int64_t(c % 100), 0.1, 0.0});
      }
      for (int o = 0; o < cfg.initial_orders_per_district; ++o) {
        int c = static_cast<int>(st->rng.Uniform(0, cfg.customers_per_district - 1));
        st->orders[w][d].push_back(st->InsertOrder(w, d, c, nullptr));
      }
    }
  }
}

}  // namespace

WorkloadBundle TpccWorkload::Make(size_t num_txns, uint64_t seed) const {
  WorkloadBundle bundle;
  bundle.db = std::make_unique<Database>(MakeTpccSchema());
  bundle.procedures = MustParseProcedures(kTpccProcedures);

  TpccState st(&config_, bundle.db.get(), seed);
  Populate(&st);

  Trace& trace = bundle.trace;
  const uint32_t kNewOrder = trace.InternClass("NewOrder");
  const uint32_t kPayment = trace.InternClass("Payment");
  const uint32_t kOrderStatus = trace.InternClass("OrderStatus");
  const uint32_t kDelivery = trace.InternClass("Delivery");
  const uint32_t kStockLevel = trace.InternClass("StockLevel");

  const std::vector<double> mix = {
      config_.mix_new_order,
      config_.mix_new_order + config_.mix_payment,
      config_.mix_new_order + config_.mix_payment + config_.mix_order_status,
      config_.mix_new_order + config_.mix_payment + config_.mix_order_status +
          config_.mix_delivery,
      1.0};

  for (size_t n = 0; n < num_txns; ++n) {
    int w = st.RandomWarehouse();
    int d = static_cast<int>(st.rng.Uniform(0, config_.districts_per_warehouse - 1));
    int c = static_cast<int>(
        st.rng.NuRand(255, 0, config_.customers_per_district - 1));
    Transaction txn;
    switch (PickClass(mix, st.rng.NextDouble())) {
      case 0: {  // NewOrder
        txn.class_id = kNewOrder;
        txn.Read(st.warehouse[w]);
        txn.Write(st.district[w][d]);
        txn.Read(st.customer[w][d][c]);
        st.orders[w][d].push_back(st.InsertOrder(w, d, c, &txn));
        break;
      }
      case 1: {  // Payment
        txn.class_id = kPayment;
        txn.Write(st.warehouse[w]);
        txn.Write(st.district[w][d]);
        int cw = w;
        int cd = d;
        if (st.rng.Chance(config_.remote_payment_prob)) {
          cw = st.OtherWarehouse(w);
          cd = static_cast<int>(
              st.rng.Uniform(0, config_.districts_per_warehouse - 1));
        }
        txn.Write(st.customer[cw][cd][c]);
        TupleId hist = st.db->MustInsert(
            "HISTORY", {st.next_h_id++, int64_t(cw), int64_t(cd), int64_t(c),
                        int64_t(w), int64_t(d), st.rng.Uniform(1, 1000000), 42.0});
        txn.Write(hist);
        break;
      }
      case 2: {  // OrderStatus
        txn.class_id = kOrderStatus;
        txn.Read(st.customer[w][d][c]);
        if (st.orders[w][d].empty()) break;
        int64_t idx = st.last_order_of[w][d][c];
        if (idx < 0) {
          idx = st.rng.Uniform(0, static_cast<int64_t>(st.orders[w][d].size()) - 1);
        }
        const auto& ref = st.orders[w][d][idx];
        txn.Read(ref.order);
        for (TupleId line : ref.lines) txn.Read(line);
        break;
      }
      case 3: {  // Delivery: oldest pending order per district
        txn.class_id = kDelivery;
        for (int dd = 0; dd < config_.districts_per_warehouse; ++dd) {
          auto& dq = st.orders[w][dd];
          size_t& cursor = st.delivery_cursor[w][dd];
          while (cursor < dq.size() && !dq[cursor].pending) ++cursor;
          if (cursor >= dq.size()) continue;
          TpccState::OrderRef& ref = dq[cursor];
          ref.pending = false;
          txn.Write(ref.new_order);
          txn.Write(ref.order);
          for (TupleId line : ref.lines) txn.Write(line);
          txn.Write(st.customer[w][dd][ref.customer]);
        }
        if (txn.accesses.empty()) txn.Read(st.warehouse[w]);
        break;
      }
      default: {  // StockLevel
        txn.class_id = kStockLevel;
        txn.Read(st.district[w][d]);
        const auto& dq = st.orders[w][d];
        size_t scan = std::min<size_t>(dq.size(), 5);
        for (size_t i = dq.size() - scan; i < dq.size(); ++i) {
          for (TupleId line : dq[i].lines) {
            txn.Read(line);
            int64_t item_id =
                st.db->GetValue(line, 4).AsInt();  // OL_I_ID column index
            txn.Read(st.stock[w][item_id]);
          }
        }
        break;
      }
    }
    trace.Add(std::move(txn));
  }
  return bundle;
}

}  // namespace jecb
