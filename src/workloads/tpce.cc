#include "workloads/tpce.h"

#include <deque>

#include "common/rng.h"

namespace jecb {

namespace {

const char* const kTpceProcedures = R"SQL(
PROCEDURE BrokerVolume(@b_name1, @b_name2, @b_name3) {
  SELECT B_NAME, TR_QTY FROM BROKER JOIN TRADE_REQUEST ON TR_B_ID = B_ID
    WHERE B_NAME IN (@b_name1, @b_name2, @b_name3);
}
PROCEDURE CustomerPosition(@cust_id) {
  SELECT C_TAX_ID, C_ST_ID FROM CUSTOMER WHERE C_ID = @cust_id;
  SELECT CA_ID, CA_BAL FROM CUSTOMER_ACCOUNT WHERE CA_C_ID = @cust_id;
  SELECT T_ID, T_S_SYMB, T_QTY FROM TRADE JOIN CUSTOMER_ACCOUNT ON T_CA_ID = CA_ID
    WHERE CA_C_ID = @cust_id;
  SELECT TH_DTS FROM TRADE_HISTORY JOIN TRADE ON TH_T_ID = T_ID
      JOIN CUSTOMER_ACCOUNT ON T_CA_ID = CA_ID
    WHERE CA_C_ID = @cust_id;
}
PROCEDURE MarketFeed(@symb1, @symb2, @symb3, @symb4, @price) {
  UPDATE LAST_TRADE SET LT_PRICE = @price
    WHERE LT_S_SYMB IN (@symb1, @symb2, @symb3, @symb4);
  SELECT TR_T_ID, TR_BID_PRICE FROM TRADE_REQUEST
    WHERE TR_S_SYMB IN (@symb1, @symb2, @symb3, @symb4);
  UPDATE TRADE_REQUEST SET TR_QTY = 0
    WHERE TR_S_SYMB IN (@symb1, @symb2, @symb3, @symb4);
}
PROCEDURE MarketWatch(@acct_id, @wl_id) {
  SELECT WL_C_ID FROM WATCH_LIST WHERE WL_ID = @wl_id;
  SELECT WI_S_SYMB FROM WATCH_ITEM WHERE WI_WL_ID = @wl_id;
  SELECT HS_S_SYMB, HS_QTY FROM HOLDING_SUMMARY WHERE HS_CA_ID = @acct_id;
  SELECT LT_PRICE FROM LAST_TRADE JOIN HOLDING_SUMMARY ON LT_S_SYMB = HS_S_SYMB
    WHERE HS_CA_ID = @acct_id;
}
PROCEDURE SecurityDetail(@symb, @start_day) {
  SELECT S_NAME, S_CO_ID FROM SECURITY WHERE S_SYMB = @symb;
  SELECT CO_NAME FROM COMPANY JOIN SECURITY ON S_CO_ID = CO_ID WHERE S_SYMB = @symb;
  SELECT AD_LINE1 FROM ADDRESS JOIN COMPANY ON CO_AD_ID = AD_ID
      JOIN SECURITY ON S_CO_ID = CO_ID
    WHERE S_SYMB = @symb;
  SELECT EX_NAME FROM EXCHANGE JOIN SECURITY ON S_EX_ID = EX_ID WHERE S_SYMB = @symb;
  SELECT DM_CLOSE FROM DAILY_MARKET WHERE DM_S_SYMB = @symb AND DM_DATE >= @start_day;
  SELECT FI_YEAR, FI_NET_EARN FROM FINANCIAL JOIN COMPANY ON FI_CO_ID = CO_ID
      JOIN SECURITY ON S_CO_ID = CO_ID
    WHERE S_SYMB = @symb;
  SELECT LT_PRICE, LT_VOL FROM LAST_TRADE WHERE LT_S_SYMB = @symb;
  SELECT NI_HEADLINE FROM NEWS_ITEM JOIN NEWS_XREF ON NX_NI_ID = NI_ID
      JOIN COMPANY ON NX_CO_ID = CO_ID JOIN SECURITY ON S_CO_ID = CO_ID
    WHERE S_SYMB = @symb;
}
PROCEDURE TradeLookupFrame1(@t_id1, @t_id2, @t_id3, @t_id4) {
  SELECT T_EXEC_NAME, T_TRADE_PRICE FROM TRADE
    WHERE T_ID IN (@t_id1, @t_id2, @t_id3, @t_id4);
  SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID IN (@t_id1, @t_id2, @t_id3, @t_id4);
  SELECT CT_AMT FROM CASH_TRANSACTION WHERE CT_T_ID IN (@t_id1, @t_id2, @t_id3, @t_id4);
  SELECT TH_DTS FROM TRADE_HISTORY WHERE TH_T_ID IN (@t_id1, @t_id2, @t_id3, @t_id4);
}
PROCEDURE TradeLookupFrame2(@acct_id, @start_dts, @end_dts) {
  SELECT @t_id = T_ID FROM TRADE
    WHERE T_CA_ID = @acct_id AND T_DTS >= @start_dts AND T_DTS <= @end_dts;
  SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID = @t_id;
  SELECT CT_AMT FROM CASH_TRANSACTION WHERE CT_T_ID = @t_id;
  SELECT TH_DTS FROM TRADE_HISTORY WHERE TH_T_ID = @t_id;
}
PROCEDURE TradeLookupFrame3(@symb, @start_dts, @end_dts) {
  SELECT @t_id = T_ID FROM TRADE
    WHERE T_S_SYMB = @symb AND T_DTS >= @start_dts AND T_DTS <= @end_dts;
  SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID = @t_id;
  SELECT CT_AMT FROM CASH_TRANSACTION WHERE CT_T_ID = @t_id;
  SELECT TH_DTS FROM TRADE_HISTORY WHERE TH_T_ID = @t_id;
}
PROCEDURE TradeLookupFrame4(@acct_id, @start_dts) {
  SELECT @t_id = T_ID FROM TRADE WHERE T_CA_ID = @acct_id AND T_DTS >= @start_dts;
  SELECT HH_H_T_ID, HH_AFTER_QTY FROM HOLDING_HISTORY WHERE HH_T_ID = @t_id;
}
PROCEDURE TradeOrder(@acct_id, @symb, @qty, @t_id, @tt_id, @now) {
  SELECT CA_NAME, CA_TAX_ST FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct_id;
  SELECT @b_id = CA_B_ID FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct_id;
  SELECT @cust_id = CA_C_ID FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct_id;
  SELECT C_F_NAME FROM CUSTOMER WHERE C_ID = @cust_id;
  SELECT B_NAME FROM BROKER WHERE B_ID = @b_id;
  SELECT AP_ACL FROM ACCOUNT_PERMISSION WHERE AP_CA_ID = @acct_id;
  SELECT S_NAME FROM SECURITY WHERE S_SYMB = @symb;
  SELECT LT_PRICE FROM LAST_TRADE WHERE LT_S_SYMB = @symb;
  SELECT CH_CHRG FROM CHARGE WHERE CH_TT_ID = @tt_id;
  SELECT CR_RATE FROM COMMISSION_RATE WHERE CR_TT_ID = @tt_id;
  INSERT INTO TRADE (T_ID, T_DTS, T_ST_ID, T_TT_ID, T_S_SYMB, T_CA_ID, T_QTY, T_EXEC_NAME, T_TRADE_PRICE)
    VALUES (@t_id, @now, 0, @tt_id, @symb, @acct_id, @qty, 0, 0);
  INSERT INTO TRADE_HISTORY (TH_T_ID, TH_ST_ID, TH_DTS) VALUES (@t_id, 0, @now);
  INSERT INTO TRADE_REQUEST (TR_T_ID, TR_TT_ID, TR_S_SYMB, TR_QTY, TR_BID_PRICE, TR_B_ID)
    VALUES (@t_id, @tt_id, @symb, @qty, 0, @b_id);
}
PROCEDURE TradeResult(@t_id, @price, @now) {
  SELECT @acct_id = T_CA_ID FROM TRADE WHERE T_ID = @t_id;
  SELECT @symb = T_S_SYMB FROM TRADE WHERE T_ID = @t_id;
  UPDATE TRADE SET T_TRADE_PRICE = @price WHERE T_ID = @t_id;
  DELETE FROM TRADE_REQUEST WHERE TR_T_ID = @t_id;
  INSERT INTO TRADE_HISTORY (TH_T_ID, TH_ST_ID, TH_DTS) VALUES (@t_id, 1, @now);
  SELECT @b_id = CA_B_ID FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct_id;
  SELECT @cust_id = CA_C_ID FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct_id;
  SELECT C_TIER FROM CUSTOMER WHERE C_ID = @cust_id;
  SELECT TX_RATE FROM TAXRATE WHERE TX_ID = @cust_id;
  SELECT HS_QTY FROM HOLDING_SUMMARY WHERE HS_CA_ID = @acct_id AND HS_S_SYMB = @symb;
  UPDATE HOLDING_SUMMARY SET HS_QTY = @qty WHERE HS_CA_ID = @acct_id AND HS_S_SYMB = @symb;
  SELECT H_T_ID, H_QTY FROM HOLDING WHERE H_CA_ID = @acct_id AND H_S_SYMB = @symb;
  UPDATE HOLDING SET H_QTY = @qty WHERE H_CA_ID = @acct_id AND H_S_SYMB = @symb;
  INSERT INTO HOLDING_HISTORY (HH_H_T_ID, HH_T_ID, HH_BEFORE_QTY, HH_AFTER_QTY)
    VALUES (@t_id, @t_id, 0, @qty);
  UPDATE CUSTOMER_ACCOUNT SET CA_BAL = @price WHERE CA_ID = @acct_id;
  INSERT INTO SETTLEMENT (SE_T_ID, SE_CASH_TYPE, SE_AMT) VALUES (@t_id, 0, @price);
  INSERT INTO CASH_TRANSACTION (CT_T_ID, CT_DTS, CT_AMT, CT_NAME)
    VALUES (@t_id, @now, @price, 0);
  UPDATE BROKER SET B_COMM_TOTAL = @price, B_NUM_TRADES = 1 WHERE B_ID = @b_id;
}
PROCEDURE TradeStatus(@acct_id) {
  SELECT T_ID, T_DTS, T_ST_ID FROM TRADE WHERE T_CA_ID = @acct_id;
  SELECT @t_id = T_ID FROM TRADE WHERE T_CA_ID = @acct_id;
  SELECT TH_DTS FROM TRADE_HISTORY WHERE TH_T_ID = @t_id;
  SELECT @b_id = CA_B_ID FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct_id;
  SELECT @cust_id = CA_C_ID FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct_id;
  SELECT B_NAME FROM BROKER WHERE B_ID = @b_id;
  SELECT C_F_NAME FROM CUSTOMER WHERE C_ID = @cust_id;
}
PROCEDURE TradeUpdateFrame1(@t_id1, @t_id2, @t_id3) {
  UPDATE TRADE SET T_EXEC_NAME = 1 WHERE T_ID IN (@t_id1, @t_id2, @t_id3);
  SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID IN (@t_id1, @t_id2, @t_id3);
  SELECT CT_AMT FROM CASH_TRANSACTION WHERE CT_T_ID IN (@t_id1, @t_id2, @t_id3);
  SELECT TH_DTS FROM TRADE_HISTORY WHERE TH_T_ID IN (@t_id1, @t_id2, @t_id3);
}
PROCEDURE TradeUpdateFrame2(@acct_id, @start_dts, @end_dts) {
  SELECT @t_id = T_ID FROM TRADE
    WHERE T_CA_ID = @acct_id AND T_DTS >= @start_dts AND T_DTS <= @end_dts;
  UPDATE SETTLEMENT SET SE_CASH_TYPE = 1 WHERE SE_T_ID = @t_id;
  SELECT CT_AMT FROM CASH_TRANSACTION WHERE CT_T_ID = @t_id;
  SELECT TH_DTS FROM TRADE_HISTORY WHERE TH_T_ID = @t_id;
}
PROCEDURE TradeUpdateFrame3(@symb, @start_dts, @end_dts) {
  SELECT @t_id = T_ID FROM TRADE
    WHERE T_S_SYMB = @symb AND T_DTS >= @start_dts AND T_DTS <= @end_dts;
  SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID = @t_id;
  UPDATE CASH_TRANSACTION SET CT_NAME = 1 WHERE CT_T_ID = @t_id;
  SELECT TH_DTS FROM TRADE_HISTORY WHERE TH_T_ID = @t_id;
}
)SQL";

Schema MakeTpceSchema() {
  Schema s;
  auto add = [&](const char* name, std::initializer_list<const char*> cols,
                 std::vector<std::string> pk) {
    auto tid = s.AddTable(name);
    CheckOk(tid.status(), "tpce schema");
    for (const char* c : cols) {
      CheckOk(s.AddColumn(tid.value(), c, ValueType::kInt64), "tpce schema");
    }
    CheckOk(s.SetPrimaryKey(tid.value(), pk), "tpce pk");
  };
  auto fk = [&](const char* t, std::vector<std::string> cols, const char* rt,
                std::vector<std::string> rcols) {
    CheckOk(s.AddForeignKey(t, cols, rt, rcols), "tpce fk");
  };

  // --- Market & reference data (read-only at runtime) ----------------------
  add("ZIP_CODE", {"ZC_CODE", "ZC_TOWN"}, {"ZC_CODE"});
  add("ADDRESS", {"AD_ID", "AD_LINE1", "AD_ZC_CODE"}, {"AD_ID"});
  add("STATUS_TYPE", {"ST_ID", "ST_NAME"}, {"ST_ID"});
  add("TAXRATE", {"TX_ID", "TX_RATE"}, {"TX_ID"});
  add("SECTOR", {"SC_ID", "SC_NAME"}, {"SC_ID"});
  add("INDUSTRY", {"IN_ID", "IN_NAME", "IN_SC_ID"}, {"IN_ID"});
  add("EXCHANGE", {"EX_ID", "EX_NAME", "EX_AD_ID"}, {"EX_ID"});
  add("COMPANY", {"CO_ID", "CO_NAME", "CO_IN_ID", "CO_ST_ID", "CO_AD_ID"}, {"CO_ID"});
  add("COMPANY_COMPETITOR", {"CP_CO_ID", "CP_COMP_CO_ID", "CP_IN_ID"},
      {"CP_CO_ID", "CP_COMP_CO_ID"});
  add("SECURITY", {"S_SYMB", "S_NAME", "S_CO_ID", "S_EX_ID", "S_ST_ID"}, {"S_SYMB"});
  add("DAILY_MARKET", {"DM_DATE", "DM_S_SYMB", "DM_CLOSE", "DM_HIGH", "DM_LOW"},
      {"DM_DATE", "DM_S_SYMB"});
  add("FINANCIAL", {"FI_CO_ID", "FI_YEAR", "FI_QTR", "FI_NET_EARN"},
      {"FI_CO_ID", "FI_YEAR", "FI_QTR"});
  add("LAST_TRADE", {"LT_S_SYMB", "LT_PRICE", "LT_VOL", "LT_DTS"}, {"LT_S_SYMB"});
  add("NEWS_ITEM", {"NI_ID", "NI_HEADLINE", "NI_DTS"}, {"NI_ID"});
  add("NEWS_XREF", {"NX_NI_ID", "NX_CO_ID"}, {"NX_NI_ID", "NX_CO_ID"});
  add("CHARGE", {"CH_TT_ID", "CH_C_TIER", "CH_CHRG"}, {"CH_TT_ID", "CH_C_TIER"});
  add("COMMISSION_RATE", {"CR_C_TIER", "CR_TT_ID", "CR_EX_ID", "CR_RATE"},
      {"CR_C_TIER", "CR_TT_ID", "CR_EX_ID"});
  add("TRADE_TYPE", {"TT_ID", "TT_NAME", "TT_IS_SELL", "TT_IS_MRKT"}, {"TT_ID"});

  // --- Customer data --------------------------------------------------------
  add("CUSTOMER",
      {"C_ID", "C_TAX_ID", "C_ST_ID", "C_TIER", "C_F_NAME", "C_L_NAME", "C_AD_ID"},
      {"C_ID"});
  CheckOk(s.AddUniqueKey(s.FindTable("CUSTOMER").value(), {"C_TAX_ID"}), "tpce uk");
  add("CUSTOMER_ACCOUNT", {"CA_ID", "CA_B_ID", "CA_C_ID", "CA_NAME", "CA_TAX_ST",
                           "CA_BAL"},
      {"CA_ID"});
  add("ACCOUNT_PERMISSION", {"AP_CA_ID", "AP_TAX_ID", "AP_ACL"},
      {"AP_CA_ID", "AP_TAX_ID"});
  add("CUSTOMER_TAXRATE", {"CX_TX_ID", "CX_C_ID"}, {"CX_TX_ID", "CX_C_ID"});
  add("WATCH_LIST", {"WL_ID", "WL_C_ID"}, {"WL_ID"});
  add("WATCH_ITEM", {"WI_WL_ID", "WI_S_SYMB"}, {"WI_WL_ID", "WI_S_SYMB"});

  // --- Broker & trade data ---------------------------------------------------
  add("BROKER", {"B_ID", "B_ST_ID", "B_NAME", "B_NUM_TRADES", "B_COMM_TOTAL"},
      {"B_ID"});
  add("TRADE",
      {"T_ID", "T_DTS", "T_ST_ID", "T_TT_ID", "T_S_SYMB", "T_CA_ID", "T_QTY",
       "T_EXEC_NAME", "T_TRADE_PRICE"},
      {"T_ID"});
  add("TRADE_HISTORY", {"TH_T_ID", "TH_ST_ID", "TH_DTS"}, {"TH_T_ID", "TH_ST_ID"});
  add("SETTLEMENT", {"SE_T_ID", "SE_CASH_TYPE", "SE_AMT"}, {"SE_T_ID"});
  add("TRADE_REQUEST", {"TR_T_ID", "TR_TT_ID", "TR_S_SYMB", "TR_QTY", "TR_BID_PRICE",
                        "TR_B_ID"},
      {"TR_T_ID"});
  add("CASH_TRANSACTION", {"CT_T_ID", "CT_DTS", "CT_AMT", "CT_NAME"}, {"CT_T_ID"});
  add("HOLDING", {"H_T_ID", "H_CA_ID", "H_S_SYMB", "H_DTS", "H_PRICE", "H_QTY"},
      {"H_T_ID"});
  add("HOLDING_HISTORY", {"HH_H_T_ID", "HH_T_ID", "HH_BEFORE_QTY", "HH_AFTER_QTY"},
      {"HH_H_T_ID", "HH_T_ID"});
  add("HOLDING_SUMMARY", {"HS_CA_ID", "HS_S_SYMB", "HS_QTY"}, {"HS_CA_ID", "HS_S_SYMB"});

  // --- Foreign keys -----------------------------------------------------------
  fk("ADDRESS", {"AD_ZC_CODE"}, "ZIP_CODE", {"ZC_CODE"});
  fk("INDUSTRY", {"IN_SC_ID"}, "SECTOR", {"SC_ID"});
  fk("EXCHANGE", {"EX_AD_ID"}, "ADDRESS", {"AD_ID"});
  fk("COMPANY", {"CO_IN_ID"}, "INDUSTRY", {"IN_ID"});
  fk("COMPANY", {"CO_ST_ID"}, "STATUS_TYPE", {"ST_ID"});
  fk("COMPANY", {"CO_AD_ID"}, "ADDRESS", {"AD_ID"});
  fk("COMPANY_COMPETITOR", {"CP_CO_ID"}, "COMPANY", {"CO_ID"});
  fk("COMPANY_COMPETITOR", {"CP_COMP_CO_ID"}, "COMPANY", {"CO_ID"});
  fk("COMPANY_COMPETITOR", {"CP_IN_ID"}, "INDUSTRY", {"IN_ID"});
  fk("SECURITY", {"S_CO_ID"}, "COMPANY", {"CO_ID"});
  fk("SECURITY", {"S_EX_ID"}, "EXCHANGE", {"EX_ID"});
  fk("SECURITY", {"S_ST_ID"}, "STATUS_TYPE", {"ST_ID"});
  fk("DAILY_MARKET", {"DM_S_SYMB"}, "SECURITY", {"S_SYMB"});
  fk("FINANCIAL", {"FI_CO_ID"}, "COMPANY", {"CO_ID"});
  fk("LAST_TRADE", {"LT_S_SYMB"}, "SECURITY", {"S_SYMB"});
  fk("NEWS_XREF", {"NX_NI_ID"}, "NEWS_ITEM", {"NI_ID"});
  fk("NEWS_XREF", {"NX_CO_ID"}, "COMPANY", {"CO_ID"});
  fk("CHARGE", {"CH_TT_ID"}, "TRADE_TYPE", {"TT_ID"});
  fk("COMMISSION_RATE", {"CR_TT_ID"}, "TRADE_TYPE", {"TT_ID"});
  fk("COMMISSION_RATE", {"CR_EX_ID"}, "EXCHANGE", {"EX_ID"});
  fk("CUSTOMER", {"C_ST_ID"}, "STATUS_TYPE", {"ST_ID"});
  fk("CUSTOMER", {"C_AD_ID"}, "ADDRESS", {"AD_ID"});
  fk("CUSTOMER_ACCOUNT", {"CA_B_ID"}, "BROKER", {"B_ID"});
  fk("CUSTOMER_ACCOUNT", {"CA_C_ID"}, "CUSTOMER", {"C_ID"});
  fk("ACCOUNT_PERMISSION", {"AP_CA_ID"}, "CUSTOMER_ACCOUNT", {"CA_ID"});
  fk("CUSTOMER_TAXRATE", {"CX_TX_ID"}, "TAXRATE", {"TX_ID"});
  fk("CUSTOMER_TAXRATE", {"CX_C_ID"}, "CUSTOMER", {"C_ID"});
  fk("WATCH_LIST", {"WL_C_ID"}, "CUSTOMER", {"C_ID"});
  fk("WATCH_ITEM", {"WI_WL_ID"}, "WATCH_LIST", {"WL_ID"});
  fk("WATCH_ITEM", {"WI_S_SYMB"}, "SECURITY", {"S_SYMB"});
  fk("BROKER", {"B_ST_ID"}, "STATUS_TYPE", {"ST_ID"});
  fk("TRADE", {"T_ST_ID"}, "STATUS_TYPE", {"ST_ID"});
  fk("TRADE", {"T_TT_ID"}, "TRADE_TYPE", {"TT_ID"});
  fk("TRADE", {"T_S_SYMB"}, "SECURITY", {"S_SYMB"});
  fk("TRADE", {"T_CA_ID"}, "CUSTOMER_ACCOUNT", {"CA_ID"});
  fk("TRADE_HISTORY", {"TH_T_ID"}, "TRADE", {"T_ID"});
  fk("TRADE_HISTORY", {"TH_ST_ID"}, "STATUS_TYPE", {"ST_ID"});
  fk("SETTLEMENT", {"SE_T_ID"}, "TRADE", {"T_ID"});
  fk("TRADE_REQUEST", {"TR_T_ID"}, "TRADE", {"T_ID"});
  fk("TRADE_REQUEST", {"TR_TT_ID"}, "TRADE_TYPE", {"TT_ID"});
  fk("TRADE_REQUEST", {"TR_S_SYMB"}, "SECURITY", {"S_SYMB"});
  fk("TRADE_REQUEST", {"TR_B_ID"}, "BROKER", {"B_ID"});
  fk("CASH_TRANSACTION", {"CT_T_ID"}, "TRADE", {"T_ID"});
  fk("HOLDING", {"H_T_ID"}, "TRADE", {"T_ID"});
  fk("HOLDING", {"H_CA_ID", "H_S_SYMB"}, "HOLDING_SUMMARY", {"HS_CA_ID", "HS_S_SYMB"});
  fk("HOLDING_HISTORY", {"HH_H_T_ID"}, "HOLDING", {"H_T_ID"});
  fk("HOLDING_HISTORY", {"HH_T_ID"}, "TRADE", {"T_ID"});
  fk("HOLDING_SUMMARY", {"HS_CA_ID"}, "CUSTOMER_ACCOUNT", {"CA_ID"});
  fk("HOLDING_SUMMARY", {"HS_S_SYMB"}, "SECURITY", {"S_SYMB"});
  return s;
}

/// One trade and the child tuples hanging off it.
struct TradeRef {
  int64_t t_id = 0;
  int64_t dts = 0;
  int account = 0;
  int symbol = 0;
  TupleId trade;
  std::vector<TupleId> history;
  TupleId settlement;
  TupleId cash;
  bool settled = false;
  TupleId request;
  bool has_request = false;
  std::vector<TupleId> holding_history;
};

struct AccountRef {
  int64_t ca_id = 0;
  int customer = 0;
  int broker = 0;
  TupleId account;
  std::vector<size_t> trades;  // indexes into the global trade list
  // symbol -> (summary, holdings, holding history) for held securities.
  std::vector<std::pair<int, TupleId>> summaries;
  std::vector<std::pair<int, TupleId>> holdings;
};

}  // namespace

WorkloadBundle TpceWorkload::Make(size_t num_txns, uint64_t seed) const {
  WorkloadBundle bundle;
  bundle.db = std::make_unique<Database>(MakeTpceSchema());
  bundle.procedures = MustParseProcedures(kTpceProcedures);
  Database& db = *bundle.db;
  Rng rng(seed);
  const TpceConfig& cfg = config_;

  // ---- Reference data -------------------------------------------------------
  const int kZips = 20, kStatuses = 5, kTradeTypes = 5, kExchanges = 2, kSectors = 5,
            kIndustries = 10, kTiers = 3;
  for (int z = 0; z < kZips; ++z) db.MustInsert("ZIP_CODE", {int64_t(z), int64_t(z)});
  int64_t next_ad = 0;
  auto new_address = [&]() {
    int64_t id = next_ad++;
    db.MustInsert("ADDRESS", {id, id, rng.Uniform(0, kZips - 1)});
    return id;
  };
  for (int st = 0; st < kStatuses; ++st) {
    db.MustInsert("STATUS_TYPE", {int64_t(st), int64_t(st)});
  }
  for (int c = 0; c < cfg.customers; ++c) {
    db.MustInsert("TAXRATE", {int64_t(c), rng.Uniform(1, 40)});
  }
  for (int sc = 0; sc < kSectors; ++sc) {
    db.MustInsert("SECTOR", {int64_t(sc), int64_t(sc)});
  }
  for (int in = 0; in < kIndustries; ++in) {
    db.MustInsert("INDUSTRY", {int64_t(in), int64_t(in), int64_t(in % kSectors)});
  }
  for (int ex = 0; ex < kExchanges; ++ex) {
    db.MustInsert("EXCHANGE", {int64_t(ex), int64_t(ex), new_address()});
  }
  for (int tt = 0; tt < kTradeTypes; ++tt) {
    db.MustInsert("TRADE_TYPE", {int64_t(tt), int64_t(tt), int64_t(tt % 2),
                                 int64_t(tt < 2 ? 1 : 0)});
    for (int tier = 0; tier < kTiers; ++tier) {
      db.MustInsert("CHARGE", {int64_t(tt), int64_t(tier), rng.Uniform(1, 20)});
      for (int ex = 0; ex < kExchanges; ++ex) {
        db.MustInsert("COMMISSION_RATE",
                      {int64_t(tier), int64_t(tt), int64_t(ex), rng.Uniform(1, 50)});
      }
    }
  }
  int64_t next_news = 0;
  for (int co = 0; co < cfg.companies; ++co) {
    db.MustInsert("COMPANY", {int64_t(co), int64_t(co),
                              rng.Uniform(0, kIndustries - 1),
                              rng.Uniform(0, kStatuses - 1), new_address()});
    for (int q = 0; q < 4; ++q) {
      db.MustInsert("FINANCIAL", {int64_t(co), int64_t(2013), int64_t(q),
                                  rng.Uniform(-100, 1000)});
    }
    for (int n = 0; n < 2; ++n) {
      int64_t ni = next_news++;
      db.MustInsert("NEWS_ITEM", {ni, ni, rng.Uniform(0, 1000)});
      db.MustInsert("NEWS_XREF", {ni, int64_t(co)});
    }
    if (co > 0) {
      db.MustInsert("COMPANY_COMPETITOR",
                    {int64_t(co), int64_t(co - 1), rng.Uniform(0, kIndustries - 1)});
    }
  }
  std::vector<TupleId> security(cfg.securities);
  std::vector<TupleId> last_trade(cfg.securities);
  std::vector<std::vector<TupleId>> daily_market(cfg.securities);
  for (int sy = 0; sy < cfg.securities; ++sy) {
    security[sy] = db.MustInsert(
        "SECURITY", {int64_t(sy), int64_t(sy), rng.Uniform(0, cfg.companies - 1),
                     rng.Uniform(0, kExchanges - 1), rng.Uniform(0, kStatuses - 1)});
    last_trade[sy] = db.MustInsert(
        "LAST_TRADE", {int64_t(sy), rng.Uniform(10, 500), int64_t(0), int64_t(0)});
    for (int day = 0; day < 5; ++day) {
      daily_market[sy].push_back(db.MustInsert(
          "DAILY_MARKET", {int64_t(day), int64_t(sy), rng.Uniform(10, 500),
                           rng.Uniform(10, 500), rng.Uniform(10, 500)}));
    }
  }

  // ---- Customers, brokers, accounts ----------------------------------------
  std::vector<TupleId> broker(cfg.brokers);
  for (int b = 0; b < cfg.brokers; ++b) {
    broker[b] = db.MustInsert(
        "BROKER", {int64_t(b), rng.Uniform(0, kStatuses - 1), int64_t(b), int64_t(0),
                   int64_t(0)});
  }
  std::vector<TupleId> customer(cfg.customers);
  std::vector<std::vector<size_t>> accounts_of(cfg.customers);  // account indexes
  std::vector<AccountRef> accounts;
  struct WatchRef {
    TupleId list;
    std::vector<TupleId> items;
  };
  std::vector<WatchRef> watch(cfg.customers);
  int64_t next_ca = 0;
  for (int c = 0; c < cfg.customers; ++c) {
    customer[c] = db.MustInsert(
        "CUSTOMER", {int64_t(c), int64_t(c + 500000), rng.Uniform(0, kStatuses - 1),
                     rng.Uniform(0, kTiers - 1), int64_t(c), int64_t(c), new_address()});
    db.MustInsert("CUSTOMER_TAXRATE", {int64_t(c), int64_t(c)});
    watch[c].list = db.MustInsert("WATCH_LIST", {int64_t(c), int64_t(c)});
    for (int64_t sy : rng.SampleDistinct(0, cfg.securities - 1, 3)) {
      watch[c].items.push_back(db.MustInsert("WATCH_ITEM", {int64_t(c), sy}));
    }
    int nacc = static_cast<int>(
        rng.Uniform(cfg.min_accounts_per_customer, cfg.max_accounts_per_customer));
    for (int a = 0; a < nacc; ++a) {
      AccountRef acc;
      acc.ca_id = next_ca++;
      acc.customer = c;
      acc.broker = static_cast<int>(rng.Uniform(0, cfg.brokers - 1));
      acc.account = db.MustInsert(
          "CUSTOMER_ACCOUNT", {acc.ca_id, int64_t(acc.broker), int64_t(c), acc.ca_id,
                               int64_t(0), int64_t(10000)});
      db.MustInsert("ACCOUNT_PERMISSION",
                    {acc.ca_id, int64_t(c + 500000), int64_t(1)});
      accounts_of[c].push_back(accounts.size());
      accounts.push_back(std::move(acc));
    }
  }

  // ---- Initial trades, holdings --------------------------------------------
  std::vector<TradeRef> trades;
  std::vector<std::vector<size_t>> trades_of_symbol(cfg.securities);
  int64_t next_t_id = 0;
  int64_t now = 0;

  auto insert_trade = [&](AccountRef& acc, int symbol, bool with_request,
                          Transaction* txn) -> size_t {
    TradeRef tr;
    tr.t_id = next_t_id++;
    tr.dts = ++now;
    tr.account = static_cast<int>(&acc - accounts.data());
    tr.symbol = symbol;
    int64_t tt = rng.Uniform(0, kTradeTypes - 1);
    tr.trade = db.MustInsert(
        "TRADE", {tr.t_id, tr.dts, int64_t(0), tt, int64_t(symbol), acc.ca_id,
                  rng.Uniform(1, 800), int64_t(0), int64_t(0)});
    tr.history.push_back(
        db.MustInsert("TRADE_HISTORY", {tr.t_id, int64_t(0), tr.dts}));
    if (with_request) {
      tr.request = db.MustInsert(
          "TRADE_REQUEST", {tr.t_id, tt, int64_t(symbol), rng.Uniform(1, 800),
                            rng.Uniform(10, 500), int64_t(acc.broker)});
      tr.has_request = true;
    }
    if (txn != nullptr) {
      txn->Write(tr.trade);
      txn->Write(tr.history.back());
      if (with_request) txn->Write(tr.request);
    }
    acc.trades.push_back(trades.size());
    trades_of_symbol[symbol].push_back(trades.size());
    trades.push_back(std::move(tr));
    return trades.size() - 1;
  };

  auto settle_trade = [&](size_t idx, Transaction* txn) {
    TradeRef& tr = trades[idx];
    if (tr.settled) return;
    tr.settled = true;
    tr.dts = ++now;
    tr.history.push_back(
        db.MustInsert("TRADE_HISTORY", {tr.t_id, int64_t(1), int64_t(now)}));
    tr.settlement =
        db.MustInsert("SETTLEMENT", {tr.t_id, int64_t(0), rng.Uniform(10, 500)});
    tr.cash = db.MustInsert(
        "CASH_TRANSACTION", {tr.t_id, int64_t(now), rng.Uniform(10, 500), int64_t(0)});
    if (txn != nullptr) {
      txn->Write(tr.trade);
      if (tr.has_request) txn->Write(tr.request);
      txn->Write(tr.history.back());
      txn->Write(tr.settlement);
      txn->Write(tr.cash);
    }
  };

  for (AccountRef& acc : accounts) {
    auto held = rng.SampleDistinct(0, cfg.securities - 1,
                                   std::min<int64_t>(cfg.holdings_per_account,
                                                     cfg.securities));
    for (int64_t sy : held) {
      size_t idx = insert_trade(acc, static_cast<int>(sy), false, nullptr);
      settle_trade(idx, nullptr);
      TupleId hs = db.MustInsert(
          "HOLDING_SUMMARY", {acc.ca_id, sy, rng.Uniform(1, 800)});
      acc.summaries.emplace_back(static_cast<int>(sy), hs);
      TupleId h = db.MustInsert(
          "HOLDING", {trades[idx].t_id, acc.ca_id, sy, int64_t(now),
                      rng.Uniform(10, 500), rng.Uniform(1, 800)});
      acc.holdings.emplace_back(static_cast<int>(sy), h);
      trades[idx].holding_history.push_back(
          db.MustInsert("HOLDING_HISTORY", {trades[idx].t_id, trades[idx].t_id,
                                            int64_t(0), rng.Uniform(1, 800)}));
    }
    for (int t = static_cast<int>(held.size()); t < cfg.initial_trades_per_account;
         ++t) {
      size_t idx = insert_trade(
          acc, static_cast<int>(rng.Uniform(0, cfg.securities - 1)), false, nullptr);
      settle_trade(idx, nullptr);
    }
  }

  std::deque<size_t> unsettled;  // trades awaiting Trade-Result
  // Seed pending limit orders so Market-Feed and Broker-Volume always have
  // requests to process (the ticker's steady state).
  for (AccountRef& acc : accounts) {
    if (!rng.Chance(0.4)) continue;
    size_t idx = insert_trade(
        acc, static_cast<int>(rng.Uniform(0, cfg.securities - 1)), true, nullptr);
    unsettled.push_back(idx);
  }

  // ---- Transaction mix (paper Table 3) --------------------------------------
  Trace& trace = bundle.trace;
  struct ClassDef {
    const char* name;
    double mix;
  };
  const ClassDef kClasses[] = {
      {"BrokerVolume", 4.9},      {"CustomerPosition", 13.0},
      {"MarketFeed", 1.0},        {"MarketWatch", 18.0},
      {"SecurityDetail", 14.0},   {"TradeLookupFrame1", 2.4},
      {"TradeLookupFrame2", 2.4}, {"TradeLookupFrame3", 2.4},
      {"TradeLookupFrame4", 0.8}, {"TradeOrder", 10.1},
      {"TradeResult", 10.0},      {"TradeStatus", 19.0},
      {"TradeUpdateFrame1", 0.66}, {"TradeUpdateFrame2", 0.67},
      {"TradeUpdateFrame3", 0.67}};
  std::vector<double> mix;
  std::vector<uint32_t> class_ids;
  double acc_mix = 0.0;
  for (const ClassDef& cd : kClasses) {
    acc_mix += cd.mix / 100.0;
    mix.push_back(acc_mix);
    class_ids.push_back(trace.InternClass(cd.name));
  }

  auto read_trade_children = [&](const TradeRef& tr, Transaction* txn,
                                 bool read_settlement, bool read_cash) {
    txn->Read(tr.trade);
    for (TupleId h : tr.history) txn->Read(h);
    if (tr.settled && read_settlement) txn->Read(tr.settlement);
    if (tr.settled && read_cash) txn->Read(tr.cash);
  };

  auto window_trades = [&](const std::vector<size_t>& pool, int64_t* lo,
                           int64_t* hi) -> std::vector<size_t> {
    std::vector<size_t> out;
    if (pool.empty()) return out;
    size_t anchor = pool[rng.Uniform(0, static_cast<int64_t>(pool.size()) - 1)];
    int64_t end = trades[anchor].dts;
    int64_t start = end - cfg.dts_window;
    *lo = start;
    *hi = end;
    for (size_t idx : pool) {
      if (trades[idx].dts >= start && trades[idx].dts <= end) out.push_back(idx);
    }
    return out;
  };

  for (size_t n = 0; n < num_txns; ++n) {
    Transaction txn;
    size_t which = PickClass(mix, rng.NextDouble());
    txn.class_id = class_ids[which];
    int cust = static_cast<int>(rng.Uniform(0, cfg.customers - 1));
    AccountRef& acc =
        accounts[accounts_of[cust][rng.Uniform(
            0, static_cast<int64_t>(accounts_of[cust].size()) - 1)]];
    switch (which) {
      case 0: {  // BrokerVolume
        for (int64_t b : rng.SampleDistinct(0, cfg.brokers - 1, 3)) {
          txn.Read(broker[b]);
        }
        // Pending requests of those brokers (approximate: scan a sample).
        int scanned = 0;
        for (auto it = unsettled.rbegin(); it != unsettled.rend() && scanned < 6;
             ++it) {
          if (trades[*it].has_request) {
            txn.Read(trades[*it].request);
            ++scanned;
          }
        }
        break;
      }
      case 1: {  // CustomerPosition
        txn.Read(customer[cust]);
        for (size_t ai : accounts_of[cust]) {
          const AccountRef& a = accounts[ai];
          txn.Read(a.account);
          size_t shown = 0;
          for (auto it = a.trades.rbegin(); it != a.trades.rend() && shown < 6;
               ++it, ++shown) {
            read_trade_children(trades[*it], &txn, false, false);
          }
        }
        break;
      }
      case 2: {  // MarketFeed
        auto symbols = rng.SampleDistinct(0, cfg.securities - 1, 4);
        for (int64_t sy : symbols) txn.Write(last_trade[sy]);
        int matched = 0;
        for (auto it = unsettled.begin(); it != unsettled.end() && matched < 16; ++it) {
          const TradeRef& tr = trades[*it];
          if (!tr.has_request) continue;
          for (int64_t sy : symbols) {
            if (tr.symbol == sy) {
              txn.Write(tr.request);
              ++matched;
              break;
            }
          }
        }
        break;
      }
      case 3: {  // MarketWatch
        txn.Read(watch[cust].list);
        for (TupleId wi : watch[cust].items) txn.Read(wi);
        for (const auto& [sy, hs] : acc.summaries) {
          txn.Read(hs);
          txn.Read(last_trade[sy]);
        }
        for (TupleId wi : watch[cust].items) {
          txn.Read(last_trade[db.GetValue(wi, 1).AsInt()]);
        }
        break;
      }
      case 4: {  // SecurityDetail
        int sy = static_cast<int>(rng.Uniform(0, cfg.securities - 1));
        txn.Read(security[sy]);
        txn.Read(last_trade[sy]);
        for (TupleId dm : daily_market[sy]) txn.Read(dm);
        break;
      }
      case 5: {  // TradeLookupFrame1: random trades
        for (int i = 0; i < 4; ++i) {
          const TradeRef& tr =
              trades[rng.Uniform(0, static_cast<int64_t>(trades.size()) - 1)];
          read_trade_children(tr, &txn, true, true);
        }
        break;
      }
      case 6: {  // TradeLookupFrame2: one account's trades in a window
        int64_t lo, hi;
        for (size_t idx : window_trades(acc.trades, &lo, &hi)) {
          read_trade_children(trades[idx], &txn, true, true);
        }
        if (txn.accesses.empty()) txn.Read(acc.account);
        break;
      }
      case 7: {  // TradeLookupFrame3: one security's trades in a window
        int sy = static_cast<int>(rng.Uniform(0, cfg.securities - 1));
        int64_t lo, hi;
        for (size_t idx : window_trades(trades_of_symbol[sy], &lo, &hi)) {
          read_trade_children(trades[idx], &txn, true, true);
        }
        if (txn.accesses.empty()) txn.Read(security[sy]);
        break;
      }
      case 8: {  // TradeLookupFrame4: latest trade -> holding history
        if (acc.trades.empty()) {
          txn.Read(acc.account);
          break;
        }
        const TradeRef& tr = trades[acc.trades.back()];
        txn.Read(tr.trade);
        for (TupleId hh : tr.holding_history) txn.Read(hh);
        break;
      }
      case 9: {  // TradeOrder
        txn.Read(acc.account);
        txn.Read(customer[cust]);
        txn.Read(broker[acc.broker]);
        int sy = static_cast<int>(rng.Uniform(0, cfg.securities - 1));
        txn.Read(security[sy]);
        txn.Read(last_trade[sy]);
        bool limit = rng.Chance(cfg.limit_order_fraction);
        size_t idx = insert_trade(acc, sy, limit, &txn);
        unsettled.push_back(idx);
        break;
      }
      case 10: {  // TradeResult
        if (unsettled.empty()) {
          // Nothing pending: settle a synthetic market order.
          size_t idx = insert_trade(acc, static_cast<int>(rng.Uniform(
                                             0, cfg.securities - 1)),
                                    false, &txn);
          settle_trade(idx, &txn);
          txn.Read(acc.account);
          txn.Write(broker[acc.broker]);
          break;
        }
        size_t idx = unsettled.front();
        unsettled.pop_front();
        TradeRef& tr = trades[idx];
        AccountRef& owner = accounts[tr.account];
        settle_trade(idx, &txn);
        txn.Read(customer[owner.customer]);
        txn.Write(owner.account);
        // Update (or create) the holding of this security.
        bool held = false;
        for (auto& [sy, hs] : owner.summaries) {
          if (sy == tr.symbol) {
            txn.Write(hs);
            held = true;
            break;
          }
        }
        if (!held) {
          TupleId hs = db.MustInsert(
              "HOLDING_SUMMARY", {owner.ca_id, int64_t(tr.symbol), rng.Uniform(1, 800)});
          owner.summaries.emplace_back(tr.symbol, hs);
          txn.Write(hs);
        }
        TupleId holding{};
        bool holding_found = false;
        for (auto& [sy, h] : owner.holdings) {
          if (sy == tr.symbol) {
            txn.Write(h);
            holding = h;
            holding_found = true;
            break;
          }
        }
        if (!holding_found) {
          holding = db.MustInsert(
              "HOLDING", {tr.t_id, owner.ca_id, int64_t(tr.symbol), int64_t(now),
                          rng.Uniform(10, 500), rng.Uniform(1, 800)});
          owner.holdings.emplace_back(tr.symbol, holding);
          txn.Write(holding);
        }
        int64_t h_t_id = db.GetValue(holding, 0).AsInt();
        TupleId hh = db.MustInsert(
            "HOLDING_HISTORY", {h_t_id, tr.t_id, int64_t(0), rng.Uniform(1, 800)});
        tr.holding_history.push_back(hh);
        txn.Write(hh);
        txn.Write(broker[owner.broker]);
        break;
      }
      case 11: {  // TradeStatus
        txn.Read(acc.account);
        txn.Read(customer[cust]);
        txn.Read(broker[acc.broker]);
        size_t shown = 0;
        for (auto it = acc.trades.rbegin(); it != acc.trades.rend() && shown < 8;
             ++it, ++shown) {
          read_trade_children(trades[*it], &txn, false, false);
        }
        break;
      }
      case 12: {  // TradeUpdateFrame1: random trades, update exec name
        for (int i = 0; i < 3; ++i) {
          TradeRef& tr =
              trades[rng.Uniform(0, static_cast<int64_t>(trades.size()) - 1)];
          txn.Write(tr.trade);
          for (TupleId h : tr.history) txn.Read(h);
          if (tr.settled) {
            txn.Read(tr.settlement);
            txn.Read(tr.cash);
          }
        }
        break;
      }
      case 13: {  // TradeUpdateFrame2: account window, update settlements
        int64_t lo, hi;
        for (size_t idx : window_trades(acc.trades, &lo, &hi)) {
          TradeRef& tr = trades[idx];
          txn.Read(tr.trade);
          if (tr.settled) {
            txn.Write(tr.settlement);
            txn.Read(tr.cash);
          }
          for (TupleId h : tr.history) txn.Read(h);
        }
        if (txn.accesses.empty()) txn.Read(acc.account);
        break;
      }
      default: {  // TradeUpdateFrame3: security window, update cash txns
        int sy = static_cast<int>(rng.Uniform(0, cfg.securities - 1));
        int64_t lo, hi;
        for (size_t idx : window_trades(trades_of_symbol[sy], &lo, &hi)) {
          TradeRef& tr = trades[idx];
          txn.Read(tr.trade);
          if (tr.settled) {
            txn.Read(tr.settlement);
            txn.Write(tr.cash);
          }
          for (TupleId h : tr.history) txn.Read(h);
        }
        if (txn.accesses.empty()) txn.Read(security[sy]);
        break;
      }
    }
    trace.Add(std::move(txn));
  }
  return bundle;
}

DatabaseSolution HorticulturePaperTpceSolution(const Database& db,
                                               int32_t num_partitions) {
  const Schema& schema = db.schema();
  DatabaseSolution solution(num_partitions, schema.num_tables());
  auto replicated = std::make_shared<ReplicatedTable>();
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    solution.Set(static_cast<TableId>(t), replicated);
  }
  auto mapping = std::make_shared<HashMapping>(num_partitions);
  auto set_col = [&](const char* table, const char* column) {
    auto ref = schema.ResolveQualified(std::string(table) + "." + column);
    CheckOk(ref.status(), "HorticulturePaperTpceSolution");
    JoinPath path;
    path.source_table = ref.value().table;
    path.dest = ref.value();
    solution.Set(ref.value().table,
                 std::make_shared<JoinPathPartitioner>(path, mapping));
  };
  // Paper Table 4, "HC" column; CUSTOMER_ACCOUNT, TRADE_REQUEST and BROKER
  // replicated (Sec. 7.5).
  set_col("ACCOUNT_PERMISSION", "AP_CA_ID");
  set_col("CUSTOMER_TAXRATE", "CX_C_ID");
  set_col("DAILY_MARKET", "DM_DATE");
  set_col("WATCH_LIST", "WL_C_ID");
  set_col("CASH_TRANSACTION", "CT_T_ID");
  set_col("HOLDING", "H_CA_ID");
  set_col("HOLDING_HISTORY", "HH_T_ID");
  set_col("HOLDING_SUMMARY", "HS_CA_ID");
  set_col("SETTLEMENT", "SE_T_ID");
  set_col("TRADE", "T_CA_ID");
  set_col("TRADE_HISTORY", "TH_T_ID");
  return solution;
}

}  // namespace jecb
