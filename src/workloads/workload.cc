#include "workloads/workload.h"

#include "catalog/schema.h"
#include "sql/parser.h"

namespace jecb {

std::vector<sql::Procedure> MustParseProcedures(std::string_view text) {
  auto procs = sql::ParseProcedures(text);
  CheckOk(procs.status(), "MustParseProcedures");
  return std::move(procs).value();
}

size_t PickClass(const std::vector<double>& cumulative_mix, double u) {
  for (size_t i = 0; i < cumulative_mix.size(); ++i) {
    if (u < cumulative_mix[i]) return i;
  }
  return cumulative_mix.empty() ? 0 : cumulative_mix.size() - 1;
}

}  // namespace jecb
