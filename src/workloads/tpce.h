// TPC-E workload generator (brokerage firm). Models the full 33-table
// schema with its key-foreign key structure, the 10 activity types
// decomposed into 15 transaction classes (Trade-Lookup and Trade-Update
// frames are separate classes, as in paper Table 3), and the paper's mix
// percentages. Ten tables end up non-replicated: BROKER, CUSTOMER_ACCOUNT,
// TRADE, TRADE_REQUEST, TRADE_HISTORY, SETTLEMENT, CASH_TRANSACTION,
// HOLDING, HOLDING_HISTORY, HOLDING_SUMMARY; LAST_TRADE is read-mostly.
#pragma once

#include "partition/solution.h"
#include "workloads/workload.h"

namespace jecb {

struct TpceConfig {
  int customers = 600;
  /// TPC-E customers own several accounts (spec average 5), typically with
  /// different brokers — which is what makes C_ID and B_ID genuinely
  /// competing partitioning attributes (paper Sec. 7.5).
  int min_accounts_per_customer = 2;
  int max_accounts_per_customer = 5;
  int brokers = 30;
  int companies = 75;
  int securities = 150;
  int initial_trades_per_account = 6;
  /// Securities held (with HOLDING_SUMMARY rows) per account.
  int holdings_per_account = 3;
  /// Fraction of Trade-Order transactions that are limit orders (which
  /// insert a pending TRADE_REQUEST).
  double limit_order_fraction = 0.4;
  /// Width of the T_DTS windows used by the Frame-2/3 lookups, in trade
  /// timestamps; wide enough to span a few trades of one security, small
  /// relative to the domain.
  int64_t dts_window = 300;
};

class TpceWorkload : public Workload {
 public:
  explicit TpceWorkload(TpceConfig config = {}) : config_(config) {}

  std::string name() const override { return "TPC-E"; }
  WorkloadBundle Make(size_t num_txns, uint64_t seed) const override;

  const TpceConfig& config() const { return config_; }

 private:
  TpceConfig config_;
};

/// The Horticulture solution for TPC-E as supplied by its authors and
/// reproduced in paper Table 4: hash partitioning on AP_CA_ID, CX_C_ID,
/// DM_DATE, WL_C_ID, CT_T_ID, H_CA_ID, HH_T_ID, HS_CA_ID, SE_T_ID, T_CA_ID
/// and TH_T_ID, with CUSTOMER_ACCOUNT, TRADE_REQUEST and BROKER replicated
/// (Sec. 7.5); every other table replicated.
DatabaseSolution HorticulturePaperTpceSolution(const Database& db, int32_t num_partitions);

}  // namespace jecb
