// TATP workload generator (telecom subscriber database). Every transaction
// touches the data of a single subscriber, so the workload is perfectly
// partitionable by S_ID; the interesting failure mode it exposes is the
// classifier generalization of tuple-based approaches over the 100k-value
// subscriber-id domain (paper Sec. 7.4).
#pragma once

#include "workloads/workload.h"

namespace jecb {

struct TatpConfig {
  int subscribers = 2000;
  int access_infos_per_subscriber = 2;   // spec: 1..4
  int facilities_per_subscriber = 2;     // spec: 1..4
  int forwardings_per_facility = 1;      // spec: 0..3
};

class TatpWorkload : public Workload {
 public:
  explicit TatpWorkload(TatpConfig config = {}) : config_(config) {}

  std::string name() const override { return "TATP"; }
  WorkloadBundle Make(size_t num_txns, uint64_t seed) const override;

  const TatpConfig& config() const { return config_; }

 private:
  TatpConfig config_;
};

}  // namespace jecb
