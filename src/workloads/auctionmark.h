// AuctionMark workload generator (internet auctions). Most activity is
// rooted at a single user (seller), but bidding creates m-to-n
// relationships between buyers and sellers, so the workload is not
// completely partitionable (paper Sec. 7.4).
#pragma once

#include "workloads/workload.h"

namespace jecb {

struct AuctionMarkConfig {
  int users = 1200;
  int items_per_user = 3;
  int initial_bids_per_item = 2;
};

class AuctionMarkWorkload : public Workload {
 public:
  explicit AuctionMarkWorkload(AuctionMarkConfig config = {}) : config_(config) {}

  std::string name() const override { return "AuctionMark"; }
  WorkloadBundle Make(size_t num_txns, uint64_t seed) const override;

  const AuctionMarkConfig& config() const { return config_; }

 private:
  AuctionMarkConfig config_;
};

}  // namespace jecb
