#include "workloads/tatp.h"

#include "common/rng.h"

namespace jecb {

namespace {

const char* const kTatpProcedures = R"SQL(
PROCEDURE GetSubscriberData(@s_id) {
  SELECT SUB_NBR, VLR_LOCATION FROM SUBSCRIBER WHERE S_ID = @s_id;
}
PROCEDURE GetNewDestination(@s_id, @sf_type, @start_time) {
  SELECT CF_NUMBERX FROM SPECIAL_FACILITY JOIN CALL_FORWARDING
      ON CF_S_ID = SF_S_ID AND CF_SF_TYPE = SF_TYPE
    WHERE SF_S_ID = @s_id AND SF_TYPE = @sf_type AND CF_START_TIME <= @start_time;
}
PROCEDURE GetAccessData(@s_id, @ai_type) {
  SELECT AI_DATA1 FROM ACCESS_INFO WHERE AI_S_ID = @s_id AND AI_TYPE = @ai_type;
}
PROCEDURE UpdateSubscriberData(@s_id, @sf_type, @bit, @data) {
  UPDATE SUBSCRIBER SET BIT_1 = @bit WHERE S_ID = @s_id;
  UPDATE SPECIAL_FACILITY SET DATA_A = @data WHERE SF_S_ID = @s_id AND SF_TYPE = @sf_type;
}
PROCEDURE UpdateLocation(@s_id, @location) {
  UPDATE SUBSCRIBER SET VLR_LOCATION = @location WHERE S_ID = @s_id;
}
PROCEDURE InsertCallForwarding(@s_id, @sf_type, @start_time, @end_time, @numberx) {
  SELECT SF_TYPE FROM SPECIAL_FACILITY WHERE SF_S_ID = @s_id;
  INSERT INTO CALL_FORWARDING (CF_S_ID, CF_SF_TYPE, CF_START_TIME, CF_END_TIME, CF_NUMBERX)
    VALUES (@s_id, @sf_type, @start_time, @end_time, @numberx);
}
PROCEDURE DeleteCallForwarding(@s_id, @sf_type, @start_time) {
  SELECT S_ID FROM SUBSCRIBER WHERE S_ID = @s_id;
  DELETE FROM CALL_FORWARDING
    WHERE CF_S_ID = @s_id AND CF_SF_TYPE = @sf_type AND CF_START_TIME = @start_time;
}
)SQL";

Schema MakeTatpSchema() {
  Schema s;
  auto add = [&](const char* name, std::initializer_list<const char*> cols,
                 std::vector<std::string> pk) {
    auto tid = s.AddTable(name);
    CheckOk(tid.status(), "tatp schema");
    for (const char* c : cols) {
      CheckOk(s.AddColumn(tid.value(), c, ValueType::kInt64), "tatp schema");
    }
    CheckOk(s.SetPrimaryKey(tid.value(), pk), "tatp pk");
  };
  add("SUBSCRIBER", {"S_ID", "SUB_NBR", "BIT_1", "VLR_LOCATION"}, {"S_ID"});
  add("ACCESS_INFO", {"AI_S_ID", "AI_TYPE", "AI_DATA1"}, {"AI_S_ID", "AI_TYPE"});
  add("SPECIAL_FACILITY", {"SF_S_ID", "SF_TYPE", "IS_ACTIVE", "DATA_A"},
      {"SF_S_ID", "SF_TYPE"});
  add("CALL_FORWARDING",
      {"CF_S_ID", "CF_SF_TYPE", "CF_START_TIME", "CF_END_TIME", "CF_NUMBERX"},
      {"CF_S_ID", "CF_SF_TYPE", "CF_START_TIME"});
  CheckOk(s.AddUniqueKey(s.FindTable("SUBSCRIBER").value(), {"SUB_NBR"}), "tatp uk");
  CheckOk(s.AddForeignKey("ACCESS_INFO", {"AI_S_ID"}, "SUBSCRIBER", {"S_ID"}), "tatp fk");
  CheckOk(s.AddForeignKey("SPECIAL_FACILITY", {"SF_S_ID"}, "SUBSCRIBER", {"S_ID"}),
          "tatp fk");
  CheckOk(s.AddForeignKey("CALL_FORWARDING", {"CF_S_ID", "CF_SF_TYPE"},
                          "SPECIAL_FACILITY", {"SF_S_ID", "SF_TYPE"}),
          "tatp fk");
  return s;
}

}  // namespace

WorkloadBundle TatpWorkload::Make(size_t num_txns, uint64_t seed) const {
  WorkloadBundle bundle;
  bundle.db = std::make_unique<Database>(MakeTatpSchema());
  bundle.procedures = MustParseProcedures(kTatpProcedures);
  Database& db = *bundle.db;
  Rng rng(seed);

  const TatpConfig& cfg = config_;
  std::vector<TupleId> subscriber(cfg.subscribers);
  std::vector<std::vector<TupleId>> access_info(cfg.subscribers);
  std::vector<std::vector<TupleId>> facility(cfg.subscribers);
  std::vector<std::vector<std::vector<TupleId>>> forwarding(cfg.subscribers);

  for (int s = 0; s < cfg.subscribers; ++s) {
    subscriber[s] = db.MustInsert(
        "SUBSCRIBER", {int64_t(s), int64_t(s + 1000000), int64_t(0), int64_t(0)});
    for (int a = 0; a < cfg.access_infos_per_subscriber; ++a) {
      access_info[s].push_back(
          db.MustInsert("ACCESS_INFO", {int64_t(s), int64_t(a), rng.Uniform(0, 255)}));
    }
    forwarding[s].resize(cfg.facilities_per_subscriber);
    for (int f = 0; f < cfg.facilities_per_subscriber; ++f) {
      facility[s].push_back(db.MustInsert(
          "SPECIAL_FACILITY", {int64_t(s), int64_t(f), int64_t(1), rng.Uniform(0, 255)}));
      for (int c = 0; c < cfg.forwardings_per_facility; ++c) {
        forwarding[s][f].push_back(db.MustInsert(
            "CALL_FORWARDING",
            {int64_t(s), int64_t(f), int64_t(c * 8), int64_t(c * 8 + 8),
             rng.Uniform(0, 1000000)}));
      }
    }
  }

  Trace& trace = bundle.trace;
  const uint32_t kGetSub = trace.InternClass("GetSubscriberData");
  const uint32_t kGetDest = trace.InternClass("GetNewDestination");
  const uint32_t kGetAccess = trace.InternClass("GetAccessData");
  const uint32_t kUpdSub = trace.InternClass("UpdateSubscriberData");
  const uint32_t kUpdLoc = trace.InternClass("UpdateLocation");
  const uint32_t kInsCf = trace.InternClass("InsertCallForwarding");
  const uint32_t kDelCf = trace.InternClass("DeleteCallForwarding");

  // Spec mix: 35/10/35/2/14/2/2.
  const std::vector<double> mix = {0.35, 0.45, 0.80, 0.82, 0.96, 0.98, 1.0};
  int64_t next_cf_time = 1000;

  for (size_t n = 0; n < num_txns; ++n) {
    int s = static_cast<int>(rng.Uniform(0, cfg.subscribers - 1));
    int f = static_cast<int>(rng.Uniform(0, cfg.facilities_per_subscriber - 1));
    Transaction txn;
    switch (PickClass(mix, rng.NextDouble())) {
      case 0:
        txn.class_id = kGetSub;
        txn.Read(subscriber[s]);
        break;
      case 1:
        txn.class_id = kGetDest;
        txn.Read(facility[s][f]);
        for (TupleId cf : forwarding[s][f]) txn.Read(cf);
        break;
      case 2: {
        txn.class_id = kGetAccess;
        int a = static_cast<int>(rng.Uniform(0, cfg.access_infos_per_subscriber - 1));
        txn.Read(access_info[s][a]);
        break;
      }
      case 3:
        txn.class_id = kUpdSub;
        txn.Write(subscriber[s]);
        txn.Write(facility[s][f]);
        break;
      case 4:
        txn.class_id = kUpdLoc;
        txn.Write(subscriber[s]);
        break;
      case 5: {
        txn.class_id = kInsCf;
        for (TupleId fac : facility[s]) txn.Read(fac);
        TupleId cf = db.MustInsert(
            "CALL_FORWARDING",
            {int64_t(s), int64_t(f), next_cf_time, next_cf_time + 8,
             rng.Uniform(0, 1000000)});
        next_cf_time += 16;
        forwarding[s][f].push_back(cf);
        txn.Write(cf);
        break;
      }
      default: {
        txn.class_id = kDelCf;
        txn.Read(subscriber[s]);
        if (!forwarding[s][f].empty()) {
          txn.Write(forwarding[s][f].back());
        }
        break;
      }
    }
    trace.Add(std::move(txn));
  }
  return bundle;
}

}  // namespace jecb
