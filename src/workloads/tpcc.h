// TPC-C workload generator (order processing; TPC-C v5 access patterns).
//
// Scale knobs are explicit so the Fig. 5/6 experiments can model 128- and
// 1024-warehouse databases with reduced per-warehouse row counts: the
// partitioning structure (composite keys rooted at W_ID, remote stock /
// remote payment accesses) is what the experiments exercise, not absolute
// data volume.
#pragma once

#include "workloads/workload.h"

namespace jecb {

struct TpccConfig {
  int warehouses = 8;
  int districts_per_warehouse = 10;
  int customers_per_district = 20;
  int items = 100;
  /// Pre-loaded orders per district (each with order lines).
  int initial_orders_per_district = 5;
  int min_order_lines = 5;
  int max_order_lines = 15;
  /// Spec: ~1% of order lines are supplied by a remote warehouse.
  double remote_order_line_prob = 0.01;
  /// Zipf exponent for home-warehouse selection; 0 = uniform (spec). Used
  /// by the skew/bin-packing experiments ("hot" warehouses).
  double warehouse_zipf_theta = 0.0;
  /// Spec: 15% of payments are for a customer of a remote warehouse.
  double remote_payment_prob = 0.15;
  /// Transaction mix (NewOrder, Payment, OrderStatus, Delivery, StockLevel).
  double mix_new_order = 0.45;
  double mix_payment = 0.43;
  double mix_order_status = 0.04;
  double mix_delivery = 0.04;
  double mix_stock_level = 0.04;
};

class TpccWorkload : public Workload {
 public:
  explicit TpccWorkload(TpccConfig config = {}) : config_(config) {}

  std::string name() const override { return "TPC-C"; }
  WorkloadBundle Make(size_t num_txns, uint64_t seed) const override;

  const TpccConfig& config() const { return config_; }

 private:
  TpccConfig config_;
};

}  // namespace jecb
