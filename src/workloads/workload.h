// Common interface of the benchmark workload generators.
//
// Each generator is a self-contained substitute for running the real
// benchmark kit against a DBMS with an instrumented trace collector: it
// builds the schema, populates deterministic data, carries the stored
// procedure SQL (the input to JECB's code analysis), and synthesizes a
// workload trace whose per-transaction read/write tuple sets follow the
// benchmark's specified access patterns and mix percentages.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "storage/database.h"
#include "trace/trace.h"

namespace jecb {

/// Everything a partitioning experiment needs for one workload.
struct WorkloadBundle {
  std::unique_ptr<Database> db;
  std::vector<sql::Procedure> procedures;
  Trace trace;
};

/// A benchmark workload generator.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Builds database + procedures and synthesizes `num_txns` transactions.
  virtual WorkloadBundle Make(size_t num_txns, uint64_t seed) const = 0;
};

/// Parses embedded procedure SQL, aborting on error (generator code is
/// static; a parse failure is a bug, not a runtime condition).
std::vector<sql::Procedure> MustParseProcedures(std::string_view text);

/// Picks a class index from cumulative mix weights in [0, 1].
size_t PickClass(const std::vector<double>& cumulative_mix, double u);

}  // namespace jecb
