// Factory over the built-in benchmark workloads, for CLIs, tests and
// sweep harnesses that select workloads by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace jecb {

/// Names accepted by MakeWorkloadByName, in canonical order.
std::vector<std::string> WorkloadNames();

/// Instantiates a workload by (case-insensitive) name. `scale` multiplies
/// the population knobs (1.0 = the library defaults); returns null for
/// unknown names.
std::unique_ptr<Workload> MakeWorkloadByName(const std::string& name,
                                             double scale = 1.0);

}  // namespace jecb
