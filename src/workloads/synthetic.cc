#include "workloads/synthetic.h"

#include "common/rng.h"

namespace jecb {

namespace {

const char* const kSyntheticProcedures = R"SQL(
PROCEDURE RespectSchema(@p_id, @val) {
  UPDATE PARENT SET P_VAL = @val WHERE P_ID = @p_id;
  SELECT C_ID, C_VAL FROM CHILD JOIN PARENT ON C_P_ID = P_ID WHERE P_ID = @p_id;
  UPDATE CHILD SET C_VAL = @val WHERE C_P_ID = @p_id;
}
PROCEDURE ImplicitJoin(@g_id, @val) {
  UPDATE GROUPING SET G_VAL = @val WHERE G_ID = @g_id;
  SELECT @p = G_P_ID FROM GROUPING WHERE G_ID = @g_id;
  SELECT P_VAL FROM PARENT WHERE P_ID = @p;
  UPDATE CHILD SET C_VAL = @val WHERE C_P_ID = @p;
}
)SQL";

Schema MakeSyntheticSchema() {
  Schema s;
  auto add = [&](const char* name, std::initializer_list<const char*> cols,
                 std::vector<std::string> pk) {
    auto tid = s.AddTable(name);
    CheckOk(tid.status(), "synthetic schema");
    for (const char* c : cols) {
      CheckOk(s.AddColumn(tid.value(), c, ValueType::kInt64), "synthetic schema");
    }
    CheckOk(s.SetPrimaryKey(tid.value(), pk), "synthetic pk");
  };
  add("PARENT", {"P_ID", "P_VAL"}, {"P_ID"});
  add("CHILD", {"C_ID", "C_P_ID", "C_VAL"}, {"C_ID"});
  // G_P_ID references PARENT rows but is deliberately NOT a foreign key:
  // the schema does not capture the relationship (Sec. 7.6's premise).
  add("GROUPING", {"G_ID", "G_P_ID", "G_VAL"}, {"G_ID"});
  CheckOk(s.AddForeignKey("CHILD", {"C_P_ID"}, "PARENT", {"P_ID"}), "synthetic fk");
  return s;
}

}  // namespace

WorkloadBundle SyntheticWorkload::Make(size_t num_txns, uint64_t seed) const {
  WorkloadBundle bundle;
  bundle.db = std::make_unique<Database>(MakeSyntheticSchema());
  bundle.procedures = MustParseProcedures(kSyntheticProcedures);
  Database& db = *bundle.db;
  Rng rng(seed);
  const SyntheticConfig& cfg = config_;

  std::vector<TupleId> parent(cfg.parents);
  std::vector<std::vector<TupleId>> children(cfg.parents);
  std::vector<TupleId> grouping(cfg.groups);
  std::vector<int> group_parent(cfg.groups);

  int64_t next_c = 0;
  for (int p = 0; p < cfg.parents; ++p) {
    parent[p] = db.MustInsert("PARENT", {int64_t(p), int64_t(0)});
    for (int c = 0; c < cfg.children_per_parent; ++c) {
      children[p].push_back(
          db.MustInsert("CHILD", {next_c++, int64_t(p), int64_t(0)}));
    }
  }
  for (int g = 0; g < cfg.groups; ++g) {
    group_parent[g] = static_cast<int>(rng.Uniform(0, cfg.parents - 1));
    grouping[g] =
        db.MustInsert("GROUPING", {int64_t(g), int64_t(group_parent[g]), int64_t(0)});
  }

  Trace& trace = bundle.trace;
  const uint32_t kRespect = trace.InternClass("RespectSchema");
  const uint32_t kImplicit = trace.InternClass("ImplicitJoin");

  for (size_t n = 0; n < num_txns; ++n) {
    Transaction txn;
    if (rng.NextDouble() < cfg.implicit_join_fraction) {
      txn.class_id = kImplicit;
      int g = static_cast<int>(rng.Uniform(0, cfg.groups - 1));
      txn.Write(grouping[g]);
      int p = group_parent[g];
      txn.Read(parent[p]);
      for (TupleId c : children[p]) txn.Write(c);
    } else {
      txn.class_id = kRespect;
      int p = static_cast<int>(rng.Uniform(0, cfg.parents - 1));
      txn.Write(parent[p]);
      for (TupleId c : children[p]) txn.Write(c);
    }
    trace.Add(std::move(txn));
  }
  return bundle;
}

}  // namespace jecb
