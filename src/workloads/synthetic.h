// Synthetic workload for paper Sec. 7.6: a simple 1-to-n schema where one
// transaction class respects the schema (joins along the declared foreign
// key) and the other reaches the same data through an *implicit* join — a
// GROUPING table whose G_P_ID column references parents without a declared
// foreign key. Join extension cannot connect GROUPING to the rest, while
// tuple-statistics approaches can learn the co-access structure.
#pragma once

#include "workloads/workload.h"

namespace jecb {

struct SyntheticConfig {
  int parents = 500;
  int children_per_parent = 6;
  int groups = 500;
  /// Fraction of transactions from the implicit-join class (the paper's
  /// sweep variable).
  double implicit_join_fraction = 0.5;
};

class SyntheticWorkload : public Workload {
 public:
  explicit SyntheticWorkload(SyntheticConfig config = {}) : config_(config) {}

  std::string name() const override { return "Synthetic"; }
  WorkloadBundle Make(size_t num_txns, uint64_t seed) const override;

  const SyntheticConfig& config() const { return config_; }

 private:
  SyntheticConfig config_;
};

}  // namespace jecb
