#include "workloads/seats.h"

#include "common/rng.h"

namespace jecb {

namespace {

const char* const kSeatsProcedures = R"SQL(
PROCEDURE FindFlights(@depart_ap, @arrive_ap, @date) {
  SELECT F_ID, F_DEPART_TIME FROM FLIGHT
    WHERE F_DEPART_AP_ID = @depart_ap AND F_ARRIVE_AP_ID = @arrive_ap
      AND F_DEPART_TIME >= @date;
  SELECT AP_CODE FROM AIRPORT WHERE AP_ID = @depart_ap;
  SELECT AP_CODE FROM AIRPORT WHERE AP_ID = @arrive_ap;
}
PROCEDURE FindOpenSeats(@f_id) {
  SELECT F_SEATS_LEFT, F_BASE_PRICE FROM FLIGHT WHERE F_ID = @f_id;
  SELECT AL_NAME FROM AIRLINE JOIN FLIGHT ON F_AL_ID = AL_ID WHERE F_ID = @f_id;
}
PROCEDURE NewReservation(@r_id, @c_id, @al_id, @f_id, @seat, @price) {
  SELECT C_BASE_AP_ID FROM CUSTOMER WHERE C_ID = @c_id;
  SELECT @ff_id = FF_ID FROM FREQUENT_FLYER WHERE FF_C_ID = @c_id AND FF_AL_ID = @al_id;
  SELECT F_SEATS_LEFT FROM FLIGHT WHERE F_ID = @f_id;
  INSERT INTO RESERVATION (R_ID, R_FF_ID, R_F_ID, R_SEAT, R_PRICE)
    VALUES (@r_id, @ff_id, @f_id, @seat, @price);
  UPDATE FREQUENT_FLYER SET FF_MILES = @price WHERE FF_ID = @ff_id;
}
PROCEDURE UpdateReservation(@r_id, @new_seat) {
  SELECT @ff_id = R_FF_ID FROM RESERVATION WHERE R_ID = @r_id;
  UPDATE RESERVATION SET R_SEAT = @new_seat WHERE R_ID = @r_id;
  SELECT @c_id = FF_C_ID FROM FREQUENT_FLYER WHERE FF_ID = @ff_id;
  SELECT C_SATTR0 FROM CUSTOMER WHERE C_ID = @c_id;
}
PROCEDURE DeleteReservation(@r_id) {
  SELECT @ff_id = R_FF_ID FROM RESERVATION WHERE R_ID = @r_id;
  SELECT @c_id = FF_C_ID FROM FREQUENT_FLYER WHERE FF_ID = @ff_id;
  UPDATE FREQUENT_FLYER SET FF_MILES = 0 WHERE FF_ID = @ff_id;
  SELECT C_SATTR0 FROM CUSTOMER WHERE C_ID = @c_id;
  DELETE FROM RESERVATION WHERE R_ID = @r_id;
}
PROCEDURE UpdateCustomer(@c_id, @attr) {
  UPDATE CUSTOMER SET C_SATTR0 = @attr WHERE C_ID = @c_id;
  SELECT FF_ID, FF_MILES FROM FREQUENT_FLYER WHERE FF_C_ID = @c_id;
}
PROCEDURE GetCustomerReservations(@c_id) {
  SELECT C_SATTR0, C_BASE_AP_ID FROM CUSTOMER WHERE C_ID = @c_id;
  SELECT FF_ID FROM FREQUENT_FLYER WHERE FF_C_ID = @c_id;
  SELECT R_ID, R_SEAT, R_PRICE FROM RESERVATION JOIN FREQUENT_FLYER ON R_FF_ID = FF_ID
    WHERE FF_C_ID = @c_id;
}
)SQL";

Schema MakeSeatsSchema() {
  Schema s;
  auto add = [&](const char* name, std::initializer_list<const char*> cols,
                 std::vector<std::string> pk) {
    auto tid = s.AddTable(name);
    CheckOk(tid.status(), "seats schema");
    for (const char* c : cols) {
      CheckOk(s.AddColumn(tid.value(), c, ValueType::kInt64), "seats schema");
    }
    CheckOk(s.SetPrimaryKey(tid.value(), pk), "seats pk");
  };
  add("AIRPORT", {"AP_ID", "AP_CODE"}, {"AP_ID"});
  add("AIRLINE", {"AL_ID", "AL_NAME"}, {"AL_ID"});
  add("FLIGHT",
      {"F_ID", "F_AL_ID", "F_DEPART_AP_ID", "F_ARRIVE_AP_ID", "F_DEPART_TIME",
       "F_SEATS_LEFT", "F_BASE_PRICE"},
      {"F_ID"});
  add("CUSTOMER", {"C_ID", "C_BASE_AP_ID", "C_SATTR0"}, {"C_ID"});
  add("FREQUENT_FLYER", {"FF_ID", "FF_C_ID", "FF_AL_ID", "FF_MILES"}, {"FF_ID"});
  add("RESERVATION", {"R_ID", "R_FF_ID", "R_F_ID", "R_SEAT", "R_PRICE"}, {"R_ID"});

  CheckOk(s.AddForeignKey("FLIGHT", {"F_AL_ID"}, "AIRLINE", {"AL_ID"}), "seats fk");
  CheckOk(s.AddForeignKey("FLIGHT", {"F_DEPART_AP_ID"}, "AIRPORT", {"AP_ID"}), "seats fk");
  CheckOk(s.AddForeignKey("FLIGHT", {"F_ARRIVE_AP_ID"}, "AIRPORT", {"AP_ID"}), "seats fk");
  CheckOk(s.AddForeignKey("CUSTOMER", {"C_BASE_AP_ID"}, "AIRPORT", {"AP_ID"}), "seats fk");
  CheckOk(s.AddForeignKey("FREQUENT_FLYER", {"FF_C_ID"}, "CUSTOMER", {"C_ID"}), "seats fk");
  CheckOk(s.AddForeignKey("FREQUENT_FLYER", {"FF_AL_ID"}, "AIRLINE", {"AL_ID"}), "seats fk");
  CheckOk(s.AddForeignKey("RESERVATION", {"R_FF_ID"}, "FREQUENT_FLYER", {"FF_ID"}),
          "seats fk");
  CheckOk(s.AddForeignKey("RESERVATION", {"R_F_ID"}, "FLIGHT", {"F_ID"}), "seats fk");
  return s;
}

}  // namespace

WorkloadBundle SeatsWorkload::Make(size_t num_txns, uint64_t seed) const {
  WorkloadBundle bundle;
  bundle.db = std::make_unique<Database>(MakeSeatsSchema());
  bundle.procedures = MustParseProcedures(kSeatsProcedures);
  Database& db = *bundle.db;
  Rng rng(seed);
  const SeatsConfig& cfg = config_;

  std::vector<TupleId> airport(cfg.airports);
  std::vector<TupleId> airline(cfg.airlines);
  std::vector<TupleId> flight(cfg.flights);
  std::vector<TupleId> customer(cfg.customers);
  std::vector<std::vector<TupleId>> ff(cfg.customers);          // per customer
  std::vector<std::vector<TupleId>> reservations(cfg.customers);

  for (int a = 0; a < cfg.airports; ++a) {
    airport[a] = db.MustInsert("AIRPORT", {int64_t(a), int64_t(a + 100)});
  }
  for (int a = 0; a < cfg.airlines; ++a) {
    airline[a] = db.MustInsert("AIRLINE", {int64_t(a), int64_t(a + 500)});
  }
  for (int f = 0; f < cfg.flights; ++f) {
    int64_t dep = rng.Uniform(0, cfg.airports - 1);
    int64_t arr = (dep + rng.Uniform(1, cfg.airports - 1)) % cfg.airports;
    flight[f] = db.MustInsert(
        "FLIGHT", {int64_t(f), rng.Uniform(0, cfg.airlines - 1), dep, arr,
                   rng.Uniform(0, 100000), int64_t(150), int64_t(300)});
  }
  int64_t next_ff = 0;
  int64_t next_r = 0;
  for (int c = 0; c < cfg.customers; ++c) {
    customer[c] = db.MustInsert(
        "CUSTOMER", {int64_t(c), rng.Uniform(0, cfg.airports - 1), int64_t(0)});
    int nff = static_cast<int>(
        rng.Uniform(cfg.min_ff_per_customer, cfg.max_ff_per_customer));
    auto airlines_used = rng.SampleDistinct(0, cfg.airlines - 1, nff);
    for (int64_t al : airlines_used) {
      ff[c].push_back(
          db.MustInsert("FREQUENT_FLYER", {next_ff++, int64_t(c), al, int64_t(0)}));
    }
    for (int r = 0; r < cfg.initial_reservations_per_customer; ++r) {
      size_t which_ff = rng.Uniform(0, ff[c].size() - 1);
      reservations[c].push_back(db.MustInsert(
          "RESERVATION",
          {next_r++, db.GetValue(ff[c][which_ff], 0).AsInt(),
           rng.Uniform(0, cfg.flights - 1), rng.Uniform(1, 150), int64_t(300)}));
    }
  }

  Trace& trace = bundle.trace;
  const uint32_t kFindFlights = trace.InternClass("FindFlights");
  const uint32_t kFindOpenSeats = trace.InternClass("FindOpenSeats");
  const uint32_t kNewReservation = trace.InternClass("NewReservation");
  const uint32_t kUpdateReservation = trace.InternClass("UpdateReservation");
  const uint32_t kDeleteReservation = trace.InternClass("DeleteReservation");
  const uint32_t kUpdateCustomer = trace.InternClass("UpdateCustomer");
  const uint32_t kGetCustRes = trace.InternClass("GetCustomerReservations");

  // Mix: 10/10/20/10/10/10/30.
  const std::vector<double> mix = {0.10, 0.20, 0.40, 0.50, 0.60, 0.70, 1.0};

  for (size_t n = 0; n < num_txns; ++n) {
    int c = static_cast<int>(rng.Uniform(0, cfg.customers - 1));
    Transaction txn;
    switch (PickClass(mix, rng.NextDouble())) {
      case 0: {
        txn.class_id = kFindFlights;
        // A handful of matching flights plus the two airports (all
        // replicated read-only data).
        for (int i = 0; i < 3; ++i) {
          txn.Read(flight[rng.Uniform(0, cfg.flights - 1)]);
        }
        txn.Read(airport[rng.Uniform(0, cfg.airports - 1)]);
        txn.Read(airport[rng.Uniform(0, cfg.airports - 1)]);
        break;
      }
      case 1: {
        txn.class_id = kFindOpenSeats;
        int f = static_cast<int>(rng.Uniform(0, cfg.flights - 1));
        txn.Read(flight[f]);
        txn.Read(airline[db.GetValue(flight[f], 1).AsInt()]);
        break;
      }
      case 2: {
        txn.class_id = kNewReservation;
        txn.Read(customer[c]);
        size_t which_ff = rng.Uniform(0, ff[c].size() - 1);
        txn.Write(ff[c][which_ff]);
        int f = static_cast<int>(rng.Uniform(0, cfg.flights - 1));
        txn.Read(flight[f]);
        TupleId r = db.MustInsert(
            "RESERVATION", {next_r++, db.GetValue(ff[c][which_ff], 0).AsInt(),
                            int64_t(f), rng.Uniform(1, 150), int64_t(300)});
        reservations[c].push_back(r);
        txn.Write(r);
        break;
      }
      case 3: {
        txn.class_id = kUpdateReservation;
        if (reservations[c].empty()) {
          txn.Read(customer[c]);
          break;
        }
        TupleId r = reservations[c][rng.Uniform(0, reservations[c].size() - 1)];
        txn.Write(r);
        // Follow R_FF_ID back to the frequent flyer and customer.
        int64_t ff_id = db.GetValue(r, 1).AsInt();
        for (TupleId f : ff[c]) {
          if (db.GetValue(f, 0).AsInt() == ff_id) {
            txn.Read(f);
            break;
          }
        }
        txn.Read(customer[c]);
        break;
      }
      case 4: {
        txn.class_id = kDeleteReservation;
        if (reservations[c].empty()) {
          txn.Read(customer[c]);
          break;
        }
        TupleId r = reservations[c].back();
        reservations[c].pop_back();
        txn.Write(r);
        int64_t ff_id = db.GetValue(r, 1).AsInt();
        for (TupleId f : ff[c]) {
          if (db.GetValue(f, 0).AsInt() == ff_id) {
            txn.Write(f);
            break;
          }
        }
        txn.Read(customer[c]);
        break;
      }
      case 5: {
        txn.class_id = kUpdateCustomer;
        txn.Write(customer[c]);
        for (TupleId f : ff[c]) txn.Read(f);
        break;
      }
      default: {
        txn.class_id = kGetCustRes;
        txn.Read(customer[c]);
        for (TupleId f : ff[c]) txn.Read(f);
        for (TupleId r : reservations[c]) txn.Read(r);
        break;
      }
    }
    trace.Add(std::move(txn));
  }
  return bundle;
}

}  // namespace jecb
