#include "workloads/registry.h"

#include <algorithm>

#include "common/string_util.h"
#include "workloads/auctionmark.h"
#include "workloads/seats.h"
#include "workloads/synthetic.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/tpce.h"

namespace jecb {

std::vector<std::string> WorkloadNames() {
  return {"tpcc", "tatp", "seats", "auctionmark", "tpce", "synthetic"};
}

std::unique_ptr<Workload> MakeWorkloadByName(const std::string& raw, double scale) {
  std::string name = ToLower(raw);
  auto scaled = [scale](int base, int floor = 4) {
    return std::max(floor, static_cast<int>(base * scale));
  };
  if (name == "tpcc" || name == "tpc-c") {
    TpccConfig cfg;
    cfg.warehouses = scaled(8, 1);
    return std::make_unique<TpccWorkload>(cfg);
  }
  if (name == "tatp") {
    TatpConfig cfg;
    cfg.subscribers = scaled(2000, 10);
    return std::make_unique<TatpWorkload>(cfg);
  }
  if (name == "seats") {
    SeatsConfig cfg;
    cfg.customers = scaled(1500, 10);
    return std::make_unique<SeatsWorkload>(cfg);
  }
  if (name == "auctionmark") {
    AuctionMarkConfig cfg;
    cfg.users = scaled(1200, 10);
    return std::make_unique<AuctionMarkWorkload>(cfg);
  }
  if (name == "tpce" || name == "tpc-e") {
    TpceConfig cfg;
    cfg.customers = scaled(600, 10);
    return std::make_unique<TpceWorkload>(cfg);
  }
  if (name == "synthetic") {
    SyntheticConfig cfg;
    cfg.parents = scaled(500, 10);
    cfg.groups = scaled(500, 10);
    return std::make_unique<SyntheticWorkload>(cfg);
  }
  return nullptr;
}

}  // namespace jecb
