#include "workloads/auctionmark.h"

#include "common/rng.h"

namespace jecb {

namespace {

const char* const kAuctionMarkProcedures = R"SQL(
PROCEDURE GetItem(@i_id) {
  SELECT I_NAME, I_CURRENT_PRICE, I_U_ID FROM ITEM WHERE I_ID = @i_id;
  SELECT @seller = I_U_ID FROM ITEM WHERE I_ID = @i_id;
  SELECT U_RATING FROM USERACCT WHERE U_ID = @seller;
}
PROCEDURE GetUserInfo(@u_id) {
  SELECT U_RATING, U_BALANCE FROM USERACCT WHERE U_ID = @u_id;
  SELECT UF_RATING FROM USER_FEEDBACK WHERE UF_U_ID = @u_id;
}
PROCEDURE NewBid(@ib_id, @i_id, @buyer_id, @bid) {
  SELECT I_CURRENT_PRICE FROM ITEM WHERE I_ID = @i_id;
  UPDATE USERACCT SET U_BALANCE = @bid WHERE U_ID = @buyer_id;
  INSERT INTO ITEM_BID (IB_ID, IB_I_ID, IB_BUYER_ID, IB_BID) VALUES (@ib_id, @i_id, @buyer_id, @bid);
  UPDATE ITEM_MAX_BID SET IMB_IB_ID = @ib_id WHERE IMB_I_ID = @i_id;
  UPDATE ITEM SET I_CURRENT_PRICE = @bid WHERE I_ID = @i_id;
}
PROCEDURE NewItem(@i_id, @u_id, @name, @price) {
  SELECT U_BALANCE FROM USERACCT WHERE U_ID = @u_id;
  INSERT INTO ITEM (I_ID, I_U_ID, I_NAME, I_CURRENT_PRICE) VALUES (@i_id, @u_id, @name, @price);
  INSERT INTO ITEM_MAX_BID (IMB_I_ID, IMB_IB_ID) VALUES (@i_id, 0);
}
PROCEDURE CheckWinningBids(@u_id) {
  SELECT @i_id = I_ID FROM ITEM WHERE I_U_ID = @u_id;
  SELECT IB_ID, IB_BID FROM ITEM_BID WHERE IB_I_ID = @i_id;
  SELECT IMB_IB_ID FROM ITEM_MAX_BID WHERE IMB_I_ID = @i_id;
}
PROCEDURE NewFeedback(@uf_id, @u_id, @rating) {
  UPDATE USERACCT SET U_RATING = @rating WHERE U_ID = @u_id;
  INSERT INTO USER_FEEDBACK (UF_ID, UF_U_ID, UF_RATING) VALUES (@uf_id, @u_id, @rating);
}
PROCEDURE UpdateItem(@i_id, @name) {
  UPDATE ITEM SET I_NAME = @name WHERE I_ID = @i_id;
  SELECT @seller = I_U_ID FROM ITEM WHERE I_ID = @i_id;
  SELECT U_RATING FROM USERACCT WHERE U_ID = @seller;
}
)SQL";

Schema MakeAuctionMarkSchema() {
  Schema s;
  auto add = [&](const char* name, std::initializer_list<const char*> cols,
                 std::vector<std::string> pk) {
    auto tid = s.AddTable(name);
    CheckOk(tid.status(), "auctionmark schema");
    for (const char* c : cols) {
      CheckOk(s.AddColumn(tid.value(), c, ValueType::kInt64), "auctionmark schema");
    }
    CheckOk(s.SetPrimaryKey(tid.value(), pk), "auctionmark pk");
  };
  add("REGION", {"R_ID", "R_NAME"}, {"R_ID"});
  add("CATEGORY", {"CAT_ID", "CAT_NAME"}, {"CAT_ID"});
  add("USERACCT", {"U_ID", "U_R_ID", "U_RATING", "U_BALANCE"}, {"U_ID"});
  add("USER_FEEDBACK", {"UF_ID", "UF_U_ID", "UF_RATING"}, {"UF_ID"});
  add("ITEM", {"I_ID", "I_U_ID", "I_CAT_ID", "I_NAME", "I_CURRENT_PRICE"}, {"I_ID"});
  add("ITEM_BID", {"IB_ID", "IB_I_ID", "IB_BUYER_ID", "IB_BID"}, {"IB_ID"});
  add("ITEM_MAX_BID", {"IMB_I_ID", "IMB_IB_ID"}, {"IMB_I_ID"});

  CheckOk(s.AddForeignKey("USERACCT", {"U_R_ID"}, "REGION", {"R_ID"}), "am fk");
  CheckOk(s.AddForeignKey("USER_FEEDBACK", {"UF_U_ID"}, "USERACCT", {"U_ID"}), "am fk");
  CheckOk(s.AddForeignKey("ITEM", {"I_U_ID"}, "USERACCT", {"U_ID"}), "am fk");
  CheckOk(s.AddForeignKey("ITEM", {"I_CAT_ID"}, "CATEGORY", {"CAT_ID"}), "am fk");
  CheckOk(s.AddForeignKey("ITEM_BID", {"IB_I_ID"}, "ITEM", {"I_ID"}), "am fk");
  CheckOk(s.AddForeignKey("ITEM_BID", {"IB_BUYER_ID"}, "USERACCT", {"U_ID"}), "am fk");
  CheckOk(s.AddForeignKey("ITEM_MAX_BID", {"IMB_I_ID"}, "ITEM", {"I_ID"}), "am fk");
  return s;
}

}  // namespace

WorkloadBundle AuctionMarkWorkload::Make(size_t num_txns, uint64_t seed) const {
  WorkloadBundle bundle;
  bundle.db = std::make_unique<Database>(MakeAuctionMarkSchema());
  bundle.procedures = MustParseProcedures(kAuctionMarkProcedures);
  Database& db = *bundle.db;
  Rng rng(seed);
  const AuctionMarkConfig& cfg = config_;

  for (int r = 0; r < 5; ++r) db.MustInsert("REGION", {int64_t(r), int64_t(r)});
  for (int c = 0; c < 10; ++c) db.MustInsert("CATEGORY", {int64_t(c), int64_t(c)});

  std::vector<TupleId> user(cfg.users);
  std::vector<std::vector<TupleId>> feedback(cfg.users);
  struct ItemRef {
    TupleId item;
    TupleId max_bid;
    int seller;
    std::vector<TupleId> bids;
  };
  std::vector<ItemRef> items;
  std::vector<std::vector<size_t>> items_of(cfg.users);

  int64_t next_item = 0;
  int64_t next_bid = 0;
  int64_t next_uf = 0;

  for (int u = 0; u < cfg.users; ++u) {
    user[u] = db.MustInsert(
        "USERACCT", {int64_t(u), rng.Uniform(0, 4), rng.Uniform(0, 5), int64_t(1000)});
  }
  for (int u = 0; u < cfg.users; ++u) {
    for (int i = 0; i < cfg.items_per_user; ++i) {
      ItemRef ref;
      ref.seller = u;
      int64_t id = next_item++;
      ref.item = db.MustInsert(
          "ITEM", {id, int64_t(u), rng.Uniform(0, 9), id, int64_t(100)});
      ref.max_bid = db.MustInsert("ITEM_MAX_BID", {id, int64_t(0)});
      for (int b = 0; b < cfg.initial_bids_per_item; ++b) {
        ref.bids.push_back(db.MustInsert(
            "ITEM_BID", {next_bid++, id, rng.Uniform(0, cfg.users - 1),
                         rng.Uniform(100, 500)}));
      }
      items_of[u].push_back(items.size());
      items.push_back(std::move(ref));
    }
  }

  Trace& trace = bundle.trace;
  const uint32_t kGetItem = trace.InternClass("GetItem");
  const uint32_t kGetUserInfo = trace.InternClass("GetUserInfo");
  const uint32_t kNewBid = trace.InternClass("NewBid");
  const uint32_t kNewItem = trace.InternClass("NewItem");
  const uint32_t kCheckWinningBids = trace.InternClass("CheckWinningBids");
  const uint32_t kNewFeedback = trace.InternClass("NewFeedback");
  const uint32_t kUpdateItem = trace.InternClass("UpdateItem");

  // Mix: 25/15/20/10/10/10/10.
  const std::vector<double> mix = {0.25, 0.40, 0.60, 0.70, 0.80, 0.90, 1.0};

  for (size_t n = 0; n < num_txns; ++n) {
    int u = static_cast<int>(rng.Uniform(0, cfg.users - 1));
    size_t it = rng.Uniform(0, static_cast<int64_t>(items.size()) - 1);
    Transaction txn;
    switch (PickClass(mix, rng.NextDouble())) {
      case 0:
        txn.class_id = kGetItem;
        txn.Read(items[it].item);
        txn.Read(user[items[it].seller]);
        break;
      case 1:
        txn.class_id = kGetUserInfo;
        txn.Read(user[u]);
        for (TupleId f : feedback[u]) txn.Read(f);
        break;
      case 2: {  // NewBid: buyer u bids on a random item (m-to-n)
        txn.class_id = kNewBid;
        txn.Read(items[it].item);
        txn.Write(user[u]);
        TupleId bid = db.MustInsert(
            "ITEM_BID", {next_bid++, db.GetValue(items[it].item, 0).AsInt(),
                         int64_t(u), rng.Uniform(100, 900)});
        items[it].bids.push_back(bid);
        txn.Write(bid);
        txn.Write(items[it].max_bid);
        txn.Write(items[it].item);
        break;
      }
      case 3: {  // NewItem
        txn.class_id = kNewItem;
        txn.Read(user[u]);
        ItemRef ref;
        ref.seller = u;
        int64_t id = next_item++;
        ref.item = db.MustInsert(
            "ITEM", {id, int64_t(u), rng.Uniform(0, 9), id, int64_t(100)});
        ref.max_bid = db.MustInsert("ITEM_MAX_BID", {id, int64_t(0)});
        txn.Write(ref.item);
        txn.Write(ref.max_bid);
        items_of[u].push_back(items.size());
        items.push_back(std::move(ref));
        break;
      }
      case 4: {  // CheckWinningBids: seller-side scan of one item's bids
        txn.class_id = kCheckWinningBids;
        if (items_of[u].empty()) {
          txn.Read(user[u]);
          break;
        }
        const ItemRef& ref =
            items[items_of[u][rng.Uniform(0, items_of[u].size() - 1)]];
        txn.Read(ref.item);
        for (TupleId b : ref.bids) txn.Read(b);
        txn.Read(ref.max_bid);
        break;
      }
      case 5: {  // NewFeedback
        txn.class_id = kNewFeedback;
        txn.Write(user[u]);
        TupleId f = db.MustInsert("USER_FEEDBACK",
                                  {next_uf++, int64_t(u), rng.Uniform(0, 5)});
        feedback[u].push_back(f);
        txn.Write(f);
        break;
      }
      default:
        txn.class_id = kUpdateItem;
        txn.Write(items[it].item);
        txn.Read(user[items[it].seller]);
        break;
    }
    trace.Add(std::move(txn));
  }
  return bundle;
}

}  // namespace jecb
