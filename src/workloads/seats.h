// SEATS workload generator (airline ticketing). Customers book reservations
// through frequent-flyer accounts: RESERVATION carries no direct customer
// column, only R_FF_ID -> FREQUENT_FLYER.FF_C_ID -> CUSTOMER.C_ID. That is
// exactly the situation where intra-table (column-based) partitioning cannot
// co-locate a customer's data but join extension can (paper Sec. 7.4:
// "no common attribute among non-replicated tables").
#pragma once

#include "workloads/workload.h"

namespace jecb {

struct SeatsConfig {
  int airports = 20;
  int airlines = 8;
  int flights = 200;
  int customers = 1500;
  /// Frequent-flyer accounts per customer (one per airline flown).
  int min_ff_per_customer = 1;
  int max_ff_per_customer = 3;
  int initial_reservations_per_customer = 2;
};

class SeatsWorkload : public Workload {
 public:
  explicit SeatsWorkload(SeatsConfig config = {}) : config_(config) {}

  std::string name() const override { return "SEATS"; }
  WorkloadBundle Make(size_t num_txns, uint64_t seed) const override;

  const SeatsConfig& config() const { return config_; }

 private:
  SeatsConfig config_;
};

}  // namespace jecb
