// Relational catalog: tables, columns, primary/unique keys and foreign keys.
//
// The catalog is the substrate both for the in-memory row store and for the
// JECB code analysis, which walks key-foreign key relationships (paper
// Sec. 5.1). Foreign keys may reference the primary key or any declared
// unique key of the target table (TPC-E's C_TAX_ID is an alternate key).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"

namespace jecb {

using TableId = uint16_t;
using ColumnIdx = uint16_t;

/// Storage type of a column value.
enum class ValueType : uint8_t {
  kInt64,
  kDouble,
  kString,
};

std::string_view ValueTypeToString(ValueType t);

/// A (table, column) pair: the identity of an attribute across the library.
struct ColumnRef {
  TableId table = 0;
  ColumnIdx column = 0;

  bool operator==(const ColumnRef&) const = default;
  auto operator<=>(const ColumnRef&) const = default;
};

struct ColumnRefHash {
  size_t operator()(const ColumnRef& c) const {
    return HashCombine(HashInt64(c.table), HashInt64(c.column));
  }
};

/// Column metadata.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// How a table is treated by partitioning preprocessing (paper Phase 1).
enum class AccessClass : uint8_t {
  kPartitioned,  ///< regular read-write table; must be partitioned
  kReadOnly,     ///< never written; replicated everywhere
  kReadMostly,   ///< rarely written; replicated, updates become distributed
};

/// Table metadata: columns, primary key, alternate unique keys.
struct Table {
  TableId id = 0;
  std::string name;
  std::vector<Column> columns;
  std::vector<ColumnIdx> primary_key;
  std::vector<std::vector<ColumnIdx>> unique_keys;  // alternates, excl. PK
  AccessClass access_class = AccessClass::kPartitioned;

  /// Column index by name, or error.
  Result<ColumnIdx> FindColumn(std::string_view name) const;
  bool HasColumn(std::string_view name) const;
  const std::string& column_name(ColumnIdx i) const { return columns[i].name; }

  /// True if `cols` (order-insensitive) is the PK or a declared unique key.
  bool IsUniqueKey(const std::vector<ColumnIdx>& cols) const;
};

/// A key-foreign key constraint: `columns` of `table` reference
/// `ref_columns` of `ref_table` (which must form a unique key there).
struct ForeignKey {
  TableId table = 0;
  std::vector<ColumnIdx> columns;
  TableId ref_table = 0;
  std::vector<ColumnIdx> ref_columns;
};

/// A database schema: tables plus the foreign-key graph.
class Schema {
 public:
  /// Adds an empty table; fails on duplicate name.
  Result<TableId> AddTable(std::string name);

  /// Adds a column to a table; fails on duplicate column name.
  Status AddColumn(TableId table, std::string name, ValueType type);

  /// Declares the primary key; all columns must exist.
  Status SetPrimaryKey(TableId table, const std::vector<std::string>& cols);

  /// Declares an alternate unique key.
  Status AddUniqueKey(TableId table, const std::vector<std::string>& cols);

  /// Declares a foreign key; the referenced columns must be a unique key
  /// (primary or alternate) of the referenced table.
  Status AddForeignKey(std::string_view table,
                       const std::vector<std::string>& cols,
                       std::string_view ref_table,
                       const std::vector<std::string>& ref_cols);

  Result<TableId> FindTable(std::string_view name) const;
  bool HasTable(std::string_view name) const;

  const Table& table(TableId id) const { return tables_[id]; }
  Table& mutable_table(TableId id) { return tables_[id]; }
  size_t num_tables() const { return tables_.size(); }
  const std::vector<Table>& tables() const { return tables_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Foreign keys whose child side is `table`.
  std::vector<const ForeignKey*> ForeignKeysFrom(TableId table) const;
  /// Foreign keys whose referenced side is `table`.
  std::vector<const ForeignKey*> ForeignKeysTo(TableId table) const;

  /// Fully qualified attribute name "TABLE.COLUMN".
  std::string QualifiedName(const ColumnRef& ref) const;

  /// Resolves "TABLE.COLUMN" to a ColumnRef.
  Result<ColumnRef> ResolveQualified(std::string_view qualified) const;

 private:
  std::vector<Table> tables_;
  std::vector<ForeignKey> foreign_keys_;
  std::unordered_map<std::string, TableId> table_by_name_;
};

/// Aborts the process with a diagnostic if `expr` yields a non-OK Status.
/// Intended for static setup code (schema construction in generators/tests)
/// where an error is a programming bug, not a runtime condition.
void CheckOk(const Status& status, const char* context = "");

}  // namespace jecb
