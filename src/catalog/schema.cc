#include "catalog/schema.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace jecb {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

Result<ColumnIdx> Table::FindColumn(std::string_view col_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col_name)) {
      return static_cast<ColumnIdx>(i);
    }
  }
  return Status::NotFound("column " + std::string(col_name) + " in table " + name);
}

bool Table::HasColumn(std::string_view col_name) const {
  return FindColumn(col_name).ok();
}

bool Table::IsUniqueKey(const std::vector<ColumnIdx>& cols) const {
  auto matches = [&](const std::vector<ColumnIdx>& key) {
    if (key.size() != cols.size()) return false;
    std::vector<ColumnIdx> a = key, b = cols;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b;
  };
  if (matches(primary_key)) return true;
  for (const auto& uk : unique_keys) {
    if (matches(uk)) return true;
  }
  return false;
}

Result<TableId> Schema::AddTable(std::string name) {
  std::string key = ToUpper(name);
  if (table_by_name_.count(key) > 0) {
    return Status::AlreadyExists("table " + name);
  }
  TableId id = static_cast<TableId>(tables_.size());
  Table t;
  t.id = id;
  t.name = std::move(name);
  tables_.push_back(std::move(t));
  table_by_name_[key] = id;
  return id;
}

Status Schema::AddColumn(TableId table, std::string name, ValueType type) {
  if (table >= tables_.size()) return Status::OutOfRange("bad table id");
  Table& t = tables_[table];
  if (t.HasColumn(name)) {
    return Status::AlreadyExists("column " + name + " in " + t.name);
  }
  t.columns.push_back(Column{std::move(name), type});
  return Status::OK();
}

Status Schema::SetPrimaryKey(TableId table, const std::vector<std::string>& cols) {
  if (table >= tables_.size()) return Status::OutOfRange("bad table id");
  Table& t = tables_[table];
  t.primary_key.clear();
  for (const auto& c : cols) {
    JECB_ASSIGN_OR_RETURN(ColumnIdx idx, t.FindColumn(c));
    t.primary_key.push_back(idx);
  }
  return Status::OK();
}

Status Schema::AddUniqueKey(TableId table, const std::vector<std::string>& cols) {
  if (table >= tables_.size()) return Status::OutOfRange("bad table id");
  Table& t = tables_[table];
  std::vector<ColumnIdx> key;
  for (const auto& c : cols) {
    JECB_ASSIGN_OR_RETURN(ColumnIdx idx, t.FindColumn(c));
    key.push_back(idx);
  }
  t.unique_keys.push_back(std::move(key));
  return Status::OK();
}

Status Schema::AddForeignKey(std::string_view table,
                             const std::vector<std::string>& cols,
                             std::string_view ref_table,
                             const std::vector<std::string>& ref_cols) {
  if (cols.size() != ref_cols.size() || cols.empty()) {
    return Status::InvalidArgument("foreign key column count mismatch");
  }
  JECB_ASSIGN_OR_RETURN(TableId tid, FindTable(table));
  JECB_ASSIGN_OR_RETURN(TableId rid, FindTable(ref_table));
  ForeignKey fk;
  fk.table = tid;
  fk.ref_table = rid;
  for (const auto& c : cols) {
    JECB_ASSIGN_OR_RETURN(ColumnIdx idx, tables_[tid].FindColumn(c));
    fk.columns.push_back(idx);
  }
  for (const auto& c : ref_cols) {
    JECB_ASSIGN_OR_RETURN(ColumnIdx idx, tables_[rid].FindColumn(c));
    fk.ref_columns.push_back(idx);
  }
  if (!tables_[rid].IsUniqueKey(fk.ref_columns)) {
    return Status::InvalidArgument(
        "foreign key from " + std::string(table) + " must reference a unique key of " +
        std::string(ref_table));
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

Result<TableId> Schema::FindTable(std::string_view name) const {
  auto it = table_by_name_.find(ToUpper(name));
  if (it == table_by_name_.end()) {
    return Status::NotFound("table " + std::string(name));
  }
  return it->second;
}

bool Schema::HasTable(std::string_view name) const {
  return table_by_name_.count(ToUpper(name)) > 0;
}

std::vector<const ForeignKey*> Schema::ForeignKeysFrom(TableId table) const {
  std::vector<const ForeignKey*> out;
  for (const auto& fk : foreign_keys_) {
    if (fk.table == table) out.push_back(&fk);
  }
  return out;
}

std::vector<const ForeignKey*> Schema::ForeignKeysTo(TableId table) const {
  std::vector<const ForeignKey*> out;
  for (const auto& fk : foreign_keys_) {
    if (fk.ref_table == table) out.push_back(&fk);
  }
  return out;
}

std::string Schema::QualifiedName(const ColumnRef& ref) const {
  const Table& t = tables_[ref.table];
  return t.name + "." + t.columns[ref.column].name;
}

Result<ColumnRef> Schema::ResolveQualified(std::string_view qualified) const {
  size_t dot = qualified.find('.');
  if (dot == std::string_view::npos) {
    return Status::InvalidArgument("expected TABLE.COLUMN, got " +
                                   std::string(qualified));
  }
  JECB_ASSIGN_OR_RETURN(TableId tid, FindTable(qualified.substr(0, dot)));
  JECB_ASSIGN_OR_RETURN(ColumnIdx cid,
                        tables_[tid].FindColumn(qualified.substr(dot + 1)));
  return ColumnRef{tid, cid};
}

void CheckOk(const Status& status, const char* context) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", context, status.ToString().c_str());
    std::abort();
  }
}

}  // namespace jecb
