#include "trace/trace.h"

#include <set>

namespace jecb {

uint32_t Trace::InternClass(const std::string& name) {
  auto it = class_index_.find(name);
  if (it != class_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(class_names_.size());
  class_names_.push_back(name);
  class_index_.emplace(name, id);
  return id;
}

Result<uint32_t> Trace::FindClass(const std::string& name) const {
  auto it = class_index_.find(name);
  if (it != class_index_.end()) return it->second;
  return Status::NotFound("transaction class " + name);
}

Trace Trace::CloneEmpty() const {
  Trace out;
  out.class_names_ = class_names_;
  out.class_index_ = class_index_;
  return out;
}

Trace Trace::FilterClass(uint32_t class_id) const {
  Trace out = CloneEmpty();
  for (const Transaction& t : txns_) {
    if (t.class_id == class_id) out.Add(t);
  }
  return out;
}

std::pair<Trace, Trace> Trace::SplitTrainTest(double test_fraction) const {
  Trace train = CloneEmpty();
  Trace test = CloneEmpty();
  double acc = 0.0;
  for (const Transaction& t : txns_) {
    acc += test_fraction;
    if (acc >= 1.0) {
      acc -= 1.0;
      test.Add(t);
    } else {
      train.Add(t);
    }
  }
  return {std::move(train), std::move(test)};
}

Trace Trace::Head(size_t n) const {
  Trace out = CloneEmpty();
  for (size_t i = 0; i < txns_.size() && i < n; ++i) out.Add(txns_[i]);
  return out;
}

std::vector<TableAccessStats> ComputeTableStats(const Schema& schema,
                                                const Trace& trace) {
  std::vector<TableAccessStats> stats(schema.num_tables());
  for (const Transaction& txn : trace.transactions()) {
    std::set<TableId> written_here;
    for (const Access& a : txn.accesses) {
      if (a.write) {
        ++stats[a.tuple.table].writes;
        written_here.insert(a.tuple.table);
      } else {
        ++stats[a.tuple.table].reads;
      }
    }
    for (TableId t : written_here) ++stats[t].txns_writing;
  }
  return stats;
}

std::vector<AccessClass> ClassifyTables(const Schema& schema, const Trace& trace,
                                        const ClassifyOptions& options) {
  std::vector<TableAccessStats> stats = ComputeTableStats(schema, trace);
  std::vector<AccessClass> out(schema.num_tables(), AccessClass::kPartitioned);
  const double n = static_cast<double>(trace.size());
  for (size_t i = 0; i < stats.size(); ++i) {
    if (stats[i].writes == 0) {
      out[i] = AccessClass::kReadOnly;
    } else if (n > 0 && static_cast<double>(stats[i].txns_writing) / n <=
                            options.read_mostly_max_write_txn_fraction) {
      out[i] = AccessClass::kReadMostly;
    }
  }
  return out;
}

void ApplyClassification(Schema* schema, const std::vector<AccessClass>& classes) {
  for (size_t i = 0; i < classes.size() && i < schema->num_tables(); ++i) {
    schema->mutable_table(static_cast<TableId>(i)).access_class = classes[i];
  }
}

}  // namespace jecb
