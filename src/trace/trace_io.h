// Trace (de)serialization in the paper's collector format: per accessed
// tuple, the table name, the primary key, the transaction it belongs to and
// whether it was read or updated (Sec. 7.1). This is the interchange point
// with a real system: instrument the stored procedures there, dump this
// file, load it here and partition offline.
//
// Format (line oriented, '#' comments):
//   # jecb-trace v1
//   T <class-name>                     -- begins a transaction
//   R <table> <pk-value>...            -- read access, primary key values
//   W <table> <pk-value>...            -- write access
// Values are typed: i:<int>, d:<double>, s:<string> (s values are the
// remainder of the token, spaces encoded as '\40').
#pragma once

#include <string>

#include "common/result.h"
#include "storage/database.h"
#include "trace/trace.h"

namespace jecb {

/// Serializes `trace` against `db`'s schema (tuple ids become table name +
/// primary key values).
Status SaveTrace(const std::string& path, const Database& db, const Trace& trace);

/// String form of SaveTrace, for tests and embedding.
std::string TraceToString(const Database& db, const Trace& trace);

/// Parses a trace and resolves every access against `db` (table by name,
/// tuple by primary key). Fails with NotFound when a tuple is absent and
/// ParseError on malformed input.
Result<Trace> LoadTrace(const std::string& path, const Database& db);

/// String form of LoadTrace.
Result<Trace> TraceFromString(const std::string& text, const Database& db);

}  // namespace jecb
