// Columnar (structure-of-arrays) trace layout for the partitioning hot loop.
//
// The Phase-2 search and the evaluator re-scan the same trace thousands of
// times (once per enumerated tree per metric, once per candidate solution).
// The row-oriented Trace — a vector of Transactions, each owning a heap
// vector of Accesses — costs one pointer chase per transaction, and its
// FilterClass/SplitTrainTest/Head helpers deep-copy every access they keep.
//
// FlatTrace stores the same Definition-1 workload as four contiguous arrays:
//   accesses : one PackedAccess (4 bytes) per access, all transactions
//              back to back — a dense tuple-dictionary index plus the
//              write bit in the top bit;
//   offsets  : per-transaction [begin, end) into `accesses` (size n + 1);
//   classes  : per-transaction class id;
//   tuples   : the dictionary — distinct TupleIds in first-touch order,
//              so `accesses` indexes resolve-once side arrays directly
//              (the evaluator's PartitionOf materialization, the
//              resolver's per-path value caches).
//
// TraceView is the zero-copy replacement for the copying helpers: a view
// selects transactions of one FlatTrace either as a contiguous range or
// through a shared selection vector; FilterClass, SplitTrainTest, and Head
// compose without ever touching the access arrays. Views of the same
// FlatTrace share the tuple dictionary, which is what lets a per-class
// resolver reuse resolutions across the train/holdout split.
//
// The mutable row-oriented Trace stays the builder API (workload generators,
// trace_io); FlatTrace::FromTrace converts once at the pipeline entry.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "trace/trace.h"

namespace jecb {

/// One access in the columnar layout: 31 bits of dense tuple-dictionary
/// index, write flag in the top bit.
struct PackedAccess {
  static constexpr uint32_t kWriteBit = 0x80000000u;

  uint32_t bits = 0;

  uint32_t tuple_index() const { return bits & ~kWriteBit; }
  bool write() const { return (bits & kWriteBit) != 0; }
};

/// Immutable SoA snapshot of a Trace. Build once, scan many times.
class FlatTrace {
 public:
  /// Converts a row-oriented trace: interns every distinct TupleId into the
  /// dictionary (first-touch order, so the layout is deterministic) and
  /// packs the accesses contiguously.
  static FlatTrace FromTrace(const Trace& trace);

  size_t size() const { return txn_class_.size(); }
  bool empty() const { return txn_class_.empty(); }
  size_t num_accesses() const { return accesses_.size(); }

  uint32_t class_of(uint32_t txn) const { return txn_class_[txn]; }
  std::span<const PackedAccess> accesses(uint32_t txn) const {
    return {accesses_.data() + txn_offset_[txn],
            txn_offset_[txn + 1] - txn_offset_[txn]};
  }

  /// The tuple dictionary: every distinct tuple the trace touches, in
  /// first-touch order. PackedAccess::tuple_index() indexes this.
  size_t num_tuples() const { return tuples_.size(); }
  TupleId tuple(uint32_t index) const { return tuples_[index]; }
  const std::vector<TupleId>& tuples() const { return tuples_; }

  const std::vector<std::string>& class_names() const { return class_names_; }
  const std::string& class_name(uint32_t id) const { return class_names_[id]; }
  size_t num_classes() const { return class_names_.size(); }

 private:
  std::vector<PackedAccess> accesses_;
  std::vector<uint32_t> txn_offset_;  // size() + 1 entries
  std::vector<uint32_t> txn_class_;
  std::vector<TupleId> tuples_;
  std::vector<std::string> class_names_;
};

/// A zero-copy subset of a FlatTrace's transactions. Copying a view copies
/// at most a shared_ptr; the access arrays are never duplicated.
///
/// FilterClass / SplitTrainTest / Head mirror the Trace helpers exactly:
/// filtering selects by class id, the split walks the *view's* positions
/// with the same fractional accumulator, Head keeps the view's first n.
class TraceView {
 public:
  TraceView() = default;
  /// View of every transaction of `trace` (which must outlive the view).
  explicit TraceView(const FlatTrace* trace)
      : trace_(trace), count_(trace->size()) {}

  /// View of an explicit transaction selection (global txn indices into
  /// `trace`, shared without copying). The delta evaluator uses this to
  /// scan precomputed per-table affected-transaction lists.
  static TraceView FromSelection(
      const FlatTrace* trace,
      std::shared_ptr<const std::vector<uint32_t>> txns) {
    const size_t n = txns->size();
    return TraceView(trace, std::move(txns), 0, n);
  }

  const FlatTrace& trace() const { return *trace_; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Global transaction index (into the FlatTrace) of the i-th selected
  /// transaction.
  uint32_t txn(size_t i) const {
    return selection_ ? (*selection_)[first_ + i]
                      : static_cast<uint32_t>(first_ + i);
  }
  uint32_t class_of(size_t i) const { return trace_->class_of(txn(i)); }
  std::span<const PackedAccess> accesses(size_t i) const {
    return trace_->accesses(txn(i));
  }

  /// The homogeneous sub-workload of one class (Phase 1 stream splitting),
  /// as a selection over the same arrays.
  TraceView FilterClass(uint32_t class_id) const;

  /// Deterministic alternating train/test split over the view's positions —
  /// the same accumulator walk as Trace::SplitTrainTest.
  std::pair<TraceView, TraceView> SplitTrainTest(double test_fraction) const;

  /// The view's first `n` transactions.
  TraceView Head(size_t n) const;

 private:
  TraceView(const FlatTrace* trace,
            std::shared_ptr<const std::vector<uint32_t>> selection, size_t first,
            size_t count)
      : trace_(trace),
        selection_(std::move(selection)),
        first_(first),
        count_(count) {}

  const FlatTrace* trace_ = nullptr;
  /// Null = the contiguous range [first_, first_ + count_) of the trace;
  /// otherwise txn indices at [first_, first_ + count_) of *selection_.
  std::shared_ptr<const std::vector<uint32_t>> selection_;
  size_t first_ = 0;
  size_t count_ = 0;
};

}  // namespace jecb
