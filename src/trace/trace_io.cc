#include "trace/trace_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace jecb {

namespace {

std::string EncodeValue(const Value& v) {
  if (v.is_int()) return "i:" + std::to_string(v.AsInt());
  if (v.is_double()) return "d:" + FormatDouble(v.AsDouble(), 9);
  std::string out = "s:";
  for (char c : v.AsString()) {
    if (c == ' ') {
      out += "\\40";
    } else {
      out += c;
    }
  }
  return out;
}

Result<Value> DecodeValue(const std::string& token, int line) {
  auto err = [&](const char* why) {
    return Status::ParseError(std::string(why) + " at line " + std::to_string(line) +
                              ": '" + token + "'");
  };
  if (token.size() < 2 || token[1] != ':') return err("bad value token");
  std::string payload = token.substr(2);
  switch (token[0]) {
    case 'i': {
      char* end = nullptr;
      long long v = std::strtoll(payload.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || payload.empty()) {
        return err("bad integer");
      }
      return Value(static_cast<int64_t>(v));
    }
    case 'd': {
      char* end = nullptr;
      double v = std::strtod(payload.c_str(), &end);
      if (end == nullptr || *end != '\0' || payload.empty()) return err("bad double");
      return Value(v);
    }
    case 's': {
      std::string out;
      for (size_t i = 0; i < payload.size(); ++i) {
        if (payload[i] == '\\' && i + 2 < payload.size() && payload[i + 1] == '4' &&
            payload[i + 2] == '0') {
          out += ' ';
          i += 2;
        } else {
          out += payload[i];
        }
      }
      return Value(std::move(out));
    }
    default:
      return err("unknown value type");
  }
}

Row PrimaryKeyOf(const Database& db, TupleId t) {
  const Table& meta = db.schema().table(t.table);
  Row key;
  for (ColumnIdx c : meta.primary_key) key.push_back(db.GetValue(t, c));
  return key;
}

}  // namespace

std::string TraceToString(const Database& db, const Trace& trace) {
  std::string out = "# jecb-trace v1\n";
  for (const Transaction& txn : trace.transactions()) {
    out += "T " + trace.class_name(txn.class_id) + "\n";
    for (const Access& a : txn.accesses) {
      out += a.write ? "W " : "R ";
      out += db.schema().table(a.tuple.table).name;
      for (const Value& v : PrimaryKeyOf(db, a.tuple)) {
        out += " " + EncodeValue(v);
      }
      out += "\n";
    }
  }
  return out;
}

Status SaveTrace(const std::string& path, const Database& db, const Trace& trace) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::InvalidArgument("cannot open " + path);
  out << TraceToString(db, trace);
  out.close();
  if (!out.good()) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Result<Trace> TraceFromString(const std::string& text, const Database& db) {
  Trace trace;
  Transaction current;
  bool in_txn = false;
  int line_no = 0;
  std::istringstream stream(text);
  std::string line;

  auto flush = [&]() {
    if (in_txn) trace.Add(std::move(current));
    current = Transaction{};
  };

  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> tokens;
    for (const std::string& tok : Split(std::string(trimmed), ' ')) {
      if (!tok.empty()) tokens.push_back(tok);
    }
    if (tokens[0] == "T") {
      if (tokens.size() != 2) {
        return Status::ParseError("T needs a class name at line " +
                                  std::to_string(line_no));
      }
      flush();
      in_txn = true;
      current.class_id = trace.InternClass(tokens[1]);
      continue;
    }
    if (tokens[0] == "R" || tokens[0] == "W") {
      if (!in_txn) {
        return Status::ParseError("access before any T line at line " +
                                  std::to_string(line_no));
      }
      if (tokens.size() < 3) {
        return Status::ParseError("access needs table and key at line " +
                                  std::to_string(line_no));
      }
      JECB_ASSIGN_OR_RETURN(TableId table, db.schema().FindTable(tokens[1]));
      Row key;
      for (size_t i = 2; i < tokens.size(); ++i) {
        JECB_ASSIGN_OR_RETURN(Value v, DecodeValue(tokens[i], line_no));
        key.push_back(std::move(v));
      }
      const Table& meta = db.schema().table(table);
      if (key.size() != meta.primary_key.size()) {
        return Status::ParseError("key arity mismatch for " + meta.name +
                                  " at line " + std::to_string(line_no));
      }
      JECB_ASSIGN_OR_RETURN(RowId row, db.table_data(table).LookupPk(key));
      current.accesses.push_back({TupleId{table, row}, tokens[0] == "W"});
      continue;
    }
    return Status::ParseError("unknown record '" + tokens[0] + "' at line " +
                              std::to_string(line_no));
  }
  flush();
  return trace;
}

Result<Trace> LoadTrace(const std::string& path, const Database& db) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return TraceFromString(buffer.str(), db);
}

}  // namespace jecb
