#include "trace/flat_trace.h"

#include <unordered_map>

namespace jecb {

FlatTrace FlatTrace::FromTrace(const Trace& trace) {
  FlatTrace out;
  out.class_names_ = trace.class_names();

  size_t total_accesses = 0;
  for (const Transaction& t : trace.transactions()) {
    total_accesses += t.accesses.size();
  }
  out.accesses_.reserve(total_accesses);
  out.txn_offset_.reserve(trace.size() + 1);
  out.txn_class_.reserve(trace.size());

  std::unordered_map<TupleId, uint32_t, TupleIdHash> intern;
  intern.reserve(total_accesses / 4 + 16);

  out.txn_offset_.push_back(0);
  for (const Transaction& t : trace.transactions()) {
    out.txn_class_.push_back(t.class_id);
    for (const Access& a : t.accesses) {
      auto [it, inserted] =
          intern.emplace(a.tuple, static_cast<uint32_t>(out.tuples_.size()));
      if (inserted) out.tuples_.push_back(a.tuple);
      out.accesses_.push_back(
          {it->second | (a.write ? PackedAccess::kWriteBit : 0u)});
    }
    out.txn_offset_.push_back(static_cast<uint32_t>(out.accesses_.size()));
  }
  return out;
}

TraceView TraceView::FilterClass(uint32_t class_id) const {
  auto selected = std::make_shared<std::vector<uint32_t>>();
  for (size_t i = 0; i < count_; ++i) {
    uint32_t t = txn(i);
    if (trace_->class_of(t) == class_id) selected->push_back(t);
  }
  size_t n = selected->size();
  return TraceView(trace_, std::move(selected), 0, n);
}

std::pair<TraceView, TraceView> TraceView::SplitTrainTest(
    double test_fraction) const {
  auto train = std::make_shared<std::vector<uint32_t>>();
  auto test = std::make_shared<std::vector<uint32_t>>();
  double acc = 0.0;
  for (size_t i = 0; i < count_; ++i) {
    acc += test_fraction;
    if (acc >= 1.0) {
      acc -= 1.0;
      test->push_back(txn(i));
    } else {
      train->push_back(txn(i));
    }
  }
  size_t train_n = train->size();
  size_t test_n = test->size();
  return {TraceView(trace_, std::move(train), 0, train_n),
          TraceView(trace_, std::move(test), 0, test_n)};
}

TraceView TraceView::Head(size_t n) const {
  return TraceView(trace_, selection_, first_, std::min(n, count_));
}

}  // namespace jecb
