// Workload traces: the Definition 1 representation of transactions as the
// sets of tuples they read and write, tagged with their transaction class
// (stored procedure). This is exactly what the paper's trace collector
// records per tuple: table, primary key (here: TupleId), txn id, read/write.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "storage/database.h"

namespace jecb {

/// One tuple access within a transaction.
struct Access {
  TupleId tuple;
  bool write = false;
};

/// One executed transaction: its class plus the tuples it touched.
struct Transaction {
  uint32_t class_id = 0;
  std::vector<Access> accesses;

  void Read(TupleId t) { accesses.push_back({t, false}); }
  void Write(TupleId t) { accesses.push_back({t, true}); }
};

/// A bag of transactions over named classes (Definition 1's workload).
class Trace {
 public:
  /// Registers a class name, returning its id; repeated names reuse the id.
  uint32_t InternClass(const std::string& name);

  void Add(Transaction txn) { txns_.push_back(std::move(txn)); }

  const std::vector<Transaction>& transactions() const { return txns_; }
  std::vector<Transaction>& mutable_transactions() { return txns_; }
  size_t size() const { return txns_.size(); }
  bool empty() const { return txns_.empty(); }

  const std::vector<std::string>& class_names() const { return class_names_; }
  const std::string& class_name(uint32_t id) const { return class_names_[id]; }
  size_t num_classes() const { return class_names_.size(); }
  Result<uint32_t> FindClass(const std::string& name) const;

  /// The homogeneous sub-workload of one class (paper Phase 1's stream
  /// splitting). Class names are carried over so ids stay aligned.
  Trace FilterClass(uint32_t class_id) const;

  /// Deterministic alternating train/test split: every `1/test_fraction`-th
  /// transaction (approximately) goes to test.
  std::pair<Trace, Trace> SplitTrainTest(double test_fraction) const;

  /// Keeps only the first `n` transactions (training-coverage knob for the
  /// Fig. 5/6 experiments).
  Trace Head(size_t n) const;

 private:
  Trace CloneEmpty() const;

  std::vector<std::string> class_names_;
  /// Name -> id index kept in sync with class_names_: interning and lookup
  /// were linear scans, making trace loading O(classes * txns).
  std::unordered_map<std::string, uint32_t> class_index_;
  std::vector<Transaction> txns_;
};

/// Per-table read/write statistics over a trace.
struct TableAccessStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t txns_writing = 0;
};

/// Thresholds for the Phase 1 replication decision.
struct ClassifyOptions {
  /// A written table is still replicated ("read-mostly") when at most this
  /// fraction of all transactions write it. The default keeps TPC-E's
  /// LAST_TRADE (written by the 1% Market-Feed mix) replicated while leaving
  /// TATP's SPECIAL_FACILITY (written by the 2% UpdateSubscriberData mix)
  /// partitioned.
  double read_mostly_max_write_txn_fraction = 0.015;
};

/// Computes per-table stats over `trace`.
std::vector<TableAccessStats> ComputeTableStats(const Schema& schema,
                                                const Trace& trace);

/// Phase 1: classifies each table as read-only / read-mostly (replicated) or
/// partitioned, from the trace (paper Sec. 4).
std::vector<AccessClass> ClassifyTables(const Schema& schema, const Trace& trace,
                                        const ClassifyOptions& options = {});

/// Applies a classification onto the schema's tables.
void ApplyClassification(Schema* schema, const std::vector<AccessClass>& classes);

}  // namespace jecb
