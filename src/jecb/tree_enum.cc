#include "jecb/tree_enum.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>

namespace jecb {

std::vector<std::vector<FkIdx>> EnumerateFkPaths(const Schema& schema,
                                                 const JoinGraph& graph, TableId from,
                                                 TableId to, size_t limit) {
  std::vector<std::vector<FkIdx>> out;
  std::vector<FkIdx> current;
  std::set<TableId> visited{from};
  std::function<void(TableId)> dfs = [&](TableId cur) {
    if (out.size() >= limit) return;
    if (cur == to) {
      out.push_back(current);
      return;
    }
    for (FkIdx f : graph.active_fks) {
      const ForeignKey& fk = schema.foreign_keys()[f];
      if (fk.table != cur || visited.count(fk.ref_table) > 0) continue;
      visited.insert(fk.ref_table);
      current.push_back(f);
      dfs(fk.ref_table);
      current.pop_back();
      visited.erase(fk.ref_table);
    }
  };
  dfs(from);
  // Shortest paths first: downstream caps then keep the most natural ones.
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.size() < b.size(); });
  return out;
}

std::set<TableId> ReachableTables(const Schema& schema, const JoinGraph& graph,
                                  TableId from) {
  std::set<TableId> seen{from};
  std::deque<TableId> queue{from};
  while (!queue.empty()) {
    TableId cur = queue.front();
    queue.pop_front();
    for (FkIdx f : graph.active_fks) {
      const ForeignKey& fk = schema.foreign_keys()[f];
      if (fk.table == cur && seen.insert(fk.ref_table).second) {
        queue.push_back(fk.ref_table);
      }
    }
  }
  return seen;
}

namespace {

/// Minimum hop count from `from` to `to` in the active-FK graph; SIZE_MAX
/// when unreachable.
size_t HopDistance(const Schema& schema, const JoinGraph& graph, TableId from,
                   TableId to) {
  if (from == to) return 0;
  std::map<TableId, size_t> dist{{from, 0}};
  std::deque<TableId> queue{from};
  while (!queue.empty()) {
    TableId cur = queue.front();
    queue.pop_front();
    for (FkIdx f : graph.active_fks) {
      const ForeignKey& fk = schema.foreign_keys()[f];
      if (fk.table != cur || dist.count(fk.ref_table) > 0) continue;
      dist[fk.ref_table] = dist[cur] + 1;
      if (fk.ref_table == to) return dist[fk.ref_table];
      queue.push_back(fk.ref_table);
    }
  }
  return SIZE_MAX;
}

}  // namespace

std::vector<ColumnRef> FindRootAttributes(const Schema& schema, const JoinGraph& graph,
                                          const AttributeLattice& lattice) {
  if (graph.partitioned_tables.empty()) return {};

  // Tables reachable from every partitioned table.
  std::set<TableId> common;
  bool first = true;
  for (TableId t : graph.partitioned_tables) {
    std::set<TableId> r = ReachableTables(schema, graph, t);
    if (first) {
      common = std::move(r);
      first = false;
    } else {
      std::set<TableId> inter;
      std::set_intersection(common.begin(), common.end(), r.begin(), r.end(),
                            std::inserter(inter, inter.begin()));
      common = std::move(inter);
    }
  }

  std::vector<ColumnRef> candidates;
  for (ColumnRef c : graph.candidate_attrs) {
    if (common.count(c.table) > 0) candidates.push_back(c);
  }

  // Deduplicate by equivalence: keep, per group, the candidate minimizing
  // the total hop distance from the partitioned tables (the "natural" name,
  // e.g. CA_C_ID rather than C_ID for Customer-Position).
  auto total_distance = [&](ColumnRef c) {
    size_t sum = 0;
    for (TableId t : graph.partitioned_tables) {
      size_t d = HopDistance(schema, graph, t, c.table);
      if (d == SIZE_MAX) return SIZE_MAX;
      sum += d;
    }
    return sum;
  };

  std::vector<ColumnRef> roots;
  std::vector<bool> used(candidates.size(), false);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (used[i]) continue;
    ColumnRef best = candidates[i];
    size_t best_d = total_distance(best);
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      if (used[j] || !lattice.Equivalent(candidates[i], candidates[j])) continue;
      used[j] = true;
      size_t d = total_distance(candidates[j]);
      if (d < best_d || (d == best_d && candidates[j] < best)) {
        best = candidates[j];
        best_d = d;
      }
    }
    if (best_d != SIZE_MAX) roots.push_back(best);
  }
  return roots;
}

std::vector<JoinTree> EnumerateTrees(const Schema& schema, const JoinGraph& graph,
                                     const AttributeLattice& lattice, ColumnRef root,
                                     const std::set<TableId>& cover,
                                     const TreeEnumOptions& options) {
  // Per-table alternatives: for every attribute equivalent to the root, all
  // FK paths from the table to that attribute's table.
  std::vector<ColumnRef> root_variants;
  for (ColumnRef v : lattice.EquivClass(root)) {
    if (graph.tables.count(v.table) > 0) root_variants.push_back(v);
  }
  std::sort(root_variants.begin(), root_variants.end());

  std::vector<std::vector<JoinPath>> alternatives;
  for (TableId t : cover) {
    std::vector<JoinPath> alts;
    for (ColumnRef v : root_variants) {
      for (auto& hops : EnumerateFkPaths(schema, graph, t, v.table,
                                         options.max_paths_per_pair)) {
        JoinPath p;
        p.source_table = t;
        p.hops = std::move(hops);
        p.dest = v;
        if (p.Validate(schema).ok()) alts.push_back(std::move(p));
      }
    }
    // Shortest alternatives first so caps keep the natural trees.
    std::stable_sort(alts.begin(), alts.end(), [](const JoinPath& a, const JoinPath& b) {
      return a.length() < b.length();
    });
    if (alts.size() > options.max_paths_per_pair) alts.resize(options.max_paths_per_pair);
    if (alts.empty()) return {};  // table cannot reach the root: no tree
    alternatives.push_back(std::move(alts));
  }

  // Cartesian product, capped.
  std::vector<JoinTree> trees;
  std::vector<size_t> choice(alternatives.size(), 0);
  while (trees.size() < options.max_trees_per_root) {
    JoinTree tree;
    tree.root = root;
    size_t i = 0;
    for (TableId t : cover) {
      tree.paths[t] = alternatives[i][choice[i]];
      ++i;
    }
    trees.push_back(std::move(tree));
    // Odometer increment.
    size_t pos = 0;
    while (pos < choice.size()) {
      if (++choice[pos] < alternatives[pos].size()) break;
      choice[pos] = 0;
      ++pos;
    }
    if (pos == choice.size()) break;
  }
  return trees;
}

std::vector<JoinGraph> SplitGraph(const Schema& schema, const JoinGraph& graph) {
  // Undirected connectivity over active FKs.
  auto component_of = [&](TableId start) {
    std::set<TableId> comp{start};
    std::deque<TableId> queue{start};
    while (!queue.empty()) {
      TableId cur = queue.front();
      queue.pop_front();
      for (FkIdx f : graph.active_fks) {
        const ForeignKey& fk = schema.foreign_keys()[f];
        TableId other;
        if (fk.table == cur) {
          other = fk.ref_table;
        } else if (fk.ref_table == cur) {
          other = fk.table;
        } else {
          continue;
        }
        if (graph.tables.count(other) > 0 && comp.insert(other).second) {
          queue.push_back(other);
        }
      }
    }
    return comp;
  };

  auto subgraph_of = [&](const std::set<TableId>& tables) {
    JoinGraph sub;
    sub.tables = tables;
    for (TableId t : tables) {
      if (graph.partitioned_tables.count(t) > 0) sub.partitioned_tables.insert(t);
    }
    for (FkIdx f : graph.active_fks) {
      const ForeignKey& fk = schema.foreign_keys()[f];
      if (tables.count(fk.table) > 0 && tables.count(fk.ref_table) > 0) {
        sub.active_fks.push_back(f);
      }
    }
    for (ColumnRef c : graph.candidate_attrs) {
      if (tables.count(c.table) > 0) sub.candidate_attrs.insert(c);
    }
    return sub;
  };

  // 1) Connected components.
  std::vector<JoinGraph> parts;
  std::set<TableId> remaining = graph.tables;
  while (!remaining.empty()) {
    std::set<TableId> comp = component_of(*remaining.begin());
    for (TableId t : comp) remaining.erase(t);
    parts.push_back(subgraph_of(comp));
  }
  if (parts.size() > 1) return parts;

  // 2) m-to-n split: a partitioned table whose outgoing FKs reach two
  // disjoint regions that both contain partitioned tables.
  for (TableId x : graph.partitioned_tables) {
    std::vector<FkIdx> outgoing;
    for (FkIdx f : graph.active_fks) {
      if (schema.foreign_keys()[f].table == x) outgoing.push_back(f);
    }
    if (outgoing.size() < 2) continue;
    // Group outgoing edges by the component of their target once x's
    // outgoing edges are removed.
    JoinGraph without = graph;
    without.active_fks.clear();
    for (FkIdx f : graph.active_fks) {
      if (schema.foreign_keys()[f].table != x) without.active_fks.push_back(f);
    }
    std::vector<std::set<TableId>> regions;
    for (FkIdx f : outgoing) {
      TableId target = schema.foreign_keys()[f].ref_table;
      bool found = false;
      for (auto& r : regions) {
        if (r.count(target) > 0) {
          found = true;
          break;
        }
      }
      if (found) continue;
      // Component of target in `without`.
      std::set<TableId> comp{target};
      std::deque<TableId> queue{target};
      while (!queue.empty()) {
        TableId cur = queue.front();
        queue.pop_front();
        for (FkIdx g : without.active_fks) {
          const ForeignKey& fk = schema.foreign_keys()[g];
          TableId other;
          if (fk.table == cur) {
            other = fk.ref_table;
          } else if (fk.ref_table == cur) {
            other = fk.table;
          } else {
            continue;
          }
          if (graph.tables.count(other) > 0 && other != x && comp.insert(other).second) {
            queue.push_back(other);
          }
        }
      }
      regions.push_back(std::move(comp));
    }
    if (regions.size() < 2) continue;
    std::vector<JoinGraph> split;
    for (const auto& region : regions) {
      std::set<TableId> tables = region;
      tables.insert(x);
      split.push_back(subgraph_of(tables));
    }
    return split;
  }
  return {graph};
}

}  // namespace jecb
