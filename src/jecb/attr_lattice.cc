#include "jecb/attr_lattice.h"

#include <deque>

namespace jecb {

namespace {
const std::vector<ColumnRef> kNoneighbors;
}  // namespace

AttributeLattice::AttributeLattice(const Schema* schema) : schema_(schema) {
  for (const ForeignKey& fk : schema_->foreign_keys()) {
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      ColumnRef child{fk.table, fk.columns[i]};
      ColumnRef parent{fk.ref_table, fk.ref_columns[i]};
      up_[child].push_back(parent);
      down_[parent].push_back(child);
    }
  }
  for (const Table& t : schema_->tables()) {
    auto add_single = [&](const std::vector<ColumnIdx>& key) {
      if (key.size() == 1) single_col_keys_.insert(ColumnRef{t.id, key[0]});
    };
    add_single(t.primary_key);
    for (const auto& uk : t.unique_keys) add_single(uk);
  }
}

const std::vector<ColumnRef>& AttributeLattice::Up(ColumnRef c) const {
  auto it = up_.find(c);
  return it == up_.end() ? kNoneighbors : it->second;
}

const std::vector<ColumnRef>& AttributeLattice::Down(ColumnRef c) const {
  auto it = down_.find(c);
  return it == down_.end() ? kNoneighbors : it->second;
}

bool AttributeLattice::IsSingleColumnKey(ColumnRef c) const {
  return single_col_keys_.count(c) > 0;
}

bool AttributeLattice::ReachesUp(ColumnRef from, ColumnRef to) const {
  if (from == to) return true;
  std::deque<ColumnRef> queue{from};
  std::unordered_set<ColumnRef, ColumnRefHash> seen{from};
  while (!queue.empty()) {
    ColumnRef cur = queue.front();
    queue.pop_front();
    for (ColumnRef next : Up(cur)) {
      if (next == to) return true;
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

bool AttributeLattice::Equivalent(ColumnRef a, ColumnRef b) const {
  return ReachesUp(a, b) || ReachesUp(b, a);
}

std::vector<ColumnRef> AttributeLattice::EquivClass(ColumnRef a) const {
  std::unordered_set<ColumnRef, ColumnRefHash> seen{a};
  // Up-closure (ancestors) and down-closure (descendants); siblings through
  // a shared parent are intentionally excluded.
  for (const auto* dir : {&up_, &down_}) {
    std::deque<ColumnRef> queue{a};
    while (!queue.empty()) {
      ColumnRef cur = queue.front();
      queue.pop_front();
      auto it = dir->find(cur);
      if (it == dir->end()) continue;
      for (ColumnRef next : it->second) {
        if (seen.insert(next).second) queue.push_back(next);
      }
    }
  }
  return std::vector<ColumnRef>(seen.begin(), seen.end());
}

bool AttributeLattice::IsCoarser(ColumnRef coarse, ColumnRef fine) const {
  if (coarse == fine) return false;
  // BFS over (attribute, lost_granularity) states. Moves: FK child->parent
  // pairs preserve granularity; stepping from a single-column key to another
  // column of its table loses granularity.
  struct State {
    ColumnRef attr;
    bool lost;
    bool operator==(const State&) const = default;
  };
  struct StateHash {
    size_t operator()(const State& s) const {
      return ColumnRefHash{}(s.attr) * 2 + (s.lost ? 1 : 0);
    }
  };
  std::deque<State> queue{{fine, false}};
  std::unordered_set<State, StateHash> seen{{fine, false}};
  while (!queue.empty()) {
    State cur = queue.front();
    queue.pop_front();
    if (cur.lost && cur.attr == coarse) return true;
    auto push = [&](State s) {
      if (seen.insert(s).second) queue.push_back(s);
    };
    for (ColumnRef next : Up(cur.attr)) push({next, cur.lost});
    if (IsSingleColumnKey(cur.attr)) {
      const Table& t = schema_->table(cur.attr.table);
      for (ColumnIdx c = 0; c < t.columns.size(); ++c) {
        if (c != cur.attr.column) push({ColumnRef{cur.attr.table, c}, true});
      }
    }
  }
  return false;
}

bool AttributeLattice::Compatible(ColumnRef a, ColumnRef b) const {
  return Equivalent(a, b) || IsCoarser(a, b) || IsCoarser(b, a);
}

Result<JoinPath> AttributeLattice::ExtendPath(const JoinPath& base,
                                              ColumnRef target) const {
  // BFS over attributes using only functional-dependency-preserving moves
  // (Definition 2, condition 3), so the extension is a genuine join path
  // from the current destination attribute:
  //   (a) hop a single-column foreign key that is exactly the current
  //       attribute (child -> parent, appends the hop);
  //   (b) when the current attribute alone is a unique key of its table,
  //       move to any other column of that table (no hop).
  // Moving to an arbitrary sibling column would change which functional
  // dependency the path encodes (e.g. turning an item-route path over
  // ITEM_BID into a buyer-route one), so it is not allowed.
  std::vector<ColumnRef> goals = EquivClass(target);
  auto is_goal = [&](ColumnRef c) {
    for (ColumnRef g : goals) {
      if (g == c) return true;
    }
    return false;
  };

  struct Visit {
    ColumnRef attr;
    int32_t prev;        // index into visits
    int32_t hop_fk;      // appended FK for this move, or -1 for intra moves
  };
  std::vector<Visit> visits{{base.dest, -1, -1}};
  std::unordered_set<ColumnRef, ColumnRefHash> seen{base.dest};

  auto finish = [&](size_t found) -> Result<JoinPath> {
    std::vector<FkIdx> extra;
    for (int32_t v = static_cast<int32_t>(found); v > 0; v = visits[v].prev) {
      if (visits[v].hop_fk >= 0) extra.push_back(static_cast<FkIdx>(visits[v].hop_fk));
    }
    JoinPath out = base;
    out.hops.insert(out.hops.end(), extra.rbegin(), extra.rend());
    out.dest = visits[found].attr;
    JECB_RETURN_NOT_OK(out.Validate(*schema_));
    return out;
  };

  if (is_goal(base.dest)) return finish(0);

  for (size_t i = 0; i < visits.size(); ++i) {
    ColumnRef cur = visits[i].attr;
    auto push = [&](ColumnRef next, int32_t hop_fk) -> int32_t {
      if (!seen.insert(next).second) return -1;
      visits.push_back({next, static_cast<int32_t>(i), hop_fk});
      return static_cast<int32_t>(visits.size()) - 1;
    };
    // (a) single-column FK hops on exactly this attribute.
    const auto& fks = schema_->foreign_keys();
    for (FkIdx f = 0; f < fks.size(); ++f) {
      const ForeignKey& fk = fks[f];
      if (fk.table != cur.table || fk.columns.size() != 1 ||
          fk.columns[0] != cur.column) {
        continue;
      }
      int32_t v = push(ColumnRef{fk.ref_table, fk.ref_columns[0]},
                       static_cast<int32_t>(f));
      if (v >= 0 && is_goal(visits[v].attr)) return finish(v);
    }
    // (b) intra-table move from a single-column unique key.
    if (IsSingleColumnKey(cur)) {
      const Table& t = schema_->table(cur.table);
      for (ColumnIdx c = 0; c < t.columns.size(); ++c) {
        if (c == cur.column) continue;
        int32_t v = push(ColumnRef{cur.table, c}, -1);
        if (v >= 0 && is_goal(visits[v].attr)) return finish(v);
      }
    }
  }
  return Status::NotFound("no join-path extension from " +
                          schema_->QualifiedName(base.dest) + " to " +
                          schema_->QualifiedName(target));
}

}  // namespace jecb
