#include "jecb/jecb.h"

#include <algorithm>

#include "common/ascii_table.h"
#include "common/string_util.h"
#include "sql/analyzer.h"

namespace jecb {

Jecb::Jecb(JecbOptions options) : options_(std::move(options)) {
  options_.class_partitioner.num_partitions = options_.num_partitions;
  options_.combiner.num_partitions = options_.num_partitions;
}

Result<JecbResult> Jecb::Partition(Database* db,
                                   const std::vector<sql::Procedure>& procedures,
                                   const Trace& training_trace) const {
  auto start = std::chrono::steady_clock::now();

  // ---- Phase 1: pre-processing -------------------------------------------
  std::vector<AccessClass> table_classes =
      ClassifyTables(db->schema(), training_trace, options_.classify);
  ApplyClassification(&db->mutable_schema(), table_classes);

  AttributeLattice lattice(&db->schema());

  // Analyze every procedure that has transactions in the trace.
  sql::AnalyzerOptions analyzer_options;
  analyzer_options.use_select_clause_attrs = options_.join_graph.use_select_clause_attrs;

  // ---- Phase 2: per-class partitioning -----------------------------------
  ClassPartitioner class_partitioner(db, &lattice, options_.class_partitioner);
  std::vector<ClassPartitioningResult> classes;
  for (uint32_t cls = 0; cls < training_trace.num_classes(); ++cls) {
    const std::string& name = training_trace.class_name(cls);
    const sql::Procedure* proc = nullptr;
    for (const auto& p : procedures) {
      if (EqualsIgnoreCase(p.name, name)) {
        proc = &p;
        break;
      }
    }
    if (proc == nullptr) {
      return Status::NotFound("no stored procedure for transaction class " + name);
    }
    JECB_ASSIGN_OR_RETURN(sql::ProcedureInfo info,
                          sql::AnalyzeProcedure(db->schema(), *proc, analyzer_options));
    JoinGraph graph = BuildJoinGraph(db->schema(), info, options_.join_graph);
    Trace class_trace = training_trace.FilterClass(cls);
    double mix = training_trace.size() == 0
                     ? 0.0
                     : static_cast<double>(class_trace.size()) /
                           static_cast<double>(training_trace.size());
    classes.push_back(
        class_partitioner.Partition(graph, class_trace, name, cls, mix));
  }

  // ---- Phase 3: combining -------------------------------------------------
  Combiner combiner(db, &lattice, options_.combiner);
  CombinerReport report;
  JECB_ASSIGN_OR_RETURN(DatabaseSolution solution,
                        combiner.Combine(classes, training_trace, &report));

  JecbResult result{std::move(solution), std::move(table_classes), std::move(classes),
                    std::move(report), 0.0};
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

namespace {

std::string SolutionRoots(const Schema& schema, const std::vector<ClassSolution>& sols) {
  if (sols.empty()) return "No";
  std::vector<std::string> roots;
  for (const ClassSolution& s : sols) {
    std::string name = schema.table(s.tree.root.table)
                           .columns[s.tree.root.column]
                           .name;
    if (s.tier != SolutionTier::kMappingIndependent) {
      name += " (" + std::string(SolutionTierToString(s.tier)) + ")";
    }
    if (std::find(roots.begin(), roots.end(), name) == roots.end()) {
      roots.push_back(name);
    }
  }
  return Join(roots, " or ");
}

}  // namespace

std::string FormatClassSolutions(const Schema& schema,
                                 const std::vector<ClassPartitioningResult>& classes) {
  AsciiTable table({"Transaction class", "Mix", "Total solutions", "Partial solutions"});
  for (const auto& cls : classes) {
    std::string mix = FormatDouble(cls.mix_fraction * 100.0, 1) + "%";
    if (cls.read_only) {
      table.AddRow({cls.class_name, mix, "Read-only", "Read-only"});
    } else {
      table.AddRow({cls.class_name, mix, SolutionRoots(schema, cls.total_solutions),
                    SolutionRoots(schema, cls.partial_solutions)});
    }
  }
  return table.ToString();
}

std::string FormatTableSolutions(const Schema& schema,
                                 const DatabaseSolution& solution) {
  AsciiTable table({"Table", "Solution"});
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    const Table& meta = schema.table(static_cast<TableId>(t));
    const TablePartitioner* p = solution.Get(static_cast<TableId>(t));
    std::string desc;
    if (meta.access_class == AccessClass::kReadOnly) {
      desc = "replicated (read-only)";
    } else if (meta.access_class == AccessClass::kReadMostly) {
      desc = "replicated (read-mostly)";
    } else if (p == nullptr) {
      desc = "replicated";
    } else {
      desc = p->Describe(schema);
    }
    table.AddRow({meta.name, desc});
  }
  return table.ToString();
}

}  // namespace jecb
