#include "jecb/jecb.h"

#include <algorithm>
#include <memory>

#include "common/ascii_table.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "sql/analyzer.h"

namespace jecb {

Jecb::Jecb(JecbOptions options) : options_(std::move(options)) {
  options_.class_partitioner.num_partitions = options_.num_partitions;
  options_.class_partitioner.incremental = options_.delta;
  options_.combiner.num_partitions = options_.num_partitions;
  options_.combiner.delta = options_.delta;
  options_.combiner.scan_kernel =
      options_.simd ? ScanKernel::kAuto : ScanKernel::kScalar;
  options_.combiner.delta_self_check = options_.delta_self_check;
}

Result<JecbResult> Jecb::Partition(Database* db,
                                   const std::vector<sql::Procedure>& procedures,
                                   const Trace& training_trace) const {
  auto start = std::chrono::steady_clock::now();
  TraceRecorder& rec = TraceRecorder::Default();
  JECB_SPAN2("jecb", "partition", "txns", static_cast<int64_t>(training_trace.size()),
             "partitions", options_.num_partitions);

  // ---- Phase 1: pre-processing -------------------------------------------
  const uint64_t p1_ts = rec.enabled() ? rec.NowUs() : 0;
  std::vector<AccessClass> table_classes =
      ClassifyTables(db->schema(), training_trace, options_.classify);
  ApplyClassification(&db->mutable_schema(), table_classes);

  AttributeLattice lattice(&db->schema());
  if (rec.enabled()) {
    rec.Span("jecb", "phase1.preprocess", p1_ts, rec.NowUs() - p1_ts, "tables",
             static_cast<int64_t>(db->schema().num_tables()));
  }

  // Analyze every procedure that has transactions in the trace.
  sql::AnalyzerOptions analyzer_options;
  analyzer_options.use_select_clause_attrs = options_.join_graph.use_select_clause_attrs;

  // ---- Phase 2: per-class partitioning -----------------------------------
  // Resolve every class's stored procedure up front so a missing procedure
  // fails identically at any thread count, before any parallel work starts.
  const size_t num_classes = training_trace.num_classes();
  std::vector<const sql::Procedure*> class_procs(num_classes, nullptr);
  for (uint32_t cls = 0; cls < num_classes; ++cls) {
    const std::string& name = training_trace.class_name(cls);
    for (const auto& p : procedures) {
      if (EqualsIgnoreCase(p.name, name)) {
        class_procs[cls] = &p;
        break;
      }
    }
    if (class_procs[cls] == nullptr) {
      return Status::NotFound("no stored procedure for transaction class " + name);
    }
  }

  // Each class's analyze -> join graph -> partition is independent: it reads
  // only the (now classification-stamped) schema, the lattice, and its slice
  // of the trace. Results land in per-class slots, so the output never
  // depends on completion order.
  std::unique_ptr<ThreadPool> pool;
  if (ThreadPool::ResolveThreads(options_.num_threads) > 1) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }

  // Columnar mode flattens the trace once up front; Phase 2 then hands each
  // class a zero-copy view plus its own join-path resolution cache, and
  // Phase 3 reuses the same FlatTrace for resolve-once scoring.
  std::unique_ptr<FlatTrace> flat;
  if (options_.columnar) {
    const uint64_t flat_ts = rec.enabled() ? rec.NowUs() : 0;
    flat = std::make_unique<FlatTrace>(FlatTrace::FromTrace(training_trace));
    if (rec.enabled()) {
      rec.Span("jecb", "trace.flatten", flat_ts, rec.NowUs() - flat_ts, "tuples",
               static_cast<int64_t>(flat->num_tuples()));
    }
  }

  ClassPartitioner class_partitioner(db, &lattice, options_.class_partitioner);
  std::vector<ClassPartitioningResult> classes(num_classes);
  std::vector<Status> class_status(num_classes, Status::OK());
  const uint64_t p2_ts = rec.enabled() ? rec.NowUs() : 0;
  ParallelFor(
      pool.get(), num_classes,
      [&](size_t cls) {
        const std::string& name =
            training_trace.class_name(static_cast<uint32_t>(cls));
        // Span named after the transaction class (interned: the name must
        // outlive the recorder); candidate counts attach before it closes.
        ScopedSpan span("jecb", rec.enabled() ? rec.Intern(name) : "class", rec);
        Result<sql::ProcedureInfo> info = sql::AnalyzeProcedure(
            db->schema(), *class_procs[cls], analyzer_options);
        if (!info.ok()) {
          class_status[cls] = info.status();
          return;
        }
        JoinGraph graph =
            BuildJoinGraph(db->schema(), info.value(), options_.join_graph);
        if (flat != nullptr) {
          TraceView class_view =
              TraceView(flat.get()).FilterClass(static_cast<uint32_t>(cls));
          double mix = training_trace.size() == 0
                           ? 0.0
                           : static_cast<double>(class_view.size()) /
                                 static_cast<double>(training_trace.size());
          // One resolver per class: caches stay core-local under the pool
          // and are shared across every tree/metric of this class. The
          // per-FK hop memo rides the same delta/incremental toggle as the
          // rest of the incremental machinery so `delta = false` reproduces
          // the pre-incremental resolution path exactly.
          JoinPathResolver resolver(db, options_.delta);
          classes[cls] =
              class_partitioner.Partition(graph, class_view, &resolver, name,
                                          static_cast<uint32_t>(cls), mix);
        } else {
          Trace class_trace =
              training_trace.FilterClass(static_cast<uint32_t>(cls));
          double mix = training_trace.size() == 0
                           ? 0.0
                           : static_cast<double>(class_trace.size()) /
                                 static_cast<double>(training_trace.size());
          classes[cls] = class_partitioner.Partition(
              graph, class_trace, name, static_cast<uint32_t>(cls), mix);
        }
        span.Arg("total_solutions",
                 static_cast<int64_t>(classes[cls].total_solutions.size()));
        span.Arg("partial_solutions",
                 static_cast<int64_t>(classes[cls].partial_solutions.size()));
      },
      "class.partition");
  if (rec.enabled()) {
    rec.Span("jecb", "phase2.classes", p2_ts, rec.NowUs() - p2_ts, "classes",
             static_cast<int64_t>(num_classes));
  }
  // Report the lowest-class-id failure, matching the serial loop's behavior.
  for (const Status& s : class_status) {
    if (!s.ok()) return s;
  }

  // ---- Phase 3: combining -------------------------------------------------
  const uint64_t p3_ts = rec.enabled() ? rec.NowUs() : 0;
  Combiner combiner(db, &lattice, options_.combiner);
  CombinerReport report;
  JECB_ASSIGN_OR_RETURN(DatabaseSolution solution,
                        combiner.Combine(classes, training_trace, &report, pool.get(),
                                         flat.get()));
  if (rec.enabled()) {
    rec.Span("jecb", "phase3.combine", p3_ts, rec.NowUs() - p3_ts, "combinations",
             static_cast<int64_t>(report.evaluated_combinations), "candidates",
             static_cast<int64_t>(report.candidate_attrs.size()));
  }

  JecbResult result{std::move(solution), std::move(table_classes), std::move(classes),
                    std::move(report), 0.0};
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.SetGauge("jecb_partition_seconds", result.elapsed_seconds);
  registry.SetGauge("jecb_partition_classes", static_cast<double>(num_classes));
  registry.SetGauge("jecb_partition_best_train_cost",
                    result.combiner_report.best_train_cost);
  registry.AddCounter("jecb_combiner_evaluated_combinations_total",
                      result.combiner_report.evaluated_combinations);
  return result;
}

namespace {

std::string SolutionRoots(const Schema& schema, const std::vector<ClassSolution>& sols) {
  if (sols.empty()) return "No";
  std::vector<std::string> roots;
  for (const ClassSolution& s : sols) {
    std::string name = schema.table(s.tree.root.table)
                           .columns[s.tree.root.column]
                           .name;
    if (s.tier != SolutionTier::kMappingIndependent) {
      name += " (" + std::string(SolutionTierToString(s.tier)) + ")";
    }
    if (std::find(roots.begin(), roots.end(), name) == roots.end()) {
      roots.push_back(name);
    }
  }
  return Join(roots, " or ");
}

}  // namespace

std::string FormatClassSolutions(const Schema& schema,
                                 const std::vector<ClassPartitioningResult>& classes) {
  AsciiTable table({"Transaction class", "Mix", "Total solutions", "Partial solutions"});
  for (const auto& cls : classes) {
    std::string mix = FormatDouble(cls.mix_fraction * 100.0, 1) + "%";
    if (cls.read_only) {
      table.AddRow({cls.class_name, mix, "Read-only", "Read-only"});
    } else {
      table.AddRow({cls.class_name, mix, SolutionRoots(schema, cls.total_solutions),
                    SolutionRoots(schema, cls.partial_solutions)});
    }
  }
  return table.ToString();
}

std::string FormatTableSolutions(const Schema& schema,
                                 const DatabaseSolution& solution) {
  AsciiTable table({"Table", "Solution"});
  for (size_t t = 0; t < schema.num_tables(); ++t) {
    const Table& meta = schema.table(static_cast<TableId>(t));
    const TablePartitioner* p = solution.Get(static_cast<TableId>(t));
    std::string desc;
    if (meta.access_class == AccessClass::kReadOnly) {
      desc = "replicated (read-only)";
    } else if (meta.access_class == AccessClass::kReadMostly) {
      desc = "replicated (read-mostly)";
    } else if (p == nullptr) {
      desc = "replicated";
    } else {
      desc = p->Describe(schema);
    }
    table.AddRow({meta.name, desc});
  }
  return table.ToString();
}

}  // namespace jecb
