// Phase 3 (paper Sec. 6): combine per-class solutions into one global
// database solution. Uses the two search-space heuristics: merging
// compatible per-table solutions (Definitions 13/14) and searching only
// around compatible partitioning attributes, then evaluates the surviving
// combinations on the global training trace and keeps the cheapest.
#pragma once

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "jecb/attr_lattice.h"
#include "jecb/types.h"
#include "partition/cost_model.h"
#include "partition/evaluator.h"
#include "partition/solution.h"
#include "trace/trace.h"

namespace jecb {

struct CombinerOptions {
  int32_t num_partitions = 8;
  /// Cap on enumerated combinations per candidate attribute.
  size_t max_combinations = 4096;
  /// Ranks the enumerated combinations; null means the paper's Definition 6
  /// cost (fraction of distributed transactions). The conclusion's richer
  /// models (SitesTouchedCost, WeightedRuntimeCost) plug in here.
  std::shared_ptr<const CostModel> cost_model;
  /// Score combinations incrementally (delta_evaluator.h): rebase once per
  /// candidate attribute on the first enumerated combination, then score
  /// every other combination by rescanning only the transactions touching
  /// tables whose partitioner differs. Requires the columnar trace (`flat`);
  /// EvalResults are bit-identical to full evaluation, so the chosen
  /// solution, cost, and report never change.
  bool delta = true;
  /// Partition-scan kernel for combination scoring (every kernel is
  /// bit-identical to kScalar; see partition_scan.h).
  ScanKernel scan_kernel = ScanKernel::kAuto;
  /// Re-proves the delta == full identity on every scored combination
  /// (aborts on divergence). For tests; defeats the speedup.
  bool delta_self_check = false;
};

/// Search-space accounting for Example 10-style reporting.
struct CombinerReport {
  /// Product of per-table solution-set sizes before the heuristics.
  double naive_search_space = 0.0;
  uint64_t evaluated_combinations = 0;
  std::vector<std::string> candidate_attrs;  // qualified names after Step 1
  std::string chosen_attr;
  double best_train_cost = 0.0;
  /// Tables that ended up replicated despite being partitionable.
  std::vector<std::string> replicated_tables;
};

class Combiner {
 public:
  Combiner(const Database* db, const AttributeLattice* lattice, CombinerOptions options)
      : db_(db), lattice_(lattice), options_(options) {}

  /// Runs Phase 3. `train` is the global training trace (all classes).
  /// With a pool, the enumerated combinations of each candidate attribute
  /// are scored concurrently (one serial Evaluate per combination) and
  /// reduced in enumeration order, so the chosen solution, cost, and
  /// report counters are bit-identical to the serial path.
  ///
  /// When `flat` is non-null it must be the columnar image of `train`;
  /// combination scoring then uses the resolve-once columnar evaluator
  /// (identical EvalResults, so the chosen solution does not change).
  Result<DatabaseSolution> Combine(const std::vector<ClassPartitioningResult>& classes,
                                   const Trace& train, CombinerReport* report,
                                   ThreadPool* pool = nullptr,
                                   const FlatTrace* flat = nullptr) const;

 private:
  const Schema& schema() const { return db_->schema(); }

  const Database* db_;
  const AttributeLattice* lattice_;
  CombinerOptions options_;
};

}  // namespace jecb
