// Per-class join graph (paper Sec. 5.1): tables accessed by a transaction
// class, candidate partitioning attributes, and the key-foreign key joins
// the class's SQL activates — explicitly (ON/WHERE column=column), through
// parameter/variable dataflow (implicit joins), or, optionally, because both
// endpoint attributes appear among accessed attributes (SELECT-clause
// discovery; false positives are pruned later by the trace).
#pragma once

#include <set>
#include <vector>

#include "catalog/schema.h"
#include "partition/join_path.h"
#include "sql/analyzer.h"

namespace jecb {

struct JoinGraphOptions {
  /// Discover joins via attributes appearing in SELECT clauses too
  /// (paper Sec. 5.1, implicit joins). Off = explicit equijoins only.
  bool use_select_clause_attrs = true;
};

/// The join graph of one transaction class.
struct JoinGraph {
  /// Every table the class touches.
  std::set<TableId> tables;
  /// The non-replicated tables among them: these must be covered by a join
  /// tree for a total solution.
  std::set<TableId> partitioned_tables;
  /// Foreign keys (by schema index) activated by the class's SQL.
  std::vector<FkIdx> active_fks;
  /// Candidate partitioning attributes: WHERE attributes plus activated FK
  /// endpoints (single columns only).
  std::set<ColumnRef> candidate_attrs;

  bool HasActiveFk(FkIdx f) const {
    for (FkIdx g : active_fks) {
      if (g == f) return true;
    }
    return false;
  }
};

/// Builds the join graph for one analyzed procedure.
JoinGraph BuildJoinGraph(const Schema& schema, const sql::ProcedureInfo& info,
                         const JoinGraphOptions& options = {});

}  // namespace jecb
