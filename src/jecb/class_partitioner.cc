#include "jecb/class_partitioner.h"

#include <algorithm>
#include <climits>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "graph/graph.h"
#include "graph/partitioner.h"
#include "obs/metrics_registry.h"

namespace jecb {

namespace {

/// Legacy row-oriented tree evaluator: memoizes join-path evaluations per
/// covered table while scanning a Trace. One instance lives per metric pass
/// (nothing is shared across trees) — this is exactly the pre-columnar scan
/// the `columnar` toggle benchmarks against.
class TreeEvaluator {
 public:
  TreeEvaluator(const Database& db, const JoinTree& tree) : db_(db), tree_(tree) {}

  /// Collects the distinct root values of a transaction's covered accesses.
  /// Returns false when any path evaluation fails.
  bool Collect(const Transaction& txn, size_t max_values, std::vector<Value>* out) {
    out->clear();
    for (const Access& a : txn.accesses) {
      auto it = tree_.paths.find(a.tuple.table);
      if (it == tree_.paths.end()) continue;
      const Value* v = Lookup(it->second, a.tuple);
      if (v == nullptr) return false;
      if (std::find(out->begin(), out->end(), *v) == out->end()) {
        out->push_back(*v);
        if (out->size() > max_values) return true;  // caller treats as violation
      }
    }
    return true;
  }

  bool Touches(const Transaction& txn) const {
    for (const Access& a : txn.accesses) {
      if (tree_.paths.count(a.tuple.table) > 0) return true;
    }
    return false;
  }

 private:
  const Value* Lookup(const JoinPath& path, TupleId tuple) {
    auto& cache = cache_[tuple.table];
    auto it = cache.find(tuple.row);
    if (it != cache.end()) return it->second.has_value() ? &*it->second : nullptr;
    Result<Value> v = path.Evaluate(db_, tuple);
    auto& slot = cache[tuple.row];
    if (v.ok()) slot = std::move(v).value();
    return slot.has_value() ? &*slot : nullptr;
  }

  const Database& db_;
  const JoinTree& tree_;
  std::unordered_map<TableId, std::unordered_map<RowId, std::optional<Value>>> cache_;
};

/// Columnar tree evaluator: scans SoA accesses of a FlatTrace and resolves
/// root values through the class's shared JoinPathResolver. Construction
/// binds each covered table to its shared path cache once, so the per-access
/// hot path is an array index plus a flat-table probe.
class FlatTreeEvaluator {
 public:
  FlatTreeEvaluator(const Database& db, const FlatTrace& flat, const JoinTree& tree,
                    JoinPathResolver* resolver)
      : flat_(flat), per_table_(db.schema().num_tables(), nullptr) {
    for (const auto& [table, path] : tree.paths) {
      per_table_[table] = resolver->Cache(path);
    }
  }

  bool Touches(uint32_t txn) const {
    for (const PackedAccess a : flat_.accesses(txn)) {
      if (per_table_[flat_.tuple(a.tuple_index()).table] != nullptr) return true;
    }
    return false;
  }

  /// Same contract (and the same access order) as TreeEvaluator::Collect.
  bool Collect(uint32_t txn, size_t max_values, std::vector<Value>* out) {
    out->clear();
    for (const PackedAccess a : flat_.accesses(txn)) {
      const TupleId tuple = flat_.tuple(a.tuple_index());
      JoinPathResolver::PathCache* cache = per_table_[tuple.table];
      if (cache == nullptr) continue;
      const Value* v = cache->Resolve(tuple.row);
      if (v == nullptr) return false;
      if (std::find(out->begin(), out->end(), *v) == out->end()) {
        out->push_back(*v);
        if (out->size() > max_values) return true;  // caller treats as violation
      }
    }
    return true;
  }

 private:
  const FlatTrace& flat_;
  std::vector<JoinPathResolver::PathCache*> per_table_;
};

}  // namespace

/// The trace-scanning operations Phase 2 needs, factored out so SolveGraph /
/// StatsFallback run unchanged over either data layout. Costing several
/// mappings shares one root-value resolution pass (the mappings only differ
/// after resolution), which is what keeps StatsFallback from rebuilding the
/// cache once per mapping.
class ClassScan {
 public:
  virtual ~ClassScan() = default;

  virtual bool TrainEmpty() const = 0;

  /// Definition-7 fit of `tree` over the training part.
  virtual TreeFit MeasureFit(const JoinTree& tree) const = 0;

  /// Calls `fn` once per training transaction whose covered accesses all
  /// resolve to a non-empty set of at most `max_values` distinct root
  /// values (the statistics-fallback gathering pass).
  virtual void ForEachTrainValueSet(
      const JoinTree& tree, size_t max_values,
      const std::function<void(const std::vector<Value>&)>& fn) const = 0;

  /// Distributed fraction of each mapping over the validation part (holdout
  /// when non-empty, train otherwise), resolving each transaction's root
  /// values once and reusing them for every mapping.
  virtual std::vector<double> CostMappings(
      const JoinTree& tree, size_t max_values,
      const std::vector<const MappingFunction*>& mappings) const = 0;
};

namespace {

/// Shared mapping-costing arithmetic: the per-transaction loop body after
/// the root values have been collected. Mirrors the legacy TreeCost exactly.
void CostCollected(const std::vector<Value>& values,
                   const std::vector<const MappingFunction*>& mappings,
                   std::vector<uint64_t>* distributed) {
  for (size_t m = 0; m < mappings.size(); ++m) {
    int32_t part = kUnknownPartition;
    bool multi = false;
    for (const Value& v : values) {
      int32_t p = mappings[m]->Map(v);
      if (part == kUnknownPartition) {
        part = p;
      } else if (p != part) {
        multi = true;
        break;
      }
    }
    if (multi) ++(*distributed)[m];
  }
}

std::vector<double> FinishCosts(uint64_t total,
                                const std::vector<uint64_t>& distributed) {
  std::vector<double> costs(distributed.size(), 0.0);
  for (size_t m = 0; m < distributed.size(); ++m) {
    costs[m] = total == 0 ? 0.0
                          : static_cast<double>(distributed[m]) /
                                static_cast<double>(total);
  }
  return costs;
}

class LegacyScan : public ClassScan {
 public:
  LegacyScan(const Database& db, const Trace& train, const Trace& holdout)
      : db_(db), train_(train), holdout_(holdout) {}

  bool TrainEmpty() const override { return train_.empty(); }

  TreeFit MeasureFit(const JoinTree& tree) const override {
    return MeasureTreeFit(db_, tree, train_);
  }

  void ForEachTrainValueSet(
      const JoinTree& tree, size_t max_values,
      const std::function<void(const std::vector<Value>&)>& fn) const override {
    TreeEvaluator eval(db_, tree);
    std::vector<Value> values;
    for (const Transaction& txn : train_.transactions()) {
      if (!eval.Collect(txn, max_values, &values)) continue;
      if (values.empty() || values.size() > max_values) continue;
      fn(values);
    }
  }

  std::vector<double> CostMappings(
      const JoinTree& tree, size_t max_values,
      const std::vector<const MappingFunction*>& mappings) const override {
    const Trace& validation = holdout_.empty() ? train_ : holdout_;
    TreeEvaluator eval(db_, tree);
    std::vector<Value> values;
    uint64_t total = 0;
    std::vector<uint64_t> distributed(mappings.size(), 0);
    for (const Transaction& txn : validation.transactions()) {
      if (!eval.Touches(txn)) continue;
      ++total;
      if (!eval.Collect(txn, max_values, &values) || values.size() > max_values) {
        for (uint64_t& d : distributed) ++d;
        continue;
      }
      CostCollected(values, mappings, &distributed);
    }
    return FinishCosts(total, distributed);
  }

 private:
  const Database& db_;
  const Trace& train_;
  const Trace& holdout_;
};

/// Compacted, class-local copy of one training view's accesses, built once
/// per class and scanned once per enumerated tree. Three layout choices make
/// the Definition-7 fit scan sequential and cache-resident:
///   - accesses are copied back-to-back in view order (the global FlatTrace
///     scatters a class's transactions across the whole trace);
///   - each access carries its table id inline (no tuple-dictionary chase);
///   - tuple indices are renumbered to a dense class-local id space, so the
///     per-path value-id arrays cover only tuples this class touches and
///     stay small enough to live in cache across thousands of scans.
class ClassSlice {
 public:
  explicit ClassSlice(const TraceView& view) {
    const FlatTrace& flat = view.trace();
    std::vector<uint32_t> local_of(flat.num_tuples(), UINT32_MAX);
    offsets_.reserve(view.size() + 1);
    offsets_.push_back(0);
    for (size_t i = 0; i < view.size(); ++i) {
      for (const PackedAccess a : flat.accesses(view.txn(i))) {
        const uint32_t ti = a.tuple_index();
        uint32_t lt = local_of[ti];
        if (lt == UINT32_MAX) {
          lt = static_cast<uint32_t>(global_tuple_.size());
          local_of[ti] = lt;
          global_tuple_.push_back(ti);
          tuple_table_.push_back(flat.tuple(ti).table);
        }
        acc_tuple_.push_back(lt);
        acc_table_.push_back(tuple_table_[lt]);
      }
      offsets_.push_back(static_cast<uint32_t>(acc_tuple_.size()));
    }
  }

  /// Class-local tuple ids of one table, ascending (first-touch order).
  std::vector<uint32_t> TuplesOfTable(TableId table) const {
    std::vector<uint32_t> out;
    for (uint32_t lt = 0; lt < num_tuples(); ++lt) {
      if (tuple_table_[lt] == table) out.push_back(lt);
    }
    return out;
  }

  size_t num_txns() const { return offsets_.size() - 1; }
  uint32_t num_tuples() const {
    return static_cast<uint32_t>(global_tuple_.size());
  }
  uint32_t begin(size_t t) const { return offsets_[t]; }
  uint32_t end(size_t t) const { return offsets_[t + 1]; }
  TableId table(uint32_t j) const { return acc_table_[j]; }
  uint32_t tuple(uint32_t j) const { return acc_tuple_[j]; }
  uint32_t global_tuple(uint32_t lt) const { return global_tuple_[lt]; }
  TableId tuple_table(uint32_t lt) const { return tuple_table_[lt]; }

 private:
  std::vector<uint32_t> offsets_;       // per txn [begin, end) into accesses
  std::vector<uint32_t> acc_tuple_;     // per access: class-local tuple id
  std::vector<TableId> acc_table_;      // per access: table id
  std::vector<uint32_t> global_tuple_;  // local tuple id -> FlatTrace index
  std::vector<TableId> tuple_table_;    // local tuple id -> table
};

/// Dense integer view of join-path resolutions for one class: per distinct
/// path, one value id per class-local tuple, drawn from one shared
/// dictionary so id equality is Value equality across *different* paths of
/// the same tree. An array fills eagerly through the shared JoinPathResolver
/// the first time a tree uses its path (resolution stays once-per-(path,
/// row) for the class — every slice tuple of the source table is scanned by
/// any tree covering that table, so nothing is resolved speculatively).
class ValueIdScan {
 public:
  // Ids: kFailed marks a resolution failure (dangling FK); real value ids
  // start at kFirstId so 0 stays free as the scan's "no value yet" state.
  static constexpr uint32_t kFailed = 1;
  static constexpr uint32_t kFirstId = 2;

  ValueIdScan(const Database& db, const FlatTrace& flat, const ClassSlice* slice,
              JoinPathResolver* resolver)
      : db_(db), flat_(flat), slice_(slice), resolver_(resolver) {}

  /// The id array of `path` (one slot per class-local tuple; slots of other
  /// tables stay 0 and are never read). The fill walks each source tuple's
  /// hop chain through the resolver's per-FK edge memo, then maps the final
  /// (destination column, row) to a value id through a per-column memo — the
  /// Value itself is hashed into the shared dictionary only once per
  /// distinct destination row, not once per source tuple.
  const std::vector<uint32_t>* Ids(const JoinPath& path) {
    JoinPathResolver::PathCache* cache = resolver_->Cache(path);
    auto [it, fresh] = arrays_.try_emplace(cache);
    if (fresh) {
      std::vector<uint32_t>& ids = it->second;
      ids.assign(slice_->num_tuples(), 0);
      // Value ids of one destination column, memoized by final row.
      // (FkRowCache is just a flat u32 -> u32 memo; here the mapped value
      // is a dictionary id rather than a row.)
      const uint64_t col_key = (static_cast<uint64_t>(path.dest.table) << 32) |
                               path.dest.column;
      FkRowCache& col_ids = column_ids_[col_key];
      for (uint32_t lt : slice_->TuplesOfTable(path.source_table)) {
        RowId cur = flat_.tuple(slice_->global_tuple(lt)).row;
        for (FkIdx idx : path.hops) {
          cur = resolver_->FollowCached(idx, cur);
          if (cur == FkRowCache::kDangling) break;
        }
        if (cur == FkRowCache::kDangling) {
          ids[lt] = kFailed;
          continue;
        }
        uint32_t id = 0;
        if (!col_ids.Find(cur, &id)) {
          const Value& v = db_.GetValue({path.dest.table, cur}, path.dest.column);
          const uint32_t next = kFirstId + static_cast<uint32_t>(dict_.size());
          id = dict_.try_emplace(v, next).first->second;
          col_ids.Insert(cur, id);
        }
        ids[lt] = id;
      }
    }
    return &it->second;
  }

  /// Canonical per-class identity of `path` (the resolver dedups by path
  /// equality), usable as an exact memo key component.
  const void* PathKey(const JoinPath& path) { return resolver_->Cache(path); }

 private:
  const Database& db_;
  const FlatTrace& flat_;
  const ClassSlice* slice_;
  JoinPathResolver* resolver_;
  std::unordered_map<Value, uint32_t, ValueHashFunctor> dict_;
  std::unordered_map<uint64_t, FkRowCache> column_ids_;  // (table, col) -> row -> id
  std::unordered_map<JoinPathResolver::PathCache*, std::vector<uint32_t>> arrays_;
};

class FlatScan : public ClassScan {
 public:
  FlatScan(const Database& db, TraceView train, TraceView holdout,
           JoinPathResolver* resolver, bool incremental)
      : db_(db), train_(train), holdout_(holdout), resolver_(resolver),
        incremental_(incremental) {}

  bool TrainEmpty() const override { return train_.empty(); }

  // Phase 2 measures the fit of every enumerated tree with a full scan of
  // the class's training view — by far the hottest loop of the pipeline
  // (thousands of scans per workload). Two exact accelerations, both behind
  // the `incremental` toggle (off = the pre-incremental scan, kept as the
  // bit-identity oracle):
  //  1. A memo keyed by the tree's canonical path set: the fit depends only
  //     on tree.paths (the root merely names the destination attribute the
  //     paths already encode), so equal path sets must score equally.
  //  2. On a miss, a sequential integer scan of the compacted ClassSlice
  //     against per-path value-id arrays, instead of a hash probe + Value
  //     comparison per access.
  // Both reproduce MeasureTreeFit's counts exactly: id equality is Value
  // equality, and the early exits only skip accesses that cannot change the
  // per-transaction verdict.
  TreeFit MeasureFit(const JoinTree& tree) const override {
    MetricsRegistry::Default().AddCounter("jecb_phase2_fit_scans_total", 1);
    if (!incremental_) {
      return MeasureTreeFit(db_, tree, train_, resolver_);
    }
    std::vector<std::pair<TableId, const void*>> key;
    key.reserve(tree.paths.size());
    for (const auto& [t, path] : tree.paths) {
      key.emplace_back(t, id_scan().PathKey(path));  // paths is a std::map: sorted
    }
    auto memo = fit_memo_.find(key);
    if (memo != fit_memo_.end()) {
      MetricsRegistry::Default().AddCounter("jecb_phase2_fit_memo_hits_total", 1);
      return memo->second;
    }
    MetricsRegistry::Default().AddCounter("jecb_phase2_fit_txns_total",
                                          train_.size());

    const ClassSlice& slice = *slice_;
    const size_t num_tables = db_.schema().num_tables();
    std::vector<const uint32_t*> ids_of(num_tables, nullptr);
    for (const auto& [t, path] : tree.paths) {
      ids_of[t] = id_scan().Ids(path)->data();
    }

    TreeFit fit;
    for (size_t t = 0; t < slice.num_txns(); ++t) {
      uint32_t first = 0;
      bool touched = false;
      bool violation = false;
      const uint32_t end = slice.end(t);
      for (uint32_t j = slice.begin(t); j < end; ++j) {
        const uint32_t* ids = ids_of[slice.table(j)];
        if (ids == nullptr) continue;
        touched = true;
        const uint32_t id = ids[slice.tuple(j)];
        if (id == ValueIdScan::kFailed) {
          violation = true;
          break;
        }
        if (first == 0) {
          first = id;
        } else if (id != first) {
          violation = true;
          break;
        }
      }
      if (!touched) continue;
      ++fit.txns;
      if (violation) ++fit.violations;
    }
    fit_memo_.emplace(std::move(key), fit);
    return fit;
  }

  void ForEachTrainValueSet(
      const JoinTree& tree, size_t max_values,
      const std::function<void(const std::vector<Value>&)>& fn) const override {
    FlatTreeEvaluator eval(db_, train_.trace(), tree, resolver_);
    std::vector<Value> values;
    for (size_t i = 0; i < train_.size(); ++i) {
      if (!eval.Collect(train_.txn(i), max_values, &values)) continue;
      if (values.empty() || values.size() > max_values) continue;
      fn(values);
    }
  }

  std::vector<double> CostMappings(
      const JoinTree& tree, size_t max_values,
      const std::vector<const MappingFunction*>& mappings) const override {
    const TraceView& validation = holdout_.empty() ? train_ : holdout_;
    FlatTreeEvaluator eval(db_, validation.trace(), tree, resolver_);
    std::vector<Value> values;
    uint64_t total = 0;
    std::vector<uint64_t> distributed(mappings.size(), 0);
    for (size_t i = 0; i < validation.size(); ++i) {
      const uint32_t txn = validation.txn(i);
      if (!eval.Touches(txn)) continue;
      ++total;
      if (!eval.Collect(txn, max_values, &values) || values.size() > max_values) {
        for (uint64_t& d : distributed) ++d;
        continue;
      }
      CostCollected(values, mappings, &distributed);
    }
    return FinishCosts(total, distributed);
  }

 private:
  const Database& db_;
  TraceView train_;
  TraceView holdout_;
  JoinPathResolver* resolver_;
  const bool incremental_;

  // Slice + id arrays build lazily on the first fit scan. Single-threaded
  // per class (one Phase-2 task owns one FlatScan), so the mutable caches
  // need no locking.
  ValueIdScan& id_scan() const {
    if (slice_ == nullptr) {
      slice_ = std::make_unique<ClassSlice>(train_);
      id_scan_.emplace(db_, train_.trace(), slice_.get(), resolver_);
    }
    return *id_scan_;
  }
  mutable std::unique_ptr<ClassSlice> slice_;
  mutable std::optional<ValueIdScan> id_scan_;
  mutable std::map<std::vector<std::pair<TableId, const void*>>, TreeFit> fit_memo_;
};

}  // namespace

std::string_view SolutionTierToString(SolutionTier tier) {
  switch (tier) {
    case SolutionTier::kMappingIndependent:
      return "mapping-independent";
    case SolutionTier::kQuasiIndependent:
      return "quasi-independent";
    case SolutionTier::kStatistics:
      return "statistics";
  }
  return "?";
}

TreeFit MeasureTreeFit(const Database& db, const JoinTree& tree, const Trace& trace) {
  TreeFit fit;
  TreeEvaluator eval(db, tree);
  std::vector<Value> values;
  for (const Transaction& txn : trace.transactions()) {
    if (!eval.Touches(txn)) continue;
    ++fit.txns;
    if (!eval.Collect(txn, 1, &values) || values.size() > 1) ++fit.violations;
  }
  return fit;
}

TreeFit MeasureTreeFit(const Database& db, const JoinTree& tree,
                       const TraceView& view, JoinPathResolver* resolver) {
  TreeFit fit;
  FlatTreeEvaluator eval(db, view.trace(), tree, resolver);
  std::vector<Value> values;
  for (size_t i = 0; i < view.size(); ++i) {
    const uint32_t txn = view.txn(i);
    if (!eval.Touches(txn)) continue;
    ++fit.txns;
    if (!eval.Collect(txn, 1, &values) || values.size() > 1) ++fit.violations;
  }
  return fit;
}

bool IsCoarserTree(const AttributeLattice& lattice, const JoinTree& a,
                   const JoinTree& b) {
  if (a.Tables() != b.Tables()) return false;
  bool any_longer = false;
  for (const auto& [t, pb] : b.paths) {
    const JoinPath& pa = a.paths.at(t);
    if (!pb.HopsArePrefixOf(pa)) return false;
    if (pa.length() > pb.length()) any_longer = true;
  }
  if (lattice.IsCoarser(a.root, b.root)) return true;
  return any_longer && lattice.Equivalent(a.root, b.root);
}

Result<ClassSolution> ClassPartitioner::StatsFallback(const JoinTree& tree,
                                                      const ClassScan& scan) const {
  // Gather per-transaction root value sets (one shared resolution pass).
  std::vector<std::vector<Value>> txn_values;
  std::unordered_map<Value, NodeId, ValueHashFunctor> node_of;
  std::vector<Value> node_values;
  int64_t min_int = INT64_MAX;
  int64_t max_int = INT64_MIN;
  scan.ForEachTrainValueSet(
      tree, options_.max_values_per_txn, [&](const std::vector<Value>& values) {
        for (const Value& v : values) {
          if (node_of.emplace(v, static_cast<NodeId>(node_values.size())).second) {
            node_values.push_back(v);
          }
          if (v.is_int()) {
            min_int = std::min(min_int, v.AsInt());
            max_int = std::max(max_int, v.AsInt());
          }
        }
        txn_values.push_back(values);
      });
  if (node_values.empty()) {
    return Status::NotFound("no root values observed for statistics fallback");
  }

  // Co-access graph over root values; min-cut partitioning (Sec. 5.3).
  GraphBuilder builder(node_values.size(), 0);
  for (const auto& vs : txn_values) {
    for (const Value& v : vs) builder.AddNodeWeight(node_of[v], 1);
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) {
        builder.AddEdge(node_of[vs[i]], node_of[vs[j]], 1);
      }
    }
  }
  Graph g = builder.Build();
  GraphPartitionOptions gopt;
  gopt.num_parts = options_.num_partitions;
  gopt.seed = options_.seed;
  std::vector<int32_t> assignment = PartitionGraph(g, gopt);
  std::unordered_map<Value, int32_t, ValueHashFunctor> lookup;
  for (NodeId n = 0; n < node_values.size(); ++n) {
    lookup.emplace(node_values[n], assignment[n]);
  }
  auto lookup_mapping =
      std::make_shared<LookupMapping>(options_.num_partitions, std::move(lookup));
  HashMapping hash_mapping(options_.num_partitions);
  RangeMapping range_mapping(options_.num_partitions,
                             min_int == INT64_MAX ? 0 : min_int,
                             max_int == INT64_MIN ? 1 : max_int);

  // One validation pass costs all three mapping candidates: the root-value
  // resolution is mapping-independent, so lookup/hash/range share it
  // instead of each rebuilding the cache from scratch.
  const std::vector<double> costs =
      scan.CostMappings(tree, options_.max_values_per_txn,
                        {lookup_mapping.get(), &hash_mapping, &range_mapping});
  const double lookup_cost = costs[0];
  const double hash_cost = costs[1];
  const double range_cost = costs[2];

  ClassSolution sol;
  sol.tree = tree;
  sol.tier = SolutionTier::kStatistics;
  // The min-cut mapping is meaningful only when it beats hash AND range.
  if (lookup_cost < hash_cost && lookup_cost < range_cost) {
    sol.mapping = lookup_mapping;
    sol.class_cost = lookup_cost;
    sol.violation_fraction = lookup_cost;
    return sol;
  }
  // Documented extension: a range mapping that keeps the class almost
  // entirely local (date-window locality) is accepted at the quasi tier.
  if (options_.enable_range_quasi && range_cost <= options_.quasi_tolerance &&
      range_cost < hash_cost) {
    sol.mapping = std::make_shared<RangeMapping>(range_mapping);
    sol.class_cost = range_cost;
    sol.violation_fraction = range_cost;
    return sol;
  }
  return Status::NotFound("no meaningful mapping function");
}

std::vector<ClassSolution> ClassPartitioner::SolveGraph(const JoinGraph& graph,
                                                        const ClassScan& scan,
                                                        bool as_total, int depth) const {
  std::vector<ClassSolution> out;
  if (graph.partitioned_tables.empty()) return out;

  std::vector<ColumnRef> roots = FindRootAttributes(schema(), graph, *lattice_);

  if (roots.empty()) {
    // Case 2 (Sec. 5.2): split and recurse for partial solutions.
    if (depth >= 3) return out;
    std::vector<JoinGraph> parts = SplitGraph(schema(), graph);
    if (parts.size() <= 1) return out;
    for (const JoinGraph& part : parts) {
      auto partial = SolveGraph(part, scan, /*as_total=*/false, depth + 1);
      for (auto& s : partial) out.push_back(std::move(s));
    }
    return out;
  }

  // Tier 1: exact mapping-independent trees across all roots.
  struct Scored {
    JoinTree tree;
    double violation = 0.0;
  };
  std::vector<Scored> mi_trees;
  std::vector<Scored> all_trees;
  for (ColumnRef root : roots) {
    auto trees = EnumerateTrees(schema(), graph, *lattice_, root,
                                graph.partitioned_tables, options_.tree_enum);
    for (auto& tree : trees) {
      TreeFit fit = scan.MeasureFit(tree);
      double viol = fit.violation_fraction();
      if (fit.txns == 0) continue;
      if (fit.violations == 0) {
        mi_trees.push_back({tree, 0.0});
      }
      all_trees.push_back({std::move(tree), viol});
    }
  }

  // Eliminate coarser compatible MI trees (keep the finer; Sec. 5.3).
  std::vector<bool> dead(mi_trees.size(), false);
  for (size_t i = 0; i < mi_trees.size(); ++i) {
    for (size_t j = 0; j < mi_trees.size(); ++j) {
      if (i == j || dead[i] || dead[j]) continue;
      if (IsCoarserTree(*lattice_, mi_trees[i].tree, mi_trees[j].tree)) {
        dead[i] = true;
      }
    }
  }
  for (size_t i = 0; i < mi_trees.size(); ++i) {
    if (dead[i]) continue;
    ClassSolution sol;
    sol.tree = mi_trees[i].tree;
    sol.total = as_total;
    sol.tier = SolutionTier::kMappingIndependent;
    sol.class_cost = 0.0;
    out.push_back(std::move(sol));
  }
  if (!out.empty()) return out;

  // Tier 2: best quasi-independent tree.
  std::sort(all_trees.begin(), all_trees.end(),
            [](const Scored& a, const Scored& b) { return a.violation < b.violation; });
  if (options_.quasi_tolerance > 0.0 && !all_trees.empty() &&
      all_trees.front().violation <= options_.quasi_tolerance) {
    ClassSolution sol;
    sol.tree = all_trees.front().tree;
    sol.total = as_total;
    sol.tier = SolutionTier::kQuasiIndependent;
    sol.violation_fraction = all_trees.front().violation;
    sol.class_cost = sol.violation_fraction;  // upper bound; mapping-agnostic
    out.push_back(std::move(sol));
    return out;
  }

  // Tier 3: statistics fallback on the least-violating tree per root.
  if (options_.enable_stats_fallback) {
    std::set<std::string> tried_roots;
    for (const Scored& scored : all_trees) {
      std::string key = schema().QualifiedName(scored.tree.root);
      if (!tried_roots.insert(key).second) continue;
      Result<ClassSolution> sol = StatsFallback(scored.tree, scan);
      if (sol.ok()) {
        ClassSolution s = std::move(sol).value();
        s.total = as_total;
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

ClassPartitioningResult ClassPartitioner::PartitionWithScan(
    const JoinGraph& graph, const ClassScan& scan, const std::string& name,
    uint32_t class_id, double mix_fraction) const {
  ClassPartitioningResult result;
  result.class_name = name;
  result.class_id = class_id;
  result.mix_fraction = mix_fraction;
  result.read_only = graph.partitioned_tables.empty();

  if (scan.TrainEmpty()) return result;

  result.total_solutions = SolveGraph(graph, scan, /*as_total=*/true, /*depth=*/0);

  // Some of the "total" solutions may actually be partial (Case-2 splits
  // mark as_total=false and land here with total == false).
  {
    std::vector<ClassSolution> totals, partials;
    for (auto& s : result.total_solutions) {
      (s.total ? totals : partials).push_back(std::move(s));
    }
    result.total_solutions = std::move(totals);
    result.partial_solutions = std::move(partials);
  }

  // Partial solutions from sub-join trees (Sec. 5.3): candidate attributes
  // reachable from a proper subset of the partitioned tables.
  if (options_.enable_partial_solutions && !result.total_solutions.empty()) {
    std::map<TableId, std::set<TableId>> reach;
    for (TableId t : graph.partitioned_tables) {
      reach[t] = ReachableTables(schema(), graph, t);
    }
    std::vector<ClassSolution> partials;
    for (ColumnRef c : graph.candidate_attrs) {
      // Skip attributes equivalent to a total-solution root.
      bool is_root = false;
      for (const auto& total : result.total_solutions) {
        if (lattice_->Equivalent(c, total.tree.root)) {
          is_root = true;
          break;
        }
      }
      if (is_root) continue;
      std::set<TableId> cover;
      for (TableId t : graph.partitioned_tables) {
        if (reach[t].count(c.table) > 0) cover.insert(t);
      }
      if (cover.empty() || cover == graph.partitioned_tables) continue;
      auto trees = EnumerateTrees(schema(), graph, *lattice_, c, cover,
                                  options_.tree_enum);
      for (auto& tree : trees) {
          TreeFit fit = scan.MeasureFit(tree);
        if (fit.txns == 0 || fit.violations != 0) continue;
        ClassSolution sol;
        sol.tree = std::move(tree);
        sol.total = false;
        sol.tier = SolutionTier::kMappingIndependent;
        partials.push_back(std::move(sol));
      }
    }
    // Keep the finer of compatible partials.
    std::vector<bool> dead(partials.size(), false);
    for (size_t i = 0; i < partials.size(); ++i) {
      for (size_t j = 0; j < partials.size(); ++j) {
        if (i == j || dead[i] || dead[j]) continue;
        if (IsCoarserTree(*lattice_, partials[i].tree, partials[j].tree)) {
          dead[i] = true;
        }
      }
    }
    for (size_t i = 0; i < partials.size(); ++i) {
      if (!dead[i]) result.partial_solutions.push_back(std::move(partials[i]));
    }
  }
  return result;
}

ClassPartitioningResult ClassPartitioner::Partition(const JoinGraph& graph,
                                                    const Trace& class_trace,
                                                    const std::string& name,
                                                    uint32_t class_id,
                                                    double mix_fraction) const {
  auto [train, holdout] = class_trace.SplitTrainTest(options_.holdout_fraction);
  LegacyScan scan(*db_, train, holdout);
  return PartitionWithScan(graph, scan, name, class_id, mix_fraction);
}

ClassPartitioningResult ClassPartitioner::Partition(const JoinGraph& graph,
                                                    const TraceView& class_view,
                                                    JoinPathResolver* resolver,
                                                    const std::string& name,
                                                    uint32_t class_id,
                                                    double mix_fraction) const {
  auto [train, holdout] = class_view.SplitTrainTest(options_.holdout_fraction);
  FlatScan scan(*db_, train, holdout, resolver, options_.incremental);
  return PartitionWithScan(graph, scan, name, class_id, mix_fraction);
}

}  // namespace jecb
