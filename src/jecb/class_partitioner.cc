#include "jecb/class_partitioner.h"

#include <algorithm>
#include <climits>
#include <optional>
#include <unordered_map>

#include "graph/graph.h"
#include "graph/partitioner.h"

namespace jecb {

namespace {

/// Memoizes join-path evaluations per covered table while scanning a trace.
class TreeEvaluator {
 public:
  TreeEvaluator(const Database& db, const JoinTree& tree) : db_(db), tree_(tree) {}

  /// Collects the distinct root values of a transaction's covered accesses.
  /// Returns false when any path evaluation fails.
  bool Collect(const Transaction& txn, size_t max_values, std::vector<Value>* out) {
    out->clear();
    for (const Access& a : txn.accesses) {
      auto it = tree_.paths.find(a.tuple.table);
      if (it == tree_.paths.end()) continue;
      const Value* v = Lookup(it->second, a.tuple);
      if (v == nullptr) return false;
      if (std::find(out->begin(), out->end(), *v) == out->end()) {
        out->push_back(*v);
        if (out->size() > max_values) return true;  // caller treats as violation
      }
    }
    return true;
  }

 private:
  const Value* Lookup(const JoinPath& path, TupleId tuple) {
    auto& cache = cache_[tuple.table];
    auto it = cache.find(tuple.row);
    if (it != cache.end()) return it->second.has_value() ? &*it->second : nullptr;
    Result<Value> v = path.Evaluate(db_, tuple);
    auto& slot = cache[tuple.row];
    if (v.ok()) slot = std::move(v).value();
    return slot.has_value() ? &*slot : nullptr;
  }

  const Database& db_;
  const JoinTree& tree_;
  std::unordered_map<TableId, std::unordered_map<RowId, std::optional<Value>>> cache_;
};

}  // namespace

std::string_view SolutionTierToString(SolutionTier tier) {
  switch (tier) {
    case SolutionTier::kMappingIndependent:
      return "mapping-independent";
    case SolutionTier::kQuasiIndependent:
      return "quasi-independent";
    case SolutionTier::kStatistics:
      return "statistics";
  }
  return "?";
}

TreeFit MeasureTreeFit(const Database& db, const JoinTree& tree, const Trace& trace) {
  TreeFit fit;
  TreeEvaluator eval(db, tree);
  std::vector<Value> values;
  for (const Transaction& txn : trace.transactions()) {
    bool touches = false;
    for (const Access& a : txn.accesses) {
      if (tree.paths.count(a.tuple.table) > 0) {
        touches = true;
        break;
      }
    }
    if (!touches) continue;
    ++fit.txns;
    if (!eval.Collect(txn, 1, &values) || values.size() > 1) ++fit.violations;
  }
  return fit;
}

bool IsCoarserTree(const AttributeLattice& lattice, const JoinTree& a,
                   const JoinTree& b) {
  if (a.Tables() != b.Tables()) return false;
  bool any_longer = false;
  for (const auto& [t, pb] : b.paths) {
    const JoinPath& pa = a.paths.at(t);
    if (!pb.HopsArePrefixOf(pa)) return false;
    if (pa.length() > pb.length()) any_longer = true;
  }
  if (lattice.IsCoarser(a.root, b.root)) return true;
  return any_longer && lattice.Equivalent(a.root, b.root);
}

double ClassPartitioner::TreeCost(const JoinTree& tree, const MappingFunction& mapping,
                                  const Trace& trace) const {
  TreeEvaluator eval(*db_, tree);
  std::vector<Value> values;
  uint64_t total = 0;
  uint64_t distributed = 0;
  for (const Transaction& txn : trace.transactions()) {
    bool touches = false;
    for (const Access& a : txn.accesses) {
      if (tree.paths.count(a.tuple.table) > 0) {
        touches = true;
        break;
      }
    }
    if (!touches) continue;
    ++total;
    if (!eval.Collect(txn, options_.max_values_per_txn, &values) ||
        values.size() > options_.max_values_per_txn) {
      ++distributed;
      continue;
    }
    int32_t part = kUnknownPartition;
    bool multi = false;
    for (const Value& v : values) {
      int32_t p = mapping.Map(v);
      if (part == kUnknownPartition) {
        part = p;
      } else if (p != part) {
        multi = true;
        break;
      }
    }
    if (multi) ++distributed;
  }
  return total == 0 ? 0.0 : static_cast<double>(distributed) / static_cast<double>(total);
}

Result<ClassSolution> ClassPartitioner::StatsFallback(const JoinTree& tree,
                                                      const Trace& train,
                                                      const Trace& holdout) const {
  // Gather per-transaction root value sets.
  TreeEvaluator eval(*db_, tree);
  std::vector<std::vector<Value>> txn_values;
  std::unordered_map<Value, NodeId, ValueHashFunctor> node_of;
  std::vector<Value> node_values;
  int64_t min_int = INT64_MAX;
  int64_t max_int = INT64_MIN;
  std::vector<Value> values;
  for (const Transaction& txn : train.transactions()) {
    if (!eval.Collect(txn, options_.max_values_per_txn, &values)) continue;
    if (values.empty() || values.size() > options_.max_values_per_txn) continue;
    for (const Value& v : values) {
      if (node_of.emplace(v, static_cast<NodeId>(node_values.size())).second) {
        node_values.push_back(v);
      }
      if (v.is_int()) {
        min_int = std::min(min_int, v.AsInt());
        max_int = std::max(max_int, v.AsInt());
      }
    }
    txn_values.push_back(values);
  }
  if (node_values.empty()) {
    return Status::NotFound("no root values observed for statistics fallback");
  }

  // Co-access graph over root values; min-cut partitioning (Sec. 5.3).
  GraphBuilder builder(node_values.size(), 0);
  for (const auto& vs : txn_values) {
    for (const Value& v : vs) builder.AddNodeWeight(node_of[v], 1);
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) {
        builder.AddEdge(node_of[vs[i]], node_of[vs[j]], 1);
      }
    }
  }
  Graph g = builder.Build();
  GraphPartitionOptions gopt;
  gopt.num_parts = options_.num_partitions;
  gopt.seed = options_.seed;
  std::vector<int32_t> assignment = PartitionGraph(g, gopt);
  std::unordered_map<Value, int32_t, ValueHashFunctor> lookup;
  for (NodeId n = 0; n < node_values.size(); ++n) {
    lookup.emplace(node_values[n], assignment[n]);
  }
  auto lookup_mapping =
      std::make_shared<LookupMapping>(options_.num_partitions, std::move(lookup));
  HashMapping hash_mapping(options_.num_partitions);
  RangeMapping range_mapping(options_.num_partitions,
                             min_int == INT64_MAX ? 0 : min_int,
                             max_int == INT64_MIN ? 1 : max_int);

  const Trace& validation = holdout.empty() ? train : holdout;
  double lookup_cost = TreeCost(tree, *lookup_mapping, validation);
  double hash_cost = TreeCost(tree, hash_mapping, validation);
  double range_cost = TreeCost(tree, range_mapping, validation);

  ClassSolution sol;
  sol.tree = tree;
  sol.tier = SolutionTier::kStatistics;
  // The min-cut mapping is meaningful only when it beats hash AND range.
  if (lookup_cost < hash_cost && lookup_cost < range_cost) {
    sol.mapping = lookup_mapping;
    sol.class_cost = lookup_cost;
    sol.violation_fraction = lookup_cost;
    return sol;
  }
  // Documented extension: a range mapping that keeps the class almost
  // entirely local (date-window locality) is accepted at the quasi tier.
  if (options_.enable_range_quasi && range_cost <= options_.quasi_tolerance &&
      range_cost < hash_cost) {
    sol.mapping = std::make_shared<RangeMapping>(range_mapping);
    sol.class_cost = range_cost;
    sol.violation_fraction = range_cost;
    return sol;
  }
  return Status::NotFound("no meaningful mapping function");
}

std::vector<ClassSolution> ClassPartitioner::SolveGraph(const JoinGraph& graph,
                                                        const Trace& train,
                                                        const Trace& holdout,
                                                        bool as_total, int depth) const {
  std::vector<ClassSolution> out;
  if (graph.partitioned_tables.empty()) return out;

  std::vector<ColumnRef> roots = FindRootAttributes(schema(), graph, *lattice_);

  if (roots.empty()) {
    // Case 2 (Sec. 5.2): split and recurse for partial solutions.
    if (depth >= 3) return out;
    std::vector<JoinGraph> parts = SplitGraph(schema(), graph);
    if (parts.size() <= 1) return out;
    for (const JoinGraph& part : parts) {
      auto partial = SolveGraph(part, train, holdout, /*as_total=*/false, depth + 1);
      for (auto& s : partial) out.push_back(std::move(s));
    }
    return out;
  }

  // Tier 1: exact mapping-independent trees across all roots.
  struct Scored {
    JoinTree tree;
    double violation = 0.0;
  };
  std::vector<Scored> mi_trees;
  std::vector<Scored> all_trees;
  for (ColumnRef root : roots) {
    auto trees = EnumerateTrees(schema(), graph, *lattice_, root,
                                graph.partitioned_tables, options_.tree_enum);
    for (auto& tree : trees) {
      TreeFit fit = MeasureTreeFit(*db_, tree, train);
      double viol = fit.violation_fraction();
      if (fit.txns == 0) continue;
      if (fit.violations == 0) {
        mi_trees.push_back({tree, 0.0});
      }
      all_trees.push_back({std::move(tree), viol});
    }
  }

  // Eliminate coarser compatible MI trees (keep the finer; Sec. 5.3).
  std::vector<bool> dead(mi_trees.size(), false);
  for (size_t i = 0; i < mi_trees.size(); ++i) {
    for (size_t j = 0; j < mi_trees.size(); ++j) {
      if (i == j || dead[i] || dead[j]) continue;
      if (IsCoarserTree(*lattice_, mi_trees[i].tree, mi_trees[j].tree)) {
        dead[i] = true;
      }
    }
  }
  for (size_t i = 0; i < mi_trees.size(); ++i) {
    if (dead[i]) continue;
    ClassSolution sol;
    sol.tree = mi_trees[i].tree;
    sol.total = as_total;
    sol.tier = SolutionTier::kMappingIndependent;
    sol.class_cost = 0.0;
    out.push_back(std::move(sol));
  }
  if (!out.empty()) return out;

  // Tier 2: best quasi-independent tree.
  std::sort(all_trees.begin(), all_trees.end(),
            [](const Scored& a, const Scored& b) { return a.violation < b.violation; });
  if (options_.quasi_tolerance > 0.0 && !all_trees.empty() &&
      all_trees.front().violation <= options_.quasi_tolerance) {
    ClassSolution sol;
    sol.tree = all_trees.front().tree;
    sol.total = as_total;
    sol.tier = SolutionTier::kQuasiIndependent;
    sol.violation_fraction = all_trees.front().violation;
    sol.class_cost = sol.violation_fraction;  // upper bound; mapping-agnostic
    out.push_back(std::move(sol));
    return out;
  }

  // Tier 3: statistics fallback on the least-violating tree per root.
  if (options_.enable_stats_fallback) {
    std::set<std::string> tried_roots;
    for (const Scored& scored : all_trees) {
      std::string key = schema().QualifiedName(scored.tree.root);
      if (!tried_roots.insert(key).second) continue;
      Result<ClassSolution> sol = StatsFallback(scored.tree, train, holdout);
      if (sol.ok()) {
        ClassSolution s = std::move(sol).value();
        s.total = as_total;
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

ClassPartitioningResult ClassPartitioner::Partition(const JoinGraph& graph,
                                                    const Trace& class_trace,
                                                    const std::string& name,
                                                    uint32_t class_id,
                                                    double mix_fraction) const {
  ClassPartitioningResult result;
  result.class_name = name;
  result.class_id = class_id;
  result.mix_fraction = mix_fraction;
  result.read_only = graph.partitioned_tables.empty();

  auto [train, holdout] = class_trace.SplitTrainTest(options_.holdout_fraction);
  if (train.empty()) return result;

  result.total_solutions =
      SolveGraph(graph, train, holdout, /*as_total=*/true, /*depth=*/0);

  // Some of the "total" solutions may actually be partial (Case-2 splits
  // mark as_total=false and land here with total == false).
  {
    std::vector<ClassSolution> totals, partials;
    for (auto& s : result.total_solutions) {
      (s.total ? totals : partials).push_back(std::move(s));
    }
    result.total_solutions = std::move(totals);
    result.partial_solutions = std::move(partials);
  }

  // Partial solutions from sub-join trees (Sec. 5.3): candidate attributes
  // reachable from a proper subset of the partitioned tables.
  if (options_.enable_partial_solutions && !result.total_solutions.empty()) {
    std::map<TableId, std::set<TableId>> reach;
    for (TableId t : graph.partitioned_tables) {
      reach[t] = ReachableTables(schema(), graph, t);
    }
    std::vector<ClassSolution> partials;
    for (ColumnRef c : graph.candidate_attrs) {
      // Skip attributes equivalent to a total-solution root.
      bool is_root = false;
      for (const auto& total : result.total_solutions) {
        if (lattice_->Equivalent(c, total.tree.root)) {
          is_root = true;
          break;
        }
      }
      if (is_root) continue;
      std::set<TableId> cover;
      for (TableId t : graph.partitioned_tables) {
        if (reach[t].count(c.table) > 0) cover.insert(t);
      }
      if (cover.empty() || cover == graph.partitioned_tables) continue;
      auto trees = EnumerateTrees(schema(), graph, *lattice_, c, cover,
                                  options_.tree_enum);
      for (auto& tree : trees) {
        TreeFit fit = MeasureTreeFit(*db_, tree, train);
        if (fit.txns == 0 || fit.violations != 0) continue;
        ClassSolution sol;
        sol.tree = std::move(tree);
        sol.total = false;
        sol.tier = SolutionTier::kMappingIndependent;
        partials.push_back(std::move(sol));
      }
    }
    // Keep the finer of compatible partials.
    std::vector<bool> dead(partials.size(), false);
    for (size_t i = 0; i < partials.size(); ++i) {
      for (size_t j = 0; j < partials.size(); ++j) {
        if (i == j || dead[i] || dead[j]) continue;
        if (IsCoarserTree(*lattice_, partials[i].tree, partials[j].tree)) {
          dead[i] = true;
        }
      }
    }
    for (size_t i = 0; i < partials.size(); ++i) {
      if (!dead[i]) result.partial_solutions.push_back(std::move(partials[i]));
    }
  }
  return result;
}

}  // namespace jecb
