// Shared types of the JECB pipeline (paper Sections 5 and 6).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "partition/join_path.h"
#include "partition/mapping.h"

namespace jecb {

/// How a class solution's mapping function was established.
enum class SolutionTier {
  kMappingIndependent,  ///< Definition 7 holds exactly: any mapping works
  kQuasiIndependent,    ///< holds for >= (1 - tolerance) of transactions
  kStatistics,          ///< min-cut over root values beat hash and range
};

std::string_view SolutionTierToString(SolutionTier tier);

/// A join tree with a root attribute (Definition 3), represented as one join
/// path per covered table, all ending at `root`.
struct JoinTree {
  ColumnRef root;
  std::map<TableId, JoinPath> paths;

  std::set<TableId> Tables() const {
    std::set<TableId> out;
    for (const auto& [t, _] : paths) out.insert(t);
    return out;
  }
};

/// A (total or partial) partitioning solution for one transaction class
/// (Definition 4 plus the partial-solution notion of Sec. 5).
struct ClassSolution {
  JoinTree tree;
  bool total = false;  ///< covers every partitioned table the class accesses
  SolutionTier tier = SolutionTier::kMappingIndependent;
  /// Fraction of class transactions whose tuples map to more than one root
  /// value (0 for mapping-independent solutions).
  double violation_fraction = 0.0;
  /// Set for kStatistics solutions: the learned value -> partition mapping.
  std::shared_ptr<const MappingFunction> mapping;
  /// Cost of this solution on the class's held-out trace (diagnostics).
  double class_cost = 0.0;
};

/// Phase 2 output for one class.
struct ClassPartitioningResult {
  std::string class_name;
  uint32_t class_id = 0;
  double mix_fraction = 0.0;
  /// True when the class touches no partitioned tables at all (paper
  /// Table 3's "Read-only" rows) — trivially local under any solution.
  bool read_only = false;
  std::vector<ClassSolution> total_solutions;
  std::vector<ClassSolution> partial_solutions;
  bool partitionable() const { return !total_solutions.empty() || !partial_solutions.empty(); }
};

/// A per-table solution candidate in Phase 3 (Definition 10).
struct TableSolutionCandidate {
  TableId table = 0;
  JoinPath path;      // key(table) -> attribute
  bool replicate = false;
  SolutionTier tier = SolutionTier::kMappingIndependent;
  std::shared_ptr<const MappingFunction> mapping;  // optional (statistics)

  ColumnRef attr() const { return path.dest; }
};

}  // namespace jecb
