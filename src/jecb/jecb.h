// JECB: join-extension, code-based OLTP data partitioning (the paper's
// primary contribution). Inputs: a populated database (schema + data), the
// workload's stored-procedure source code, a training trace, and the target
// partition count. Output: a partitioning solution for every table plus the
// full per-phase report.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "jecb/class_partitioner.h"
#include "jecb/combiner.h"
#include "jecb/join_graph.h"
#include "jecb/types.h"
#include "partition/solution.h"
#include "sql/parser.h"
#include "trace/trace.h"

namespace jecb {

struct JecbOptions {
  int32_t num_partitions = 8;
  /// Worker threads for the pipeline's parallel sections (per-class Phase 2,
  /// Phase 3 candidate scoring). 0 = hardware_concurrency(); 1 = the exact
  /// legacy single-threaded path (no pool is created). Results are
  /// bit-identical at every thread count.
  int32_t num_threads = 0;
  /// Use the columnar pipeline: the training trace is flattened once into a
  /// FlatTrace, Phase 2 scans zero-copy per-class views with a shared
  /// join-path resolution cache per class, and Phase 3 scores combinations
  /// with the resolve-once evaluator. Results are bit-identical to the
  /// row-oriented path (false), which is kept for comparison benchmarks.
  bool columnar = true;
  /// Incremental Phase-3 scoring (CombinerOptions::delta; needs `columnar`).
  /// Bit-identical results — only the time per scored combination changes.
  bool delta = true;
  /// Allow the SIMD partition-scan kernels (partition_scan.h). false pins
  /// the scalar kernel; true picks the best kernel the CPU supports at run
  /// time. Every kernel is bit-identical to scalar.
  bool simd = true;
  /// Re-prove delta == full on every scored combination (aborts on
  /// divergence). For tests; defeats the delta speedup.
  bool delta_self_check = false;
  ClassifyOptions classify;
  JoinGraphOptions join_graph;
  ClassPartitionerOptions class_partitioner;
  CombinerOptions combiner;
};

struct JecbResult {
  DatabaseSolution solution;
  /// Phase 1 output: per-table access classification applied to the schema.
  std::vector<AccessClass> table_classes;
  /// Phase 2 output per transaction class (paper Table 3 contents).
  std::vector<ClassPartitioningResult> classes;
  /// Phase 3 accounting (paper Example 10 contents).
  CombinerReport combiner_report;
  double elapsed_seconds = 0.0;
};

/// The JECB partitioner (phases 1-3 of the paper).
class Jecb {
 public:
  explicit Jecb(JecbOptions options = {});

  /// Runs all three phases. Mutates `db`'s schema: Phase 1 stamps each
  /// table's AccessClass. Trace class names must match procedure names.
  Result<JecbResult> Partition(Database* db,
                               const std::vector<sql::Procedure>& procedures,
                               const Trace& training_trace) const;

 private:
  JecbOptions options_;
};

/// Renders the Phase 2 outcome as a paper-Table-3-style text table.
std::string FormatClassSolutions(const Schema& schema,
                                 const std::vector<ClassPartitioningResult>& classes);

/// Renders the final per-table solution as a paper-Table-4-style text table.
std::string FormatTableSolutions(const Schema& schema, const DatabaseSolution& solution);

}  // namespace jecb
