#include "jecb/combiner.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <optional>

#include "partition/delta_evaluator.h"

namespace jecb {

namespace {

/// Definition 13: compatibility of two realized join paths from the same
/// table. `a` compatible-with `b` when one's hops prefix the other's and the
/// destination attributes are compatible.
bool PathsCompatible(const AttributeLattice& lattice, const JoinPath& a,
                     const JoinPath& b) {
  const JoinPath& shorter = a.length() <= b.length() ? a : b;
  const JoinPath& longer = a.length() <= b.length() ? b : a;
  if (!shorter.HopsArePrefixOf(longer)) return false;
  return lattice.Compatible(a.dest, b.dest);
}

/// Order for "coarser" between two compatible candidates: prefer the one
/// whose destination attribute is coarser; with equal granularity, the
/// longer-hopped path realizes the coarser tree.
bool CandidateCoarser(const AttributeLattice& lattice, const TableSolutionCandidate& x,
                      const TableSolutionCandidate& y) {
  if (lattice.IsCoarser(x.attr(), y.attr())) return true;
  if (lattice.IsCoarser(y.attr(), x.attr())) return false;
  return x.path.length() > y.path.length();
}

}  // namespace

Result<DatabaseSolution> Combiner::Combine(
    const std::vector<ClassPartitioningResult>& classes, const Trace& train,
    CombinerReport* report, ThreadPool* pool, const FlatTrace* flat) const {
  CombinerReport local_report;
  CombinerReport& rep = report != nullptr ? *report : local_report;

  const DistributedFractionCost default_cost;
  const CostModel& cost_model =
      options_.cost_model != nullptr ? *options_.cost_model : default_cost;

  // Gather per-table candidates from every class solution.
  std::map<TableId, std::vector<TableSolutionCandidate>> candidates;
  for (const auto& cls : classes) {
    auto add_solutions = [&](const std::vector<ClassSolution>& sols) {
      for (const ClassSolution& sol : sols) {
        for (const auto& [table, path] : sol.tree.paths) {
          TableSolutionCandidate cand;
          cand.table = table;
          cand.path = path;
          cand.tier = sol.tier;
          cand.mapping = sol.mapping;
          candidates[table].push_back(std::move(cand));
        }
      }
    };
    add_solutions(cls.total_solutions);
    add_solutions(cls.partial_solutions);
  }

  std::vector<TableId> partitioned;
  for (const Table& t : schema().tables()) {
    if (t.access_class == AccessClass::kPartitioned) partitioned.push_back(t.id);
  }

  // Deduplicate identical candidates; account the naive search-space size
  // (every candidate plus replication, per table, multiplied out).
  rep.naive_search_space = 1.0;
  for (TableId t : partitioned) {
    auto& cands = candidates[t];
    std::sort(cands.begin(), cands.end(),
              [](const TableSolutionCandidate& a, const TableSolutionCandidate& b) {
                return std::tie(a.path.hops, a.path.dest) <
                       std::tie(b.path.hops, b.path.dest);
              });
    cands.erase(std::unique(cands.begin(), cands.end(),
                            [](const TableSolutionCandidate& a,
                               const TableSolutionCandidate& b) {
                              return a.path == b.path;
                            }),
                cands.end());
    rep.naive_search_space *= static_cast<double>(cands.size() + 1);
  }

  // Step 1: candidate partitioning attributes — solution roots, deduplicated
  // by equivalence, keeping the coarser of compatible pairs.
  std::vector<ColumnRef> attrs;
  for (const auto& [t, cands] : candidates) {
    for (const auto& c : cands) {
      bool merged = false;
      for (ColumnRef& existing : attrs) {
        if (lattice_->Equivalent(existing, c.attr())) {
          merged = true;
          break;
        }
        if (lattice_->IsCoarser(existing, c.attr())) {
          merged = true;  // keep the existing, coarser one
          break;
        }
        if (lattice_->IsCoarser(c.attr(), existing)) {
          existing = c.attr();  // replace by the coarser newcomer
          merged = true;
          break;
        }
      }
      if (!merged) attrs.push_back(c.attr());
    }
  }
  for (ColumnRef a : attrs) rep.candidate_attrs.push_back(schema().QualifiedName(a));

  if (attrs.empty()) {
    // Nothing partitionable: replicate everything.
    DatabaseSolution solution(options_.num_partitions, schema().num_tables());
    auto replicated = std::make_shared<ReplicatedTable>();
    for (size_t t = 0; t < schema().num_tables(); ++t) {
      solution.Set(static_cast<TableId>(t), replicated);
    }
    rep.chosen_attr = "(none: full replication)";
    EvalResult ev =
        flat != nullptr
            ? Evaluate(*db_, solution, *flat, pool, options_.scan_kernel)
            : Evaluate(*db_, solution, train, pool);
    rep.best_train_cost = cost_model.Cost(ev);
    return solution;
  }

  // Steps 2 + 3: per candidate attribute, build reduced per-table solution
  // sets, enumerate combinations, and evaluate on the training trace.
  double best_cost = std::numeric_limits<double>::infinity();
  std::unique_ptr<DatabaseSolution> best;
  std::string best_attr;

  // The trace-side delta indexes are attribute-independent: build them once,
  // rebase per candidate attribute.
  std::optional<DeltaEvaluator> delta_eval;
  if (options_.delta && flat != nullptr) {
    delta_eval.emplace(db_, flat, pool, options_.scan_kernel);
    delta_eval->set_self_check(options_.delta_self_check);
  }

  for (ColumnRef X : attrs) {
    // Reduced solution sets.
    std::map<TableId, std::vector<TableSolutionCandidate>> reduced;
    for (TableId t : partitioned) {
      std::vector<TableSolutionCandidate> set;
      for (const auto& c : candidates[t]) {
        if (!lattice_->Compatible(c.attr(), X) && !lattice_->Equivalent(c.attr(), X)) {
          continue;
        }
        set.push_back(c);
      }
      // Merge compatible pairs (Definition 14): drop the finer.
      std::vector<bool> dead(set.size(), false);
      for (size_t i = 0; i < set.size(); ++i) {
        for (size_t j = i + 1; j < set.size(); ++j) {
          if (dead[i] || dead[j]) continue;
          if (!PathsCompatible(*lattice_, set[i].path, set[j].path)) continue;
          if (CandidateCoarser(*lattice_, set[i], set[j])) {
            dead[j] = true;
          } else {
            dead[i] = true;
          }
        }
      }
      std::vector<TableSolutionCandidate> merged;
      for (size_t i = 0; i < set.size(); ++i) {
        if (!dead[i]) merged.push_back(std::move(set[i]));
      }
      // Extend remaining solutions to X (shortest join path).
      std::vector<TableSolutionCandidate> extended;
      for (auto& c : merged) {
        if (lattice_->Equivalent(c.attr(), X)) {
          extended.push_back(std::move(c));
          continue;
        }
        Result<JoinPath> ext = lattice_->ExtendPath(c.path, X);
        if (!ext.ok()) continue;
        c.path = std::move(ext).value();
        c.mapping.reset();  // the mapping was over the old attribute
        extended.push_back(std::move(c));
      }
      if (extended.empty()) {
        TableSolutionCandidate repl;
        repl.table = t;
        repl.replicate = true;
        extended.push_back(std::move(repl));
      }
      reduced[t] = std::move(extended);
    }

    // Mappings to try: hash always; any learned mapping carried over.
    std::vector<std::shared_ptr<const MappingFunction>> mappings;
    mappings.push_back(std::make_shared<HashMapping>(options_.num_partitions));
    for (const auto& [t, set] : reduced) {
      for (const auto& c : set) {
        if (c.mapping != nullptr) mappings.push_back(c.mapping);
      }
    }

    // Enumerate combinations (odometer over per-table choices), capped.
    // Generation is split from scoring so the candidates can be evaluated
    // concurrently: the descriptors are produced in the legacy odometer
    // order, scored in parallel (each worker builds and drops its own
    // solution), and reduced sequentially by enumeration index — the
    // strict-improvement reduction then picks the same winner as the
    // serial loop, ties and all.
    struct Candidate {
      std::vector<size_t> choice;  // per-partitioned-table solution index
      size_t mapping_idx = 0;
    };
    std::vector<Candidate> combos;
    std::vector<size_t> choice(partitioned.size(), 0);
    while (true) {
      for (size_t m = 0; m < mappings.size(); ++m) {
        combos.push_back({choice, m});
        ++rep.evaluated_combinations;
      }
      // Odometer increment.
      size_t pos = 0;
      while (pos < choice.size()) {
        if (++choice[pos] < reduced[partitioned[pos]].size()) break;
        choice[pos] = 0;
        ++pos;
      }
      if (pos == choice.size()) break;
      if (rep.evaluated_combinations >= options_.max_combinations) break;
    }

    // One partitioner object per (table, choice, mapping), shared by every
    // combination (and worker thread) that picks it: the ConcurrentTupleCache
    // memo inside each JoinPathPartitioner then warms across combinations
    // instead of being rebuilt per scored solution. PartitionOf is a pure
    // function of the tuple, so sharing cannot change any EvalResult.
    auto replicated = std::make_shared<ReplicatedTable>();
    std::vector<std::vector<std::vector<std::shared_ptr<const TablePartitioner>>>>
        shared_parts(partitioned.size());
    for (size_t i = 0; i < partitioned.size(); ++i) {
      const auto& set = reduced[partitioned[i]];
      shared_parts[i].resize(set.size());
      for (size_t c = 0; c < set.size(); ++c) {
        shared_parts[i][c].resize(mappings.size());
        for (size_t m = 0; m < mappings.size(); ++m) {
          shared_parts[i][c][m] =
              set[c].replicate
                  ? std::static_pointer_cast<const TablePartitioner>(replicated)
                  : std::make_shared<JoinPathPartitioner>(set[c].path,
                                                          mappings[m]);
        }
      }
    }

    auto build = [&](const Candidate& cand) {
      DatabaseSolution solution(options_.num_partitions, schema().num_tables());
      for (size_t t = 0; t < schema().num_tables(); ++t) {
        if (schema().table(static_cast<TableId>(t)).access_class !=
            AccessClass::kPartitioned) {
          solution.Set(static_cast<TableId>(t), replicated);
        }
      }
      for (size_t i = 0; i < partitioned.size(); ++i) {
        solution.Set(partitioned[i],
                     shared_parts[i][cand.choice[i]][cand.mapping_idx]);
      }
      return solution;
    };

    // Delta scoring: fully evaluate the first enumerated combination once,
    // then score every combination as base +/- the contribution of the
    // transactions touching tables whose partitioner differs from it.
    // Because solutions share partitioner objects, DiffTables reduces to
    // pointer comparisons for unchanged tables.
    std::optional<DatabaseSolution> delta_base;
    if (delta_eval.has_value() && !combos.empty()) {
      delta_base.emplace(build(combos[0]));
      delta_eval->Rebase(*delta_base);
    }

    std::vector<double> costs(combos.size(), 0.0);
    ParallelFor(
        pool, combos.size(),
        [&](size_t i) {
          DatabaseSolution solution = build(combos[i]);
          EvalResult ev;
          if (delta_base.has_value()) {
            ev = delta_eval->EvaluateCandidate(
                solution, DeltaEvaluator::DiffTables(*delta_base, solution));
          } else if (flat != nullptr) {
            ev = Evaluate(*db_, solution, *flat, nullptr, options_.scan_kernel);
          } else {
            ev = Evaluate(*db_, solution, train);
          }
          costs[i] = cost_model.Cost(ev);
        },
        "combiner.score");
    for (size_t i = 0; i < combos.size(); ++i) {
      if (costs[i] < best_cost) {
        best_cost = costs[i];
        best = std::make_unique<DatabaseSolution>(build(combos[i]));
        best_attr = schema().QualifiedName(X);
      }
    }
  }

  if (best == nullptr) {
    return Status::Internal("combiner evaluated no combinations");
  }
  rep.chosen_attr = best_attr;
  rep.best_train_cost = best_cost;
  for (TableId t : partitioned) {
    const TablePartitioner* p = best->Get(t);
    if (p == nullptr || dynamic_cast<const ReplicatedTable*>(p) != nullptr) {
      rep.replicated_tables.push_back(schema().table(t).name);
    }
  }
  return *best;
}

}  // namespace jecb
