#include "jecb/join_graph.h"

#include <algorithm>

namespace jecb {

namespace {

bool HasEquijoin(const sql::ProcedureInfo& info, ColumnRef a, ColumnRef b) {
  if (b < a) std::swap(a, b);
  for (const auto& [x, y] : info.equijoins) {
    if (x == a && y == b) return true;
  }
  return false;
}

bool InAccessed(const sql::ProcedureInfo& info, ColumnRef c, bool with_select) {
  if (info.where_attrs.count(c) > 0) return true;
  if (info.insert_attrs.count(c) > 0) return true;
  return with_select && info.select_attrs.count(c) > 0;
}

}  // namespace

JoinGraph BuildJoinGraph(const Schema& schema, const sql::ProcedureInfo& info,
                         const JoinGraphOptions& options) {
  JoinGraph g;
  g.tables = info.AllTables();
  for (TableId t : g.tables) {
    if (schema.table(t).access_class == AccessClass::kPartitioned) {
      g.partitioned_tables.insert(t);
    }
  }

  const auto& fks = schema.foreign_keys();
  for (FkIdx f = 0; f < fks.size(); ++f) {
    const ForeignKey& fk = fks[f];
    if (g.tables.count(fk.table) == 0 || g.tables.count(fk.ref_table) == 0) continue;

    // Activated when every column pair is witnessed by an equijoin, or when
    // every endpoint appears among accessed attributes (weaker evidence; the
    // trace prunes false positives downstream).
    bool all_joined = true;
    bool all_accessed = true;
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      ColumnRef child{fk.table, fk.columns[i]};
      ColumnRef parent{fk.ref_table, fk.ref_columns[i]};
      if (!HasEquijoin(info, child, parent)) all_joined = false;
      if (!InAccessed(info, child, options.use_select_clause_attrs) ||
          !InAccessed(info, parent, options.use_select_clause_attrs)) {
        all_accessed = false;
      }
    }
    if (all_joined || all_accessed) g.active_fks.push_back(f);
  }

  // Candidate attributes: WHERE attributes on accessed tables, plus the
  // endpoints of activated foreign keys, plus single-column primary keys of
  // accessed tables (roots like TPC-C's W_ID).
  for (ColumnRef c : info.where_attrs) {
    if (g.tables.count(c.table) > 0) g.candidate_attrs.insert(c);
  }
  for (FkIdx f : g.active_fks) {
    const ForeignKey& fk = fks[f];
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      g.candidate_attrs.insert(ColumnRef{fk.table, fk.columns[i]});
      g.candidate_attrs.insert(ColumnRef{fk.ref_table, fk.ref_columns[i]});
    }
  }
  for (TableId t : g.tables) {
    const Table& table = schema.table(t);
    if (table.primary_key.size() == 1) {
      g.candidate_attrs.insert(ColumnRef{t, table.primary_key[0]});
    }
  }
  return g;
}

}  // namespace jecb
