// Join-tree enumeration (paper Sec. 5.2): find root attributes reachable
// from every partitioned table's primary key through the class's active
// foreign keys, enumerate the join trees for each root, and — when no root
// exists — split the join graph (connected components, then m-to-n splits)
// so partial solutions can be searched per subgraph.
#pragma once

#include <set>
#include <vector>

#include "jecb/attr_lattice.h"
#include "jecb/join_graph.h"
#include "jecb/types.h"

namespace jecb {

struct TreeEnumOptions {
  size_t max_paths_per_pair = 16;
  size_t max_trees_per_root = 16;
};

/// All simple foreign-key hop sequences from `from` to `to` within the
/// graph's active FKs (at most `limit`). `from == to` yields one empty path.
std::vector<std::vector<FkIdx>> EnumerateFkPaths(const Schema& schema,
                                                 const JoinGraph& graph, TableId from,
                                                 TableId to, size_t limit);

/// Tables reachable from `from` via active child->parent FKs (incl. itself).
std::set<TableId> ReachableTables(const Schema& schema, const JoinGraph& graph,
                                  TableId from);

/// Root attributes: candidate attributes on tables reachable from every
/// partitioned table, deduplicated by equivalence (keeping, per class of
/// equivalent attributes, the one with the fewest total hops).
std::vector<ColumnRef> FindRootAttributes(const Schema& schema, const JoinGraph& graph,
                                          const AttributeLattice& lattice);

/// All join trees over `cover` rooted at `root` (cartesian product of
/// per-table path alternatives, capped).
std::vector<JoinTree> EnumerateTrees(const Schema& schema, const JoinGraph& graph,
                                     const AttributeLattice& lattice, ColumnRef root,
                                     const std::set<TableId>& cover,
                                     const TreeEnumOptions& options = {});

/// Case 2 of Sec. 5.2: splits a rootless join graph into subgraphs —
/// connected components first, then m-to-n splits at a partitioned table
/// with foreign keys into two disjoint partitioned regions.
std::vector<JoinGraph> SplitGraph(const Schema& schema, const JoinGraph& graph);

}  // namespace jecb
