// Attribute compatibility (paper Definition 12 and Property 2): whether two
// attributes have the same granularity (connected by key-foreign key value
// correspondence) or one is coarser (reachable by a join path), plus the
// machinery to extend a realized join path to a compatible coarser
// attribute.
//
// Equivalence is deliberately directional underneath: A and B have the same
// granularity when one can reach the other along child->parent foreign-key
// column pairs. Two foreign keys sharing a parent (Example 9's R2.X1 and
// R2.X2) are NOT equivalent: chains may not reverse direction through a
// common parent.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "partition/join_path.h"

namespace jecb {

class AttributeLattice {
 public:
  explicit AttributeLattice(const Schema* schema);

  /// Same level of granularity (Definition 12, first bullet).
  bool Equivalent(ColumnRef a, ColumnRef b) const;

  /// True when `coarse` is strictly coarser than `fine` (Definition 12,
  /// second bullet): a join path leads from `fine` to `coarse` and includes
  /// at least one granularity-losing intra-table step.
  bool IsCoarser(ColumnRef coarse, ColumnRef fine) const;

  /// Equivalent, or one coarser than the other.
  bool Compatible(ColumnRef a, ColumnRef b) const;

  /// All attributes with the same granularity as `a` (including `a`).
  std::vector<ColumnRef> EquivClass(ColumnRef a) const;

  /// Extends a realized join path so that its destination is an attribute
  /// equivalent to `target`, appending as few foreign-key hops as possible.
  /// Fails when no extension exists.
  Result<JoinPath> ExtendPath(const JoinPath& base, ColumnRef target) const;

  const Schema& schema() const { return *schema_; }

 private:
  /// BFS along child->parent FK column pairs.
  bool ReachesUp(ColumnRef from, ColumnRef to) const;

  /// Columns directly up from `c` (parent columns of FK pairs containing c).
  const std::vector<ColumnRef>& Up(ColumnRef c) const;
  const std::vector<ColumnRef>& Down(ColumnRef c) const;

  /// True when `c` alone is a unique key of its table.
  bool IsSingleColumnKey(ColumnRef c) const;

  const Schema* schema_;
  std::unordered_map<ColumnRef, std::vector<ColumnRef>, ColumnRefHash> up_;
  std::unordered_map<ColumnRef, std::vector<ColumnRef>, ColumnRefHash> down_;
  std::unordered_set<ColumnRef, ColumnRefHash> single_col_keys_;
};

}  // namespace jecb
