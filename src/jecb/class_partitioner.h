// Phase 2 (paper Sec. 5): partition one transaction class. Enumerates join
// trees (Sec. 5.2), tests mapping independence on the class trace
// (Definition 7), eliminates coarser compatible trees (Property 1), and
// falls back — in order — to:
//   1. exact mapping-independent solutions (any mapping function works);
//   2. epsilon-quasi-independent solutions: at most `quasi_tolerance` of the
//      class's transactions map to multiple root values (captures TPC-C's
//      inherent ~1%/15% remote accesses, where the optimal warehouse
//      partitioning exists but Definition 7 is violated by design);
//   3. the statistics-based method of Sec. 5.3: min-cut over the co-access
//      graph of root values, kept only when it beats both hash and range on
//      a held-out part of the trace ("meaningful"); a range mapping below
//      the quasi tolerance is also accepted (date-window locality).
// Classes with no solution are non-partitionable.
#pragma once

#include <string>

#include "jecb/attr_lattice.h"
#include "jecb/join_graph.h"
#include "jecb/tree_enum.h"
#include "jecb/types.h"
#include "partition/join_path_resolver.h"
#include "trace/flat_trace.h"
#include "trace/trace.h"

namespace jecb {

/// Internal trace-scan backend for one class (defined in the .cc): either
/// the legacy row-oriented scan or the columnar view + shared-resolver scan.
class ClassScan;

struct ClassPartitionerOptions {
  int32_t num_partitions = 8;
  /// Tier-2 threshold: accept a tree whose violation fraction is at most
  /// this. 0 disables tier 2 (strict Definition 7 only).
  double quasi_tolerance = 0.25;
  bool enable_partial_solutions = true;
  bool enable_stats_fallback = true;
  bool enable_range_quasi = true;
  /// Fraction of the class trace held out to validate fallback mappings.
  double holdout_fraction = 0.3;
  /// Transactions touching more root values than this are skipped when
  /// building the statistics co-access graph.
  size_t max_values_per_txn = 16;
  TreeEnumOptions tree_enum;
  /// Accelerate the per-tree fit scans with the class-local value-id layout
  /// and the path-set memo (columnar pipeline only). Off reproduces the
  /// pre-incremental scan bit for bit — the toggle exists as the oracle for
  /// the delta/incremental A/B in bench/partition_speed.
  bool incremental = true;
  uint64_t seed = 7;
};

/// Violation statistics of one join tree against a class trace.
struct TreeFit {
  uint64_t txns = 0;
  uint64_t violations = 0;  // txns mapping to >1 root value (or eval failure)
  double violation_fraction() const {
    return txns == 0 ? 0.0
                     : static_cast<double>(violations) / static_cast<double>(txns);
  }
};

/// Measures Definition 7 over `trace` for `tree`, counting only accesses to
/// tables the tree covers.
TreeFit MeasureTreeFit(const Database& db, const JoinTree& tree, const Trace& trace);

/// Columnar variant over a zero-copy view; `resolver` memoizes every
/// join-path resolution so repeated calls (other trees, other metrics) never
/// re-extend a tuple already seen. Bit-identical to the Trace overload.
TreeFit MeasureTreeFit(const Database& db, const JoinTree& tree,
                       const TraceView& view, JoinPathResolver* resolver);

/// True when `a` is coarser than `b` (Definition 9): same per-table hop
/// prefixes and a root that is coarser (or an equal-granularity root reached
/// through strictly longer paths).
bool IsCoarserTree(const AttributeLattice& lattice, const JoinTree& a,
                   const JoinTree& b);

class ClassPartitioner {
 public:
  ClassPartitioner(const Database* db, const AttributeLattice* lattice,
                   ClassPartitionerOptions options)
      : db_(db), lattice_(lattice), options_(std::move(options)) {}

  /// Runs Phase 2 for one class over the legacy row-oriented trace.
  /// `class_trace` must contain only this class's transactions.
  ClassPartitioningResult Partition(const JoinGraph& graph, const Trace& class_trace,
                                    const std::string& name, uint32_t class_id,
                                    double mix_fraction) const;

  /// Columnar Phase 2: the same search over a zero-copy view of the shared
  /// FlatTrace. `resolver` carries the class's join-path resolution cache
  /// across every enumerated tree and every metric (fit measuring, mapping
  /// costing, statistics fallback), so each distinct tuple is join-extended
  /// once per distinct path instead of once per tree per metric. Results are
  /// bit-identical to the Trace overload.
  ClassPartitioningResult Partition(const JoinGraph& graph, const TraceView& class_view,
                                    JoinPathResolver* resolver,
                                    const std::string& name, uint32_t class_id,
                                    double mix_fraction) const;

 private:
  /// Shared Phase-2 body over either scan backend.
  ClassPartitioningResult PartitionWithScan(const JoinGraph& graph,
                                            const ClassScan& scan,
                                            const std::string& name,
                                            uint32_t class_id,
                                            double mix_fraction) const;

  /// Solutions over a (sub)graph; `cover` lists the partitioned tables a
  /// solution must span to count as total for this (sub)graph.
  std::vector<ClassSolution> SolveGraph(const JoinGraph& graph, const ClassScan& scan,
                                        bool as_total, int depth) const;

  /// Tier 3: statistics fallback for one tree.
  Result<ClassSolution> StatsFallback(const JoinTree& tree,
                                      const ClassScan& scan) const;

  const Schema& schema() const { return db_->schema(); }

  const Database* db_;
  const AttributeLattice* lattice_;
  ClassPartitionerOptions options_;
};

}  // namespace jecb
