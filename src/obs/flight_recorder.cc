#include "obs/flight_recorder.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/metrics_registry.h"
#include "obs/trace_export.h"
#include "obs/trace_recorder.h"

namespace jecb {

namespace {

std::mutex g_mu;
std::string g_path;
int32_t g_shard = -1;

/// Parses the integer following `key` inside `obj`.
bool FindInt(std::string_view obj, std::string_view key, int64_t* out) {
  size_t at = obj.find(key);
  if (at == std::string_view::npos) return false;
  at += key.size();
  while (at < obj.size() && (obj[at] == ' ' || obj[at] == ':')) ++at;
  bool neg = false;
  if (at < obj.size() && obj[at] == '-') {
    neg = true;
    ++at;
  }
  if (at >= obj.size() || obj[at] < '0' || obj[at] > '9') return false;
  int64_t v = 0;
  while (at < obj.size() && obj[at] >= '0' && obj[at] <= '9') {
    v = v * 10 + (obj[at] - '0');
    ++at;
  }
  *out = neg ? -v : v;
  return true;
}

bool FindString(std::string_view obj, std::string_view key, std::string* out) {
  size_t at = obj.find(key);
  if (at == std::string_view::npos) return false;
  at = obj.find('"', at + key.size());
  if (at == std::string_view::npos) return false;
  ++at;
  out->clear();
  while (at < obj.size() && obj[at] != '"') {
    if (obj[at] == '\\' && at + 1 < obj.size()) ++at;
    *out += obj[at++];
  }
  return at < obj.size();
}

}  // namespace

void ConfigureFlightRecorder(std::string path, int32_t shard) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_path = std::move(path);
  g_shard = shard;
}

bool FlightRecorderConfigured() {
  std::lock_guard<std::mutex> lock(g_mu);
  return !g_path.empty();
}

std::string FlightRecorderPath() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_path;
}

bool DumpFlightRecorder(std::string_view reason) {
  std::string path;
  int32_t shard;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_path.empty()) return false;
    path = g_path;
    shard = g_shard;
  }
  const TraceRecorder& rec = TraceRecorder::Default();

  ProcessTrace p;
  p.pid = static_cast<int64_t>(getpid());
  p.name = "shard-" + std::to_string(shard) + " (postmortem)";
  p.thread_names = rec.ThreadNames();
  p.events = rec.Collect();

  std::string head = "{\"postmortem\":{\"pid\":" + std::to_string(p.pid) +
                     ",\"shard\":" + std::to_string(shard) + ",\"reason\":\"" +
                     JsonEscape(reason) +
                     "\",\"dropped\":" + std::to_string(rec.dropped()) +
                     ",\"now_us\":" + std::to_string(rec.NowUs()) +
                     "},\n\"metrics\":\"" +
                     JsonEscape(MetricsRegistry::Default().RenderPrometheus()) +
                     "\",\n";
  // ClusterTraceJson renders a complete {"traceEvents":...} object; splice
  // its body after our extra keys so the dump stays one JSON document that
  // both Perfetto and ParseChromeTrace accept.
  std::vector<ProcessTrace> procs;
  procs.push_back(std::move(p));
  std::string trace = ClusterTraceJson(procs);
  head += std::string_view(trace).substr(1);

  const std::string tmp = path + ".tmp";
  if (!WriteTextFile(tmp, head)) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool ParsePostmortemHeader(std::string_view json, PostmortemHeader* out) {
  size_t at = json.find("\"postmortem\"");
  if (at == std::string_view::npos) return false;
  at = json.find('{', at);
  if (at == std::string_view::npos) return false;
  size_t end = json.find('}', at);
  if (end == std::string_view::npos) return false;
  std::string_view obj = json.substr(at, end - at + 1);
  int64_t v = 0;
  if (!FindInt(obj, "\"pid\"", &v)) return false;
  out->pid = v;
  if (!FindInt(obj, "\"shard\"", &v)) return false;
  out->shard = static_cast<int32_t>(v);
  if (!FindString(obj, "\"reason\"", &out->reason)) return false;
  if (FindInt(obj, "\"dropped\"", &v)) out->dropped = static_cast<uint64_t>(v);
  if (FindInt(obj, "\"now_us\"", &v)) out->now_us = static_cast<uint64_t>(v);
  return true;
}

}  // namespace jecb
