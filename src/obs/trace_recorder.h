// End-to-end tracing: a lock-free, thread-local ring-buffer span recorder.
//
// Design:
//  * Each emitting thread owns a fixed-capacity ring buffer of POD
//    TraceEvents; pushes are wait-free (one relaxed load, one slot store,
//    one release store) and never contend with other threads. The ring
//    wraps, overwriting the oldest events — tracing can run forever and
//    memory stays bounded; Collect() reports how many events were dropped.
//  * When the recorder is disabled (the default), every instrumentation
//    point costs one relaxed atomic load and a branch — measured <1% on
//    bench/throughput_tpcc — and allocates nothing: no thread buffer is
//    created until the first event is actually recorded. Building with
//    -DJECB_OBS_DISABLED (CMake -DJECB_OBS=OFF) compiles the layer out
//    entirely: enabled() folds to false and the macros expand to nothing.
//  * Event names/categories are `const char*` and must outlive the
//    recorder: string literals, or dynamic strings pinned via Intern()
//    (e.g. transaction-class names — interned once per class, off the hot
//    path).
//  * Collect()/RenderChromeTrace()/Reset() are meant for quiesced use
//    (after workers joined / pools destroyed). The release/acquire pair on
//    each buffer's event count makes quiesced collection race-free; while
//    producers are live a collector may observe a torn slot that is being
//    overwritten by a wrap — never collect concurrently with tracing you
//    care about.
//
// Tracing is observational only: it never changes control flow, fault
// decisions, or any replay outcome (ReplayReport::OutcomeSignature is
// byte-identical with tracing on or off).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace jecb {

#if defined(JECB_OBS_DISABLED)
inline constexpr bool kObsCompiledIn = false;
#else
inline constexpr bool kObsCompiledIn = true;
#endif

enum class TraceEventKind : uint8_t {
  kSpan,     ///< duration event (Chrome "X")
  kInstant,  ///< point annotation, e.g. an injected fault (Chrome "i")
  kCounter,  ///< sampled numeric series; value in arg1 (Chrome "C")
};

/// One fixed-size POD trace record. Names are borrowed pointers (literals
/// or interned); up to two integer args ride along (candidate counts, txn
/// ids, shard ids, ...). Unused arg slots have a null name.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg1_name = nullptr;
  const char* arg2_name = nullptr;
  int64_t arg1 = 0;
  int64_t arg2 = 0;
  uint64_t ts_us = 0;   ///< microseconds since the recorder's epoch
  uint64_t dur_us = 0;  ///< spans only
  TraceEventKind kind = TraceEventKind::kSpan;
};

/// A TraceEvent annotated with its origin for export: which thread buffer
/// it came from and its per-thread sequence number.
struct CollectedEvent {
  TraceEvent event;
  uint32_t tid = 0;
  uint64_t seq = 0;
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultEventsPerThread = 1 << 16;

  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder every JECB_* macro and built-in
  /// instrumentation point writes to.
  static TraceRecorder& Default();

  /// Starts recording. `events_per_thread` sizes ring buffers created from
  /// now on (existing buffers keep their capacity; Reset() first to
  /// re-size everything).
  void Enable(size_t events_per_thread = kDefaultEventsPerThread);
  void Disable();
  bool enabled() const {
    return kObsCompiledIn && enabled_.load(std::memory_order_relaxed);
  }

  /// Pins a dynamic string for use as an event name/category/arg name.
  /// Idempotent; the pointer stays valid for the recorder's lifetime
  /// (Reset() keeps the intern table so pinned names never dangle).
  const char* Intern(std::string_view s);

  /// Records one event into the calling thread's ring buffer (creating and
  /// registering the buffer on first use). No-op when disabled.
  void Emit(const TraceEvent& event);

  void Instant(const char* cat, const char* name, const char* arg1_name = nullptr,
               int64_t arg1 = 0, const char* arg2_name = nullptr, int64_t arg2 = 0);
  void Counter(const char* cat, const char* name, int64_t value);
  /// Records a span with an explicit start/duration — for timelines whose
  /// start happened on another thread (e.g. queue wait measured at dequeue
  /// from the enqueue timestamp).
  void Span(const char* cat, const char* name, uint64_t ts_us, uint64_t dur_us,
            const char* arg1_name = nullptr, int64_t arg1 = 0,
            const char* arg2_name = nullptr, int64_t arg2 = 0);

  /// Microseconds since this recorder's construction (its trace epoch).
  uint64_t NowUs() const {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     std::chrono::steady_clock::now() - epoch_)
                                     .count());
  }
  /// Converts a steady_clock time point to the trace timebase.
  uint64_t ToTraceUs(std::chrono::steady_clock::time_point tp) const {
    return tp <= epoch_
               ? 0
               : static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_)
                         .count());
  }

  /// Snapshot of every thread's surviving events, sorted by (ts, tid, seq).
  std::vector<CollectedEvent> Collect() const;
  /// Incremental collection for telemetry shipping: returns every surviving
  /// event not returned by a previous Drain() call (per-buffer watermark),
  /// sorted like Collect(). Events are delivered at most once across drains;
  /// ring overwrites between drains are lost and show up in dropped().
  /// Drain() does not erase the ring, so a later Collect() — e.g. a
  /// postmortem dump — still sees the full surviving window. Same quiescence
  /// caveats as Collect().
  std::vector<CollectedEvent> Drain();
  /// Names the calling thread's buffer for trace export (Perfetto
  /// thread_name metadata). Creates the buffer if needed; cheap, call once
  /// per thread. No-op when compiled out.
  void SetThreadName(std::string_view name);
  /// tid -> name pairs registered via SetThreadName, unsorted.
  std::vector<std::pair<uint32_t, std::string>> ThreadNames() const;
  /// Events lost to ring wraparound so far.
  uint64_t dropped() const;
  size_t num_thread_buffers() const;
  /// Drops all buffers (capacity can then be re-chosen by Enable) and
  /// disables recording. Interned strings are kept. Quiesced use only.
  void Reset();

  /// Chrome trace-event JSON of Collect() — loadable in Perfetto and
  /// chrome://tracing.
  std::string RenderChromeTrace() const;
  bool WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer;

  ThreadBuffer* BufferForThisThread();

  const uint64_t id_;  ///< distinguishes recorder instances in the TLS cache
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  /// Bumped by Reset(); stale TLS caches re-register on next emit.
  std::atomic<uint64_t> generation_{0};
  mutable std::mutex mu_;
  size_t events_per_thread_ = kDefaultEventsPerThread;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::unordered_map<std::thread::id, ThreadBuffer*> by_thread_;
  std::unordered_map<uint32_t, std::string> thread_names_;  ///< guarded by mu_
  mutable std::mutex intern_mu_;
  std::unordered_set<std::string> interned_;  ///< node-based: stable c_str()
};

/// RAII span: captures the start time on construction, emits one complete
/// span event on destruction. When the recorder is disabled at
/// construction the whole object is inert (and with JECB_OBS_DISABLED the
/// compiler deletes it outright).
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name,
             TraceRecorder& recorder = TraceRecorder::Default())
      : recorder_(recorder), active_(recorder.enabled()) {
    if (active_) {
      event_.cat = cat;
      event_.name = name;
      event_.ts_us = recorder.NowUs();
    }
  }
  ScopedSpan(const char* cat, const char* name, const char* arg1_name, int64_t arg1,
             TraceRecorder& recorder = TraceRecorder::Default())
      : ScopedSpan(cat, name, recorder) {
    Arg(arg1_name, arg1);
  }
  ScopedSpan(const char* cat, const char* name, const char* arg1_name, int64_t arg1,
             const char* arg2_name, int64_t arg2,
             TraceRecorder& recorder = TraceRecorder::Default())
      : ScopedSpan(cat, name, recorder) {
    Arg(arg1_name, arg1);
    Arg(arg2_name, arg2);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches an integer arg (first call fills arg1, second arg2; further
  /// calls are ignored). Usable any time before destruction, so results
  /// computed inside the span (candidate counts, ...) can be attached.
  void Arg(const char* name, int64_t value) {
    if (!active_ || name == nullptr) return;
    if (event_.arg1_name == nullptr) {
      event_.arg1_name = name;
      event_.arg1 = value;
    } else if (event_.arg2_name == nullptr) {
      event_.arg2_name = name;
      event_.arg2 = value;
    }
  }

  ~ScopedSpan() {
    if (active_) {
      event_.dur_us = recorder_.NowUs() - event_.ts_us;
      recorder_.Emit(event_);
    }
  }

 private:
  TraceRecorder& recorder_;
  TraceEvent event_;
  bool active_;
};

}  // namespace jecb

// Instrumentation macros. Categories group related spans for trace_stats
// rollups and Perfetto filtering; keep them short and stable ("jecb",
// "runtime", "pool", "schism", "horticulture", "eval").
#if defined(JECB_OBS_DISABLED)
#define JECB_SPAN(cat, name)
#define JECB_SPAN1(cat, name, k1, v1)
#define JECB_SPAN2(cat, name, k1, v1, k2, v2)
#define JECB_INSTANT(cat, name)
#define JECB_INSTANT1(cat, name, k1, v1)
#define JECB_INSTANT2(cat, name, k1, v1, k2, v2)
#define JECB_COUNTER(cat, name, value)
#else
#define JECB_OBS_CONCAT2(a, b) a##b
#define JECB_OBS_CONCAT(a, b) JECB_OBS_CONCAT2(a, b)
#define JECB_SPAN(cat, name) \
  ::jecb::ScopedSpan JECB_OBS_CONCAT(jecb_obs_span_, __LINE__)(cat, name)
#define JECB_SPAN1(cat, name, k1, v1) \
  ::jecb::ScopedSpan JECB_OBS_CONCAT(jecb_obs_span_, __LINE__)(cat, name, k1, (v1))
#define JECB_SPAN2(cat, name, k1, v1, k2, v2)                                  \
  ::jecb::ScopedSpan JECB_OBS_CONCAT(jecb_obs_span_, __LINE__)(cat, name, k1, \
                                                               (v1), k2, (v2))
#define JECB_INSTANT(cat, name) ::jecb::TraceRecorder::Default().Instant(cat, name)
#define JECB_INSTANT1(cat, name, k1, v1) \
  ::jecb::TraceRecorder::Default().Instant(cat, name, k1, (v1))
#define JECB_INSTANT2(cat, name, k1, v1, k2, v2) \
  ::jecb::TraceRecorder::Default().Instant(cat, name, k1, (v1), k2, (v2))
#define JECB_COUNTER(cat, name, value) \
  ::jecb::TraceRecorder::Default().Counter(cat, name, (value))
#endif
