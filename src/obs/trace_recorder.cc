#include "obs/trace_recorder.h"

#include <algorithm>
#include <fstream>

#include "obs/trace_export.h"

namespace jecb {

namespace {

std::atomic<uint64_t> g_next_recorder_id{1};

/// One-entry per-thread cache of (recorder, generation) -> buffer, so the
/// hot Emit path touches no lock. A different recorder instance or a Reset()
/// generation bump falls back to the registry lookup.
struct TlsCache {
  uint64_t recorder_id = 0;
  uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local TlsCache tls_cache;

}  // namespace

/// Single-producer ring buffer. Only the owning thread writes (slot store
/// then release-store of count); collectors acquire-load count and read
/// fully published slots. The buffer outlives its thread: the registry owns
/// it, so events from joined threads survive until Reset().
struct TraceRecorder::ThreadBuffer {
  ThreadBuffer(uint32_t tid, size_t capacity) : tid(tid), slots(capacity) {}

  void Push(const TraceEvent& e) {
    const uint64_t c = count.load(std::memory_order_relaxed);
    slots[c % slots.size()] = e;
    count.store(c + 1, std::memory_order_release);
  }

  const uint32_t tid;
  std::atomic<uint64_t> count{0};  ///< total events ever pushed
  uint64_t drained = 0;  ///< Drain() watermark; guarded by the recorder's mu_
  std::vector<TraceEvent> slots;
};

TraceRecorder::TraceRecorder()
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

void TraceRecorder::Enable(size_t events_per_thread) {
  if (!kObsCompiledIn) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_per_thread_ = std::max<size_t>(events_per_thread, 2);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() { enabled_.store(false, std::memory_order_relaxed); }

const char* TraceRecorder::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return interned_.emplace(s).first->c_str();
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  TlsCache& cache = tls_cache;
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  if (cache.recorder_id == id_ && cache.generation == gen) {
    return static_cast<ThreadBuffer*>(cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ThreadBuffer* buffer;
  auto it = by_thread_.find(std::this_thread::get_id());
  if (it != by_thread_.end()) {
    buffer = it->second;
  } else {
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        static_cast<uint32_t>(buffers_.size()), events_per_thread_));
    buffer = buffers_.back().get();
    by_thread_.emplace(std::this_thread::get_id(), buffer);
  }
  cache.recorder_id = id_;
  cache.generation = generation_.load(std::memory_order_relaxed);
  cache.buffer = buffer;
  return buffer;
}

void TraceRecorder::Emit(const TraceEvent& event) {
  if (!enabled()) return;
  BufferForThisThread()->Push(event);
}

void TraceRecorder::Instant(const char* cat, const char* name, const char* arg1_name,
                            int64_t arg1, const char* arg2_name, int64_t arg2) {
  if (!enabled()) return;
  TraceEvent e;
  e.kind = TraceEventKind::kInstant;
  e.cat = cat;
  e.name = name;
  e.ts_us = NowUs();
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  Emit(e);
}

void TraceRecorder::Counter(const char* cat, const char* name, int64_t value) {
  if (!enabled()) return;
  TraceEvent e;
  e.kind = TraceEventKind::kCounter;
  e.cat = cat;
  e.name = name;
  e.ts_us = NowUs();
  e.arg1_name = "value";
  e.arg1 = value;
  Emit(e);
}

void TraceRecorder::Span(const char* cat, const char* name, uint64_t ts_us,
                         uint64_t dur_us, const char* arg1_name, int64_t arg1,
                         const char* arg2_name, int64_t arg2) {
  if (!enabled()) return;
  TraceEvent e;
  e.kind = TraceEventKind::kSpan;
  e.cat = cat;
  e.name = name;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  Emit(e);
}

std::vector<CollectedEvent> TraceRecorder::Collect() const {
  std::vector<CollectedEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    const uint64_t n = buffer->count.load(std::memory_order_acquire);
    const uint64_t capacity = buffer->slots.size();
    const uint64_t kept = std::min(n, capacity);
    for (uint64_t i = n - kept; i < n; ++i) {
      CollectedEvent ce;
      ce.event = buffer->slots[i % capacity];
      ce.tid = buffer->tid;
      ce.seq = i;
      out.push_back(ce);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CollectedEvent& a, const CollectedEvent& b) {
              if (a.event.ts_us != b.event.ts_us) return a.event.ts_us < b.event.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return out;
}

std::vector<CollectedEvent> TraceRecorder::Drain() {
  std::vector<CollectedEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    const uint64_t n = buffer->count.load(std::memory_order_acquire);
    const uint64_t capacity = buffer->slots.size();
    const uint64_t oldest = n - std::min(n, capacity);
    for (uint64_t i = std::max(buffer->drained, oldest); i < n; ++i) {
      CollectedEvent ce;
      ce.event = buffer->slots[i % capacity];
      ce.tid = buffer->tid;
      ce.seq = i;
      out.push_back(ce);
    }
    buffer->drained = n;
  }
  std::sort(out.begin(), out.end(),
            [](const CollectedEvent& a, const CollectedEvent& b) {
              if (a.event.ts_us != b.event.ts_us) return a.event.ts_us < b.event.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return out;
}

void TraceRecorder::SetThreadName(std::string_view name) {
  if (!kObsCompiledIn) return;
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[buffer->tid] = std::string(name);
}

std::vector<std::pair<uint32_t, std::string>> TraceRecorder::ThreadNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {thread_names_.begin(), thread_names_.end()};
}

uint64_t TraceRecorder::dropped() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    const uint64_t n = buffer->count.load(std::memory_order_acquire);
    const uint64_t capacity = buffer->slots.size();
    if (n > capacity) total += n - capacity;
  }
  return total;
}

size_t TraceRecorder::num_thread_buffers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

void TraceRecorder::Reset() {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  by_thread_.clear();
  thread_names_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

std::string TraceRecorder::RenderChromeTrace() const {
  return ChromeTraceJson(Collect());
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  return WriteTextFile(path, RenderChromeTrace());
}

}  // namespace jecb
