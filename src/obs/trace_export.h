// Chrome trace-event export and (re-)import.
//
// ChromeTraceJson renders collected events in the Trace Event Format that
// Perfetto and chrome://tracing load directly. ParseChromeTrace reads such a
// file back (a small, dependency-free JSON subset parser — enough for any
// file this repo writes plus hand-written fixtures), and RollupSpans folds
// the parsed spans into per-(category, name) duration totals so tests and
// tools/trace_stats can validate exporter output without a browser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace_recorder.h"

namespace jecb {

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters) — no surrounding quotes.
void AppendJsonEscaped(std::string* out, std::string_view s);
std::string JsonEscape(std::string_view s);

/// Writes `content` to `path`; false on I/O failure.
bool WriteTextFile(const std::string& path, std::string_view content);

/// Renders events (as returned by TraceRecorder::Collect) as one
/// self-contained Chrome trace JSON object.
std::string ChromeTraceJson(const std::vector<CollectedEvent>& events);

/// One process track of a merged cluster trace: the events of one OS
/// process, plus the metadata Perfetto uses to label its track.
struct ProcessTrace {
  int64_t pid = 0;
  std::string name;  ///< Perfetto process_name ("coordinator", "shard-2", ...)
  /// This process's recorder clock minus the reference (coordinator) clock,
  /// as estimated from the Hello handshake round-trip. Subtracted from every
  /// event timestamp at export so all tracks share one timebase.
  int64_t clock_offset_us = 0;
  std::vector<std::pair<uint32_t, std::string>> thread_names;
  std::vector<CollectedEvent> events;
};

/// Renders a merged multi-process Chrome trace: one process track per
/// ProcessTrace (real pids, "M" process_name/thread_name metadata) with
/// every event timestamp shifted into the reference timebase via
/// clock_offset_us (clamped at zero). Loadable in Perfetto; spans carrying a
/// "txn" arg correlate across tracks.
std::string ClusterTraceJson(const std::vector<ProcessTrace>& processes);

/// One event read back from a Chrome trace file. Only the fields the
/// exporter writes are parsed; arg values must be numbers (others are
/// skipped).
struct ChromeTraceEvent {
  std::string name;
  std::string cat;
  std::string ph;  ///< "X" span, "i" instant, "C" counter
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  int64_t pid = 0;
  int64_t tid = 0;
  std::vector<std::pair<std::string, double>> args;
  /// String-valued args (e.g. the "name" of "M" metadata events).
  std::vector<std::pair<std::string, std::string>> sargs;
};

/// Parses a Chrome trace JSON document (either {"traceEvents":[...]} or a
/// bare top-level array). Returns false and sets `error` on malformed
/// input.
bool ParseChromeTrace(std::string_view json, std::vector<ChromeTraceEvent>* out,
                      std::string* error);

/// Per-(category, name) aggregation of "X" (span) events.
struct SpanRollup {
  std::string cat;
  std::string name;
  uint64_t count = 0;
  uint64_t total_us = 0;
  uint64_t max_us = 0;

  double mean_us() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_us) / static_cast<double>(count);
  }
};

/// Groups span events by (cat, name), sorted by total duration descending
/// (ties broken by name, then category, ascending).
std::vector<SpanRollup> RollupSpans(const std::vector<ChromeTraceEvent>& events);

}  // namespace jecb
