#include "obs/metrics_registry.h"

#include <cstdio>

#include "obs/trace_export.h"

namespace jecb {

namespace {

/// Shortest round-trip-ish formatting for gauge/sum values: integral values
/// print without a decimal point, others with up to 6 significant decimals.
std::string FormatMetricValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Splits "family{label=\"x\"}" into family and the inner label list
/// ("label=\"x\"", empty when unlabeled).
void SplitName(std::string_view name, std::string_view* family,
               std::string_view* labels) {
  size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    *family = name;
    *labels = {};
    return;
  }
  *family = name.substr(0, brace);
  std::string_view rest = name.substr(brace + 1);
  if (!rest.empty() && rest.back() == '}') rest.remove_suffix(1);
  *labels = rest;
}

/// "family_bucket{<labels>,le=\"32\"}" — merging the baked-in labels with
/// the le label.
std::string BucketSeries(std::string_view family, std::string_view labels,
                         const std::string& le) {
  std::string out(family);
  out += "_bucket{";
  if (!labels.empty()) {
    out += labels;
    out += ',';
  }
  out += "le=\"" + le + "\"}";
  return out;
}

std::string Suffixed(std::string_view family, std::string_view labels,
                     const char* suffix) {
  std::string out(family);
  out += suffix;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  return out;
}

}  // namespace

std::string_view PrometheusFamily(std::string_view name) {
  size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(std::string_view name,
                                                     Kind kind,
                                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.help = std::string(help);
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<std::atomic<uint64_t>>(0);
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<std::atomic<double>>(0.0);
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.help.empty() && !help.empty()) {
    it->second.help = std::string(help);
  }
  return it->second;
}

std::atomic<uint64_t>& MetricsRegistry::Counter(std::string_view name,
                                                std::string_view help) {
  Entry& e = GetOrCreate(name, Kind::kCounter, help);
  if (e.counter == nullptr) {
    // Kind mismatch with an existing metric: fall back to a throwaway so
    // callers never crash; the original metric keeps its identity.
    static std::atomic<uint64_t> sink{0};
    return sink;
  }
  return *e.counter;
}

std::atomic<double>& MetricsRegistry::Gauge(std::string_view name,
                                            std::string_view help) {
  Entry& e = GetOrCreate(name, Kind::kGauge, help);
  if (e.gauge == nullptr) {
    static std::atomic<double> sink{0.0};
    return sink;
  }
  return *e.gauge;
}

LatencyHistogram& MetricsRegistry::Histogram(std::string_view name,
                                             std::string_view help) {
  Entry& e = GetOrCreate(name, Kind::kHistogram, help);
  if (e.histogram == nullptr) {
    static LatencyHistogram sink;
    return sink;
  }
  return *e.histogram;
}

std::vector<MetricsRegistry::ScalarSample> MetricsRegistry::SnapshotScalars() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ScalarSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    ScalarSample s;
    s.name = name;
    switch (entry.kind) {
      case Kind::kCounter:
        s.count = entry.counter->load(std::memory_order_relaxed);
        break;
      case Kind::kGauge:
        s.is_gauge = true;
        s.value = entry.gauge->load(std::memory_order_relaxed);
        break;
      case Kind::kHistogram:
        continue;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::ImportScalars(const std::vector<ScalarSample>& samples) {
  for (const ScalarSample& s : samples) {
    if (s.is_gauge) {
      Gauge(s.name).store(s.value, std::memory_order_relaxed);
    } else {
      Counter(s.name).store(s.count, std::memory_order_relaxed);
    }
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_family;
  for (const auto& [name, entry] : entries_) {
    std::string_view family;
    std::string_view labels;
    SplitName(name, &family, &labels);
    if (family != last_family) {
      last_family = std::string(family);
      if (!entry.help.empty()) {
        out += "# HELP ";
        out += family;
        out += ' ';
        out += entry.help;
        out += '\n';
      }
      out += "# TYPE ";
      out += family;
      switch (entry.kind) {
        case Kind::kCounter: out += " counter\n"; break;
        case Kind::kGauge: out += " gauge\n"; break;
        case Kind::kHistogram: out += " histogram\n"; break;
      }
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += name + ' ' +
               std::to_string(entry.counter->load(std::memory_order_relaxed)) + '\n';
        break;
      case Kind::kGauge:
        out += name + ' ' +
               FormatMetricValue(entry.gauge->load(std::memory_order_relaxed)) + '\n';
        break;
      case Kind::kHistogram: {
        const HistogramData data = entry.histogram->Snapshot();
        size_t highest = 0;
        for (size_t i = 0; i < HistogramData::kNumBuckets; ++i) {
          if (data.buckets[i] != 0) highest = i;
        }
        uint64_t cumulative = 0;
        for (size_t i = 0; i <= highest; ++i) {
          cumulative += data.buckets[i];
          // Bucket i covers [2^(i-1), 2^i) µs, so its upper bound is 2^i.
          out += BucketSeries(family, labels, std::to_string(1ULL << i)) + ' ' +
                 std::to_string(cumulative) + '\n';
        }
        out += BucketSeries(family, labels, "+Inf") + ' ' +
               std::to_string(data.count) + '\n';
        out += Suffixed(family, labels, "_sum") + ' ' +
               std::to_string(data.sum_us) + '\n';
        out += Suffixed(family, labels, "_count") + ' ' +
               std::to_string(data.count) + '\n';
        break;
      }
    }
  }
  return out;
}

bool MetricsRegistry::WritePrometheus(const std::string& path) const {
  return WriteTextFile(path, RenderPrometheus());
}

}  // namespace jecb
