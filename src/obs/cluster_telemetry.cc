#include "obs/cluster_telemetry.h"

#include <unistd.h>

#include <algorithm>

namespace jecb {

ClusterTelemetry& ClusterTelemetry::Default() {
  static ClusterTelemetry* instance = new ClusterTelemetry();
  return *instance;
}

void ClusterTelemetry::Ingest(RemoteProcessTelemetry&& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  RemoteProcessTelemetry& rec = by_pid_[batch.pid];
  rec.pid = batch.pid;
  if (batch.shard >= 0) rec.shard = batch.shard;
  if (!batch.name.empty()) rec.name = std::move(batch.name);
  rec.clock_offset_us = batch.clock_offset_us;
  rec.dropped = std::max(rec.dropped, batch.dropped);
  rec.last_now_us = std::max(rec.last_now_us, batch.last_now_us);
  for (auto& tn : batch.thread_names) {
    const bool known =
        std::any_of(rec.thread_names.begin(), rec.thread_names.end(),
                    [&](const auto& p) { return p.first == tn.first; });
    if (!known) rec.thread_names.push_back(std::move(tn));
  }
  if (!batch.metrics.empty()) rec.metrics = std::move(batch.metrics);
  rec.events.insert(rec.events.end(),
                    std::make_move_iterator(batch.events.begin()),
                    std::make_move_iterator(batch.events.end()));
  if (rec.events.size() > kMaxEventsPerProcess) {
    const size_t excess = rec.events.size() - kMaxEventsPerProcess;
    rec.events.erase(rec.events.begin(),
                     rec.events.begin() + static_cast<ptrdiff_t>(excess));
    rec.dropped += excess;
  }
}

std::vector<RemoteProcessTelemetry> ClusterTelemetry::Snapshot() const {
  std::vector<RemoteProcessTelemetry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(by_pid_.size());
    for (const auto& [pid, rec] : by_pid_) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const RemoteProcessTelemetry& a, const RemoteProcessTelemetry& b) {
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.pid < b.pid;
            });
  return out;
}

size_t ClusterTelemetry::num_processes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_pid_.size();
}

size_t ClusterTelemetry::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [pid, rec] : by_pid_) total += rec.events.size();
  return total;
}

void ClusterTelemetry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  by_pid_.clear();
}

std::string ClusterTelemetry::RenderRemoteMetrics() const {
  // Replay every remote snapshot into a scratch registry and let the
  // existing renderer handle family grouping / formatting. Senders label
  // their series with the shard, so names are cluster-unique.
  MetricsRegistry scratch;
  for (const RemoteProcessTelemetry& rec : Snapshot()) {
    scratch.ImportScalars(rec.metrics);
  }
  return scratch.RenderPrometheus();
}

std::vector<ProcessTrace> ClusterTelemetry::BuildProcessTraces(
    std::string_view local_name, const TraceRecorder& recorder) const {
  std::vector<ProcessTrace> out;
  ProcessTrace local;
  local.pid = static_cast<int64_t>(getpid());
  local.name = std::string(local_name);
  local.clock_offset_us = 0;
  local.thread_names = recorder.ThreadNames();
  local.events = recorder.Collect();
  out.push_back(std::move(local));
  for (RemoteProcessTelemetry& rec : Snapshot()) {
    ProcessTrace p;
    p.pid = rec.pid;
    p.name = rec.name.empty() ? "shard-" + std::to_string(rec.shard) : rec.name;
    p.clock_offset_us = rec.clock_offset_us;
    p.thread_names = std::move(rec.thread_names);
    p.events = std::move(rec.events);
    out.push_back(std::move(p));
  }
  return out;
}

std::string ClusterTelemetry::RenderClusterTrace(
    std::string_view local_name, const TraceRecorder& recorder) const {
  return ClusterTraceJson(BuildProcessTraces(local_name, recorder));
}

bool ClusterTelemetry::WriteClusterTrace(const std::string& path,
                                         std::string_view local_name,
                                         const TraceRecorder& recorder) const {
  return WriteTextFile(path, RenderClusterTrace(local_name, recorder));
}

}  // namespace jecb
