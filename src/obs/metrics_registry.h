// Process-wide metrics registry: named counters, gauges, and latency
// histograms with Prometheus text exposition. Registration takes a lock;
// the returned references are stable for the registry's lifetime, so hot
// paths grab a handle once and then mutate a bare atomic.
//
// Naming convention: Prometheus metric names, optionally with a literal
// label block baked into the name — e.g.
//   registry.Counter("jecb_replay_committed_total{label=\"jecb-k8\"}")
// Series that differ only in labels form one family (the name before '{')
// and share one HELP/TYPE header in the exposition output.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"

namespace jecb {

/// Family name of a (possibly labeled) metric: everything before '{'.
std::string_view PrometheusFamily(std::string_view name);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The registry benches and the CLI dump via --metrics_out.
  static MetricsRegistry& Default();

  /// Finds or creates the named metric. `help` is attached to the family
  /// the first time a non-empty value is supplied. If the name already
  /// exists with a different kind, the existing metric wins (and the
  /// mismatch is ignored) — callers are expected to keep names unique.
  std::atomic<uint64_t>& Counter(std::string_view name, std::string_view help = "");
  std::atomic<double>& Gauge(std::string_view name, std::string_view help = "");
  LatencyHistogram& Histogram(std::string_view name, std::string_view help = "");

  void AddCounter(std::string_view name, uint64_t delta) {
    Counter(name).fetch_add(delta, std::memory_order_relaxed);
  }
  void SetGauge(std::string_view name, double value) {
    Gauge(name).store(value, std::memory_order_relaxed);
  }

  /// Prometheus text exposition (version 0.0.4) of every registered metric,
  /// sorted by name; deterministic for golden tests. Histograms render as
  /// cumulative `_bucket{le=...}` series (octave upper bounds, in µs) plus
  /// `_sum` and `_count`.
  std::string RenderPrometheus() const;
  bool WritePrometheus(const std::string& path) const;

  /// One scalar series as captured by SnapshotScalars.
  struct ScalarSample {
    std::string name;
    bool is_gauge = false;
    uint64_t count = 0;  ///< counters
    double value = 0.0;  ///< gauges
  };
  /// Quiesced snapshot of every counter and gauge, sorted by name.
  /// Histograms are skipped (they don't ship over the telemetry wire).
  std::vector<ScalarSample> SnapshotScalars() const;
  /// Replays a snapshot into this registry (counter stores, gauge stores) —
  /// used to rebuild a shard's series on the coordinator side.
  void ImportScalars(const std::vector<ScalarSample>& samples);

  size_t size() const;
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<std::atomic<uint64_t>> counter;
    std::unique_ptr<std::atomic<double>> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& GetOrCreate(std::string_view name, Kind kind, std::string_view help);

  mutable std::mutex mu_;
  /// Ordered so RenderPrometheus groups label variants of a family together
  /// without extra work.
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace jecb
