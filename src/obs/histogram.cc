#include "obs/histogram.h"

#include <cmath>

namespace jecb {

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil): the q-quantile of n
  // observations is the smallest value with at least ceil(q*n) observations
  // at or below it. Truncating instead of ceiling picked one observation
  // too low whenever q*n was fractional (q=0.95, n=10 -> rank 9, not 10).
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Linear interpolation inside [lo, hi): bucket 0 is [0, 1).
      double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << (i - 1));
      double hi = static_cast<double>(1ULL << i);
      double frac = static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_us);
}

void HistogramData::Merge(const HistogramData& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum_us += other.sum_us;
  if (other.max_us > max_us) max_us = other.max_us;
}

HistogramData LatencyHistogram::Snapshot() const {
  HistogramData out;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum_us = sum_us_.load(std::memory_order_relaxed);
  out.max_us = max_us_.load(std::memory_order_relaxed);
  return out;
}

void LatencyHistogram::Merge(const HistogramData& data) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (data.buckets[i] != 0) {
      buckets_[i].fetch_add(data.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(data.count, std::memory_order_relaxed);
  sum_us_.fetch_add(data.sum_us, std::memory_order_relaxed);
  BumpMax(data.max_us);
}

}  // namespace jecb
