// Coordinator-side sink for telemetry harvested from shard child processes.
//
// Each forked ShardServer records spans and metrics into its own process's
// TraceRecorder / MetricsRegistry; the transport drains them over the wire
// (periodically and at shutdown) and feeds the decoded batches here as plain
// data — this layer is deliberately wire-agnostic so src/obs keeps zero
// dependencies (the TelemetryMsg <-> RemoteProcessTelemetry conversion lives
// in src/dist/telemetry.h). The sink merges batches per pid, keeps the
// clock-offset estimate from the Hello handshake, and can render:
//   * one merged multi-process Chrome trace (ClusterTraceJson) where every
//     remote timestamp is shifted into the coordinator's timebase, and
//   * the remote Prometheus series (shard-labeled) for the live /metrics
//     scrape endpoint, alongside the coordinator's own registry.
//
// Telemetry is observational only: nothing here feeds back into replay
// control flow, so OutcomeSignature() is identical with harvesting on or
// off.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace_export.h"
#include "obs/trace_recorder.h"

namespace jecb {

/// Accumulated telemetry of one remote process. Event name/cat/arg-name
/// pointers must be interned (TraceRecorder::Intern) by whoever builds the
/// batch — they are borrowed, exactly like live TraceEvents.
struct RemoteProcessTelemetry {
  int64_t pid = 0;
  int32_t shard = -1;
  std::string name;  ///< process_name used in the merged trace
  /// Remote recorder clock minus the coordinator recorder clock, estimated
  /// from the Hello round-trip midpoint.
  int64_t clock_offset_us = 0;
  uint64_t dropped = 0;      ///< remote ring-overwrite losses
  uint64_t last_now_us = 0;  ///< remote clock at the latest batch
  std::vector<std::pair<uint32_t, std::string>> thread_names;
  std::vector<MetricsRegistry::ScalarSample> metrics;  ///< latest snapshot
  std::vector<CollectedEvent> events;
};

class ClusterTelemetry {
 public:
  /// Oldest events beyond this many per process are discarded at ingest, so
  /// a long periodic-harvest run stays bounded (mirrors the ring-buffer
  /// bound remote processes already have).
  static constexpr size_t kMaxEventsPerProcess = 1 << 18;

  ClusterTelemetry() = default;
  ClusterTelemetry(const ClusterTelemetry&) = delete;
  ClusterTelemetry& operator=(const ClusterTelemetry&) = delete;

  /// The process-wide sink the socket transport feeds.
  static ClusterTelemetry& Default();

  /// Merges one decoded batch into the per-pid record: events append,
  /// a non-empty metrics snapshot replaces the previous one, thread names
  /// union, clock offset / staleness update.
  void Ingest(RemoteProcessTelemetry&& batch);

  /// Copies of every remote process record, sorted by (shard, pid).
  std::vector<RemoteProcessTelemetry> Snapshot() const;
  size_t num_processes() const;
  /// Total remote events currently buffered (tests / capacity checks).
  size_t num_events() const;
  void Reset();

  /// Prometheus text exposition of the latest remote metric snapshots
  /// (already shard-labeled by the sender). Concatenate after the local
  /// registry's RenderPrometheus() for the full cluster view.
  std::string RenderRemoteMetrics() const;

  /// The merged cluster trace: one process track for the calling process
  /// (its live recorder) plus one per remote process, timestamps aligned to
  /// the local timebase.
  std::vector<ProcessTrace> BuildProcessTraces(
      std::string_view local_name = "coordinator",
      const TraceRecorder& recorder = TraceRecorder::Default()) const;
  std::string RenderClusterTrace(
      std::string_view local_name = "coordinator",
      const TraceRecorder& recorder = TraceRecorder::Default()) const;
  bool WriteClusterTrace(
      const std::string& path, std::string_view local_name = "coordinator",
      const TraceRecorder& recorder = TraceRecorder::Default()) const;

 private:
  mutable std::mutex mu_;
  std::map<int64_t, RemoteProcessTelemetry> by_pid_;
};

}  // namespace jecb
