// Postmortem flight recorder: when a shard child dies abnormally (SIGTERM
// from the reap ladder, an injected crash, a transport panic), whatever its
// trace ring and metrics registry held at that moment is the only evidence
// of what it was doing. Configure() points the process at a per-shard dump
// file; Dump() writes the recent-span ring plus a metrics snapshot there as
// a Chrome-trace-compatible JSON document with extra top-level keys:
//
//   {"postmortem":{"pid":..,"shard":..,"reason":"..","dropped":..,
//                  "now_us":..},
//    "metrics":"<Prometheus text>",
//    "traceEvents":[...], "displayTimeUnit":"ms"}
//
// ParseChromeTrace skips unknown keys, so the dump loads in Perfetto AND
// round-trips through the in-repo parser; ParsePostmortemHeader recovers
// the extra fields. Dumps are written to a temp file and renamed into
// place, so a reader that sees the file sees a complete document.
//
// Dump() is called from normal (post-event-loop / pre-abort) context, never
// from a signal handler — the SIGTERM path relies on the runtime's stop
// flag, which the existing handler already sets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace jecb {

/// Arms the flight recorder: dumps go to `path`. Call once in the child
/// after fork. An empty path disarms.
void ConfigureFlightRecorder(std::string path, int32_t shard);
bool FlightRecorderConfigured();
std::string FlightRecorderPath();

/// Writes the dump (ring + metrics + reason). Returns false when disarmed
/// or on I/O failure. Safe to call more than once; the last dump wins.
bool DumpFlightRecorder(std::string_view reason);

/// Fields recovered from a dump's "postmortem" header.
struct PostmortemHeader {
  int64_t pid = 0;
  int32_t shard = -1;
  std::string reason;
  uint64_t dropped = 0;
  uint64_t now_us = 0;
};

/// Parses the "postmortem" object out of a dump document. Returns false if
/// the key is missing or malformed.
bool ParsePostmortemHeader(std::string_view json, PostmortemHeader* out);

}  // namespace jecb
