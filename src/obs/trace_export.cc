#include "obs/trace_export.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

namespace jecb {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

bool WriteTextFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

namespace {

void AppendQuoted(std::string* out, std::string_view s) {
  *out += '"';
  AppendJsonEscaped(out, s);
  *out += '"';
}

void AppendArgs(std::string* out, const TraceEvent& e) {
  if (e.arg1_name == nullptr && e.arg2_name == nullptr) return;
  *out += ",\"args\":{";
  bool first = true;
  if (e.arg1_name != nullptr) {
    AppendQuoted(out, e.arg1_name);
    *out += ':' + std::to_string(e.arg1);
    first = false;
  }
  if (e.arg2_name != nullptr) {
    if (!first) *out += ',';
    AppendQuoted(out, e.arg2_name);
    *out += ':' + std::to_string(e.arg2);
  }
  *out += '}';
}

void AppendEvent(std::string* out, int64_t pid, uint32_t tid, const TraceEvent& e,
                 uint64_t ts_us) {
  *out += "{\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
          ",\"name\":";
  AppendQuoted(out, e.name == nullptr ? "?" : e.name);
  *out += ",\"cat\":";
  AppendQuoted(out, e.cat == nullptr ? "-" : e.cat);
  *out += ",\"ts\":" + std::to_string(ts_us);
  switch (e.kind) {
    case TraceEventKind::kSpan:
      *out += ",\"ph\":\"X\",\"dur\":" + std::to_string(e.dur_us);
      break;
    case TraceEventKind::kInstant:
      *out += ",\"ph\":\"i\",\"s\":\"t\"";
      break;
    case TraceEventKind::kCounter:
      *out += ",\"ph\":\"C\"";
      break;
  }
  AppendArgs(out, e);
  *out += '}';
}

void AppendMetadata(std::string* out, int64_t pid, uint32_t tid, const char* what,
                    std::string_view name) {
  *out += "{\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
          ",\"ph\":\"M\",\"ts\":0,\"name\":\"" + what + "\",\"args\":{\"name\":";
  AppendQuoted(out, name);
  *out += "}}";
}

}  // namespace

std::string ChromeTraceJson(const std::vector<CollectedEvent>& events) {
  std::string out = "{\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    AppendEvent(&out, 0, events[i].tid, events[i].event, events[i].event.ts_us);
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string ClusterTraceJson(const std::vector<ProcessTrace>& processes) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const ProcessTrace& p : processes) {
    if (!p.name.empty()) {
      sep();
      AppendMetadata(&out, p.pid, 0, "process_name", p.name);
    }
    for (const auto& [tid, name] : p.thread_names) {
      sep();
      AppendMetadata(&out, p.pid, tid, "thread_name", name);
    }
    for (const CollectedEvent& ce : p.events) {
      const int64_t shifted =
          static_cast<int64_t>(ce.event.ts_us) - p.clock_offset_us;
      sep();
      AppendEvent(&out, p.pid, ce.tid, ce.event,
                  shifted < 0 ? 0 : static_cast<uint64_t>(shifted));
    }
  }
  out += first ? "],\"displayTimeUnit\":\"ms\"}\n" : "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

// ---- Minimal JSON subset parser -------------------------------------------

namespace {

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            // Exporter only escapes control characters; keep it simple and
            // emit the low byte (non-ASCII code points survive as '?').
            *out += code < 0x100 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(double* out) {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    return true;
  }

  /// Skips any JSON value (for fields the caller does not care about).
  bool SkipValue() {
    char c = Peek();
    if (c == '"') {
      std::string scratch;
      return ParseString(&scratch);
    }
    if (c == '{' || c == '[') {
      char open = c;
      char close = open == '{' ? '}' : ']';
      Consume(open);
      if (Consume(close)) return true;
      for (;;) {
        if (open == '{') {
          std::string key;
          if (!ParseString(&key) || !Consume(':')) return false;
        }
        if (!SkipValue()) return false;
        if (Consume(close)) return true;
        if (!Consume(',')) return Fail("expected ',' ");
      }
    }
    if (c == 't') return ConsumeWord("true");
    if (c == 'f') return ConsumeWord("false");
    if (c == 'n') return ConsumeWord("null");
    double scratch;
    return ParseNumber(&scratch);
  }

  bool ConsumeWord(std::string_view word) {
    SkipWs();
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool Fail(const char* message) {
    if (error_.empty()) {
      error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  const std::string& error() const { return error_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

bool ParseEventObject(JsonCursor* cur, ChromeTraceEvent* event) {
  if (!cur->Consume('{')) return cur->Fail("expected event object");
  if (cur->Consume('}')) return true;
  for (;;) {
    std::string key;
    if (!cur->ParseString(&key) || !cur->Consume(':')) return false;
    if (key == "name" || key == "cat" || key == "ph") {
      std::string value;
      if (!cur->ParseString(&value)) return false;
      if (key == "name") event->name = std::move(value);
      else if (key == "cat") event->cat = std::move(value);
      else event->ph = std::move(value);
    } else if (key == "ts" || key == "dur" || key == "pid" || key == "tid") {
      double value = 0.0;
      if (!cur->ParseNumber(&value)) return false;
      if (key == "ts") event->ts_us = static_cast<uint64_t>(value);
      else if (key == "dur") event->dur_us = static_cast<uint64_t>(value);
      else if (key == "pid") event->pid = static_cast<int64_t>(value);
      else event->tid = static_cast<int64_t>(value);
    } else if (key == "args") {
      if (!cur->Consume('{')) return cur->Fail("expected args object");
      if (!cur->Consume('}')) {
        for (;;) {
          std::string arg_name;
          if (!cur->ParseString(&arg_name) || !cur->Consume(':')) return false;
          if (cur->Peek() == '-' ||
              std::isdigit(static_cast<unsigned char>(cur->Peek()))) {
            double value = 0.0;
            if (!cur->ParseNumber(&value)) return false;
            event->args.emplace_back(std::move(arg_name), value);
          } else if (cur->Peek() == '"') {
            std::string value;
            if (!cur->ParseString(&value)) return false;
            event->sargs.emplace_back(std::move(arg_name), std::move(value));
          } else if (!cur->SkipValue()) {
            return false;
          }
          if (cur->Consume('}')) break;
          if (!cur->Consume(',')) return cur->Fail("expected ',' in args");
        }
      }
    } else if (!cur->SkipValue()) {
      return false;
    }
    if (cur->Consume('}')) return true;
    if (!cur->Consume(',')) return cur->Fail("expected ',' in event");
  }
}

bool ParseEventArray(JsonCursor* cur, std::vector<ChromeTraceEvent>* out) {
  if (!cur->Consume('[')) return cur->Fail("expected event array");
  if (cur->Consume(']')) return true;
  for (;;) {
    ChromeTraceEvent event;
    if (!ParseEventObject(cur, &event)) return false;
    out->push_back(std::move(event));
    if (cur->Consume(']')) return true;
    if (!cur->Consume(',')) return cur->Fail("expected ',' in array");
  }
}

}  // namespace

bool ParseChromeTrace(std::string_view json, std::vector<ChromeTraceEvent>* out,
                      std::string* error) {
  out->clear();
  JsonCursor cur(json);
  bool ok = false;
  if (cur.Peek() == '[') {
    ok = ParseEventArray(&cur, out);
  } else if (cur.Consume('{')) {
    bool saw_events = false;
    if (!cur.Consume('}')) {
      for (;;) {
        std::string key;
        if (!cur.ParseString(&key) || !cur.Consume(':')) break;
        if (key == "traceEvents") {
          if (!ParseEventArray(&cur, out)) break;
          saw_events = true;
        } else if (!cur.SkipValue()) {
          break;
        }
        if (cur.Consume('}')) {
          ok = saw_events || cur.Fail("no traceEvents key");
          break;
        }
        if (!cur.Consume(',')) {
          cur.Fail("expected ',' in document");
          break;
        }
      }
    } else {
      cur.Fail("no traceEvents key");
    }
  } else {
    cur.Fail("expected object or array");
  }
  if (!ok && error != nullptr) {
    *error = cur.error().empty() ? "malformed trace" : cur.error();
  }
  return ok;
}

std::vector<SpanRollup> RollupSpans(const std::vector<ChromeTraceEvent>& events) {
  std::map<std::pair<std::string, std::string>, SpanRollup> grouped;
  for (const ChromeTraceEvent& e : events) {
    if (e.ph != "X") continue;
    SpanRollup& r = grouped[{e.cat, e.name}];
    if (r.count == 0) {
      r.cat = e.cat;
      r.name = e.name;
    }
    ++r.count;
    r.total_us += e.dur_us;
    r.max_us = std::max(r.max_us, e.dur_us);
  }
  std::vector<SpanRollup> out;
  out.reserve(grouped.size());
  for (auto& [key, rollup] : grouped) out.push_back(std::move(rollup));
  std::sort(out.begin(), out.end(), [](const SpanRollup& a, const SpanRollup& b) {
    if (a.total_us != b.total_us) return a.total_us > b.total_us;
    if (a.name != b.name) return a.name < b.name;
    return a.cat < b.cat;
  });
  return out;
}

}  // namespace jecb
