// Fixed power-of-two-bucket latency histograms, shared by the runtime's
// per-shard metrics and the process-wide MetricsRegistry. Two shapes:
// LatencyHistogram is the concurrent accumulator (atomic buckets, relaxed
// mutators — recording never synchronizes the workload being measured);
// HistogramData is its plain, copyable snapshot, safe to merge, store in
// report structs, and render without touching atomics again.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace jecb {

/// Plain snapshot of a latency histogram: bucket i holds values in
/// [2^(i-1), 2^i) µs (bucket 0 holds 0–1 µs), so quantiles are exact to
/// within one octave and refined by linear interpolation inside the bucket.
/// 48 buckets cover > 8 years.
struct HistogramData {
  static constexpr size_t kNumBuckets = 48;

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t max_us = 0;

  double mean_us() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_us) / static_cast<double>(count);
  }

  /// Approximate quantile in µs; q in [0, 1]. 0 when empty.
  double Quantile(double q) const;

  /// Element-wise accumulation; exact and order-independent (all integers).
  void Merge(const HistogramData& other);
};

/// Concurrent histogram of microsecond latencies. All mutators are atomic
/// with relaxed ordering; readers that need a consistent view should take
/// one Snapshot() and work from that.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = HistogramData::kNumBuckets;

  void Record(uint64_t us) {
    buckets_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    BumpMax(us);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  uint64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean_us() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum_us()) / static_cast<double>(n);
  }

  /// Approximate quantile in µs; q in [0, 1]. 0 when empty.
  double Quantile(double q) const { return Snapshot().Quantile(q); }

  /// One consistent copy of the current contents. Counters advance with
  /// relaxed ordering, so a snapshot taken while writers are live is only
  /// approximately consistent; quiesce first for exact accounting.
  HistogramData Snapshot() const;

  /// Accumulates `other` into this histogram. `other` is snapshotted first,
  /// so self-merge is well-defined (it exactly doubles every counter).
  void Merge(const LatencyHistogram& other) { Merge(other.Snapshot()); }
  void Merge(const HistogramData& data);

  static size_t BucketOf(uint64_t us) {
    if (us == 0) return 0;
    size_t b = static_cast<size_t>(64 - __builtin_clzll(us));
    return b >= kNumBuckets ? kNumBuckets - 1 : b;
  }

 private:
  void BumpMax(uint64_t us) {
    uint64_t prev = max_us_.load(std::memory_order_relaxed);
    while (us > prev &&
           !max_us_.compare_exchange_weak(prev, us, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

}  // namespace jecb
