#include "graph/partitioner.h"

#include <algorithm>
#include <numeric>
#include <random>

namespace jecb {

namespace {

/// One coarsening level: heavy-edge matching, then contraction.
/// Returns the coarse graph and fills `coarse_of` (fine node -> coarse node).
Graph Coarsen(const Graph& g, std::mt19937_64* rng, std::vector<NodeId>* coarse_of) {
  const size_t n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), *rng);

  constexpr NodeId kUnmatched = ~NodeId{0};
  std::vector<NodeId> match(n, kUnmatched);
  for (NodeId u : order) {
    if (match[u] != kUnmatched) continue;
    NodeId best = u;
    uint64_t best_w = 0;
    for (const auto* nb = g.neighbors_begin(u); nb != g.neighbors_end(u); ++nb) {
      if (match[nb->node] == kUnmatched && nb->node != u && nb->weight > best_w) {
        best = nb->node;
        best_w = nb->weight;
      }
    }
    match[u] = best;
    match[best] = u;
  }

  coarse_of->assign(n, 0);
  NodeId next = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (match[u] >= u) {  // representative: self-matched or smaller index
      (*coarse_of)[u] = next++;
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (match[u] < u) (*coarse_of)[u] = (*coarse_of)[match[u]];
  }

  GraphBuilder builder(next, 0);
  for (NodeId u = 0; u < n; ++u) {
    builder.AddNodeWeight((*coarse_of)[u], g.node_weight(u));
    for (const auto* nb = g.neighbors_begin(u); nb != g.neighbors_end(u); ++nb) {
      if (nb->node > u) {
        NodeId cu = (*coarse_of)[u];
        NodeId cv = (*coarse_of)[nb->node];
        if (cu != cv) builder.AddEdge(cu, cv, nb->weight);
      }
    }
  }
  return builder.Build();
}

/// Greedy initial assignment: heaviest nodes first, each to the partition it
/// is most connected to among those with room, breaking ties by load.
std::vector<int32_t> InitialPartition(const Graph& g, int32_t k, uint64_t max_load,
                                      std::mt19937_64* rng) {
  const size_t n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Shuffle before the stable sort so equal-weight nodes are visited in a
  // different order on each restart.
  std::shuffle(order.begin(), order.end(), *rng);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return g.node_weight(a) > g.node_weight(b);
  });

  std::vector<int32_t> part(n, -1);
  std::vector<uint64_t> load(k, 0);
  std::vector<uint64_t> conn(k);
  for (NodeId u : order) {
    std::fill(conn.begin(), conn.end(), 0);
    for (const auto* nb = g.neighbors_begin(u); nb != g.neighbors_end(u); ++nb) {
      if (part[nb->node] >= 0) conn[part[nb->node]] += nb->weight;
    }
    int32_t best = -1;
    for (int32_t p = 0; p < k; ++p) {
      bool fits = load[p] + g.node_weight(u) <= max_load;
      if (best == -1) {
        if (fits) best = p;
        continue;
      }
      if (!fits) continue;
      if (conn[p] > conn[best] || (conn[p] == conn[best] && load[p] < load[best])) {
        best = p;
      }
    }
    if (best == -1) {
      // Nothing fits (oversized node); take the least-loaded partition.
      best = static_cast<int32_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    part[u] = best;
    load[best] += g.node_weight(u);
  }
  return part;
}

/// FM-style refinement sweeps: move nodes to their most-connected partition
/// when it strictly reduces the cut and keeps balance.
void Refine(const Graph& g, int32_t k, uint64_t max_load, int passes,
            std::mt19937_64* rng, std::vector<int32_t>* part) {
  const size_t n = g.num_nodes();
  std::vector<uint64_t> load(k, 0);
  for (NodeId u = 0; u < n; ++u) load[(*part)[u]] += g.node_weight(u);

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint64_t> conn(k);

  for (int pass = 0; pass < passes; ++pass) {
    std::shuffle(order.begin(), order.end(), *rng);
    uint64_t moves = 0;
    for (NodeId u : order) {
      if (g.degree(u) == 0) continue;
      std::fill(conn.begin(), conn.end(), 0);
      for (const auto* nb = g.neighbors_begin(u); nb != g.neighbors_end(u); ++nb) {
        conn[(*part)[nb->node]] += nb->weight;
      }
      int32_t cur = (*part)[u];
      int32_t best = cur;
      for (int32_t p = 0; p < k; ++p) {
        if (p == cur) continue;
        if (load[p] + g.node_weight(u) > max_load) continue;
        if (conn[p] > conn[best] ||
            (best != cur && conn[p] == conn[best] && load[p] < load[best])) {
          best = p;
        }
      }
      if (best != cur && conn[best] > conn[cur]) {
        load[cur] -= g.node_weight(u);
        load[best] += g.node_weight(u);
        (*part)[u] = best;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
}

}  // namespace

namespace {

std::vector<int32_t> PartitionGraphOnce(const Graph& g,
                                        const GraphPartitionOptions& options) {
  const int32_t k = options.num_parts;
  std::mt19937_64 rng(options.seed);

  const uint64_t ideal =
      (g.total_node_weight() + static_cast<uint64_t>(k) - 1) / static_cast<uint64_t>(k);
  const auto max_load = static_cast<uint64_t>(
      static_cast<double>(ideal) * options.balance_tolerance) + 1;

  // Coarsening phase.
  std::vector<Graph> levels;
  std::vector<std::vector<NodeId>> mappings;
  levels.push_back(g);  // copy: levels[0] is the input graph
  const size_t target = std::max(options.coarse_target, static_cast<size_t>(4) * k);
  while (levels.back().num_nodes() > target) {
    std::vector<NodeId> coarse_of;
    Graph coarse = Coarsen(levels.back(), &rng, &coarse_of);
    if (coarse.num_nodes() >= levels.back().num_nodes() * 95 / 100) {
      break;  // matching stalled (e.g. star graphs); stop coarsening
    }
    mappings.push_back(std::move(coarse_of));
    levels.push_back(std::move(coarse));
  }

  // Initial partition at the coarsest level: several randomized attempts,
  // keep the lowest cut. The coarse graph is tiny, so restarts are cheap
  // and they protect against unlucky greedy orders.
  std::vector<int32_t> part;
  uint64_t best_cut = ~uint64_t{0};
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::vector<int32_t> trial = InitialPartition(levels.back(), k, max_load, &rng);
    Refine(levels.back(), k, max_load, options.refine_passes * 2, &rng, &trial);
    uint64_t cut = CutWeight(levels.back(), trial);
    if (cut < best_cut) {
      best_cut = cut;
      part = std::move(trial);
    }
  }

  // Uncoarsen with refinement at each level.
  for (size_t level = levels.size() - 1; level-- > 0;) {
    const std::vector<NodeId>& map = mappings[level];
    std::vector<int32_t> fine(levels[level].num_nodes());
    for (NodeId u = 0; u < fine.size(); ++u) fine[u] = part[map[u]];
    part = std::move(fine);
    Refine(levels[level], k, max_load, options.refine_passes, &rng, &part);
  }
  return part;
}

}  // namespace

std::vector<int32_t> PartitionGraph(const Graph& g,
                                    const GraphPartitionOptions& options) {
  if (options.num_parts <= 1 || g.num_nodes() == 0) {
    return std::vector<int32_t>(g.num_nodes(), 0);
  }
  // Independent multilevel restarts with derived seeds: different matching
  // orders explore different coarse structures, which matters when the
  // natural cluster count equals the partition count (TPC-C warehouses).
  std::vector<int32_t> best;
  uint64_t best_cut = ~uint64_t{0};
  const int restarts = std::max(options.restarts, 1);
  for (int r = 0; r < restarts; ++r) {
    GraphPartitionOptions attempt = options;
    attempt.seed = options.seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(r);
    std::vector<int32_t> part = PartitionGraphOnce(g, attempt);
    uint64_t cut = CutWeight(g, part);
    if (cut < best_cut) {
      best_cut = cut;
      best = std::move(part);
    }
  }
  return best;
}

PartitionQuality MeasurePartition(const Graph& g, const std::vector<int32_t>& assignment,
                                  int32_t num_parts) {
  PartitionQuality q;
  q.cut = CutWeight(g, assignment);
  std::vector<uint64_t> load(num_parts, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) load[assignment[u]] += g.node_weight(u);
  q.max_part_weight = *std::max_element(load.begin(), load.end());
  q.min_part_weight = *std::min_element(load.begin(), load.end());
  double ideal = static_cast<double>(g.total_node_weight()) / num_parts;
  q.imbalance = ideal > 0 ? static_cast<double>(q.max_part_weight) / ideal : 0.0;
  return q;
}

}  // namespace jecb
