// Multilevel k-way min-cut graph partitioning in the METIS family:
// heavy-edge-matching coarsening, greedy initial assignment, and
// Fiduccia–Mattheyses-style boundary refinement during uncoarsening.
// Used by the Schism baseline (tuple graph) and by JECB's statistics
// fallback (root-attribute value graph).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace jecb {

struct GraphPartitionOptions {
  int32_t num_parts = 2;
  /// Maximum allowed part weight as a multiple of the perfectly balanced
  /// weight.
  double balance_tolerance = 1.10;
  /// Stop coarsening once the graph has at most max(coarse_target,
  /// 4 * num_parts) nodes. Deep coarsening matters: natural clusters (e.g.
  /// one TPC-C warehouse) must collapse into few supernodes so the initial
  /// assignment can place whole clusters.
  size_t coarse_target = 64;
  /// Refinement sweeps per uncoarsening level.
  int refine_passes = 6;
  /// Full multilevel restarts (different matching orders); best cut wins.
  int restarts = 3;
  uint64_t seed = 1;
};

/// Partition assignment per node, in [0, num_parts).
std::vector<int32_t> PartitionGraph(const Graph& g, const GraphPartitionOptions& options);

/// Statistics of an assignment (for tests and reporting).
struct PartitionQuality {
  uint64_t cut = 0;
  uint64_t max_part_weight = 0;
  uint64_t min_part_weight = 0;
  double imbalance = 0.0;  // max part weight / ideal
};

PartitionQuality MeasurePartition(const Graph& g, const std::vector<int32_t>& assignment,
                                  int32_t num_parts);

}  // namespace jecb
