// Undirected weighted graph with node weights, stored CSR-style.
// Built once via GraphBuilder (which merges parallel edges), then immutable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jecb {

using NodeId = uint32_t;

/// Immutable undirected graph; parallel edges have been merged by summing
/// their weights. Self-loops are dropped at build time.
class Graph {
 public:
  struct Neighbor {
    NodeId node;
    uint64_t weight;
  };

  size_t num_nodes() const { return node_weight_.size(); }
  uint64_t node_weight(NodeId n) const { return node_weight_[n]; }
  uint64_t total_node_weight() const { return total_node_weight_; }

  /// Neighbors of `n` as a contiguous span.
  const Neighbor* neighbors_begin(NodeId n) const {
    return adjacency_.data() + offsets_[n];
  }
  const Neighbor* neighbors_end(NodeId n) const {
    return adjacency_.data() + offsets_[n + 1];
  }
  size_t degree(NodeId n) const { return offsets_[n + 1] - offsets_[n]; }
  size_t num_edges() const { return adjacency_.size() / 2; }

 private:
  friend class GraphBuilder;
  std::vector<uint64_t> node_weight_;
  std::vector<size_t> offsets_;       // size num_nodes + 1
  std::vector<Neighbor> adjacency_;   // both directions
  uint64_t total_node_weight_ = 0;
};

/// Accumulates nodes and (possibly duplicate) edges, then builds a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(size_t num_nodes, uint64_t default_node_weight = 1);

  void SetNodeWeight(NodeId n, uint64_t w) { node_weight_[n] = w; }
  void AddNodeWeight(NodeId n, uint64_t w) { node_weight_[n] += w; }

  /// Adds an undirected edge; duplicates accumulate, self-loops are ignored.
  /// Heavily duplicated streams (the statistics co-access graph adds one
  /// edge per co-accessed value pair per transaction) are coalesced
  /// incrementally, so the pending buffer stays near the distinct-edge
  /// count instead of the raw insertion count. Weight summation is
  /// commutative, so Build() output is unchanged.
  void AddEdge(NodeId a, NodeId b, uint64_t weight = 1);

  /// Builds the immutable graph; the builder is left empty.
  Graph Build();

  /// Buffered edges right now; an incremental coalesce may have merged
  /// duplicates already, so this is an upper bound on distinct edges and a
  /// lower bound on insertions.
  size_t num_pending_edges() const { return edges_.size(); }

 private:
  struct RawEdge {
    NodeId a;
    NodeId b;
    uint64_t w;
  };

  /// Sorts by (a, b) and merges equal pairs in place, summing weights.
  void Coalesce();

  std::vector<uint64_t> node_weight_;
  std::vector<RawEdge> edges_;
  /// Buffer size that triggers the next incremental coalesce; adapts so a
  /// mostly-distinct stream is not repeatedly re-sorted.
  size_t coalesce_threshold_;
};

/// Total weight of edges whose endpoints land in different parts.
uint64_t CutWeight(const Graph& g, const std::vector<int32_t>& assignment);

}  // namespace jecb
