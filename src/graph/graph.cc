#include "graph/graph.h"

#include <algorithm>

namespace jecb {

GraphBuilder::GraphBuilder(size_t num_nodes, uint64_t default_node_weight)
    : node_weight_(num_nodes, default_node_weight) {}

void GraphBuilder::AddEdge(NodeId a, NodeId b, uint64_t weight) {
  if (a == b) return;
  if (b < a) std::swap(a, b);
  edges_.push_back({a, b, weight});
}

Graph GraphBuilder::Build() {
  // Merge duplicate (a, b) pairs by sorting; then expand into both
  // directions for CSR adjacency.
  std::sort(edges_.begin(), edges_.end(), [](const RawEdge& x, const RawEdge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  std::vector<RawEdge> merged;
  merged.reserve(edges_.size());
  for (const RawEdge& e : edges_) {
    if (!merged.empty() && merged.back().a == e.a && merged.back().b == e.b) {
      merged.back().w += e.w;
    } else {
      merged.push_back(e);
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();

  Graph g;
  g.node_weight_ = std::move(node_weight_);
  const size_t n = g.node_weight_.size();
  for (uint64_t w : g.node_weight_) g.total_node_weight_ += w;

  std::vector<size_t> degree(n, 0);
  for (const RawEdge& e : merged) {
    ++degree[e.a];
    ++degree[e.b];
  }
  g.offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) g.offsets_[i + 1] = g.offsets_[i] + degree[i];
  g.adjacency_.resize(g.offsets_[n]);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const RawEdge& e : merged) {
    g.adjacency_[cursor[e.a]++] = {e.b, e.w};
    g.adjacency_[cursor[e.b]++] = {e.a, e.w};
  }
  return g;
}

uint64_t CutWeight(const Graph& g, const std::vector<int32_t>& assignment) {
  uint64_t cut = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto* nb = g.neighbors_begin(u); nb != g.neighbors_end(u); ++nb) {
      if (nb->node > u && assignment[u] != assignment[nb->node]) {
        cut += nb->weight;
      }
    }
  }
  return cut;
}

}  // namespace jecb
