#include "graph/graph.h"

#include <algorithm>

namespace jecb {

namespace {

// First coalesce happens once the buffer could hold a few thousand
// duplicates; below this, one final sort in Build() is cheaper.
constexpr size_t kMinCoalesceThreshold = 1 << 14;

}  // namespace

GraphBuilder::GraphBuilder(size_t num_nodes, uint64_t default_node_weight)
    : node_weight_(num_nodes, default_node_weight),
      coalesce_threshold_(kMinCoalesceThreshold) {}

void GraphBuilder::AddEdge(NodeId a, NodeId b, uint64_t weight) {
  if (a == b) return;
  if (b < a) std::swap(a, b);
  edges_.push_back({a, b, weight});
  if (edges_.size() >= coalesce_threshold_) {
    Coalesce();
    // A stream with few duplicates shrinks little; doubling relative to the
    // surviving size keeps the amortized sort cost linear either way.
    coalesce_threshold_ = std::max(kMinCoalesceThreshold, edges_.size() * 2);
  }
}

void GraphBuilder::Coalesce() {
  std::sort(edges_.begin(), edges_.end(), [](const RawEdge& x, const RawEdge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  size_t out = 0;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (out > 0 && edges_[out - 1].a == edges_[i].a &&
        edges_[out - 1].b == edges_[i].b) {
      edges_[out - 1].w += edges_[i].w;
    } else {
      edges_[out++] = edges_[i];
    }
  }
  edges_.resize(out);
}

Graph GraphBuilder::Build() {
  // Merge duplicate (a, b) pairs by sorting; then expand into both
  // directions for CSR adjacency. Incremental coalescing keeps relative
  // order of distinct pairs irrelevant (weights just sum), so the result
  // never depends on when merges happened.
  Coalesce();
  std::vector<RawEdge> merged = std::move(edges_);
  edges_ = {};

  Graph g;
  g.node_weight_ = std::move(node_weight_);
  const size_t n = g.node_weight_.size();
  for (uint64_t w : g.node_weight_) g.total_node_weight_ += w;

  std::vector<size_t> degree(n, 0);
  for (const RawEdge& e : merged) {
    ++degree[e.a];
    ++degree[e.b];
  }
  g.offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) g.offsets_[i + 1] = g.offsets_[i] + degree[i];
  g.adjacency_.resize(g.offsets_[n]);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const RawEdge& e : merged) {
    g.adjacency_[cursor[e.a]++] = {e.b, e.w};
    g.adjacency_[cursor[e.b]++] = {e.a, e.w};
  }
  return g;
}

uint64_t CutWeight(const Graph& g, const std::vector<int32_t>& assignment) {
  uint64_t cut = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto* nb = g.neighbors_begin(u); nb != g.neighbors_end(u); ++nb) {
      if (nb->node > u && assignment[u] != assignment[nb->node]) {
        cut += nb->weight;
      }
    }
  }
  return cut;
}

}  // namespace jecb
