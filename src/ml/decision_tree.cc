#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

namespace jecb {

namespace {

double Entropy(const std::vector<size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

DecisionTree DecisionTree::Train(const std::vector<std::vector<int64_t>>& features,
                                 const std::vector<int32_t>& labels,
                                 int32_t num_classes,
                                 const DecisionTreeOptions& options) {
  DecisionTree tree;
  if (features.empty()) {
    tree.nodes_.push_back(Node{});
    return tree;
  }
  const size_t num_features = features[0].size();

  // Recursive builder over index subsets.
  std::function<int32_t(std::vector<size_t>&, int)> build =
      [&](std::vector<size_t>& subset, int depth) -> int32_t {
    std::vector<size_t> counts(num_classes, 0);
    for (size_t i : subset) ++counts[labels[i]];
    int32_t majority = static_cast<int32_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());

    auto make_leaf = [&]() {
      int32_t id = static_cast<int32_t>(tree.nodes_.size());
      Node n;
      n.label = majority;
      tree.nodes_.push_back(n);
      return id;
    };

    const size_t total = subset.size();
    const double parent_entropy = Entropy(counts, total);
    if (parent_entropy == 0.0 || depth >= options.max_depth ||
        total < 2 * options.min_leaf_size ||
        tree.nodes_.size() + 2 > options.max_nodes) {
      return make_leaf();
    }

    // Best split: for each feature, sort the subset by value and sweep.
    int best_feature = -1;
    int64_t best_threshold = 0;
    double best_gain = options.min_gain;
    std::vector<size_t> sorted = subset;
    for (size_t f = 0; f < num_features; ++f) {
      std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
        return features[a][f] < features[b][f];
      });
      std::vector<size_t> left_counts(num_classes, 0);
      std::vector<size_t> right_counts = counts;
      for (size_t pos = 0; pos + 1 < total; ++pos) {
        int32_t lab = labels[sorted[pos]];
        ++left_counts[lab];
        --right_counts[lab];
        int64_t v = features[sorted[pos]][f];
        int64_t next = features[sorted[pos + 1]][f];
        if (v == next) continue;  // threshold must separate distinct values
        size_t nl = pos + 1;
        size_t nr = total - nl;
        if (nl < options.min_leaf_size || nr < options.min_leaf_size) continue;
        double gain = parent_entropy -
                      (static_cast<double>(nl) / total) * Entropy(left_counts, nl) -
                      (static_cast<double>(nr) / total) * Entropy(right_counts, nr);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = v;
        }
      }
    }
    if (best_feature < 0) return make_leaf();

    std::vector<size_t> left, right;
    for (size_t i : subset) {
      (features[i][best_feature] <= best_threshold ? left : right).push_back(i);
    }
    subset.clear();
    subset.shrink_to_fit();

    int32_t id = static_cast<int32_t>(tree.nodes_.size());
    tree.nodes_.push_back(Node{});
    tree.nodes_[id].feature = best_feature;
    tree.nodes_[id].threshold = best_threshold;
    tree.nodes_[id].label = majority;
    int32_t l = build(left, depth + 1);
    int32_t r = build(right, depth + 1);
    tree.nodes_[id].left = l;
    tree.nodes_[id].right = r;
    return id;
  };

  std::vector<size_t> all(features.size());
  std::iota(all.begin(), all.end(), 0);
  build(all, 0);
  return tree;
}

int32_t DecisionTree::Predict(const std::vector<int64_t>& features) const {
  if (nodes_.empty()) return 0;
  int32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    if (static_cast<size_t>(n.feature) >= features.size()) return n.label;
    cur = features[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[cur].label;
}

int DecisionTree::depth() const {
  std::function<int(int32_t)> depth_of = [&](int32_t id) -> int {
    if (id < 0 || nodes_[id].feature < 0) return 1;
    return 1 + std::max(depth_of(nodes_[id].left), depth_of(nodes_[id].right));
  };
  return nodes_.empty() ? 0 : depth_of(0);
}

std::string DecisionTree::ToString(const std::vector<std::string>& feature_names) const {
  std::string out;
  std::function<void(int32_t, int)> render = [&](int32_t id, int indent) {
    const Node& n = nodes_[id];
    std::string pad(indent * 2, ' ');
    if (n.feature < 0) {
      out += pad + "-> partition " + std::to_string(n.label) + "\n";
      return;
    }
    std::string fname = static_cast<size_t>(n.feature) < feature_names.size()
                            ? feature_names[n.feature]
                            : "f" + std::to_string(n.feature);
    out += pad + "if " + fname + " <= " + std::to_string(n.threshold) + ":\n";
    render(n.left, indent + 1);
    out += pad + "else:\n";
    render(n.right, indent + 1);
  };
  if (!nodes_.empty()) render(0, 0);
  return out;
}

}  // namespace jecb
