// Decision-tree classifier (C4.5 style: entropy gain, threshold splits on
// numeric features). Schism's "explanation phase" trains one per table to
// turn the tuple-level min-cut assignment into predicate rules that
// generalize to tuples outside the training trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jecb {

struct DecisionTreeOptions {
  int max_depth = 20;
  /// 1 allows per-row leaves: essential for tiny hot tables (TPC-C's
  /// 8-row WAREHOUSE) where every row needs its own partition label.
  size_t min_leaf_size = 1;
  /// A split must reduce weighted entropy by at least this much.
  double min_gain = 1e-9;
  /// Cap on tree size; growth stops when reached (resource guard).
  size_t max_nodes = 1 << 16;
};

/// Axis-aligned decision tree over int64 feature vectors.
class DecisionTree {
 public:
  /// Trains on rows `features` (all the same arity) with labels in
  /// [0, num_classes). Empty input yields a tree predicting 0.
  static DecisionTree Train(const std::vector<std::vector<int64_t>>& features,
                            const std::vector<int32_t>& labels, int32_t num_classes,
                            const DecisionTreeOptions& options = {});

  int32_t Predict(const std::vector<int64_t>& features) const;

  size_t num_nodes() const { return nodes_.size(); }
  int depth() const;

  /// Indented if/else rendering, for debugging and docs.
  std::string ToString(const std::vector<std::string>& feature_names = {}) const;

 private:
  struct Node {
    int feature = -1;        // -1: leaf
    int64_t threshold = 0;   // go left when value <= threshold
    int32_t left = -1;
    int32_t right = -1;
    int32_t label = 0;       // leaf prediction / majority
  };
  std::vector<Node> nodes_;
};

}  // namespace jecb
