// Thin RAII layer over POSIX stream sockets (Unix-domain and TCP loopback):
// everything the distributed runtime needs to listen, accept, connect and
// move whole byte ranges, and nothing more. All helpers are EINTR-safe and
// return Status/Result instead of errno so callers never consult errno
// themselves. Higher layers (net/wire.h framing, net/event_loop.h) are
// byte-stream agnostic: a Socket from ListenUnix and one from ListenTcp are
// interchangeable.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace jecb::net {

/// Move-only owner of one socket fd. Closing is idempotent; a moved-from
/// Socket holds -1 and is safe to destroy.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing (e.g. handing the fd to a child).
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close();

 private:
  int fd_ = -1;
};

/// One listen/connect endpoint. `path` is used for Unix-domain sockets,
/// `host`/`port` for TCP. A bound TCP listener created with port 0 reports
/// the kernel-assigned port back through BoundTcpPort().
struct SocketAddr {
  bool is_unix = true;
  std::string path;            ///< unix: filesystem path of the socket
  std::string host = "127.0.0.1";
  uint16_t port = 0;           ///< tcp: 0 lets the kernel pick on Listen

  std::string ToString() const;
};

/// Binds and listens on `addr`. For unix addresses any stale socket file is
/// unlinked first; for tcp, SO_REUSEADDR is set and `addr.port == 0` asks
/// the kernel for an ephemeral port (read it back with BoundTcpPort).
Result<Socket> Listen(const SocketAddr& addr, int backlog = 64);

/// The port a bound TCP listener actually got (after Listen with port 0).
Result<uint16_t> BoundTcpPort(const Socket& listener);

/// Accepts one pending connection; blocks unless the listener is
/// non-blocking (in which case EAGAIN is surfaced as a Status).
Result<Socket> Accept(const Socket& listener);

/// Connects to `addr`, retrying briefly on ECONNREFUSED/ENOENT so a client
/// racing a server that is still between bind and accept does not flake.
Result<Socket> Connect(const SocketAddr& addr, int max_attempts = 50);

/// Marks the fd non-blocking (the event loop's read side).
Status SetNonBlocking(const Socket& sock, bool non_blocking);

/// Writes all `len` bytes, looping over partial writes and EINTR. SIGPIPE is
/// suppressed (MSG_NOSIGNAL) so a dead peer surfaces as a Status, never a
/// signal.
Status SendAll(const Socket& sock, const void* data, size_t len);

/// Reads exactly `len` bytes. A clean EOF mid-read is an error (the stream
/// protocol never truncates a frame on purpose).
Status RecvAll(const Socket& sock, void* data, size_t len);

/// One non-blocking read of at most `cap` bytes. Returns the byte count:
/// 0 means the peer closed; -1 with an ok() status means "no data yet"
/// (EAGAIN); -1 with a failed status is a real error.
struct RecvSomeResult {
  ssize_t n = -1;
  Status status;
};
RecvSomeResult RecvSome(const Socket& sock, void* data, size_t cap);

}  // namespace jecb::net
