#include "net/event_loop.h"

#include <poll.h>

#include <atomic>
#include <vector>

namespace jecb::net {

namespace {

// Process-wide stop flag: the only state a signal handler may touch.
// Lock-free atomic rather than volatile sig_atomic_t so that raising it
// from another *thread* (tests, embedding hosts) is defined too; relaxed
// atomic ops on a lock-free int are async-signal-safe.
std::atomic<int> g_stop_flag{0};
static_assert(std::atomic<int>::is_always_lock_free);

void StopSignalHandler(int) {
  g_stop_flag.store(1, std::memory_order_relaxed);
}

constexpr int kPollTimeoutMs = 50;
constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

void InstallStopSignalHandler() {
  struct sigaction sa{};
  sa.sa_handler = StopSignalHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

void RaiseStopFlag() { g_stop_flag.store(1, std::memory_order_relaxed); }
void ClearStopFlag() { g_stop_flag.store(0, std::memory_order_relaxed); }
bool StopFlagRaised() { return g_stop_flag.load(std::memory_order_relaxed) != 0; }

EventLoop::EventLoop(Socket listener) : listener_(std::move(listener)) {
  // The loop multiplexes with poll(); reads must never block it.
  SetNonBlocking(listener_, true);
}

bool EventLoop::stopped() const {
  return stop_requested_.load(std::memory_order_relaxed) ||
         g_stop_flag.load(std::memory_order_relaxed) != 0;
}

bool EventLoop::PopReady(int64_t focus, int64_t* peer, Frame* frame) {
  if (focus >= 0) {
    auto it = peers_.find(focus);
    if (it == peers_.end() || it->second.ready.empty()) return false;
    *peer = focus;
    *frame = std::move(it->second.ready.front());
    it->second.ready.pop_front();
    return true;
  }
  for (auto& [id, p] : peers_) {
    if (!p.ready.empty()) {
      *peer = id;
      *frame = std::move(p.ready.front());
      p.ready.pop_front();
      return true;
    }
  }
  return false;
}

void EventLoop::ReadPeer(int64_t id, Peer& peer) {
  char chunk[kReadChunk];
  for (;;) {
    RecvSomeResult r = RecvSome(peer.sock, chunk, sizeof(chunk));
    if (r.n > 0) {
      stats_.bytes_received += static_cast<uint64_t>(r.n);
      peer.in.Feed(chunk, static_cast<size_t>(r.n));
      if (static_cast<size_t>(r.n) < sizeof(chunk)) break;
      continue;  // kernel may hold more
    }
    if (r.n == 0 || !r.status.ok()) {
      // EOF or hard error: drop the peer. Held transactions are released by
      // NextFrom observing the disappearance.
      stats_.peer_disconnects++;
      peers_.erase(id);
      return;
    }
    break;  // EAGAIN: drained
  }
  Frame f;
  for (;;) {
    FrameBuffer::NextResult res = peer.in.Next(&f);
    if (res == FrameBuffer::NextResult::kNeedMore) break;
    if (res == FrameBuffer::NextResult::kCorrupt) {
      // An undecodable stream cannot be resynchronized; cut the peer loose
      // (its coordinator will surface the dead connection) and count it.
      stats_.corrupt_streams++;
      stats_.peer_disconnects++;
      peers_.erase(id);
      return;
    }
    stats_.frames_received++;
    if (f.seq <= peer.last_seq) {
      stats_.dedup_dropped++;  // deliberate duplicate from the fault shim
      continue;
    }
    peer.last_seq = f.seq;
    peer.ready.push_back(std::move(f));
  }
}

bool EventLoop::PollOnce(int64_t focus) {
  if (stopped()) return false;
  std::vector<pollfd> fds;
  std::vector<int64_t> ids;  // ids[i] corresponds to fds[i]; -1 = listener
  if (focus < 0) {
    fds.push_back({listener_.fd(), POLLIN, 0});
    ids.push_back(-1);
    for (auto& [id, p] : peers_) {
      fds.push_back({p.sock.fd(), POLLIN, 0});
      ids.push_back(id);
    }
  } else {
    auto it = peers_.find(focus);
    if (it == peers_.end()) return false;  // peer vanished during a hold
    fds.push_back({it->second.sock.fd(), POLLIN, 0});
    ids.push_back(focus);
  }
  int n = poll(fds.data(), fds.size(), kPollTimeoutMs);
  if (n <= 0) return !stopped();  // timeout or EINTR: let the caller re-check
  for (size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    if (ids[i] < 0) {
      // Accept everything pending; new peers start reading next iteration.
      for (;;) {
        Result<Socket> conn = Accept(listener_);
        if (!conn.ok()) break;  // EAGAIN (or a transient error): done
        SetNonBlocking(conn.value(), true);
        Peer peer;
        peer.sock = std::move(conn).value();
        peers_.emplace(next_peer_id_++, std::move(peer));
        stats_.peers_accepted++;
      }
      continue;
    }
    auto it = peers_.find(ids[i]);
    if (it != peers_.end()) ReadPeer(ids[i], it->second);
  }
  return true;
}

bool EventLoop::Next(int64_t* peer, Frame* frame) {
  for (;;) {
    if (PopReady(-1, peer, frame)) return true;
    if (!PollOnce(-1)) return false;
  }
}

bool EventLoop::NextFrom(int64_t peer, Frame* frame) {
  int64_t got = -1;
  for (;;) {
    if (PopReady(peer, &got, frame)) return true;
    if (peers_.find(peer) == peers_.end()) return false;  // disconnected
    if (!PollOnce(peer)) return false;
  }
}

void EventLoop::Send(int64_t peer, MsgType type, uint64_t seq,
                     std::string_view payload) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  std::string frame = EncodeFrame(type, seq, payload);
  if (SendAll(it->second.sock, frame.data(), frame.size()).ok()) {
    stats_.frames_sent++;
    stats_.bytes_sent += frame.size();
  } else {
    stats_.peer_disconnects++;
    peers_.erase(it);
  }
}

void EventLoop::ClosePeer(int64_t peer) { peers_.erase(peer); }

}  // namespace jecb::net
