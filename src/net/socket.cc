#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace jecb::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + strerror(errno));
}

Result<Socket> ListenUnixImpl(const SocketAddr& addr, int backlog) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (addr.path.size() >= sizeof(sa.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + addr.path);
  }
  memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
  Socket sock(socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket(AF_UNIX)");
  ::unlink(addr.path.c_str());  // a stale file from a crashed run blocks bind
  if (bind(sock.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return Errno("bind(unix)");
  }
  if (listen(sock.fd(), backlog) != 0) return Errno("listen(unix)");
  return sock;
}

Result<Socket> ListenTcpImpl(const SocketAddr& addr, int backlog) {
  Socket sock(socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket(AF_INET)");
  int one = 1;
  setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    return Status::InvalidArgument("bad tcp host: " + addr.host);
  }
  if (bind(sock.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return Errno("bind(tcp)");
  }
  if (listen(sock.fd(), backlog) != 0) return Errno("listen(tcp)");
  return sock;
}

Result<Socket> ConnectOnce(const SocketAddr& addr) {
  if (addr.is_unix) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sa.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + addr.path);
    }
    memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
    Socket sock(socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid()) return Errno("socket(AF_UNIX)");
    if (connect(sock.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      return Errno("connect(unix)");
    }
    return sock;
  }
  Socket sock(socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket(AF_INET)");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    return Status::InvalidArgument("bad tcp host: " + addr.host);
  }
  if (connect(sock.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return Errno("connect(tcp)");
  }
  // Frames are small request/response pairs; Nagle only adds latency here.
  int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string SocketAddr::ToString() const {
  return is_unix ? "unix:" + path : "tcp:" + host + ":" + std::to_string(port);
}

Result<Socket> Listen(const SocketAddr& addr, int backlog) {
  return addr.is_unix ? ListenUnixImpl(addr, backlog) : ListenTcpImpl(addr, backlog);
}

Result<uint16_t> BoundTcpPort(const Socket& listener) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(sa.sin_port));
}

Result<Socket> Accept(const Socket& listener) {
  for (;;) {
    int fd = accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Result<Socket> Connect(const SocketAddr& addr, int max_attempts) {
  for (int attempt = 0;; ++attempt) {
    Result<Socket> sock = ConnectOnce(addr);
    if (sock.ok()) return sock;
    // The listener is bound before any client runs, so refusals are
    // transient (backlog overflow under load); retry briefly.
    if (attempt + 1 >= max_attempts) return sock;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

Status SetNonBlocking(const Socket& sock, bool non_blocking) {
  int flags = fcntl(sock.fd(), F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  flags = non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(sock.fd(), F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status SendAll(const Socket& sock, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = send(sock.fd(), p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The send side stays blocking in this codebase; an EAGAIN here
        // means someone flipped the fd — busy-wait briefly rather than
        // corrupt the stream by giving up mid-frame.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      return Errno("send");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvAll(const Socket& sock, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = recv(sock.fd(), p, len, 0);
    if (n == 0) return Status::Internal("peer closed mid-message");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

RecvSomeResult RecvSome(const Socket& sock, void* data, size_t cap) {
  for (;;) {
    ssize_t n = recv(sock.fd(), data, cap, 0);
    if (n >= 0) return {n, Status::OK()};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {-1, Status::OK()};
    return {-1, Errno("recv")};
  }
}

}  // namespace jecb::net
