#include "net/wire.h"

#include <array>
#include <cstring>

namespace jecb::net {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  return table;
}

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kHello) &&
         t <= static_cast<uint8_t>(MsgType::kShardStats);
}

}  // namespace

std::string_view MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kExecute: return "execute";
    case MsgType::kExecuteAck: return "execute_ack";
    case MsgType::kPrepare: return "prepare";
    case MsgType::kVote: return "vote";
    case MsgType::kCommit: return "commit";
    case MsgType::kCommitAck: return "commit_ack";
    case MsgType::kAbort: return "abort";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kShardStats: return "shard_stats";
  }
  return "unknown";
}

uint32_t Crc32(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeFrame(MsgType type, uint64_t seq, std::string_view payload) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U8(kWireVersion);
  w.U8(static_cast<uint8_t>(type));
  w.U16(0);  // flags, reserved
  w.U64(seq);
  w.U32(Crc32(payload.data(), payload.size()));
  std::string out = w.Take();
  out.append(payload.data(), payload.size());
  return out;
}

FrameBuffer::NextResult FrameBuffer::Next(Frame* out) {
  if (!error_.ok()) return NextResult::kCorrupt;
  if (buf_.size() < kFrameHeaderBytes) return NextResult::kNeedMore;
  WireReader header(std::string_view(buf_).substr(0, kFrameHeaderBytes));
  uint32_t payload_len = 0, crc = 0;
  uint8_t version = 0, type = 0;
  uint16_t flags = 0;
  uint64_t seq = 0;
  header.U32(&payload_len);
  header.U8(&version);
  header.U8(&type);
  header.U16(&flags);
  header.U64(&seq);
  header.U32(&crc);
  if (version != kWireVersion) {
    error_ = Status::ParseError("wire version mismatch: got " +
                                std::to_string(version) + ", want " +
                                std::to_string(kWireVersion));
    return NextResult::kCorrupt;
  }
  if (!ValidType(type)) {
    error_ = Status::ParseError("unknown frame type " + std::to_string(type));
    return NextResult::kCorrupt;
  }
  if (payload_len > kMaxPayloadBytes) {
    error_ = Status::ParseError("frame payload of " + std::to_string(payload_len) +
                                " bytes exceeds the " +
                                std::to_string(kMaxPayloadBytes) + " byte cap");
    return NextResult::kCorrupt;
  }
  const size_t total = kFrameHeaderBytes + payload_len;
  if (buf_.size() < total) return NextResult::kNeedMore;
  std::string_view payload = std::string_view(buf_).substr(kFrameHeaderBytes, payload_len);
  if (Crc32(payload.data(), payload.size()) != crc) {
    error_ = Status::ParseError("frame CRC mismatch on " +
                                std::string(MsgTypeName(static_cast<MsgType>(type))) +
                                " seq " + std::to_string(seq));
    return NextResult::kCorrupt;
  }
  out->type = static_cast<MsgType>(type);
  out->seq = seq;
  out->payload.assign(payload.data(), payload.size());
  buf_.erase(0, total);
  return NextResult::kFrame;
}

// ---------------------------------------------------------------------------

std::string HelloMsg::Encode() const {
  WireWriter w;
  w.U32(client_id);
  w.U32(static_cast<uint32_t>(shard_id));
  return w.Take();
}

bool HelloMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  uint32_t shard = 0;
  if (!r.U32(&client_id) || !r.U32(&shard)) return false;
  shard_id = static_cast<int32_t>(shard);
  return r.AtEnd();
}

std::string HelloAckMsg::Encode() const {
  WireWriter w;
  w.U32(static_cast<uint32_t>(shard_id));
  w.U32(static_cast<uint32_t>(num_shards));
  return w.Take();
}

bool HelloAckMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  uint32_t shard = 0, n = 0;
  if (!r.U32(&shard) || !r.U32(&n)) return false;
  shard_id = static_cast<int32_t>(shard);
  num_shards = static_cast<int32_t>(n);
  return r.AtEnd();
}

std::string FragmentMsg::Encode() const {
  WireWriter w;
  w.U64(txn_id);
  w.U32(attempt);
  w.U32(class_id);
  w.U32(static_cast<uint32_t>(accesses.size()));
  for (const WireAccess& a : accesses) {
    w.U32(a.table);
    w.U64(a.row);
    w.U8(a.write);
  }
  return w.Take();
}

bool FragmentMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  uint32_t count = 0;
  if (!r.U64(&txn_id) || !r.U32(&attempt) || !r.U32(&class_id) || !r.U32(&count)) {
    return false;
  }
  // Each access takes 13 bytes; reject counts the remaining payload cannot
  // possibly hold before reserving anything.
  if (static_cast<uint64_t>(count) * 13 > r.remaining()) return false;
  accesses.clear();
  accesses.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireAccess a;
    if (!r.U32(&a.table) || !r.U64(&a.row) || !r.U8(&a.write)) return false;
    accesses.push_back(a);
  }
  return r.AtEnd();
}

std::string VoteMsg::Encode() const {
  WireWriter w;
  w.U64(txn_id);
  w.U32(attempt);
  w.U8(static_cast<uint8_t>(decision));
  w.U8(stalled);
  return w.Take();
}

bool VoteMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  uint8_t d = 0;
  if (!r.U64(&txn_id) || !r.U32(&attempt) || !r.U8(&d) || !r.U8(&stalled)) {
    return false;
  }
  if (d > static_cast<uint8_t>(VoteDecision::kDown)) return false;
  decision = static_cast<VoteDecision>(d);
  return r.AtEnd();
}

std::string TxnRefMsg::Encode() const {
  WireWriter w;
  w.U64(txn_id);
  w.U32(attempt);
  return w.Take();
}

bool TxnRefMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  return r.U64(&txn_id) && r.U32(&attempt) && r.AtEnd();
}

std::string ShardStatsMsg::Encode() const {
  WireWriter w;
  w.U64(executed_local);
  w.U64(prepares_served);
  w.U64(commits_applied);
  w.U64(aborts_observed);
  w.U64(stalls_served);
  w.U64(frames_received);
  w.U64(frames_sent);
  w.U64(bytes_received);
  w.U64(bytes_sent);
  w.U64(dedup_dropped);
  w.U64(peer_disconnects);
  return w.Take();
}

bool ShardStatsMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  return r.U64(&executed_local) && r.U64(&prepares_served) &&
         r.U64(&commits_applied) && r.U64(&aborts_observed) &&
         r.U64(&stalls_served) && r.U64(&frames_received) &&
         r.U64(&frames_sent) && r.U64(&bytes_received) && r.U64(&bytes_sent) &&
         r.U64(&dedup_dropped) && r.U64(&peer_disconnects) && r.AtEnd();
}

}  // namespace jecb::net
