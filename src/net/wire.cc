#include "net/wire.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace jecb::net {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  return table;
}

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kHello) &&
         t <= static_cast<uint8_t>(MsgType::kTelemetry);
}

}  // namespace

std::string_view MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kExecute: return "execute";
    case MsgType::kExecuteAck: return "execute_ack";
    case MsgType::kPrepare: return "prepare";
    case MsgType::kVote: return "vote";
    case MsgType::kCommit: return "commit";
    case MsgType::kCommitAck: return "commit_ack";
    case MsgType::kAbort: return "abort";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kShardStats: return "shard_stats";
    case MsgType::kExchangeReq: return "exchange_req";
    case MsgType::kTupleBatch: return "tuple_batch";
    case MsgType::kTelemetryReq: return "telemetry_req";
    case MsgType::kTelemetry: return "telemetry";
  }
  return "unknown";
}

uint32_t Crc32(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeFrame(MsgType type, uint64_t seq, std::string_view payload) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U8(kWireVersion);
  w.U8(static_cast<uint8_t>(type));
  w.U16(0);  // flags, reserved
  w.U64(seq);
  w.U32(Crc32(payload.data(), payload.size()));
  std::string out = w.Take();
  out.append(payload.data(), payload.size());
  return out;
}

FrameBuffer::NextResult FrameBuffer::Next(Frame* out) {
  if (!error_.ok()) return NextResult::kCorrupt;
  if (buf_.size() < kFrameHeaderBytes) return NextResult::kNeedMore;
  WireReader header(std::string_view(buf_).substr(0, kFrameHeaderBytes));
  uint32_t payload_len = 0, crc = 0;
  uint8_t version = 0, type = 0;
  uint16_t flags = 0;
  uint64_t seq = 0;
  header.U32(&payload_len);
  header.U8(&version);
  header.U8(&type);
  header.U16(&flags);
  header.U64(&seq);
  header.U32(&crc);
  // The length prefix is the one header field that controls how many bytes
  // we are willing to buffer, so it is checked FIRST, against kMaxFrameBytes,
  // before trusting version or type: a corrupted/hostile length is rejected
  // as sticky corruption from the 20-byte header alone — never a near-4GiB
  // wait for payload that will not come (and buffering is additionally
  // bounded by bytes actually fed, never by the prefix).
  if (kFrameHeaderBytes + static_cast<size_t>(payload_len) > kMaxFrameBytes) {
    error_ = Status::ParseError("frame payload of " + std::to_string(payload_len) +
                                " bytes exceeds the " +
                                std::to_string(kMaxPayloadBytes) + " byte cap");
    return NextResult::kCorrupt;
  }
  if (version != kWireVersion) {
    error_ = Status::ParseError("wire version mismatch: got " +
                                std::to_string(version) + ", want " +
                                std::to_string(kWireVersion));
    return NextResult::kCorrupt;
  }
  if (!ValidType(type)) {
    error_ = Status::ParseError("unknown frame type " + std::to_string(type));
    return NextResult::kCorrupt;
  }
  const size_t total = kFrameHeaderBytes + payload_len;
  if (buf_.size() < total) return NextResult::kNeedMore;
  std::string_view payload = std::string_view(buf_).substr(kFrameHeaderBytes, payload_len);
  if (Crc32(payload.data(), payload.size()) != crc) {
    error_ = Status::ParseError("frame CRC mismatch on " +
                                std::string(MsgTypeName(static_cast<MsgType>(type))) +
                                " seq " + std::to_string(seq));
    return NextResult::kCorrupt;
  }
  out->type = static_cast<MsgType>(type);
  out->seq = seq;
  out->payload.assign(payload.data(), payload.size());
  buf_.erase(0, total);
  return NextResult::kFrame;
}

// ---------------------------------------------------------------------------

std::string HelloMsg::Encode() const {
  WireWriter w;
  w.U32(client_id);
  w.U32(static_cast<uint32_t>(shard_id));
  return w.Take();
}

bool HelloMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  uint32_t shard = 0;
  if (!r.U32(&client_id) || !r.U32(&shard)) return false;
  shard_id = static_cast<int32_t>(shard);
  return r.AtEnd();
}

std::string HelloAckMsg::Encode() const {
  WireWriter w;
  w.U32(static_cast<uint32_t>(shard_id));
  w.U32(static_cast<uint32_t>(num_shards));
  w.U64(now_us);
  return w.Take();
}

bool HelloAckMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  uint32_t shard = 0, n = 0;
  if (!r.U32(&shard) || !r.U32(&n)) return false;
  shard_id = static_cast<int32_t>(shard);
  num_shards = static_cast<int32_t>(n);
  now_us = 0;
  if (r.AtEnd()) return true;  // legacy encoder: no clock tail
  return r.U64(&now_us) && r.AtEnd();
}

namespace {

void EncodeAccessList(WireWriter& w, const std::vector<WireAccess>& list) {
  w.U32(static_cast<uint32_t>(list.size()));
  for (const WireAccess& a : list) {
    w.U32(a.table);
    w.U64(a.row);
    w.U8(a.write);
  }
}

bool DecodeAccessList(WireReader& r, std::vector<WireAccess>* out) {
  uint32_t count = 0;
  if (!r.U32(&count)) return false;
  // Each access takes 13 bytes; reject counts the remaining payload cannot
  // possibly hold before reserving anything.
  if (static_cast<uint64_t>(count) * 13 > r.remaining()) return false;
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireAccess a;
    if (!r.U32(&a.table) || !r.U64(&a.row) || !r.U8(&a.write)) return false;
    out->push_back(a);
  }
  return true;
}

}  // namespace

std::string FragmentMsg::Encode() const {
  WireWriter w;
  w.U64(txn_id);
  w.U32(attempt);
  w.U32(class_id);
  EncodeAccessList(w, accesses);
  // Back-compat tail: only present when there is an exchange plan, so
  // non-exchange frames stay byte-identical to the PR 6 encoding.
  if (!exchange_reads.empty()) EncodeAccessList(w, exchange_reads);
  return w.Take();
}

bool FragmentMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  if (!r.U64(&txn_id) || !r.U32(&attempt) || !r.U32(&class_id)) return false;
  if (!DecodeAccessList(r, &accesses)) return false;
  exchange_reads.clear();
  if (r.AtEnd()) return true;  // legacy frame: no exchange plan
  if (!DecodeAccessList(r, &exchange_reads)) return false;
  return r.AtEnd();
}

std::string VoteMsg::Encode() const {
  WireWriter w;
  w.U64(txn_id);
  w.U32(attempt);
  w.U8(static_cast<uint8_t>(decision));
  w.U8(stalled);
  return w.Take();
}

bool VoteMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  uint8_t d = 0;
  if (!r.U64(&txn_id) || !r.U32(&attempt) || !r.U8(&d) || !r.U8(&stalled)) {
    return false;
  }
  if (d > static_cast<uint8_t>(VoteDecision::kDown)) return false;
  decision = static_cast<VoteDecision>(d);
  return r.AtEnd();
}

std::string TxnRefMsg::Encode() const {
  WireWriter w;
  w.U64(txn_id);
  w.U32(attempt);
  return w.Take();
}

bool TxnRefMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  return r.U64(&txn_id) && r.U32(&attempt) && r.AtEnd();
}

std::string ShardStatsMsg::Encode() const {
  WireWriter w;
  w.U64(executed_local);
  w.U64(prepares_served);
  w.U64(commits_applied);
  w.U64(aborts_observed);
  w.U64(stalls_served);
  w.U64(frames_received);
  w.U64(frames_sent);
  w.U64(bytes_received);
  w.U64(bytes_sent);
  w.U64(dedup_dropped);
  w.U64(peer_disconnects);
  w.U64(exchange_reqs_served);
  w.U64(exchange_batches_sent);
  w.U64(exchange_tuples_sent);
  w.U64(exchange_bytes_sent);
  w.U64(exchange_reqs_sent);
  w.U64(exchange_wire_drops);
  w.U64(exchange_wire_delays);
  w.U64(exchange_wire_duplicates);
  w.U64(exchange_reconnects);
  w.U32(static_cast<uint32_t>(pinned_cpu));
  w.U64(ctx_voluntary);
  w.U64(ctx_involuntary);
  return w.Take();
}

bool ShardStatsMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  if (!(r.U64(&executed_local) && r.U64(&prepares_served) &&
        r.U64(&commits_applied) && r.U64(&aborts_observed) &&
        r.U64(&stalls_served) && r.U64(&frames_received) &&
        r.U64(&frames_sent) && r.U64(&bytes_received) && r.U64(&bytes_sent) &&
        r.U64(&dedup_dropped) && r.U64(&peer_disconnects))) {
    return false;
  }
  exchange_reqs_served = exchange_batches_sent = exchange_tuples_sent = 0;
  exchange_bytes_sent = exchange_reqs_sent = 0;
  exchange_wire_drops = exchange_wire_delays = 0;
  exchange_wire_duplicates = exchange_reconnects = 0;
  pinned_cpu = -1;
  ctx_voluntary = ctx_involuntary = 0;
  if (r.AtEnd()) return true;  // legacy encoder: no exchange tail
  if (!(r.U64(&exchange_reqs_served) && r.U64(&exchange_batches_sent) &&
        r.U64(&exchange_tuples_sent) && r.U64(&exchange_bytes_sent) &&
        r.U64(&exchange_reqs_sent) && r.U64(&exchange_wire_drops) &&
        r.U64(&exchange_wire_delays) && r.U64(&exchange_wire_duplicates) &&
        r.U64(&exchange_reconnects))) {
    return false;
  }
  if (r.AtEnd()) return true;  // pre-topology encoder: no topology tail
  uint32_t cpu = 0;
  if (!(r.U32(&cpu) && r.U64(&ctx_voluntary) && r.U64(&ctx_involuntary) &&
        r.AtEnd())) {
    return false;
  }
  pinned_cpu = static_cast<int32_t>(cpu);
  return true;
}

std::string ExchangeMsg::Encode() const {
  WireWriter w;
  w.U8(version);
  w.U64(txn_id);
  w.U32(attempt);
  w.U32(static_cast<uint32_t>(from_shard));
  EncodeAccessList(w, reads);
  return w.Take();
}

bool ExchangeMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  uint32_t from = 0;
  if (!r.U8(&version) || version != kExchangeVersion) return false;
  if (!r.U64(&txn_id) || !r.U32(&attempt) || !r.U32(&from)) return false;
  from_shard = static_cast<int32_t>(from);
  return DecodeAccessList(r, &reads) && r.AtEnd();
}

std::string TupleBatchMsg::Encode() const {
  WireWriter w;
  w.U8(version);
  w.U64(txn_id);
  w.U32(attempt);
  w.U32(static_cast<uint32_t>(source_shard));
  w.U32(batch_index);
  w.U8(last);
  w.U32(static_cast<uint32_t>(entries.size()));
  for (const TupleBatchEntry& e : entries) {
    w.U32(e.table);
    w.U64(e.row);
    w.U32(static_cast<uint32_t>(e.bytes.size()));
    w.Raw(e.bytes);
  }
  return w.Take();
}

bool TupleBatchMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  uint32_t source = 0, count = 0;
  if (!r.U8(&version) || version != kExchangeVersion) return false;
  if (!r.U64(&txn_id) || !r.U32(&attempt) || !r.U32(&source) ||
      !r.U32(&batch_index) || !r.U8(&last) || !r.U32(&count)) {
    return false;
  }
  source_shard = static_cast<int32_t>(source);
  // Each entry takes at least 16 bytes (table + row + length prefix); reject
  // counts the remaining payload cannot possibly hold before reserving.
  if (static_cast<uint64_t>(count) * 16 > r.remaining()) return false;
  entries.clear();
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TupleBatchEntry e;
    uint32_t len = 0;
    if (!r.U32(&e.table) || !r.U64(&e.row) || !r.U32(&len)) return false;
    if (len > r.remaining()) return false;
    if (!r.Bytes(&e.bytes, len)) return false;
    entries.push_back(std::move(e));
  }
  return r.AtEnd();
}

namespace {

void EncodeStr(WireWriter& w, const std::string& s) {
  const size_t n = std::min(s.size(), kMaxTelemetryStrBytes);
  w.U16(static_cast<uint16_t>(n));
  w.Raw(std::string_view(s).substr(0, n));
}

bool DecodeStr(WireReader& r, std::string* out) {
  uint16_t len = 0;
  if (!r.U16(&len)) return false;
  if (len > kMaxTelemetryStrBytes || len > r.remaining()) return false;
  return r.Bytes(out, len);
}

}  // namespace

std::string TelemetryMsg::Encode() const {
  WireWriter w;
  w.U8(version);
  w.U32(pid);
  w.U32(static_cast<uint32_t>(shard));
  w.U32(batch_index);
  w.U8(last);
  w.U64(now_us);
  w.U64(dropped);
  w.U32(static_cast<uint32_t>(thread_names.size()));
  for (const auto& [tid, name] : thread_names) {
    w.U32(tid);
    EncodeStr(w, name);
  }
  w.U32(static_cast<uint32_t>(metrics.size()));
  for (const TelemetryMetric& m : metrics) {
    EncodeStr(w, m.name);
    w.U8(m.kind);
    w.U64(m.value_bits);
  }
  w.U32(static_cast<uint32_t>(events.size()));
  for (const TelemetryEvent& e : events) {
    w.U8(e.kind);
    w.U32(e.tid);
    w.U64(e.ts_us);
    w.U64(e.dur_us);
    EncodeStr(w, e.name);
    EncodeStr(w, e.cat);
    EncodeStr(w, e.arg1_name);
    w.U64(static_cast<uint64_t>(e.arg1));
    EncodeStr(w, e.arg2_name);
    w.U64(static_cast<uint64_t>(e.arg2));
  }
  return w.Take();
}

bool TelemetryMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  uint32_t shard_u = 0, count = 0;
  if (!r.U8(&version) || version != kTelemetryVersion) return false;
  if (!r.U32(&pid) || !r.U32(&shard_u) || !r.U32(&batch_index) ||
      !r.U8(&last) || !r.U64(&now_us) || !r.U64(&dropped)) {
    return false;
  }
  shard = static_cast<int32_t>(shard_u);
  // Thread names: at least 6 bytes each (tid + empty-string prefix). Reject
  // counts the remaining payload cannot possibly hold before reserving.
  if (!r.U32(&count)) return false;
  if (count > kMaxTelemetryEntries) return false;
  if (static_cast<uint64_t>(count) * 6 > r.remaining()) return false;
  thread_names.clear();
  thread_names.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t tid = 0;
    std::string name;
    if (!r.U32(&tid) || !DecodeStr(r, &name)) return false;
    thread_names.emplace_back(tid, std::move(name));
  }
  // Metrics: at least 11 bytes each (name prefix + kind + value).
  if (!r.U32(&count)) return false;
  if (count > kMaxTelemetryEntries) return false;
  if (static_cast<uint64_t>(count) * 11 > r.remaining()) return false;
  metrics.clear();
  metrics.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TelemetryMetric m;
    if (!DecodeStr(r, &m.name) || !r.U8(&m.kind) || !r.U64(&m.value_bits)) {
      return false;
    }
    if (m.kind > 1) return false;
    metrics.push_back(std::move(m));
  }
  // Events: at least 45 bytes each (fixed fields + four empty-string
  // prefixes + two arg values).
  if (!r.U32(&count)) return false;
  if (count > kMaxTelemetryEntries) return false;
  if (static_cast<uint64_t>(count) * 45 > r.remaining()) return false;
  events.clear();
  events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TelemetryEvent e;
    uint64_t a1 = 0, a2 = 0;
    if (!r.U8(&e.kind) || !r.U32(&e.tid) || !r.U64(&e.ts_us) ||
        !r.U64(&e.dur_us) || !DecodeStr(r, &e.name) || !DecodeStr(r, &e.cat) ||
        !DecodeStr(r, &e.arg1_name) || !r.U64(&a1) ||
        !DecodeStr(r, &e.arg2_name) || !r.U64(&a2)) {
      return false;
    }
    if (e.kind > 2) return false;
    e.arg1 = static_cast<int64_t>(a1);
    e.arg2 = static_cast<int64_t>(a2);
    events.push_back(std::move(e));
  }
  return r.AtEnd();
}

}  // namespace jecb::net
