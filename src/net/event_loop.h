// poll()-based event loop for a shard server: accepts peers on one listener,
// reads non-blocking into per-peer FrameBuffers, and surfaces complete,
// dedup-filtered frames one at a time. Single-threaded on purpose — the loop
// IS the shard's worker, so serving one request at a time is exactly the
// one-worker-per-shard serialization the in-process executor models with a
// per-shard mutex.
//
// Two read modes:
//  - Next(): the normal multiplexed serve loop across all peers.
//  - NextFrom(peer): blocks on ONE peer until its next frame arrives, while
//    every other peer's bytes wait unread in the kernel. This is how a 2PC
//    prepare "holds the shard" across the coordinator's vote round trip: the
//    shard cannot serve anyone else until the commit/abort for the held
//    transaction arrives (the Fig. 1 lock-hold cost, now over a real wire).
//    Holds cannot deadlock because coordinators prepare participants in
//    ascending shard-id order (dist/shard_server.h has the argument).
//
// Duplicate suppression: frame sequence numbers increase per connection; a
// frame whose seq is not greater than the peer's last accepted seq is
// counted in stats().dedup_dropped and never surfaced — which is what makes
// the transport fault injector's deliberate re-sends invisible to the
// protocol layer.
//
// Watermark scope contract (load-bearing for reconnects): the dedup
// watermark lives in the per-connection Peer and every accepted connection
// starts a fresh Peer with last_seq = 0. Senders must therefore reset their
// send_seq to 0 together with the socket and FrameBuffer whenever they
// reconnect (dist/wire_channel.h's Reset() is the one place that does all
// three) — then a reconnected sender's frames always start above the new
// watermark (nothing legitimate is dropped) and an injected duplicate,
// re-sent with its original seq on the SAME connection, is always at or
// below it (nothing duplicated is re-accepted). A duplicate can never cross
// a reconnect: the old connection's queue dies with its Peer.
//
// Stop conditions: RequestStop() (atomic, callable from another thread — the
// shard's exchange node is stopped this way) or the process-wide stop flag
// (async-signal-safe; see InstallStopSignalHandler) — both make Next()
// return false after at most one poll timeout.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "net/socket.h"
#include "net/wire.h"

namespace jecb::net {

/// Byte/frame accounting of one loop's lifetime.
struct EventLoopStats {
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t peers_accepted = 0;
  uint64_t peer_disconnects = 0;
  uint64_t dedup_dropped = 0;
  uint64_t corrupt_streams = 0;
};

/// Installs a SIGTERM/SIGINT handler that sets the process-wide stop flag
/// every EventLoop polls. Safe to call more than once. Meant for shard
/// server processes, so a parent's kill(SIGTERM) produces a clean drain and
/// exit instead of an abort.
void InstallStopSignalHandler();

/// Raises the same process-wide stop flag programmatically (tests, in-thread
/// servers). Async-signal-safe.
void RaiseStopFlag();

/// Clears the flag (call before reusing a loop in the same process).
void ClearStopFlag();

/// Whether the process-wide stop flag is currently raised — lets post-loop
/// code distinguish a SIGTERM-driven exit (flight-recorder dump) from a
/// protocol-driven one.
bool StopFlagRaised();

class EventLoop {
 public:
  explicit EventLoop(Socket listener);
  ~EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// One frame from any peer, accepting new connections as they arrive.
  /// Returns false when stopped (RequestStop or the signal flag); never
  /// returns false merely because no peer is currently connected.
  bool Next(int64_t* peer, Frame* frame);

  /// The next frame from `peer` only (the prepare-hold read). Returns false
  /// if the peer disconnects or the loop is stopped — the caller treats
  /// that as an abort of the held transaction.
  bool NextFrom(int64_t peer, Frame* frame);

  /// Sends one frame to `peer` (blocking; replies are small). A send to a
  /// vanished peer is a no-op: the disconnect was already accounted.
  void Send(int64_t peer, MsgType type, uint64_t seq, std::string_view payload);

  void ClosePeer(int64_t peer);
  /// Safe to call from another thread: the owning thread observes it within
  /// one poll timeout. Joining that thread afterwards is the happens-before
  /// edge that makes its stats() safe to read.
  void RequestStop() { stop_requested_.store(true, std::memory_order_relaxed); }
  bool stopped() const;

  const EventLoopStats& stats() const { return stats_; }
  size_t num_peers() const { return peers_.size(); }

 private:
  struct Peer {
    Socket sock;
    FrameBuffer in;
    std::deque<Frame> ready;
    uint64_t last_seq = 0;  ///< highest accepted seq (dedup watermark)
  };

  /// Accept + read every ready fd once; parses new frames into peer queues.
  /// `focus` < 0 polls everything; otherwise only that peer's fd (the hold).
  /// Returns false on stop.
  bool PollOnce(int64_t focus);
  void ReadPeer(int64_t id, Peer& peer);
  bool PopReady(int64_t focus, int64_t* peer, Frame* frame);

  Socket listener_;
  std::map<int64_t, Peer> peers_;
  int64_t next_peer_id_ = 1;
  std::atomic<bool> stop_requested_{false};
  EventLoopStats stats_;
};

}  // namespace jecb::net
