// Versioned, length-prefixed binary wire format for the distributed shard
// runtime. Every frame is
//
//   [u32 payload_len][u8 version][u8 type][u16 flags][u64 seq][u32 crc32]
//   [payload_len bytes of payload]
//
// with all integers little-endian and the CRC computed over the payload
// only. The sequence number increases per connection and lets the receiver
// drop duplicated frames (the transport fault injector re-sends frames on
// purpose); the CRC plus a hard payload-size cap make truncated or corrupted
// streams fail loudly instead of desynchronizing the framing — the property
// tests/net_test.cc fuzzes. Payload encoding goes through WireWriter /
// WireReader: WireReader is fully bounds-checked, so a malformed payload can
// never read out of range. Bumping kWireVersion invalidates peers at the
// Hello handshake, not mid-stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace jecb::net {

inline constexpr uint8_t kWireVersion = 1;
/// Hard cap on payload size: anything larger is corruption, not a message.
/// The largest legal frame is a full exchange tuple batch: batch payloads
/// are clamped well below this (see RuntimeOptions::exchange_batch_bytes),
/// so a length prefix above the cap can only mean a corrupted or hostile
/// header — it is rejected from the header alone, before any allocation or
/// wait for payload bytes.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 1 + 2 + 8 + 4;
/// Upper bound on a whole frame (header + payload). FrameBuffer enforces it
/// against the untrusted u32 length prefix BEFORE trusting any other header
/// field, so a corrupted length can never trigger a near-4 GiB buffer wait.
inline constexpr size_t kMaxFrameBytes = kFrameHeaderBytes + kMaxPayloadBytes;

/// Message types of the shard protocol (dist/shard_server.h documents the
/// state machine). Values are wire-stable: append, never renumber.
enum class MsgType : uint8_t {
  kHello = 1,       ///< client -> shard: version/identity handshake
  kHelloAck = 2,    ///< shard -> client
  kExecute = 3,     ///< client -> shard: single-partition txn fragment
  kExecuteAck = 4,  ///< shard -> client
  kPrepare = 5,     ///< coordinator -> shard: 2PC prepare + fragment
  kVote = 6,        ///< shard -> coordinator: yes / reject / down
  kCommit = 7,      ///< coordinator -> shard: apply + release
  kCommitAck = 8,   ///< shard -> coordinator
  kAbort = 9,       ///< coordinator -> shard: release without applying
  kShutdown = 10,   ///< control -> shard: stop serving after replying
  kShardStats = 11, ///< shard -> control: final shard-side counters
  kExchangeReq = 12,  ///< shard -> shard (data plane): pull remote read rows
  kTupleBatch = 13,   ///< data plane: one bounded batch of materialized rows
  kTelemetryReq = 14, ///< control -> shard: drain spans + metrics snapshot
  kTelemetry = 15,    ///< shard -> control: one bounded telemetry batch
};

std::string_view MsgTypeName(MsgType t);

/// CRC-32 (IEEE 802.3, reflected) over `len` bytes.
uint32_t Crc32(const void* data, size_t len);

/// Little-endian append-only payload builder.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { AppendLE(v, 2); }
  void U32(uint32_t v) { AppendLE(v, 4); }
  void U64(uint64_t v) { AppendLE(v, 8); }
  /// Appends raw bytes verbatim (length must be conveyed separately).
  void Raw(std::string_view bytes) { buf_.append(bytes.data(), bytes.size()); }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void AppendLE(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  std::string buf_;
};

/// Bounds-checked little-endian payload reader: every accessor returns
/// false (leaving the output untouched) instead of reading past the end.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) { return ReadLE(v, 1); }
  bool U16(uint16_t* v) { return ReadLE(v, 2); }
  bool U32(uint32_t* v) { return ReadLE(v, 4); }
  bool U64(uint64_t* v) { return ReadLE(v, 8); }
  /// Copies exactly `len` raw bytes into `*out` (replacing its contents).
  bool Bytes(std::string* out, size_t len) {
    if (data_.size() - pos_ < len) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  bool ReadLE(T* v, int bytes) {
    if (data_.size() - pos_ < static_cast<size_t>(bytes)) return false;
    uint64_t out = 0;
    for (int i = 0; i < bytes; ++i) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += static_cast<size_t>(bytes);
    *v = static_cast<T>(out);
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kHello;
  uint64_t seq = 0;
  std::string payload;
};

/// Serializes a complete frame (header + payload) ready for SendAll.
std::string EncodeFrame(MsgType type, uint64_t seq, std::string_view payload);

/// Incremental frame decoder for a byte stream: feed arbitrary chunks, pull
/// complete frames. Corruption (bad version, oversized length, CRC mismatch)
/// is sticky: once detected the stream cannot be trusted and every further
/// Next() returns the error.
class FrameBuffer {
 public:
  void Feed(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  /// kFrame: `*out` holds the next frame. kNeedMore: feed more bytes.
  /// kCorrupt: the stream is broken; `error()` says why.
  enum class NextResult { kFrame, kNeedMore, kCorrupt };
  NextResult Next(Frame* out);

  const Status& error() const { return error_; }
  size_t buffered_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
  Status error_;
};

// ---------------------------------------------------------------------------
// Protocol payloads. Each struct encodes to a WireWriter payload and decodes
// from a bounds-checked WireReader; Decode returns false on any structural
// problem (short payload, trailing bytes, absurd counts).

struct HelloMsg {
  uint32_t client_id = 0;
  int32_t shard_id = 0;  ///< the shard the client believes it is talking to

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

struct HelloAckMsg {
  int32_t shard_id = 0;
  int32_t num_shards = 0;
  /// The shard's monotonic telemetry clock (TraceRecorder::NowUs) sampled
  /// while building the ack. Back-compat tail — absent decodes as zero. The
  /// coordinator timestamps the Hello round-trip on its own clock and uses
  /// the midpoint to estimate the per-process clock offset that aligns
  /// remote span timestamps in merged cluster traces.
  uint64_t now_us = 0;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

/// One access of a transaction fragment, as shipped to a shard.
struct WireAccess {
  uint32_t table = 0;
  uint64_t row = 0;
  uint8_t write = 0;
};

/// The shard-side work of one transaction: carried by kExecute (whole
/// single-partition txn) and kPrepare (this shard's slice of a distributed
/// txn). `txn_id`/`attempt` are the fault-decision coordinates, so the shard
/// process reproduces exactly the injector decisions the in-process backend
/// would have made.
struct FragmentMsg {
  uint64_t txn_id = 0;
  uint32_t attempt = 0;
  uint32_t class_id = 0;
  std::vector<WireAccess> accesses;
  /// Exchange plan, carried only on the home shard's kPrepare: the full read
  /// set of the transaction in access order. At commit time the home shard
  /// pulls the remote rows over the data plane and streams the assembled
  /// read set to the coordinator. Encoded as a back-compat tail — absent
  /// (old encoders / non-home participants / exchange disabled) decodes as
  /// empty.
  std::vector<WireAccess> exchange_reads;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

enum class VoteDecision : uint8_t { kYes = 0, kReject = 1, kDown = 2 };

struct VoteMsg {
  uint64_t txn_id = 0;
  uint32_t attempt = 0;
  VoteDecision decision = VoteDecision::kYes;
  uint8_t stalled = 0;  ///< the shard injected a stall while preparing

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

/// kExecuteAck, kCommit, kCommitAck and kAbort all carry just the txn
/// coordinates for cross-checking.
struct TxnRefMsg {
  uint64_t txn_id = 0;
  uint32_t attempt = 0;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

/// Shard-side counters returned on shutdown: the coordinator folds them into
/// the replay's transport report and cross-checks them against its own
/// request accounting. The exchange_* block is a back-compat tail (absent
/// decodes as zero): data-plane traffic served/initiated by this shard.
struct ShardStatsMsg {
  uint64_t executed_local = 0;
  uint64_t prepares_served = 0;
  uint64_t commits_applied = 0;
  uint64_t aborts_observed = 0;
  uint64_t stalls_served = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t dedup_dropped = 0;
  uint64_t peer_disconnects = 0;
  // --- exchange data plane (tail; all-or-nothing) ---
  uint64_t exchange_reqs_served = 0;   ///< unique kExchangeReq handled
  uint64_t exchange_batches_sent = 0;  ///< kTupleBatch frames emitted
  uint64_t exchange_tuples_sent = 0;   ///< rows materialized for peers
  uint64_t exchange_bytes_sent = 0;    ///< encoded row bytes shipped to peers
  uint64_t exchange_reqs_sent = 0;     ///< kExchangeReq this shard initiated
  uint64_t exchange_wire_drops = 0;      ///< injected drops on data channels
  uint64_t exchange_wire_delays = 0;     ///< injected delays on data channels
  uint64_t exchange_wire_duplicates = 0; ///< injected dups on data channels
  uint64_t exchange_reconnects = 0;      ///< data-channel reconnects
  // --- topology tail (all-or-nothing, after the exchange tail) ---
  int32_t pinned_cpu = -1;          ///< logical cpu the child pinned to; -1 = unpinned
  uint64_t ctx_voluntary = 0;       ///< getrusage voluntary context switches
  uint64_t ctx_involuntary = 0;     ///< getrusage involuntary context switches

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

/// Version byte for the exchange data-plane payloads. Independent of
/// kWireVersion so the data plane can evolve (compression, columnar batches)
/// without invalidating the control protocol.
inline constexpr uint8_t kExchangeVersion = 1;

/// shard -> shard (data plane): "send me these rows". `from_shard` is the
/// requesting (home) shard; `txn_id`/`attempt` are the fault-decision
/// coordinates so injected data-channel faults are reproducible.
struct ExchangeMsg {
  uint8_t version = kExchangeVersion;
  uint64_t txn_id = 0;
  uint32_t attempt = 0;
  int32_t from_shard = 0;
  std::vector<WireAccess> reads;  ///< write flag unused; rows to materialize

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

/// One entry of a tuple batch: a materialized row, encoded by
/// runtime/exchange.h's EncodeRowBytes. Wire cost: 16 bytes + the row bytes.
struct TupleBatchEntry {
  uint32_t table = 0;
  uint64_t row = 0;
  std::string bytes;
};

/// Data plane: one bounded batch of materialized rows. A multi-batch
/// response sets `last` only on the final batch; `batch_index` increases
/// from 0 so the receiver can detect a truncated stream.
struct TupleBatchMsg {
  uint8_t version = kExchangeVersion;
  uint64_t txn_id = 0;
  uint32_t attempt = 0;
  int32_t source_shard = 0;
  uint32_t batch_index = 0;
  uint8_t last = 1;
  std::vector<TupleBatchEntry> entries;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

/// Version byte for telemetry payloads, independent of kWireVersion (same
/// rationale as kExchangeVersion: the telemetry plane can evolve without
/// invalidating the control protocol).
inline constexpr uint8_t kTelemetryVersion = 1;
/// Hard cap on any single string carried by a telemetry payload (span/metric
/// names, thread names). Real names are tens of bytes; anything longer is
/// hostile or corrupt and is rejected before allocation.
inline constexpr size_t kMaxTelemetryStrBytes = 1024;
/// Hard cap on entry counts in one telemetry batch, checked against the
/// declared count before any reserve. The encoder chunks well below this.
inline constexpr uint32_t kMaxTelemetryEntries = 1u << 16;

/// One span/counter event drained from a shard's trace ring. `kind` mirrors
/// obs TraceEventKind (0 = span, 1 = instant, 2 = counter). Up to two
/// integer args ride along; an empty arg name means "absent".
struct TelemetryEvent {
  uint8_t kind = 0;
  uint32_t tid = 0;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  std::string name;
  std::string cat;
  std::string arg1_name;
  int64_t arg1 = 0;
  std::string arg2_name;
  int64_t arg2 = 0;
};

/// One scalar metric series from a shard's registry snapshot. `kind` 0 is a
/// counter (value_bits holds the u64 count), 1 is a gauge (value_bits holds
/// the IEEE-754 bits of the double).
struct TelemetryMetric {
  std::string name;
  uint8_t kind = 0;
  uint64_t value_bits = 0;
};

/// shard -> control: one bounded batch of telemetry. A drain response is a
/// stream of batches with increasing `batch_index`; `last` is set only on
/// the final batch, which also carries the metrics snapshot and thread-name
/// table. `now_us` is the sender's recorder clock at encode time and
/// `dropped` its ring-overwrite loss counter, so the coordinator can report
/// both staleness and loss per process.
struct TelemetryMsg {
  uint8_t version = kTelemetryVersion;
  uint32_t pid = 0;
  int32_t shard = -1;
  uint32_t batch_index = 0;
  uint8_t last = 1;
  uint64_t now_us = 0;
  uint64_t dropped = 0;
  std::vector<std::pair<uint32_t, std::string>> thread_names;
  std::vector<TelemetryMetric> metrics;
  std::vector<TelemetryEvent> events;

  std::string Encode() const;
  bool Decode(std::string_view payload);
};

}  // namespace jecb::net
