// Value: the dynamic cell type of the in-memory row store.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/string_util.h"

namespace jecb {

/// One cell value: int64, double, or string.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}                   // NOLINT(runtime/explicit)
  Value(int v) : v_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : v_(v) {}                    // NOLINT
  Value(std::string v) : v_(std::move(v)) {}    // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  uint64_t Hash() const {
    if (is_int()) return HashInt64(static_cast<uint64_t>(AsInt()));
    if (is_double()) {
      double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    return HashString(AsString());
  }

  std::string ToString() const {
    if (is_int()) return std::to_string(AsInt());
    if (is_double()) return FormatDouble(AsDouble(), 4);
    return AsString();
  }

  bool operator==(const Value&) const = default;
  auto operator<=>(const Value&) const = default;

 private:
  std::variant<int64_t, double, std::string> v_;
};

/// A tuple of values (a row, or a composite key).
using Row = std::vector<Value>;

struct RowHash {
  size_t operator()(const Row& row) const {
    uint64_t h = 0x9ae16a3b2f90404fULL;
    for (const Value& v : row) h = HashCombine(h, v.Hash());
    return h;
  }
};

inline std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  return out + ")";
}

}  // namespace jecb
