#include "storage/database.h"

namespace jecb {

Row TableData::ExtractKey(const Row& row, const std::vector<ColumnIdx>& cols) const {
  Row key;
  key.reserve(cols.size());
  for (ColumnIdx c : cols) key.push_back(row[c]);
  return key;
}

const TableData::KeyIndex* TableData::FindIndex(
    const std::vector<ColumnIdx>& cols) const {
  for (const auto& idx : indexes_) {
    if (idx.cols == cols) return &idx;
  }
  return nullptr;
}

Result<RowId> TableData::Insert(Row row) {
  if (row.size() != meta_->columns.size()) {
    return Status::InvalidArgument("arity mismatch inserting into " + meta_->name +
                                   ": got " + std::to_string(row.size()) +
                                   ", want " + std::to_string(meta_->columns.size()));
  }
  // Lazily create indexes on first insert so the Table metadata (keys) is
  // final by the time data arrives.
  if (indexes_.empty()) {
    if (!meta_->primary_key.empty()) {
      indexes_.push_back(KeyIndex{meta_->primary_key, {}});
    }
    for (const auto& uk : meta_->unique_keys) {
      indexes_.push_back(KeyIndex{uk, {}});
    }
  }
  RowId id = static_cast<RowId>(rows_.size());
  for (auto& idx : indexes_) {
    Row key = ExtractKey(row, idx.cols);
    auto [it, inserted] = idx.map.emplace(std::move(key), id);
    if (!inserted) {
      // Roll back any indexes already updated for this row.
      for (auto& prev : indexes_) {
        if (&prev == &idx) break;
        prev.map.erase(ExtractKey(row, prev.cols));
      }
      return Status::AlreadyExists("duplicate key " +
                                   RowToString(ExtractKey(row, idx.cols)) +
                                   " in " + meta_->name);
    }
  }
  rows_.push_back(std::move(row));
  return id;
}

Result<RowId> TableData::LookupPk(const Row& key) const {
  return LookupUnique(meta_->primary_key, key);
}

Result<RowId> TableData::LookupUnique(const std::vector<ColumnIdx>& key_cols,
                                      const Row& key) const {
  const KeyIndex* idx = FindIndex(key_cols);
  if (idx == nullptr) {
    return Status::NotFound("no unique index on requested columns of " + meta_->name);
  }
  auto it = idx->map.find(key);
  if (it == idx->map.end()) {
    return Status::NotFound("key " + RowToString(key) + " in " + meta_->name);
  }
  return it->second;
}

Database::Database(Schema schema) : schema_(std::move(schema)) {
  data_.reserve(schema_.num_tables());
  for (size_t i = 0; i < schema_.num_tables(); ++i) {
    data_.emplace_back(&schema_.table(static_cast<TableId>(i)));
  }
}

TupleId Database::MustInsert(std::string_view table, Row row) {
  auto tid = schema_.FindTable(table);
  CheckOk(tid.status(), "MustInsert");
  auto res = Insert(tid.value(), std::move(row));
  CheckOk(res.status(), "MustInsert");
  return res.value();
}

Result<TupleId> Database::Insert(TableId table, Row row) {
  if (table >= data_.size()) return Status::OutOfRange("bad table id");
  JECB_ASSIGN_OR_RETURN(RowId rid, data_[table].Insert(std::move(row)));
  return TupleId{table, rid};
}

Result<TupleId> Database::FollowForeignKey(const ForeignKey& fk, TupleId from) const {
  if (from.table != fk.table) {
    return Status::InvalidArgument("tuple is not in the FK's child table");
  }
  const TableData& child = data_[fk.table];
  Row key;
  key.reserve(fk.columns.size());
  for (ColumnIdx c : fk.columns) key.push_back(child.At(from.row, c));
  const TableData& parent = data_[fk.ref_table];
  JECB_ASSIGN_OR_RETURN(RowId rid, parent.LookupUnique(fk.ref_columns, key));
  return TupleId{fk.ref_table, rid};
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& t : data_) n += t.num_rows();
  return n;
}

}  // namespace jecb
