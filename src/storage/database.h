// In-memory row store over a Schema, with key indexes and foreign-key
// navigation. This is the substrate the paper ran on SQL Server: enough of a
// database to populate benchmark data, evaluate join paths, and resolve the
// tuples a transaction touches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "storage/value.h"

namespace jecb {

using RowId = uint32_t;

/// Identity of one stored tuple; the unit the workload trace records.
struct TupleId {
  TableId table = 0;
  RowId row = 0;

  bool operator==(const TupleId&) const = default;
  auto operator<=>(const TupleId&) const = default;
};

struct TupleIdHash {
  size_t operator()(const TupleId& t) const {
    return HashCombine(HashInt64(t.table), HashInt64(t.row));
  }
};

/// Rows of one table plus hash indexes on the primary key and every declared
/// alternate unique key (foreign keys may target alternates).
class TableData {
 public:
  TableData() = default;
  TableData(const Table* meta) : meta_(meta) {}  // NOLINT(runtime/explicit)

  /// Inserts a full row; enforces arity and key uniqueness.
  Result<RowId> Insert(Row row);

  /// RowId by primary-key values, or NotFound.
  Result<RowId> LookupPk(const Row& key) const;

  /// RowId by the values of an arbitrary unique key (identified by its
  /// column indexes), or NotFound.
  Result<RowId> LookupUnique(const std::vector<ColumnIdx>& key_cols,
                             const Row& key) const;

  const Row& row(RowId id) const { return rows_[id]; }
  const Value& At(RowId id, ColumnIdx col) const { return rows_[id][col]; }
  size_t num_rows() const { return rows_.size(); }
  const Table& meta() const { return *meta_; }

 private:
  // One hash index per unique key, keyed by the key's column list.
  struct KeyIndex {
    std::vector<ColumnIdx> cols;
    std::unordered_map<Row, RowId, RowHash> map;
  };

  Row ExtractKey(const Row& row, const std::vector<ColumnIdx>& cols) const;
  const KeyIndex* FindIndex(const std::vector<ColumnIdx>& cols) const;

  const Table* meta_ = nullptr;
  std::vector<Row> rows_;
  std::vector<KeyIndex> indexes_;  // [0] is the PK index when a PK exists
};

/// A populated database: schema + data + FK navigation.
class Database {
 public:
  explicit Database(Schema schema);

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  TableData& table_data(TableId id) { return data_[id]; }
  const TableData& table_data(TableId id) const { return data_[id]; }

  /// Inserts into the table named `table`; aborts on schema violation
  /// (generator bugs), returns the new TupleId.
  TupleId MustInsert(std::string_view table, Row row);

  /// Checked insert.
  Result<TupleId> Insert(TableId table, Row row);

  /// Follows a foreign key from a stored tuple to its parent tuple.
  /// Fails with NotFound if the parent is absent (dangling FK).
  Result<TupleId> FollowForeignKey(const ForeignKey& fk, TupleId from) const;

  /// Reads one column of a stored tuple.
  const Value& GetValue(TupleId id, ColumnIdx col) const {
    return data_[id.table].At(id.row, col);
  }

  /// Total tuples across all tables.
  size_t TotalRows() const;

 private:
  Schema schema_;
  std::vector<TableData> data_;
};

}  // namespace jecb
