#include <gtest/gtest.h>

#include "jecb/jecb.h"
#include "partition/procedure_router.h"
#include "test_util.h"
#include "workloads/seats.h"

namespace jecb {
namespace {

class ProcedureRouterTest : public ::testing::Test {
 protected:
  ProcedureRouterTest()
      : fixture_(testing::MakeCustInfoDb()),
        procs_(sql::ParseProcedures(testing::CustInfoSql()).value()) {
    Trace trace = testing::MakeCustInfoTrace(fixture_, 6);
    for (auto& txn : trace.mutable_transactions()) {
      for (auto& a : txn.accesses) a.write = true;
    }
    JecbOptions opt;
    opt.num_partitions = 2;
    auto res = Jecb(opt).Partition(fixture_.db.get(), procs_, trace);
    CheckOk(res.status(), "ProcedureRouterTest");
    solution_ = std::make_unique<DatabaseSolution>(std::move(res.value().solution));
  }

  testing::CustInfoDb fixture_;
  std::vector<sql::Procedure> procs_;
  std::unique_ptr<DatabaseSolution> solution_;
};

TEST_F(ProcedureRouterTest, RoutesByBoundParameter) {
  ProcedureRouter router(fixture_.db.get(), solution_.get(), procs_);
  // CustInfo's @cust_id binds CA_C_ID — the partitioning attribute itself.
  auto d1 = router.Route("CustInfo", {{"cust_id", Value(1)}});
  auto d2 = router.Route("CustInfo", {{"cust_id", Value(2)}});
  EXPECT_FALSE(d1.broadcast);
  EXPECT_FALSE(d2.broadcast);
  ASSERT_EQ(d1.partitions.size(), 1u);
  ASSERT_EQ(d2.partitions.size(), 1u);
  EXPECT_NE(d1.partitions[0], d2.partitions[0]);
  EXPECT_NE(d1.routed_by.find("CA_C_ID"), std::string::npos);

  // The routed partition matches where the customer's tuples actually live.
  EXPECT_EQ(d1.partitions[0],
            solution_->PartitionOf(*fixture_.db, fixture_.trades[0]));
}

TEST_F(ProcedureRouterTest, MissingParameterBroadcasts) {
  ProcedureRouter router(fixture_.db.get(), solution_.get(), procs_);
  auto d = router.Route("CustInfo", {});
  EXPECT_TRUE(d.broadcast);
  EXPECT_EQ(d.partitions.size(), 2u);
}

TEST_F(ProcedureRouterTest, UnknownProcedureBroadcasts) {
  ProcedureRouter router(fixture_.db.get(), solution_.get(), procs_);
  auto d = router.Route("NoSuchProc", {{"x", Value(1)}});
  EXPECT_TRUE(d.broadcast);
}

TEST_F(ProcedureRouterTest, UnknownValueBroadcasts) {
  ProcedureRouter router(fixture_.db.get(), solution_.get(), procs_);
  auto d = router.Route("CustInfo", {{"cust_id", Value(999)}});
  EXPECT_TRUE(d.broadcast);
}

TEST(ProcedureRouterSeatsTest, RoutesThroughJoinPathAttributes) {
  // SEATS: UpdateReservation's @r_id binds RESERVATION.R_ID, which is finer
  // than the C_ID partitioning attribute — routable via a lookup table even
  // though RESERVATION has no customer column.
  SeatsConfig cfg;
  cfg.customers = 200;
  WorkloadBundle bundle = SeatsWorkload(cfg).Make(4000, 8);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);
  JecbOptions opt;
  opt.num_partitions = 4;
  auto res = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
  CheckOk(res.status(), "seats router");
  ProcedureRouter router(bundle.db.get(), &res.value().solution, bundle.procedures);

  const Schema& s = bundle.db->schema();
  TableId reservation = s.FindTable("RESERVATION").value();
  size_t single = 0;
  const size_t kProbes = 50;
  for (RowId r = 0; r < kProbes; ++r) {
    Value r_id = bundle.db->GetValue({reservation, r}, 0);
    auto d = router.Route("UpdateReservation", {{"r_id", r_id}});
    if (!d.broadcast && d.partitions.size() == 1) {
      ++single;
      // Routed partition must hold the reservation tuple.
      EXPECT_EQ(d.partitions[0],
                res.value().solution.PartitionOf(*bundle.db, {reservation, r}));
    }
  }
  EXPECT_EQ(single, kProbes);
}

}  // namespace
}  // namespace jecb
