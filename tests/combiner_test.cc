#include <gtest/gtest.h>

#include "jecb/combiner.h"
#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "test_util.h"

namespace jecb {
namespace {

/// Drives the full pipeline on the CustInfo fixture but inspects the
/// combiner's internals through its report.
class CombinerTest : public ::testing::Test {
 protected:
  CombinerTest() : fixture_(testing::MakeCustInfoDb()) {}

  testing::CustInfoDb fixture_;
};

TEST_F(CombinerTest, SingleClassGlobalSolution) {
  // Writes make the three tables partitioned; CUSTOMER stays read-only.
  Trace trace = testing::MakeCustInfoTrace(fixture_, 6);
  for (auto& txn : trace.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  auto procs = sql::ParseProcedures(testing::CustInfoSql()).value();
  JecbOptions opt;
  opt.num_partitions = 2;
  auto result = Jecb(opt).Partition(fixture_.db.get(), procs, trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const JecbResult& r = result.value();

  // CUSTOMER replicated, the other three partitioned by the customer id.
  const Schema& s = fixture_.db->schema();
  EXPECT_EQ(s.table(s.FindTable("CUSTOMER").value()).access_class,
            AccessClass::kReadOnly);
  EXPECT_EQ(r.combiner_report.evaluated_combinations, 1u);
  EXPECT_DOUBLE_EQ(r.combiner_report.best_train_cost, 0.0);

  EvalResult ev = Evaluate(*fixture_.db, r.solution, trace);
  EXPECT_EQ(ev.distributed_txns, 0u);
}

TEST_F(CombinerTest, ConflictingClassesPickCheaperAttribute) {
  // Class A (heavy) groups by customer; class B (light) groups trades by
  // T_QTY buckets, which is incompatible. The combiner must pick the
  // customer attribute and leave class B distributed.
  Trace trace = testing::MakeCustInfoTrace(fixture_, 10);
  for (auto& txn : trace.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  uint32_t cls_b = trace.InternClass("ByQty");
  for (int rep = 0; rep < 3; ++rep) {
    for (int64_t qty = 1; qty <= 4; ++qty) {
      Transaction txn;
      txn.class_id = cls_b;
      for (TupleId t : fixture_.trades) {
        if (fixture_.db->GetValue(t, 2).AsInt() == qty) txn.Write(t);
      }
      if (!txn.accesses.empty()) trace.Add(std::move(txn));
    }
  }
  std::string sql = std::string(testing::CustInfoSql()) + R"SQL(
PROCEDURE ByQty(@qty) {
  UPDATE TRADE SET T_CA_ID = T_CA_ID WHERE T_QTY = @qty;
}
)SQL";
  auto procs = sql::ParseProcedures(sql).value();
  JecbOptions opt;
  opt.num_partitions = 2;
  auto result = Jecb(opt).Partition(fixture_.db.get(), procs, trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const JecbResult& r = result.value();

  // CustInfo dominates the mix: its attribute must win.
  EXPECT_NE(r.combiner_report.chosen_attr.find("CA_C_ID"), std::string::npos)
      << r.combiner_report.chosen_attr;
  EvalResult ev = Evaluate(*fixture_.db, r.solution, trace);
  uint32_t cls_a = trace.FindClass("CustInfo").value();
  EXPECT_DOUBLE_EQ(ev.class_cost(cls_a), 0.0);
  EXPECT_GT(ev.class_cost(cls_b), 0.0);
}

TEST_F(CombinerTest, UncoveredTableFallsBackToReplication) {
  // Only TRADE is written (partitioned); a class covering just TRADE exists,
  // but HOLDING_SUMMARY also becomes partitioned via writes from a class
  // whose solutions are incompatible with every candidate attribute.
  Trace trace;
  uint32_t cls = trace.InternClass("TradeOnly");
  for (int rep = 0; rep < 10; ++rep) {
    for (TupleId t : fixture_.trades) {
      Transaction txn;
      txn.class_id = cls;
      txn.Write(t);
      trace.Add(std::move(txn));
    }
  }
  const char* sql = R"SQL(
PROCEDURE TradeOnly(@t) {
  UPDATE TRADE SET T_QTY = 0 WHERE T_ID = @t;
}
)SQL";
  auto procs = sql::ParseProcedures(sql).value();
  JecbOptions opt;
  opt.num_partitions = 2;
  auto result = Jecb(opt).Partition(fixture_.db.get(), procs, trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Untouched tables (never accessed): replicated by default, and reported.
  const Schema& s = fixture_.db->schema();
  const TablePartitioner* hs =
      result.value().solution.Get(s.FindTable("HOLDING_SUMMARY").value());
  EXPECT_TRUE(hs == nullptr ||
              dynamic_cast<const ReplicatedTable*>(hs) != nullptr);
  const TablePartitioner* trade =
      result.value().solution.Get(s.FindTable("TRADE").value());
  ASSERT_NE(trade, nullptr);
  EXPECT_EQ(dynamic_cast<const ReplicatedTable*>(trade), nullptr);
}

TEST_F(CombinerTest, ReportCountsSearchSpace) {
  Trace trace = testing::MakeCustInfoTrace(fixture_, 6);
  for (auto& txn : trace.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  auto procs = sql::ParseProcedures(testing::CustInfoSql()).value();
  JecbOptions opt;
  opt.num_partitions = 2;
  auto result = Jecb(opt).Partition(fixture_.db.get(), procs, trace);
  ASSERT_TRUE(result.ok());
  const CombinerReport& rep = result.value().combiner_report;
  EXPECT_GE(rep.naive_search_space, 1.0);
  EXPECT_GE(rep.evaluated_combinations, 1u);
  EXPECT_LE(static_cast<double>(rep.evaluated_combinations), rep.naive_search_space);
  EXPECT_FALSE(rep.candidate_attrs.empty());
  EXPECT_FALSE(rep.chosen_attr.empty());
}

TEST_F(CombinerTest, FormatHelpersRenderTables) {
  Trace trace = testing::MakeCustInfoTrace(fixture_, 6);
  for (auto& txn : trace.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  auto procs = sql::ParseProcedures(testing::CustInfoSql()).value();
  JecbOptions opt;
  opt.num_partitions = 2;
  auto result = Jecb(opt).Partition(fixture_.db.get(), procs, trace);
  ASSERT_TRUE(result.ok());
  std::string cls_table =
      FormatClassSolutions(fixture_.db->schema(), result.value().classes);
  EXPECT_NE(cls_table.find("CustInfo"), std::string::npos);
  EXPECT_NE(cls_table.find("CA_C_ID"), std::string::npos);
  std::string tbl =
      FormatTableSolutions(fixture_.db->schema(), result.value().solution);
  EXPECT_NE(tbl.find("TRADE"), std::string::npos);
  EXPECT_NE(tbl.find("replicated (read-only)"), std::string::npos);
}

}  // namespace
}  // namespace jecb
