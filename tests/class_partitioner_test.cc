#include <gtest/gtest.h>

#include "jecb/class_partitioner.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace jecb {
namespace {

class ClassPartitionerTest : public ::testing::Test {
 protected:
  ClassPartitionerTest() : fixture_(testing::MakeCustInfoDb()) {
    Schema& s = fixture_.db->mutable_schema();
    s.mutable_table(s.FindTable("CUSTOMER").value()).access_class =
        AccessClass::kReadOnly;
    lattice_ = std::make_unique<AttributeLattice>(&fixture_.db->schema());
    auto proc = sql::ParseProcedure(testing::CustInfoSql());
    auto info = sql::AnalyzeProcedure(fixture_.db->schema(), proc.value());
    CheckOk(info.status(), "fixture");
    graph_ = BuildJoinGraph(fixture_.db->schema(), info.value());
  }

  ClassPartitioner MakePartitioner(ClassPartitionerOptions opt = {}) {
    opt.num_partitions = 2;
    return ClassPartitioner(fixture_.db.get(), lattice_.get(), opt);
  }

  const Schema& schema() const { return fixture_.db->schema(); }
  ColumnRef Ref(const char* q) const { return schema().ResolveQualified(q).value(); }

  testing::CustInfoDb fixture_;
  std::unique_ptr<AttributeLattice> lattice_;
  JoinGraph graph_;
};

TEST_F(ClassPartitionerTest, CustInfoIsMappingIndependentOnCaCid) {
  Trace trace = testing::MakeCustInfoTrace(fixture_);
  auto result = MakePartitioner().Partition(graph_, trace, "CustInfo", 0, 1.0);
  ASSERT_EQ(result.total_solutions.size(), 1u);
  const ClassSolution& sol = result.total_solutions[0];
  EXPECT_EQ(sol.tier, SolutionTier::kMappingIndependent);
  EXPECT_TRUE(sol.total);
  // The CA_ID-rooted tree is NOT mapping independent (two accounts per
  // customer), so the surviving root must be the CA_C_ID granularity.
  EXPECT_TRUE(lattice_->Equivalent(sol.tree.root, Ref("CUSTOMER_ACCOUNT.CA_C_ID")));
  EXPECT_EQ(sol.tree.paths.size(), 3u);
  EXPECT_FALSE(result.read_only);
}

TEST_F(ClassPartitionerTest, MeasureTreeFitDetectsViolations) {
  // Tree rooted at CA_ID: CustInfo transactions touch two accounts each.
  JoinTree tree;
  tree.root = Ref("CUSTOMER_ACCOUNT.CA_ID");
  JoinPath ca;
  ca.source_table = schema().FindTable("CUSTOMER_ACCOUNT").value();
  ca.dest = tree.root;
  tree.paths[ca.source_table] = ca;
  Trace trace = testing::MakeCustInfoTrace(fixture_);
  TreeFit fit = MeasureTreeFit(*fixture_.db, tree, trace);
  EXPECT_EQ(fit.txns, trace.size());
  EXPECT_EQ(fit.violations, trace.size());

  // Rooted at CA_C_ID instead: no violations.
  tree.root = Ref("CUSTOMER_ACCOUNT.CA_C_ID");
  tree.paths[ca.source_table].dest = tree.root;
  fit = MeasureTreeFit(*fixture_.db, tree, trace);
  EXPECT_EQ(fit.violations, 0u);
}

TEST_F(ClassPartitionerTest, QuasiTierAcceptsSmallViolationFraction) {
  Trace trace = testing::MakeCustInfoTrace(fixture_, 10);
  // Poison a few transactions with cross-customer reads.
  for (size_t i = 0; i < 2; ++i) {
    trace.mutable_transactions()[i].Read(fixture_.trades[0]);
    trace.mutable_transactions()[i].Read(fixture_.trades[1]);
  }
  ClassPartitionerOptions opt;
  opt.quasi_tolerance = 0.25;
  auto result = MakePartitioner(opt).Partition(graph_, trace, "CustInfo", 0, 1.0);
  ASSERT_EQ(result.total_solutions.size(), 1u);
  EXPECT_EQ(result.total_solutions[0].tier, SolutionTier::kQuasiIndependent);
  EXPECT_GT(result.total_solutions[0].violation_fraction, 0.0);
  EXPECT_LE(result.total_solutions[0].violation_fraction, 0.25);
}

TEST_F(ClassPartitionerTest, StrictModeRejectsViolations) {
  Trace trace = testing::MakeCustInfoTrace(fixture_, 10);
  for (auto& txn : trace.mutable_transactions()) {
    txn.Read(fixture_.trades[0]);
    txn.Read(fixture_.trades[1]);  // every txn crosses customers
  }
  ClassPartitionerOptions opt;
  opt.quasi_tolerance = 0.0;
  opt.enable_stats_fallback = false;
  auto result = MakePartitioner(opt).Partition(graph_, trace, "CustInfo", 0, 1.0);
  EXPECT_TRUE(result.total_solutions.empty());
  EXPECT_FALSE(result.partitionable());
}

TEST(StatsFallbackTest, LearnsHiddenClusters) {
  // A table whose rows are co-accessed in fixed hidden pairs {j, 31-j}: no
  // schema attribute captures the pairing, hash scatters it, range splits
  // it, but the min-cut over co-accessed key values learns it (Sec. 5.3).
  Schema s;
  TableId rows = s.AddTable("ROWS").value();
  CheckOk(s.AddColumn(rows, "R_ID", ValueType::kInt64), "stats");
  CheckOk(s.AddColumn(rows, "R_PAYLOAD", ValueType::kInt64), "stats");
  CheckOk(s.SetPrimaryKey(rows, {"R_ID"}), "stats");
  Database db{std::move(s)};
  std::vector<TupleId> tuples;
  for (int64_t id = 0; id < 32; ++id) {
    tuples.push_back(db.MustInsert("ROWS", {id, id * 10}));
  }
  Trace trace;
  uint32_t cls = trace.InternClass("Paired");
  for (int rep = 0; rep < 30; ++rep) {
    for (int64_t j = 0; j < 8; ++j) {
      Transaction txn;
      txn.class_id = cls;
      txn.Read(tuples[j]);
      txn.Read(tuples[31 - j]);
      trace.Add(std::move(txn));
    }
  }
  AttributeLattice lattice(&db.schema());
  ClassPartitionerOptions opt;
  opt.num_partitions = 4;
  opt.quasi_tolerance = 0.0;
  ClassPartitioner partitioner(&db, &lattice, opt);
  JoinGraph graph;
  graph.tables = {rows};
  graph.partitioned_tables = {rows};
  graph.candidate_attrs = {ColumnRef{rows, 0}};
  auto result = partitioner.Partition(graph, trace, "Paired", 0, 1.0);
  ASSERT_EQ(result.total_solutions.size(), 1u);
  const ClassSolution& sol = result.total_solutions[0];
  EXPECT_EQ(sol.tier, SolutionTier::kStatistics);
  ASSERT_NE(sol.mapping, nullptr);
  EXPECT_EQ(sol.mapping->name(), "lookup");
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(sol.mapping->Map(Value(j)), sol.mapping->Map(Value(31 - j)))
        << "pair " << j;
  }
  EXPECT_LT(sol.class_cost, 0.05);
}

TEST_F(ClassPartitionerTest, PartialSolutionsFromSubsets) {
  // Remove HOLDING_SUMMARY's join: HS becomes unreachable, no root exists,
  // and the class splits into components yielding partial solutions.
  JoinGraph g = graph_;
  std::vector<FkIdx> kept;
  TableId hs = schema().FindTable("HOLDING_SUMMARY").value();
  for (FkIdx f : g.active_fks) {
    if (schema().foreign_keys()[f].table != hs) kept.push_back(f);
  }
  g.active_fks = kept;
  Trace trace = testing::MakeCustInfoTrace(fixture_);
  auto result = MakePartitioner().Partition(g, trace, "CustInfo", 0, 1.0);
  EXPECT_TRUE(result.total_solutions.empty());
  ASSERT_GE(result.partial_solutions.size(), 2u);
  for (const auto& p : result.partial_solutions) {
    EXPECT_FALSE(p.total);
  }
}

TEST_F(ClassPartitionerTest, ReadOnlyClassFlagged) {
  JoinGraph empty;
  TableId cust = schema().FindTable("CUSTOMER").value();
  empty.tables = {cust};
  Trace trace = testing::MakeCustInfoTrace(fixture_);
  auto result = MakePartitioner().Partition(empty, trace, "RO", 0, 1.0);
  EXPECT_TRUE(result.read_only);
  EXPECT_FALSE(result.partitionable());
}

TEST_F(ClassPartitionerTest, CoarserTreeEliminated) {
  // Both the CA_C_ID-rooted and the C_TAX_ID-rooted trees would be MI; the
  // coarser (C_TAX_ID) must be eliminated (Example 7). Activate the
  // CA -> CUSTOMER join so C_TAX_ID becomes reachable.
  Schema& s = fixture_.db->mutable_schema();
  s.mutable_table(s.FindTable("CUSTOMER").value()).access_class =
      AccessClass::kReadOnly;
  JoinGraph g = graph_;
  TableId ca = schema().FindTable("CUSTOMER_ACCOUNT").value();
  for (FkIdx f = 0; f < schema().foreign_keys().size(); ++f) {
    if (schema().foreign_keys()[f].table == ca) g.active_fks.push_back(f);
  }
  g.tables.insert(schema().FindTable("CUSTOMER").value());
  g.candidate_attrs.insert(Ref("CUSTOMER.C_TAX_ID"));
  Trace trace = testing::MakeCustInfoTrace(fixture_);
  auto result = MakePartitioner().Partition(g, trace, "CustInfo", 0, 1.0);
  ASSERT_EQ(result.total_solutions.size(), 1u);
  // The surviving root must NOT be the coarser C_TAX_ID.
  EXPECT_FALSE(result.total_solutions[0].tree.root == Ref("CUSTOMER.C_TAX_ID"));
}

TEST(SolutionTierTest, Names) {
  EXPECT_EQ(SolutionTierToString(SolutionTier::kMappingIndependent),
            "mapping-independent");
  EXPECT_EQ(SolutionTierToString(SolutionTier::kQuasiIndependent),
            "quasi-independent");
  EXPECT_EQ(SolutionTierToString(SolutionTier::kStatistics), "statistics");
}

}  // namespace
}  // namespace jecb
