// Tests for the fault-injection and recovery layer: determinism of the
// seed-driven injector, retry/backoff semantics in the 2PC coordinator
// (retry-then-succeed, budget exhaustion -> recorded failure), stalled-shard
// backpressure through the bounded work queues (no deadlock; run under
// ThreadSanitizer by tools/run_tsan.sh), thread-count-independence of the
// replay outcome signature, and the metrics conservation invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "partition/evaluator.h"
#include "runtime/fault_injector.h"
#include "dist/replay.h"
#include "workloads/tpcc.h"

namespace jecb {
namespace {

WorkloadBundle SmallTpcc(size_t txns = 400, uint64_t seed = 7) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 20;
  cfg.initial_orders_per_district = 2;
  return TpccWorkload(cfg).Make(txns, seed);
}

RuntimeOptions FastOptions() {
  RuntimeOptions opt;
  opt.num_clients = 4;
  opt.local_work_us = 0;
  opt.round_trip_us = 0;
  opt.lock_hold_us = 0;
  return opt;
}

/// Fault plan with near-zero simulated durations so the fault *logic* is
/// exercised without spending wall time on stalls/timeouts/backoff.
FaultPlan FastFaults() {
  FaultPlan plan;
  plan.stall_us = 0;
  plan.timeout_us = 0;
  plan.backoff_base_us = 0;
  plan.backoff_cap_us = 0;
  return plan;
}

uint64_t CountTwoPhaseCommitTxns(const Database& db,
                                 const DatabaseSolution& solution,
                                 const Trace& trace) {
  uint64_t n = 0;
  for (const ClassifiedTxn& ct : ClassifyTrace(db, solution, trace)) {
    if (ct.RequiresTwoPhaseCommit()) ++n;
  }
  return n;
}

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfInputs) {
  FaultPlan plan;
  plan.stall_rate = 0.3;
  plan.prepare_reject_rate = 0.3;
  plan.coordinator_timeout_rate = 0.3;
  plan.shard_down_rate = 0.3;
  FaultInjector a(plan), b(plan);
  for (uint64_t txn = 0; txn < 200; ++txn) {
    for (uint32_t attempt = 0; attempt < 3; ++attempt) {
      for (int32_t shard = 0; shard < 4; ++shard) {
        EXPECT_EQ(a.ShardDown(txn, attempt, shard), b.ShardDown(txn, attempt, shard));
        EXPECT_EQ(a.ShardStalls(txn, attempt, shard),
                  b.ShardStalls(txn, attempt, shard));
        EXPECT_EQ(a.PrepareRejected(txn, attempt, shard),
                  b.PrepareRejected(txn, attempt, shard));
      }
      EXPECT_EQ(a.CoordinatorTimesOut(txn, attempt),
                b.CoordinatorTimesOut(txn, attempt));
      EXPECT_EQ(a.BackoffUs(txn, attempt), b.BackoffUs(txn, attempt));
      // Re-asking the same injector must give the same answer: no state.
      EXPECT_EQ(a.CoordinatorTimesOut(txn, attempt),
                a.CoordinatorTimesOut(txn, attempt));
    }
  }
}

TEST(FaultInjectorTest, SeedSelectsADifferentFaultSchedule) {
  FaultPlan p1;
  p1.prepare_reject_rate = 0.5;
  FaultPlan p2 = p1;
  p2.seed = p1.seed + 1;
  FaultInjector a(p1), b(p2);
  int differs = 0;
  for (uint64_t txn = 0; txn < 500; ++txn) {
    if (a.PrepareRejected(txn, 0, 0) != b.PrepareRejected(txn, 0, 0)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultInjectorTest, RatesApproximateTheConfiguredProbability) {
  FaultPlan plan;
  plan.prepare_reject_rate = 0.25;
  FaultInjector inj(plan);
  int hits = 0;
  const int n = 20000;
  for (uint64_t txn = 0; txn < n; ++txn) {
    if (inj.PrepareRejected(txn, 0, 0)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultInjectorTest, BackoffIsExponentialCappedAndJittered) {
  FaultPlan plan;
  plan.backoff_base_us = 100;
  plan.backoff_cap_us = 1000;
  FaultInjector inj(plan);
  for (uint64_t txn = 0; txn < 50; ++txn) {
    uint32_t prev_nominal = 0;
    for (uint32_t attempt = 0; attempt < 40; ++attempt) {
      uint32_t wait = inj.BackoffUs(txn, attempt);
      uint64_t nominal =
          attempt >= 32 ? plan.backoff_cap_us
                        : std::min<uint64_t>(plan.backoff_cap_us,
                                             uint64_t{plan.backoff_base_us}
                                                 << attempt);
      // Jitter keeps the wait inside [nominal/2, nominal).
      EXPECT_GE(wait, nominal / 2) << "attempt " << attempt;
      EXPECT_LT(wait, nominal + 1) << "attempt " << attempt;
      EXPECT_GE(nominal, prev_nominal);  // never shrinks before the cap
      prev_nominal = static_cast<uint32_t>(nominal);
    }
  }
  FaultPlan zero = plan;
  zero.backoff_base_us = 0;
  EXPECT_EQ(FaultInjector(zero).BackoffUs(1, 1), 0u);
}

TEST(FaultInjectorTest, ShardDownComesInWindowsAndRecoversAcrossAttempts) {
  FaultPlan plan;
  plan.shard_down_rate = 0.5;
  plan.down_window_txns = 16;
  FaultInjector inj(plan);
  // All txn ids inside one window share the down decision.
  for (uint64_t window = 0; window < 50; ++window) {
    bool first = inj.ShardDown(window * 16, 0, 2);
    for (uint64_t t = 1; t < 16; ++t) {
      EXPECT_EQ(inj.ShardDown(window * 16 + t, 0, 2), first);
    }
  }
  // At rate 0.5 some window must be down and some up.
  int down = 0;
  for (uint64_t w = 0; w < 64; ++w) down += inj.ShardDown(w * 16, 0, 0) ? 1 : 0;
  EXPECT_GT(down, 0);
  EXPECT_LT(down, 64);
  // Retries shift the window: some txn that is down on attempt 0 must find
  // the shard back up on a later attempt.
  bool recovered = false;
  for (uint64_t t = 0; t < 1000 && !recovered; ++t) {
    if (inj.ShardDown(t, 0, 1) && !inj.ShardDown(t, 3, 1)) recovered = true;
  }
  EXPECT_TRUE(recovered);
}

TEST(FaultInjectorTest, DisabledPlanInjectsNothing) {
  FaultPlan plan;  // all rates zero
  EXPECT_FALSE(plan.enabled());
  FaultInjector inj(plan);
  for (uint64_t txn = 0; txn < 100; ++txn) {
    EXPECT_FALSE(inj.ShardDown(txn, 0, 0));
    EXPECT_FALSE(inj.ShardStalls(txn, 0, 0));
    EXPECT_FALSE(inj.PrepareRejected(txn, 0, 0));
    EXPECT_FALSE(inj.CoordinatorTimesOut(txn, 0));
  }
}

TEST(FaultReplayTest, RetryThenSucceedRecoversMostTransactions) {
  WorkloadBundle b = SmallTpcc(500);
  DatabaseSolution hash = MakeNaiveHashSolution(*b.db, 4);
  RuntimeOptions opt = FastOptions();
  opt.faults = FastFaults();
  opt.faults.prepare_reject_rate = 0.1;
  opt.faults.max_attempts = 6;
  ReplayReport r = Replay(*b.db, hash, b.trace, opt, "retry-then-succeed");

  EXPECT_EQ(r.committed + r.failed, r.total_txns);
  EXPECT_GT(r.aborts, 0u);
  EXPECT_GT(r.retries, 0u);
  EXPECT_EQ(r.aborts, r.retries + r.failed);
  // With 6 attempts at a 10% per-participant reject rate, retries recover
  // the overwhelming majority of transactions.
  EXPECT_GT(r.committed, r.total_txns * 9 / 10);
  // Committed-after-retry latencies were recorded.
  EXPECT_GT(r.retry.count, 0u);
  EXPECT_LE(r.retry.count, r.distributed.count);
}

TEST(FaultReplayTest, BudgetExhaustionRecordsFailureNotDrop) {
  WorkloadBundle b = SmallTpcc(400);
  DatabaseSolution hash = MakeNaiveHashSolution(*b.db, 4);
  const uint64_t two_pc = CountTwoPhaseCommitTxns(*b.db, hash, b.trace);
  ASSERT_GT(two_pc, 0u);

  RuntimeOptions opt = FastOptions();
  opt.faults = FastFaults();
  opt.faults.prepare_reject_rate = 1.0;  // every prepare votes no
  opt.faults.max_attempts = 3;
  ReplayReport r = Replay(*b.db, hash, b.trace, opt, "budget-exhaustion");

  // Every coordinated txn fails after exactly max_attempts attempts; every
  // purely local txn still commits. Nothing is silently dropped.
  EXPECT_EQ(r.failed, two_pc);
  EXPECT_EQ(r.committed, r.total_txns - two_pc);
  EXPECT_EQ(r.aborts, two_pc * 3);
  EXPECT_EQ(r.retries, two_pc * 2);
  EXPECT_EQ(r.distributed_committed, 0u);
  EXPECT_EQ(r.retry.count, 0u);
}

TEST(FaultReplayTest, StalledShardBackpressuresWithoutDeadlock) {
  WorkloadBundle b = SmallTpcc(250);
  DatabaseSolution hash = MakeNaiveHashSolution(*b.db, 4);
  RuntimeOptions opt = FastOptions();
  opt.num_clients = 8;       // more clients than shards
  opt.max_queue_depth = 2;   // tiny queues: stalls must backpressure
  opt.faults = FastFaults();
  opt.faults.stall_rate = 1.0;  // every prepare stalls its participant
  opt.faults.stall_us = 50;
  ReplayReport r = Replay(*b.db, hash, b.trace, opt, "backpressure");

  // The run completing at all is the deadlock check (TSan validates the
  // lock discipline); conservation shows no txn was lost to backpressure.
  EXPECT_EQ(r.committed + r.failed, r.total_txns);
  EXPECT_EQ(r.failed, 0u);  // stalls slow transactions, never abort them
  EXPECT_GT(r.stalls_injected, 0u);
  uint64_t shard_stalls = 0;
  for (const ShardReport& s : r.shards) shard_stalls += s.stalls;
  EXPECT_EQ(shard_stalls, r.stalls_injected);
}

TEST(FaultReplayTest, OutcomeIsBitIdenticalAcrossClientCounts) {
  WorkloadBundle b = SmallTpcc(400);
  DatabaseSolution hash = MakeNaiveHashSolution(*b.db, 4);
  RuntimeOptions opt = FastOptions();
  opt.faults = FastFaults();
  opt.faults.prepare_reject_rate = 0.2;
  opt.faults.coordinator_timeout_rate = 0.1;
  opt.faults.shard_down_rate = 0.1;
  opt.faults.stall_rate = 0.2;

  uint64_t baseline_signature = 0;
  ReplayReport baseline;
  for (int clients : {1, 4, 8}) {
    opt.num_clients = clients;
    ReplayReport r = Replay(*b.db, hash, b.trace, opt, "determinism");
    if (clients == 1) {
      baseline_signature = r.OutcomeSignature();
      baseline = r;
      continue;
    }
    EXPECT_EQ(r.OutcomeSignature(), baseline_signature)
        << "clients=" << clients;
    EXPECT_EQ(r.committed, baseline.committed);
    EXPECT_EQ(r.failed, baseline.failed);
    EXPECT_EQ(r.aborts, baseline.aborts);
    EXPECT_EQ(r.retries, baseline.retries);
    EXPECT_EQ(r.coordinator_timeouts, baseline.coordinator_timeouts);
    EXPECT_EQ(r.shard_down_aborts, baseline.shard_down_aborts);
    for (size_t s = 0; s < r.shards.size(); ++s) {
      EXPECT_EQ(r.shards[s].down_events, baseline.shards[s].down_events);
      EXPECT_EQ(r.shards[s].prepare_rejects, baseline.shards[s].prepare_rejects);
      EXPECT_EQ(r.shards[s].participation_attempts,
                baseline.shards[s].participation_attempts);
    }
  }
}

TEST(FaultReplayTest, MetricsAccountingAcrossAllFaultKinds) {
  WorkloadBundle b = SmallTpcc(500);
  DatabaseSolution hash = MakeNaiveHashSolution(*b.db, 4);
  RuntimeOptions opt = FastOptions();
  opt.faults = FastFaults();
  opt.faults.stall_rate = 0.2;
  opt.faults.prepare_reject_rate = 0.2;
  opt.faults.coordinator_timeout_rate = 0.1;
  opt.faults.shard_down_rate = 0.2;
  opt.faults.down_window_txns = 32;
  opt.faults.max_attempts = 4;
  ReplayReport r = Replay(*b.db, hash, b.trace, opt, "accounting");

  EXPECT_EQ(r.committed + r.failed, r.total_txns);
  EXPECT_EQ(r.aborts, r.retries + r.failed);
  // Every abort has exactly one recorded cause.
  EXPECT_EQ(r.aborts,
            r.prepare_rejects + r.coordinator_timeouts + r.shard_down_aborts);
  for (const ShardReport& s : r.shards) {
    EXPECT_GE(s.participation_attempts, s.dist_participations);
    EXPECT_GE(s.availability(), 0.0);
    EXPECT_LE(s.availability(), 1.0);
  }
  // Down events really depressed availability somewhere.
  double min_availability = 1.0;
  for (const ShardReport& s : r.shards) {
    min_availability = std::min(min_availability, s.availability());
  }
  EXPECT_LT(min_availability, 1.0);
}

TEST(FaultReplayTest, CoordinatorTimeoutsAbortAndAreCounted) {
  WorkloadBundle b = SmallTpcc(300);
  DatabaseSolution hash = MakeNaiveHashSolution(*b.db, 4);
  const uint64_t two_pc = CountTwoPhaseCommitTxns(*b.db, hash, b.trace);
  RuntimeOptions opt = FastOptions();
  opt.faults = FastFaults();
  opt.faults.coordinator_timeout_rate = 1.0;
  opt.faults.max_attempts = 2;
  ReplayReport r = Replay(*b.db, hash, b.trace, opt, "timeouts");
  EXPECT_EQ(r.failed, two_pc);
  EXPECT_EQ(r.coordinator_timeouts, r.aborts);
  EXPECT_EQ(r.aborts, two_pc * 2);
}

TEST(FaultReplayTest, FaultFreeReplayKeepsLegacyInvariants) {
  WorkloadBundle b = SmallTpcc(300);
  DatabaseSolution hash = MakeNaiveHashSolution(*b.db, 4);
  ReplayReport r = Replay(*b.db, hash, b.trace, FastOptions(), "fault-free");
  EXPECT_EQ(r.committed, r.total_txns);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.aborts, 0u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.stalls_injected, 0u);
  EXPECT_DOUBLE_EQ(r.goodput_tps, r.throughput_tps);
  for (const ShardReport& s : r.shards) {
    EXPECT_DOUBLE_EQ(s.availability(), 1.0);
    EXPECT_EQ(s.participation_attempts, s.dist_participations);
  }
}

TEST(FaultReplayTest, JsonCarriesFaultFields) {
  WorkloadBundle b = SmallTpcc(200);
  DatabaseSolution hash = MakeNaiveHashSolution(*b.db, 2);
  RuntimeOptions opt = FastOptions();
  opt.faults = FastFaults();
  opt.faults.prepare_reject_rate = 0.5;
  ReplayReport r = Replay(*b.db, hash, b.trace, opt, "fault-json");
  std::string json = r.ToJson();
  for (const char* key :
       {"\"failed\":", "\"aborts\":", "\"retries\":", "\"goodput_tps\":",
        "\"availability\":", "\"retry\":{", "\"stalls\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(FaultReplayTest, BoundedQueueWithoutFaultsStillConserves) {
  WorkloadBundle b = SmallTpcc(400);
  DatabaseSolution hash = MakeNaiveHashSolution(*b.db, 4);
  RuntimeOptions opt = FastOptions();
  opt.num_clients = 8;
  opt.max_queue_depth = 1;
  ReplayReport r = Replay(*b.db, hash, b.trace, opt, "bounded-queue");
  EXPECT_EQ(r.committed, r.total_txns);
}

TEST(CoordinationExposureTest, GrowsWithRateAndDistributedFraction) {
  EvalResult r;
  r.total_txns = 100;
  r.distributed_txns = 50;
  r.partitions_touched = 150;  // 3 participants per distributed txn
  EXPECT_DOUBLE_EQ(CoordinationExposure(r, 0.0), 0.0);
  // cost 0.5, P(fault) = 1 - 0.9^3 = 0.271
  EXPECT_NEAR(CoordinationExposure(r, 0.1), 0.5 * 0.271, 1e-9);
  EXPECT_LT(CoordinationExposure(r, 0.05), CoordinationExposure(r, 0.10));

  EvalResult fewer = r;
  fewer.distributed_txns = 10;
  fewer.partitions_touched = 30;  // same avg participants, fewer dist txns
  EXPECT_LT(CoordinationExposure(fewer, 0.1), CoordinationExposure(r, 0.1));

  EvalResult empty;
  EXPECT_DOUBLE_EQ(CoordinationExposure(empty, 0.5), 0.0);
  // Rates above 1 clamp instead of producing nonsense.
  EXPECT_NEAR(CoordinationExposure(r, 5.0), 0.5, 1e-9);
}

}  // namespace
}  // namespace jecb
